// Tests for the structural invariant validators (partition/validate.h):
// a valid ingest output passes all three, and each deliberate corruption —
// an edge placed out of range, a miscounted partition, a duplicate/missing
// master, a stale mirror, a non-monotone CSR — is reported with a message
// naming the precise failure.

#include "partition/validate.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/csr.h"
#include "graph/generators.h"
#include "partition/ingest.h"
#include "sim/cluster.h"
#include "sim/cost_model.h"

namespace gdp {
namespace {

using partition::DistributedGraph;
using partition::ReplicaTable;
using partition::ValidateCsr;
using partition::ValidateDistributedGraph;
using partition::ValidatePlacement;
using partition::ValidateReplicaTable;

DistributedGraph MakeValidGraph(partition::StrategyKind strategy =
                                    partition::StrategyKind::kRandom) {
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 500, .edges_per_vertex = 6, .seed = 7});
  sim::Cluster cluster(4, sim::CostModel{});
  partition::PartitionContext context;
  context.num_partitions = 4;
  context.num_vertices = edges.num_vertices();
  context.seed = 11;
  return partition::IngestWithStrategy(edges, strategy, context, cluster)
      .graph;
}

// ---------------------------------------------------------------------------
// Healthy structures pass.
// ---------------------------------------------------------------------------

TEST(ValidateTest, IngestOutputIsValid) {
  for (partition::StrategyKind s : partition::AllStrategies()) {
    if (s == partition::StrategyKind::kPds) continue;  // needs p^2+p+1 parts
    DistributedGraph dg = MakeValidGraph(s);
    util::Status status = ValidateDistributedGraph(dg);
    EXPECT_TRUE(status.ok()) << partition::StrategyName(s) << ": "
                             << status.ToString();
  }
}

TEST(ValidateTest, BuiltCsrIsValid) {
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 200, .edges_per_vertex = 5, .seed = 3});
  EXPECT_TRUE(ValidateCsr(graph::Csr::Build(edges, true)).ok());
  EXPECT_TRUE(ValidateCsr(graph::Csr::Build(edges, false)).ok());
  EXPECT_TRUE(ValidateCsr(graph::Csr()).ok());  // empty CSR is valid
}

// ---------------------------------------------------------------------------
// Placement corruptions.
// ---------------------------------------------------------------------------

TEST(ValidateTest, PlacementCatchesOutOfRangePartition) {
  DistributedGraph dg = MakeValidGraph();
  dg.edge_partition[17] = dg.num_partitions + 3;
  util::Status status = ValidatePlacement(dg);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("edge 17"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("valid range"), std::string::npos);
}

TEST(ValidateTest, PlacementCatchesDoubleAssignmentMiscount) {
  // "Every edge in exactly one partition" materializes as the per-partition
  // counts summing to the recount; moving an edge's assignment without
  // updating the counts models the edge being accounted in two partitions.
  DistributedGraph dg = MakeValidGraph();
  ++dg.partition_edge_count[1];  // partition 1 claims an edge it never got
  util::Status status = ValidatePlacement(dg);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("partition 1"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("recount"), std::string::npos);
}

TEST(ValidateTest, PlacementCatchesMissingAssignments) {
  DistributedGraph dg = MakeValidGraph();
  dg.edge_partition.pop_back();
  util::Status status = ValidatePlacement(dg);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("partition assignments"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Replica-table corruptions.
// ---------------------------------------------------------------------------

graph::VertexId FirstPresent(const DistributedGraph& dg) {
  for (graph::VertexId v = 0; v < dg.num_vertices; ++v) {
    if (dg.present[v]) return v;
  }
  ADD_FAILURE() << "no present vertex";
  return 0;
}

/// First present vertex with a partition missing from `table`, plus that
/// partition — the slot a corruption can claim. Power-law hubs replicate
/// everywhere, so this skips past them.
struct VertexSlot {
  graph::VertexId v = 0;
  sim::MachineId p = ReplicaTable::kInvalid;
};

VertexSlot FindFreeSlot(const DistributedGraph& dg,
                        const ReplicaTable& table) {
  for (graph::VertexId v = 0; v < dg.num_vertices; ++v) {
    if (!dg.present[v]) continue;
    for (uint32_t p = 0; p < dg.num_partitions; ++p) {
      if (!table.Contains(v, p)) return {v, p};
    }
  }
  ADD_FAILURE() << "every vertex replicated on every partition";
  return {};
}

TEST(ValidateTest, ReplicaTableCatchesDuplicateMaster) {
  // A vertex whose master moved to a second partition without the first
  // being cleared: the replica set gains a partition no edge justifies.
  DistributedGraph dg = MakeValidGraph();
  // Claim a partition that holds no replica of v as a second master
  // location.
  VertexSlot slot = FindFreeSlot(dg, dg.replicas);
  dg.replicas.Add(slot.v, slot.p);
  dg.replication_factor += 1.0 / static_cast<double>(dg.num_present_vertices);
  util::Status status = ValidateReplicaTable(dg);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("stale mirror"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("vertex " + std::to_string(slot.v)),
            std::string::npos);
}

TEST(ValidateTest, ReplicaTableCatchesStaleMirrorInEdgeDirectionTable) {
  DistributedGraph dg = MakeValidGraph();
  VertexSlot slot = FindFreeSlot(dg, dg.in_edge_partitions);
  dg.in_edge_partitions.Add(slot.v, slot.p);
  util::Status status = ValidateReplicaTable(dg);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("in-edge table"), std::string::npos)
      << status.ToString();
}

TEST(ValidateTest, ReplicaTableCatchesMissingMaster) {
  DistributedGraph dg = MakeValidGraph();
  graph::VertexId v = FirstPresent(dg);
  dg.master[v] = ReplicaTable::kInvalid;
  util::Status status = ValidateReplicaTable(dg);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("has no master"), std::string::npos)
      << status.ToString();
}

TEST(ValidateTest, ReplicaTableCatchesMasterOutsideReplicaSet) {
  DistributedGraph dg = MakeValidGraph();
  VertexSlot slot = FindFreeSlot(dg, dg.replicas);
  dg.master[slot.v] = slot.p;
  util::Status status = ValidateReplicaTable(dg);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not in its replica set"),
            std::string::npos)
      << status.ToString();
}

TEST(ValidateTest, ReplicaTableCatchesWrongReplicationFactor) {
  DistributedGraph dg = MakeValidGraph();
  dg.replication_factor += 0.25;
  util::Status status = ValidateReplicaTable(dg);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("replication factor"), std::string::npos)
      << status.ToString();
}

TEST(ValidateTest, ReplicaTableCatchesPresenceLie) {
  DistributedGraph dg = MakeValidGraph();
  graph::VertexId v = FirstPresent(dg);
  dg.present[v] = false;
  util::Status status = ValidateReplicaTable(dg);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("edge set says"), std::string::npos)
      << status.ToString();
}

// ---------------------------------------------------------------------------
// CSR corruptions (via the raw-span overload; Csr::Build output cannot be
// forged).
// ---------------------------------------------------------------------------

TEST(ValidateTest, CsrCatchesNonMonotoneOffsets) {
  std::vector<uint64_t> offsets = {0, 2, 1, 3};
  std::vector<graph::VertexId> adjacency = {1, 2, 0};
  util::Status status = ValidateCsr(offsets, adjacency);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not monotone at vertex 1"),
            std::string::npos)
      << status.ToString();
}

TEST(ValidateTest, CsrCatchesLengthMismatch) {
  std::vector<uint64_t> offsets = {0, 2, 4};
  std::vector<graph::VertexId> adjacency = {1, 0, 1};  // 3 != offsets.back()
  util::Status status = ValidateCsr(offsets, adjacency);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("offsets.back()"), std::string::npos)
      << status.ToString();
}

TEST(ValidateTest, CsrCatchesNeighborOutOfRange) {
  std::vector<uint64_t> offsets = {0, 1, 2};
  std::vector<graph::VertexId> adjacency = {1, 9};
  util::Status status = ValidateCsr(offsets, adjacency);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("adjacency[1]"), std::string::npos)
      << status.ToString();
}

TEST(ValidateTest, CsrCatchesBadFirstOffset) {
  std::vector<uint64_t> offsets = {1, 2};
  std::vector<graph::VertexId> adjacency = {0, 0};
  util::Status status = ValidateCsr(offsets, adjacency);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("offsets[0]"), std::string::npos);
}

}  // namespace
}  // namespace gdp
