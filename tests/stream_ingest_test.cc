// The streaming-ingress pipeline over the compressed EdgeBlockStore: the
// block path must be bit-identical to the flat path and the serial
// IngestReference oracle — DistributedGraph, IngressReport, per-machine
// cluster accounting — at any thread count, block size, ring depth, memory
// budget, or overlap setting, for every strategy. Plus the byte ledger's
// conservation rules and the materialize_edges=false mode.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "graph/edge_block_store.h"
#include "graph/generators.h"
#include "partition/ingest.h"
#include "sim/cluster.h"

namespace gdp::partition {
namespace {

constexpr uint32_t kMachines = 7;  // does not divide most state sizes
constexpr uint32_t kLoaders = 13;

PartitionContext MakeContext(graph::VertexId vertices) {
  PartitionContext context;
  context.num_partitions = kMachines;
  context.num_vertices = vertices;
  context.num_loaders = kLoaders;
  context.seed = 29;
  return context;
}

graph::EdgeList TestGraph() {
  return graph::GenerateHeavyTailed(
      {.num_vertices = 3000, .edges_per_vertex = 6, .seed = 41});
}

struct IngestRun {
  IngestResult result;
  std::vector<double> busy_seconds;
  std::vector<uint64_t> bytes_sent;
  std::vector<uint64_t> bytes_received;
  std::vector<uint64_t> memory_bytes;
  std::vector<uint64_t> peak_memory_bytes;
  double now_seconds = 0;
};

enum class Path { kReference, kFlat, kBlock };

IngestRun RunIngest(const graph::EdgeList& edges, StrategyKind kind,
                    const IngestOptions& options, Path path,
                    uint32_t block_size = 0) {
  PartitionContext context = MakeContext(edges.num_vertices());
  std::unique_ptr<Partitioner> partitioner = MakePartitioner(kind, context);
  sim::Cluster cluster(kMachines, sim::CostModel{});
  IngestRun run;
  switch (path) {
    case Path::kReference:
      run.result = IngestReference(edges, *partitioner, cluster, options);
      break;
    case Path::kFlat:
      run.result = Ingest(edges, *partitioner, cluster, options);
      break;
    case Path::kBlock: {
      graph::EdgeBlockStore::Options store_options;
      if (block_size != 0) store_options.block_size_edges = block_size;
      const graph::EdgeBlockStore store =
          graph::EdgeBlockStore::FromEdges(edges, store_options);
      run.result = Ingest(store, *partitioner, cluster, options);
      break;
    }
  }
  for (uint32_t m = 0; m < kMachines; ++m) {
    const sim::Machine& machine = cluster.machine(m);
    run.busy_seconds.push_back(machine.busy_seconds());
    run.bytes_sent.push_back(machine.bytes_sent());
    run.bytes_received.push_back(machine.bytes_received());
    run.memory_bytes.push_back(machine.memory_bytes());
    run.peak_memory_bytes.push_back(machine.peak_memory_bytes());
  }
  run.now_seconds = cluster.now_seconds();
  return run;
}

void ExpectRunsIdentical(const IngestRun& expected, const IngestRun& actual,
                         const std::string& label,
                         bool compare_edges = true) {
  SCOPED_TRACE(label);
  const DistributedGraph& a = expected.result.graph;
  const DistributedGraph& b = actual.result.graph;
  ASSERT_EQ(a.num_partitions, b.num_partitions);
  if (compare_edges) {
    ASSERT_EQ(a.edges.size(), b.edges.size());
    for (uint64_t i = 0; i < a.edges.size(); ++i) {
      ASSERT_EQ(a.edges[i].src, b.edges[i].src) << "edge " << i;
      ASSERT_EQ(a.edges[i].dst, b.edges[i].dst) << "edge " << i;
    }
  }
  ASSERT_EQ(a.edge_partition.size(), b.edge_partition.size());
  EXPECT_EQ(a.edge_partition, b.edge_partition);
  EXPECT_EQ(a.master, b.master);
  EXPECT_EQ(a.present, b.present);
  EXPECT_EQ(a.num_present_vertices, b.num_present_vertices);
  EXPECT_EQ(a.partition_edge_count, b.partition_edge_count);
  EXPECT_EQ(a.replication_factor, b.replication_factor);
  EXPECT_EQ(a.out_degree, b.out_degree);
  EXPECT_EQ(a.in_degree, b.in_degree);
  for (graph::VertexId v = 0; v < a.num_vertices; ++v) {
    ASSERT_EQ(a.replicas.Count(v), b.replicas.Count(v)) << "v=" << v;
    ASSERT_EQ(a.in_edge_partitions.Count(v), b.in_edge_partitions.Count(v));
    ASSERT_EQ(a.out_edge_partitions.Count(v),
              b.out_edge_partitions.Count(v));
    for (sim::MachineId p = 0; p < a.num_partitions; ++p) {
      ASSERT_EQ(a.replicas.Contains(v, p), b.replicas.Contains(v, p));
    }
  }

  const IngressReport& ra = expected.result.report;
  const IngressReport& rb = actual.result.report;
  EXPECT_EQ(ra.ingress_seconds, rb.ingress_seconds);
  ASSERT_EQ(ra.pass_seconds.size(), rb.pass_seconds.size());
  for (size_t i = 0; i < ra.pass_seconds.size(); ++i) {
    EXPECT_EQ(ra.pass_seconds[i], rb.pass_seconds[i]) << "pass " << i;
  }
  EXPECT_EQ(ra.edges_moved, rb.edges_moved);
  EXPECT_EQ(ra.replication_factor, rb.replication_factor);
  EXPECT_EQ(ra.edge_balance_ratio, rb.edge_balance_ratio);
  EXPECT_EQ(ra.peak_state_bytes, rb.peak_state_bytes);

  EXPECT_EQ(expected.busy_seconds, actual.busy_seconds);
  EXPECT_EQ(expected.bytes_sent, actual.bytes_sent);
  EXPECT_EQ(expected.bytes_received, actual.bytes_received);
  EXPECT_EQ(expected.memory_bytes, actual.memory_bytes);
  EXPECT_EQ(expected.peak_memory_bytes, actual.peak_memory_bytes);
  EXPECT_EQ(expected.now_seconds, actual.now_seconds);
}

class StreamIngestTest : public ::testing::TestWithParam<StrategyKind> {};

// The core contract: block path == serial oracle, at thread counts
// {1, 2, 8} and a block size (57) chosen to misalign with every loader
// boundary, so boundary blocks are consumed by two loaders.
TEST_P(StreamIngestTest, BlockPathBitIdenticalToReference) {
  graph::EdgeList edges = TestGraph();
  IngestOptions options;
  options.num_loaders = kLoaders;
  IngestRun reference =
      RunIngest(edges, GetParam(), options, Path::kReference);
  for (uint32_t threads : {1u, 2u, 8u}) {
    options.exec.num_threads = threads;
    IngestRun block = RunIngest(edges, GetParam(), options, Path::kBlock,
                                /*block_size=*/57);
    ExpectRunsIdentical(reference, block,
                        "threads=" + std::to_string(threads));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StreamIngestTest,
    ::testing::Values(StrategyKind::kRandom, StrategyKind::kAsymmetricRandom,
                      StrategyKind::kGrid, StrategyKind::kPds,
                      StrategyKind::kOblivious, StrategyKind::kHdrf,
                      StrategyKind::kHybrid, StrategyKind::kHybridGinger,
                      StrategyKind::kOneD, StrategyKind::kOneDTarget,
                      StrategyKind::kTwoD, StrategyKind::kChunked,
                      StrategyKind::kDbh),
    [](const ::testing::TestParamInfo<StrategyKind>& info) {
      switch (info.param) {
        case StrategyKind::kRandom: return std::string("Random");
        case StrategyKind::kAsymmetricRandom:
          return std::string("AsymmetricRandom");
        case StrategyKind::kGrid: return std::string("Grid");
        case StrategyKind::kPds: return std::string("Pds");
        case StrategyKind::kOblivious: return std::string("Oblivious");
        case StrategyKind::kHdrf: return std::string("Hdrf");
        case StrategyKind::kHybrid: return std::string("Hybrid");
        case StrategyKind::kHybridGinger: return std::string("HybridGinger");
        case StrategyKind::kOneD: return std::string("OneD");
        case StrategyKind::kOneDTarget: return std::string("OneDTarget");
        case StrategyKind::kTwoD: return std::string("TwoD");
        case StrategyKind::kChunked: return std::string("Chunked");
        case StrategyKind::kDbh: return std::string("Dbh");
        default: return std::string("Other");
      }
    });

// Block size, budget (hence ring depth), and overlap change only wall-clock
// behavior, never results: every combination is bit-identical.
TEST(StreamIngestTest, InvariantAcrossBlockSizesBudgetsAndOverlap) {
  graph::EdgeList edges = TestGraph();
  IngestOptions options;
  options.num_loaders = kLoaders;
  options.exec.num_threads = 8;
  IngestRun baseline = RunIngest(edges, StrategyKind::kHybridGinger, options,
                                 Path::kBlock, /*block_size=*/4096);
  for (uint32_t block_size : {64u, 1000u}) {
    for (uint64_t budget : {uint64_t{0}, uint64_t{1}, uint64_t{1} << 30}) {
      for (bool overlap : {true, false}) {
        options.memory_budget_bytes = budget;
        options.overlap_decode = overlap;
        IngestRun run = RunIngest(edges, StrategyKind::kHybridGinger, options,
                                  Path::kBlock, block_size);
        ExpectRunsIdentical(
            baseline, run,
            "block_size=" + std::to_string(block_size) + " budget=" +
                std::to_string(budget) + " overlap=" + std::to_string(overlap));
      }
    }
  }
}

// The byte ledger: ring_bytes is exactly ring_buffers * block_bytes; the
// unbudgeted ring is double-buffered (two slots per loader with overlap); a
// budget shrinks the ring to fit, but never below one buffer per loader.
TEST(StreamIngestTest, MemoryLedgerConservation) {
  graph::EdgeList edges = TestGraph();
  const graph::EdgeBlockStore store = graph::EdgeBlockStore::FromEdges(
      edges, graph::EdgeBlockStore::Options(512));
  const uint64_t block_bytes = 512 * sizeof(graph::Edge);

  auto run_with_budget = [&](uint64_t budget) {
    PartitionContext context = MakeContext(edges.num_vertices());
    std::unique_ptr<Partitioner> partitioner =
        MakePartitioner(StrategyKind::kHdrf, context);
    sim::Cluster cluster(kMachines, sim::CostModel{});
    IngestOptions options;
    options.num_loaders = kLoaders;
    options.exec.num_threads = 8;
    options.memory_budget_bytes = budget;
    IngestMemoryStats stats;
    options.memory_stats = &stats;
    IngestResult result = Ingest(store, *partitioner, cluster, options);
    EXPECT_EQ(stats.block_bytes, block_bytes);
    EXPECT_EQ(stats.ring_bytes, stats.ring_buffers * stats.block_bytes);
    EXPECT_EQ(stats.peak_state_bytes, result.report.peak_state_bytes);
    EXPECT_EQ(stats.peak_ledger_bytes,
              stats.ring_bytes + stats.peak_state_bytes);
    EXPECT_EQ(stats.store_resident_bytes, store.ResidentBytes());
    return stats;
  };

  const IngestMemoryStats unbudgeted = run_with_budget(0);
  EXPECT_EQ(unbudgeted.ring_buffers, uint64_t{2} * kLoaders);

  // A budget of 4 buffers per loader caps look-ahead at depth 4.
  const IngestMemoryStats budgeted =
      run_with_budget(uint64_t{4} * kLoaders * block_bytes);
  EXPECT_EQ(budgeted.ring_buffers, uint64_t{4} * kLoaders);
  EXPECT_LE(budgeted.ring_bytes, uint64_t{4} * kLoaders * block_bytes);

  // An infeasibly small budget floors at the streaming minimum: one decoded
  // buffer per loader.
  const IngestMemoryStats floored = run_with_budget(1);
  EXPECT_EQ(floored.ring_buffers, uint64_t{1} * kLoaders);
}

// materialize_edges=false: the output graph carries no flat edge vector,
// but everything else — placement, tables, masters, degrees, report,
// cluster accounting — is bit-identical to the materialized run.
TEST(StreamIngestTest, UnmaterializedEdgesMatchEverythingElse) {
  graph::EdgeList edges = TestGraph();
  IngestOptions options;
  options.num_loaders = kLoaders;
  options.exec.num_threads = 8;
  IngestRun materialized = RunIngest(edges, StrategyKind::kHybrid, options,
                                     Path::kBlock, /*block_size=*/511);
  options.materialize_edges = false;
  IngestRun streamed = RunIngest(edges, StrategyKind::kHybrid, options,
                                 Path::kBlock, /*block_size=*/511);
  EXPECT_TRUE(streamed.result.graph.edges.empty());
  EXPECT_EQ(materialized.result.graph.edges.size(), edges.num_edges());
  ExpectRunsIdentical(materialized, streamed, "unmaterialized",
                      /*compare_edges=*/false);
}

// Tiny inputs: fewer edges than loaders leaves some loaders with empty
// ranges; single-edge blocks; more machines than edges.
TEST(StreamIngestTest, TinyInputsAndEmptyLoaderRanges) {
  graph::EdgeList edges;
  edges.AddEdge(0, 1);
  edges.AddEdge(1, 2);
  edges.AddEdge(2, 0);
  IngestOptions options;
  options.num_loaders = kLoaders;  // most loaders get no edges
  options.exec.num_threads = 8;
  IngestRun reference =
      RunIngest(edges, StrategyKind::kRandom, options, Path::kReference);
  IngestRun block = RunIngest(edges, StrategyKind::kRandom, options,
                              Path::kBlock, /*block_size=*/1);
  ExpectRunsIdentical(reference, block, "three edges, block_size=1");
}

// The IngestWithStrategy seam: use_block_store routes through the store and
// produces the same result as the flat convenience path.
TEST(StreamIngestTest, IngestWithStrategyBlockSeam) {
  graph::EdgeList edges = TestGraph();
  PartitionContext context = MakeContext(edges.num_vertices());
  IngestOptions options;
  options.num_loaders = kLoaders;
  options.exec.num_threads = 8;

  sim::Cluster flat_cluster(kMachines, sim::CostModel{});
  IngestResult flat = IngestWithStrategy(edges, StrategyKind::kHdrf, context,
                                         flat_cluster, options);

  options.use_block_store = true;
  options.block_size_edges = 777;
  IngestMemoryStats stats;
  options.memory_stats = &stats;
  sim::Cluster block_cluster(kMachines, sim::CostModel{});
  IngestResult block = IngestWithStrategy(edges, StrategyKind::kHdrf, context,
                                          block_cluster, options);

  EXPECT_EQ(flat.graph.edge_partition, block.graph.edge_partition);
  EXPECT_EQ(flat.graph.master, block.graph.master);
  EXPECT_EQ(flat.report.ingress_seconds, block.report.ingress_seconds);
  EXPECT_EQ(stats.block_bytes, uint64_t{777} * sizeof(graph::Edge));
  EXPECT_GT(stats.ring_buffers, 0u);
}

}  // namespace
}  // namespace gdp::partition
