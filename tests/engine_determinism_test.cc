// The parallel engine's core contract: final states AND every simulated
// cost (RunStats, per-machine byte/time accounting) are bit-identical to
// the preserved serial engine (reference_engine.h) at every thread count.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "apps/kcore.h"
#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "apps/wcc.h"
#include "engine/gas_engine.h"
#include "engine/plan.h"
#include "engine/reference_engine.h"
#include "graph/generators.h"
#include "partition/ingest.h"
#include "sim/cluster.h"

namespace gdp::engine {
namespace {

using partition::IngestOptions;
using partition::IngestResult;
using partition::IngestWithStrategy;
using partition::PartitionContext;
using partition::StrategyKind;

constexpr uint32_t kMachines = 9;
constexpr uint32_t kThreadCounts[] = {1, 2, 8};

IngestResult Partition(const graph::EdgeList& edges, sim::Cluster& cluster) {
  PartitionContext context;
  context.num_partitions = kMachines;
  context.num_vertices = edges.num_vertices();
  context.num_loaders = kMachines;
  context.seed = 3;
  return IngestWithStrategy(edges, StrategyKind::kHdrf, context, cluster,
                            IngestOptions{});
}

graph::EdgeList PowerLawGraph() {
  return graph::GeneratePowerLawWeb({.num_vertices = 700, .seed = 11});
}

graph::EdgeList GridGraph() {
  return graph::GenerateRoadNetwork(
      {.width = 24, .height = 24, .drop_fraction = 0.2, .seed = 12});
}

void ExpectStatsIdentical(const RunStats& got, const RunStats& want) {
  EXPECT_EQ(got.iterations, want.iterations);
  EXPECT_EQ(got.converged, want.converged);
  // Doubles compared with == on purpose: the contract is bit-identity, not
  // tolerance.
  EXPECT_EQ(got.compute_seconds, want.compute_seconds);
  EXPECT_EQ(got.network_bytes, want.network_bytes);
  EXPECT_EQ(got.mean_inbound_bytes_per_machine,
            want.mean_inbound_bytes_per_machine);
  ASSERT_EQ(got.cumulative_seconds.size(), want.cumulative_seconds.size());
  for (size_t i = 0; i < want.cumulative_seconds.size(); ++i) {
    EXPECT_EQ(got.cumulative_seconds[i], want.cumulative_seconds[i])
        << "superstep " << i;
  }
  ASSERT_EQ(got.active_counts.size(), want.active_counts.size());
  for (size_t i = 0; i < want.active_counts.size(); ++i) {
    EXPECT_EQ(got.active_counts[i], want.active_counts[i])
        << "superstep " << i;
  }
}

void ExpectClustersIdentical(const sim::Cluster& got,
                             const sim::Cluster& want) {
  ASSERT_EQ(got.num_machines(), want.num_machines());
  for (uint32_t m = 0; m < want.num_machines(); ++m) {
    EXPECT_EQ(got.machine(m).busy_seconds(), want.machine(m).busy_seconds())
        << "machine " << m;
    EXPECT_EQ(got.machine(m).bytes_sent(), want.machine(m).bytes_sent())
        << "machine " << m;
    EXPECT_EQ(got.machine(m).bytes_received(),
              want.machine(m).bytes_received())
        << "machine " << m;
  }
  EXPECT_EQ(got.now_seconds(), want.now_seconds());
}

/// Runs `app` through the serial reference engine once, then through the
/// parallel engine at 1/2/8 threads, demanding bit-identical states, stats,
/// and per-machine cluster accounting each time.
template <typename App>
void ExpectBitIdenticalAcrossThreads(EngineKind kind,
                                     const graph::EdgeList& edges, App app,
                                     RunOptions options) {
  sim::Cluster ref_cluster(kMachines, sim::CostModel{});
  IngestResult ref_ingest = Partition(edges, ref_cluster);
  auto ref = RunGasEngineReference(kind, ref_ingest.graph, ref_cluster, app,
                                   options);

  for (uint32_t threads : kThreadCounts) {
    SCOPED_TRACE(std::string(EngineKindName(kind)) + " threads=" +
                 std::to_string(threads));
    sim::Cluster cluster(kMachines, sim::CostModel{});
    IngestResult ingest = Partition(edges, cluster);
    RunOptions run_options = options;
    run_options.exec.num_threads = threads;
    auto got = RunGasEngine(kind, ingest.graph, cluster, app, run_options);

    ASSERT_EQ(got.states.size(), ref.states.size());
    for (graph::VertexId v = 0; v < edges.num_vertices(); ++v) {
      ASSERT_EQ(got.states[v], ref.states[v]) << "vertex " << v;
    }
    ExpectStatsIdentical(got.stats, ref.stats);
    ExpectClustersIdentical(cluster, ref_cluster);
  }
}

class EngineDeterminismTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(EngineDeterminismTest, PageRankPowerLaw) {
  RunOptions options;
  options.max_iterations = 12;
  ExpectBitIdenticalAcrossThreads(GetParam(), PowerLawGraph(),
                                  apps::PageRankFixed(), options);
}

TEST_P(EngineDeterminismTest, PageRankGrid) {
  RunOptions options;
  options.max_iterations = 8;
  ExpectBitIdenticalAcrossThreads(GetParam(), GridGraph(),
                                  apps::PageRankFixed(), options);
}

TEST_P(EngineDeterminismTest, PageRankConvergentPowerLaw) {
  RunOptions options;
  options.max_iterations = 200;
  ExpectBitIdenticalAcrossThreads(GetParam(), PowerLawGraph(),
                                  apps::PageRankConvergent(1e-3), options);
}

TEST_P(EngineDeterminismTest, SsspPowerLaw) {
  apps::SsspApp app;
  app.source = 5;
  RunOptions options;
  options.max_iterations = 5000;
  ExpectBitIdenticalAcrossThreads(GetParam(), PowerLawGraph(), app, options);
}

TEST_P(EngineDeterminismTest, SsspGrid) {
  // Grid SSSP has a long sparse-frontier phase — the case the frontier
  // switch accelerates, and the easiest one to get subtly wrong.
  apps::SsspApp app;
  app.source = 1;
  RunOptions options;
  options.max_iterations = 5000;
  ExpectBitIdenticalAcrossThreads(GetParam(), GridGraph(), app, options);
}

TEST_P(EngineDeterminismTest, WccPowerLaw) {
  RunOptions options;
  options.max_iterations = 5000;
  ExpectBitIdenticalAcrossThreads(GetParam(), PowerLawGraph(),
                                  apps::WccApp{}, options);
}

TEST_P(EngineDeterminismTest, WccGrid) {
  RunOptions options;
  options.max_iterations = 5000;
  ExpectBitIdenticalAcrossThreads(GetParam(), GridGraph(), apps::WccApp{},
                                  options);
}

TEST_P(EngineDeterminismTest, PageRankDyadicWorkMultiplier) {
  // work_multiplier 4.0 keeps the closed-form fast accounting path exact.
  RunOptions options;
  options.max_iterations = 10;
  options.work_multiplier = 4.0;
  ExpectBitIdenticalAcrossThreads(GetParam(), PowerLawGraph(),
                                  apps::PageRankFixed(), options);
}

TEST_P(EngineDeterminismTest, PageRankNonDyadicWorkMultiplier) {
  // 0.3 has a wide mantissa, forcing the serial-replay accounting mode —
  // results must STILL be bit-identical to the reference.
  RunOptions options;
  options.max_iterations = 10;
  options.work_multiplier = 0.3;
  ExpectBitIdenticalAcrossThreads(GetParam(), PowerLawGraph(),
                                  apps::PageRankFixed(), options);
}

TEST_P(EngineDeterminismTest, LayoutAndKernelModeMatrix) {
  // The full kernel matrix against one serial-reference run: both plan
  // layouts under the batched kernels, plus the preserved per-edge
  // baseline, at every thread count. Everything must agree bit-for-bit —
  // states, RunStats, and per-machine cluster accounting.
  const EngineKind kind = GetParam();
  const bool graphx = kind == EngineKind::kGraphXPregel;
  graph::EdgeList edges = PowerLawGraph();
  RunOptions options;
  options.max_iterations = 8;
  apps::PageRankApp app = apps::PageRankFixed();

  sim::Cluster ref_cluster(kMachines, sim::CostModel{});
  IngestResult ref_ingest = Partition(edges, ref_cluster);
  auto ref =
      RunGasEngineReference(kind, ref_ingest.graph, ref_cluster, app, options);

  struct Config {
    PlanLayout layout;
    KernelMode mode;
  };
  constexpr Config kConfigs[] = {
      {PlanLayout::kUncompressed, KernelMode::kBatched},
      {PlanLayout::kCompressed, KernelMode::kBatched},
      // The per-edge baseline reads per-entry machine tags, which the
      // compressed layout drops, so it only pairs with kUncompressed.
      {PlanLayout::kUncompressed, KernelMode::kPerEdge},
  };
  for (const Config& config : kConfigs) {
    sim::Cluster cluster(kMachines, sim::CostModel{});
    IngestResult ingest = Partition(edges, cluster);
    const sim::ClusterSnapshot ingested = cluster.Snapshot();
    const ExecutionPlan plan = ExecutionPlan::Build(
        ingest.graph, apps::PageRankApp::kGatherDir,
        apps::PageRankApp::kScatterDir, graphx, config.layout);
    for (uint32_t threads : kThreadCounts) {
      SCOPED_TRACE(std::string(PlanLayoutName(config.layout)) + "/" +
                   KernelModeName(config.mode) + " threads=" +
                   std::to_string(threads));
      cluster.Restore(ingested);
      RunOptions run_options = options;
      run_options.exec.num_threads = threads;
      run_options.kernel_mode = config.mode;
      auto got = RunGasEngine(kind, plan, cluster, app, run_options);
      ASSERT_EQ(got.states, ref.states);
      ExpectStatsIdentical(got.stats, ref.stats);
      ExpectClustersIdentical(cluster, ref_cluster);
    }
  }
}

TEST_P(EngineDeterminismTest, SsspGridCompressedLayout) {
  // Sparse-frontier coverage for the compressed decode path: grid SSSP
  // spends most supersteps on list frontiers, where gather/scatter walk
  // individual vertices' blocks rather than dense sweeps.
  const EngineKind kind = GetParam();
  const bool graphx = kind == EngineKind::kGraphXPregel;
  graph::EdgeList edges = GridGraph();
  apps::SsspApp app;
  app.source = 1;
  RunOptions options;
  options.max_iterations = 5000;

  sim::Cluster ref_cluster(kMachines, sim::CostModel{});
  IngestResult ref_ingest = Partition(edges, ref_cluster);
  auto ref =
      RunGasEngineReference(kind, ref_ingest.graph, ref_cluster, app, options);

  sim::Cluster cluster(kMachines, sim::CostModel{});
  IngestResult ingest = Partition(edges, cluster);
  const sim::ClusterSnapshot ingested = cluster.Snapshot();
  const ExecutionPlan plan = ExecutionPlan::Build(
      ingest.graph, apps::SsspApp::kGatherDir, apps::SsspApp::kScatterDir,
      graphx, PlanLayout::kCompressed);
  for (uint32_t threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    cluster.Restore(ingested);
    RunOptions run_options = options;
    run_options.exec.num_threads = threads;
    auto got = RunGasEngine(kind, plan, cluster, app, run_options);
    ASSERT_EQ(got.states, ref.states);
    ExpectStatsIdentical(got.stats, ref.stats);
    ExpectClustersIdentical(cluster, ref_cluster);
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineDeterminismTest,
                         ::testing::Values(EngineKind::kPowerGraphSync,
                                           EngineKind::kPowerLyraHybrid,
                                           EngineKind::kGraphXPregel),
                         [](const ::testing::TestParamInfo<EngineKind>& i) {
                           return EngineKindName(i.param);
                         });

// ---------------------------------------------------------------------------
// K-Core decomposition (a multi-run driver that threads RunOptions through
// every stage) is thread-count invariant end to end.
// ---------------------------------------------------------------------------

TEST(KCoreDeterminismTest, DecomposeIdenticalAcrossThreadCounts) {
  for (bool power_law : {true, false}) {
    SCOPED_TRACE(power_law ? "power-law" : "grid");
    graph::EdgeList edges = power_law ? PowerLawGraph() : GridGraph();

    apps::KCoreResult baseline;
    sim::Cluster baseline_cluster(kMachines, sim::CostModel{});
    {
      IngestResult ingest = Partition(edges, baseline_cluster);
      RunOptions options;
      options.exec.num_threads = 1;
      baseline = apps::KCoreDecompose(EngineKind::kPowerGraphSync,
                                      ingest.graph, baseline_cluster, 2, 6,
                                      options);
    }

    for (uint32_t threads : {2u, 8u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      sim::Cluster cluster(kMachines, sim::CostModel{});
      IngestResult ingest = Partition(edges, cluster);
      RunOptions options;
      options.exec.num_threads = threads;
      apps::KCoreResult got = apps::KCoreDecompose(
          EngineKind::kPowerGraphSync, ingest.graph, cluster, 2, 6, options);

      ASSERT_EQ(got.core_number, baseline.core_number);
      ASSERT_EQ(got.core_sizes, baseline.core_sizes);
      ExpectStatsIdentical(got.stats, baseline.stats);
      ExpectClustersIdentical(cluster, baseline_cluster);
    }
  }
}

// ---------------------------------------------------------------------------
// The prebuilt-plan overload is equivalent to the build-internally one, and
// one plan can back many runs.
// ---------------------------------------------------------------------------

TEST(ExecutionPlanTest, PrebuiltPlanMatchesInternalBuild) {
  graph::EdgeList edges = PowerLawGraph();
  sim::Cluster cluster_a(kMachines, sim::CostModel{});
  IngestResult ingest_a = Partition(edges, cluster_a);
  sim::Cluster cluster_b(kMachines, sim::CostModel{});
  IngestResult ingest_b = Partition(edges, cluster_b);

  RunOptions options;
  options.max_iterations = 8;
  options.exec.num_threads = 2;
  apps::PageRankApp app = apps::PageRankFixed();

  auto internal_build = RunGasEngine(EngineKind::kPowerGraphSync,
                                     ingest_a.graph, cluster_a, app, options);

  const ExecutionPlan plan = ExecutionPlan::Build(
      ingest_b.graph, apps::PageRankApp::kGatherDir,
      apps::PageRankApp::kScatterDir, /*graphx_counts=*/false);
  auto prebuilt = RunGasEngine(EngineKind::kPowerGraphSync, plan, cluster_b,
                               app, options);
  auto prebuilt_again = RunGasEngine(EngineKind::kPowerGraphSync, plan,
                                     cluster_b, app, options);

  ASSERT_EQ(prebuilt.states, internal_build.states);
  ExpectStatsIdentical(prebuilt.stats, internal_build.stats);
  // Same plan, second run: same answer again (plans are immutable).
  ASSERT_EQ(prebuilt_again.states, internal_build.states);
}

TEST(ExecutionPlanTest, DegreeAccessorsMatchEdgeList) {
  graph::EdgeList edges = GridGraph();
  sim::Cluster cluster(kMachines, sim::CostModel{});
  IngestResult ingest = Partition(edges, cluster);
  ASSERT_TRUE(ingest.graph.HasDegreeCache());

  const ExecutionPlan plan =
      ExecutionPlan::Build(ingest.graph, EdgeDirection::kIn,
                           EdgeDirection::kOut, /*graphx_counts=*/false);
  // With a cache present the plan must borrow it, not copy.
  EXPECT_EQ(plan.out_degrees().data(), ingest.graph.out_degree.data());
  EXPECT_EQ(plan.in_degrees().data(), ingest.graph.in_degree.data());

  // Without a cache the plan computes its own, with identical contents.
  partition::DistributedGraph stripped = ingest.graph;
  stripped.out_degree.clear();
  stripped.in_degree.clear();
  const ExecutionPlan fallback =
      ExecutionPlan::Build(stripped, EdgeDirection::kIn, EdgeDirection::kOut,
                           /*graphx_counts=*/false);
  EXPECT_EQ(fallback.out_degrees(), ingest.graph.out_degree);
  EXPECT_EQ(fallback.in_degrees(), ingest.graph.in_degree);
}

TEST(ExecutionPlanTest, CompressedLayoutDecodesIdenticalAdjacency) {
  graph::EdgeList edges = PowerLawGraph();
  sim::Cluster cluster(kMachines, sim::CostModel{});
  IngestResult ingest = Partition(edges, cluster);

  const ExecutionPlan plain =
      ExecutionPlan::Build(ingest.graph, EdgeDirection::kIn,
                           EdgeDirection::kOut, /*graphx_counts=*/false);
  const ExecutionPlan packed = ExecutionPlan::Build(
      ingest.graph, EdgeDirection::kIn, EdgeDirection::kOut,
      /*graphx_counts=*/false, PlanLayout::kCompressed);

  // Same offsets, and the blocks decode to the exact entry sequence the
  // uncompressed CSR stores (original edge order — the gather determinism
  // contract), for every vertex on both sides.
  ASSERT_EQ(packed.gather_offsets, plain.gather_offsets);
  ASSERT_EQ(packed.scatter_offsets, plain.scatter_offsets);
  for (graph::VertexId v = 0; v < edges.num_vertices(); ++v) {
    internal::CompressedBlockCursor gather_cur(
        packed.gather_blob, packed.gather_block_bits[v],
        packed.gather_block_width[v], v);
    for (uint64_t s = plain.gather_offsets[v]; s < plain.gather_offsets[v + 1];
         ++s) {
      ASSERT_EQ(gather_cur.Next(), plain.gather_nbr[s]) << "gather v=" << v;
    }
    internal::CompressedBlockCursor scatter_cur(
        packed.scatter_blob, packed.scatter_block_bits[v],
        packed.scatter_block_width[v], v);
    for (uint64_t s = plain.scatter_offsets[v];
         s < plain.scatter_offsets[v + 1]; ++s) {
      ASSERT_EQ(scatter_cur.Next(), plain.scatter_target[s])
          << "scatter v=" << v;
    }
  }

  // Run tables are layout-independent; the per-entry arrays are dropped
  // and the block representation is strictly smaller.
  EXPECT_EQ(packed.gather_run_offsets, plain.gather_run_offsets);
  EXPECT_EQ(packed.gather_runs, plain.gather_runs);
  EXPECT_EQ(packed.scatter_run_offsets, plain.scatter_run_offsets);
  EXPECT_EQ(packed.scatter_runs, plain.scatter_runs);
  EXPECT_TRUE(packed.gather_nbr.empty());
  EXPECT_TRUE(packed.gather_machine.empty());
  EXPECT_TRUE(packed.scatter_target.empty());
  EXPECT_TRUE(packed.scatter_machine.empty());
  EXPECT_LT(packed.AdjacencyBytes(), plain.AdjacencyBytes());
}

TEST(ExecutionPlanTest, AccountingRunsMatchPerEntryMachineCounts) {
  graph::EdgeList edges = PowerLawGraph();
  sim::Cluster cluster(kMachines, sim::CostModel{});
  IngestResult ingest = Partition(edges, cluster);
  const ExecutionPlan plan =
      ExecutionPlan::Build(ingest.graph, EdgeDirection::kIn,
                           EdgeDirection::kOut, /*graphx_counts=*/false);

  auto check_side = [&](const std::vector<uint64_t>& offsets,
                        const std::vector<uint8_t>& machine,
                        const std::vector<uint64_t>& run_offsets,
                        const std::vector<uint32_t>& runs) {
    for (graph::VertexId v = 0; v < edges.num_vertices(); ++v) {
      std::array<uint64_t, kMachines> counts{};
      for (uint64_t s = offsets[v]; s < offsets[v + 1]; ++s) {
        ++counts[machine[s]];
      }
      uint64_t total = 0;
      uint32_t prev_machine = 0;
      bool first = true;
      for (uint64_t r = run_offsets[v]; r < run_offsets[v + 1]; ++r) {
        const uint8_t m = ExecutionPlan::RunMachine(runs[r]);
        const uint32_t c = ExecutionPlan::RunCount(runs[r]);
        // Runs are distinct machines in ascending order, never empty.
        ASSERT_TRUE(first || m > prev_machine) << "v=" << v;
        first = false;
        prev_machine = m;
        ASSERT_GT(c, 0u) << "v=" << v;
        ASSERT_LT(m, kMachines) << "v=" << v;
        ASSERT_EQ(c, counts[m]) << "v=" << v << " machine=" << int{m};
        total += c;
      }
      ASSERT_EQ(total, offsets[v + 1] - offsets[v]) << "v=" << v;
    }
  };
  check_side(plan.gather_offsets, plan.gather_machine,
             plan.gather_run_offsets, plan.gather_runs);
  check_side(plan.scatter_offsets, plan.scatter_machine,
             plan.scatter_run_offsets, plan.scatter_runs);
}

}  // namespace
}  // namespace gdp::engine
