#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "partition/hybrid.h"
#include "partition/ingest.h"
#include "sim/cluster.h"

namespace gdp::partition {
namespace {

PartitionContext MakeContext(uint32_t partitions, graph::VertexId vertices,
                             uint64_t threshold = 100) {
  PartitionContext context;
  context.num_partitions = partitions;
  context.num_vertices = vertices;
  context.num_loaders = 1;
  context.seed = 5;
  context.hybrid_threshold = threshold;
  return context;
}

/// Builds a star graph: edges (i, hub) for i in [1, spokes].
graph::EdgeList StarInto(graph::VertexId hub, uint32_t spokes) {
  graph::EdgeList edges;
  for (graph::VertexId i = 1; i <= spokes; ++i) {
    edges.AddEdge(hub == i ? spokes + 1 : i, hub);
  }
  return edges;
}

TEST(HybridTest, NeedsTwoPasses) {
  HybridPartitioner p(MakeContext(4, 10));
  EXPECT_EQ(p.num_passes(), 2u);
  HybridGingerPartitioner g(MakeContext(4, 10));
  EXPECT_EQ(g.num_passes(), 3u);
}

TEST(HybridTest, LowDegreeEdgesColocateWithDestination) {
  HybridPartitioner p(MakeContext(4, 100, /*threshold=*/10));
  graph::EdgeList edges;
  edges.AddEdge(1, 7);
  edges.AddEdge(2, 7);
  edges.AddEdge(3, 8);
  // Pass 0: hash by destination.
  MachineId m1 = p.Assign(edges.edges()[0], 0, 0);
  MachineId m2 = p.Assign(edges.edges()[1], 0, 0);
  p.Assign(edges.edges()[2], 0, 0);
  EXPECT_EQ(m1, m2);  // same destination
  // Pass 1: vertex 7 has in-degree 2 <= threshold -> keep.
  EXPECT_EQ(p.Assign(edges.edges()[0], 1, 0), kKeepPlacement);
  EXPECT_FALSE(p.IsHighDegree(7));
}

TEST(HybridTest, HighDegreeEdgesReassignedBySource) {
  const uint32_t threshold = 10;
  HybridPartitioner p(MakeContext(4, 200, threshold));
  graph::EdgeList star = StarInto(/*hub=*/0, /*spokes=*/50);
  for (const graph::Edge& e : star.edges()) p.Assign(e, 0, 0);
  EXPECT_TRUE(p.IsHighDegree(0));
  // Pass 1: every edge moves to the hash of its *source*.
  std::set<MachineId> machines;
  for (const graph::Edge& e : star.edges()) {
    MachineId m = p.Assign(e, 1, 0);
    ASSERT_NE(m, kKeepPlacement);
    machines.insert(m);
  }
  EXPECT_GT(machines.size(), 1u) << "hub edges should spread (vertex-cut)";
}

TEST(HybridTest, MasterPreferenceIsVertexHash) {
  HybridPartitioner p(MakeContext(4, 100));
  // The master must sit where pass 0 put the vertex's in-edges: the
  // destination hash.
  graph::Edge e{3, 9};
  MachineId edge_machine = p.Assign(e, 0, 0);
  EXPECT_EQ(p.PreferredMaster(9), edge_machine);
}

TEST(HybridTest, StateBytesCoverDegreeCounters) {
  HybridPartitioner p(MakeContext(4, 1000));
  EXPECT_GE(p.ApproxStateBytes(), 1000 * sizeof(uint32_t));
}

TEST(HybridGingerTest, StateDwarfsHybrid) {
  // The Ginger neighbour-count matrix is the memory overhead the paper
  // blames for H-Ginger's footprint (§6.4.2).
  HybridPartitioner hybrid(MakeContext(8, 5000));
  HybridGingerPartitioner ginger(MakeContext(8, 5000));
  EXPECT_GT(ginger.ApproxStateBytes(), 5 * hybrid.ApproxStateBytes());
}

TEST(HybridGingerTest, MovesLowDegreeVertexTowardInNeighbours) {
  // Vertex 9's in-neighbours all live on one partition; Ginger should pull
  // 9's in-edges there (or at least keep them on one machine together).
  const uint32_t n_machines = 4;
  HybridGingerPartitioner p(MakeContext(n_machines, 64, /*threshold=*/50));
  // in-neighbours of 9: {1, 2, 3}; also give 1,2,3 a shared home by making
  // them destinations of their own small stars first.
  graph::EdgeList edges;
  edges.AddEdge(1, 9);
  edges.AddEdge(2, 9);
  edges.AddEdge(3, 9);
  for (uint32_t pass = 0; pass < 3; ++pass) {
    p.BeginPass(pass);
    for (const graph::Edge& e : edges.edges()) p.Assign(e, pass, 0);
  }
  // All of 9's in-edges must land on one partition (edge-cut preserved).
  // Re-running pass-2 assignments must be stable (memoized target).
  p.BeginPass(2);
  std::set<MachineId> final_machines;
  for (const graph::Edge& e : edges.edges()) {
    MachineId m = p.Assign(e, 2, 0);
    final_machines.insert(m == kKeepPlacement ? p.PreferredMaster(9) : m);
  }
  EXPECT_EQ(final_machines.size(), 1u);
}

TEST(HybridGingerTest, EndToEndIngestKeepsLowDegreeEdgeCut) {
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 2000, .edges_per_vertex = 4, .seed = 21});
  sim::Cluster cluster(8, sim::CostModel{});
  PartitionContext context = MakeContext(8, edges.num_vertices());
  context.num_loaders = 8;
  IngestOptions options;
  options.master_policy = MasterPolicy::kVertexHash;
  options.use_partitioner_master_preference = true;
  IngestResult r = IngestWithStrategy(edges, StrategyKind::kHybridGinger,
                                      context, cluster, options);
  // Low-degree (in-degree <= 100) vertices keep all in-edges on one
  // partition, and their master sits with them.
  std::vector<uint64_t> in_degree(edges.num_vertices(), 0);
  for (const graph::Edge& e : edges.edges()) ++in_degree[e.dst];
  for (graph::VertexId v = 0; v < edges.num_vertices(); ++v) {
    if (!r.graph.present[v] || in_degree[v] == 0 || in_degree[v] > 100) {
      continue;
    }
    EXPECT_EQ(r.graph.in_edge_partitions.Count(v), 1u) << "vertex " << v;
    EXPECT_EQ(r.graph.master[v], r.graph.in_edge_partitions.First(v));
  }
}

TEST(HybridTest, EndToEndHybridMatchesGingerInvariant) {
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 2000, .edges_per_vertex = 4, .seed = 22});
  sim::Cluster cluster(8, sim::CostModel{});
  PartitionContext context = MakeContext(8, edges.num_vertices());
  context.num_loaders = 8;
  IngestOptions options;
  options.master_policy = MasterPolicy::kVertexHash;
  options.use_partitioner_master_preference = true;
  IngestResult r = IngestWithStrategy(edges, StrategyKind::kHybrid, context,
                                      cluster, options);
  std::vector<uint64_t> in_degree(edges.num_vertices(), 0);
  for (const graph::Edge& e : edges.edges()) ++in_degree[e.dst];
  for (graph::VertexId v = 0; v < edges.num_vertices(); ++v) {
    if (!r.graph.present[v] || in_degree[v] == 0 || in_degree[v] > 100) {
      continue;
    }
    EXPECT_EQ(r.graph.in_edge_partitions.Count(v), 1u);
    EXPECT_EQ(r.graph.master[v], r.graph.in_edge_partitions.First(v));
  }
  // Reassignment happened for the hubs.
  EXPECT_GT(r.report.edges_moved, 0u);
}

}  // namespace
}  // namespace gdp::partition
