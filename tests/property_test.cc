// Property-style tests, parameterized over random seeds: the paper's key
// orderings and the library's structural invariants must hold for *any*
// seed, not just the ones the benches happen to use.

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "harness/experiment.h"
#include "partition/constrained.h"
#include "partition/ingest.h"

namespace gdp {
namespace {

using partition::StrategyKind;

class SeedSweepTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static double Rf(const graph::EdgeList& edges, StrategyKind strategy,
                   uint32_t machines = 9) {
    harness::ExperimentSpec spec;
    spec.strategy = strategy;
    spec.num_machines = machines;
    spec.seed = 1234;  // partitioning seed fixed; graph seed varies
    return harness::RunIngressOnly(edges, spec).replication_factor;
  }
};

TEST_P(SeedSweepTest, GridBeatsGreedyOnHeavyTailed) {
  graph::EdgeList social = graph::GenerateHeavyTailed(
      {.num_vertices = 6000, .edges_per_vertex = 8, .seed = GetParam()});
  EXPECT_LT(Rf(social, StrategyKind::kGrid),
            Rf(social, StrategyKind::kOblivious));
  EXPECT_LT(Rf(social, StrategyKind::kGrid),
            Rf(social, StrategyKind::kRandom));
}

TEST_P(SeedSweepTest, GreedyBeatsGridOnRoadNetworks) {
  graph::EdgeList road = graph::GenerateRoadNetwork(
      {.width = 60, .height = 60, .seed = GetParam()});
  EXPECT_LT(Rf(road, StrategyKind::kHdrf), Rf(road, StrategyKind::kGrid));
  EXPECT_LT(Rf(road, StrategyKind::kOblivious),
            Rf(road, StrategyKind::kRandom));
}

TEST_P(SeedSweepTest, GreedyBeatsGridOnPowerLawWeb) {
  graph::EdgeList web = graph::GeneratePowerLawWeb(
      {.num_vertices = 9000, .seed = GetParam()});
  EXPECT_LT(Rf(web, StrategyKind::kHdrf), Rf(web, StrategyKind::kGrid));
  EXPECT_LT(Rf(web, StrategyKind::kOblivious),
            Rf(web, StrategyKind::kGrid));
}

TEST_P(SeedSweepTest, AsymmetricRandomNeverBeatsRandom) {
  graph::EdgeList social = graph::GenerateHeavyTailed(
      {.num_vertices = 4000, .edges_per_vertex = 6, .seed = GetParam()});
  EXPECT_GE(Rf(social, StrategyKind::kAsymmetricRandom),
            Rf(social, StrategyKind::kRandom) - 1e-9);
}

TEST_P(SeedSweepTest, ClassifierIsStableAcrossSeeds) {
  EXPECT_EQ(graph::ComputeGraphStats(
                graph::GenerateRoadNetwork(
                    {.width = 50, .height = 50, .seed = GetParam()}))
                .classified,
            graph::GraphClass::kLowDegree);
  EXPECT_EQ(graph::ComputeGraphStats(
                graph::GenerateHeavyTailed(
                    {.num_vertices = 6000, .seed = GetParam()}))
                .classified,
            graph::GraphClass::kHeavyTailed);
  EXPECT_EQ(graph::ComputeGraphStats(
                graph::GeneratePowerLawWeb(
                    {.num_vertices = 9000, .seed = GetParam()}))
                .classified,
            graph::GraphClass::kPowerLaw);
}

TEST_P(SeedSweepTest, GridBoundHoldsOnRealIngest) {
  // 2*sqrt(N)-1 replication bound per vertex, verified on an actual
  // ingested graph rather than synthetic probes.
  graph::EdgeList social = graph::GenerateHeavyTailed(
      {.num_vertices = 3000, .edges_per_vertex = 10, .seed = GetParam()});
  sim::Cluster cluster(9, sim::CostModel{});
  partition::PartitionContext context;
  context.num_partitions = 9;
  context.num_vertices = social.num_vertices();
  context.num_loaders = 9;
  partition::IngestResult r = partition::IngestWithStrategy(
      social, StrategyKind::kGrid, context, cluster);
  for (graph::VertexId v = 0; v < social.num_vertices(); ++v) {
    if (!r.graph.present[v]) continue;
    EXPECT_LE(r.graph.replicas.Count(v), 5u) << "vertex " << v;
  }
}

TEST_P(SeedSweepTest, PdsBoundHoldsOnRealIngest) {
  graph::EdgeList social = graph::GenerateHeavyTailed(
      {.num_vertices = 3000, .edges_per_vertex = 10, .seed = GetParam()});
  sim::Cluster cluster(13, sim::CostModel{});
  partition::PartitionContext context;
  context.num_partitions = 13;  // p = 3
  context.num_vertices = social.num_vertices();
  context.num_loaders = 13;
  partition::IngestResult r = partition::IngestWithStrategy(
      social, StrategyKind::kPds, context, cluster);
  for (graph::VertexId v = 0; v < social.num_vertices(); ++v) {
    if (!r.graph.present[v]) continue;
    EXPECT_LE(r.graph.replicas.Count(v), 4u) << "vertex " << v;  // p + 1
  }
}

TEST_P(SeedSweepTest, HybridLowDegreeInEdgesAlwaysColocated) {
  graph::EdgeList web = graph::GeneratePowerLawWeb(
      {.num_vertices = 4000, .seed = GetParam()});
  sim::Cluster cluster(8, sim::CostModel{});
  partition::PartitionContext context;
  context.num_partitions = 8;
  context.num_vertices = web.num_vertices();
  context.num_loaders = 8;
  partition::IngestResult r = partition::IngestWithStrategy(
      web, StrategyKind::kHybrid, context, cluster);
  std::vector<uint64_t> in_degree = web.InDegrees();
  for (graph::VertexId v = 0; v < web.num_vertices(); ++v) {
    if (in_degree[v] == 0 || in_degree[v] > 100) continue;
    EXPECT_EQ(r.graph.in_edge_partitions.Count(v), 1u) << "vertex " << v;
  }
}

TEST_P(SeedSweepTest, IngestConservesEdgesForEveryStrategy) {
  graph::EdgeList graph = graph::GenerateErdosRenyi(
      {.num_vertices = 700, .num_edges = 4000, .seed = GetParam()});
  for (StrategyKind strategy : partition::AllStrategies()) {
    uint32_t machines = strategy == StrategyKind::kPds ? 7 : 9;
    sim::Cluster cluster(machines, sim::CostModel{});
    partition::PartitionContext context;
    context.num_partitions = machines;
    context.num_vertices = graph.num_vertices();
    context.num_loaders = machines;
    partition::IngestResult r = partition::IngestWithStrategy(
        graph, strategy, context, cluster);
    uint64_t total = 0;
    for (uint64_t c : r.graph.partition_edge_count) total += c;
    EXPECT_EQ(total, graph.num_edges())
        << partition::StrategyName(strategy);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(11u, 223u, 4099u, 86243u),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace gdp
