// Tests for the multi-tenant query-serving layer (src/serving/) and the
// byte-budgeted caches it leans on: batched and unbatched paths must
// return bit-identical answers, every simulated figure must be invariant
// to the host thread count, admission control must enforce the bounded
// queue and per-tenant quotas, and the PartitionCache/PlanCache byte
// budgets must evict deterministically without ever changing results.

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "apps/mssssp.h"
#include "apps/sssp.h"
#include "engine/gas_engine.h"
#include "engine/plan_cache.h"
#include "graph/edge_list.h"
#include "graph/generators.h"
#include "harness/experiment.h"
#include "harness/partition_cache.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "partition/ingest.h"
#include "partition/partitioner.h"
#include "serving/query_server.h"
#include "serving/request.h"
#include "sim/cluster.h"

namespace gdp {
namespace {

constexpr uint32_t kMachines = 8;

graph::EdgeList SmallGraph(uint64_t seed) {
  return graph::GenerateHeavyTailed(
      {.num_vertices = 800, .edges_per_vertex = 6, .seed = seed});
}

harness::ExperimentSpec FleetSpec() {
  harness::ExperimentSpec spec;
  spec.num_machines = kMachines;
  return spec;
}

/// Two-graph fleet over the given edge lists.
std::vector<serving::GraphConfig> Fleet(const graph::EdgeList& a,
                                        const graph::EdgeList& b) {
  return {{&a, FleetSpec()}, {&b, FleetSpec()}};
}

std::vector<serving::Request> TestTrace(const graph::EdgeList& a,
                                        const graph::EdgeList& b,
                                        uint32_t num_requests = 96) {
  serving::TraceOptions options;
  options.num_requests = num_requests;
  options.mean_interarrival_us = 4000;  // ~25 requests per 100ms window
  options.seed = 0xfeed;
  return serving::GenerateArrivalTrace(
      options, {static_cast<uint32_t>(a.num_vertices()),
                static_cast<uint32_t>(b.num_vertices())});
}

// ---------------------------------------------------------------------------
// Scheduler: answers, batching, determinism, admission.
// ---------------------------------------------------------------------------

TEST(ServingSchedulerTest, BatchedAndUnbatchedAnswersAgree) {
  const graph::EdgeList a = SmallGraph(0x11);
  const graph::EdgeList b = SmallGraph(0x22);
  const std::vector<serving::Request> trace = TestTrace(a, b);

  serving::ServerOptions batched;
  batched.batching = true;
  batched.use_plan_cache = true;
  serving::ServerOptions unbatched;
  unbatched.batching = false;
  unbatched.use_plan_cache = false;

  serving::QueryServer warm(Fleet(a, b), batched);
  serving::QueryServer cold(Fleet(a, b), unbatched);
  const serving::ServeResult warm_result = warm.Serve(trace);
  const serving::ServeResult cold_result = cold.Serve(trace);

  ASSERT_EQ(warm_result.responses.size(), trace.size());
  ASSERT_EQ(cold_result.responses.size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_TRUE(
        SameAnswer(warm_result.responses[i], cold_result.responses[i]))
        << "request " << i << " kind "
        << serving::QueryKindName(trace[i].kind);
  }
  // Coalescing must actually happen: far fewer dispatches than requests.
  EXPECT_LT(warm_result.batches, cold_result.batches);
  EXPECT_EQ(cold_result.batches, cold_result.admitted);
  // Fewer engine runs for the same work => higher simulated throughput.
  EXPECT_GT(warm_result.RequestsPerSecond(),
            cold_result.RequestsPerSecond());
}

TEST(ServingSchedulerTest, ResultsInvariantAcrossThreadCounts) {
  const graph::EdgeList a = SmallGraph(0x33);
  const graph::EdgeList b = SmallGraph(0x44);
  const std::vector<serving::Request> trace = TestTrace(a, b, 64);

  std::vector<serving::ServeResult> results;
  std::vector<std::vector<obs::MetricsRegistry::Sample>> snapshots;
  for (uint32_t threads : {1u, 2u, 8u}) {
    serving::ServerOptions options;
    options.num_threads = threads;
    serving::QueryServer server(Fleet(a, b), options);
    results.push_back(server.Serve(trace));
    snapshots.push_back(server.registry().Snapshot());
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].responses, results[0].responses);
    EXPECT_EQ(results[i].makespan_us, results[0].makespan_us);
    EXPECT_EQ(results[i].admitted, results[0].admitted);
    EXPECT_EQ(snapshots[i], snapshots[0]);
  }
}

TEST(ServingSchedulerTest, AdmissionControlBoundsTheQueue) {
  const graph::EdgeList a = SmallGraph(0x55);
  // Ten same-window arrivals against a queue of four.
  std::vector<serving::Request> trace;
  for (uint32_t i = 0; i < 10; ++i) {
    serving::Request request;
    request.id = i;
    request.tenant = i % 3;
    request.kind = serving::QueryKind::kSsspDistance;
    request.source = i;
    request.target = 9 - i;
    request.arrival_us = 1000 * i;  // all inside one 100ms window
    trace.push_back(request);
  }
  serving::ServerOptions options;
  options.queue_capacity = 4;
  serving::QueryServer server({{&a, FleetSpec()}}, options);
  const serving::ServeResult result = server.Serve(trace);
  EXPECT_EQ(result.admitted, 4u);
  EXPECT_EQ(result.rejected, 6u);
  // Admission is in arrival order: the first four get in.
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(result.responses[i].rejected, i >= 4) << i;
  }
}

TEST(ServingSchedulerTest, TenantQuotaCapsTheHotTenant) {
  const graph::EdgeList a = SmallGraph(0x66);
  std::vector<serving::Request> trace;
  // Tenant 0 floods the window; tenant 1 sends one late query.
  for (uint32_t i = 0; i < 6; ++i) {
    serving::Request request;
    request.id = i;
    request.tenant = i == 5 ? 1 : 0;
    request.kind = serving::QueryKind::kBfsReachable;
    request.source = i;
    request.target = 5 - i;
    request.arrival_us = 100 * i;
    trace.push_back(request);
  }
  serving::ServerOptions options;
  options.tenant_quota = 2;
  serving::QueryServer server({{&a, FleetSpec()}}, options);
  const serving::ServeResult result = server.Serve(trace);
  // Tenant 0: first two admitted, next three rejected; tenant 1 slips in
  // even though it arrived last — that is the fairness property.
  EXPECT_FALSE(result.responses[0].rejected);
  EXPECT_FALSE(result.responses[1].rejected);
  EXPECT_TRUE(result.responses[2].rejected);
  EXPECT_TRUE(result.responses[3].rejected);
  EXPECT_TRUE(result.responses[4].rejected);
  EXPECT_FALSE(result.responses[5].rejected);
}

TEST(ServingSchedulerTest, LatencyHistogramExportsPercentiles) {
  const graph::EdgeList a = SmallGraph(0x77);
  const graph::EdgeList b = SmallGraph(0x88);
  const std::vector<serving::Request> trace = TestTrace(a, b, 48);
  serving::QueryServer server(Fleet(a, b), serving::ServerOptions{});
  const serving::ServeResult result = server.Serve(trace);

  bool found = false;
  for (const obs::MetricsRegistry::Sample& sample :
       server.registry().Snapshot()) {
    if (sample.name != "serving.latency_us") continue;
    found = true;
    EXPECT_EQ(sample.kind, obs::MetricKind::kHistogram);
    EXPECT_EQ(static_cast<uint64_t>(sample.value), result.admitted);
    EXPECT_GT(sample.p50, 0u);
    EXPECT_LE(sample.p50, sample.p99);
  }
  EXPECT_TRUE(found);

  // And the MetricsTable row renders numeric p50/p99 columns.
  const util::Table table = obs::MetricsTable(server.registry());
  bool row_found = false;
  for (const std::vector<std::string>& row : table.rows()) {
    if (row[0] != "serving.latency_us") continue;
    row_found = true;
    EXPECT_NE(row[5], "-");
    EXPECT_NE(row[6], "-");
  }
  EXPECT_TRUE(row_found);
}

// ---------------------------------------------------------------------------
// The batching kernel: multi-source SSSP == per-source SSSP, lane by lane.
// ---------------------------------------------------------------------------

TEST(ServingKernelTest, MultiSourceSsspMatchesSingleSource) {
  const graph::EdgeList edges = SmallGraph(0x99);
  partition::PartitionContext context;
  context.num_partitions = kMachines;
  context.num_vertices = edges.num_vertices();
  auto partitioner =
      partition::MakePartitioner(partition::StrategyKind::kRandom, context);
  sim::Cluster cluster(kMachines, sim::CostModel{});
  partition::IngestResult ingest =
      Ingest(edges, *partitioner, cluster, partition::IngestOptions{});

  engine::RunOptions options;
  options.max_iterations = 2000;
  apps::MsSsspApp batched;
  batched.sources = {5, 99, 7, 5, 0};  // duplicates allowed: one lane each
  sim::Cluster batch_cluster(kMachines, sim::CostModel{});
  auto multi = engine::RunGasEngine(engine::EngineKind::kPowerGraphSync,
                                    ingest.graph, batch_cluster, batched,
                                    options);
  for (size_t lane = 0; lane < batched.sources.size(); ++lane) {
    apps::SsspApp single;
    single.source = batched.sources[lane];
    sim::Cluster single_cluster(kMachines, sim::CostModel{});
    auto one = engine::RunGasEngine(engine::EngineKind::kPowerGraphSync,
                                    ingest.graph, single_cluster, single,
                                    options);
    for (size_t v = 0; v < one.states.size(); ++v) {
      ASSERT_EQ(multi.states[v][lane], one.states[v])
          << "lane " << lane << " vertex " << v;
    }
  }
}

// ---------------------------------------------------------------------------
// PartitionCache byte budget.
// ---------------------------------------------------------------------------

harness::ExperimentSpec SpecWithSeed(uint64_t seed) {
  harness::ExperimentSpec spec;
  spec.num_machines = kMachines;
  spec.seed = seed;
  spec.max_iterations = 3;
  return spec;
}

TEST(PartitionCacheEvictionTest, BudgetZeroNeverEvicts) {
  const graph::EdgeList edges = SmallGraph(0xaa);
  harness::PartitionCache cache;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    (void)cache.Get(edges, SpecWithSeed(seed));
  }
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().misses, 4u);
  const auto snapshot = cache.registry().Snapshot();
  for (const obs::MetricsRegistry::Sample& sample : snapshot) {
    if (sample.name == "partition_cache.evictions" ||
        sample.name == "partition_cache.evicted_bytes") {
      EXPECT_EQ(sample.value, 0) << sample.name;
    }
  }
}

TEST(PartitionCacheEvictionTest, EvictsOldestBeyondBudgetDeterministically) {
  const graph::EdgeList edges = SmallGraph(0xbb);
  // Probe one entry's ledger charge to size a two-entry budget.
  uint64_t entry_bytes = 0;
  {
    harness::PartitionCache probe;
    (void)probe.Get(edges, SpecWithSeed(0));
    entry_bytes = probe.resident_bytes();
    ASSERT_GT(entry_bytes, 0u);
  }

  harness::PartitionCache cache;
  const uint64_t budget = 2 * entry_bytes + entry_bytes / 2;
  cache.set_byte_budget(budget);
  for (uint64_t seed = 0; seed < 4; ++seed) {
    (void)cache.Get(edges, SpecWithSeed(seed));
    // The acceptance invariant: resident bytes never exceed the budget.
    EXPECT_LE(cache.resident_bytes(), budget);
  }
  // Seeds 0 and 1 were evicted (FIFO), 2 and 3 remain.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().misses, 4u);

  // Re-requesting an evicted key rebuilds (miss); a resident key hits.
  (void)cache.Get(edges, SpecWithSeed(3));
  EXPECT_EQ(cache.stats().hits, 1u);
  (void)cache.Get(edges, SpecWithSeed(0));
  EXPECT_EQ(cache.stats().misses, 5u);

  uint64_t evictions = 0;
  uint64_t evicted_bytes = 0;
  int64_t resident_gauge = -1;
  for (const obs::MetricsRegistry::Sample& sample :
       cache.registry().Snapshot()) {
    if (sample.name == "partition_cache.evictions") {
      evictions = static_cast<uint64_t>(sample.value);
    } else if (sample.name == "partition_cache.evicted_bytes") {
      evicted_bytes = static_cast<uint64_t>(sample.value);
    } else if (sample.name == "partition_cache.resident_bytes") {
      resident_gauge = sample.value;
    }
  }
  EXPECT_EQ(evictions, 3u);  // seeds 0, 1, then 2 (when 0 re-entered)
  EXPECT_GT(evicted_bytes, 0u);
  EXPECT_EQ(resident_gauge, static_cast<int64_t>(cache.resident_bytes()));
}

TEST(PartitionCacheEvictionTest, SharedPtrPinsEvictedEntry) {
  const graph::EdgeList edges = SmallGraph(0xcc);
  harness::PartitionCache probe;
  (void)probe.Get(edges, SpecWithSeed(0));

  harness::PartitionCache cache;
  cache.set_byte_budget(probe.resident_bytes() + 1);  // one entry fits
  std::shared_ptr<const harness::PartitionCache::Entry> pinned =
      cache.Get(edges, SpecWithSeed(0));
  (void)cache.Get(edges, SpecWithSeed(1));  // evicts seed 0
  EXPECT_EQ(cache.size(), 1u);
  // The pinned artifact is still fully usable after eviction.
  EXPECT_EQ(pinned->ingest.graph.num_machines, kMachines);
  EXPECT_FALSE(pinned->post_ingress.machines.empty());
  auto plan = pinned->plans->Get(engine::EdgeDirection::kBoth,
                                 engine::EdgeDirection::kBoth, false);
  EXPECT_NE(plan, nullptr);
}

TEST(PartitionCacheEvictionTest, BudgetedCacheResultsMatchUnbounded) {
  const graph::EdgeList edges = SmallGraph(0xdd);
  harness::PartitionCache probe;
  (void)probe.Get(edges, SpecWithSeed(0));
  const uint64_t one_entry = probe.resident_bytes();

  harness::PartitionCache bounded;
  bounded.set_byte_budget(one_entry + 1);
  harness::PartitionCache unbounded;
  // Alternating seeds force the bounded cache to evict and rebuild; every
  // result must still match the unbounded cache's byte for byte.
  for (uint64_t seed : {0u, 1u, 0u, 1u}) {
    harness::ExperimentSpec spec = SpecWithSeed(seed);
    harness::ExperimentResult got =
        harness::RunExperimentCached(edges, spec, bounded);
    harness::ExperimentResult want =
        harness::RunExperimentCached(edges, spec, unbounded);
    EXPECT_EQ(got.total_seconds, want.total_seconds);
    EXPECT_EQ(got.replication_factor, want.replication_factor);
    EXPECT_EQ(got.compute.compute_seconds, want.compute.compute_seconds);
    EXPECT_EQ(got.compute.network_bytes, want.compute.network_bytes);
  }
  EXPECT_GT(bounded.stats().misses, unbounded.stats().misses);
}

// ---------------------------------------------------------------------------
// PlanCache byte budget.
// ---------------------------------------------------------------------------

TEST(PlanCacheEvictionTest, EvictsOldestPlanBeyondBudget) {
  const graph::EdgeList edges = SmallGraph(0xee);
  partition::PartitionContext context;
  context.num_partitions = kMachines;
  context.num_vertices = edges.num_vertices();
  auto partitioner =
      partition::MakePartitioner(partition::StrategyKind::kRandom, context);
  sim::Cluster cluster(kMachines, sim::CostModel{});
  partition::IngestResult ingest =
      Ingest(edges, *partitioner, cluster, partition::IngestOptions{});

  engine::PlanCache plans(ingest.graph);
  std::shared_ptr<const engine::ExecutionPlan> first =
      plans.Get(engine::EdgeDirection::kBoth, engine::EdgeDirection::kBoth,
                false);
  const uint64_t one_plan = plans.resident_bytes();
  ASSERT_GT(one_plan, 0u);

  // Budget for roughly one plan: each new shape evicts the previous one.
  plans.set_byte_budget(one_plan + one_plan / 2);
  (void)plans.Get(engine::EdgeDirection::kIn, engine::EdgeDirection::kOut,
                  false);
  EXPECT_LE(plans.resident_bytes(), one_plan + one_plan / 2);
  (void)plans.Get(engine::EdgeDirection::kOut, engine::EdgeDirection::kIn,
                  false);
  EXPECT_LE(plans.resident_bytes(), one_plan + one_plan / 2);
  EXPECT_LT(plans.num_plans(), 3u);
  EXPECT_EQ(plans.stats().misses, 3u);

  // The pinned first plan survives its eviction; re-requesting its shape
  // is a fresh miss.
  EXPECT_EQ(first->dg, &ingest.graph);
  (void)plans.Get(engine::EdgeDirection::kBoth, engine::EdgeDirection::kBoth,
                  false);
  EXPECT_EQ(plans.stats().misses, 4u);

  bool saw_evictions = false;
  for (const obs::MetricsRegistry::Sample& sample :
       plans.registry().Snapshot()) {
    if (sample.name == "plan_cache.evictions") {
      saw_evictions = sample.value > 0;
    }
  }
  EXPECT_TRUE(saw_evictions);
}

}  // namespace
}  // namespace gdp
