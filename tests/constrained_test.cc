#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "partition/constrained.h"

namespace gdp::partition {
namespace {

PartitionContext MakeContext(uint32_t partitions, uint64_t seed = 7) {
  PartitionContext context;
  context.num_partitions = partitions;
  context.num_vertices = 10000;
  context.seed = seed;
  return context;
}

// ---------------------------------------------------------------------------
// Grid
// ---------------------------------------------------------------------------

TEST(GridTest, DetectsExactSquares) {
  EXPECT_TRUE(GridPartitioner(MakeContext(9)).exact_square());
  EXPECT_TRUE(GridPartitioner(MakeContext(25)).exact_square());
  EXPECT_FALSE(GridPartitioner(MakeContext(10)).exact_square());
  EXPECT_FALSE(GridPartitioner(MakeContext(7)).exact_square());
}

TEST(GridTest, AssignmentWithinConstraintIntersection) {
  GridPartitioner grid(MakeContext(9));
  for (graph::VertexId u = 0; u < 60; ++u) {
    for (graph::VertexId v = u + 1; v < 60; ++v) {
      MachineId m = grid.Assign({u, v}, 0, 0);
      std::vector<MachineId> su = grid.ConstraintSet(u);
      std::vector<MachineId> sv = grid.ConstraintSet(v);
      EXPECT_TRUE(std::find(su.begin(), su.end(), m) != su.end());
      EXPECT_TRUE(std::find(sv.begin(), sv.end(), m) != sv.end());
    }
  }
}

TEST(GridTest, ConstraintSetSizeIsRowPlusColumn) {
  GridPartitioner grid(MakeContext(25));
  for (graph::VertexId v = 0; v < 100; ++v) {
    // 2*sqrt(N)-1 cells in a row+column cross.
    EXPECT_EQ(grid.ConstraintSet(v).size(), 9u);
  }
}

TEST(GridTest, ReplicationBoundHolds) {
  // Each vertex's constraint set caps its replication at 2*sqrt(N)-1.
  GridPartitioner grid(MakeContext(9));
  for (graph::VertexId v = 0; v < 30; ++v) {
    std::set<MachineId> used;
    for (graph::VertexId u = 0; u < 400; ++u) {
      if (u == v) continue;
      used.insert(grid.Assign({v, u}, 0, 0));
      used.insert(grid.Assign({u, v}, 0, 0));
    }
    EXPECT_LE(used.size(), 5u);  // 2*3-1
  }
}

TEST(GridTest, NonSquareFoldsIntoRange) {
  GridPartitioner grid(MakeContext(10));
  std::set<MachineId> seen;
  for (graph::VertexId u = 0; u < 100; ++u) {
    MachineId m = grid.Assign({u, u + 1}, 0, 0);
    EXPECT_LT(m, 10u);
    seen.insert(m);
  }
  EXPECT_GT(seen.size(), 5u);  // uses most of the partitions
}

TEST(GridTest, CanonicalAcrossDirections) {
  GridPartitioner grid(MakeContext(16));
  for (graph::VertexId u = 0; u < 40; ++u) {
    EXPECT_EQ(grid.Assign({u, u + 7}, 0, 0), grid.Assign({u + 7, u}, 0, 0));
  }
}

// ---------------------------------------------------------------------------
// PDS
// ---------------------------------------------------------------------------

TEST(PdsTest, MachineCountDetection) {
  uint32_t p = 0;
  EXPECT_TRUE(PdsPartitioner::IsPdsMachineCount(7, &p));   // p=2
  EXPECT_EQ(p, 2u);
  EXPECT_TRUE(PdsPartitioner::IsPdsMachineCount(13, &p));  // p=3
  EXPECT_EQ(p, 3u);
  EXPECT_TRUE(PdsPartitioner::IsPdsMachineCount(31, &p));  // p=5
  EXPECT_TRUE(PdsPartitioner::IsPdsMachineCount(57, &p));  // p=7
  EXPECT_FALSE(PdsPartitioner::IsPdsMachineCount(9, &p));
  EXPECT_FALSE(PdsPartitioner::IsPdsMachineCount(25, &p));
  EXPECT_FALSE(PdsPartitioner::IsPdsMachineCount(21, &p));  // p=4 not prime
}

TEST(PdsTest, DifferenceSetIsPerfect) {
  for (uint32_t p : {2u, 3u, 5u, 7u}) {
    auto set = PdsPartitioner::FindDifferenceSet(p);
    ASSERT_TRUE(set.has_value()) << "p=" << p;
    const uint32_t n = p * p + p + 1;
    EXPECT_EQ(set->size(), p + 1);
    // Every nonzero residue mod n appears exactly once as a difference.
    std::vector<int> counts(n, 0);
    for (uint32_t a : *set) {
      for (uint32_t b : *set) {
        if (a != b) ++counts[(n + a - b) % n];
      }
    }
    for (uint32_t r = 1; r < n; ++r) {
      EXPECT_EQ(counts[r], 1) << "residue " << r << " for p=" << p;
    }
  }
}

TEST(PdsTest, CreateRejectsBadCounts) {
  EXPECT_FALSE(PdsPartitioner::Create(MakeContext(9)).ok());
  EXPECT_FALSE(PdsPartitioner::Create(MakeContext(12)).ok());
  EXPECT_TRUE(PdsPartitioner::Create(MakeContext(7)).ok());
}

TEST(PdsTest, ConstraintSetsIntersectInExactlyOne) {
  auto created = PdsPartitioner::Create(MakeContext(13));
  ASSERT_TRUE(created.ok());
  auto* pds = static_cast<PdsPartitioner*>(created.value().get());
  // Property of planar difference sets: distinct translates meet once.
  for (graph::VertexId u = 0; u < 30; ++u) {
    for (graph::VertexId v = u + 1; v < 30; ++v) {
      std::vector<MachineId> su = pds->ConstraintSet(u);
      std::vector<MachineId> sv = pds->ConstraintSet(v);
      std::vector<MachineId> common;
      std::set_intersection(su.begin(), su.end(), sv.begin(), sv.end(),
                            std::back_inserter(common));
      if (su == sv) continue;  // same hash bucket
      EXPECT_EQ(common.size(), 1u);
    }
  }
}

TEST(PdsTest, ReplicationBoundedByPPlusOne) {
  auto created = PdsPartitioner::Create(MakeContext(13));
  ASSERT_TRUE(created.ok());
  Partitioner& pds = *created.value();
  for (graph::VertexId v = 0; v < 20; ++v) {
    std::set<MachineId> used;
    for (graph::VertexId u = 0; u < 300; ++u) {
      if (u == v) continue;
      used.insert(pds.Assign({v, u}, 0, 0));
      used.insert(pds.Assign({u, v}, 0, 0));
    }
    EXPECT_LE(used.size(), 4u);  // p + 1 with p = 3
  }
}

TEST(PdsTest, TighterThanGridBound) {
  // PDS's p+1 bound beats Grid's 2*sqrt(N)-1 at comparable N.
  uint32_t p = 5;
  uint32_t n = p * p + p + 1;  // 31
  double grid_bound = 2 * std::ceil(std::sqrt(static_cast<double>(n))) - 1;
  EXPECT_LT(p + 1, grid_bound);
}

}  // namespace
}  // namespace gdp::partition
