#include <gtest/gtest.h>

#include "sim/cluster.h"
#include "sim/cost_model.h"
#include "sim/timeline.h"

namespace gdp::sim {
namespace {

TEST(CostModelTest, TransferAndWorkSeconds) {
  CostModel model;
  model.bandwidth_bytes_per_second = 100;
  model.seconds_per_work = 2.0;
  EXPECT_DOUBLE_EQ(model.TransferSeconds(50), 0.5);
  EXPECT_DOUBLE_EQ(model.WorkSeconds(3), 6.0);
}

TEST(MachineTest, MemoryPeakTracking) {
  Machine m;
  m.Allocate(100);
  m.Allocate(200);
  m.Free(250);
  EXPECT_EQ(m.memory_bytes(), 50u);
  EXPECT_EQ(m.peak_memory_bytes(), 300u);
}

TEST(MachineTest, FreeClampsAtZero) {
  Machine m;
  m.Allocate(10);
  m.Free(100);
  EXPECT_EQ(m.memory_bytes(), 0u);
}

TEST(ClusterTest, EndPhaseAdvancesByMaxPlusBarrier) {
  CostModel model;
  model.seconds_per_work = 1.0;
  model.barrier_latency_seconds = 0.5;
  Cluster cluster(3, model);
  cluster.machine(0).AddWork(1.0);
  cluster.machine(1).AddWork(5.0);  // straggler
  cluster.machine(2).AddWork(2.0);
  double dt = cluster.EndPhase();
  EXPECT_DOUBLE_EQ(dt, 5.5);
  EXPECT_DOUBLE_EQ(cluster.now_seconds(), 5.5);
}

TEST(ClusterTest, EndPhaseAsyncAdvancesByMean) {
  CostModel model;
  model.seconds_per_work = 1.0;
  model.barrier_latency_seconds = 0.5;
  Cluster cluster(2, model);
  cluster.machine(0).AddWork(2.0);
  cluster.machine(1).AddWork(4.0);
  double dt = cluster.EndPhaseAsync();
  EXPECT_DOUBLE_EQ(dt, 3.0);  // mean, no barrier
}

TEST(ClusterTest, PhaseChargesResetBetweenPhases) {
  CostModel model;
  model.seconds_per_work = 1.0;
  model.barrier_latency_seconds = 0;
  Cluster cluster(1, model);
  cluster.machine(0).AddWork(3.0);
  cluster.EndPhase();
  double dt = cluster.EndPhase();  // nothing charged this phase
  EXPECT_DOUBLE_EQ(dt, 0.0);
}

TEST(ClusterTest, PhaseBytesContributeTransferTime) {
  CostModel model;
  model.bandwidth_bytes_per_second = 10;
  model.barrier_latency_seconds = 0;
  Cluster cluster(1, model);
  cluster.machine(0).ChargePhaseBytes(20);
  EXPECT_DOUBLE_EQ(cluster.EndPhase(), 2.0);
  EXPECT_EQ(cluster.machine(0).bytes_sent(), 20u);
}

TEST(ClusterTest, BusySecondsAccumulatePerMachine) {
  CostModel model;
  model.seconds_per_work = 1.0;
  model.barrier_latency_seconds = 0;
  Cluster cluster(2, model);
  cluster.machine(0).AddWork(1.0);
  cluster.machine(1).AddWork(4.0);
  cluster.EndPhase();
  EXPECT_DOUBLE_EQ(cluster.machine(0).busy_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(cluster.machine(1).busy_seconds(), 4.0);
}

TEST(ClusterTest, CpuUtilizationReflectsImbalance) {
  CostModel model;
  model.seconds_per_work = 1.0;
  model.barrier_latency_seconds = 0;
  Cluster cluster(2, model);
  cluster.machine(0).AddWork(1.0);
  cluster.machine(1).AddWork(4.0);
  cluster.EndPhase();
  std::vector<double> utils = cluster.CpuUtilizations();
  EXPECT_DOUBLE_EQ(utils[0], 0.25);  // idle while waiting at the barrier
  EXPECT_DOUBLE_EQ(utils[1], 1.0);
}

TEST(ClusterTest, Aggregates) {
  Cluster cluster(2, CostModel{});
  cluster.machine(0).SendBytes(10);
  cluster.machine(1).SendBytes(30);
  cluster.machine(0).Allocate(100);
  cluster.machine(1).Allocate(300);
  EXPECT_EQ(cluster.TotalBytesSent(), 40u);
  EXPECT_EQ(cluster.TotalMemoryBytes(), 400u);
  EXPECT_EQ(cluster.MaxPeakMemoryBytes(), 300u);
  EXPECT_DOUBLE_EQ(cluster.MeanPeakMemoryBytes(), 200.0);
}

TEST(TimelineTest, SamplesTrackClockAndMemory) {
  Cluster cluster(2, CostModel{});
  Timeline timeline;
  cluster.machine(0).Allocate(100);
  timeline.Sample(cluster);
  cluster.machine(1).Allocate(300);
  cluster.AdvanceSeconds(5);
  timeline.Sample(cluster);
  ASSERT_EQ(timeline.samples().size(), 2u);
  EXPECT_DOUBLE_EQ(timeline.samples()[0].mean_memory_bytes, 50.0);
  EXPECT_DOUBLE_EQ(timeline.samples()[1].mean_memory_bytes, 200.0);
  EXPECT_DOUBLE_EQ(timeline.samples()[1].time_seconds, 5.0);
}

TEST(TimelineTest, MarksAndPeak) {
  Cluster cluster(1, CostModel{});
  Timeline timeline;
  cluster.machine(0).Allocate(500);
  timeline.Sample(cluster);
  cluster.AdvanceSeconds(1);
  timeline.Mark(cluster, "ingress-end");
  cluster.machine(0).Free(400);
  cluster.AdvanceSeconds(1);
  timeline.Sample(cluster);
  EXPECT_DOUBLE_EQ(timeline.MarkTime("ingress-end"), 1.0);
  EXPECT_DOUBLE_EQ(timeline.MarkTime("nope"), -1.0);
  EXPECT_DOUBLE_EQ(timeline.PeakMeanMemory(), 500.0);
  EXPECT_DOUBLE_EQ(timeline.PeakMeanMemoryTime(), 0.0);
}

}  // namespace
}  // namespace gdp::sim
