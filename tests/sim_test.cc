#include <gtest/gtest.h>

#include "sim/cluster.h"
#include "sim/phase_accumulator.h"
#include "sim/cost_model.h"
#include "sim/timeline.h"

namespace gdp::sim {
namespace {

TEST(CostModelTest, TransferAndWorkSeconds) {
  CostModel model;
  model.bandwidth_bytes_per_second = 100;
  model.seconds_per_work = 2.0;
  EXPECT_DOUBLE_EQ(model.TransferSeconds(50), 0.5);
  EXPECT_DOUBLE_EQ(model.WorkSeconds(3), 6.0);
}

TEST(MachineTest, MemoryPeakTracking) {
  Machine m;
  m.Allocate(100);
  m.Allocate(200);
  m.Free(250);
  EXPECT_EQ(m.memory_bytes(), 50u);
  EXPECT_EQ(m.peak_memory_bytes(), 300u);
}

TEST(MachineTest, FreeClampsAtZero) {
  Machine m;
  m.Allocate(10);
  m.Free(100);
  EXPECT_EQ(m.memory_bytes(), 0u);
}

TEST(ClusterTest, EndPhaseAdvancesByMaxPlusBarrier) {
  CostModel model;
  model.seconds_per_work = 1.0;
  model.barrier_latency_seconds = 0.5;
  Cluster cluster(3, model);
  cluster.machine(0).AddWork(1.0);
  cluster.machine(1).AddWork(5.0);  // straggler
  cluster.machine(2).AddWork(2.0);
  double dt = cluster.EndPhase();
  EXPECT_DOUBLE_EQ(dt, 5.5);
  EXPECT_DOUBLE_EQ(cluster.now_seconds(), 5.5);
}

TEST(ClusterTest, EndPhaseAsyncAdvancesByMean) {
  CostModel model;
  model.seconds_per_work = 1.0;
  model.barrier_latency_seconds = 0.5;
  Cluster cluster(2, model);
  cluster.machine(0).AddWork(2.0);
  cluster.machine(1).AddWork(4.0);
  double dt = cluster.EndPhaseAsync();
  EXPECT_DOUBLE_EQ(dt, 3.0);  // mean, no barrier
}

TEST(ClusterTest, PhaseChargesResetBetweenPhases) {
  CostModel model;
  model.seconds_per_work = 1.0;
  model.barrier_latency_seconds = 0;
  Cluster cluster(1, model);
  cluster.machine(0).AddWork(3.0);
  cluster.EndPhase();
  double dt = cluster.EndPhase();  // nothing charged this phase
  EXPECT_DOUBLE_EQ(dt, 0.0);
}

TEST(ClusterTest, PhaseBytesContributeTransferTime) {
  CostModel model;
  model.bandwidth_bytes_per_second = 10;
  model.barrier_latency_seconds = 0;
  Cluster cluster(1, model);
  cluster.machine(0).ChargePhaseBytes(20);
  EXPECT_DOUBLE_EQ(cluster.EndPhase(), 2.0);
  EXPECT_EQ(cluster.machine(0).bytes_sent(), 20u);
}

TEST(ClusterTest, BusySecondsAccumulatePerMachine) {
  CostModel model;
  model.seconds_per_work = 1.0;
  model.barrier_latency_seconds = 0;
  Cluster cluster(2, model);
  cluster.machine(0).AddWork(1.0);
  cluster.machine(1).AddWork(4.0);
  cluster.EndPhase();
  EXPECT_DOUBLE_EQ(cluster.machine(0).busy_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(cluster.machine(1).busy_seconds(), 4.0);
}

TEST(ClusterTest, CpuUtilizationReflectsImbalance) {
  CostModel model;
  model.seconds_per_work = 1.0;
  model.barrier_latency_seconds = 0;
  Cluster cluster(2, model);
  cluster.machine(0).AddWork(1.0);
  cluster.machine(1).AddWork(4.0);
  cluster.EndPhase();
  std::vector<double> utils = cluster.CpuUtilizations();
  EXPECT_DOUBLE_EQ(utils[0], 0.25);  // idle while waiting at the barrier
  EXPECT_DOUBLE_EQ(utils[1], 1.0);
}

TEST(ClusterTest, Aggregates) {
  Cluster cluster(2, CostModel{});
  cluster.machine(0).SendBytes(10);
  cluster.machine(1).SendBytes(30);
  cluster.machine(0).Allocate(100);
  cluster.machine(1).Allocate(300);
  EXPECT_EQ(cluster.TotalBytesSent(), 40u);
  EXPECT_EQ(cluster.TotalMemoryBytes(), 400u);
  EXPECT_EQ(cluster.MaxPeakMemoryBytes(), 300u);
  EXPECT_DOUBLE_EQ(cluster.MeanPeakMemoryBytes(), 200.0);
}

TEST(TimelineTest, SamplesTrackClockAndMemory) {
  Cluster cluster(2, CostModel{});
  Timeline timeline;
  cluster.machine(0).Allocate(100);
  timeline.Sample(cluster);
  cluster.machine(1).Allocate(300);
  cluster.AdvanceSeconds(5);
  timeline.Sample(cluster);
  ASSERT_EQ(timeline.samples().size(), 2u);
  EXPECT_DOUBLE_EQ(timeline.samples()[0].mean_memory_bytes, 50.0);
  EXPECT_DOUBLE_EQ(timeline.samples()[1].mean_memory_bytes, 200.0);
  EXPECT_DOUBLE_EQ(timeline.samples()[1].time_seconds, 5.0);
}

TEST(TimelineTest, MarksAndPeak) {
  Cluster cluster(1, CostModel{});
  Timeline timeline;
  cluster.machine(0).Allocate(500);
  timeline.Sample(cluster);
  cluster.AdvanceSeconds(1);
  timeline.Mark(cluster, "ingress-end");
  cluster.machine(0).Free(400);
  cluster.AdvanceSeconds(1);
  timeline.Sample(cluster);
  EXPECT_DOUBLE_EQ(timeline.MarkTime("ingress-end"), 1.0);
  EXPECT_DOUBLE_EQ(timeline.MarkTime("nope"), -1.0);
  EXPECT_DOUBLE_EQ(timeline.PeakMeanMemory(), 500.0);
  EXPECT_DOUBLE_EQ(timeline.PeakMeanMemoryTime(), 0.0);
}


// ---------------------------------------------------------------------------
// Machine allocate/free symmetry
// ---------------------------------------------------------------------------

TEST(MachineTest, FreeOfExactAllocationReturnsToZero) {
  Machine m;
  m.Allocate(4096);
  m.Free(4096);  // an exact refund must not leave a stuck byte
  EXPECT_EQ(m.memory_bytes(), 0u);
  EXPECT_EQ(m.peak_memory_bytes(), 4096u);
}

TEST(MachineTest, InterleavedAllocateFreePairsBalance) {
  Machine m;
  for (uint64_t bytes : {64u, 48u, 16u, 24u}) m.Allocate(bytes);
  for (uint64_t bytes : {24u, 16u, 48u, 64u}) m.Free(bytes);
  EXPECT_EQ(m.memory_bytes(), 0u);
  m.Allocate(100);
  EXPECT_EQ(m.memory_bytes(), 100u);
  EXPECT_EQ(m.peak_memory_bytes(), 152u);
}

// ---------------------------------------------------------------------------
// PhaseAccumulator
// ---------------------------------------------------------------------------

TEST(PhaseAccumulatorTest, MergeIsOrderFree) {
  PhaseAccumulator a, b;
  a.Reset(2);
  b.Reset(2);
  a.AddWorkUnits(0, 5);
  a.ChargeSendBytes(1, 100);
  b.AddWorkUnits(0, 7);
  b.ChargeReceiveBytes(0, 30);
  PhaseAccumulator a2 = a, b2 = b;
  a.Merge(b);
  b2.Merge(a2);
  for (MachineId m = 0; m < 2; ++m) {
    EXPECT_EQ(a.work_units(m), b2.work_units(m));
    EXPECT_EQ(a.sent_bytes(m), b2.sent_bytes(m));
    EXPECT_EQ(a.recv_bytes(m), b2.recv_bytes(m));
  }
}

TEST(PhaseAccumulatorTest, FlushToChargesClusterOnce) {
  Cluster cluster(2, CostModel{});
  PhaseAccumulator acc;
  acc.Reset(2);
  acc.AddWorkUnits(0, 8);          // 8 quarter-units = 2.0 work at unit 0.25
  acc.ChargeSendBytes(0, 1000);
  acc.ChargeReceiveBytes(1, 1000);
  acc.FlushTo(cluster, 0.25);
  EXPECT_DOUBLE_EQ(cluster.machine(0).phase_work(), 2.0);
  EXPECT_EQ(cluster.machine(0).phase_bytes(), 1000u);
  EXPECT_EQ(cluster.machine(0).bytes_sent(), 1000u);
  EXPECT_EQ(cluster.machine(1).bytes_received(), 1000u);
}

TEST(PhaseAccumulatorTest, FlushToReplayMatchesSerialAccumulation) {
  // Replay of k whole-unit charges must reproduce serial += exactly, even
  // for a unit value whose repeated sum is inexact.
  const double work = 0.3;
  const int k = 1000;
  Cluster serial(1, CostModel{});
  for (int i = 0; i < k; ++i) serial.machine(0).AddWork(work);

  Cluster replayed(1, CostModel{});
  PhaseAccumulator acc;
  acc.Reset(1);
  acc.AddWorkUnits(0, 4 * k);
  acc.FlushToReplay(replayed, 0.25 * work);
  EXPECT_EQ(replayed.machine(0).phase_work(), serial.machine(0).phase_work());
}

TEST(PhaseAccumulatorTest, ClosedFormExactForDyadicUnits) {
  // 0.25 = 1 * 2^-2: one mantissa bit, exact up to huge counts.
  EXPECT_TRUE(PhaseAccumulator::ClosedFormExact(0.25, 1ULL << 50));
  EXPECT_TRUE(PhaseAccumulator::ClosedFormExact(1.0, 1ULL << 50));
  EXPECT_TRUE(PhaseAccumulator::ClosedFormExact(0.0, 1ULL << 60));
  // 0.3 uses the full 53-bit mantissa: only trivial counts are exact.
  EXPECT_FALSE(PhaseAccumulator::ClosedFormExact(0.3, 1ULL << 20));
  // 0.75 = 3 * 2^-2: two mantissa bits, still exact for realistic counts.
  EXPECT_TRUE(PhaseAccumulator::ClosedFormExact(0.75, 1ULL << 50));
  EXPECT_FALSE(PhaseAccumulator::ClosedFormExact(0.75, 1ULL << 52));
}

}  // namespace
}  // namespace gdp::sim
