#include <gtest/gtest.h>

#include "graph/generators.h"
#include "partition/ingest.h"
#include "sim/cluster.h"
#include "sim/timeline.h"

namespace gdp::partition {
namespace {

PartitionContext MakeContext(uint32_t partitions, graph::VertexId vertices,
                             uint32_t loaders = 0) {
  PartitionContext context;
  context.num_partitions = partitions;
  context.num_vertices = vertices;
  context.num_loaders = loaders == 0 ? partitions : loaders;
  context.seed = 13;
  return context;
}

TEST(IngestTest, ReplicationFactorMatchesManualCount) {
  graph::EdgeList edges;
  edges.AddEdge(0, 1);
  edges.AddEdge(1, 2);
  edges.AddEdge(2, 3);
  sim::Cluster cluster(3, sim::CostModel{});
  IngestResult r = IngestWithStrategy(edges, StrategyKind::kRandom,
                                      MakeContext(3, 4), cluster);
  uint64_t replicas = 0;
  for (graph::VertexId v = 0; v < 4; ++v) {
    replicas += r.graph.replicas.Count(v);
  }
  EXPECT_DOUBLE_EQ(r.graph.replication_factor, replicas / 4.0);
}

TEST(IngestTest, SinglePartitionDegenerateCase) {
  graph::EdgeList edges = graph::GenerateErdosRenyi(
      {.num_vertices = 50, .num_edges = 200, .seed = 3});
  sim::Cluster cluster(1, sim::CostModel{});
  IngestResult r = IngestWithStrategy(edges, StrategyKind::kRandom,
                                      MakeContext(1, 50), cluster);
  EXPECT_DOUBLE_EQ(r.graph.replication_factor, 1.0);
  EXPECT_EQ(r.graph.partition_edge_count[0], 200u);
}

TEST(IngestTest, MastersFollowPolicyRandomReplica) {
  graph::EdgeList edges = graph::GenerateErdosRenyi(
      {.num_vertices = 200, .num_edges = 800, .seed = 4});
  sim::Cluster cluster(5, sim::CostModel{});
  IngestOptions options;
  options.master_policy = MasterPolicy::kRandomReplica;
  IngestResult r = IngestWithStrategy(edges, StrategyKind::kRandom,
                                      MakeContext(5, 200), cluster, options);
  // With kRandomReplica the master never creates a brand-new replica:
  // replication factor equals the edge-induced replica average.
  for (graph::VertexId v = 0; v < 200; ++v) {
    if (!r.graph.present[v]) continue;
    // The master is one of the edge-hosting partitions.
    bool has_edge_there =
        r.graph.in_edge_partitions.Contains(v, r.graph.master[v]) ||
        r.graph.out_edge_partitions.Contains(v, r.graph.master[v]);
    EXPECT_TRUE(has_edge_there);
  }
}

TEST(IngestTest, VertexHashPolicyMayAddMasterOnlyReplicas) {
  graph::EdgeList edges = graph::GenerateErdosRenyi(
      {.num_vertices = 300, .num_edges = 400, .seed = 5});
  sim::Cluster pg_cluster(7, sim::CostModel{});
  sim::Cluster gx_cluster(7, sim::CostModel{});
  IngestOptions random_replica;
  random_replica.master_policy = MasterPolicy::kRandomReplica;
  IngestOptions vertex_hash;
  vertex_hash.master_policy = MasterPolicy::kVertexHash;
  double rf_pg = IngestWithStrategy(edges, StrategyKind::kRandom,
                                    MakeContext(7, 300), pg_cluster,
                                    random_replica)
                     .report.replication_factor;
  double rf_gx = IngestWithStrategy(edges, StrategyKind::kRandom,
                                    MakeContext(7, 300), gx_cluster,
                                    vertex_hash)
                     .report.replication_factor;
  EXPECT_GE(rf_gx, rf_pg);  // hash-located masters add replicas
}

TEST(IngestTest, MultiPassChargesMoves) {
  graph::EdgeList star;
  for (graph::VertexId i = 1; i <= 300; ++i) star.AddEdge(i, 0);
  sim::Cluster cluster(4, sim::CostModel{});
  IngestResult r = IngestWithStrategy(star, StrategyKind::kHybrid,
                                      MakeContext(4, 301), cluster);
  EXPECT_GT(r.report.edges_moved, 0u);
  EXPECT_EQ(r.report.pass_seconds.size(), 3u);  // 2 passes + finalize
}

TEST(IngestTest, IngressTimeGrowsWithGraphSize) {
  graph::EdgeList small = graph::GenerateErdosRenyi(
      {.num_vertices = 200, .num_edges = 1000, .seed = 6});
  graph::EdgeList large = graph::GenerateErdosRenyi(
      {.num_vertices = 2000, .num_edges = 20000, .seed = 7});
  sim::Cluster c1(4, sim::CostModel{});
  sim::Cluster c2(4, sim::CostModel{});
  double t_small = IngestWithStrategy(small, StrategyKind::kGrid,
                                      MakeContext(4, 200), c1)
                       .report.ingress_seconds;
  double t_large = IngestWithStrategy(large, StrategyKind::kGrid,
                                      MakeContext(4, 2000), c2)
                       .report.ingress_seconds;
  EXPECT_GT(t_large, t_small * 5);
}

TEST(IngestTest, MoreMachinesPartitionFaster) {
  // Parallel loading: the same graph ingests faster on more machines
  // (visible in Figs 5.7/8.2 as EC2-25 < Local-9 ingress).
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 5000, .edges_per_vertex = 6, .seed = 8});
  sim::Cluster c9(9, sim::CostModel{});
  sim::Cluster c25(25, sim::CostModel{});
  double t9 = IngestWithStrategy(edges, StrategyKind::kGrid,
                                 MakeContext(9, edges.num_vertices()), c9)
                  .report.ingress_seconds;
  double t25 = IngestWithStrategy(edges, StrategyKind::kGrid,
                                  MakeContext(25, edges.num_vertices()), c25)
                   .report.ingress_seconds;
  EXPECT_LT(t25, t9);
}

TEST(IngestTest, TimelineMarksIngressEnd) {
  graph::EdgeList edges = graph::GenerateErdosRenyi(
      {.num_vertices = 100, .num_edges = 500, .seed = 9});
  sim::Cluster cluster(4, sim::CostModel{});
  sim::Timeline timeline;
  IngestOptions options;
  options.exec.timeline = &timeline;
  IngestWithStrategy(edges, StrategyKind::kRandom, MakeContext(4, 100),
                     cluster, options);
  EXPECT_GE(timeline.MarkTime("ingress-end"), 0.0);
  EXPECT_GE(timeline.samples().size(), 2u);
}

TEST(IngestTest, MemoryChargedForEdgesAndReplicas) {
  graph::EdgeList edges = graph::GenerateErdosRenyi(
      {.num_vertices = 500, .num_edges = 3000, .seed = 10});
  sim::Cluster cluster(4, sim::CostModel{});
  IngestWithStrategy(edges, StrategyKind::kRandom, MakeContext(4, 500),
                     cluster);
  // At least edge_record per edge across the cluster.
  EXPECT_GE(cluster.TotalMemoryBytes(), 3000u * 16);
}

TEST(IngestTest, GreedyStateFreedAfterIngress) {
  graph::EdgeList edges = graph::GenerateErdosRenyi(
      {.num_vertices = 5000, .num_edges = 10000, .seed = 11});
  sim::Cluster cluster(4, sim::CostModel{});
  IngestResult r = IngestWithStrategy(edges, StrategyKind::kOblivious,
                                      MakeContext(4, 5000, 4), cluster);
  EXPECT_GT(r.report.peak_state_bytes, 0u);
  // Peak memory exceeds resident memory after ingress (state released).
  EXPECT_GT(cluster.MaxPeakMemoryBytes(),
            cluster.TotalMemoryBytes() / cluster.num_machines());
}

TEST(IngestTest, GraphXStylePartitionsExceedMachines) {
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 3000, .edges_per_vertex = 5, .seed = 12});
  sim::Cluster cluster(9, sim::CostModel{});
  PartitionContext context = MakeContext(72, edges.num_vertices(), 9);
  IngestResult r = IngestWithStrategy(edges, StrategyKind::kTwoD, context,
                                      cluster);
  EXPECT_EQ(r.graph.num_partitions, 72u);
  EXPECT_EQ(r.graph.num_machines, 9u);
  // Partition -> machine folding.
  EXPECT_EQ(r.graph.MachineOfPartition(71), 71u % 9);
  // Replication counted per partition can exceed machine count bounds.
  EXPECT_GE(r.graph.replication_factor, 1.0);
}

TEST(IngestTest, DeterministicAcrossRuns) {
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 1000, .edges_per_vertex = 4, .seed = 13});
  sim::Cluster c1(5, sim::CostModel{});
  sim::Cluster c2(5, sim::CostModel{});
  IngestResult a = IngestWithStrategy(edges, StrategyKind::kHdrf,
                                      MakeContext(5, 1000, 5), c1);
  IngestResult b = IngestWithStrategy(edges, StrategyKind::kHdrf,
                                      MakeContext(5, 1000, 5), c2);
  EXPECT_EQ(a.graph.edge_partition, b.graph.edge_partition);
  EXPECT_DOUBLE_EQ(a.report.replication_factor,
                   b.report.replication_factor);
}

}  // namespace
}  // namespace gdp::partition
