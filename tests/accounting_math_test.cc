// Pins the engines' communication disciplines with hand-computed message
// counts on a tiny, fully-controlled placement. If these change, every
// figure bench changes — this is the contract of DESIGN.md's engine table.

#include <gtest/gtest.h>

#include "apps/pagerank.h"
#include "engine/gas_engine.h"
#include "sim/cluster.h"

namespace gdp::engine {
namespace {

// Placement under test, built by hand (no partitioner):
//   machines: 2 (partitions == machines)
//   edges: (0,1) on partition 0; (2,1) on partition 1; (1,3) on partition 1
//   masters: 0->m0, 1->m0, 2->m1, 3->m1
// Derived per vertex:
//   v0: replicas {0}, in {}, out {0};        master m0
//   v1: replicas {0,1}, in {0,1}, out {1};   master m0  (mirror on m1)
//   v2: replicas {1}, in {}, out {1};        master m1
//   v3: replicas {1}, in {1}, out {};        master m1
partition::DistributedGraph HandGraph() {
  partition::DistributedGraph dg;
  dg.num_partitions = 2;
  dg.num_machines = 2;
  dg.num_vertices = 4;
  dg.edges = {{0, 1}, {2, 1}, {1, 3}};
  dg.edge_partition = {0, 1, 1};
  dg.replicas = partition::ReplicaTable(4, 2);
  dg.in_edge_partitions = partition::ReplicaTable(4, 2);
  dg.out_edge_partitions = partition::ReplicaTable(4, 2);
  for (size_t i = 0; i < dg.edges.size(); ++i) {
    const graph::Edge& e = dg.edges[i];
    dg.replicas.Add(e.src, dg.edge_partition[i]);
    dg.replicas.Add(e.dst, dg.edge_partition[i]);
    dg.out_edge_partitions.Add(e.src, dg.edge_partition[i]);
    dg.in_edge_partitions.Add(e.dst, dg.edge_partition[i]);
  }
  dg.master = {0, 0, 1, 1};
  dg.present = {true, true, true, true};
  dg.num_present_vertices = 4;
  dg.partition_edge_count = {1, 2};
  dg.replication_factor = 5.0 / 4.0;
  return dg;
}

/// PageRank with tolerance 0: every vertex signals every superstep.
/// One superstep's expected messages (sizes: gather 24B + its 8B request,
/// sync 24B):
///
/// PowerGraph (mirrors = all replicas):
///   v1 is the only replicated vertex: mirror m1 -> master m0 carries one
///   gather round trip (8 out of m0 + 24 out of m1) and one sync
///   (24 out of m0). All other vertices are single-replica: nothing.
///   Per superstep: m0 sends 8+24 = 32, m1 sends 24. Total 56 bytes.
TEST(AccountingMathTest, PowerGraphBytesMatchHandCount) {
  partition::DistributedGraph dg = HandGraph();
  sim::Cluster cluster(2, sim::CostModel{});
  RunOptions options;
  options.max_iterations = 1;
  auto run = RunGasEngine(EngineKind::kPowerGraphSync, dg, cluster,
                          apps::PageRankFixed(), options);
  EXPECT_EQ(run.stats.network_bytes, 56u);
  EXPECT_EQ(cluster.machine(0).bytes_sent(), 32u);
  EXPECT_EQ(cluster.machine(1).bytes_sent(), 24u);
}

/// PowerLyra, every vertex here is low-degree (threshold 100):
///   gather messages come only from gather-direction (in-edge) machines:
///   v1's in-edges live on m0 and m1; master m0 -> round trip with m1
///   (8 + 24). Sync goes only to scatter-direction (out-edge) machines:
///   v1's out-edges are on m1 only -> one sync (24) from m0.
///   Identical 56 bytes here — but distributed differently when the
///   directions disagree; v3's in-edge is local to its master, so still
///   nothing for the others.
TEST(AccountingMathTest, PowerLyraBytesMatchHandCount) {
  partition::DistributedGraph dg = HandGraph();
  sim::Cluster cluster(2, sim::CostModel{});
  RunOptions options;
  options.max_iterations = 1;
  auto run = RunGasEngine(EngineKind::kPowerLyraHybrid, dg, cluster,
                          apps::PageRankFixed(), options);
  EXPECT_EQ(run.stats.network_bytes, 56u);
}

/// Make v1's master m1 instead: now its in-edges {m0,m1} still straddle,
/// but its out-edges {m1} are local to the master.
///   PowerGraph: gather round trip m0<->m1 (32) + sync to mirror m0 (24)
///   = 56 again (replicas don't change).
///   PowerLyra low-degree: gather round trip (32) + sync to out-machines
///   minus master = {} -> 0. Total 32: the §6.4.1 saving, in miniature.
TEST(AccountingMathTest, PowerLyraSkipsScatterLocalSync) {
  partition::DistributedGraph dg = HandGraph();
  dg.master[1] = 1;
  sim::Cluster c1(2, sim::CostModel{});
  sim::Cluster c2(2, sim::CostModel{});
  RunOptions options;
  options.max_iterations = 1;
  auto pg = RunGasEngine(EngineKind::kPowerGraphSync, dg, c1,
                         apps::PageRankFixed(), options);
  auto pl = RunGasEngine(EngineKind::kPowerLyraHybrid, dg, c2,
                         apps::PageRankFixed(), options);
  EXPECT_EQ(pg.stats.network_bytes, 56u);
  EXPECT_EQ(pl.stats.network_bytes, 32u);
}

/// High-degree vertices lose the PowerLyra saving: force the threshold to
/// zero so every vertex counts as high-degree, and PowerLyra's sync set
/// falls back to all mirrors — byte-for-byte PowerGraph behaviour.
TEST(AccountingMathTest, PowerLyraHighDegreeFallsBackToPowerGraph) {
  partition::DistributedGraph dg = HandGraph();
  dg.master[1] = 1;
  sim::Cluster c1(2, sim::CostModel{});
  sim::Cluster c2(2, sim::CostModel{});
  RunOptions options;
  options.max_iterations = 1;
  options.high_degree_threshold = 0;  // everyone is "high-degree"
  auto pg = RunGasEngine(EngineKind::kPowerGraphSync, dg, c1,
                         apps::PageRankFixed(), options);
  auto pl = RunGasEngine(EngineKind::kPowerLyraHybrid, dg, c2,
                         apps::PageRankFixed(), options);
  EXPECT_EQ(pl.stats.network_bytes, pg.stats.network_bytes);
}

/// GraphX with both partitions on ONE machine: partition-level replication
/// persists (shuffle-block work is charged) but no bytes cross a machine
/// boundary.
TEST(AccountingMathTest, GraphXIntraMachineTrafficIsFree) {
  partition::DistributedGraph dg = HandGraph();
  dg.num_machines = 1;
  dg.master = {0, 0, 0, 0};
  // Ingest materializes a replica at every master's location (v2 and v3
  // were only on partition 1); mirror that here or the structural
  // validators reject the placement in debug builds.
  dg.replicas.Add(2, 0);
  dg.replicas.Add(3, 0);
  dg.replication_factor = 7.0 / 4.0;
  sim::Cluster cluster(1, sim::CostModel{});
  RunOptions options;
  options.max_iterations = 1;
  auto run = RunGasEngine(EngineKind::kGraphXPregel, dg, cluster,
                          apps::PageRankFixed(), options);
  EXPECT_EQ(run.stats.network_bytes, 0u);
  EXPECT_GT(cluster.machine(0).busy_seconds(), 0.0);
}

}  // namespace
}  // namespace gdp::engine
