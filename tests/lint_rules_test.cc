// Self-tests for tools/gdp_lint.cc: each rule gets at least one fixture
// snippet that must trigger it and one that must stay clean, plus NOLINT
// suppression coverage. The fixtures are written into a fresh temp
// directory shaped like a repo root (src/sim/..., src/obs/..., tests/...)
// and the real gdp_lint binary (path injected by CMake as GDP_LINT_BIN)
// runs over it; assertions parse the "path:line: [rule]" findings it
// prints. That exercises the production scanner end to end — directory
// walk, comment/string stripping, rule scoping — not a reimplementation.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

#ifndef GDP_LINT_BIN
#error "GDP_LINT_BIN must be defined to the gdp_lint executable path"
#endif

/// One fixture tree + one linter run. Construct, add files, call Run().
class LintFixture {
 public:
  LintFixture() {
    root_ = fs::temp_directory_path() /
            ("gdp_lint_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + "_" +
             std::to_string(counter_++));
    fs::create_directories(root_);
  }
  ~LintFixture() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  void AddFile(const std::string& rel, const std::string& contents) {
    const fs::path path = root_ / rel;
    fs::create_directories(path.parent_path());
    std::ofstream out(path);
    out << contents;
  }

  /// Runs gdp_lint over the fixture root; returns every finding line
  /// ("path:line: [rule] message") plus the exit code.
  struct Result {
    int exit_code = -1;
    std::vector<std::string> findings;
    std::string output;
  };
  Result Run() const {
    const fs::path out_path = root_ / "lint_output.txt";
    const std::string command = std::string(GDP_LINT_BIN) + " " +
                                root_.string() + " > " + out_path.string() +
                                " 2>&1";
    const int status = std::system(command.c_str());
    Result result;
    result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    std::ifstream in(out_path);
    std::string line;
    while (std::getline(in, line)) {
      result.output += line + "\n";
      if (line.find(": [") != std::string::npos) {
        result.findings.push_back(line);
      }
    }
    return result;
  }

 private:
  static inline int counter_ = 0;
  fs::path root_;
};

/// True when some finding mentions both `rule` and `path_fragment`.
bool HasFinding(const LintFixture::Result& result, const std::string& rule,
                const std::string& path_fragment) {
  for (const std::string& f : result.findings) {
    if (f.find("[" + rule + "]") != std::string::npos &&
        f.find(path_fragment) != std::string::npos) {
      return true;
    }
  }
  return false;
}

/// A minimal header body that satisfies the always-on rules (header guard).
std::string Header(const std::string& body) {
  // Fixture bodies are raw strings that begin with a newline, so body
  // content line k lands on file line 2 + k.
  return "#ifndef FIXTURE_H_\n#define FIXTURE_H_" + body + "#endif\n";
}

// ---------------------------------------------------------------------------
// no-wall-clock
// ---------------------------------------------------------------------------

TEST(LintNoWallClock, FlagsClockReadsInSrc) {
  LintFixture fx;
  fx.AddFile("src/sim/bad_clock.h", Header(R"(
inline double Now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
inline long Stamp() { return time(nullptr); }
)"));
  const auto r = fx.Run();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(HasFinding(r, "no-wall-clock", "bad_clock.h:4")) << r.output;
  EXPECT_TRUE(HasFinding(r, "no-wall-clock", "bad_clock.h:6")) << r.output;
}

TEST(LintNoWallClock, AllowsObsLayerBenchesAndNolint) {
  LintFixture fx;
  // src/obs/ is the sanctioned wall-clock consumer.
  fx.AddFile("src/obs/spans.h", Header(R"(
/// Wall origin for span stamps.
inline double WallOrigin() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
)"));
  // bench/ harness timing is out of scope entirely.
  fx.AddFile("bench/bench_timing.cc",
             "int main() { return time(nullptr) != 0; }\n");
  // NOLINT suppresses in src/.
  fx.AddFile("src/sim/pinned.h", Header(R"(
inline long Stamp() { return time(nullptr); }  // NOLINT(no-wall-clock)
)"));
  // A MarkTime() call is not a time() call.
  fx.AddFile("src/sim/marks.h", Header(R"(
struct T { double MarkTime(int m) { return m * 2.0; } };
)"));
  const auto r = fx.Run();
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// ---------------------------------------------------------------------------
// no-float-accumulate
// ---------------------------------------------------------------------------

TEST(LintNoFloatAccumulate, FlagsFloatMemberAccumulation) {
  LintFixture fx;
  fx.AddFile("src/sim/acc.h", Header(R"(
struct Acc {
  void Tick(double d) { seconds_ += d; }
  double seconds_ = 0;
};
)"));
  const auto r = fx.Run();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(HasFinding(r, "no-float-accumulate", "acc.h:4")) << r.output;
}

TEST(LintNoFloatAccumulate, SeesMembersDeclaredInCompanionHeader) {
  LintFixture fx;
  fx.AddFile("src/sim/acc2.h", Header(R"(
struct Acc2 {
  void Tick(double d);
  double total_seconds_ = 0;
};
)"));
  fx.AddFile("src/sim/acc2.cc",
             "#include \"sim/acc2.h\"\n"
             "void Acc2::Tick(double d) { total_seconds_ += d; }\n");
  const auto r = fx.Run();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(HasFinding(r, "no-float-accumulate", "acc2.cc:2")) << r.output;
}

TEST(LintNoFloatAccumulate, AllowsIntegerMembersLocalsAndNolint) {
  LintFixture fx;
  // Integer tick accounting is the sanctioned pattern.
  fx.AddFile("src/sim/ticks.h", Header(R"(
struct Ticks {
  void Add(unsigned long t) { ticks_ += t; }
  unsigned long ticks_ = 0;
};
)"));
  // Function-local double reductions are serial by construction: no member.
  fx.AddFile("src/sim/local.h", Header(R"(
inline double Sum(const double* xs, int n) {
  double total = 0;
  for (int i = 0; i < n; ++i) total += xs[i];
  return total;
}
)"));
  // NOLINT marks a justified serial barrier-point fold.
  fx.AddFile("src/sim/barrier.h", Header(R"(
struct Clock {
  void Advance(double d) { now_ += d; }  // NOLINT(no-float-accumulate)
  double now_ = 0;
};
)"));
  // Outside the accounting paths (src/engine/...) the rule does not apply.
  fx.AddFile("src/engine/stats.h", Header(R"(
struct S {
  void Fold(double d) { mean_ += d; }
  double mean_ = 0;
};
)"));
  const auto r = fx.Run();
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// ---------------------------------------------------------------------------
// no-unordered-iteration
// ---------------------------------------------------------------------------

TEST(LintNoUnorderedIteration, FlagsRangeForOverHashContainers) {
  LintFixture fx;
  fx.AddFile("src/graph/walk.h", Header(R"(
#include <unordered_map>
#include <unordered_set>
struct W {
  void Visit() {
    for (auto& kv : table_) { (void)kv; }
    for (int v : seen_) { (void)v; }
  }
  std::unordered_map<int, int> table_;
  std::unordered_set<int> seen_;
};
)"));
  const auto r = fx.Run();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(HasFinding(r, "no-unordered-iteration", "walk.h:7")) << r.output;
  EXPECT_TRUE(HasFinding(r, "no-unordered-iteration", "walk.h:8")) << r.output;
}

TEST(LintNoUnorderedIteration, AllowsMembershipSortedMirrorsAndNolint) {
  LintFixture fx;
  // Hash containers used for membership only, iterating an ordered mirror.
  fx.AddFile("src/graph/dedup.h", Header(R"(
#include <unordered_set>
#include <vector>
struct D {
  void Add(int v) {
    if (seen_.insert(v).second) order_.push_back(v);
  }
  void Emit() {
    for (int v : order_) { (void)v; }
  }
  std::unordered_set<int> seen_;
  std::vector<int> order_;
};
)"));
  // NOLINT escape for order-insensitive folds.
  fx.AddFile("src/graph/fold.h", Header(R"(
#include <unordered_set>
struct F {
  long Sum() {
    long total = 0;
    for (int v : seen_) total += v;  // NOLINT(no-unordered-iteration)
    return total;
  }
  std::unordered_set<int> seen_;
};
)"));
  // tests/ are out of scope for this rule.
  fx.AddFile("tests/iter_test.cc",
             "#include <unordered_set>\n"
             "void F() {\n"
             "  std::unordered_set<int> s;\n"
             "  for (int v : s) { (void)v; }\n"
             "}\n");
  const auto r = fx.Run();
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// ---------------------------------------------------------------------------
// mutex-annotated
// ---------------------------------------------------------------------------

TEST(LintMutexAnnotated, FlagsUnannotatedMutexMembers) {
  LintFixture fx;
  fx.AddFile("src/util/bare.h", Header(R"(
#include <mutex>
struct Bare {
  int value_ = 0;
  std::mutex mu_;
};
)"));
  const auto r = fx.Run();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(HasFinding(r, "mutex-annotated", "bare.h:6")) << r.output;
}

TEST(LintMutexAnnotated, AllowsGuardedMutexAndNolint) {
  LintFixture fx;
  // A GDP_GUARDED_BY reference satisfies the rule (std::mutex and the
  // util::Mutex wrapper alike).
  fx.AddFile("src/util/guarded.h", Header(R"(
#include <mutex>
struct Guarded {
  int value_ GDP_GUARDED_BY(mu_) = 0;
  std::mutex mu_;
};
struct WrapperGuarded {
  int value_ GDP_GUARDED_BY(wrapped_mu_) = 0;
  util::Mutex wrapped_mu_;
};
)"));
  // NOLINT for a mutex guarding state the attribute cannot name.
  fx.AddFile("src/util/external.h", Header(R"(
#include <mutex>
struct External {
  std::mutex stream_mu_;  // NOLINT(mutex-annotated): guards std::cerr
};
)"));
  const auto r = fx.Run();
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// ---------------------------------------------------------------------------
// no-per-edge-accounting
// ---------------------------------------------------------------------------

TEST(LintNoPerEdgeAccounting, FlagsPerEntryMachineChargesInEngine) {
  LintFixture fx;
  fx.AddFile("src/engine/hot_loop.h", Header(R"(
inline void Gather(Acc& acc, const Plan& plan, uint64_t b, uint64_t e) {
  for (uint64_t s = b; s < e; ++s) {
    acc.AddWorkUnits(plan.gather_machine[s], 4);
  }
}
)"));
  const auto r = fx.Run();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(HasFinding(r, "no-per-edge-accounting", "hot_loop.h:5"))
      << r.output;
}

TEST(LintNoPerEdgeAccounting, AllowsRunTablesOtherDirsAndNolint) {
  LintFixture fx;
  // Batched accounting through the plan's run tables: the machine argument
  // is RunMachine(run), not a per-entry array index.
  fx.AddFile("src/engine/batched.h", Header(R"(
inline void Charge(Acc& acc, const Plan& plan, uint64_t v) {
  for (uint64_t r = plan.run_offsets[v]; r < plan.run_offsets[v + 1]; ++r) {
    const uint32_t run = plan.runs[r];
    acc.AddWorkUnits(Plan::RunMachine(run), 4ULL * Plan::RunCount(run));
  }
}
)"));
  // Outside src/engine/ the rule does not apply (sim's accumulator tests
  // exercise the raw call shape deliberately).
  fx.AddFile("src/sim/accum_use.h", Header(R"(
inline void Exercise(Acc& acc, const Tags& edge_machine, uint64_t s) {
  acc.AddWorkUnits(edge_machine[s], 4);
}
)"));
  // The preserved per-edge baseline carries a NOLINT justification.
  fx.AddFile("src/engine/baseline.h", Header(R"(
inline void Baseline(Acc& acc, const Plan& plan, uint64_t s) {
  acc.AddWorkUnits(plan.gather_machine[s], 4);  // NOLINT(no-per-edge-accounting)
}
)"));
  const auto r = fx.Run();
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// ---------------------------------------------------------------------------
// Serving-layer shape: the bounded-queue scheduler pattern used by
// src/serving/ — admission state guarded by an annotated mutex, latencies
// in integer *simulated* microseconds — must pass every rule untouched,
// and the tempting shortcuts (wall-clock latency stamps, a bare queue
// mutex) must each fire.
// ---------------------------------------------------------------------------

TEST(LintServingShape, BoundedQueueSchedulerPassesClean) {
  LintFixture fx;
  fx.AddFile("src/serving/mini_server.h", Header(R"(
#include <cstdint>
#include <mutex>
#include <vector>
struct MiniServer {
  bool Admit(uint64_t id, uint64_t arrival_us) {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.size() >= capacity_) { rejected_++; return false; }
    queue_.push_back(id);
    admitted_at_us_.push_back(arrival_us);  // simulated clock, caller-owned
    return true;
  }
  size_t capacity_ = 64;
  std::vector<uint64_t> queue_ GDP_GUARDED_BY(mu_);
  std::vector<uint64_t> admitted_at_us_ GDP_GUARDED_BY(mu_);
  uint64_t rejected_ GDP_GUARDED_BY(mu_) = 0;
  std::mutex mu_;
};
)"));
  const auto r = fx.Run();
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.findings.empty()) << r.output;
}

TEST(LintServingShape, WallClockLatencyAndBareQueueMutexFire) {
  LintFixture fx;
  fx.AddFile("src/serving/bad_server.h", Header(R"(
#include <chrono>
#include <cstdint>
#include <mutex>
struct BadServer {
  uint64_t StampLatency() {
    return std::chrono::steady_clock::now().time_since_epoch().count();
  }
  uint64_t depth_ = 0;
  std::mutex queue_mu_;
};
)"));
  const auto r = fx.Run();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(HasFinding(r, "no-wall-clock", "bad_server.h:8")) << r.output;
  EXPECT_TRUE(HasFinding(r, "mutex-annotated", "bad_server.h:11")) << r.output;
}

// ---------------------------------------------------------------------------
// Registry shape: the self-registering strategy-catalogue pattern used by
// src/partition/strategy_registry.h — entries in a mutex-guarded vector
// (deterministic registration-order iteration, never a hash container) —
// must pass every rule untouched, and the tempting shortcuts (a bare
// registry mutex, a name->entry unordered_map iterated for All()) must
// each fire.
// ---------------------------------------------------------------------------

TEST(LintRegistryShape, GuardedVectorCataloguePassesClean) {
  LintFixture fx;
  fx.AddFile("src/partition/mini_registry.h", Header(R"(
#include <memory>
#include <mutex>
#include <string>
#include <vector>
struct Entry {
  int kind = 0;
  std::string name;
};
struct MiniRegistry {
  void Register(Entry e) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.push_back(std::make_unique<Entry>(e));
  }
  const Entry* FindByName(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& entry : entries_) {
      if (entry->name == name) return entry.get();
    }
    return nullptr;
  }
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_ GDP_GUARDED_BY(mu_);
};
)"));
  const auto r = fx.Run();
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.findings.empty()) << r.output;
}

TEST(LintRegistryShape, BareMutexAndUnorderedIterationFire) {
  LintFixture fx;
  fx.AddFile("src/partition/bad_registry.h", Header(R"(
#include <mutex>
#include <string>
#include <unordered_map>
struct BadRegistry {
  void All() {
    for (auto& kv : by_name_) { (void)kv; }
  }
  std::unordered_map<std::string, int> by_name_;
  std::mutex registry_mu_;
};
)"));
  const auto r = fx.Run();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(HasFinding(r, "no-unordered-iteration", "bad_registry.h:8"))
      << r.output;
  EXPECT_TRUE(HasFinding(r, "mutex-annotated", "bad_registry.h:11"))
      << r.output;
}

// ---------------------------------------------------------------------------
// Raw string literals must not leak into rule matching (the stripper
// handles R"(...)" including embedded quotes and multi-line bodies).
// ---------------------------------------------------------------------------

TEST(LintStripper, RawStringContentsNeverTrigger) {
  LintFixture fx;
  fx.AddFile("src/sim/raw.h", Header(R"FIX(
inline const char* Doc() {
  return R"(steady_clock::now( and time(nullptr) and " a stray quote)";
}
inline const char* Multi() {
  return R"delim(
    rand();
    std::cout << "boo";
    for (auto& kv : table_) {}
  )delim";
}
inline int After() { return 1; }
)FIX"));
  const auto r = fx.Run();
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(LintStripper, CodeAfterRawStringStillScanned) {
  LintFixture fx;
  fx.AddFile("src/sim/raw_tail.h", Header(R"FIX(
inline const char* kDoc = R"(harmless)";
inline long Stamp() { return time(nullptr); }
)FIX"));
  const auto r = fx.Run();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(HasFinding(r, "no-wall-clock", "raw_tail.h:4")) << r.output;
}

// ---------------------------------------------------------------------------
// Pre-existing rules keep working after the stripper/rule additions.
// ---------------------------------------------------------------------------

TEST(LintLegacyRules, StillFire) {
  LintFixture fx;
  fx.AddFile("src/util/legacy.h", Header(R"(
inline int Roll() { return rand(); }
)"));
  fx.AddFile("src/util/noguard.h", "struct G {};\n");
  const auto r = fx.Run();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(HasFinding(r, "no-rand", "legacy.h:3")) << r.output;
  EXPECT_TRUE(HasFinding(r, "header-guard", "noguard.h:1")) << r.output;
}

TEST(LintCleanTree, ExitsZeroWithNoFindings) {
  LintFixture fx;
  fx.AddFile("src/util/fine.h", Header(R"(
inline int Add(int a, int b) { return a + b; }
)"));
  const auto r = fx.Run();
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.findings.empty()) << r.output;
}

}  // namespace
