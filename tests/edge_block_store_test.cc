// The compressed edge-block store: round-trip fidelity over adversarial
// sizes, the streaming-fingerprint == EdgeList::Fingerprint contract that
// keys the ingress artifact caches, cursor/decode agreement, the on-disk
// format, and the streaming symmetrize == EdgeList::Symmetrized contract.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "graph/edge_block_store.h"
#include "graph/edge_list.h"
#include "graph/generators.h"
#include "util/random.h"

namespace gdp::graph {
namespace {

/// Random edge list with the bursty-src shape loaders actually emit (runs
/// of edges sharing a source), plus uniform noise.
EdgeList RandomEdges(uint64_t num_edges, VertexId num_vertices,
                     uint64_t seed) {
  util::SplitMix64 rng(seed);
  EdgeList out("random", num_vertices, {});
  out.Reserve(num_edges);
  uint64_t emitted = 0;
  while (emitted < num_edges) {
    const VertexId src = static_cast<VertexId>(rng.NextBounded(num_vertices));
    const uint64_t run = 1 + rng.NextBounded(8);
    for (uint64_t i = 0; i < run && emitted < num_edges; ++i, ++emitted) {
      out.AddEdge(src,
                  static_cast<VertexId>(rng.NextBounded(num_vertices)));
    }
  }
  return out;
}

void ExpectSameStream(const EdgeList& expected, const EdgeBlockStore& store) {
  ASSERT_EQ(store.num_edges(), expected.num_edges());
  EXPECT_EQ(store.num_vertices(), expected.num_vertices());
  const EdgeList round_trip = store.Materialize();
  ASSERT_EQ(round_trip.num_edges(), expected.num_edges());
  EXPECT_EQ(round_trip.num_vertices(), expected.num_vertices());
  for (uint64_t i = 0; i < expected.num_edges(); ++i) {
    ASSERT_EQ(round_trip.edges()[i].src, expected.edges()[i].src) << i;
    ASSERT_EQ(round_trip.edges()[i].dst, expected.edges()[i].dst) << i;
  }
  EXPECT_EQ(store.Fingerprint(), expected.Fingerprint());
}

// Property test: random block sizes x random edge counts, including counts
// below, at, and just past block boundaries.
TEST(EdgeBlockStore, RoundTripsRandomSizesAndCounts) {
  util::SplitMix64 rng(0xb10c);
  for (int trial = 0; trial < 24; ++trial) {
    const uint32_t block_size = 1 + static_cast<uint32_t>(rng.NextBounded(97));
    uint64_t num_edges = rng.NextBounded(6 * block_size);
    if (trial % 4 == 0) num_edges = block_size;          // exactly one block
    if (trial % 4 == 1) num_edges = block_size + 1;      // one spilled edge
    const EdgeList edges = RandomEdges(num_edges, 500, 0x5eed + trial);
    const EdgeBlockStore store = EdgeBlockStore::FromEdges(
        edges, EdgeBlockStore::Options(block_size));
    SCOPED_TRACE("block_size=" + std::to_string(block_size) +
                 " edges=" + std::to_string(num_edges));
    ExpectSameStream(edges, store);
    EXPECT_TRUE(store.Validate().ok());
  }
}

TEST(EdgeBlockStore, EmptyStore) {
  const EdgeList empty("empty", 10, {});
  const EdgeBlockStore store = EdgeBlockStore::FromEdges(empty);
  EXPECT_EQ(store.num_edges(), 0u);
  EXPECT_EQ(store.num_blocks(), 0u);
  EXPECT_EQ(store.num_vertices(), 10u);
  EXPECT_EQ(store.Fingerprint(), empty.Fingerprint());
  EXPECT_TRUE(store.Validate().ok());
  EXPECT_EQ(store.Materialize().num_edges(), 0u);
}

TEST(EdgeBlockStore, SingleEdgeBlocks) {
  EdgeList edges("one-per-block", 0, {});
  edges.AddEdge(7, 3);
  edges.AddEdge(3, 7);
  edges.AddEdge(0, 9);
  const EdgeBlockStore store =
      EdgeBlockStore::FromEdges(edges, EdgeBlockStore::Options(1));
  EXPECT_EQ(store.num_blocks(), 3u);
  ExpectSameStream(edges, store);
}

TEST(EdgeBlockStore, SingleEdgeStore) {
  EdgeList edges("single", 0, {});
  edges.AddEdge(1234567, 42);
  const EdgeBlockStore store = EdgeBlockStore::FromEdges(edges);
  EXPECT_EQ(store.num_blocks(), 1u);
  ExpectSameStream(edges, store);
}

// Extreme deltas: alternating endpoints at the far corners of the 32-bit id
// space force maximum zigzag widths.
TEST(EdgeBlockStore, ExtremeDeltasRoundTrip) {
  EdgeList edges("extreme", 0, {});
  const VertexId big = 0xFFFFFFFEu;
  edges.AddEdge(0, big);
  edges.AddEdge(big, 0);
  edges.AddEdge(0, big);
  edges.AddEdge(big - 1, 1);
  const EdgeBlockStore store =
      EdgeBlockStore::FromEdges(edges, EdgeBlockStore::Options(3));
  ExpectSameStream(edges, store);
  EXPECT_TRUE(store.Validate().ok());
}

TEST(EdgeBlockStore, BuilderMatchesFromEdges) {
  const EdgeList edges = RandomEdges(1000, 300, 0xabc);
  EdgeBlockStore::Builder builder(EdgeBlockStore::Options(64));
  builder.set_name(edges.name());
  builder.set_num_vertices(edges.num_vertices());
  for (const Edge& e : edges.edges()) builder.Append(e);
  const EdgeBlockStore incremental = std::move(builder).Finish();
  const EdgeBlockStore batch =
      EdgeBlockStore::FromEdges(edges, EdgeBlockStore::Options(64));
  EXPECT_EQ(incremental.Fingerprint(), batch.Fingerprint());
  EXPECT_EQ(incremental.name(), batch.name());
  ExpectSameStream(edges, incremental);
}

// The chain certifies prefixes: recomputing the hash chain over the first
// b+1 blocks' decoded edges must land on BlockFingerprint(b).
TEST(EdgeBlockStore, FingerprintChainIsSequential) {
  const EdgeList edges = RandomEdges(700, 200, 0xfeed);
  const EdgeBlockStore store =
      EdgeBlockStore::FromEdges(edges, EdgeBlockStore::Options(128));
  ASSERT_GT(store.num_blocks(), 1u);
  EXPECT_EQ(store.BlockFingerprint(store.num_blocks() - 1),
            store.Fingerprint());
  // Distinct prefixes yield distinct chain values on this input.
  for (uint64_t b = 1; b < store.num_blocks(); ++b) {
    EXPECT_NE(store.BlockFingerprint(b - 1), store.BlockFingerprint(b));
  }
}

TEST(EdgeBlockStore, CursorMatchesDecodeBlock) {
  const EdgeList edges = RandomEdges(2500, 400, 0xc0de);
  const EdgeBlockStore store =
      EdgeBlockStore::FromEdges(edges, EdgeBlockStore::Options(256));
  EdgeBlockStore::Cursor cursor(store);
  for (uint64_t i = 0; i < edges.num_edges(); ++i) {
    ASSERT_FALSE(cursor.Done());
    EXPECT_EQ(cursor.index(), i);
    const Edge e = cursor.Next();
    ASSERT_EQ(e.src, edges.edges()[i].src) << i;
    ASSERT_EQ(e.dst, edges.edges()[i].dst) << i;
  }
  EXPECT_TRUE(cursor.Done());
}

TEST(EdgeBlockStore, CompressesGeneratedGraphs) {
  const EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 5000, .edges_per_vertex = 8, .seed = 77});
  const EdgeBlockStore store = EdgeBlockStore::FromEdges(edges);
  const uint64_t flat_bytes = edges.num_edges() * sizeof(Edge);
  EXPECT_LT(store.ResidentBytes(), flat_bytes)
      << "compressed store must beat the flat vector";
  ExpectSameStream(edges, store);
}

TEST(EdgeBlockStore, SerializeRoundTrips) {
  const EdgeList edges = RandomEdges(1500, 350, 0xd15c);
  const EdgeBlockStore store =
      EdgeBlockStore::FromEdges(edges, EdgeBlockStore::Options(200));
  const std::string path =
      ::testing::TempDir() + "/edge_block_store_test.blks";
  ASSERT_TRUE(store.SaveTo(path).ok());
  util::StatusOr<EdgeBlockStore> loaded = EdgeBlockStore::LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().Fingerprint(), store.Fingerprint());
  EXPECT_EQ(loaded.value().name(), store.name());
  EXPECT_EQ(loaded.value().block_size_edges(), store.block_size_edges());
  EXPECT_TRUE(loaded.value().Validate().ok());
  ExpectSameStream(edges, loaded.value());
  std::remove(path.c_str());
}

TEST(EdgeBlockStore, LoadRejectsGarbageAndMissing) {
  EXPECT_FALSE(EdgeBlockStore::LoadFrom("/nonexistent/nope.blks").ok());
  const std::string path = ::testing::TempDir() + "/garbage.blks";
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a block store", f);
  std::fclose(f);
  EXPECT_FALSE(EdgeBlockStore::LoadFrom(path).ok());
  std::remove(path.c_str());
}

TEST(EdgeBlockStore, StreamingSymmetrizedMatchesEdgeList) {
  for (uint64_t seed : {0x51ull, 0x52ull, 0x53ull}) {
    EdgeList edges = RandomEdges(900, 150, seed);
    // Sprinkle self loops: both paths must drop them.
    edges.AddEdge(5, 5);
    edges.AddEdge(149, 149);
    const EdgeList expected = edges.Symmetrized();
    const EdgeBlockStore store =
        EdgeBlockStore::FromEdges(edges, EdgeBlockStore::Options(64));
    const EdgeBlockStore sym =
        store.StreamingSymmetrized(EdgeBlockStore::Options(64));
    SCOPED_TRACE("seed=" + std::to_string(seed));
    EXPECT_EQ(sym.name(), expected.name());
    EXPECT_EQ(sym.Fingerprint(), expected.Fingerprint());
    ExpectSameStream(expected, sym);
  }
}

TEST(EdgeBlockStore, StreamingSymmetrizedEmptyAndTiny) {
  const EdgeList empty("e", 4, {});
  const EdgeBlockStore empty_sym =
      EdgeBlockStore::FromEdges(empty).StreamingSymmetrized();
  EXPECT_EQ(empty_sym.num_edges(), 0u);
  EXPECT_EQ(empty_sym.Fingerprint(), empty.Symmetrized().Fingerprint());

  EdgeList one("one", 0, {});
  one.AddEdge(2, 8);
  const EdgeBlockStore one_sym =
      EdgeBlockStore::FromEdges(one).StreamingSymmetrized();
  EXPECT_EQ(one_sym.num_edges(), 2u);
  EXPECT_EQ(one_sym.Fingerprint(), one.Symmetrized().Fingerprint());
}

}  // namespace
}  // namespace gdp::graph
