#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "partition/greedy.h"
#include "partition/ingest.h"
#include "sim/cluster.h"

namespace gdp::partition {
namespace {

PartitionContext MakeContext(uint32_t partitions, graph::VertexId vertices,
                             uint32_t loaders = 1) {
  PartitionContext context;
  context.num_partitions = partitions;
  context.num_vertices = vertices;
  context.num_loaders = loaders;
  context.seed = 5;
  return context;
}

// ---------------------------------------------------------------------------
// Oblivious — the Appendix A cases
// ---------------------------------------------------------------------------

TEST(ObliviousTest, Case1IntersectionReused) {
  // After (0,1) lands somewhere, another (0,1)-incident edge whose
  // endpoints share that machine must go there too.
  ObliviousPartitioner p(MakeContext(4, 10));
  MachineId m1 = p.Assign({0, 1}, 0, 0);
  MachineId m2 = p.Assign({1, 0}, 0, 0);  // A(0) ∩ A(1) = {m1}
  EXPECT_EQ(m1, m2);
}

TEST(ObliviousTest, Case2FollowsPlacedEndpoint) {
  ObliviousPartitioner p(MakeContext(4, 10));
  MachineId m1 = p.Assign({0, 1}, 0, 0);
  // Vertex 2 is new; vertex 0 lives only on m1 -> edge joins m1.
  MachineId m2 = p.Assign({0, 2}, 0, 0);
  EXPECT_EQ(m2, m1);
}

TEST(ObliviousTest, Case3BalancesFreshEdges) {
  // A stream of disjoint edges must spread across machines (least loaded).
  ObliviousPartitioner p(MakeContext(4, 100));
  std::vector<int> counts(4, 0);
  for (graph::VertexId v = 0; v < 40; v += 2) {
    ++counts[p.Assign({v, v + 1}, 0, 0)];
  }
  for (int c : counts) EXPECT_EQ(c, 5);  // perfectly balanced
}

TEST(ObliviousTest, Case4PicksFromUnion) {
  ObliviousPartitioner p(MakeContext(8, 100));
  // Build up known placements for two disjoint vertex sets.
  MachineId ma = p.Assign({0, 1}, 0, 0);
  MachineId mb = p.Assign({2, 3}, 0, 0);
  ASSERT_NE(ma, mb);  // least-loaded spreads them
  // Edge (0,2): both placed, disjoint -> goes to ma or mb.
  MachineId m = p.Assign({0, 2}, 0, 0);
  EXPECT_TRUE(m == ma || m == mb);
}

TEST(ObliviousTest, KeepsReplicationNearOneOnAPath) {
  // A long path streamed in order is the greedy best case: every edge
  // shares a vertex with the previous one.
  ObliviousPartitioner p(MakeContext(8, 2000));
  std::vector<MachineId> assignments;
  for (graph::VertexId v = 0; v + 1 < 1000; ++v) {
    assignments.push_back(p.Assign({v, v + 1}, 0, 0));
  }
  // Count vertex replicas.
  uint64_t replicas = 0;
  for (graph::VertexId v = 0; v < 1000; ++v) {
    std::set<MachineId> machines;
    if (v > 0) machines.insert(assignments[v - 1]);
    if (v + 1 < 1000) machines.insert(assignments[v]);
    replicas += machines.size();
  }
  double rf = static_cast<double>(replicas) / 1000.0;
  EXPECT_LT(rf, 1.2);
}

// ---------------------------------------------------------------------------
// HDRF — Appendix B behaviour
// ---------------------------------------------------------------------------

TEST(HdrfTest, ReplicatesHighDegreeEndpointNotLowDegree) {
  // The defining HDRF behaviour (Appendix B): when an edge joins a
  // high-degree vertex to a low-degree vertex placed elsewhere, the edge
  // goes to the *low-degree* vertex's machine, replicating the hub there.
  HdrfPartitioner p(MakeContext(4, 1000));
  // Grow hub 0's partial degree; a pure star stays on one machine (balance
  // is only a tie-breaker at lambda <= 1).
  MachineId m_hub = p.Assign({0, 1}, 0, 0);
  for (graph::VertexId leaf = 2; leaf < 60; ++leaf) {
    EXPECT_EQ(p.Assign({0, leaf}, 0, 0), m_hub);
  }
  // Place a fresh low-degree pair; least-loaded steers it off m_hub.
  MachineId m_leaf = p.Assign({500, 501}, 0, 0);
  ASSERT_NE(m_leaf, m_hub);
  // Edge hub->leaf follows the low-degree endpoint.
  EXPECT_EQ(p.Assign({0, 500}, 0, 0), m_leaf);
}

TEST(HdrfTest, LowDegreeVertexStaysPut) {
  HdrfPartitioner p(MakeContext(4, 1000));
  // Prime the hub so it exists everywhere.
  for (graph::VertexId leaf = 1; leaf < 100; ++leaf) {
    p.Assign({0, leaf}, 0, 0);
  }
  // A two-edge vertex connected to the hub twice: both edges must colocate
  // (the second edge's machine already holds both endpoints).
  MachineId m1 = p.Assign({0, 500}, 0, 0);
  MachineId m2 = p.Assign({500, 0}, 0, 0);
  EXPECT_EQ(m1, m2);
}

TEST(HdrfTest, LambdaZeroIgnoresBalance) {
  // With lambda = 0 a star collapses onto one machine (pure replication
  // score); with the default lambda = 1 it spreads.
  PartitionContext context = MakeContext(4, 1000);
  context.hdrf_lambda = 0.0;
  HdrfPartitioner p(context);
  std::set<MachineId> machines;
  for (graph::VertexId leaf = 1; leaf < 50; ++leaf) {
    machines.insert(p.Assign({0, leaf}, 0, 0));
  }
  EXPECT_EQ(machines.size(), 1u);
}

TEST(HdrfTest, ExactDegreesChangeNothingMuch) {
  // The HDRF authors report partial vs exact degrees give similar
  // replication; check both modes produce valid, similar-quality cuts.
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 3000, .edges_per_vertex = 5, .seed = 77});
  auto run = [&](bool partial) {
    PartitionContext context = MakeContext(8, edges.num_vertices());
    context.hdrf_partial_degrees = partial;
    HdrfPartitioner p(context);
    if (!partial) {
      std::vector<uint64_t> deg = edges.TotalDegrees();
      p.SetExactDegrees(std::vector<uint32_t>(deg.begin(), deg.end()));
    }
    sim::Cluster cluster(8, sim::CostModel{});
    IngestResult r = Ingest(edges, p, cluster, {});
    return r.report.replication_factor;
  };
  double rf_partial = run(true);
  double rf_exact = run(false);
  EXPECT_NEAR(rf_partial, rf_exact, 0.5 * rf_partial);
}

// ---------------------------------------------------------------------------
// Loader-local state (the "oblivious" in Oblivious)
// ---------------------------------------------------------------------------

TEST(LoaderStateTest, MoreLoadersMeanMoreReplication) {
  graph::EdgeList edges = graph::GenerateRoadNetwork(
      {.width = 50, .height = 50, .seed = 31});
  auto rf_with_loaders = [&](uint32_t loaders) {
    sim::Cluster cluster(5, sim::CostModel{});
    IngestOptions options;
    options.num_loaders = loaders;
    IngestResult r = IngestWithStrategy(
        edges, StrategyKind::kOblivious,
        MakeContext(5, edges.num_vertices(), loaders), cluster, options);
    return r.report.replication_factor;
  };
  // Each loader is blind to the others' placements, so quality degrades
  // with loader count (§5.2.2).
  EXPECT_LT(rf_with_loaders(1), rf_with_loaders(5));
  EXPECT_LE(rf_with_loaders(5), rf_with_loaders(20) + 0.05);
}

TEST(LoaderStateTest, StateBytesGrowWithLoaders) {
  PartitionContext one = MakeContext(5, 5000, 1);
  PartitionContext many = MakeContext(5, 5000, 10);
  EXPECT_GT(ObliviousPartitioner(many).ApproxStateBytes(),
            ObliviousPartitioner(one).ApproxStateBytes());
}

TEST(LoaderStateTest, HdrfStateLargerThanOblivious) {
  // HDRF additionally tracks partial degrees per touched vertex.
  PartitionContext context = MakeContext(5, 5000, 1);
  HdrfPartitioner hdrf(context);
  ObliviousPartitioner oblivious(context);
  for (graph::VertexId v = 0; v + 1 < 200; v += 2) {
    hdrf.Assign({v, v + 1}, 0, 0);
    oblivious.Assign({v, v + 1}, 0, 0);
  }
  EXPECT_GT(hdrf.ApproxStateBytes(), oblivious.ApproxStateBytes());
}

TEST(LoaderStateTest, StateGrowsWithTouchedVertices) {
  PartitionContext context = MakeContext(5, 5000, 1);
  ObliviousPartitioner p(context);
  uint64_t before = p.ApproxStateBytes();
  for (graph::VertexId v = 0; v + 1 < 100; v += 2) {
    p.Assign({v, v + 1}, 0, 0);
  }
  EXPECT_GT(p.ApproxStateBytes(), before);
}

}  // namespace
}  // namespace gdp::partition
