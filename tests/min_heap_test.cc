// util::MinHeap — the addressable 4-ary min-heap behind the expansion
// family's boundary sets. The contract the partitioners lean on: strict
// (key, id) lexicographic Min/PopMin order, DecreaseKey only ever lowers a
// key, and Contains/KeyOf stay truthful across arbitrary interleavings.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/min_heap.h"
#include "util/random.h"

namespace gdp::util {
namespace {

TEST(MinHeapTest, PopsInKeyThenIdOrder) {
  MinHeap<uint32_t> heap;
  heap.Reset(8);
  heap.Insert(/*id=*/5, /*key=*/3);
  heap.Insert(/*id=*/7, /*key=*/1);
  heap.Insert(/*id=*/2, /*key=*/3);
  heap.Insert(/*id=*/6, /*key=*/1);
  heap.Insert(/*id=*/0, /*key=*/2);

  std::vector<std::pair<uint32_t, uint32_t>> popped;
  while (!heap.empty()) popped.push_back(heap.PopMin());
  std::vector<std::pair<uint32_t, uint32_t>> expected = {
      {1, 6}, {1, 7}, {2, 0}, {3, 2}, {3, 5}};
  EXPECT_EQ(popped, expected);
}

TEST(MinHeapTest, DecreaseKeyReordersAndNeverIncreases) {
  MinHeap<uint32_t> heap;
  heap.Reset(4);
  heap.Insert(0, 10);
  heap.Insert(1, 20);
  heap.Insert(2, 30);

  heap.DecreaseKey(2, 5);
  EXPECT_EQ(heap.KeyOf(2), 5u);
  EXPECT_EQ(heap.Min().second, 2u);

  // A larger "decrease" must be a no-op, not a corruption.
  heap.DecreaseKey(2, 50);
  EXPECT_EQ(heap.KeyOf(2), 5u);
  EXPECT_EQ(heap.Min().second, 2u);
}

TEST(MinHeapTest, InsertOrDecreaseCoversBothPaths) {
  MinHeap<uint32_t> heap;
  heap.Reset(4);
  heap.InsertOrDecrease(3, 7);  // insert path
  EXPECT_TRUE(heap.Contains(3));
  EXPECT_EQ(heap.KeyOf(3), 7u);
  heap.InsertOrDecrease(3, 4);  // decrease path
  EXPECT_EQ(heap.KeyOf(3), 4u);
  EXPECT_EQ(heap.size(), 1u);
}

TEST(MinHeapTest, RemoveMiddleKeepsHeapConsistent) {
  MinHeap<uint32_t> heap;
  heap.Reset(16);
  for (uint32_t i = 0; i < 16; ++i) heap.Insert(i, 100 - i);
  heap.Remove(10);
  EXPECT_FALSE(heap.Contains(10));
  EXPECT_EQ(heap.size(), 15u);

  uint32_t last = 0;
  while (!heap.empty()) {
    auto [key, id] = heap.PopMin();
    EXPECT_NE(id, 10u);
    EXPECT_GE(key, last);
    last = key;
  }
}

TEST(MinHeapTest, ClearOnlyTouchesContainedIds) {
  MinHeap<uint32_t> heap;
  heap.Reset(8);
  heap.Insert(1, 1);
  heap.Insert(2, 2);
  heap.Clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_FALSE(heap.Contains(1));
  EXPECT_FALSE(heap.Contains(2));
  // Reusable after Clear without another Reset.
  heap.Insert(4, 9);
  EXPECT_EQ(heap.Min(), (std::pair<uint32_t, uint32_t>{9, 4}));
}

// Randomized cross-check against a linear-scan oracle, driven by the
// repo's own deterministic SplitMix64 (no wall-clock or global RNG).
TEST(MinHeapTest, MatchesScanOracleUnderMixedWorkload) {
  constexpr uint32_t kIds = 200;
  MinHeap<uint64_t> heap;
  heap.Reset(kIds);
  std::vector<uint64_t> key_of(kIds, 0);
  std::vector<bool> present(kIds, false);
  SplitMix64 rng(12345);

  for (int step = 0; step < 5000; ++step) {
    const uint32_t id = static_cast<uint32_t>(rng.Next() % kIds);
    const uint64_t key = rng.Next() % 1000;
    switch (rng.Next() % 4) {
      case 0:
      case 1:
        if (!present[id]) {
          heap.Insert(id, key);
          key_of[id] = key;
          present[id] = true;
        } else if (key < key_of[id]) {
          heap.DecreaseKey(id, key);
          key_of[id] = key;
        }
        break;
      case 2:
        if (present[id]) {
          heap.Remove(id);
          present[id] = false;
        }
        break;
      default:
        if (!heap.empty()) {
          // Oracle min: smallest (key, id) among present ids.
          uint32_t best = kIds;
          for (uint32_t i = 0; i < kIds; ++i) {
            if (!present[i]) continue;
            if (best == kIds || key_of[i] < key_of[best] ||
                (key_of[i] == key_of[best] && i < best)) {
              best = i;
            }
          }
          const auto [key_popped, id_popped] = heap.PopMin();
          ASSERT_EQ(id_popped, best);
          ASSERT_EQ(key_popped, key_of[best]);
          present[best] = false;
        }
        break;
    }
    ASSERT_EQ(heap.size(),
              static_cast<uint64_t>(
                  std::count(present.begin(), present.end(), true)));
  }
}

}  // namespace
}  // namespace gdp::util
