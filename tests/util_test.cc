#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include <atomic>
#include <vector>

#include "util/check.h"
#include "util/dense_bitset.h"
#include "util/thread_pool.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table.h"

namespace gdp::util {
namespace {

// ---------------------------------------------------------------------------
// hash
// ---------------------------------------------------------------------------

TEST(HashTest, Mix64IsDeterministic) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
}

TEST(HashTest, Mix64AvalanchesLowBits) {
  // Consecutive inputs must not map to consecutive outputs.
  std::set<uint64_t> low_bits;
  for (uint64_t i = 0; i < 64; ++i) low_bits.insert(Mix64(i) % 64);
  EXPECT_GT(low_bits.size(), 32u);
}

TEST(HashTest, CanonicalEdgeHashIgnoresDirection) {
  EXPECT_EQ(HashCanonicalEdge(3, 9), HashCanonicalEdge(9, 3));
  EXPECT_EQ(HashCanonicalEdge(0, 0), HashCanonicalEdge(0, 0));
}

TEST(HashTest, DirectedEdgeHashIsDirectionSensitive) {
  EXPECT_NE(HashDirectedEdge(3, 9), HashDirectedEdge(9, 3));
}

TEST(HashTest, DistinctEdgesUsuallyHashDifferently) {
  std::set<uint64_t> hashes;
  for (uint64_t u = 0; u < 50; ++u) {
    for (uint64_t v = u + 1; v < 50; ++v) {
      hashes.insert(HashCanonicalEdge(u, v));
    }
  }
  EXPECT_EQ(hashes.size(), 50u * 49 / 2);  // no collisions at this scale
}

// ---------------------------------------------------------------------------
// random
// ---------------------------------------------------------------------------

TEST(RandomTest, SameSeedSameSequence) {
  SplitMix64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  SplitMix64 a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.Next() == b.Next();
  EXPECT_EQ(same, 0);
}

TEST(RandomTest, NextBoundedStaysInRange) {
  SplitMix64 rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RandomTest, NextBoundedCoversRange) {
  SplitMix64 rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  SplitMix64 rng(3);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RandomTest, NextDoubleMeanIsHalf) {
  SplitMix64 rng(4);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RandomTest, ShuffleIsAPermutation) {
  SplitMix64 rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  Shuffle(v, rng);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(ZipfTest, SamplesWithinRange) {
  ZipfSampler zipf(100, 1.5);
  SplitMix64 rng(6);
  for (int i = 0; i < 1000; ++i) {
    uint64_t s = zipf.Sample(rng);
    EXPECT_GE(s, 1u);
    EXPECT_LE(s, 100u);
  }
}

TEST(ZipfTest, RankOneIsMostFrequent) {
  ZipfSampler zipf(1000, 1.2);
  SplitMix64 rng(7);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  int max_count = 0;
  uint64_t argmax = 0;
  for (auto& [rank, count] : counts) {
    if (count > max_count) {
      max_count = count;
      argmax = rank;
    }
  }
  EXPECT_EQ(argmax, 1u);
}

TEST(ZipfTest, FrequencyRatioTracksExponent) {
  // P(1)/P(2) should be about 2^alpha.
  const double alpha = 2.0;
  ZipfSampler zipf(1000, alpha);
  SplitMix64 rng(8);
  int c1 = 0, c2 = 0;
  for (int i = 0; i < 200000; ++i) {
    uint64_t s = zipf.Sample(rng);
    if (s == 1) ++c1;
    if (s == 2) ++c2;
  }
  ASSERT_GT(c2, 0);
  EXPECT_NEAR(static_cast<double>(c1) / c2, std::pow(2.0, alpha), 0.5);
}

TEST(ZipfTest, SingleElementDomain) {
  ZipfSampler zipf(1, 1.5);
  SplitMix64 rng(9);
  EXPECT_EQ(zipf.Sample(rng), 1u);
}

// ---------------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------------

TEST(StatsTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0);
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(StdDev({5}), 0);
}

TEST(StatsTest, PercentileEndpointsAndMedian) {
  std::vector<double> xs{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 5);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 3);
}

TEST(StatsTest, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(Percentile({0, 10}, 25), 2.5);
}

TEST(StatsTest, BoxStatsOrdering) {
  BoxStats box = ComputeBoxStats({9, 1, 5, 3, 7});
  EXPECT_LE(box.min, box.p25);
  EXPECT_LE(box.p25, box.median);
  EXPECT_LE(box.median, box.p75);
  EXPECT_LE(box.p75, box.max);
  EXPECT_DOUBLE_EQ(box.min, 1);
  EXPECT_DOUBLE_EQ(box.max, 9);
}

TEST(StatsTest, FitLineRecoversExactLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 2.0);
  }
  LinearFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(StatsTest, FitLineR2DropsWithNoise) {
  std::vector<double> xs{0, 1, 2, 3, 4, 5};
  std::vector<double> ys{0, 5, 1, 6, 2, 7};  // weak trend
  LinearFit fit = FitLine(xs, ys);
  EXPECT_LT(fit.r2, 0.9);
  EXPECT_GT(fit.r2, 0.0);
}

TEST(StatsTest, FitLineDegenerateInputs) {
  EXPECT_DOUBLE_EQ(FitLine({}, {}).slope, 0);
  EXPECT_DOUBLE_EQ(FitLine({1}, {2}).slope, 0);
  // Vertical line: undefined slope -> zero fit rather than NaN.
  LinearFit fit = FitLine({2, 2, 2}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(fit.slope, 0);
}

TEST(StatsTest, CountHistogram) {
  auto hist = CountHistogram({1, 1, 2, 5, 5, 5});
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 1u);
  EXPECT_EQ(hist[5], 3u);
  EXPECT_EQ(hist.size(), 3u);
}

TEST(StatsTest, FitPowerLawRecoversExponent) {
  // counts = 1e6 * d^-2.
  std::map<uint64_t, uint64_t> hist;
  for (uint64_t d = 1; d <= 100; ++d) {
    hist[d] = static_cast<uint64_t>(1e6 / (d * d));
  }
  LinearFit fit = FitPowerLaw(hist);
  EXPECT_NEAR(-fit.slope, 2.0, 0.05);
  EXPECT_GT(fit.r2, 0.99);
}

// ---------------------------------------------------------------------------
// status
// ---------------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(StatusTest, StatusOrValuePath) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusTest, StatusOrErrorPath) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

Status FailWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

StatusOr<int> DoubleWhenPositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return 2 * x;
}

Status ChainBoth(int x) {
  GDP_RETURN_IF_ERROR(FailWhenNegative(x));
  GDP_ASSIGN_OR_RETURN(int doubled, DoubleWhenPositive(x));
  if (doubled != 2 * x) return Status::Internal("bad arithmetic");
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(ChainBoth(3).ok());
  EXPECT_EQ(ChainBoth(-1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ChainBoth(0).code(), StatusCode::kOutOfRange);
}

TEST(CheckTest, PassingChecksAreSilent) {
  GDP_CHECK(1 + 1 == 2) << "never printed";
  GDP_CHECK_OK(Status::Ok());
  GDP_DCHECK_EQ(2, 2);
  GDP_DCHECK_OK(Status::Ok());
}

TEST(CheckDeathTest, FailingCheckAbortsWithMessage) {
  EXPECT_DEATH(GDP_CHECK(false) << "ctx " << 42, "ctx 42");
  EXPECT_DEATH(GDP_CHECK_OK(Status::NotFound("gone")), "NOT_FOUND: gone");
}

// ---------------------------------------------------------------------------
// table
// ---------------------------------------------------------------------------

TEST(TableTest, AsciiContainsHeaderAndCells) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  std::string out = t.ToAscii();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("2"), std::string::npos);
}

TEST(TableTest, RowsPaddedToHeaderWidth) {
  Table t({"a", "b", "c"});
  t.AddRow({"only-one"});
  EXPECT_EQ(t.rows()[0].size(), 3u);
}

TEST(TableTest, CsvEscapesQuotesAndCommas) {
  Table t({"x"});
  t.AddRow({"va\"l,ue"});
  EXPECT_NE(t.ToCsv().find("\"va\"\"l,ue\""), std::string::npos);
}

TEST(TableTest, CsvEscapeFollowsRfc4180) {
  // Plain fields pass through unquoted.
  EXPECT_EQ(Table::CsvEscape("plain"), "plain");
  EXPECT_EQ(Table::CsvEscape(""), "");
  EXPECT_EQ(Table::CsvEscape("3.14"), "3.14");
  // Commas, quotes, and line breaks force quoting; embedded quotes double.
  EXPECT_EQ(Table::CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(Table::CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(Table::CsvEscape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(Table::CsvEscape("cr\rlf"), "\"cr\rlf\"");
  EXPECT_EQ(Table::CsvEscape("\""), "\"\"\"\"");
}

TEST(TableTest, CsvHeaderAndEveryRowEscaped) {
  Table t({"name,with,commas", "plain"});
  t.AddRow({"a", "b\"c"});
  t.AddRow({"d", "e"});
  EXPECT_EQ(t.ToCsv(),
            "\"name,with,commas\",plain\na,\"b\"\"c\"\nd,e\n");
}

TEST(TableTest, MarkdownHasSeparatorRow) {
  Table t({"h1", "h2"});
  t.AddRow({"a", "b"});
  EXPECT_NE(t.ToMarkdown().find("---|"), std::string::npos);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
}


// ---------------------------------------------------------------------------
// DenseBitset
// ---------------------------------------------------------------------------

TEST(DenseBitsetTest, SetTestResetAndCount) {
  DenseBitset bits(200);
  EXPECT_EQ(bits.size(), 200u);
  EXPECT_EQ(bits.CountSet(), 0u);
  EXPECT_FALSE(bits.AnySet());
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(199);
  EXPECT_TRUE(bits.Test(63));
  EXPECT_FALSE(bits.Test(65));
  EXPECT_EQ(bits.CountSet(), 4u);
  EXPECT_TRUE(bits.AnySet());
  bits.Reset(63);
  EXPECT_FALSE(bits.Test(63));
  EXPECT_EQ(bits.CountSet(), 3u);
  bits.ClearAll();
  EXPECT_EQ(bits.CountSet(), 0u);
}

TEST(DenseBitsetTest, ForEachSetAscendingAndWordRanges) {
  DenseBitset bits(300);
  std::vector<uint64_t> expected = {1, 63, 64, 128, 192, 299};
  for (uint64_t i : expected) bits.Set(i);

  std::vector<uint64_t> seen;
  bits.ForEachSet([&](uint64_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);

  // Word-sharded iteration covers every bit exactly once.
  std::vector<uint64_t> sharded;
  for (uint64_t w = 0; w < bits.num_words(); w += 2) {
    bits.ForEachSetInWordRange(w, std::min(w + 2, bits.num_words()),
                               [&](uint64_t i) { sharded.push_back(i); });
  }
  EXPECT_EQ(sharded, expected);

  std::vector<uint32_t> appended;
  bits.AppendSetBits(&appended);
  ASSERT_EQ(appended.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(appended[i], static_cast<uint32_t>(expected[i]));
  }
}

TEST(DenseBitsetTest, SetAtomicFromManyThreadsLosesNothing) {
  constexpr uint64_t kBits = 1 << 14;
  DenseBitset bits(kBits);
  ThreadPool pool(4);
  // Every lane sets an interleaved quarter of the bits; fetch_or on shared
  // words must lose none of them.
  pool.ParallelFor(64, [&](uint64_t chunk, uint32_t) {
    for (uint64_t i = chunk; i < kBits; i += 64) bits.SetAtomic(i);
  });
  EXPECT_EQ(bits.CountSet(), kBits);
}

TEST(DenseBitsetTest, SetAtomicWordMasksTailOfNonMultipleSize) {
  // 130 bits: two full words plus a 2-bit tail. An all-ones word written
  // into the last word must only land on the 2 valid bits.
  DenseBitset bits(130);
  bits.SetAtomicWord(2, ~0ULL);
  EXPECT_EQ(bits.CountSet(), 2u);
  EXPECT_TRUE(bits.Test(128));
  EXPECT_TRUE(bits.Test(129));
  bits.SetAtomicWord(0, ~0ULL);
  EXPECT_EQ(bits.CountSet(), 66u);
  EXPECT_EQ(bits.Word(0), ~0ULL);
  EXPECT_EQ(bits.Word(2), 0x3u);
}

TEST(DenseBitsetTest, SetAtomicWordFromManyThreadsLosesNothing) {
  constexpr uint64_t kBits = (1 << 14) + 7;  // non-multiple of 64 on purpose
  DenseBitset bits(kBits);
  ThreadPool pool(4);
  // Lanes OR disjoint bit patterns into the SAME words concurrently; the
  // word-level fetch_or must merge all of them.
  pool.ParallelFor(4, [&](uint64_t quarter, uint32_t) {
    const uint64_t pattern = 0x1111111111111111ULL << quarter;
    for (uint64_t w = 0; w < bits.num_words(); ++w) {
      bits.SetAtomicWord(w, pattern);
    }
  });
  // All four quarters of every nibble: every valid bit ends up set.
  EXPECT_EQ(bits.CountSet(), kBits);
}

TEST(DenseBitsetTest, AppendSetBitsOnAllSetPartialLastWord) {
  // Size not divisible by 64 with every bit set: the append must stop at
  // size(), not at the word boundary.
  constexpr uint64_t kBits = 64 + 17;
  DenseBitset bits(kBits);
  for (uint64_t i = 0; i < kBits; ++i) bits.Set(i);
  EXPECT_EQ(bits.CountSet(), kBits);
  std::vector<uint64_t> appended;
  bits.AppendSetBits(&appended);
  ASSERT_EQ(appended.size(), kBits);
  for (uint64_t i = 0; i < kBits; ++i) EXPECT_EQ(appended[i], i);
}

TEST(DenseBitsetTest, OrWithAndWithMatchBitAtATimeReference) {
  constexpr uint64_t kBits = 517;  // spans 9 words, partial tail
  DenseBitset a(kBits), b(kBits);
  std::vector<bool> ref_a(kBits, false), ref_b(kBits, false);
  // Deterministic pseudo-pattern with mixed word occupancy.
  for (uint64_t i = 0; i < kBits; ++i) {
    if ((i * 2654435761u) % 3 == 0) {
      a.Set(i);
      ref_a[i] = true;
    }
    if ((i * 40503u) % 5 < 2) {
      b.Set(i);
      ref_b[i] = true;
    }
  }

  DenseBitset or_bits = a;
  or_bits.OrWith(b);
  DenseBitset and_bits = a;
  and_bits.AndWith(b);
  for (uint64_t i = 0; i < kBits; ++i) {
    EXPECT_EQ(or_bits.Test(i), ref_a[i] || ref_b[i]) << "bit " << i;
    EXPECT_EQ(and_bits.Test(i), ref_a[i] && ref_b[i]) << "bit " << i;
  }
}

TEST(DenseBitsetTest, CountSetInWordRangeSumsToCountSet) {
  DenseBitset bits(300);
  for (uint64_t i : {0ULL, 1ULL, 63ULL, 64ULL, 127ULL, 200ULL, 299ULL}) {
    bits.Set(i);
  }
  EXPECT_EQ(bits.CountSetInWordRange(0, bits.num_words()), bits.CountSet());
  EXPECT_EQ(bits.CountSetInWordRange(0, 1), 3u);   // bits 0, 1, 63
  EXPECT_EQ(bits.CountSetInWordRange(1, 2), 2u);   // bits 64, 127
  EXPECT_EQ(bits.CountSetInWordRange(2, 3), 0u);   // empty word
  uint64_t sharded = 0;
  for (uint64_t w = 0; w < bits.num_words(); ++w) {
    sharded += bits.CountSetInWordRange(w, w + 1);
  }
  EXPECT_EQ(sharded, bits.CountSet());
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryChunkExactlyOnce) {
  for (uint32_t threads : {1u, 2u, 5u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    std::vector<std::atomic<uint32_t>> hits(257);
    pool.ParallelFor(hits.size(), [&](uint64_t chunk, uint32_t lane) {
      ASSERT_LT(lane, pool.num_threads());
      hits[chunk].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1u) << "chunk " << i;
    }
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  std::atomic<uint64_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(10, [&](uint64_t chunk, uint32_t) {
      total.fetch_add(chunk, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50u * 45u);
}

TEST(ThreadPoolTest, ZeroChunksIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](uint64_t, uint32_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, DefaultThreadCountIsClamped) {
  uint32_t count = ThreadPool::DefaultThreadCount();
  EXPECT_GE(count, 1u);
  EXPECT_LE(count, 16u);
}

}  // namespace
}  // namespace gdp::util
