#include <gtest/gtest.h>

#include <tuple>

#include "apps/pagerank.h"
#include "apps/reference.h"
#include "apps/sssp.h"
#include "apps/wcc.h"
#include "engine/gas_engine.h"
#include "graph/generators.h"
#include "partition/ingest.h"
#include "sim/cluster.h"

namespace gdp::engine {
namespace {

using partition::IngestOptions;
using partition::IngestResult;
using partition::IngestWithStrategy;
using partition::MasterPolicy;
using partition::PartitionContext;
using partition::StrategyKind;

IngestResult Partition(const graph::EdgeList& edges, StrategyKind strategy,
                       uint32_t machines, sim::Cluster& cluster,
                       MasterPolicy policy = MasterPolicy::kRandomReplica) {
  PartitionContext context;
  context.num_partitions = machines;
  context.num_vertices = edges.num_vertices();
  context.num_loaders = machines;
  context.seed = 3;
  IngestOptions options;
  options.master_policy = policy;
  return IngestWithStrategy(edges, strategy, context, cluster, options);
}

// ---------------------------------------------------------------------------
// Engine-and-strategy independence of results: the core correctness
// property. Any engine x strategy combination computes the same answers as
// the single-machine reference.
// ---------------------------------------------------------------------------

using Combo = std::tuple<EngineKind, StrategyKind>;

class EngineCorrectnessTest : public ::testing::TestWithParam<Combo> {};

TEST_P(EngineCorrectnessTest, PageRankMatchesReference) {
  auto [engine_kind, strategy] = GetParam();
  graph::EdgeList edges = graph::GeneratePowerLawWeb(
      {.num_vertices = 800, .seed = 41});
  sim::Cluster cluster(9, sim::CostModel{});
  IngestResult ingest = Partition(edges, strategy, 9, cluster);

  apps::PageRankApp app = apps::PageRankFixed();
  RunOptions options;
  options.max_iterations = 10;
  auto result =
      RunGasEngine(engine_kind, ingest.graph, cluster, app, options);
  std::vector<double> expected = apps::ReferencePageRank(edges, 0.85, 10);
  for (graph::VertexId v = 0; v < edges.num_vertices(); ++v) {
    if (!ingest.graph.present[v]) continue;
    ASSERT_NEAR(result.states[v], expected[v], 1e-9) << "vertex " << v;
  }
}

TEST_P(EngineCorrectnessTest, WccMatchesReference) {
  auto [engine_kind, strategy] = GetParam();
  graph::EdgeList edges = graph::GenerateRoadNetwork(
      {.width = 25, .height = 25, .drop_fraction = 0.3, .seed = 42});
  sim::Cluster cluster(9, sim::CostModel{});
  IngestResult ingest = Partition(edges, strategy, 9, cluster);

  RunOptions options;
  options.max_iterations = 5000;
  auto result = RunGasEngine(engine_kind, ingest.graph, cluster,
                             apps::WccApp{}, options);
  EXPECT_TRUE(result.stats.converged);
  std::vector<graph::VertexId> expected = apps::ReferenceWcc(edges);
  for (graph::VertexId v = 0; v < edges.num_vertices(); ++v) {
    if (!ingest.graph.present[v]) continue;
    ASSERT_EQ(result.states[v], expected[v]) << "vertex " << v;
  }
}

TEST_P(EngineCorrectnessTest, SsspMatchesReference) {
  auto [engine_kind, strategy] = GetParam();
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 600, .edges_per_vertex = 3, .seed = 43});
  sim::Cluster cluster(9, sim::CostModel{});
  IngestResult ingest = Partition(edges, strategy, 9, cluster);

  apps::SsspApp app;
  app.source = 5;
  RunOptions options;
  options.max_iterations = 5000;
  auto result = RunGasEngine(engine_kind, ingest.graph, cluster, app,
                             options);
  EXPECT_TRUE(result.stats.converged);
  std::vector<uint32_t> expected =
      apps::ReferenceSssp(edges, 5, /*directed=*/false);
  for (graph::VertexId v = 0; v < edges.num_vertices(); ++v) {
    if (!ingest.graph.present[v]) continue;
    ASSERT_EQ(result.states[v], expected[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndStrategies, EngineCorrectnessTest,
    ::testing::Combine(
        ::testing::Values(EngineKind::kPowerGraphSync,
                          EngineKind::kPowerLyraHybrid,
                          EngineKind::kGraphXPregel),
        ::testing::Values(StrategyKind::kRandom, StrategyKind::kGrid,
                          StrategyKind::kOblivious, StrategyKind::kHdrf,
                          StrategyKind::kHybrid,
                          StrategyKind::kHybridGinger, StrategyKind::kOneD,
                          StrategyKind::kTwoD)),
    [](const ::testing::TestParamInfo<Combo>& info) {
      std::string name =
          std::string(EngineKindName(std::get<0>(info.param))) + "_" +
          partition::StrategyName(std::get<1>(info.param));
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Directed SSSP
// ---------------------------------------------------------------------------

TEST(EngineTest, DirectedSsspMatchesReference) {
  graph::EdgeList edges = graph::GeneratePowerLawWeb(
      {.num_vertices = 500, .seed = 44});
  sim::Cluster cluster(4, sim::CostModel{});
  IngestResult ingest = Partition(edges, StrategyKind::kRandom, 4, cluster);
  apps::DirectedSsspApp app;
  app.source = 1;
  RunOptions options;
  options.max_iterations = 5000;
  auto result = RunGasEngine(EngineKind::kPowerGraphSync, ingest.graph,
                             cluster, app, options);
  std::vector<uint32_t> expected =
      apps::ReferenceSssp(edges, 1, /*directed=*/true);
  for (graph::VertexId v = 0; v < edges.num_vertices(); ++v) {
    if (!ingest.graph.present[v]) continue;
    ASSERT_EQ(result.states[v], expected[v]);
  }
}

// ---------------------------------------------------------------------------
// Accounting properties
// ---------------------------------------------------------------------------

TEST(EngineAccountingTest, NetworkGrowsWithReplicationFactor) {
  // Fig 5.3's linear law, at the ordering level: higher-RF partitionings
  // send more bytes for the same app on the same engine.
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 4000, .edges_per_vertex = 6, .seed = 45});
  auto run = [&](StrategyKind strategy) {
    sim::Cluster cluster(9, sim::CostModel{});
    IngestResult ingest = Partition(edges, strategy, 9, cluster);
    RunOptions options;
    options.max_iterations = 5;
    auto result =
        RunGasEngine(EngineKind::kPowerGraphSync, ingest.graph, cluster,
                     apps::PageRankFixed(), options);
    return std::pair<double, uint64_t>(ingest.report.replication_factor,
                                       result.stats.network_bytes);
  };
  auto [rf_random, net_random] = run(StrategyKind::kRandom);
  auto [rf_grid, net_grid] = run(StrategyKind::kGrid);
  ASSERT_GT(rf_random, rf_grid);
  EXPECT_GT(net_random, net_grid);
}

TEST(EngineAccountingTest, PowerLyraSavesNetworkOnNaturalApps) {
  // §6.4.1: with Hybrid partitioning and a natural application, the
  // PowerLyra engine moves less data than the PowerGraph engine does on
  // the very same partitioned graph.
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 4000, .edges_per_vertex = 6, .seed = 46});
  sim::Cluster c1(9, sim::CostModel{});
  sim::Cluster c2(9, sim::CostModel{});
  IngestOptions options;
  options.master_policy = MasterPolicy::kVertexHash;
  options.use_partitioner_master_preference = true;
  PartitionContext context;
  context.num_partitions = 9;
  context.num_vertices = edges.num_vertices();
  context.num_loaders = 9;
  IngestResult i1 = IngestWithStrategy(edges, StrategyKind::kHybrid, context,
                                       c1, options);
  IngestResult i2 = IngestWithStrategy(edges, StrategyKind::kHybrid, context,
                                       c2, options);
  RunOptions run_options;
  run_options.max_iterations = 5;
  auto pg = RunGasEngine(EngineKind::kPowerGraphSync, i1.graph, c1,
                         apps::PageRankFixed(), run_options);
  auto pl = RunGasEngine(EngineKind::kPowerLyraHybrid, i2.graph, c2,
                         apps::PageRankFixed(), run_options);
  EXPECT_LT(pl.stats.network_bytes, pg.stats.network_bytes);
}

TEST(EngineAccountingTest, NonNaturalAppGetsNoHybridSavings) {
  // §6.4.1: undirected SSSP gathers in both directions, so the hybrid
  // engine's low-degree optimization cannot elide much traffic.
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 3000, .edges_per_vertex = 5, .seed = 47});
  IngestOptions ing_options;
  ing_options.master_policy = MasterPolicy::kVertexHash;
  ing_options.use_partitioner_master_preference = true;
  PartitionContext context;
  context.num_partitions = 9;
  context.num_vertices = edges.num_vertices();
  context.num_loaders = 9;
  sim::Cluster c1(9, sim::CostModel{});
  sim::Cluster c2(9, sim::CostModel{});
  IngestResult i1 = IngestWithStrategy(edges, StrategyKind::kHybrid, context,
                                       c1, ing_options);
  IngestResult i2 = IngestWithStrategy(edges, StrategyKind::kHybrid, context,
                                       c2, ing_options);
  RunOptions run_options;
  run_options.max_iterations = 5000;
  apps::SsspApp app;
  app.source = 0;
  auto pg = RunGasEngine(EngineKind::kPowerGraphSync, i1.graph, c1, app,
                         run_options);
  auto pl = RunGasEngine(EngineKind::kPowerLyraHybrid, i2.graph, c2, app,
                         run_options);
  // Savings exist but are much smaller than for PageRank; the ratio must
  // be close to 1.
  ASSERT_GT(pg.stats.network_bytes, 0u);
  double ratio = static_cast<double>(pl.stats.network_bytes) /
                 static_cast<double>(pg.stats.network_bytes);
  EXPECT_GT(ratio, 0.55);
}

TEST(EngineAccountingTest, ComputeTimeAdvancesClockAndCpu) {
  graph::EdgeList edges = graph::GenerateErdosRenyi(
      {.num_vertices = 500, .num_edges = 2500, .seed = 48});
  sim::Cluster cluster(4, sim::CostModel{});
  IngestResult ingest = Partition(edges, StrategyKind::kRandom, 4, cluster);
  RunOptions options;
  options.max_iterations = 3;
  auto result = RunGasEngine(EngineKind::kPowerGraphSync, ingest.graph,
                             cluster, apps::PageRankFixed(), options);
  EXPECT_EQ(result.stats.iterations, 3u);
  EXPECT_GT(result.stats.compute_seconds, 0.0);
  EXPECT_EQ(result.stats.cumulative_seconds.size(), 3u);
  EXPECT_LE(result.stats.cumulative_seconds[0],
            result.stats.cumulative_seconds[2]);
  for (double util : cluster.CpuUtilizations()) {
    EXPECT_GT(util, 0.0);
    EXPECT_LE(util, 1.0);
  }
}

TEST(EngineAccountingTest, ActiveCountsShrinkForSssp) {
  // SSSP's frontier grows then dies out; the last iteration has no actives.
  graph::EdgeList edges = graph::GenerateRoadNetwork(
      {.width = 30, .height = 30, .seed = 49});
  sim::Cluster cluster(4, sim::CostModel{});
  IngestResult ingest = Partition(edges, StrategyKind::kRandom, 4, cluster);
  apps::SsspApp app;
  app.source = 0;
  RunOptions options;
  options.max_iterations = 5000;
  auto result = RunGasEngine(EngineKind::kPowerGraphSync, ingest.graph,
                             cluster, app, options);
  EXPECT_TRUE(result.stats.converged);
  EXPECT_EQ(result.stats.active_counts.back(), 0u);
  uint64_t peak = 0;
  for (uint64_t a : result.stats.active_counts) peak = std::max(peak, a);
  EXPECT_GT(peak, 1u);
}

TEST(EngineAccountingTest, GraphXWorkMultiplierSlowsCompute) {
  graph::EdgeList edges = graph::GenerateErdosRenyi(
      {.num_vertices = 800, .num_edges = 8000, .seed = 50});
  auto compute_seconds = [&](double multiplier) {
    sim::Cluster cluster(4, sim::CostModel{});
    IngestResult ingest = Partition(edges, StrategyKind::kTwoD, 4, cluster,
                                    MasterPolicy::kVertexHash);
    RunOptions options;
    options.max_iterations = 5;
    options.work_multiplier = multiplier;
    auto result = RunGasEngine(EngineKind::kGraphXPregel, ingest.graph,
                               cluster, apps::PageRankFixed(), options);
    return result.stats.compute_seconds;
  };
  EXPECT_GT(compute_seconds(4.0), compute_seconds(1.0));
}

TEST(EngineAccountingTest, MachineMasksMatchReplicaTables) {
  graph::EdgeList edges = graph::GenerateErdosRenyi(
      {.num_vertices = 300, .num_edges = 1500, .seed = 51});
  sim::Cluster cluster(6, sim::CostModel{});
  IngestResult ingest = Partition(edges, StrategyKind::kRandom, 6, cluster);
  internal::MachineMasks masks = internal::MachineMasks::Build(ingest.graph);
  for (graph::VertexId v = 0; v < edges.num_vertices(); ++v) {
    if (!ingest.graph.present[v]) continue;
    EXPECT_EQ(static_cast<uint32_t>(std::popcount(masks.replicas[v])),
              ingest.graph.replicas.Count(v));
    EXPECT_EQ(masks.master_machine[v], ingest.graph.master[v] % 6);
  }
}

}  // namespace
}  // namespace gdp::engine
