#include <gtest/gtest.h>

#include "advisor/advisor.h"

namespace gdp::advisor {
namespace {

using graph::GraphClass;
using partition::StrategyKind;

Workload Make(GraphClass cls, double ratio, uint32_t machines,
              bool natural = false) {
  Workload w;
  w.graph_class = cls;
  w.compute_ingress_ratio = ratio;
  w.num_machines = machines;
  w.natural_application = natural;
  return w;
}

TEST(AdvisorTest, PerfectSquares) {
  EXPECT_TRUE(IsPerfectSquare(9));
  EXPECT_TRUE(IsPerfectSquare(16));
  EXPECT_TRUE(IsPerfectSquare(25));
  EXPECT_TRUE(IsPerfectSquare(1));
  EXPECT_FALSE(IsPerfectSquare(10));
  EXPECT_FALSE(IsPerfectSquare(24));
  EXPECT_FALSE(IsPerfectSquare(26));
}

// ---------------------------------------------------------------------------
// Fig 5.9 — PowerGraph
// ---------------------------------------------------------------------------

TEST(PowerGraphTreeTest, LowDegreeAlwaysHdrfOblivious) {
  for (double ratio : {0.1, 10.0}) {
    for (uint32_t machines : {9u, 10u, 25u}) {
      Recommendation r =
          RecommendPowerGraph(Make(GraphClass::kLowDegree, ratio, machines));
      EXPECT_EQ(r.primary(), StrategyKind::kHdrf);
      EXPECT_EQ(r.strategies[1], StrategyKind::kOblivious);
    }
  }
}

TEST(PowerGraphTreeTest, HeavyTailedSquareClusterGrid) {
  Recommendation r =
      RecommendPowerGraph(Make(GraphClass::kHeavyTailed, 1.0, 25));
  EXPECT_EQ(r.primary(), StrategyKind::kGrid);
}

TEST(PowerGraphTreeTest, HeavyTailedNonSquareFallsBack) {
  Recommendation r =
      RecommendPowerGraph(Make(GraphClass::kHeavyTailed, 1.0, 10));
  EXPECT_EQ(r.primary(), StrategyKind::kHdrf);
}

TEST(PowerGraphTreeTest, PowerLawLongJobsHdrf) {
  Recommendation r = RecommendPowerGraph(Make(GraphClass::kPowerLaw, 5.0, 25));
  EXPECT_EQ(r.primary(), StrategyKind::kHdrf);
}

TEST(PowerGraphTreeTest, PowerLawShortJobsGridWhenSquare) {
  Recommendation r = RecommendPowerGraph(Make(GraphClass::kPowerLaw, 0.5, 25));
  EXPECT_EQ(r.primary(), StrategyKind::kGrid);
  Recommendation r2 =
      RecommendPowerGraph(Make(GraphClass::kPowerLaw, 0.5, 24));
  EXPECT_EQ(r2.primary(), StrategyKind::kHdrf);
}

TEST(PowerGraphTreeTest, BoundaryRatioCountsAsShort) {
  // The tree's test is "Compute/Ingress > 1"; exactly 1 goes the Low path.
  Recommendation r = RecommendPowerGraph(Make(GraphClass::kPowerLaw, 1.0, 25));
  EXPECT_EQ(r.primary(), StrategyKind::kGrid);
}

TEST(PowerGraphTreeTest, NeverRecommendsRandom) {
  for (auto cls : {GraphClass::kLowDegree, GraphClass::kHeavyTailed,
                   GraphClass::kPowerLaw}) {
    for (double ratio : {0.5, 2.0}) {
      for (uint32_t machines : {9u, 10u}) {
        Recommendation r = RecommendPowerGraph(Make(cls, ratio, machines));
        for (StrategyKind s : r.strategies) {
          EXPECT_NE(s, StrategyKind::kRandom);
          EXPECT_NE(s, StrategyKind::kAsymmetricRandom);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Fig 6.6 — PowerLyra
// ---------------------------------------------------------------------------

TEST(PowerLyraTreeTest, LowDegreeIgnoresNaturalness) {
  Recommendation r = RecommendPowerLyra(
      Make(GraphClass::kLowDegree, 1.0, 9, /*natural=*/true));
  EXPECT_EQ(r.primary(), StrategyKind::kOblivious);
}

TEST(PowerLyraTreeTest, NaturalAppsGetHybrid) {
  for (auto cls : {GraphClass::kHeavyTailed, GraphClass::kPowerLaw}) {
    Recommendation r = RecommendPowerLyra(Make(cls, 1.0, 9, true));
    EXPECT_EQ(r.primary(), StrategyKind::kHybrid) << GraphClassName(cls);
  }
}

TEST(PowerLyraTreeTest, HeavyTailedNonNaturalMirrorsPowerGraph) {
  EXPECT_EQ(
      RecommendPowerLyra(Make(GraphClass::kHeavyTailed, 1.0, 25)).primary(),
      StrategyKind::kGrid);
  // Non-square falls back on Hybrid (not HDRF) in PowerLyra's tree.
  EXPECT_EQ(
      RecommendPowerLyra(Make(GraphClass::kHeavyTailed, 1.0, 10)).primary(),
      StrategyKind::kHybrid);
}

TEST(PowerLyraTreeTest, PowerLawJobLengthSplit) {
  EXPECT_EQ(RecommendPowerLyra(Make(GraphClass::kPowerLaw, 5.0, 25)).primary(),
            StrategyKind::kOblivious);
  EXPECT_EQ(RecommendPowerLyra(Make(GraphClass::kPowerLaw, 0.5, 25)).primary(),
            StrategyKind::kGrid);
}

TEST(PowerLyraTreeTest, AllStrategiesVariantWidensToHdrf) {
  // §8.2.1: the only change with all strategies implemented is
  // 'Oblivious' -> 'HDRF/Oblivious'.
  Recommendation base =
      RecommendPowerLyra(Make(GraphClass::kLowDegree, 1.0, 9), false);
  Recommendation all =
      RecommendPowerLyra(Make(GraphClass::kLowDegree, 1.0, 9), true);
  EXPECT_EQ(base.strategies.size(), 1u);
  EXPECT_EQ(all.strategies.size(), 2u);
  EXPECT_EQ(all.primary(), StrategyKind::kHdrf);
}

TEST(PowerLyraTreeTest, NeverRecommendsHybridGinger) {
  // §6.4.4: Hybrid-Ginger should generally be avoided.
  for (auto cls : {GraphClass::kLowDegree, GraphClass::kHeavyTailed,
                   GraphClass::kPowerLaw}) {
    for (bool natural : {false, true}) {
      for (double ratio : {0.5, 2.0}) {
        Recommendation r = RecommendPowerLyra(Make(cls, ratio, 9, natural));
        for (StrategyKind s : r.strategies) {
          EXPECT_NE(s, StrategyKind::kHybridGinger);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// §7.4 and Fig 9.3 — GraphX
// ---------------------------------------------------------------------------

TEST(GraphXTreeTest, NativeRules) {
  EXPECT_EQ(RecommendGraphX(Make(GraphClass::kLowDegree, 1.0, 10)).primary(),
            StrategyKind::kRandom);  // Canonical Random
  EXPECT_EQ(RecommendGraphX(Make(GraphClass::kPowerLaw, 1.0, 10)).primary(),
            StrategyKind::kTwoD);
  EXPECT_EQ(
      RecommendGraphX(Make(GraphClass::kHeavyTailed, 1.0, 10)).primary(),
      StrategyKind::kTwoD);
}

TEST(GraphXTreeTest, AllStrategiesSplitsLowDegreeByJobLength) {
  EXPECT_EQ(
      RecommendGraphX(Make(GraphClass::kLowDegree, 0.5, 9), true).primary(),
      StrategyKind::kRandom);
  EXPECT_EQ(
      RecommendGraphX(Make(GraphClass::kLowDegree, 5.0, 9), true).primary(),
      StrategyKind::kHdrf);
  // 2D regardless of job length for skewed graphs (§9.2.2).
  EXPECT_EQ(
      RecommendGraphX(Make(GraphClass::kPowerLaw, 5.0, 9), true).primary(),
      StrategyKind::kTwoD);
}

// ---------------------------------------------------------------------------
// Dispatch + rationale strings
// ---------------------------------------------------------------------------

TEST(AdvisorTest, DispatchMatchesPerSystemFunctions) {
  Workload w = Make(GraphClass::kHeavyTailed, 1.0, 25);
  EXPECT_EQ(Recommend(System::kPowerGraph, w).primary(),
            RecommendPowerGraph(w).primary());
  EXPECT_EQ(Recommend(System::kPowerLyra, w).primary(),
            RecommendPowerLyra(w).primary());
  EXPECT_EQ(Recommend(System::kGraphX, w).primary(),
            RecommendGraphX(w).primary());
}

// ---------------------------------------------------------------------------
// Expansion-family rule (registry-trait driven, not a paper tree)
// ---------------------------------------------------------------------------

TEST(AdvisorTest, ExpansionFamilyPrefersNeWhenGraphFits) {
  Workload w = Make(GraphClass::kHeavyTailed, 1.0, 9);
  w.num_edges = 1000;
  // No budget at all -> quality wins.
  EXPECT_EQ(RecommendExpansionFamily(w).primary(), StrategyKind::kNe);
  // A budget comfortably above NE's whole-graph state -> still NE.
  w.ingress_memory_budget_bytes = 1 << 20;
  EXPECT_EQ(RecommendExpansionFamily(w).primary(), StrategyKind::kNe);
}

TEST(AdvisorTest, ExpansionFamilyBindingBudgetSplitsOnSkew) {
  Workload w = Make(GraphClass::kHeavyTailed, 1.0, 9);
  w.num_edges = 1 << 20;
  w.ingress_memory_budget_bytes = 1 << 10;  // far below 28 B/edge * |E|
  Recommendation skewed = RecommendExpansionFamily(w);
  EXPECT_EQ(skewed.primary(), StrategyKind::kHep);
  // Every recommended strategy is budget-aware except the 2PS fallback.
  EXPECT_EQ(skewed.strategies.back(), StrategyKind::kTwoPs);

  w.graph_class = GraphClass::kLowDegree;
  Recommendation flat = RecommendExpansionFamily(w);
  EXPECT_EQ(flat.primary(), StrategyKind::kSne);
  EXPECT_EQ(flat.strategies.back(), StrategyKind::kTwoPs);
  EXPECT_NE(skewed.rationale, flat.rationale);
}

TEST(AdvisorTest, RationaleIsNonEmptyEverywhere) {
  for (auto system :
       {System::kPowerGraph, System::kPowerLyra, System::kGraphX}) {
    for (auto cls : {GraphClass::kLowDegree, GraphClass::kHeavyTailed,
                     GraphClass::kPowerLaw}) {
      for (double ratio : {0.5, 2.0}) {
        for (uint32_t machines : {9u, 10u}) {
          for (bool natural : {false, true}) {
            Recommendation r =
                Recommend(system, Make(cls, ratio, machines, natural));
            EXPECT_FALSE(r.strategies.empty());
            EXPECT_FALSE(r.rationale.empty());
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace gdp::advisor
