// Edge cases and boundary behaviour of the engines and ingest pipeline:
// degenerate clusters, isolated vertices, unreachable sources, and
// cross-engine invariants that must hold regardless of configuration.

#include <gtest/gtest.h>

#include "apps/pagerank.h"
#include "apps/reference.h"
#include "apps/sssp.h"
#include "apps/wcc.h"
#include "engine/async_coloring.h"
#include "engine/gas_engine.h"
#include "graph/generators.h"
#include "partition/ingest.h"

namespace gdp::engine {
namespace {

using partition::IngestResult;
using partition::IngestWithStrategy;
using partition::PartitionContext;
using partition::StrategyKind;

IngestResult Partition(const graph::EdgeList& edges, uint32_t machines,
                       StrategyKind strategy = StrategyKind::kRandom) {
  // The ingest cluster is scratch: DistributedGraph owns no reference to it.
  sim::Cluster scratch(machines, sim::CostModel{});
  PartitionContext context;
  context.num_partitions = machines;
  context.num_vertices = edges.num_vertices();
  context.num_loaders = machines;
  context.seed = 3;
  return IngestWithStrategy(edges, strategy, context, scratch);
}

TEST(EngineEdgeTest, SingleMachineSendsNoNetwork) {
  graph::EdgeList edges = graph::GenerateErdosRenyi(
      {.num_vertices = 200, .num_edges = 1000, .seed = 1});
  sim::Cluster cluster(1, sim::CostModel{});
  PartitionContext context;
  context.num_partitions = 1;
  context.num_vertices = edges.num_vertices();
  IngestResult ingest = IngestWithStrategy(edges, StrategyKind::kRandom,
                                           context, cluster);
  RunOptions options;
  options.max_iterations = 5;
  auto run = RunGasEngine(EngineKind::kPowerGraphSync, ingest.graph, cluster,
                          apps::PageRankFixed(), options);
  EXPECT_EQ(run.stats.network_bytes, 0u);
  EXPECT_GT(run.stats.compute_seconds, 0.0);
}

TEST(EngineEdgeTest, TwoVertexGraph) {
  graph::EdgeList edges;
  edges.AddEdge(0, 1);
  IngestResult ingest = Partition(edges, 2);
  sim::Cluster cluster(2, sim::CostModel{});
  RunOptions options;
  options.max_iterations = 20;
  auto run = RunGasEngine(EngineKind::kPowerGraphSync, ingest.graph, cluster,
                          apps::PageRankFixed(), options);
  EXPECT_NEAR(run.states[0], 0.15, 1e-12);
  EXPECT_NEAR(run.states[1], 0.15 + 0.85 * 0.15, 1e-12);
}

TEST(EngineEdgeTest, IsolatedVerticesStayUntouched) {
  // Vertices 5..9 have no edges: not present, never active, never applied.
  graph::EdgeList edges(/*name=*/"gap", /*num_vertices=*/10,
                        {{0, 1}, {1, 2}});
  IngestResult ingest = Partition(edges, 3);
  sim::Cluster cluster(3, sim::CostModel{});
  RunOptions options;
  options.max_iterations = 50;
  auto run = RunGasEngine(EngineKind::kPowerGraphSync, ingest.graph, cluster,
                          apps::WccApp{}, options);
  EXPECT_TRUE(run.stats.converged);
  for (graph::VertexId v = 5; v < 10; ++v) {
    EXPECT_FALSE(ingest.graph.present[v]);
    EXPECT_EQ(run.states[v], v);  // untouched initial label
  }
  EXPECT_EQ(run.states[2], 0u);
}

TEST(EngineEdgeTest, SsspFromVertexWithNoOutEdges) {
  // Source 2 is a sink (directed): nothing is reachable, run converges
  // after the bootstrap fizzles.
  graph::EdgeList edges;
  edges.AddEdge(0, 1);
  edges.AddEdge(1, 2);
  IngestResult ingest = Partition(edges, 2);
  sim::Cluster cluster(2, sim::CostModel{});
  apps::DirectedSsspApp app;
  app.source = 2;
  RunOptions options;
  options.max_iterations = 50;
  auto run = RunGasEngine(EngineKind::kPowerGraphSync, ingest.graph, cluster,
                          app, options);
  EXPECT_TRUE(run.stats.converged);
  EXPECT_EQ(run.states[2], 0u);
  EXPECT_EQ(run.states[0], apps::kInfiniteDistance);
  EXPECT_EQ(run.states[1], apps::kInfiniteDistance);
}

TEST(EngineEdgeTest, ZeroIterationBudget) {
  graph::EdgeList edges = graph::GenerateErdosRenyi(
      {.num_vertices = 50, .num_edges = 200, .seed = 2});
  IngestResult ingest = Partition(edges, 2);
  sim::Cluster cluster(2, sim::CostModel{});
  RunOptions options;
  options.max_iterations = 0;
  auto run = RunGasEngine(EngineKind::kPowerGraphSync, ingest.graph, cluster,
                          apps::PageRankFixed(), options);
  EXPECT_EQ(run.stats.iterations, 0u);
  // States remain initial.
  for (graph::VertexId v = 0; v < edges.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(run.states[v], 1.0);
  }
}

TEST(EngineEdgeTest, IterationCapStopsDivergentRuns) {
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 500, .edges_per_vertex = 4, .seed = 3});
  IngestResult ingest = Partition(edges, 4);
  sim::Cluster cluster(4, sim::CostModel{});
  RunOptions options;
  options.max_iterations = 7;  // PageRank with tol=0 never converges
  auto run = RunGasEngine(EngineKind::kPowerGraphSync, ingest.graph, cluster,
                          apps::PageRankFixed(), options);
  EXPECT_EQ(run.stats.iterations, 7u);
  EXPECT_FALSE(run.stats.converged);
}

TEST(EngineEdgeTest, EnginesAgreeOnResultsDifferOnCosts) {
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 2000, .edges_per_vertex = 5, .seed = 4});
  partition::IngestOptions options;
  options.master_policy = partition::MasterPolicy::kVertexHash;
  options.use_partitioner_master_preference = true;
  PartitionContext context;
  context.num_partitions = 8;
  context.num_vertices = edges.num_vertices();
  context.num_loaders = 8;
  RunOptions run_options;
  run_options.max_iterations = 8;

  std::vector<double> first_states;
  std::vector<uint64_t> nets;
  for (EngineKind kind :
       {EngineKind::kPowerGraphSync, EngineKind::kPowerLyraHybrid,
        EngineKind::kGraphXPregel}) {
    sim::Cluster cluster(8, sim::CostModel{});
    IngestResult ingest = IngestWithStrategy(edges, StrategyKind::kHybrid,
                                             context, cluster, options);
    auto run = RunGasEngine(kind, ingest.graph, cluster,
                            apps::PageRankFixed(), run_options);
    if (first_states.empty()) {
      first_states = run.states;
    } else {
      EXPECT_EQ(run.states, first_states)
          << "engines must agree on values for " << EngineKindName(kind);
    }
    nets.push_back(run.stats.network_bytes);
  }
  // PowerLyra's discipline saves traffic vs PowerGraph's on this natural
  // app + hybrid partitioning combination.
  EXPECT_LT(nets[1], nets[0]);
}

TEST(EngineEdgeTest, AsyncColoringOnSingleMachine) {
  graph::EdgeList edges = graph::GenerateRoadNetwork(
      {.width = 15, .height = 15, .seed = 5});
  sim::Cluster cluster(1, sim::CostModel{});
  PartitionContext context;
  context.num_partitions = 1;
  context.num_vertices = edges.num_vertices();
  IngestResult ingest = IngestWithStrategy(edges, StrategyKind::kRandom,
                                           context, cluster);
  RunOptions options;
  options.max_iterations = 500;
  AsyncColoringResult result = RunAsyncColoring(ingest.graph, cluster,
                                                options);
  EXPECT_TRUE(result.stats.converged);
  EXPECT_TRUE(apps::IsProperColoring(edges, result.colors));
  EXPECT_EQ(result.stats.network_bytes, 0u);
}

TEST(EngineEdgeTest, AsyncStalenessCostsRounds) {
  // The same graph colored on 1 machine (no staleness) must converge in
  // no more rounds than on 8 machines (remote reads are one round stale).
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 800, .edges_per_vertex = 4, .seed = 6});
  auto rounds_on = [&](uint32_t machines) {
    sim::Cluster cluster(machines, sim::CostModel{});
    PartitionContext context;
    context.num_partitions = machines;
    context.num_vertices = edges.num_vertices();
    context.num_loaders = machines;
    IngestResult ingest = IngestWithStrategy(edges, StrategyKind::kRandom,
                                             context, cluster);
    RunOptions options;
    options.max_iterations = 1000;
    return RunAsyncColoring(ingest.graph, cluster, options).stats.iterations;
  };
  EXPECT_LE(rounds_on(1), rounds_on(8));
}

TEST(EngineEdgeTest, GraphXShuffleCostTracksPartitionRf) {
  // With equal machine counts, the GraphX engine must run slower on a
  // higher-partition-RF placement of the same graph (the §7.4 mechanism).
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 4000, .edges_per_vertex = 8, .seed = 7});
  auto run = [&](StrategyKind strategy) {
    sim::Cluster cluster(8, sim::CostModel{});
    PartitionContext context;
    context.num_partitions = 64;
    context.num_vertices = edges.num_vertices();
    context.num_loaders = 8;
    partition::IngestOptions ing;
    ing.master_policy = partition::MasterPolicy::kVertexHash;
    IngestResult ingest =
        IngestWithStrategy(edges, strategy, context, cluster, ing);
    RunOptions options;
    options.max_iterations = 5;
    options.work_multiplier = 4.0;
    auto r = RunGasEngine(EngineKind::kGraphXPregel, ingest.graph, cluster,
                          apps::PageRankFixed(), options);
    return std::pair<double, double>(ingest.report.replication_factor,
                                     r.stats.compute_seconds);
  };
  auto [rf_2d, t_2d] = run(StrategyKind::kTwoD);
  auto [rf_rand, t_rand] = run(StrategyKind::kAsymmetricRandom);
  ASSERT_LT(rf_2d, rf_rand);
  EXPECT_LT(t_2d, t_rand);
}

}  // namespace
}  // namespace gdp::engine
