#include <gtest/gtest.h>

#include "engine/edge_cut.h"
#include "graph/generators.h"

namespace gdp::engine {
namespace {

TEST(EdgeCutTest, SingleMachineHasNoCuts) {
  graph::EdgeList edges = graph::GenerateErdosRenyi(
      {.num_vertices = 200, .num_edges = 1000, .seed = 1});
  EdgeCutAnalysis a = AnalyzeEdgeCut(edges, 1);
  EXPECT_EQ(a.cut_edges, 0u);
  EXPECT_EQ(a.messages_per_superstep, 0u);
  EXPECT_DOUBLE_EQ(a.load_imbalance, 1.0);
}

TEST(EdgeCutTest, HashPlacementCutsMostEdges) {
  // With N machines and no locality, ~ (N-1)/N of edges are cut.
  graph::EdgeList edges = graph::GenerateErdosRenyi(
      {.num_vertices = 2000, .num_edges = 20000, .seed = 2});
  EdgeCutAnalysis a = AnalyzeEdgeCut(edges, 10);
  EXPECT_NEAR(a.cut_fraction, 0.9, 0.02);
  EXPECT_EQ(a.messages_per_superstep, 2 * a.cut_edges);
}

TEST(EdgeCutTest, RangePlacementExploitsRoadLocality) {
  graph::EdgeList road = graph::GenerateRoadNetwork(
      {.width = 80, .height = 80, .seed = 3});
  EdgeCutAnalysis hash = AnalyzeEdgeCut(road, 8);
  EdgeCutAnalysis range = AnalyzeEdgeCut(road, 8, 0, true);
  EXPECT_LT(range.cut_fraction, 0.1);
  EXPECT_LT(range.cut_edges * 5, hash.cut_edges);
}

TEST(EdgeCutTest, HubsCannotBeSplit) {
  // A star's hub puts its entire degree on one machine: imbalance ~ N/2
  // (the hub machine holds half the total degree mass).
  graph::EdgeList star;
  for (graph::VertexId i = 1; i <= 1000; ++i) star.AddEdge(i, 0);
  EdgeCutAnalysis a = AnalyzeEdgeCut(star, 8);
  EXPECT_GT(a.load_imbalance, 3.0);
}

TEST(EdgeCutTest, VertexCutSplitsTheSameHub) {
  graph::EdgeList star;
  for (graph::VertexId i = 1; i <= 1000; ++i) star.AddEdge(i, 0);
  VertexCutAnalysis vc = AnalyzeRandomVertexCut(star, 8);
  EXPECT_LT(vc.load_imbalance, 1.2);
  // The hub is replicated on every machine; leaves stay put.
  EXPECT_GT(vc.replication_factor, 1.0);
  EXPECT_LT(vc.replication_factor, 1.2);  // 1001 vertices, hub has 8
}

TEST(EdgeCutTest, VertexCutMessagesMatchReplicaFormula) {
  graph::EdgeList edges;
  edges.AddEdge(0, 1);
  edges.AddEdge(2, 3);
  VertexCutAnalysis vc = AnalyzeRandomVertexCut(edges, 4);
  // Each of the 4 vertices has exactly 1 replica (one edge each) plus the
  // randomly chosen master is one of them: messages = 2 * sum(replicas-1)
  // = 0.
  EXPECT_EQ(vc.messages_per_superstep, 0u);
}

}  // namespace
}  // namespace gdp::engine
