// Tests for the extension applications (triangle counting, label
// propagation, multi-source BFS) across engines and strategies.

#include <gtest/gtest.h>

#include "apps/label_propagation.h"
#include "apps/msbfs.h"
#include "apps/reference.h"
#include "apps/sssp.h"
#include "apps/triangle_count.h"
#include "engine/gas_engine.h"
#include "graph/generators.h"
#include "partition/ingest.h"

namespace gdp::apps {
namespace {

using engine::EngineKind;
using engine::RunOptions;
using partition::IngestResult;
using partition::PartitionContext;
using partition::StrategyKind;

IngestResult Partition(const graph::EdgeList& edges, uint32_t machines,
                       sim::Cluster& cluster,
                       StrategyKind strategy = StrategyKind::kGrid) {
  PartitionContext context;
  context.num_partitions = machines;
  context.num_vertices = edges.num_vertices();
  context.num_loaders = machines;
  context.seed = 3;
  return IngestWithStrategy(edges, strategy, context, cluster);
}

// ---------------------------------------------------------------------------
// Triangle counting
// ---------------------------------------------------------------------------

TEST(TriangleTest, ReferenceOnKnownShapes) {
  graph::EdgeList triangle;
  triangle.AddEdge(0, 1);
  triangle.AddEdge(1, 2);
  triangle.AddEdge(2, 0);
  EXPECT_EQ(ReferenceTriangleCount(triangle), 1u);

  graph::EdgeList square;  // C4: no triangles
  square.AddEdge(0, 1);
  square.AddEdge(1, 2);
  square.AddEdge(2, 3);
  square.AddEdge(3, 0);
  EXPECT_EQ(ReferenceTriangleCount(square), 0u);

  graph::EdgeList k4;  // complete graph on 4 vertices: 4 triangles
  for (graph::VertexId u = 0; u < 4; ++u) {
    for (graph::VertexId v = u + 1; v < 4; ++v) k4.AddEdge(u, v);
  }
  EXPECT_EQ(ReferenceTriangleCount(k4), 4u);
}

TEST(TriangleTest, ReferenceIgnoresDuplicatesAndDirections) {
  graph::EdgeList triangle;
  triangle.AddEdge(0, 1);
  triangle.AddEdge(1, 0);  // reverse duplicate
  triangle.AddEdge(1, 2);
  triangle.AddEdge(2, 0);
  triangle.AddEdge(0, 2);  // another duplicate
  EXPECT_EQ(ReferenceTriangleCount(triangle), 1u);
}

TEST(TriangleTest, DistributedMatchesReference) {
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 600, .edges_per_vertex = 5, .seed = 31});
  sim::Cluster cluster(6, sim::CostModel{});
  IngestResult ingest = Partition(edges, 6, cluster);
  TriangleCountResult result = CountTriangles(
      EngineKind::kPowerGraphSync, ingest.graph, cluster, RunOptions{});
  EXPECT_EQ(result.total_triangles, ReferenceTriangleCount(edges));
  EXPECT_GT(result.total_triangles, 0u);
}

TEST(TriangleTest, CountIsPartitioningIndependent) {
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 400, .edges_per_vertex = 4, .seed = 32});
  uint64_t expected = ReferenceTriangleCount(edges);
  for (StrategyKind strategy :
       {StrategyKind::kRandom, StrategyKind::kHdrf, StrategyKind::kTwoD}) {
    sim::Cluster cluster(5, sim::CostModel{});
    IngestResult ingest = Partition(edges, 5, cluster, strategy);
    TriangleCountResult result = CountTriangles(
        EngineKind::kPowerGraphSync, ingest.graph, cluster, RunOptions{});
    EXPECT_EQ(result.total_triangles, expected)
        << partition::StrategyName(strategy);
  }
}

TEST(TriangleTest, PerVertexCountsSumToThreePerTriangle) {
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 300, .edges_per_vertex = 4, .seed = 33});
  sim::Cluster cluster(4, sim::CostModel{});
  IngestResult ingest = Partition(edges, 4, cluster);
  TriangleCountResult result = CountTriangles(
      EngineKind::kPowerGraphSync, ingest.graph, cluster, RunOptions{});
  uint64_t sum = 0;
  for (uint64_t c : result.per_vertex) sum += c;
  EXPECT_EQ(sum, 3 * result.total_triangles);
}

// ---------------------------------------------------------------------------
// Label propagation
// ---------------------------------------------------------------------------

TEST(LabelPropagationTest, ModeLabelPicksMostFrequentThenSmallest) {
  EXPECT_EQ(LabelPropagationApp::ModeLabel({3, 1, 3, 2}), 3u);
  EXPECT_EQ(LabelPropagationApp::ModeLabel({5, 2, 5, 2}), 2u);  // tie
  EXPECT_EQ(LabelPropagationApp::ModeLabel({9}), 9u);
}

TEST(LabelPropagationTest, CliquesConvergeToMinLabel) {
  // Two disjoint 6-cliques: every vertex must adopt its clique's minimum.
  graph::EdgeList edges;
  for (graph::VertexId base : {0u, 10u}) {
    for (graph::VertexId u = 0; u < 6; ++u) {
      for (graph::VertexId v = u + 1; v < 6; ++v) {
        edges.AddEdge(base + u, base + v);
      }
    }
  }
  sim::Cluster cluster(4, sim::CostModel{});
  IngestResult ingest = Partition(edges, 4, cluster);
  RunOptions options;
  options.max_iterations = 50;
  auto run = engine::RunGasEngine(EngineKind::kPowerGraphSync, ingest.graph,
                                  cluster, LabelPropagationApp{}, options);
  EXPECT_TRUE(run.stats.converged);
  for (graph::VertexId v = 0; v < 6; ++v) EXPECT_EQ(run.states[v], 0u);
  for (graph::VertexId v = 10; v < 16; ++v) EXPECT_EQ(run.states[v], 10u);
}

TEST(LabelPropagationTest, CommunitiesRespectComponents) {
  // LPA labels can only spread along edges: any final label must come from
  // the same weakly connected component.
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 800, .edges_per_vertex = 4, .seed = 34});
  sim::Cluster cluster(4, sim::CostModel{});
  IngestResult ingest = Partition(edges, 4, cluster);
  RunOptions options;
  options.max_iterations = 30;  // capped: sync LPA may oscillate
  auto run = engine::RunGasEngine(EngineKind::kPowerGraphSync, ingest.graph,
                                  cluster, LabelPropagationApp{}, options);
  std::vector<graph::VertexId> component = ReferenceWcc(edges);
  for (graph::VertexId v = 0; v < edges.num_vertices(); ++v) {
    if (!ingest.graph.present[v]) continue;
    EXPECT_EQ(component[run.states[v]], component[v]) << "vertex " << v;
  }
}

// ---------------------------------------------------------------------------
// Multi-source BFS
// ---------------------------------------------------------------------------

TEST(MsBfsTest, MasksMatchPerSourceBfs) {
  graph::EdgeList edges = graph::GenerateRoadNetwork(
      {.width = 20, .height = 20, .seed = 35});
  sim::Cluster cluster(4, sim::CostModel{});
  IngestResult ingest = Partition(edges, 4, cluster);
  MsBfsApp app;
  app.sources = {0, 57, 399};
  RunOptions options;
  options.max_iterations = 500;
  auto run = engine::RunGasEngine(EngineKind::kPowerGraphSync, ingest.graph,
                                  cluster, app, options);
  EXPECT_TRUE(run.stats.converged);
  for (size_t i = 0; i < app.sources.size(); ++i) {
    std::vector<uint32_t> dist =
        ReferenceSssp(edges, app.sources[i], /*directed=*/false);
    for (graph::VertexId v = 0; v < edges.num_vertices(); ++v) {
      bool reached = (run.states[v] >> i) & 1;
      EXPECT_EQ(reached, dist[v] != kInfiniteDistance)
          << "source " << i << " vertex " << v;
    }
  }
}

TEST(MsBfsTest, SuperstepsBoundEccentricity) {
  // The run length (supersteps until quiescence) equals the largest
  // distance any source had to cover, which lower-bounds the diameter.
  graph::EdgeList path;  // 0-1-2-...-30
  for (graph::VertexId v = 0; v + 1 <= 30; ++v) path.AddEdge(v, v + 1);
  sim::Cluster cluster(3, sim::CostModel{});
  IngestResult ingest = Partition(path, 3, cluster);
  MsBfsApp app;
  app.sources = {0};
  RunOptions options;
  options.max_iterations = 200;
  auto run = engine::RunGasEngine(EngineKind::kPowerGraphSync, ingest.graph,
                                  cluster, app, options);
  EXPECT_TRUE(run.stats.converged);
  // Distance 30 end-to-end: 30 productive supersteps + 1 quiescent check.
  EXPECT_GE(run.stats.iterations, 30u);
  EXPECT_LE(run.stats.iterations, 32u);
}

TEST(MsBfsTest, SixtyFourSourcesInOneRun) {
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 500, .edges_per_vertex = 4, .seed = 36});
  sim::Cluster cluster(4, sim::CostModel{});
  IngestResult ingest = Partition(edges, 4, cluster);
  MsBfsApp app;
  for (graph::VertexId v = 0; v < 64; ++v) app.sources.push_back(v * 7);
  RunOptions options;
  options.max_iterations = 200;
  auto run = engine::RunGasEngine(EngineKind::kPowerGraphSync, ingest.graph,
                                  cluster, app, options);
  EXPECT_TRUE(run.stats.converged);
  // A connected heavy-tailed graph: every present vertex is reached by
  // every source.
  for (graph::VertexId v = 0; v < edges.num_vertices(); ++v) {
    if (!ingest.graph.present[v]) continue;
    EXPECT_EQ(run.states[v], ~0ULL) << "vertex " << v;
  }
}

}  // namespace
}  // namespace gdp::apps
