// Tests for the parallel experiment-grid runner (harness/grid.h) and the
// keyed partition/plan artifact caches (harness/partition_cache.h,
// engine/plan_cache.h): cached results must be field-identical to fresh
// runs, RunGrid must be invariant to its thread count, and
// Cluster::Snapshot/Restore must round-trip the exact machine state the
// cache's determinism argument leans on.

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "apps/pagerank.h"
#include "engine/gas_engine.h"
#include "engine/plan_cache.h"
#include "graph/edge_list.h"
#include "graph/generators.h"
#include "harness/experiment.h"
#include "harness/grid.h"
#include "harness/partition_cache.h"
#include "partition/ingest.h"
#include "partition/partitioner.h"
#include "sim/cluster.h"

namespace gdp {
namespace {

graph::EdgeList TestGraph() {
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 3000, .edges_per_vertex = 8, .seed = 0x51});
  edges.set_name("grid-test");
  return edges;
}

// Exact comparison of everything RunExperiment/RunIngressOnly report. The
// simulator is deterministic; approximate equality would mask divergence.
void ExpectResultsIdentical(const harness::ExperimentResult& a,
                            const harness::ExperimentResult& b) {
  EXPECT_EQ(a.ingress.ingress_seconds, b.ingress.ingress_seconds);
  EXPECT_EQ(a.ingress.pass_seconds, b.ingress.pass_seconds);
  EXPECT_EQ(a.ingress.edges_moved, b.ingress.edges_moved);
  EXPECT_EQ(a.ingress.replication_factor, b.ingress.replication_factor);
  EXPECT_EQ(a.ingress.edge_balance_ratio, b.ingress.edge_balance_ratio);
  EXPECT_EQ(a.ingress.peak_state_bytes, b.ingress.peak_state_bytes);
  EXPECT_EQ(a.compute.iterations, b.compute.iterations);
  EXPECT_EQ(a.compute.converged, b.compute.converged);
  EXPECT_EQ(a.compute.compute_seconds, b.compute.compute_seconds);
  EXPECT_EQ(a.compute.network_bytes, b.compute.network_bytes);
  EXPECT_EQ(a.compute.mean_inbound_bytes_per_machine,
            b.compute.mean_inbound_bytes_per_machine);
  EXPECT_EQ(a.compute.cumulative_seconds, b.compute.cumulative_seconds);
  EXPECT_EQ(a.compute.active_counts, b.compute.active_counts);
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.replication_factor, b.replication_factor);
  EXPECT_EQ(a.mean_peak_memory_bytes, b.mean_peak_memory_bytes);
  EXPECT_EQ(a.max_peak_memory_bytes, b.max_peak_memory_bytes);
  EXPECT_EQ(a.cpu_utilizations, b.cpu_utilizations);
  EXPECT_EQ(a.edge_balance_ratio, b.edge_balance_ratio);
}

TEST(ClusterSnapshotTest, RestoreRoundTripsExactMachineState) {
  graph::EdgeList edges = TestGraph();
  sim::Cluster cluster(4, sim::CostModel{});
  partition::PartitionContext context;
  context.num_partitions = 4;
  context.num_vertices = edges.num_vertices();
  context.seed = 7;
  auto partitioner =
      partition::MakePartitioner(partition::StrategyKind::kHdrf, context);
  partition::IngestResult ingest =
      Ingest(edges, *partitioner, cluster, partition::IngestOptions{});

  sim::ClusterSnapshot snapshot = cluster.Snapshot();
  std::vector<uint64_t> peak, mem, sent, received;
  std::vector<double> busy;
  for (uint32_t m = 0; m < cluster.num_machines(); ++m) {
    peak.push_back(cluster.machine(m).peak_memory_bytes());
    mem.push_back(cluster.machine(m).memory_bytes());
    sent.push_back(cluster.machine(m).bytes_sent());
    received.push_back(cluster.machine(m).bytes_received());
    busy.push_back(cluster.machine(m).busy_seconds());
  }
  const double now = cluster.now_seconds();

  // Mutate the cluster heavily: run an app on top of the ingested graph.
  engine::RunOptions run_options;
  run_options.max_iterations = 5;
  engine::RunGasEngine(engine::EngineKind::kPowerGraphSync, ingest.graph,
                       cluster, apps::PageRankFixed(), run_options);
  ASSERT_NE(cluster.now_seconds(), now);

  cluster.Restore(snapshot);
  EXPECT_EQ(cluster.now_seconds(), now);
  for (uint32_t m = 0; m < cluster.num_machines(); ++m) {
    EXPECT_EQ(cluster.machine(m).peak_memory_bytes(), peak[m]);
    EXPECT_EQ(cluster.machine(m).memory_bytes(), mem[m]);
    EXPECT_EQ(cluster.machine(m).bytes_sent(), sent[m]);
    EXPECT_EQ(cluster.machine(m).bytes_received(), received[m]);
    EXPECT_EQ(cluster.machine(m).busy_seconds(), busy[m]);
  }
}

TEST(PartitionCacheTest, CachedResultsMatchFreshForEveryEngine) {
  graph::EdgeList edges = TestGraph();
  const engine::EngineKind engines[] = {engine::EngineKind::kPowerGraphSync,
                                        engine::EngineKind::kPowerLyraHybrid,
                                        engine::EngineKind::kGraphXPregel};
  harness::PartitionCache cache;
  for (engine::EngineKind engine : engines) {
    harness::ExperimentSpec spec;
    spec.engine = engine;
    spec.strategy = partition::StrategyKind::kHdrf;
    spec.num_machines = 4;
    spec.app = harness::AppKind::kPageRankFixed;
    spec.max_iterations = 8;
    if (engine == engine::EngineKind::kGraphXPregel) {
      spec.partitions_per_machine = 2;
    }
    SCOPED_TRACE(static_cast<int>(engine));
    harness::ExperimentResult fresh = harness::RunExperiment(edges, spec);
    // Run the cached path twice: once populating, once hitting.
    harness::ExperimentResult miss =
        harness::RunExperimentCached(edges, spec, cache);
    harness::ExperimentResult hit =
        harness::RunExperimentCached(edges, spec, cache);
    ExpectResultsIdentical(fresh, miss);
    ExpectResultsIdentical(fresh, hit);
  }
}

TEST(PartitionCacheTest, CachedResultsMatchFreshForHybridStrategy) {
  // Hybrid exercises the multi-pass ingress + partitioner-chosen masters
  // path; the snapshot must capture the cluster state after all passes.
  graph::EdgeList edges = TestGraph();
  harness::ExperimentSpec spec;
  spec.engine = engine::EngineKind::kPowerLyraHybrid;
  spec.strategy = partition::StrategyKind::kHybridGinger;
  spec.num_machines = 4;
  spec.app = harness::AppKind::kWcc;
  spec.max_iterations = 20;
  harness::PartitionCache cache;
  harness::ExperimentResult fresh = harness::RunExperiment(edges, spec);
  harness::ExperimentResult miss =
      harness::RunExperimentCached(edges, spec, cache);
  harness::ExperimentResult hit =
      harness::RunExperimentCached(edges, spec, cache);
  ExpectResultsIdentical(fresh, miss);
  ExpectResultsIdentical(fresh, hit);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PartitionCacheTest, IngressOnlyAndComputeCellsShareOneIngest) {
  graph::EdgeList edges = TestGraph();
  harness::ExperimentSpec spec;
  spec.strategy = partition::StrategyKind::kOblivious;
  spec.num_machines = 4;
  spec.app = harness::AppKind::kSssp;
  harness::PartitionCache cache;

  harness::ExperimentResult fresh_ingress =
      harness::RunIngressOnly(edges, spec);
  harness::ExperimentResult cached_ingress =
      harness::RunIngressOnlyCached(edges, spec, cache);
  ExpectResultsIdentical(fresh_ingress, cached_ingress);

  // The compute cell reuses the ingress-only cell's artifact: same key.
  harness::ExperimentResult fresh = harness::RunExperiment(edges, spec);
  harness::ExperimentResult cached =
      harness::RunExperimentCached(edges, spec, cache);
  ExpectResultsIdentical(fresh, cached);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PartitionCacheTest, KeySeparatesIngressInputsOnly) {
  graph::EdgeList edges = TestGraph();
  harness::ExperimentSpec spec;
  spec.strategy = partition::StrategyKind::kGrid;
  spec.num_machines = 9;
  const harness::IngressKey base = harness::PartitionCache::KeyFor(edges, spec);

  // App, iteration cap, and engine threads don't affect ingress: same key.
  harness::ExperimentSpec app_variant = spec;
  app_variant.app = harness::AppKind::kKCore;
  app_variant.max_iterations = 77;
  app_variant.exec.num_threads = 8;
  EXPECT_EQ(base, harness::PartitionCache::KeyFor(edges, app_variant));

  // Strategy, cluster size, seed, and the graph itself do: distinct keys.
  harness::ExperimentSpec other = spec;
  other.strategy = partition::StrategyKind::kHdrf;
  EXPECT_NE(base, harness::PartitionCache::KeyFor(edges, other));
  other = spec;
  other.num_machines = 16;
  EXPECT_NE(base, harness::PartitionCache::KeyFor(edges, other));
  other = spec;
  other.seed = 43;
  EXPECT_NE(base, harness::PartitionCache::KeyFor(edges, other));
  graph::EdgeList different = graph::GenerateHeavyTailed(
      {.num_vertices = 3000, .edges_per_vertex = 8, .seed = 0x52});
  EXPECT_NE(base, harness::PartitionCache::KeyFor(different, spec));
}

TEST(EdgeListFingerprintTest, SensitiveToContentNotName) {
  graph::EdgeList a = TestGraph();
  graph::EdgeList b = TestGraph();
  b.set_name("renamed");
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  graph::EdgeList c = graph::GenerateHeavyTailed(
      {.num_vertices = 3000, .edges_per_vertex = 8, .seed = 0x52});
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
}

std::vector<harness::GridCell> TestCells(const graph::EdgeList& edges) {
  std::vector<harness::GridCell> cells;
  for (partition::StrategyKind strategy :
       {partition::StrategyKind::kRandom, partition::StrategyKind::kHdrf,
        partition::StrategyKind::kHybrid}) {
    for (harness::AppKind app :
         {harness::AppKind::kPageRankFixed, harness::AppKind::kWcc}) {
      harness::ExperimentSpec spec;
      spec.strategy = strategy;
      spec.num_machines = 4;
      spec.app = app;
      spec.max_iterations = 6;
      cells.push_back({&edges, spec, /*ingress_only=*/false});
    }
    harness::ExperimentSpec spec;
    spec.strategy = strategy;
    spec.num_machines = 4;
    cells.push_back({&edges, spec, /*ingress_only=*/true});
  }
  return cells;
}

TEST(GridRunnerTest, ThreadCountAndCacheInvariant) {
  graph::EdgeList edges = TestGraph();
  std::vector<harness::GridCell> cells = TestCells(edges);

  std::vector<harness::ExperimentResult> serial;
  for (const harness::GridCell& cell : cells) {
    serial.push_back(cell.ingress_only
                         ? harness::RunIngressOnly(*cell.edges, cell.spec)
                         : harness::RunExperiment(*cell.edges, cell.spec));
  }

  for (bool cached : {false, true}) {
    for (uint32_t threads : {1u, 2u, 8u}) {
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " cached=" << cached);
      harness::PartitionCache cache;
      harness::GridOptions options;
      options.exec.num_threads = threads;
      if (cached) options.cache = &cache;
      std::vector<harness::ExperimentResult> got =
          harness::RunGrid(cells, options);
      ASSERT_EQ(got.size(), serial.size());
      for (size_t i = 0; i < got.size(); ++i) {
        SCOPED_TRACE(testing::Message() << "cell=" << i);
        ExpectResultsIdentical(serial[i], got[i]);
      }
      if (cached) {
        // 3 strategies -> 3 ingests; the other 6 cells hit.
        EXPECT_EQ(cache.stats().misses, 3u);
        EXPECT_EQ(cache.stats().hits, cells.size() - 3);
      }
    }
  }
}

TEST(GridRunnerTest, SpecsConvenienceOverloadMatchesCellForm) {
  graph::EdgeList edges = TestGraph();
  std::vector<harness::ExperimentSpec> specs;
  for (uint32_t machines : {4u, 9u}) {
    harness::ExperimentSpec spec;
    spec.num_machines = machines;
    spec.max_iterations = 5;
    specs.push_back(spec);
  }
  std::vector<harness::ExperimentResult> from_specs =
      harness::RunGrid(edges, specs);
  ASSERT_EQ(from_specs.size(), 2u);
  for (size_t i = 0; i < specs.size(); ++i) {
    ExpectResultsIdentical(harness::RunExperiment(edges, specs[i]),
                           from_specs[i]);
  }
}

TEST(GridRunnerTest, TimelineSpecsBypassCacheButStillRun) {
  graph::EdgeList edges = TestGraph();
  harness::ExperimentSpec spec;
  spec.num_machines = 4;
  spec.max_iterations = 5;
  spec.record_timeline = true;
  harness::ExperimentResult fresh = harness::RunExperiment(edges, spec);
  harness::PartitionCache cache;
  harness::GridOptions options;
  options.cache = &cache;
  std::vector<harness::ExperimentResult> got =
      harness::RunGrid({{&edges, spec, false}}, options);
  ASSERT_EQ(got.size(), 1u);
  ExpectResultsIdentical(fresh, got[0]);
  EXPECT_FALSE(got[0].timeline.samples().empty());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(PlanCacheTest, ReturnsOnePlanPerShape) {
  graph::EdgeList edges = TestGraph();
  sim::Cluster cluster(4, sim::CostModel{});
  partition::PartitionContext context;
  context.num_partitions = 4;
  context.num_vertices = edges.num_vertices();
  auto partitioner =
      partition::MakePartitioner(partition::StrategyKind::kRandom, context);
  partition::IngestResult ingest =
      Ingest(edges, *partitioner, cluster, partition::IngestOptions{});

  engine::PlanCache plans(ingest.graph);
  std::shared_ptr<const engine::ExecutionPlan> a =
      plans.Get(engine::EdgeDirection::kIn, engine::EdgeDirection::kOut,
                /*graphx_counts=*/false);
  std::shared_ptr<const engine::ExecutionPlan> b =
      plans.Get(engine::EdgeDirection::kIn, engine::EdgeDirection::kOut,
                /*graphx_counts=*/false);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(plans.num_plans(), 1u);
  std::shared_ptr<const engine::ExecutionPlan> c =
      plans.Get(engine::EdgeDirection::kBoth, engine::EdgeDirection::kBoth,
                /*graphx_counts=*/false);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(plans.num_plans(), 2u);

  // A cached plan must drive the engine to the same result as a fresh one.
  sim::ClusterSnapshot snapshot = cluster.Snapshot();
  engine::RunOptions run_options;
  run_options.max_iterations = 5;
  auto fresh = engine::RunGasEngine(engine::EngineKind::kPowerGraphSync,
                                    ingest.graph, cluster,
                                    apps::PageRankFixed(), run_options);
  double fresh_now = cluster.now_seconds();
  cluster.Restore(snapshot);
  std::shared_ptr<const engine::ExecutionPlan> pr_plan =
      plans.Get(apps::PageRankApp::kGatherDir, apps::PageRankApp::kScatterDir,
                /*graphx_counts=*/false);
  auto run = engine::RunGasEngine(engine::EngineKind::kPowerGraphSync,
                                  *pr_plan, cluster, apps::PageRankFixed(),
                                  run_options);
  EXPECT_EQ(run.stats.compute_seconds, fresh.stats.compute_seconds);
  EXPECT_EQ(run.states, fresh.states);
  EXPECT_EQ(cluster.now_seconds(), fresh_now);
}

}  // namespace
}  // namespace gdp
