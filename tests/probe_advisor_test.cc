// Tests for the measurement-based probe advisor and the extension
// AppKinds in the harness.

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "graph/generators.h"
#include "harness/experiment.h"

namespace gdp::advisor {
namespace {

using partition::StrategyKind;

const std::vector<StrategyKind> kPowerGraphCandidates = {
    StrategyKind::kRandom, StrategyKind::kGrid, StrategyKind::kOblivious,
    StrategyKind::kHdrf};

double FullRf(const graph::EdgeList& edges, StrategyKind strategy) {
  harness::ExperimentSpec spec;
  spec.strategy = strategy;
  spec.num_machines = 9;
  spec.seed = 0;
  return harness::RunIngressOnly(edges, spec).replication_factor;
}

TEST(ProbeAdvisorTest, SamplePicksTheFullRunWinnerOnSocialGraph) {
  graph::EdgeList social = graph::GenerateHeavyTailed(
      {.num_vertices = 10000, .edges_per_vertex = 8, .seed = 71});
  ProbeResult probe = ProbeStrategies(social, 9, kPowerGraphCandidates, 0.1);
  StrategyKind full_best = kPowerGraphCandidates.front();
  for (StrategyKind s : kPowerGraphCandidates) {
    if (FullRf(social, s) < FullRf(social, full_best)) full_best = s;
  }
  EXPECT_EQ(probe.best, full_best);  // Grid on heavy-tailed graphs
}

TEST(ProbeAdvisorTest, SamplePicksGreedyOnRoadNetwork) {
  graph::EdgeList road = graph::GenerateRoadNetwork(
      {.width = 90, .height = 90, .seed = 72});
  ProbeResult probe = ProbeStrategies(road, 9, kPowerGraphCandidates, 0.1);
  EXPECT_TRUE(probe.best == StrategyKind::kHdrf ||
              probe.best == StrategyKind::kOblivious);
}

TEST(ProbeAdvisorTest, RankingIsSortedAndComplete) {
  graph::EdgeList web = graph::GeneratePowerLawWeb(
      {.num_vertices = 8000, .seed = 73});
  ProbeResult probe = ProbeStrategies(web, 9, kPowerGraphCandidates, 0.2);
  ASSERT_EQ(probe.ranking.size(), kPowerGraphCandidates.size());
  for (size_t i = 1; i < probe.ranking.size(); ++i) {
    EXPECT_LE(probe.ranking[i - 1].second, probe.ranking[i].second);
  }
  EXPECT_EQ(probe.best, probe.ranking.front().first);
}

TEST(ProbeAdvisorTest, TinySampleFractionStillWorks) {
  graph::EdgeList social = graph::GenerateHeavyTailed(
      {.num_vertices = 3000, .edges_per_vertex = 6, .seed = 74});
  ProbeResult probe =
      ProbeStrategies(social, 9, {StrategyKind::kRandom}, 1e-9);
  EXPECT_EQ(probe.best, StrategyKind::kRandom);  // degenerate: whole list
}

// ---------------------------------------------------------------------------
// Extension AppKinds through the harness
// ---------------------------------------------------------------------------

TEST(ExtensionAppKindTest, AllExtensionAppsRunThroughHarness) {
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 500, .edges_per_vertex = 4, .seed = 75});
  for (harness::AppKind app :
       {harness::AppKind::kTriangles, harness::AppKind::kLabelPropagation,
        harness::AppKind::kMsBfs}) {
    harness::ExperimentSpec spec;
    spec.num_machines = 4;
    spec.app = app;
    spec.max_iterations = 30;
    harness::ExperimentResult r = harness::RunExperiment(edges, spec);
    EXPECT_GT(r.compute.compute_seconds, 0.0)
        << harness::AppKindName(app);
    EXPECT_GT(r.compute.iterations, 0u) << harness::AppKindName(app);
  }
}

TEST(ExtensionAppKindTest, NamesAreDistinct) {
  EXPECT_STREQ(harness::AppKindName(harness::AppKind::kTriangles),
               "Triangles");
  EXPECT_STREQ(harness::AppKindName(harness::AppKind::kLabelPropagation),
               "LabelProp");
  EXPECT_STREQ(harness::AppKindName(harness::AppKind::kMsBfs), "MS-BFS");
  EXPECT_FALSE(harness::IsNaturalApp(harness::AppKind::kTriangles));
}

}  // namespace
}  // namespace gdp::advisor
