#include <gtest/gtest.h>

#include <algorithm>

#include "apps/coloring.h"
#include "apps/kcore.h"
#include "apps/pagerank.h"
#include "apps/reference.h"
#include "apps/sssp.h"
#include "apps/wcc.h"
#include "engine/async_coloring.h"
#include "engine/gas_engine.h"
#include "graph/generators.h"
#include "partition/ingest.h"

namespace gdp::apps {
namespace {

using engine::EngineKind;
using engine::RunOptions;
using partition::IngestResult;
using partition::PartitionContext;
using partition::StrategyKind;

IngestResult Partition(const graph::EdgeList& edges, uint32_t machines,
                       sim::Cluster& cluster) {
  PartitionContext context;
  context.num_partitions = machines;
  context.num_vertices = edges.num_vertices();
  context.num_loaders = machines;
  context.seed = 3;
  return IngestWithStrategy(edges, StrategyKind::kGrid, context, cluster);
}

// ---------------------------------------------------------------------------
// App metadata (naturalness per §6.1)
// ---------------------------------------------------------------------------

TEST(AppTraitsTest, PageRankIsNatural) {
  EXPECT_TRUE(engine::IsNaturalApp<PageRankApp>());
}

TEST(AppTraitsTest, WccAndUndirectedSsspAreNotNatural) {
  EXPECT_FALSE(engine::IsNaturalApp<WccApp>());
  EXPECT_FALSE(engine::IsNaturalApp<SsspApp>());
  EXPECT_FALSE(engine::IsNaturalApp<KCoreApp>());
  EXPECT_FALSE(engine::IsNaturalApp<ColoringApp>());
}

TEST(AppTraitsTest, DirectedSsspIsNatural) {
  EXPECT_TRUE(engine::IsNaturalApp<DirectedSsspApp>());
}

// ---------------------------------------------------------------------------
// Reference implementations
// ---------------------------------------------------------------------------

TEST(ReferenceTest, PageRankSinkAndSourceValues) {
  // 0 -> 1, no other edges. After any iterations: p(0) = 0.15,
  // p(1) = 0.15 + 0.85 * p(0).
  graph::EdgeList edges;
  edges.AddEdge(0, 1);
  std::vector<double> pr = ReferencePageRank(edges, 0.85, 20);
  EXPECT_NEAR(pr[0], 0.15, 1e-12);
  EXPECT_NEAR(pr[1], 0.15 + 0.85 * 0.15, 1e-12);
}

TEST(ReferenceTest, PageRankPreservesTotalMassOnCycle) {
  // On a directed cycle every vertex keeps rank exactly 1.
  graph::EdgeList edges;
  for (graph::VertexId v = 0; v < 10; ++v) edges.AddEdge(v, (v + 1) % 10);
  std::vector<double> pr = ReferencePageRank(edges, 0.85, 50);
  for (double r : pr) EXPECT_NEAR(r, 1.0, 1e-9);
}

TEST(ReferenceTest, WccTwoComponents) {
  graph::EdgeList edges;
  edges.AddEdge(0, 1);
  edges.AddEdge(1, 2);
  edges.AddEdge(5, 4);
  edges.AddEdge(4, 3);
  std::vector<graph::VertexId> labels = ReferenceWcc(edges);
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[1], 0u);
  EXPECT_EQ(labels[2], 0u);
  EXPECT_EQ(labels[3], 3u);
  EXPECT_EQ(labels[4], 3u);
  EXPECT_EQ(labels[5], 3u);
}

TEST(ReferenceTest, SsspDirectedVsUndirected) {
  // 0 -> 1 -> 2; directed distance from 2 is unreachable except itself.
  graph::EdgeList edges;
  edges.AddEdge(0, 1);
  edges.AddEdge(1, 2);
  auto directed = ReferenceSssp(edges, 2, /*directed=*/true);
  EXPECT_EQ(directed[2], 0u);
  EXPECT_EQ(directed[0], kInfiniteDistance);
  auto undirected = ReferenceSssp(edges, 2, /*directed=*/false);
  EXPECT_EQ(undirected[0], 2u);
}

TEST(ReferenceTest, KCoreTriangleWithTail) {
  // Triangle {0,1,2} plus tail 2-3: the 2-core is exactly the triangle.
  graph::EdgeList edges;
  edges.AddEdge(0, 1);
  edges.AddEdge(1, 2);
  edges.AddEdge(2, 0);
  edges.AddEdge(2, 3);
  std::vector<bool> core2 = ReferenceKCore(edges, 2);
  EXPECT_TRUE(core2[0]);
  EXPECT_TRUE(core2[1]);
  EXPECT_TRUE(core2[2]);
  EXPECT_FALSE(core2[3]);
  // 3-core is empty (cascading removal).
  std::vector<bool> core3 = ReferenceKCore(edges, 3);
  EXPECT_FALSE(core3[0] || core3[1] || core3[2] || core3[3]);
}

TEST(ReferenceTest, ProperColoringCheck) {
  graph::EdgeList edges;
  edges.AddEdge(0, 1);
  edges.AddEdge(1, 2);
  EXPECT_TRUE(IsProperColoring(edges, {0, 1, 0}));
  EXPECT_FALSE(IsProperColoring(edges, {0, 0, 1}));
}

// ---------------------------------------------------------------------------
// Distributed K-Core
// ---------------------------------------------------------------------------

TEST(KCoreTest, DecompositionMatchesReferencePerK) {
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 1200, .edges_per_vertex = 5, .seed = 61});
  sim::Cluster cluster(4, sim::CostModel{});
  IngestResult ingest = Partition(edges, 4, cluster);
  RunOptions options;
  options.max_iterations = 5000;
  KCoreResult result = KCoreDecompose(EngineKind::kPowerGraphSync,
                                      ingest.graph, cluster, 3, 8, options);
  std::vector<bool> alive(edges.num_vertices(), true);
  for (uint32_t k = 3; k <= 8; ++k) {
    alive = ReferenceKCore(edges, k, alive);
    for (graph::VertexId v = 0; v < edges.num_vertices(); ++v) {
      if (!ingest.graph.present[v]) continue;
      bool in_core = result.core_number[v] >= k;
      ASSERT_EQ(in_core, static_cast<bool>(alive[v]))
          << "k=" << k << " vertex " << v;
    }
  }
}

TEST(KCoreTest, CoreSizesAreMonotone) {
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 800, .edges_per_vertex = 4, .seed = 62});
  sim::Cluster cluster(4, sim::CostModel{});
  IngestResult ingest = Partition(edges, 4, cluster);
  RunOptions options;
  options.max_iterations = 5000;
  KCoreResult result = KCoreDecompose(EngineKind::kPowerGraphSync,
                                      ingest.graph, cluster, 2, 6, options);
  for (size_t i = 1; i < result.core_sizes.size(); ++i) {
    EXPECT_LE(result.core_sizes[i], result.core_sizes[i - 1]);
  }
}

TEST(KCoreTest, AggregatesStatsAcrossStages) {
  graph::EdgeList edges = graph::GenerateErdosRenyi(
      {.num_vertices = 300, .num_edges = 2000, .seed = 63});
  sim::Cluster cluster(4, sim::CostModel{});
  IngestResult ingest = Partition(edges, 4, cluster);
  RunOptions options;
  options.max_iterations = 5000;
  KCoreResult result = KCoreDecompose(EngineKind::kPowerGraphSync,
                                      ingest.graph, cluster, 2, 5, options);
  EXPECT_GT(result.stats.iterations, 3u);  // at least one per stage
  EXPECT_GT(result.stats.compute_seconds, 0.0);
  // Cumulative time series is nondecreasing across stage boundaries.
  for (size_t i = 1; i < result.stats.cumulative_seconds.size(); ++i) {
    EXPECT_LE(result.stats.cumulative_seconds[i - 1],
              result.stats.cumulative_seconds[i]);
  }
}

// ---------------------------------------------------------------------------
// Coloring (sync app + async engine)
// ---------------------------------------------------------------------------

TEST(ColoringTest, SmallestFreeColorHelper) {
  ColoringApp::Gather acc{{1, 0}, {2, 1}, {3, 3}};
  EXPECT_EQ(ColoringApp::SmallestFreeColor(acc), 2u);
  EXPECT_EQ(ColoringApp::SmallestFreeColor({}), 0u);
  ColoringApp::Gather dense{{1, 0}, {2, 1}, {3, 2}};
  EXPECT_EQ(ColoringApp::SmallestFreeColor(dense), 3u);
}

TEST(ColoringTest, SyncEngineProducesProperColoring) {
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 500, .edges_per_vertex = 3, .seed = 64});
  sim::Cluster cluster(4, sim::CostModel{});
  IngestResult ingest = Partition(edges, 4, cluster);
  RunOptions options;
  options.max_iterations = 2000;
  auto result = engine::RunGasEngine(EngineKind::kPowerGraphSync,
                                     ingest.graph, cluster, ColoringApp{},
                                     options);
  EXPECT_TRUE(result.stats.converged);
  EXPECT_TRUE(IsProperColoring(edges, result.states));
}

TEST(ColoringTest, AsyncEngineProducesProperColoring) {
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 500, .edges_per_vertex = 3, .seed = 65});
  sim::Cluster cluster(4, sim::CostModel{});
  IngestResult ingest = Partition(edges, 4, cluster);
  RunOptions options;
  options.max_iterations = 2000;
  engine::AsyncColoringResult result =
      engine::RunAsyncColoring(ingest.graph, cluster, options);
  EXPECT_TRUE(result.stats.converged);
  EXPECT_TRUE(IsProperColoring(edges, result.colors));
}

TEST(ColoringTest, ColorCountIsReasonable) {
  // Greedy coloring on a graph with max degree D uses at most D+1 colors.
  graph::EdgeList edges = graph::GenerateRoadNetwork(
      {.width = 25, .height = 25, .seed = 66});
  sim::Cluster cluster(4, sim::CostModel{});
  IngestResult ingest = Partition(edges, 4, cluster);
  RunOptions options;
  options.max_iterations = 2000;
  engine::AsyncColoringResult result =
      engine::RunAsyncColoring(ingest.graph, cluster, options);
  uint32_t max_color =
      *std::max_element(result.colors.begin(), result.colors.end());
  auto degrees = edges.TotalDegrees();
  uint64_t max_degree =
      *std::max_element(degrees.begin(), degrees.end());
  EXPECT_LE(max_color, max_degree);
}

// ---------------------------------------------------------------------------
// PageRank convergence mode
// ---------------------------------------------------------------------------

TEST(PageRankTest, ConvergentModeStopsEarly) {
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 1000, .edges_per_vertex = 5, .seed = 67});
  sim::Cluster cluster(4, sim::CostModel{});
  IngestResult ingest = Partition(edges, 4, cluster);
  RunOptions options;
  options.max_iterations = 500;
  auto result = engine::RunGasEngine(EngineKind::kPowerGraphSync,
                                     ingest.graph, cluster,
                                     PageRankConvergent(1e-3), options);
  EXPECT_TRUE(result.stats.converged);
  EXPECT_LT(result.stats.iterations, 500u);
  EXPECT_GT(result.stats.iterations, 3u);
}

TEST(PageRankTest, TighterToleranceTakesMoreIterations) {
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 1000, .edges_per_vertex = 5, .seed = 68});
  auto iterations = [&](double tolerance) {
    sim::Cluster cluster(4, sim::CostModel{});
    IngestResult ingest = Partition(edges, 4, cluster);
    RunOptions options;
    options.max_iterations = 500;
    auto result = engine::RunGasEngine(EngineKind::kPowerGraphSync,
                                       ingest.graph, cluster,
                                       PageRankConvergent(tolerance),
                                       options);
    return result.stats.iterations;
  };
  EXPECT_GT(iterations(1e-6), iterations(1e-2));
}

}  // namespace
}  // namespace gdp::apps
