#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "graph/csr.h"
#include "graph/edge_list.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "graph/io.h"

namespace gdp::graph {
namespace {

// ---------------------------------------------------------------------------
// EdgeList
// ---------------------------------------------------------------------------

TEST(EdgeListTest, AddEdgeGrowsVertexCount) {
  EdgeList edges;
  edges.AddEdge(3, 7);
  EXPECT_EQ(edges.num_vertices(), 8u);
  EXPECT_EQ(edges.num_edges(), 1u);
  edges.AddEdge(1, 2);
  EXPECT_EQ(edges.num_vertices(), 8u);
}

TEST(EdgeListTest, DeduplicateRemovesDuplicatesAndLoops) {
  EdgeList edges;
  edges.AddEdge(0, 1);
  edges.AddEdge(0, 1);
  edges.AddEdge(2, 2);
  edges.AddEdge(1, 0);  // reverse is NOT a duplicate
  edges.Deduplicate();
  EXPECT_EQ(edges.num_edges(), 2u);
}

TEST(EdgeListTest, SymmetrizedContainsBothDirections) {
  EdgeList edges;
  edges.AddEdge(0, 1);
  edges.AddEdge(1, 2);
  EdgeList sym = edges.Symmetrized();
  EXPECT_EQ(sym.num_edges(), 4u);
  std::set<std::pair<VertexId, VertexId>> set;
  for (const Edge& e : sym.edges()) set.insert({e.src, e.dst});
  EXPECT_TRUE(set.count({1, 0}));
  EXPECT_TRUE(set.count({2, 1}));
}

TEST(EdgeListTest, DegreeArrays) {
  EdgeList edges;
  edges.AddEdge(0, 1);
  edges.AddEdge(0, 2);
  edges.AddEdge(1, 2);
  auto out = edges.OutDegrees();
  auto in = edges.InDegrees();
  auto total = edges.TotalDegrees();
  EXPECT_EQ(out[0], 2u);
  EXPECT_EQ(in[2], 2u);
  EXPECT_EQ(total[1], 2u);
  EXPECT_EQ(total[0], 2u);
}

// ---------------------------------------------------------------------------
// CSR
// ---------------------------------------------------------------------------

TEST(CsrTest, OutAdjacency) {
  EdgeList edges;
  edges.AddEdge(0, 1);
  edges.AddEdge(0, 2);
  edges.AddEdge(2, 0);
  Csr out = Csr::Build(edges, /*by_source=*/true);
  EXPECT_EQ(out.num_vertices(), 3u);
  EXPECT_EQ(out.Degree(0), 2u);
  EXPECT_EQ(out.Degree(1), 0u);
  auto n0 = out.Neighbors(0);
  EXPECT_EQ(n0.size(), 2u);
}

TEST(CsrTest, InAdjacency) {
  EdgeList edges;
  edges.AddEdge(0, 2);
  edges.AddEdge(1, 2);
  Csr in = Csr::Build(edges, /*by_source=*/false);
  EXPECT_EQ(in.Degree(2), 2u);
  EXPECT_EQ(in.Degree(0), 0u);
}

TEST(CsrTest, LocalGraphHasBothDirections) {
  EdgeList edges;
  edges.AddEdge(0, 1);
  LocalGraph g(edges);
  EXPECT_EQ(g.out().Degree(0), 1u);
  EXPECT_EQ(g.in().Degree(1), 1u);
  EXPECT_EQ(g.num_edges(), 1u);
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

TEST(GeneratorTest, RoadNetworkIsLowDegree) {
  EdgeList g = GenerateRoadNetwork({.width = 60, .height = 60, .seed = 1});
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.classified, GraphClass::kLowDegree);
  EXPECT_LE(stats.max_total_degree, 16u);
  EXPECT_EQ(stats.num_vertices, 3600u);
}

TEST(GeneratorTest, RoadNetworkIsSymmetric) {
  EdgeList g = GenerateRoadNetwork({.width = 20, .height = 20, .seed = 2});
  std::set<std::pair<VertexId, VertexId>> set;
  for (const Edge& e : g.edges()) set.insert({e.src, e.dst});
  for (const Edge& e : g.edges()) {
    EXPECT_TRUE(set.count({e.dst, e.src}))
        << e.src << "->" << e.dst << " missing reverse";
  }
}

TEST(GeneratorTest, HeavyTailedIsHeavyTailed) {
  EdgeList g = GenerateHeavyTailed(
      {.num_vertices = 8000, .edges_per_vertex = 8, .seed = 3});
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.classified, GraphClass::kHeavyTailed);
  // Preferential attachment: no vertex below the attachment count.
  auto degrees = g.TotalDegrees();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(degrees[v], 8u);
  }
}

TEST(GeneratorTest, PowerLawWebIsPowerLawWithLowDegreeMass) {
  EdgeList g = GeneratePowerLawWeb({.num_vertices = 20000, .seed = 4});
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.classified, GraphClass::kPowerLaw);
  // Large low-degree population (UK-web-like), unlike the social graph.
  EXPECT_GT(stats.low_degree_fraction, 0.2);
  // And real hubs.
  EXPECT_GT(stats.max_total_degree, 1000u);
}

TEST(GeneratorTest, GeneratorsAreDeterministic) {
  EdgeList a = GenerateHeavyTailed({.num_vertices = 500, .seed = 9});
  EdgeList b = GenerateHeavyTailed({.num_vertices = 500, .seed = 9});
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(GeneratorTest, DifferentSeedsGiveDifferentGraphs) {
  EdgeList a = GeneratePowerLawWeb({.num_vertices = 500, .seed = 1});
  EdgeList b = GeneratePowerLawWeb({.num_vertices = 500, .seed = 2});
  EXPECT_NE(a.edges(), b.edges());
}

TEST(GeneratorTest, RmatRespectsScaleAndDedupes) {
  EdgeList g = GenerateRmat({.scale = 10, .num_edges = 5000, .seed = 5});
  EXPECT_LE(g.num_vertices(), 1u << 10);
  std::set<std::pair<VertexId, VertexId>> set;
  for (const Edge& e : g.edges()) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_TRUE(set.insert({e.src, e.dst}).second) << "duplicate edge";
  }
}

TEST(GeneratorTest, ErdosRenyiExactEdgeCount) {
  EdgeList g = GenerateErdosRenyi(
      {.num_vertices = 200, .num_edges = 1000, .seed = 6});
  EXPECT_EQ(g.num_edges(), 1000u);
  std::set<std::pair<VertexId, VertexId>> set;
  for (const Edge& e : g.edges()) {
    EXPECT_TRUE(set.insert({e.src, e.dst}).second);
  }
}

// ---------------------------------------------------------------------------
// GraphStats / classification
// ---------------------------------------------------------------------------

TEST(GraphStatsTest, BasicCounts) {
  EdgeList edges;
  edges.AddEdge(0, 1);
  edges.AddEdge(1, 2);
  edges.AddEdge(2, 0);
  GraphStats stats = ComputeGraphStats(edges);
  EXPECT_EQ(stats.num_vertices, 3u);
  EXPECT_EQ(stats.num_edges, 3u);
  EXPECT_DOUBLE_EQ(stats.mean_total_degree, 2.0);
}

TEST(GraphStatsTest, InDegreeHistogramExcludesZero) {
  EdgeList edges;
  edges.AddEdge(0, 1);
  edges.AddEdge(2, 1);
  GraphStats stats = ComputeGraphStats(edges);
  EXPECT_EQ(stats.in_degree_histogram.count(0), 0u);
  EXPECT_EQ(stats.in_degree_histogram.at(2), 1u);  // vertex 1
}

TEST(GraphStatsTest, ClassifierUsesLowDegreeResidual) {
  GraphStats stats;
  stats.max_total_degree = 100000;
  stats.mean_total_degree = 10;
  stats.low_degree_residual = 0.1;
  EXPECT_EQ(ClassifyGraph(stats), GraphClass::kHeavyTailed);
  stats.low_degree_residual = 2.0;
  EXPECT_EQ(ClassifyGraph(stats), GraphClass::kPowerLaw);
}

TEST(GraphStatsTest, SmallMaxDegreeIsLowDegree) {
  GraphStats stats;
  stats.max_total_degree = 12;
  stats.mean_total_degree = 4;
  stats.low_degree_residual = 5;
  EXPECT_EQ(ClassifyGraph(stats), GraphClass::kLowDegree);
}

TEST(GraphStatsTest, ClassNamesAreDistinct) {
  EXPECT_STRNE(GraphClassName(GraphClass::kLowDegree),
               GraphClassName(GraphClass::kHeavyTailed));
  EXPECT_STRNE(GraphClassName(GraphClass::kHeavyTailed),
               GraphClassName(GraphClass::kPowerLaw));
}

// ---------------------------------------------------------------------------
// IO
// ---------------------------------------------------------------------------

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return (std::filesystem::temp_directory_path() / name).string();
  }
};

TEST_F(IoTest, RoundTrip) {
  EdgeList edges("roundtrip", 0, {});
  edges.AddEdge(0, 1);
  edges.AddEdge(1, 2);
  edges.AddEdge(2, 0);
  std::string path = TempPath("gdp_io_roundtrip.txt");
  ASSERT_TRUE(SaveEdgeList(edges, path).ok());
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_edges(), 3u);
  EXPECT_EQ(loaded.value().num_vertices(), 3u);
  std::remove(path.c_str());
}

TEST_F(IoTest, LoadSkipsCommentsAndRenumbers) {
  std::string path = TempPath("gdp_io_comments.txt");
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("# comment line\n1000000 2000000\n2000000 1000000\n", f);
  fclose(f);
  auto loaded = LoadEdgeList(path, /*renumber=*/true);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_vertices(), 2u);  // dense ids 0,1
  EXPECT_EQ(loaded.value().num_edges(), 2u);
  std::remove(path.c_str());
}

TEST_F(IoTest, MissingFileIsNotFound) {
  auto loaded = LoadEdgeList("/nonexistent/definitely/missing.txt");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

TEST_F(IoTest, MalformedLineIsInvalidArgument) {
  std::string path = TempPath("gdp_io_bad.txt");
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("0 1\nnot numbers\n", f);
  fclose(f);
  auto loaded = LoadEdgeList(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gdp::graph
