#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "graph/generators.h"
#include "partition/constrained.h"
#include "partition/hash_partitioners.h"
#include "partition/ingest.h"
#include "partition/partitioner.h"
#include "sim/cluster.h"

namespace gdp::partition {
namespace {

PartitionContext MakeContext(uint32_t partitions, graph::VertexId vertices,
                             uint32_t loaders = 1, uint64_t seed = 99) {
  PartitionContext context;
  context.num_partitions = partitions;
  context.num_vertices = vertices;
  context.num_loaders = loaders;
  context.seed = seed;
  return context;
}

// ---------------------------------------------------------------------------
// Registry / metadata
// ---------------------------------------------------------------------------

TEST(StrategyRegistryTest, AllStrategiesHaveUniqueNames) {
  std::set<std::string> names;
  for (StrategyKind kind : AllStrategies()) {
    EXPECT_TRUE(names.insert(StrategyName(kind)).second)
        << "duplicate name " << StrategyName(kind);
  }
  EXPECT_EQ(names.size(), 11u);
}

TEST(StrategyRegistryTest, NamesRoundTrip) {
  for (StrategyKind kind : AllStrategies()) {
    auto parsed = StrategyFromName(StrategyName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
}

TEST(StrategyRegistryTest, ExtensionNamesParseToo) {
  EXPECT_EQ(StrategyFromName("Chunked").value(), StrategyKind::kChunked);
  EXPECT_EQ(StrategyFromName("DBH").value(), StrategyKind::kDbh);
}

TEST(StrategyRegistryTest, PaperAliases) {
  EXPECT_EQ(StrategyFromName("Canonical Random").value(),
            StrategyKind::kRandom);
  EXPECT_EQ(StrategyFromName("Hybrid-Ginger").value(),
            StrategyKind::kHybridGinger);
  EXPECT_FALSE(StrategyFromName("NotAStrategy").ok());
}

TEST(StrategyRegistryTest, SystemStrategySetsMatchTable11) {
  // Table 1.1 (plus PDS for PowerLyra which ships it, minus nothing).
  auto pg = PowerGraphStrategies();
  EXPECT_EQ(pg.size(), 5u);  // Random, Grid, Oblivious, HDRF, PDS
  auto pl = PowerLyraStrategies();
  EXPECT_EQ(pl.size(), 6u);
  auto gx = GraphXStrategies();
  EXPECT_EQ(gx.size(), 4u);  // Random, Canonical Random, 1D, 2D
}

// ---------------------------------------------------------------------------
// Parameterized contract tests over every strategy
// ---------------------------------------------------------------------------

class EveryStrategyTest : public ::testing::TestWithParam<StrategyKind> {
 protected:
  // PDS needs p^2+p+1 partitions; 7 works for every strategy (non-square,
  // exercising the Grid fallback too). A square case is tested separately.
  static constexpr uint32_t kPartitions = 7;
};

TEST_P(EveryStrategyTest, AssignmentsAreInRangeAndDeterministic) {
  graph::EdgeList edges = graph::GenerateErdosRenyi(
      {.num_vertices = 300, .num_edges = 2000, .seed = 17});
  PartitionContext context = MakeContext(kPartitions, edges.num_vertices());
  std::unique_ptr<Partitioner> a = MakePartitioner(GetParam(), context);
  std::unique_ptr<Partitioner> b = MakePartitioner(GetParam(), context);

  for (uint32_t pass = 0; pass < a->num_passes(); ++pass) {
    a->BeginPass(pass);
    b->BeginPass(pass);
    for (const graph::Edge& e : edges.edges()) {
      MachineId ma = a->Assign(e, pass, 0);
      MachineId mb = b->Assign(e, pass, 0);
      EXPECT_EQ(ma, mb) << "non-deterministic assignment";
      if (pass == 0) {
        ASSERT_NE(ma, kKeepPlacement);
      }
      if (ma != kKeepPlacement) {
        EXPECT_LT(ma, kPartitions);
      }
    }
  }
}

TEST_P(EveryStrategyTest, ChargesIngressWork) {
  graph::EdgeList edges = graph::GenerateErdosRenyi(
      {.num_vertices = 100, .num_edges = 500, .seed = 18});
  PartitionContext context = MakeContext(kPartitions, edges.num_vertices());
  std::unique_ptr<Partitioner> p = MakePartitioner(GetParam(), context);
  p->BeginPass(0);
  double work = 0;
  for (const graph::Edge& e : edges.edges()) {
    p->Assign(e, 0, 0);
    work += Partitioner::kWorkPerTick *
            static_cast<double>(p->TakeAssignWorkTicks(0));
  }
  EXPECT_GT(work, 0.0) << "strategy must charge CPU work";
}

TEST_P(EveryStrategyTest, IngestProducesConsistentDistributedGraph) {
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 1500, .edges_per_vertex = 5, .seed = 19});
  sim::Cluster cluster(kPartitions, sim::CostModel{});
  IngestResult result = IngestWithStrategy(
      edges, GetParam(), MakeContext(kPartitions, edges.num_vertices(), 7),
      cluster);
  const DistributedGraph& dg = result.graph;

  EXPECT_EQ(dg.edges.size(), edges.num_edges());
  EXPECT_EQ(dg.num_partitions, kPartitions);
  // Every edge assigned in range.
  uint64_t total = 0;
  for (uint64_t count : dg.partition_edge_count) total += count;
  EXPECT_EQ(total, edges.num_edges());
  // Replication factor is at least 1 and at most the machine count.
  EXPECT_GE(dg.replication_factor, 1.0);
  EXPECT_LE(dg.replication_factor, static_cast<double>(kPartitions));
  // Every present vertex has a master on a machine holding a replica.
  for (graph::VertexId v = 0; v < dg.num_vertices; ++v) {
    if (!dg.present[v]) continue;
    ASSERT_NE(dg.master[v], ReplicaTable::kInvalid);
    EXPECT_TRUE(dg.replicas.Contains(v, dg.master[v]));
  }
  // Edge endpoints are replicated where their edges live.
  for (uint64_t i = 0; i < dg.edges.size(); ++i) {
    EXPECT_TRUE(dg.replicas.Contains(dg.edges[i].src, dg.edge_partition[i]));
    EXPECT_TRUE(dg.replicas.Contains(dg.edges[i].dst, dg.edge_partition[i]));
  }
  EXPECT_GT(result.report.ingress_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, EveryStrategyTest,
    ::testing::ValuesIn(AllStrategies()),
    [](const ::testing::TestParamInfo<StrategyKind>& info) {
      std::string name = StrategyName(info.param);
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Hash-strategy specifics
// ---------------------------------------------------------------------------

TEST(HashPartitionerTest, RandomIsCanonical) {
  PartitionContext context = MakeContext(9, 100);
  RandomPartitioner p(context);
  EXPECT_EQ(p.Assign({3, 8}, 0, 0), p.Assign({8, 3}, 0, 0));
}

TEST(HashPartitionerTest, AsymmetricRandomIsNotCanonical) {
  PartitionContext context = MakeContext(9, 100);
  AsymmetricRandomPartitioner p(context);
  // Over many pairs, some must split across machines.
  int split = 0;
  for (graph::VertexId u = 0; u < 40; ++u) {
    for (graph::VertexId v = u + 1; v < 40; ++v) {
      if (p.Assign({u, v}, 0, 0) != p.Assign({v, u}, 0, 0)) ++split;
    }
  }
  EXPECT_GT(split, 0);
}

TEST(HashPartitionerTest, OneDColocatesSourceEdges) {
  PartitionContext context = MakeContext(9, 100);
  OneDPartitioner p(context, /*by_target=*/false);
  MachineId m = p.Assign({5, 1}, 0, 0);
  EXPECT_EQ(p.Assign({5, 2}, 0, 0), m);
  EXPECT_EQ(p.Assign({5, 77}, 0, 0), m);
}

TEST(HashPartitionerTest, OneDTargetColocatesInEdges) {
  PartitionContext context = MakeContext(9, 100);
  OneDPartitioner p(context, /*by_target=*/true);
  MachineId m = p.Assign({1, 5}, 0, 0);
  EXPECT_EQ(p.Assign({2, 5}, 0, 0), m);
  EXPECT_EQ(p.Assign({93, 5}, 0, 0), m);
  EXPECT_EQ(p.kind(), StrategyKind::kOneDTarget);
}

TEST(HashPartitionerTest, OneDTargetMasterMatchesInEdgeLocation) {
  PartitionContext context = MakeContext(9, 100);
  OneDPartitioner p(context, /*by_target=*/true);
  graph::VertexId v = 5;
  EXPECT_EQ(p.PreferredMaster(v), p.Assign({1, v}, 0, 0));
}

TEST(HashPartitionerTest, TwoDUsesCeilSqrtSide) {
  EXPECT_EQ(TwoDPartitioner(MakeContext(9, 10)).side(), 3u);
  EXPECT_EQ(TwoDPartitioner(MakeContext(10, 10)).side(), 4u);
  EXPECT_EQ(TwoDPartitioner(MakeContext(160, 10)).side(), 13u);
}

TEST(HashPartitionerTest, TwoDBoundsReplication) {
  // Property: a vertex's edges land on at most 2*sqrt(N)-1 partitions.
  const uint32_t n = 16;
  PartitionContext context = MakeContext(n, 2000);
  TwoDPartitioner p(context);
  for (graph::VertexId v = 0; v < 50; ++v) {
    std::set<MachineId> partitions;
    for (graph::VertexId u = 0; u < 500; ++u) {
      if (u == v) continue;
      partitions.insert(p.Assign({v, u}, 0, 0));
      partitions.insert(p.Assign({u, v}, 0, 0));
    }
    EXPECT_LE(partitions.size(), 2u * 4 - 1);
  }
}

TEST(HashPartitionerTest, TwoDBoundsInEdgeSpread) {
  // The tighter bound that §8.2.3 credits for 2D's hybrid-engine synergy:
  // in-edges of any vertex touch at most sqrt(N) partitions.
  const uint32_t n = 16;
  TwoDPartitioner p(MakeContext(n, 2000));
  for (graph::VertexId v = 0; v < 50; ++v) {
    std::set<MachineId> partitions;
    for (graph::VertexId u = 0; u < 500; ++u) {
      if (u != v) partitions.insert(p.Assign({u, v}, 0, 0));
    }
    EXPECT_LE(partitions.size(), 4u);
  }
}

}  // namespace
}  // namespace gdp::partition
