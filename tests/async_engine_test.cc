// Tests for the generic asynchronous GAS engine: monotone apps reach the
// same fixpoint as the synchronous engine, PageRank converges to the same
// values within tolerance, and the async cost profile differs in the
// documented ways (no barriers, stale remote reads).

#include <gtest/gtest.h>

#include <cmath>

#include "apps/pagerank.h"
#include "apps/reference.h"
#include "apps/sssp.h"
#include "apps/wcc.h"
#include "engine/async_engine.h"
#include "engine/gas_engine.h"
#include "graph/generators.h"
#include "partition/ingest.h"

namespace gdp::engine {
namespace {

using partition::IngestResult;
using partition::PartitionContext;
using partition::StrategyKind;

IngestResult Partition(const graph::EdgeList& edges, uint32_t machines,
                       sim::Cluster& cluster) {
  PartitionContext context;
  context.num_partitions = machines;
  context.num_vertices = edges.num_vertices();
  context.num_loaders = machines;
  context.seed = 3;
  return IngestWithStrategy(edges, StrategyKind::kGrid, context, cluster);
}

TEST(AsyncEngineTest, SsspReachesTheSyncFixpoint) {
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 800, .edges_per_vertex = 4, .seed = 61});
  sim::Cluster cluster(6, sim::CostModel{});
  IngestResult ingest = Partition(edges, 6, cluster);
  apps::SsspApp app;
  app.source = 3;
  RunOptions options;
  options.max_iterations = 5000;
  auto async_run = RunAsyncGasEngine(ingest.graph, cluster, app, options);
  EXPECT_TRUE(async_run.stats.converged);
  std::vector<uint32_t> expected =
      apps::ReferenceSssp(edges, 3, /*directed=*/false);
  for (graph::VertexId v = 0; v < edges.num_vertices(); ++v) {
    if (!ingest.graph.present[v]) continue;
    ASSERT_EQ(async_run.states[v], expected[v]) << "vertex " << v;
  }
}

TEST(AsyncEngineTest, WccReachesTheSyncFixpoint) {
  graph::EdgeList edges = graph::GenerateRoadNetwork(
      {.width = 25, .height = 25, .drop_fraction = 0.3, .seed = 62});
  sim::Cluster cluster(4, sim::CostModel{});
  IngestResult ingest = Partition(edges, 4, cluster);
  RunOptions options;
  options.max_iterations = 5000;
  auto run = RunAsyncGasEngine(ingest.graph, cluster, apps::WccApp{},
                               options);
  EXPECT_TRUE(run.stats.converged);
  std::vector<graph::VertexId> expected = apps::ReferenceWcc(edges);
  for (graph::VertexId v = 0; v < edges.num_vertices(); ++v) {
    if (!ingest.graph.present[v]) continue;
    ASSERT_EQ(run.states[v], expected[v]) << "vertex " << v;
  }
}

TEST(AsyncEngineTest, PageRankConvergesNearTheTrueFixpoint) {
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 600, .edges_per_vertex = 5, .seed = 63});
  sim::Cluster cluster(4, sim::CostModel{});
  IngestResult ingest = Partition(edges, 4, cluster);
  RunOptions options;
  options.max_iterations = 2000;
  auto run = RunAsyncGasEngine(ingest.graph, cluster,
                               apps::PageRankConvergent(1e-6), options);
  EXPECT_TRUE(run.stats.converged);
  // The fixpoint is unique; a long synchronous reference run pins it.
  std::vector<double> expected = apps::ReferencePageRank(edges, 0.85, 300);
  for (graph::VertexId v = 0; v < edges.num_vertices(); ++v) {
    if (!ingest.graph.present[v]) continue;
    ASSERT_NEAR(run.states[v], expected[v], 1e-3) << "vertex " << v;
  }
}

TEST(AsyncEngineTest, ChaoticRelaxationCanBeatSyncRoundCount) {
  // Within-round fresh reads let information hop many vertices per round
  // when consecutive path vertices share a machine (chunked placement +
  // colocated masters), so async SSSP needs far fewer rounds than the
  // synchronous engine's one-hop-per-superstep — one documented upside of
  // asynchrony.
  graph::EdgeList path;
  for (graph::VertexId v = 0; v + 1 <= 200; ++v) path.AddEdge(v, v + 1);
  auto chunk_partition = [&](sim::Cluster& cluster) {
    PartitionContext context;
    context.num_partitions = 2;
    context.num_vertices = path.num_vertices();
    context.num_loaders = 2;
    partition::IngestOptions ing;
    ing.master_policy = partition::MasterPolicy::kVertexHash;
    ing.use_partitioner_master_preference = true;
    return IngestWithStrategy(path, StrategyKind::kChunked, context,
                              cluster, ing);
  };
  sim::Cluster c1(2, sim::CostModel{});
  sim::Cluster c2(2, sim::CostModel{});
  IngestResult i1 = chunk_partition(c1);
  IngestResult i2 = chunk_partition(c2);
  apps::SsspApp app;
  app.source = 0;
  RunOptions options;
  options.max_iterations = 5000;
  auto sync_run = RunGasEngine(EngineKind::kPowerGraphSync, i1.graph, c1,
                               app, options);
  auto async_run = RunAsyncGasEngine(i2.graph, c2, app, options);
  EXPECT_TRUE(sync_run.stats.converged);
  EXPECT_TRUE(async_run.stats.converged);
  // 200 hops collapse to a handful of rounds (one per machine boundary
  // crossing, plus settling), vs ~200 synchronous supersteps.
  EXPECT_LT(async_run.stats.iterations * 10, sync_run.stats.iterations);
  EXPECT_EQ(sync_run.states, async_run.states);
}

TEST(AsyncEngineTest, NoBarrierClockUsesMeanNotMax) {
  // The async engine's round duration is the machines' mean busy time; a
  // deliberately imbalanced placement therefore costs less wall-clock per
  // unit of work than under the barrier engine.
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 2000, .edges_per_vertex = 6, .seed = 64});
  sim::Cluster c1(8, sim::CostModel{});
  sim::Cluster c2(8, sim::CostModel{});
  IngestResult i1 = Partition(edges, 8, c1);
  IngestResult i2 = Partition(edges, 8, c2);
  RunOptions options;
  options.max_iterations = 10;
  auto sync_run = RunGasEngine(EngineKind::kPowerGraphSync, i1.graph, c1,
                               apps::PageRankFixed(), options);
  auto async_run =
      RunAsyncGasEngine(i2.graph, c2, apps::PageRankFixed(), options);
  double sync_busy_ratio = 0, async_busy_ratio = 0;
  for (uint32_t m = 0; m < 8; ++m) {
    sync_busy_ratio += c1.machine(m).busy_seconds();
    async_busy_ratio += c2.machine(m).busy_seconds();
  }
  sync_busy_ratio /= 8 * sync_run.stats.compute_seconds;
  async_busy_ratio /= 8 * async_run.stats.compute_seconds;
  // Utilization (busy / wall) is higher without barriers.
  EXPECT_GT(async_busy_ratio, sync_busy_ratio);
}

}  // namespace
}  // namespace gdp::engine
