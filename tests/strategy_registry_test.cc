// The strategy registry: the open catalogue behind MakePartitioner,
// StrategyName/StrategyFromName, and the roster helpers. Covers the full
// 17-strategy round trip (kind -> name -> kind, aliases included), trait
// consistency against live partitioner instances, the family rosters, and
// runtime extension with an out-of-tree strategy.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "partition/partitioner.h"
#include "partition/strategy_registration.h"
#include "partition/strategy_registry.h"

namespace gdp::partition {
namespace {

const std::vector<StrategyKind>& AllSeventeen() {
  static const std::vector<StrategyKind> kKinds = {
      StrategyKind::kRandom,   StrategyKind::kAsymmetricRandom,
      StrategyKind::kGrid,     StrategyKind::kPds,
      StrategyKind::kOblivious, StrategyKind::kHdrf,
      StrategyKind::kHybrid,   StrategyKind::kHybridGinger,
      StrategyKind::kOneD,     StrategyKind::kOneDTarget,
      StrategyKind::kTwoD,     StrategyKind::kChunked,
      StrategyKind::kDbh,      StrategyKind::kNe,
      StrategyKind::kSne,      StrategyKind::kTwoPs,
      StrategyKind::kHep};
  return kKinds;
}

PartitionContext SmallContext() {
  PartitionContext context;
  context.num_partitions = 7;  // 7 = 2^2 + 2 + 1, so PDS constructs
  context.num_vertices = 100;
  context.num_loaders = 3;
  context.seed = 5;
  return context;
}

TEST(StrategyRegistryTest, RoundTripsAllSeventeenStrategies) {
  EnsureBuiltinStrategiesRegistered();
  for (StrategyKind kind : AllSeventeen()) {
    const StrategyInfo* info = StrategyRegistry::Instance().Find(kind);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->kind, kind);
    // kind -> name -> kind.
    EXPECT_EQ(StrategyName(kind), info->name);
    auto parsed = StrategyFromName(info->name);
    ASSERT_TRUE(parsed.ok()) << info->name;
    EXPECT_EQ(parsed.value(), kind);
    // Aliases parse to the same kind.
    for (const std::string& alias : info->aliases) {
      auto via_alias = StrategyFromName(alias);
      ASSERT_TRUE(via_alias.ok()) << alias;
      EXPECT_EQ(via_alias.value(), kind);
    }
  }
  EXPECT_FALSE(StrategyFromName("NoSuchStrategy").ok());
}

// Traits must agree with what the factory-built partitioners actually do —
// a registry entry whose passes_required or parallel_safe drifts from the
// implementation would silently break the cache key and the pipeline's
// serialization decisions.
TEST(StrategyRegistryTest, TraitsMatchLivePartitioners) {
  EnsureBuiltinStrategiesRegistered();
  for (StrategyKind kind : AllSeventeen()) {
    const StrategyInfo* info = StrategyRegistry::Instance().Find(kind);
    ASSERT_NE(info, nullptr);
    SCOPED_TRACE(info->name);
    std::unique_ptr<Partitioner> p = info->factory(SmallContext());
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->kind(), kind);
    EXPECT_EQ(p->num_passes(), info->traits.passes_required);
    bool every_pass_safe = true;
    for (uint32_t pass = 0; pass < p->num_passes(); ++pass) {
      every_pass_safe = every_pass_safe && p->PassIsParallelSafe(pass);
    }
    EXPECT_EQ(every_pass_safe, info->traits.parallel_safe);
  }
}

TEST(StrategyRegistryTest, RostersComeFromTraits) {
  // The paper roster excludes the extensions (Chunked, DBH, the expansion
  // family) and keeps the established display order.
  const std::vector<StrategyKind>& paper = AllStrategies();
  EXPECT_EQ(paper.size(), 11u);
  for (StrategyKind extension :
       {StrategyKind::kChunked, StrategyKind::kDbh, StrategyKind::kNe,
        StrategyKind::kSne, StrategyKind::kTwoPs, StrategyKind::kHep}) {
    EXPECT_EQ(std::count(paper.begin(), paper.end(), extension), 0);
  }

  const std::vector<StrategyKind> pg = PowerGraphStrategies();
  EXPECT_EQ(pg.front(), StrategyKind::kRandom);
  EXPECT_EQ(std::count(pg.begin(), pg.end(), StrategyKind::kHdrf), 1);
  const std::vector<StrategyKind> pl = PowerLyraStrategies();
  EXPECT_EQ(std::count(pl.begin(), pl.end(), StrategyKind::kHybrid), 1);
  const std::vector<StrategyKind> gx = GraphXStrategies();
  EXPECT_EQ(std::count(gx.begin(), gx.end(), StrategyKind::kTwoD), 1);
  EXPECT_EQ(std::count(gx.begin(), gx.end(), StrategyKind::kHybrid), 0);

  const std::vector<StrategyKind> family = ExpansionFamilyStrategies();
  EXPECT_EQ(family, (std::vector<StrategyKind>{
                        StrategyKind::kNe, StrategyKind::kSne,
                        StrategyKind::kTwoPs, StrategyKind::kHep}));

  const std::vector<StrategyKind> budget_aware =
      MemoryBudgetAwareStrategies();
  EXPECT_EQ(std::count(budget_aware.begin(), budget_aware.end(),
                       StrategyKind::kSne),
            1);
  EXPECT_EQ(std::count(budget_aware.begin(), budget_aware.end(),
                       StrategyKind::kHep),
            1);
  EXPECT_EQ(std::count(budget_aware.begin(), budget_aware.end(),
                       StrategyKind::kNe),
            0);
}

// Out-of-tree extension: a strategy registered at runtime is immediately
// reachable through every query path — name parsing, factory dispatch,
// trait filters — without touching a core switch.
class ConstantPartitioner final : public Partitioner {
 public:
  explicit ConstantPartitioner(const PartitionContext& context)
      : Partitioner(context) {}
  StrategyKind kind() const override { return kExperimentalKind; }
  MachineId Assign(const graph::Edge& e, uint32_t pass,
                   uint32_t loader) override {
    (void)e;
    (void)pass;
    AddWorkTicks(loader, kTicksPerWorkUnit);
    return 0;
  }

  /// A kind value far outside the built-in enum range.
  static constexpr StrategyKind kExperimentalKind =
      static_cast<StrategyKind>(1000);
};

TEST(StrategyRegistryTest, RuntimeRegistrationExtendsEveryQueryPath) {
  EnsureBuiltinStrategiesRegistered();
  StrategyRegistry::Instance().Register(StrategyInfo{
      .kind = ConstantPartitioner::kExperimentalKind,
      .name = "Experimental-Constant",
      .aliases = {"ConstZero"},
      .traits = {.passes_required = 1, .parallel_safe = true},
      .factory = [](const PartitionContext& context)
          -> std::unique_ptr<Partitioner> {
        return std::make_unique<ConstantPartitioner>(context);
      }});

  auto parsed = StrategyFromName("ConstZero");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), ConstantPartitioner::kExperimentalKind);
  EXPECT_EQ(std::string(StrategyName(ConstantPartitioner::kExperimentalKind)),
            "Experimental-Constant");

  std::unique_ptr<Partitioner> p =
      MakePartitioner(ConstantPartitioner::kExperimentalKind, SmallContext());
  graph::Edge e{1, 2};
  EXPECT_EQ(p->Assign(e, 0, 0), 0u);

  // The newcomer shows up in trait queries; the paper roster is untouched.
  const std::vector<StrategyKind> parallel_safe =
      StrategyRegistry::Instance().KindsWhere(
          [](const StrategyTraits& t) { return t.parallel_safe; });
  EXPECT_EQ(std::count(parallel_safe.begin(), parallel_safe.end(),
                       ConstantPartitioner::kExperimentalKind),
            1);
  EXPECT_EQ(std::count(AllStrategies().begin(), AllStrategies().end(),
                       ConstantPartitioner::kExperimentalKind),
            0);
}

}  // namespace
}  // namespace gdp::partition
