// The parallel ingress pipeline's determinism contract: Ingest() must
// produce a bit-identical DistributedGraph, IngressReport, and per-machine
// cluster accounting at ANY thread count, all equal to the serial
// IngestReference() oracle. Every strategy kind is exercised, including the
// ones whose passes the pipeline must serialize (DBH, H-Ginger passes 1-2).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "graph/generators.h"
#include "partition/ingest.h"
#include "sim/cluster.h"

namespace gdp::partition {
namespace {

constexpr uint32_t kMachines = 7;  // does not divide most state sizes
constexpr uint32_t kLoaders = 13;

PartitionContext MakeContext(graph::VertexId vertices) {
  PartitionContext context;
  context.num_partitions = kMachines;
  context.num_vertices = vertices;
  context.num_loaders = kLoaders;
  context.seed = 29;
  return context;
}

graph::EdgeList TestGraph() {
  return graph::GenerateHeavyTailed(
      {.num_vertices = 3000, .edges_per_vertex = 6, .seed = 41});
}

struct IngestRun {
  IngestResult result;
  std::vector<double> busy_seconds;
  std::vector<uint64_t> bytes_sent;
  std::vector<uint64_t> bytes_received;
  std::vector<uint64_t> memory_bytes;
  std::vector<uint64_t> peak_memory_bytes;
  double now_seconds = 0;
};

IngestRun RunIngest(const graph::EdgeList& edges, StrategyKind kind,
              const IngestOptions& options, bool reference) {
  PartitionContext context = MakeContext(edges.num_vertices());
  std::unique_ptr<Partitioner> partitioner = MakePartitioner(kind, context);
  sim::Cluster cluster(kMachines, sim::CostModel{});
  IngestRun run;
  run.result = reference
                   ? IngestReference(edges, *partitioner, cluster, options)
                   : Ingest(edges, *partitioner, cluster, options);
  for (uint32_t m = 0; m < kMachines; ++m) {
    const sim::Machine& machine = cluster.machine(m);
    run.busy_seconds.push_back(machine.busy_seconds());
    run.bytes_sent.push_back(machine.bytes_sent());
    run.bytes_received.push_back(machine.bytes_received());
    run.memory_bytes.push_back(machine.memory_bytes());
    run.peak_memory_bytes.push_back(machine.peak_memory_bytes());
  }
  run.now_seconds = cluster.now_seconds();
  return run;
}

void ExpectRunsIdentical(const IngestRun& expected, const IngestRun& actual,
                         const std::string& label) {
  SCOPED_TRACE(label);
  const DistributedGraph& a = expected.result.graph;
  const DistributedGraph& b = actual.result.graph;
  ASSERT_EQ(a.num_partitions, b.num_partitions);
  ASSERT_EQ(a.edge_partition.size(), b.edge_partition.size());
  EXPECT_EQ(a.edge_partition, b.edge_partition);
  EXPECT_EQ(a.master, b.master);
  EXPECT_EQ(a.present, b.present);
  EXPECT_EQ(a.num_present_vertices, b.num_present_vertices);
  EXPECT_EQ(a.partition_edge_count, b.partition_edge_count);
  EXPECT_EQ(a.replication_factor, b.replication_factor);
  for (graph::VertexId v = 0; v < a.num_vertices; ++v) {
    ASSERT_EQ(a.replicas.Count(v), b.replicas.Count(v)) << "v=" << v;
    ASSERT_EQ(a.in_edge_partitions.Count(v), b.in_edge_partitions.Count(v));
    ASSERT_EQ(a.out_edge_partitions.Count(v),
              b.out_edge_partitions.Count(v));
    for (sim::MachineId p = 0; p < a.num_partitions; ++p) {
      ASSERT_EQ(a.replicas.Contains(v, p), b.replicas.Contains(v, p));
    }
  }

  const IngressReport& ra = expected.result.report;
  const IngressReport& rb = actual.result.report;
  EXPECT_EQ(ra.ingress_seconds, rb.ingress_seconds);
  ASSERT_EQ(ra.pass_seconds.size(), rb.pass_seconds.size());
  for (size_t i = 0; i < ra.pass_seconds.size(); ++i) {
    EXPECT_EQ(ra.pass_seconds[i], rb.pass_seconds[i]) << "pass " << i;
  }
  EXPECT_EQ(ra.edges_moved, rb.edges_moved);
  EXPECT_EQ(ra.replication_factor, rb.replication_factor);
  EXPECT_EQ(ra.edge_balance_ratio, rb.edge_balance_ratio);
  EXPECT_EQ(ra.peak_state_bytes, rb.peak_state_bytes);

  EXPECT_EQ(expected.busy_seconds, actual.busy_seconds);
  EXPECT_EQ(expected.bytes_sent, actual.bytes_sent);
  EXPECT_EQ(expected.bytes_received, actual.bytes_received);
  EXPECT_EQ(expected.memory_bytes, actual.memory_bytes);
  EXPECT_EQ(expected.peak_memory_bytes, actual.peak_memory_bytes);
  EXPECT_EQ(expected.now_seconds, actual.now_seconds);
}

class IngestDeterminismTest : public ::testing::TestWithParam<StrategyKind> {
};

TEST_P(IngestDeterminismTest, BitIdenticalToReferenceAtAnyThreadCount) {
  graph::EdgeList edges = TestGraph();
  IngestOptions options;
  options.num_loaders = kLoaders;
  IngestRun reference = RunIngest(edges, GetParam(), options, /*reference=*/true);
  for (uint32_t threads : {1u, 2u, 8u}) {
    options.exec.num_threads = threads;
    IngestRun parallel = RunIngest(edges, GetParam(), options,
                             /*reference=*/false);
    ExpectRunsIdentical(reference, parallel,
                        "threads=" + std::to_string(threads));
  }
}

TEST_P(IngestDeterminismTest, MasterPreferenceAndVertexHashPolicyAgree) {
  graph::EdgeList edges = TestGraph();
  IngestOptions options;
  options.num_loaders = kLoaders;
  options.master_policy = MasterPolicy::kVertexHash;
  options.use_partitioner_master_preference = true;
  IngestRun reference = RunIngest(edges, GetParam(), options, /*reference=*/true);
  options.exec.num_threads = 8;
  IngestRun parallel = RunIngest(edges, GetParam(), options, /*reference=*/false);
  ExpectRunsIdentical(reference, parallel, "vertex-hash masters, threads=8");
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, IngestDeterminismTest,
    ::testing::Values(StrategyKind::kRandom, StrategyKind::kAsymmetricRandom,
                      StrategyKind::kGrid, StrategyKind::kPds,
                      StrategyKind::kOblivious, StrategyKind::kHdrf,
                      StrategyKind::kHybrid, StrategyKind::kHybridGinger,
                      StrategyKind::kOneD, StrategyKind::kOneDTarget,
                      StrategyKind::kTwoD, StrategyKind::kChunked,
                      StrategyKind::kDbh),
    [](const ::testing::TestParamInfo<StrategyKind>& info) {
      switch (info.param) {
        case StrategyKind::kRandom: return std::string("Random");
        case StrategyKind::kAsymmetricRandom:
          return std::string("AsymmetricRandom");
        case StrategyKind::kGrid: return std::string("Grid");
        case StrategyKind::kPds: return std::string("Pds");  // 7 = 2^2+2+1
        case StrategyKind::kOblivious: return std::string("Oblivious");
        case StrategyKind::kHdrf: return std::string("Hdrf");
        case StrategyKind::kHybrid: return std::string("Hybrid");
        case StrategyKind::kHybridGinger: return std::string("HybridGinger");
        case StrategyKind::kOneD: return std::string("OneD");
        case StrategyKind::kOneDTarget: return std::string("OneDTarget");
        case StrategyKind::kTwoD: return std::string("TwoD");
        case StrategyKind::kChunked: return std::string("Chunked");
        case StrategyKind::kDbh: return std::string("Dbh");
        default: return std::string("Other");
      }
    });

// The partition count is authoritative from the PartitionContext: a GraphX
// style run (72 partitions on 9 machines) reports 72 partitions even on an
// input so small that hashing never emits the last partition id.
TEST(IngestDeterminismTest, PartitionCountIsAuthoritativeOnTinyInput) {
  graph::EdgeList edges;
  edges.AddEdge(0, 1);
  edges.AddEdge(1, 2);
  PartitionContext context;
  context.num_partitions = 72;
  context.num_vertices = 3;
  context.num_loaders = 9;
  sim::Cluster cluster(9, sim::CostModel{});
  IngestResult r =
      IngestWithStrategy(edges, StrategyKind::kRandom, context, cluster);
  EXPECT_EQ(r.graph.num_partitions, 72u);
  EXPECT_EQ(r.graph.partition_edge_count.size(), 72u);
}

// Memory conservation: with every transient released, end-of-ingress bytes
// are exactly the durable structures — edge records at the hosting
// machines, one vertex record per master, one mirror record per extra
// replica. kMachines = 7 does not divide the partitioner-state deltas, so
// this fails if the state spreading drops remainders (the old
// `delta / num_machines` bug under-freed what it never charged and
// over-freed what it did).
class IngestConservationTest
    : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(IngestConservationTest, EndOfIngressBytesAreExactlyDurableState) {
  graph::EdgeList edges = TestGraph();
  PartitionContext context = MakeContext(edges.num_vertices());
  std::unique_ptr<Partitioner> partitioner =
      MakePartitioner(GetParam(), context);
  sim::Cluster cluster(kMachines, sim::CostModel{});
  IngestOptions options;
  options.num_loaders = kLoaders;
  IngestResult r = Ingest(edges, *partitioner, cluster, options);
  const DistributedGraph& dg = r.graph;
  const sim::ObjectSizes sizes;

  std::vector<uint64_t> expected(kMachines, 0);
  for (uint64_t i = 0; i < dg.edges.size(); ++i) {
    expected[dg.MachineOfPartition(dg.edge_partition[i])] +=
        sizes.edge_record;
  }
  for (graph::VertexId v = 0; v < dg.num_vertices; ++v) {
    if (!dg.present[v]) continue;
    dg.replicas.ForEach(v, [&](sim::MachineId p) {
      expected[dg.MachineOfPartition(p)] +=
          p == dg.master[v] ? sizes.vertex_record : sizes.mirror_record;
    });
  }
  for (uint32_t m = 0; m < kMachines; ++m) {
    EXPECT_EQ(cluster.machine(m).memory_bytes(), expected[m]) << "m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(GreedyAndMultiPass, IngestConservationTest,
                         ::testing::Values(StrategyKind::kOblivious,
                                           StrategyKind::kHdrf,
                                           StrategyKind::kHybrid,
                                           StrategyKind::kHybridGinger),
                         [](const ::testing::TestParamInfo<StrategyKind>& i) {
                           switch (i.param) {
                             case StrategyKind::kOblivious:
                               return std::string("Oblivious");
                             case StrategyKind::kHdrf:
                               return std::string("Hdrf");
                             case StrategyKind::kHybrid:
                               return std::string("Hybrid");
                             default:
                               return std::string("HybridGinger");
                           }
                         });

}  // namespace
}  // namespace gdp::partition
