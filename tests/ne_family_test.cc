// The neighbourhood-expansion family (NE, SNE, 2PS, HEP) under the ingest
// determinism contract: the parallel pipeline must be bit-identical to the
// serial IngestReference oracle at any thread count AND either input
// representation (flat edge list or compressed block store), with and
// without a binding memory budget. Plus the family's quality claims: NE
// beats HDRF's replication factor on a heavy-tailed graph, and HEP's
// low/high split threshold is monotone in the memory budget.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "graph/edge_block_store.h"
#include "graph/generators.h"
#include "partition/expansion.h"
#include "partition/hep.h"
#include "partition/ingest.h"
#include "partition/two_phase.h"
#include "sim/cluster.h"

namespace gdp::partition {
namespace {

constexpr uint32_t kMachines = 7;  // does not divide most state sizes
constexpr uint32_t kLoaders = 13;

PartitionContext MakeContext(graph::VertexId vertices,
                             uint64_t memory_budget_bytes = 0) {
  PartitionContext context;
  context.num_partitions = kMachines;
  context.num_vertices = vertices;
  context.num_loaders = kLoaders;
  context.seed = 29;
  context.memory_budget_bytes = memory_budget_bytes;
  return context;
}

graph::EdgeList TestGraph() {
  return graph::GenerateHeavyTailed(
      {.num_vertices = 3000, .edges_per_vertex = 6, .seed = 41});
}

enum class Path { kReference, kFlat, kBlockStore };

struct IngestRun {
  IngestResult result;
  std::vector<double> busy_seconds;
  std::vector<uint64_t> bytes_sent;
  std::vector<uint64_t> bytes_received;
  std::vector<uint64_t> memory_bytes;
  std::vector<uint64_t> peak_memory_bytes;
  double now_seconds = 0;
};

IngestRun RunIngest(const graph::EdgeList& edges, StrategyKind kind,
                    const IngestOptions& options, Path path,
                    uint64_t memory_budget_bytes) {
  PartitionContext context =
      MakeContext(edges.num_vertices(), memory_budget_bytes);
  std::unique_ptr<Partitioner> partitioner = MakePartitioner(kind, context);
  sim::Cluster cluster(kMachines, sim::CostModel{});
  IngestRun run;
  switch (path) {
    case Path::kReference:
      run.result = IngestReference(edges, *partitioner, cluster, options);
      break;
    case Path::kFlat:
      run.result = Ingest(edges, *partitioner, cluster, options);
      break;
    case Path::kBlockStore: {
      const graph::EdgeBlockStore store =
          graph::EdgeBlockStore::FromEdges(edges, {});
      run.result = Ingest(store, *partitioner, cluster, options);
      break;
    }
  }
  for (uint32_t m = 0; m < kMachines; ++m) {
    const sim::Machine& machine = cluster.machine(m);
    run.busy_seconds.push_back(machine.busy_seconds());
    run.bytes_sent.push_back(machine.bytes_sent());
    run.bytes_received.push_back(machine.bytes_received());
    run.memory_bytes.push_back(machine.memory_bytes());
    run.peak_memory_bytes.push_back(machine.peak_memory_bytes());
  }
  run.now_seconds = cluster.now_seconds();
  return run;
}

void ExpectRunsIdentical(const IngestRun& expected, const IngestRun& actual,
                         const std::string& label) {
  SCOPED_TRACE(label);
  const DistributedGraph& a = expected.result.graph;
  const DistributedGraph& b = actual.result.graph;
  ASSERT_EQ(a.num_partitions, b.num_partitions);
  ASSERT_EQ(a.edge_partition.size(), b.edge_partition.size());
  EXPECT_EQ(a.edge_partition, b.edge_partition);
  EXPECT_EQ(a.master, b.master);
  EXPECT_EQ(a.present, b.present);
  EXPECT_EQ(a.num_present_vertices, b.num_present_vertices);
  EXPECT_EQ(a.partition_edge_count, b.partition_edge_count);
  EXPECT_EQ(a.replication_factor, b.replication_factor);
  for (graph::VertexId v = 0; v < a.num_vertices; ++v) {
    ASSERT_EQ(a.replicas.Count(v), b.replicas.Count(v)) << "v=" << v;
    for (sim::MachineId p = 0; p < a.num_partitions; ++p) {
      ASSERT_EQ(a.replicas.Contains(v, p), b.replicas.Contains(v, p));
    }
  }

  const IngressReport& ra = expected.result.report;
  const IngressReport& rb = actual.result.report;
  EXPECT_EQ(ra.ingress_seconds, rb.ingress_seconds);
  ASSERT_EQ(ra.pass_seconds.size(), rb.pass_seconds.size());
  for (size_t i = 0; i < ra.pass_seconds.size(); ++i) {
    EXPECT_EQ(ra.pass_seconds[i], rb.pass_seconds[i]) << "pass " << i;
  }
  EXPECT_EQ(ra.edges_moved, rb.edges_moved);
  EXPECT_EQ(ra.replication_factor, rb.replication_factor);
  EXPECT_EQ(ra.edge_balance_ratio, rb.edge_balance_ratio);
  EXPECT_EQ(ra.peak_state_bytes, rb.peak_state_bytes);

  EXPECT_EQ(expected.busy_seconds, actual.busy_seconds);
  EXPECT_EQ(expected.bytes_sent, actual.bytes_sent);
  EXPECT_EQ(expected.bytes_received, actual.bytes_received);
  EXPECT_EQ(expected.memory_bytes, actual.memory_bytes);
  EXPECT_EQ(expected.peak_memory_bytes, actual.peak_memory_bytes);
  EXPECT_EQ(expected.now_seconds, actual.now_seconds);
}

std::string KindLabel(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kNe:
      return "Ne";
    case StrategyKind::kSne:
      return "Sne";
    case StrategyKind::kTwoPs:
      return "TwoPs";
    case StrategyKind::kHep:
      return "Hep";
    default:
      return "Other";
  }
}

class NeFamilyDeterminismTest
    : public ::testing::TestWithParam<StrategyKind> {};

// The full identity matrix: {1, 2, 8} threads x {flat, block-store}
// against the serial flat oracle.
TEST_P(NeFamilyDeterminismTest, BitIdenticalAcrossThreadsAndRepresentations) {
  graph::EdgeList edges = TestGraph();
  IngestOptions options;
  options.num_loaders = kLoaders;
  IngestRun reference =
      RunIngest(edges, GetParam(), options, Path::kReference, 0);
  for (uint32_t threads : {1u, 2u, 8u}) {
    options.exec.num_threads = threads;
    for (Path path : {Path::kFlat, Path::kBlockStore}) {
      IngestRun run = RunIngest(edges, GetParam(), options, path, 0);
      ExpectRunsIdentical(
          reference, run,
          "threads=" + std::to_string(threads) +
              (path == Path::kFlat ? " flat" : " block-store"));
    }
  }
}

// Same matrix under a binding budget: SNE expands in many small chunks and
// HEP streams most hubs, and the results must still be bit-identical.
TEST_P(NeFamilyDeterminismTest, BitIdenticalUnderTightMemoryBudget) {
  constexpr uint64_t kBudget = 64 * 1024;
  graph::EdgeList edges = TestGraph();
  IngestOptions options;
  options.num_loaders = kLoaders;
  IngestRun reference =
      RunIngest(edges, GetParam(), options, Path::kReference, kBudget);
  for (uint32_t threads : {1u, 8u}) {
    options.exec.num_threads = threads;
    for (Path path : {Path::kFlat, Path::kBlockStore}) {
      IngestRun run = RunIngest(edges, GetParam(), options, path, kBudget);
      ExpectRunsIdentical(
          reference, run,
          "budget, threads=" + std::to_string(threads) +
              (path == Path::kFlat ? " flat" : " block-store"));
    }
  }
}

// The vertex-hash master policy with partitioner preferences enabled — the
// path where CoreOf/cluster masters actually flow into finalize.
TEST_P(NeFamilyDeterminismTest, MasterPreferencePolicyAgrees) {
  graph::EdgeList edges = TestGraph();
  IngestOptions options;
  options.num_loaders = kLoaders;
  options.master_policy = MasterPolicy::kVertexHash;
  options.use_partitioner_master_preference = true;
  IngestRun reference =
      RunIngest(edges, GetParam(), options, Path::kReference, 0);
  options.exec.num_threads = 8;
  IngestRun run = RunIngest(edges, GetParam(), options, Path::kFlat, 0);
  ExpectRunsIdentical(reference, run, "vertex-hash masters, threads=8");
}

INSTANTIATE_TEST_SUITE_P(
    ExpansionFamily, NeFamilyDeterminismTest,
    ::testing::Values(StrategyKind::kNe, StrategyKind::kSne,
                      StrategyKind::kTwoPs, StrategyKind::kHep),
    [](const ::testing::TestParamInfo<StrategyKind>& info) {
      return KindLabel(info.param);
    });

// NE's whole point: expansion beats the best streaming heuristic's
// replication factor when it can afford to hold the graph.
TEST(NeFamilyTest, NeBeatsHdrfReplicationOnHeavyTailedGraph) {
  graph::EdgeList edges = TestGraph();
  PartitionContext context = MakeContext(edges.num_vertices());
  IngestOptions options;
  options.num_loaders = kLoaders;

  sim::Cluster ne_cluster(kMachines, sim::CostModel{});
  IngestResult ne = IngestWithStrategy(edges, StrategyKind::kNe, context,
                                       ne_cluster, options);
  sim::Cluster hdrf_cluster(kMachines, sim::CostModel{});
  IngestResult hdrf = IngestWithStrategy(edges, StrategyKind::kHdrf, context,
                                         hdrf_cluster, options);
  EXPECT_LE(ne.report.replication_factor, hdrf.report.replication_factor)
      << "NE RF " << ne.report.replication_factor << " vs HDRF RF "
      << hdrf.report.replication_factor;
}

// HEP's split threshold must grow with the budget (more budget -> more of
// the graph goes through the in-memory expansion phase), and the
// unconstrained default must dominate every finite budget's threshold.
TEST(NeFamilyTest, HepSplitThresholdIsMonotoneInBudget) {
  graph::EdgeList edges = TestGraph();
  IngestOptions options;
  options.num_loaders = kLoaders;

  uint64_t previous = 0;
  std::vector<uint64_t> thresholds;
  for (uint64_t budget :
       {uint64_t{2} << 10, uint64_t{16} << 10, uint64_t{128} << 10,
        uint64_t{1} << 20, uint64_t{16} << 20}) {
    HepPartitioner hep(MakeContext(edges.num_vertices(), budget));
    sim::Cluster cluster(kMachines, sim::CostModel{});
    IngestReference(edges, hep, cluster, options);
    SCOPED_TRACE("budget=" + std::to_string(budget));
    EXPECT_GE(hep.SplitThreshold(), previous);
    previous = hep.SplitThreshold();
    thresholds.push_back(hep.SplitThreshold());
  }
  // The spread of budgets actually moves the threshold (not vacuously
  // monotone).
  EXPECT_GT(thresholds.back(), thresholds.front());

  HepPartitioner unconstrained(MakeContext(edges.num_vertices(), 0));
  sim::Cluster cluster(kMachines, sim::CostModel{});
  IngestReference(edges, unconstrained, cluster, options);
  EXPECT_GT(unconstrained.SplitThreshold(), 0u);
}

// SNE's resident chunk is sized from the budget, with a floor that keeps
// expansion meaningful on tiny budgets.
TEST(NeFamilyTest, SneChunkCapacityTracksBudget) {
  const graph::VertexId v = 1000;
  SnePartitioner unbounded(MakeContext(v, 0));
  SnePartitioner small(MakeContext(v, 8 * 1024));
  SnePartitioner large(MakeContext(v, 4 * 1024 * 1024));
  EXPECT_GT(unbounded.chunk_capacity_edges(), 0u);
  EXPECT_LE(small.chunk_capacity_edges(), large.chunk_capacity_edges());
  EXPECT_GE(small.chunk_capacity_edges(), 1024u);  // the floor
}

// A budget small enough to force many chunks still assigns every edge and
// produces a valid replication factor (the expansion's full-assignment
// invariant).
TEST(NeFamilyTest, SneTinyBudgetStillAssignsEveryEdge) {
  graph::EdgeList edges = TestGraph();
  PartitionContext context =
      MakeContext(edges.num_vertices(), /*memory_budget_bytes=*/50 * 1024);
  IngestOptions options;
  options.num_loaders = kLoaders;
  sim::Cluster cluster(kMachines, sim::CostModel{});
  IngestResult r = IngestWithStrategy(edges, StrategyKind::kSne, context,
                                      cluster, options);
  ASSERT_EQ(r.graph.edge_partition.size(), edges.num_edges());
  uint64_t total = 0;
  for (uint64_t count : r.graph.partition_edge_count) total += count;
  EXPECT_EQ(total, edges.num_edges());
  EXPECT_GE(r.report.replication_factor, 1.0);
}

}  // namespace
}  // namespace gdp::partition
