#include <gtest/gtest.h>

#include <memory>

#include "engine/graphx_memory.h"
#include "graph/generators.h"
#include "harness/experiment.h"

namespace gdp::harness {
namespace {

graph::EdgeList SmallSocial() {
  return graph::GenerateHeavyTailed(
      {.num_vertices = 2000, .edges_per_vertex = 5, .seed = 71});
}

TEST(HarnessTest, AppNamesAndNaturalness) {
  EXPECT_STREQ(AppKindName(AppKind::kPageRankFixed), "PageRank(10)");
  EXPECT_TRUE(IsNaturalApp(AppKind::kPageRankFixed));
  EXPECT_TRUE(IsNaturalApp(AppKind::kSsspDirected));
  EXPECT_FALSE(IsNaturalApp(AppKind::kSssp));
  EXPECT_FALSE(IsNaturalApp(AppKind::kWcc));
  EXPECT_FALSE(IsNaturalApp(AppKind::kKCore));
}

TEST(HarnessTest, RunExperimentPopulatesAllMetrics) {
  ExperimentSpec spec;
  spec.num_machines = 9;
  spec.app = AppKind::kPageRankFixed;
  spec.max_iterations = 5;
  ExperimentResult r = RunExperiment(SmallSocial(), spec);
  EXPECT_GT(r.ingress.ingress_seconds, 0.0);
  EXPECT_GT(r.compute.compute_seconds, 0.0);
  EXPECT_NEAR(r.total_seconds,
              r.ingress.ingress_seconds + r.compute.compute_seconds, 1e-9);
  EXPECT_GT(r.replication_factor, 1.0);
  EXPECT_GT(r.mean_peak_memory_bytes, 0.0);
  EXPECT_GE(r.max_peak_memory_bytes, r.mean_peak_memory_bytes);
  EXPECT_EQ(r.cpu_utilizations.size(), 9u);
  EXPECT_GE(r.edge_balance_ratio, 1.0);
}

TEST(HarnessTest, RunIngressOnlySkipsCompute) {
  ExperimentSpec spec;
  spec.num_machines = 9;
  ExperimentResult r = RunIngressOnly(SmallSocial(), spec);
  EXPECT_GT(r.ingress.ingress_seconds, 0.0);
  EXPECT_EQ(r.compute.iterations, 0u);
  EXPECT_DOUBLE_EQ(r.total_seconds, r.ingress.ingress_seconds);
}

TEST(HarnessTest, DeterministicForSameSpec) {
  ExperimentSpec spec;
  spec.num_machines = 5;
  spec.app = AppKind::kWcc;
  graph::EdgeList edges = SmallSocial();
  ExperimentResult a = RunExperiment(edges, spec);
  ExperimentResult b = RunExperiment(edges, spec);
  EXPECT_DOUBLE_EQ(a.total_seconds, b.total_seconds);
  EXPECT_DOUBLE_EQ(a.replication_factor, b.replication_factor);
  EXPECT_EQ(a.compute.network_bytes, b.compute.network_bytes);
}

TEST(HarnessTest, EveryAppRunsOnEverySystem) {
  graph::EdgeList edges = graph::GenerateHeavyTailed(
      {.num_vertices = 600, .edges_per_vertex = 4, .seed = 72});
  for (auto engine_kind :
       {engine::EngineKind::kPowerGraphSync,
        engine::EngineKind::kPowerLyraHybrid,
        engine::EngineKind::kGraphXPregel}) {
    for (auto app : {AppKind::kPageRankFixed, AppKind::kPageRankConvergent,
                     AppKind::kWcc, AppKind::kSssp, AppKind::kSsspDirected,
                     AppKind::kKCore, AppKind::kColoring}) {
      ExperimentSpec spec;
      spec.engine = engine_kind;
      spec.strategy = partition::StrategyKind::kGrid;
      spec.num_machines = 4;
      spec.app = app;
      spec.max_iterations = 5;
      spec.kcore_kmin = 2;
      spec.kcore_kmax = 4;
      ExperimentResult r = RunExperiment(edges, spec);
      EXPECT_GT(r.compute.compute_seconds, 0.0)
          << engine::EngineKindName(engine_kind) << "/" << AppKindName(app);
    }
  }
}

TEST(HarnessTest, TimelineRecordedWhenRequested) {
  ExperimentSpec spec;
  spec.num_machines = 4;
  spec.app = AppKind::kPageRankFixed;
  spec.max_iterations = 3;
  spec.record_timeline = true;
  ExperimentResult r = RunExperiment(SmallSocial(), spec);
  EXPECT_GE(r.timeline.samples().size(), 4u);
  EXPECT_GE(r.timeline.MarkTime("ingress-end"), 0.0);
  EXPECT_GT(r.timeline.MarkTime("compute-end"),
            r.timeline.MarkTime("ingress-end"));
}

TEST(HarnessTest, GraphXPartitionsPerMachine) {
  ExperimentSpec spec;
  spec.engine = engine::EngineKind::kGraphXPregel;
  spec.strategy = partition::StrategyKind::kTwoD;
  spec.num_machines = 9;
  spec.partitions_per_machine = 8;  // one per core
  spec.app = AppKind::kPageRankFixed;
  spec.max_iterations = 3;
  ExperimentResult r = RunExperiment(SmallSocial(), spec);
  EXPECT_GT(r.replication_factor, 1.0);
  EXPECT_GT(r.compute.compute_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// GraphX executor-memory model (Fig 9.4 regimes)
// ---------------------------------------------------------------------------

class MemoryPressureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph::EdgeList edges = SmallSocial();
    ExperimentSpec spec;
    spec.engine = engine::EngineKind::kGraphXPregel;
    spec.num_machines = 9;
    sim::Cluster cluster(9, sim::CostModel{});
    partition::PartitionContext context;
    context.num_partitions = 9;
    context.num_vertices = edges.num_vertices();
    context.num_loaders = 9;
    ingest_ = std::make_unique<partition::IngestResult>(
        partition::IngestWithStrategy(edges,
                                      partition::StrategyKind::kRandom,
                                      context, cluster));
  }

  engine::MemoryPressureOptions BaseOptions() {
    engine::MemoryPressureOptions options;
    options.num_executors = 9;
    options.initial_executors = 2;
    options.base_execution_seconds = 100;
    return options;
  }

  std::unique_ptr<partition::IngestResult> ingest_;
};

TEST_F(MemoryPressureTest, ThreeRegimesAppearInOrder) {
  engine::MemoryPressureOptions options = BaseOptions();
  uint64_t graph_bytes =
      engine::SimulateExecutorMemory(ingest_->graph, options).graph_bytes;
  // Tiny budget: fails.
  options.executor_memory_bytes = graph_bytes / 20;
  auto fail = engine::SimulateExecutorMemory(ingest_->graph, options);
  EXPECT_EQ(fail.outcome, engine::MemoryOutcome::kFailed);
  // Mid budget: fits on the cluster, not on 2 executors.
  options.executor_memory_bytes = graph_bytes / 4;
  auto mid = engine::SimulateExecutorMemory(ingest_->graph, options);
  EXPECT_EQ(mid.outcome, engine::MemoryOutcome::kRedistributed);
  EXPECT_GE(mid.placement_attempts, 2u);
  // Ample budget: first placement fits.
  options.executor_memory_bytes = graph_bytes;
  auto fit = engine::SimulateExecutorMemory(ingest_->graph, options);
  EXPECT_EQ(fit.outcome, engine::MemoryOutcome::kFastFit);
  EXPECT_EQ(fit.placement_attempts, 1u);
  // Fast-fit is fastest.
  EXPECT_LT(fit.execution_seconds, mid.execution_seconds);
}

TEST_F(MemoryPressureTest, MoreMemoryReducesGcOverhead) {
  engine::MemoryPressureOptions options = BaseOptions();
  uint64_t graph_bytes =
      engine::SimulateExecutorMemory(ingest_->graph, options).graph_bytes;
  options.executor_memory_bytes = graph_bytes;
  auto tight = engine::SimulateExecutorMemory(ingest_->graph, options);
  options.executor_memory_bytes = graph_bytes * 4;
  auto roomy = engine::SimulateExecutorMemory(ingest_->graph, options);
  ASSERT_EQ(tight.outcome, engine::MemoryOutcome::kFastFit);
  ASSERT_EQ(roomy.outcome, engine::MemoryOutcome::kFastFit);
  EXPECT_LT(roomy.execution_seconds, tight.execution_seconds);
  EXPECT_LT(roomy.gc_overhead_fraction, tight.gc_overhead_fraction);
}

TEST_F(MemoryPressureTest, OutcomeNamesDistinct) {
  EXPECT_STRNE(engine::MemoryOutcomeName(engine::MemoryOutcome::kFailed),
               engine::MemoryOutcomeName(engine::MemoryOutcome::kFastFit));
}

}  // namespace
}  // namespace gdp::harness
