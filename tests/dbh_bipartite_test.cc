#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "partition/hash_partitioners.h"
#include "partition/ingest.h"

namespace gdp::partition {
namespace {

PartitionContext MakeContext(uint32_t partitions, graph::VertexId vertices) {
  PartitionContext context;
  context.num_partitions = partitions;
  context.num_vertices = vertices;
  context.num_loaders = 1;
  context.seed = 5;
  return context;
}

// ---------------------------------------------------------------------------
// DBH
// ---------------------------------------------------------------------------

TEST(DbhTest, RegisteredAndExcludedFromPaperSet) {
  EXPECT_STREQ(StrategyName(StrategyKind::kDbh), "DBH");
  auto p = MakePartitioner(StrategyKind::kDbh, MakeContext(4, 100));
  EXPECT_EQ(p->kind(), StrategyKind::kDbh);
  EXPECT_EQ(p->num_passes(), 1u);
  for (StrategyKind kind : AllStrategies()) {
    EXPECT_NE(kind, StrategyKind::kDbh);
  }
}

TEST(DbhTest, HashesByLowerDegreeEndpoint) {
  DbhPartitioner p(MakeContext(8, 1000));
  // Build up hub 0's partial degree.
  for (graph::VertexId leaf = 1; leaf <= 50; ++leaf) {
    p.Assign({0, leaf}, 0, 0);
  }
  // New edges touching the hub hash by the fresh endpoint: two edges from
  // the same fresh vertex to the hub land together only if the vertex
  // hash says so — but crucially, a low-degree vertex's edges to TWO
  // different hubs land on ITS hash, i.e., together.
  for (graph::VertexId hub2 = 900; hub2 < 902; ++hub2) {
    for (graph::VertexId leaf = 901 + 50; leaf < 960; ++leaf) {
      p.Assign({hub2, leaf}, 0, 0);  // grow a second hub
    }
  }
  DbhPartitioner fresh(MakeContext(8, 1000));
  // Prime both hubs in the fresh instance.
  for (graph::VertexId leaf = 1; leaf <= 50; ++leaf) {
    fresh.Assign({0, leaf}, 0, 0);
    fresh.Assign({990, leaf + 200}, 0, 0);
  }
  MachineId a = fresh.Assign({500, 0}, 0, 0);    // 500 is low degree
  MachineId b = fresh.Assign({500, 990}, 0, 0);  // both hash by 500
  EXPECT_EQ(a, b);
}

TEST(DbhTest, StarReplicatesHubNotLeaves) {
  graph::EdgeList star;
  for (graph::VertexId i = 1; i <= 600; ++i) star.AddEdge(i, 0);
  sim::Cluster cluster(8, sim::CostModel{});
  IngestResult r = IngestWithStrategy(star, StrategyKind::kDbh,
                                      MakeContext(8, 601), cluster);
  // Leaves each sit on one machine; the hub spans all 8.
  EXPECT_EQ(r.graph.replicas.Count(0), 8u);
  double rf = r.report.replication_factor;
  EXPECT_LT(rf, 1.1);  // 600 leaves at 1 + one hub at 8
}

TEST(DbhTest, BeatsRandomOnSkewedGraphs) {
  graph::EdgeList web = graph::GeneratePowerLawWeb(
      {.num_vertices = 6000, .seed = 51});
  sim::Cluster c1(9, sim::CostModel{});
  sim::Cluster c2(9, sim::CostModel{});
  double dbh = IngestWithStrategy(web, StrategyKind::kDbh,
                                  MakeContext(9, web.num_vertices()), c1)
                   .report.replication_factor;
  double random = IngestWithStrategy(web, StrategyKind::kRandom,
                                     MakeContext(9, web.num_vertices()), c2)
                      .report.replication_factor;
  EXPECT_LT(dbh, random);
}

// ---------------------------------------------------------------------------
// Bipartite generator
// ---------------------------------------------------------------------------

TEST(BipartiteTest, EdgesOnlyCrossTheTwoSides) {
  graph::EdgeList g = graph::GenerateBipartite(
      {.num_users = 500, .num_items = 100, .edges_per_user = 5, .seed = 52});
  for (const graph::Edge& e : g.edges()) {
    EXPECT_GE(e.src, 100u);  // users
    EXPECT_LT(e.dst, 100u);  // items
  }
}

TEST(BipartiteTest, ItemPopularityIsSkewedUsersAreNot) {
  graph::EdgeList g = graph::GenerateBipartite(
      {.num_users = 4000, .num_items = 800, .edges_per_user = 8, .seed = 53});
  std::vector<uint64_t> in = g.InDegrees();    // item popularity
  std::vector<uint64_t> out = g.OutDegrees();  // user activity
  uint64_t max_item = 0, max_user = 0;
  for (graph::VertexId v = 0; v < 800; ++v) {
    max_item = std::max(max_item, in[v]);
  }
  for (graph::VertexId v = 800; v < g.num_vertices(); ++v) {
    max_user = std::max(max_user, out[v]);
  }
  double mean_item = static_cast<double>(g.num_edges()) / 800;
  EXPECT_GT(static_cast<double>(max_item), 8 * mean_item);  // blockbusters
  EXPECT_LT(max_user, 16u);  // users capped by construction
}

TEST(BipartiteTest, DeterministicAndDeduplicated) {
  graph::EdgeList a = graph::GenerateBipartite({.seed = 54});
  graph::EdgeList b = graph::GenerateBipartite({.seed = 54});
  EXPECT_EQ(a.edges(), b.edges());
  std::set<std::pair<graph::VertexId, graph::VertexId>> seen;
  for (const graph::Edge& e : a.edges()) {
    EXPECT_TRUE(seen.insert({e.src, e.dst}).second);
  }
}

TEST(BipartiteTest, ClassifiedAsSkewed) {
  graph::EdgeList g = graph::GenerateBipartite(
      {.num_users = 6000, .num_items = 1200, .seed = 55});
  graph::GraphStats stats = graph::ComputeGraphStats(g);
  EXPECT_NE(stats.classified, graph::GraphClass::kLowDegree);
}

}  // namespace
}  // namespace gdp::partition
