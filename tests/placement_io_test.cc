#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "apps/pagerank.h"
#include "engine/gas_engine.h"
#include "graph/generators.h"
#include "partition/ingest.h"
#include "partition/placement_io.h"

namespace gdp::partition {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class PlacementIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    edges_ = graph::GenerateHeavyTailed(
        {.num_vertices = 1500, .edges_per_vertex = 5, .seed = 91});
    sim::Cluster cluster(8, sim::CostModel{});
    PartitionContext context;
    context.num_partitions = 8;
    context.num_vertices = edges_.num_vertices();
    context.num_loaders = 8;
    original_ = IngestWithStrategy(edges_, StrategyKind::kHdrf, context,
                                   cluster)
                    .graph;
  }

  graph::EdgeList edges_;
  DistributedGraph original_;
};

TEST_F(PlacementIoTest, RoundTripPreservesEverything) {
  std::string path = TempPath("gdp_placement_roundtrip.txt");
  ASSERT_TRUE(SavePlacement(original_, path).ok());
  auto loaded = LoadPlacement(path);
  ASSERT_TRUE(loaded.ok());
  auto rebuilt = ApplyPlacement(edges_, loaded.value());
  ASSERT_TRUE(rebuilt.ok());
  const DistributedGraph& dg = rebuilt.value();

  EXPECT_EQ(dg.num_partitions, original_.num_partitions);
  EXPECT_EQ(dg.edge_partition, original_.edge_partition);
  EXPECT_EQ(dg.master, original_.master);
  EXPECT_DOUBLE_EQ(dg.replication_factor, original_.replication_factor);
  EXPECT_EQ(dg.partition_edge_count, original_.partition_edge_count);
  for (graph::VertexId v = 0; v < dg.num_vertices; ++v) {
    EXPECT_EQ(dg.replicas.Count(v), original_.replicas.Count(v));
  }
  std::remove(path.c_str());
}

TEST_F(PlacementIoTest, ReloadedPlacementRunsIdentically) {
  // The §5.4.3 reuse workflow: a reloaded partitioning must produce the
  // same computation results and the same simulated costs.
  std::string path = TempPath("gdp_placement_rerun.txt");
  ASSERT_TRUE(SavePlacement(original_, path).ok());
  auto rebuilt = ApplyPlacement(edges_, LoadPlacement(path).value());
  ASSERT_TRUE(rebuilt.ok());

  engine::RunOptions options;
  options.max_iterations = 5;
  sim::Cluster c1(8, sim::CostModel{});
  sim::Cluster c2(8, sim::CostModel{});
  auto run1 = engine::RunGasEngine(engine::EngineKind::kPowerGraphSync,
                                   original_, c1, apps::PageRankFixed(),
                                   options);
  auto run2 = engine::RunGasEngine(engine::EngineKind::kPowerGraphSync,
                                   rebuilt.value(), c2,
                                   apps::PageRankFixed(), options);
  EXPECT_EQ(run1.states, run2.states);
  EXPECT_EQ(run1.stats.network_bytes, run2.stats.network_bytes);
  EXPECT_DOUBLE_EQ(run1.stats.compute_seconds, run2.stats.compute_seconds);
  std::remove(path.c_str());
}

TEST_F(PlacementIoTest, RejectsMismatchedEdgeList) {
  std::string path = TempPath("gdp_placement_mismatch.txt");
  ASSERT_TRUE(SavePlacement(original_, path).ok());
  auto loaded = LoadPlacement(path);
  ASSERT_TRUE(loaded.ok());
  graph::EdgeList other = graph::GenerateHeavyTailed(
      {.num_vertices = 1000, .edges_per_vertex = 5, .seed = 92});
  auto rebuilt = ApplyPlacement(other, loaded.value());
  EXPECT_FALSE(rebuilt.ok());
  EXPECT_EQ(rebuilt.status().code(),
            util::StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST_F(PlacementIoTest, RejectsCorruptHeader) {
  std::string path = TempPath("gdp_placement_bad.txt");
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("not a placement file\n1 2 3 4\n", f);
  fclose(f);
  auto loaded = LoadPlacement(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(PlacementIoTest, RejectsOutOfRangePartition) {
  std::string path = TempPath("gdp_placement_oob.txt");
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("gdp-placement v1\n4 4 2 1\n9\n0\n0\n", f);  // partition 9 >= 4
  fclose(f);
  auto loaded = LoadPlacement(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST_F(PlacementIoTest, MissingFileIsNotFound) {
  auto loaded = LoadPlacement("/nonexistent/placement.txt");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace gdp::partition
