// The observability layer's contracts: registry merges are deterministic
// across thread counts, spans nest per track, the Chrome-trace export
// round-trips through the strict JSON parser, attaching observers never
// changes simulated results, and every simulated-cost span/counter field is
// bit-identical across thread counts {1,2,8}, against the serial oracles,
// and across the cached-vs-fresh grid paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "apps/pagerank.h"
#include "engine/gas_engine.h"
#include "engine/plan_cache.h"
#include "engine/reference_engine.h"
#include "graph/generators.h"
#include "harness/experiment.h"
#include "harness/grid.h"
#include "harness/partition_cache.h"
#include "obs/chrome_trace.h"
#include "obs/exec_context.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/ingest.h"
#include "sim/cluster.h"
#include "util/thread_pool.h"

namespace gdp::obs {
namespace {

constexpr uint32_t kMachines = 9;
constexpr uint32_t kThreadCounts[] = {1, 2, 8};

// ---------------------------------------------------------------------------
// Metrics registry.
// ---------------------------------------------------------------------------

TEST(ObsMetricsTest, CounterAddsAndMerges) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  c->Add(40);
  c->Increment();
  c->Increment();
  EXPECT_EQ(c->Value(), 42u);
  // Same name, same handle.
  EXPECT_EQ(registry.GetCounter("c"), c);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ObsMetricsTest, GaugeSetAndSetMax) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("g");
  g->Set(7);
  EXPECT_EQ(g->Value(), 7);
  g->SetMax(3);  // lower: no change
  EXPECT_EQ(g->Value(), 7);
  g->SetMax(11);
  EXPECT_EQ(g->Value(), 11);
}

TEST(ObsMetricsTest, HistogramBucketsByBitWidth) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  h->Observe(0);     // bit_width 0
  h->Observe(1);     // bit_width 1
  h->Observe(2);     // bit_width 2
  h->Observe(3);     // bit_width 2
  h->Observe(1024);  // bit_width 11
  EXPECT_EQ(h->Count(), 5u);
  EXPECT_EQ(h->Sum(), 1030u);
  EXPECT_EQ(h->Max(), 1024u);
  EXPECT_EQ(h->BucketCount(0), 1u);
  EXPECT_EQ(h->BucketCount(1), 1u);
  EXPECT_EQ(h->BucketCount(2), 2u);
  EXPECT_EQ(h->BucketCount(11), 1u);
  EXPECT_EQ(h->BucketCount(3), 0u);
}

TEST(ObsMetricsTest, HistogramValueAtQuantileWalksBucketBoundaries) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  EXPECT_EQ(h->ValueAtQuantile(0.5), 0u);  // empty histogram

  // 90 samples in [4, 8) (bit_width 3), 10 samples in [512, 1024)
  // (bit_width 10).
  for (int i = 0; i < 90; ++i) h->Observe(5);
  for (int i = 0; i < 10; ++i) h->Observe(700);
  // Any quantile within the first 90 samples resolves to bucket 3's upper
  // bound 2^3 - 1; the tail lands in bucket 10 (upper bound 2^10 - 1).
  EXPECT_EQ(h->ValueAtQuantile(0.0), 7u);
  EXPECT_EQ(h->ValueAtQuantile(0.5), 7u);
  EXPECT_EQ(h->ValueAtQuantile(0.9), 7u);
  EXPECT_EQ(h->ValueAtQuantile(0.91), 1023u);
  EXPECT_EQ(h->ValueAtQuantile(0.99), 1023u);
  EXPECT_EQ(h->ValueAtQuantile(1.0), 1023u);

  // A zero-valued sample lives in bucket 0, whose upper bound is 0.
  Histogram* zeros = registry.GetHistogram("zeros");
  zeros->Observe(0);
  EXPECT_EQ(zeros->ValueAtQuantile(0.5), 0u);
  EXPECT_EQ(zeros->ValueAtQuantile(1.0), 0u);

  // Out-of-range q clamps.
  EXPECT_EQ(h->ValueAtQuantile(-1.0), 7u);
  EXPECT_EQ(h->ValueAtQuantile(2.0), 1023u);
}

TEST(ObsMetricsTest, HistogramSingleSampleQuantiles) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("single");
  h->Observe(37);  // bit_width 6 -> bucket upper bound 63
  // Every quantile of a one-sample histogram resolves to that sample's
  // bucket bound, including both endpoints.
  EXPECT_EQ(h->ValueAtQuantile(0.0), 63u);
  EXPECT_EQ(h->ValueAtQuantile(0.5), 63u);
  EXPECT_EQ(h->ValueAtQuantile(0.99), 63u);
  EXPECT_EQ(h->ValueAtQuantile(1.0), 63u);
  const std::vector<MetricsRegistry::Sample> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].p50, 63u);
  EXPECT_EQ(snapshot[0].p99, 63u);
  EXPECT_EQ(snapshot[0].sum, 37u);
  EXPECT_EQ(snapshot[0].max, 37u);
}

TEST(ObsMetricsTest, HistogramConcurrentRecordsExportDeterministically) {
  // Quantile export (the p50/p99 MetricsTable columns) must not depend on
  // the interleaving of concurrent Observe calls: bucket counts are
  // order-free sums. Record the same multiset of samples serially and from
  // 8 threads and require identical table rows.
  const auto sample_value = [](uint64_t i) {
    return (i % 10 == 9) ? 5000u + i : 20u + i % 8;  // heavy tail every 10th
  };
  constexpr uint64_t kSamples = 4000;

  MetricsRegistry serial_registry;
  Histogram* serial = serial_registry.GetHistogram("latency_us");
  for (uint64_t i = 0; i < kSamples; ++i) serial->Observe(sample_value(i));

  MetricsRegistry threaded_registry;
  Histogram* threaded = threaded_registry.GetHistogram("latency_us");
  util::ThreadPool pool(8);
  pool.ParallelFor(kSamples, [&](uint64_t i, uint32_t /*lane*/) {
    threaded->Observe(sample_value(i));
  });

  EXPECT_EQ(serial_registry.Snapshot(), threaded_registry.Snapshot());
  EXPECT_EQ(MetricsTable(serial_registry).ToAscii(),
            MetricsTable(threaded_registry).ToAscii());
  // The exported percentile columns carry real values, not placeholders.
  const MetricsRegistry::Sample row = threaded_registry.Snapshot().at(0);
  EXPECT_EQ(row.p50, (1u << 5) - 1);   // 20..27 -> bucket 5
  EXPECT_EQ(row.p99, (1u << 14) - 1);  // p99 rank 3960 > 3919 in-bucket-13
}

TEST(ObsMetricsTest, SnapshotCarriesHistogramQuantiles) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  for (int i = 0; i < 99; ++i) h->Observe(3);
  h->Observe(100000);

  const std::vector<MetricsRegistry::Sample> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].p50, 3u);
  EXPECT_EQ(snapshot[0].p99, 3u);
  h->Observe(100000);  // 100 -> p99 rank now reaches the big bucket
  EXPECT_EQ(registry.Snapshot()[0].p99, (1u << 17) - 1);
}

TEST(ObsMetricsTest, SnapshotReportsRegistrationOrder) {
  MetricsRegistry registry;
  registry.GetCounter("b_counter")->Add(2);
  registry.GetGauge("a_gauge")->Set(-5);
  registry.GetHistogram("c_hist")->Observe(9);

  const std::vector<MetricsRegistry::Sample> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "b_counter");
  EXPECT_EQ(snapshot[0].kind, MetricKind::kCounter);
  EXPECT_EQ(snapshot[0].value, 2);
  EXPECT_EQ(snapshot[1].name, "a_gauge");
  EXPECT_EQ(snapshot[1].kind, MetricKind::kGauge);
  EXPECT_EQ(snapshot[1].value, -5);
  EXPECT_EQ(snapshot[2].name, "c_hist");
  EXPECT_EQ(snapshot[2].kind, MetricKind::kHistogram);
  EXPECT_EQ(snapshot[2].value, 1);  // sample count
  EXPECT_EQ(snapshot[2].sum, 9u);
  EXPECT_EQ(snapshot[2].max, 9u);
}

TEST(ObsMetricsTest, MergeFromAddsCountersAndMaxesGauges) {
  MetricsRegistry a;
  a.GetCounter("shared")->Add(10);
  a.GetGauge("peak")->Set(5);

  MetricsRegistry b;
  b.GetCounter("shared")->Add(32);
  b.GetGauge("peak")->Set(9);
  b.GetHistogram("only_b")->Observe(3);

  a.MergeFrom(b);
  EXPECT_EQ(a.GetCounter("shared")->Value(), 42u);
  EXPECT_EQ(a.GetGauge("peak")->Value(), 9);
  EXPECT_EQ(a.GetHistogram("only_b")->Count(), 1u);
  // New names land after a's existing registrations, in b's order.
  const std::vector<MetricsRegistry::Sample> snapshot = a.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[2].name, "only_b");
}

TEST(ObsMetricsTest, ConcurrentCounterWritesMergeDeterministically) {
  // The same logical increments, pushed through 1/2/8 worker threads, must
  // produce identical snapshots: shard merge is integer summation.
  std::vector<std::vector<MetricsRegistry::Sample>> snapshots;
  for (uint32_t threads : kThreadCounts) {
    MetricsRegistry registry;
    Counter* edges = registry.GetCounter("edges");
    Histogram* degrees = registry.GetHistogram("degrees");
    util::ThreadPool pool(threads);
    pool.ParallelFor(1000, [&](uint64_t i, uint32_t) {
      edges->Add(i);
      degrees->Observe(i % 97);
    });
    snapshots.push_back(registry.Snapshot());
  }
  for (size_t i = 1; i < snapshots.size(); ++i) {
    EXPECT_EQ(snapshots[i], snapshots[0]) << "thread count index " << i;
  }
  EXPECT_EQ(snapshots[0][0].value, 999 * 1000 / 2);
}

// ---------------------------------------------------------------------------
// Trace recorder and spans.
// ---------------------------------------------------------------------------

TEST(ObsTraceTest, SpansNestPerTrack) {
  TraceRecorder recorder;
  const TraceRecorder::SpanId outer = recorder.Begin(0, "outer", "t", 0.0);
  const TraceRecorder::SpanId inner = recorder.Begin(0, "inner", "t", 1.0);
  // A different track nests independently.
  const TraceRecorder::SpanId other = recorder.Begin(7, "other", "t", 0.5);
  recorder.End(inner, 2.0);
  recorder.End(outer, 3.0);
  recorder.End(other, 1.5);

  const std::vector<TraceSpan> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[0].sim_begin_seconds, 0.0);
  EXPECT_EQ(spans[0].sim_end_seconds, 3.0);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].name, "other");
  EXPECT_EQ(spans[2].depth, 0u);
  EXPECT_EQ(spans[2].track, 7u);

  const std::vector<TraceSpan> by_track = recorder.SpansByTrack();
  EXPECT_EQ(by_track[0].track, 0u);
  EXPECT_EQ(by_track[1].track, 0u);
  EXPECT_EQ(by_track[2].track, 7u);
}

TEST(ObsTraceTest, ScopedSpanClosesAtBeginWhenNeverEnded) {
  TraceRecorder recorder;
  {
    ScopedSpan span(&recorder, 0, "s", "t", 4.0);
    span.Arg("k", 1);
  }
  const std::vector<TraceSpan> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].sim_begin_seconds, 4.0);
  EXPECT_EQ(spans[0].sim_end_seconds, 4.0);
  ASSERT_EQ(spans[0].args.size(), 1u);
  EXPECT_EQ(spans[0].args[0].first, "k");
  EXPECT_EQ(spans[0].args[0].second, 1);
}

TEST(ObsTraceTest, ScopedSpanIsNullSafe) {
  ScopedSpan inert;
  inert.Arg("k", 1);
  inert.End(1.0);
  ScopedSpan null_recorder(nullptr, 0, "s", "t", 0.0);
  null_recorder.Arg("k", 2);
  null_recorder.End(2.0);
  // Reaching here without touching any recorder is the test.
}

// ---------------------------------------------------------------------------
// Chrome trace export + strict JSON parser round trip.
// ---------------------------------------------------------------------------

TEST(ObsChromeTraceTest, ExportRoundTripsThroughParser) {
  TraceRecorder recorder;
  const TraceRecorder::SpanId id =
      recorder.Begin(3, "pass \"0\" \\ ingress", "ingress", 1.25);
  recorder.Arg(id, "ticks", 12345);
  recorder.Arg(id, "negative", -7);
  recorder.End(id, 2.5);

  const std::string json = ToChromeTraceJson(recorder);
  ASSERT_TRUE(ValidateChromeTraceJson(json).ok()) << json;

  util::StatusOr<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* events = parsed.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 1u);
  const JsonValue& event = events->array[0];
  EXPECT_EQ(event.Find("name")->string, "pass \"0\" \\ ingress");
  EXPECT_EQ(event.Find("ph")->string, "X");
  EXPECT_EQ(event.Find("tid")->number, 3.0);
  const JsonValue* args = event.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->Find("ticks")->number, 12345.0);
  EXPECT_EQ(args->Find("negative")->number, -7.0);
  EXPECT_EQ(args->Find("sim_begin_s")->number, 1.25);
  EXPECT_EQ(args->Find("sim_end_s")->number, 2.5);
}

TEST(ObsChromeTraceTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("{\"bad\\escape\": 1}").ok());
  EXPECT_FALSE(ParseJson("[1, 2,]").ok());
  EXPECT_TRUE(ParseJson("{\"u\": \"\\u0041\", \"n\": -1.5e3}").ok());
}

TEST(ObsChromeTraceTest, ValidatorRejectsNonTraceDocuments) {
  EXPECT_FALSE(ValidateChromeTraceJson("{\"foo\": 1}").ok());
  EXPECT_FALSE(ValidateChromeTraceJson("[]").ok());
  // An X event without dur is invalid.
  EXPECT_FALSE(ValidateChromeTraceJson(
                   "{\"traceEvents\": [{\"name\": \"a\", \"ph\": \"X\", "
                   "\"ts\": 0, \"pid\": 1, \"tid\": 0}]}")
                   .ok());
  EXPECT_TRUE(ValidateChromeTraceJson(
                  "{\"traceEvents\": [{\"name\": \"a\", \"ph\": \"X\", "
                  "\"ts\": 0, \"dur\": 1, \"pid\": 1, \"tid\": 0}]}")
                  .ok());
}

// ---------------------------------------------------------------------------
// ExecContext resolution.
// ---------------------------------------------------------------------------

TEST(ObsExecContextTest, HasObserversAndOptionsCarryExecDirectly) {
  ExecContext empty;
  EXPECT_FALSE(empty.HasObservers());

  sim::Timeline timeline;
  ExecContext ctx;
  ctx.num_threads = 2;
  ctx.timeline = &timeline;
  EXPECT_TRUE(ctx.HasObservers());

  // Options structs carry the context verbatim — no legacy fold-in.
  partition::IngestOptions ingest_options;
  ingest_options.exec = ctx;
  EXPECT_EQ(ingest_options.exec.num_threads, 2u);
  EXPECT_EQ(ingest_options.exec.timeline, &timeline);

  engine::RunOptions run_options;
  run_options.exec = ctx;
  EXPECT_EQ(run_options.exec.num_threads, 2u);
  EXPECT_EQ(run_options.exec.timeline, &timeline);
}

// ---------------------------------------------------------------------------
// Simulated-cost determinism of spans and counters: across thread counts,
// against the serial oracles, and across the cached-vs-fresh grid paths.
// ---------------------------------------------------------------------------

/// A span with wall-clock fields stripped: everything that must be
/// bit-identical across thread counts and execution paths.
using SimSpan = std::tuple<std::string, std::string, uint64_t, uint32_t,
                           double, double,
                           std::vector<std::pair<std::string, int64_t>>>;

std::vector<SimSpan> SimSpans(const TraceRecorder& recorder) {
  std::vector<SimSpan> out;
  for (const TraceSpan& s : recorder.SpansByTrack()) {
    out.emplace_back(s.name, s.category, s.track, s.depth,
                     s.sim_begin_seconds, s.sim_end_seconds, s.args);
  }
  return out;
}

graph::EdgeList TestGraph() {
  return graph::GeneratePowerLawWeb({.num_vertices = 500, .seed = 21});
}

partition::IngestResult PartitionFor(const graph::EdgeList& edges,
                                     sim::Cluster& cluster,
                                     const ExecContext& exec) {
  partition::PartitionContext context;
  context.num_partitions = kMachines;
  context.num_vertices = edges.num_vertices();
  context.num_loaders = kMachines;
  context.seed = 3;
  partition::IngestOptions options;
  options.exec = exec;
  return partition::IngestWithStrategy(
      edges, partition::StrategyKind::kHdrf, context, cluster, options);
}

TEST(ObsEngineDeterminismTest, SpanAndCounterFieldsIdenticalAcrossThreads) {
  const graph::EdgeList edges = TestGraph();

  // Serial oracle first: the reference engine must emit the same observed
  // stream as the parallel engine at every thread count.
  std::vector<SimSpan> want_spans;
  std::vector<MetricsRegistry::Sample> want_metrics;
  {
    MetricsRegistry metrics;
    TraceRecorder trace;
    sim::Cluster cluster(kMachines, sim::CostModel{});
    partition::IngestResult ingest =
        PartitionFor(edges, cluster, ExecContext{});
    engine::RunOptions options;
    options.max_iterations = 8;
    options.exec.metrics = &metrics;
    options.exec.trace = &trace;
    engine::RunGasEngineReference(engine::EngineKind::kPowerGraphSync,
                                  ingest.graph, cluster,
                                  apps::PageRankFixed(), options);
    want_spans = SimSpans(trace);
    want_metrics = metrics.Snapshot();
  }
  ASSERT_FALSE(want_spans.empty());

  for (uint32_t threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    MetricsRegistry metrics;
    TraceRecorder trace;
    sim::Cluster cluster(kMachines, sim::CostModel{});
    partition::IngestResult ingest =
        PartitionFor(edges, cluster, ExecContext{});
    engine::RunOptions options;
    options.max_iterations = 8;
    options.exec.num_threads = threads;
    options.exec.metrics = &metrics;
    options.exec.trace = &trace;
    engine::RunGasEngine(engine::EngineKind::kPowerGraphSync, ingest.graph,
                         cluster, apps::PageRankFixed(), options);
    EXPECT_EQ(SimSpans(trace), want_spans);
    EXPECT_EQ(metrics.Snapshot(), want_metrics);
  }
}

TEST(ObsEngineDeterminismTest, GraphXReplayPathEmitsIdenticalBreakdowns) {
  // GraphX's 0.8x shuffle-block charge forces the serial-replay accounting
  // path; the graphx_blocks arg must still match the oracle at every
  // thread count.
  const graph::EdgeList edges = TestGraph();
  std::vector<SimSpan> want_spans;
  for (size_t i = 0; i <= std::size(kThreadCounts); ++i) {
    MetricsRegistry metrics;
    TraceRecorder trace;
    sim::Cluster cluster(kMachines, sim::CostModel{});
    partition::IngestResult ingest =
        PartitionFor(edges, cluster, ExecContext{});
    engine::RunOptions options;
    options.max_iterations = 6;
    options.work_multiplier = 4.0;
    options.exec.metrics = &metrics;
    options.exec.trace = &trace;
    if (i == 0) {
      engine::RunGasEngineReference(engine::EngineKind::kGraphXPregel,
                                    ingest.graph, cluster,
                                    apps::PageRankFixed(), options);
      want_spans = SimSpans(trace);
      // The GraphX breakdown must actually carry shuffle blocks.
      bool saw_blocks = false;
      for (const SimSpan& s : want_spans) {
        for (const auto& [key, value] : std::get<6>(s)) {
          if (key == "graphx_blocks" && value > 0) saw_blocks = true;
        }
      }
      EXPECT_TRUE(saw_blocks);
    } else {
      options.exec.num_threads = kThreadCounts[i - 1];
      engine::RunGasEngine(engine::EngineKind::kGraphXPregel, ingest.graph,
                           cluster, apps::PageRankFixed(), options);
      EXPECT_EQ(SimSpans(trace), want_spans)
          << "threads=" << kThreadCounts[i - 1];
    }
  }
}

TEST(ObsEngineDeterminismTest, AttachingObserversLeavesResultsIdentical) {
  const graph::EdgeList edges = TestGraph();

  engine::GasRunResult<apps::PageRankApp> plain;
  sim::Cluster plain_cluster(kMachines, sim::CostModel{});
  {
    partition::IngestResult ingest =
        PartitionFor(edges, plain_cluster, ExecContext{});
    engine::RunOptions options;
    options.max_iterations = 8;
    plain = engine::RunGasEngine(engine::EngineKind::kPowerGraphSync,
                                 ingest.graph, plain_cluster,
                                 apps::PageRankFixed(), options);
  }

  MetricsRegistry metrics;
  TraceRecorder trace;
  sim::Cluster observed_cluster(kMachines, sim::CostModel{});
  ExecContext exec;
  exec.metrics = &metrics;
  exec.trace = &trace;
  partition::IngestResult ingest =
      PartitionFor(edges, observed_cluster, exec);
  engine::RunOptions options;
  options.max_iterations = 8;
  options.exec = exec;
  auto observed = engine::RunGasEngine(engine::EngineKind::kPowerGraphSync,
                                       ingest.graph, observed_cluster,
                                       apps::PageRankFixed(), options);

  EXPECT_EQ(observed.states, plain.states);
  EXPECT_EQ(observed.stats.compute_seconds, plain.stats.compute_seconds);
  EXPECT_EQ(observed.stats.network_bytes, plain.stats.network_bytes);
  EXPECT_EQ(observed_cluster.now_seconds(), plain_cluster.now_seconds());
  EXPECT_GT(trace.size(), 0u);
  EXPECT_GT(metrics.size(), 0u);
}

TEST(ObsIngressDeterminismTest, PipelineMatchesOracleAtEveryThreadCount) {
  const graph::EdgeList edges = TestGraph();

  // Oracle stream.
  std::vector<SimSpan> want_spans;
  std::vector<MetricsRegistry::Sample> want_metrics;
  {
    MetricsRegistry metrics;
    TraceRecorder trace;
    sim::Cluster cluster(kMachines, sim::CostModel{});
    partition::PartitionContext context;
    context.num_partitions = kMachines;
    context.num_vertices = edges.num_vertices();
    context.num_loaders = kMachines;
    context.seed = 3;
    std::unique_ptr<partition::Partitioner> partitioner =
        partition::MakePartitioner(partition::StrategyKind::kHdrf, context);
    partition::IngestOptions options;
    options.exec.metrics = &metrics;
    options.exec.trace = &trace;
    partition::IngestReference(edges, *partitioner, cluster, options);
    want_spans = SimSpans(trace);
    want_metrics = metrics.Snapshot();
  }
  ASSERT_FALSE(want_spans.empty());
  ASSERT_FALSE(want_metrics.empty());

  for (uint32_t threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    MetricsRegistry metrics;
    TraceRecorder trace;
    sim::Cluster cluster(kMachines, sim::CostModel{});
    ExecContext exec;
    exec.num_threads = threads;
    exec.metrics = &metrics;
    exec.trace = &trace;
    PartitionFor(edges, cluster, exec);
    EXPECT_EQ(SimSpans(trace), want_spans);
    EXPECT_EQ(metrics.Snapshot(), want_metrics);
  }
}

// ---------------------------------------------------------------------------
// Cache stats and the harness/grid integration.
// ---------------------------------------------------------------------------

TEST(ObsCacheStatsTest, PlanCacheCountsHitsAndMisses) {
  const graph::EdgeList edges = TestGraph();
  sim::Cluster cluster(kMachines, sim::CostModel{});
  partition::IngestResult ingest = PartitionFor(edges, cluster, ExecContext{});

  engine::PlanCache cache(ingest.graph);
  EXPECT_EQ(cache.stats().hits, 0u);
  cache.Get(engine::EdgeDirection::kIn, engine::EdgeDirection::kOut, false);
  cache.Get(engine::EdgeDirection::kIn, engine::EdgeDirection::kOut, false);
  cache.Get(engine::EdgeDirection::kOut, engine::EdgeDirection::kIn, false);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.bypasses, 0u);
  EXPECT_EQ(cache.num_plans(), 2u);
}

TEST(ObsCacheStatsTest, PartitionCacheCountsHitsMissesAndBypasses) {
  const graph::EdgeList edges = TestGraph();
  harness::ExperimentSpec spec;
  spec.num_machines = kMachines;
  spec.app = harness::AppKind::kPageRankFixed;
  spec.max_iterations = 3;

  harness::PartitionCache cache;
  harness::RunExperimentCached(edges, spec, cache);  // miss
  harness::RunExperimentCached(edges, spec, cache);  // hit
  harness::ExperimentSpec timeline_spec = spec;
  timeline_spec.record_timeline = true;
  harness::RunExperimentCached(edges, timeline_spec, cache);  // bypass

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.bypasses, 1u);
}

/// The sim-cost span fields of every engine-phase span, keyed by track —
/// what the cached and fresh grid paths must agree on (ingress spans are
/// deliberately absent on cache hits: the artifact is built sink-free).
std::vector<SimSpan> EngineSimSpans(const TraceRecorder& recorder) {
  std::vector<SimSpan> out;
  for (SimSpan& s : SimSpans(recorder)) {
    if (std::get<1>(s) == "engine") out.push_back(std::move(s));
  }
  return out;
}

TEST(ObsGridTest, CachedAndFreshGridsEmitIdenticalEngineSpans) {
  const graph::EdgeList edges = TestGraph();
  std::vector<harness::ExperimentSpec> specs(3);
  specs[0].app = harness::AppKind::kPageRankFixed;
  specs[1].app = harness::AppKind::kWcc;
  specs[2].app = harness::AppKind::kSssp;
  for (harness::ExperimentSpec& spec : specs) {
    spec.num_machines = kMachines;
    spec.max_iterations = 5;
  }

  std::vector<SimSpan> fresh_spans;
  std::vector<harness::ExperimentResult> fresh_results;
  {
    TraceRecorder trace;
    harness::GridOptions options;
    options.exec.num_threads = 2;
    options.exec.trace = &trace;
    fresh_results = harness::RunGrid(edges, specs, options);
    fresh_spans = EngineSimSpans(trace);
  }
  ASSERT_FALSE(fresh_spans.empty());

  TraceRecorder trace;
  harness::PartitionCache cache;
  harness::GridOptions options;
  options.exec.num_threads = 2;
  options.exec.trace = &trace;
  options.cache = &cache;
  std::vector<harness::ExperimentResult> cached_results =
      harness::RunGrid(edges, specs, options);
  EXPECT_EQ(EngineSimSpans(trace), fresh_spans);
  EXPECT_GT(cache.stats().hits + cache.stats().misses, 0u);

  ASSERT_EQ(cached_results.size(), fresh_results.size());
  for (size_t i = 0; i < fresh_results.size(); ++i) {
    EXPECT_EQ(cached_results[i].total_seconds, fresh_results[i].total_seconds)
        << "cell " << i;
  }
}

TEST(ObsGridTest, CellsLandOnTheirOwnTracks) {
  const graph::EdgeList edges = TestGraph();
  std::vector<harness::ExperimentSpec> specs(2);
  for (harness::ExperimentSpec& spec : specs) {
    spec.num_machines = kMachines;
    spec.max_iterations = 3;
  }

  TraceRecorder trace;
  harness::GridOptions options;
  options.exec.num_threads = 2;
  options.exec.trace = &trace;
  options.exec.trace_track = 100;
  harness::RunGrid(edges, specs, options);

  bool saw_track_100 = false;
  bool saw_track_101 = false;
  for (const TraceSpan& s : trace.Snapshot()) {
    if (s.track == 100) saw_track_100 = true;
    if (s.track == 101) saw_track_101 = true;
    // Every cell span is a top-level span on its own track.
    if (s.category == "grid") {
      EXPECT_EQ(s.depth, 0u);
    }
  }
  EXPECT_TRUE(saw_track_100);
  EXPECT_TRUE(saw_track_101);
}

TEST(ObsHarnessTest, TimelineStyleRunExportsValidChromeTrace) {
  // A Fig 6.3-style cell: timeline recording plus trace/metrics sinks; the
  // exported document must be valid Chrome trace_event JSON covering both
  // the ingress and engine phases.
  const graph::EdgeList edges = TestGraph();
  MetricsRegistry metrics;
  TraceRecorder trace;
  harness::ExperimentSpec spec;
  spec.num_machines = kMachines;
  spec.app = harness::AppKind::kPageRankFixed;
  spec.max_iterations = 5;
  spec.record_timeline = true;
  spec.exec.metrics = &metrics;
  spec.exec.trace = &trace;
  const harness::ExperimentResult result =
      harness::RunExperiment(edges, spec);
  EXPECT_FALSE(result.timeline.samples().empty());

  const std::string json = ToChromeTraceJson(trace);
  ASSERT_TRUE(ValidateChromeTraceJson(json).ok());
  util::StatusOr<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok());
  bool saw_ingress = false;
  bool saw_engine = false;
  for (const JsonValue& event : parsed.value().Find("traceEvents")->array) {
    const std::string& cat = event.Find("cat")->string;
    if (cat == "ingress") saw_ingress = true;
    if (cat == "engine") saw_engine = true;
  }
  EXPECT_TRUE(saw_ingress);
  EXPECT_TRUE(saw_engine);

  // The registry saw both phases too.
  bool saw_loader_ticks = false;
  bool saw_supersteps = false;
  for (const MetricsRegistry::Sample& s : metrics.Snapshot()) {
    if (s.name == "ingress.loader0.ticks" && s.value > 0) {
      saw_loader_ticks = true;
    }
    if (s.name == "engine.supersteps" && s.value > 0) saw_supersteps = true;
  }
  EXPECT_TRUE(saw_loader_ticks);
  EXPECT_TRUE(saw_supersteps);
}

// ---------------------------------------------------------------------------
// Table / CSV export.
// ---------------------------------------------------------------------------

TEST(ObsExportTest, MetricsTableReportsRegistrationOrder) {
  MetricsRegistry registry;
  registry.GetCounter("runs")->Add(3);
  registry.GetHistogram("sizes")->Observe(8);

  const util::Table table = MetricsTable(registry);
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.header()[0], "metric");
  EXPECT_EQ(table.rows()[0][0], "runs");
  EXPECT_EQ(table.rows()[0][1], "counter");
  EXPECT_EQ(table.rows()[0][2], "3");
  EXPECT_EQ(table.rows()[0][3], "-");  // counters have no sum column
  EXPECT_EQ(table.rows()[0][5], "-");  // ... and no quantile columns
  EXPECT_EQ(table.rows()[1][0], "sizes");
  EXPECT_EQ(table.rows()[1][1], "histogram");
  // Bucket-resolution quantiles: 8 has bit_width 4, upper bound 2^4 - 1.
  EXPECT_EQ(table.header()[5], "p50");
  EXPECT_EQ(table.header()[6], "p99");
  EXPECT_EQ(table.rows()[1][5], "15");
  EXPECT_EQ(table.rows()[1][6], "15");
  EXPECT_NE(table.ToCsv().find("runs"), std::string::npos);
}

TEST(ObsExportTest, SpansTableUsesCanonicalOrderAndFlattensArgs) {
  TraceRecorder recorder;
  const TraceRecorder::SpanId late_track = recorder.Begin(5, "b", "t", 1.0);
  recorder.End(late_track, 2.0);
  const TraceRecorder::SpanId early_track = recorder.Begin(1, "a", "t", 0.0);
  recorder.Arg(early_track, "k", 7);
  recorder.Arg(early_track, "m", 9);
  recorder.End(early_track, 1.0);

  const util::Table table = SpansTable(recorder);
  ASSERT_EQ(table.num_rows(), 2u);
  // Canonical order: ascending track, not begin order.
  EXPECT_EQ(table.rows()[0][0], "1");
  EXPECT_EQ(table.rows()[0][3], "a");
  EXPECT_EQ(table.rows()[1][0], "5");
  EXPECT_EQ(table.rows()[1][3], "b");
  EXPECT_EQ(table.rows()[0].back(), "k=7; m=9");
}

}  // namespace
}  // namespace gdp::obs
