#include <gtest/gtest.h>

#include "partition/replica_table.h"

namespace gdp::partition {
namespace {

TEST(ReplicaTableTest, AddAndContains) {
  ReplicaTable table(10, 8);
  EXPECT_TRUE(table.Add(3, 5));
  EXPECT_FALSE(table.Add(3, 5));  // already present
  EXPECT_TRUE(table.Contains(3, 5));
  EXPECT_FALSE(table.Contains(3, 4));
  EXPECT_FALSE(table.Contains(2, 5));
}

TEST(ReplicaTableTest, CountAndFirst) {
  ReplicaTable table(4, 16);
  EXPECT_EQ(table.Count(0), 0u);
  EXPECT_EQ(table.First(0), ReplicaTable::kInvalid);
  table.Add(0, 9);
  table.Add(0, 2);
  table.Add(0, 14);
  EXPECT_EQ(table.Count(0), 3u);
  EXPECT_EQ(table.First(0), 2u);
}

TEST(ReplicaTableTest, MachinesAscending) {
  ReplicaTable table(2, 32);
  table.Add(1, 20);
  table.Add(1, 3);
  table.Add(1, 31);
  std::vector<sim::MachineId> machines = table.Machines(1);
  ASSERT_EQ(machines.size(), 3u);
  EXPECT_EQ(machines[0], 3u);
  EXPECT_EQ(machines[1], 20u);
  EXPECT_EQ(machines[2], 31u);
}

TEST(ReplicaTableTest, SelectKth) {
  ReplicaTable table(1, 64);
  table.Add(0, 5);
  table.Add(0, 17);
  table.Add(0, 63);
  EXPECT_EQ(table.Select(0, 0), 5u);
  EXPECT_EQ(table.Select(0, 1), 17u);
  EXPECT_EQ(table.Select(0, 2), 63u);
}

TEST(ReplicaTableTest, MoreThan64Machines) {
  // GraphX-style partition counts cross the single-word boundary.
  ReplicaTable table(3, 200);
  table.Add(2, 0);
  table.Add(2, 63);
  table.Add(2, 64);
  table.Add(2, 199);
  EXPECT_EQ(table.Count(2), 4u);
  EXPECT_TRUE(table.Contains(2, 64));
  EXPECT_EQ(table.Select(2, 3), 199u);
  std::vector<sim::MachineId> machines = table.Machines(2);
  EXPECT_EQ(machines.back(), 199u);
}

TEST(ReplicaTableTest, ForEachVisitsAllAscending) {
  ReplicaTable table(1, 130);
  for (sim::MachineId m : {1u, 64u, 65u, 129u}) table.Add(0, m);
  std::vector<sim::MachineId> seen;
  table.ForEach(0, [&](sim::MachineId m) { seen.push_back(m); });
  EXPECT_EQ(seen, (std::vector<sim::MachineId>{1, 64, 65, 129}));
}

TEST(ReplicaTableTest, AverageCountNonEmpty) {
  ReplicaTable table(4, 8);
  table.Add(0, 1);
  table.Add(0, 2);
  table.Add(2, 3);
  // Vertices 1 and 3 have no replicas and are excluded.
  EXPECT_DOUBLE_EQ(table.AverageCountNonEmpty(), 1.5);
}

TEST(ReplicaTableTest, AverageCountWithMask) {
  ReplicaTable table(3, 8);
  table.Add(0, 1);
  table.Add(1, 1);
  table.Add(1, 2);
  std::vector<bool> counted{true, true, false};
  EXPECT_DOUBLE_EQ(table.AverageCount(counted), 1.5);
}

TEST(ReplicaTableTest, ResetClears) {
  ReplicaTable table(2, 8);
  table.Add(0, 3);
  table.Reset();
  EXPECT_EQ(table.Count(0), 0u);
}

TEST(ReplicaTableTest, ApproxBytesScalesWithSize) {
  ReplicaTable small(100, 8);
  ReplicaTable big(100, 640);
  EXPECT_GT(big.ApproxBytes(), small.ApproxBytes());
}

}  // namespace
}  // namespace gdp::partition
