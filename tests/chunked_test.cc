#include <gtest/gtest.h>

#include "graph/generators.h"
#include "partition/chunked.h"
#include "partition/ingest.h"
#include "sim/cluster.h"

namespace gdp::partition {
namespace {

PartitionContext MakeContext(uint32_t partitions, graph::VertexId vertices) {
  PartitionContext context;
  context.num_partitions = partitions;
  context.num_vertices = vertices;
  context.num_loaders = 1;
  context.seed = 5;
  return context;
}

TEST(ChunkedTest, RegisteredInFactoryWithName) {
  EXPECT_STREQ(StrategyName(StrategyKind::kChunked), "Chunked");
  auto p = MakePartitioner(StrategyKind::kChunked, MakeContext(4, 100));
  EXPECT_EQ(p->kind(), StrategyKind::kChunked);
  EXPECT_EQ(p->num_passes(), 2u);
}

TEST(ChunkedTest, NotPartOfThePaperStrategySet) {
  for (StrategyKind kind : AllStrategies()) {
    EXPECT_NE(kind, StrategyKind::kChunked)
        << "Chunked is an extension, not part of the paper's grid";
  }
}

TEST(ChunkedTest, ChunksAreContiguousAndOrdered) {
  ChunkedPartitioner p(MakeContext(4, 1000));
  MachineId last = 0;
  for (graph::VertexId v = 0; v < 1000; ++v) {
    MachineId c = p.ChunkOf(v);
    EXPECT_GE(c, last);
    EXPECT_LT(c, 4u);
    last = c;
  }
}

TEST(ChunkedTest, EdgesFollowSourceChunk) {
  ChunkedPartitioner p(MakeContext(4, 100));
  for (graph::VertexId v = 0; v + 1 < 100; ++v) {
    EXPECT_EQ(p.Assign({v, v + 1}, 0, 0), p.ChunkOf(v));
  }
}

TEST(ChunkedTest, SecondPassBalancesEdgeMass) {
  // Vertex 0 carries almost all edges; after the counting pass the first
  // chunk must shrink so chunk loads even out.
  graph::EdgeList star;
  for (graph::VertexId i = 1; i <= 900; ++i) star.AddEdge(0, i);
  for (graph::VertexId v = 100; v + 1 < 1000; ++v) star.AddEdge(v, v + 1);
  sim::Cluster cluster(4, sim::CostModel{});
  IngestResult r = IngestWithStrategy(star, StrategyKind::kChunked,
                                      MakeContext(4, 1000), cluster);
  // Without rebalancing, chunk 0 (vertices 0..249) would hold 900 + 150
  // of ~1800 edges; with it the max/mean ratio stays moderate.
  EXPECT_LT(r.graph.EdgeBalanceRatio(), 2.2);
}

TEST(ChunkedTest, NearPerfectReplicationOnLocalGraphs) {
  graph::EdgeList road = graph::GenerateRoadNetwork(
      {.width = 60, .height = 60, .seed = 41});
  sim::Cluster cluster(9, sim::CostModel{});
  IngestResult r = IngestWithStrategy(road, StrategyKind::kChunked,
                                      MakeContext(9, road.num_vertices()),
                                      cluster);
  // Row-major lattice ids: almost every neighborhood sits inside one
  // chunk; only chunk-boundary rows replicate.
  EXPECT_LT(r.report.replication_factor, 1.3);
}

TEST(ChunkedTest, PoorReplicationWithoutIdLocality) {
  graph::EdgeList social = graph::GenerateHeavyTailed(
      {.num_vertices = 3000, .edges_per_vertex = 6, .seed = 42});
  sim::Cluster c1(9, sim::CostModel{});
  sim::Cluster c2(9, sim::CostModel{});
  double chunked = IngestWithStrategy(social, StrategyKind::kChunked,
                                      MakeContext(9, social.num_vertices()),
                                      c1)
                       .report.replication_factor;
  double grid = IngestWithStrategy(social, StrategyKind::kGrid,
                                   MakeContext(9, social.num_vertices()),
                                   c2)
                    .report.replication_factor;
  EXPECT_GT(chunked, grid);
}

TEST(ChunkedTest, MasterSitsInOwnChunk) {
  graph::EdgeList road = graph::GenerateRoadNetwork(
      {.width = 30, .height = 30, .seed = 43});
  sim::Cluster cluster(4, sim::CostModel{});
  IngestOptions options;
  options.master_policy = MasterPolicy::kVertexHash;
  options.use_partitioner_master_preference = true;
  IngestResult r = IngestWithStrategy(road, StrategyKind::kChunked,
                                      MakeContext(4, road.num_vertices()),
                                      cluster, options);
  // All of a vertex's out-edges live in its chunk; the master joins them.
  for (graph::VertexId v = 0; v < road.num_vertices(); ++v) {
    if (!r.graph.present[v]) continue;
    if (r.graph.out_edge_partitions.Count(v) > 0) {
      EXPECT_TRUE(
          r.graph.out_edge_partitions.Contains(v, r.graph.master[v]));
    }
  }
}

}  // namespace
}  // namespace gdp::partition
