// Integration tests asserting the *findings* of the paper hold in this
// reproduction, at test-friendly scale: strategy orderings per graph class,
// the hybrid-engine effects, ingress/quality tradeoffs, and the decision
// trees' consistency with measured outcomes.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "advisor/advisor.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "harness/experiment.h"
#include "util/stats.h"

namespace gdp {
namespace {

using harness::AppKind;
using harness::ExperimentResult;
using harness::ExperimentSpec;
using partition::StrategyKind;

class ShapeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    road_ = std::make_unique<graph::EdgeList>(graph::GenerateRoadNetwork(
        {.width = 80, .height = 80, .seed = 101}));
    social_ = std::make_unique<graph::EdgeList>(graph::GenerateHeavyTailed(
        {.num_vertices = 8000, .edges_per_vertex = 8, .seed = 102}));
    web_ = std::make_unique<graph::EdgeList>(graph::GeneratePowerLawWeb(
        {.num_vertices = 12000, .seed = 103}));
  }
  static void TearDownTestSuite() {
    road_.reset();
    social_.reset();
    web_.reset();
  }

  static double Rf(const graph::EdgeList& edges, StrategyKind strategy,
                   uint32_t machines = 9) {
    ExperimentSpec spec;
    spec.strategy = strategy;
    spec.num_machines = machines;
    return harness::RunIngressOnly(edges, spec).replication_factor;
  }

  static double IngressSeconds(const graph::EdgeList& edges,
                               StrategyKind strategy,
                               uint32_t machines = 9) {
    ExperimentSpec spec;
    spec.strategy = strategy;
    spec.num_machines = machines;
    return harness::RunIngressOnly(edges, spec).ingress.ingress_seconds;
  }

  static std::unique_ptr<graph::EdgeList> road_;
  static std::unique_ptr<graph::EdgeList> social_;
  static std::unique_ptr<graph::EdgeList> web_;
};

std::unique_ptr<graph::EdgeList> ShapeTest::road_;
std::unique_ptr<graph::EdgeList> ShapeTest::social_;
std::unique_ptr<graph::EdgeList> ShapeTest::web_;

// ---------------------------------------------------------------------------
// Graph classification of the three dataset stand-ins (Table 4.2 / Fig 5.8)
// ---------------------------------------------------------------------------

TEST_F(ShapeTest, GeneratorsLandInTheirClasses) {
  EXPECT_EQ(graph::ComputeGraphStats(*road_).classified,
            graph::GraphClass::kLowDegree);
  EXPECT_EQ(graph::ComputeGraphStats(*social_).classified,
            graph::GraphClass::kHeavyTailed);
  EXPECT_EQ(graph::ComputeGraphStats(*web_).classified,
            graph::GraphClass::kPowerLaw);
}

// ---------------------------------------------------------------------------
// §5.4.2 — replication-factor orderings
// ---------------------------------------------------------------------------

TEST_F(ShapeTest, RoadNetworksFavorGreedyStrategies) {
  double hdrf = Rf(*road_, StrategyKind::kHdrf);
  double oblivious = Rf(*road_, StrategyKind::kOblivious);
  double grid = Rf(*road_, StrategyKind::kGrid);
  double random = Rf(*road_, StrategyKind::kRandom);
  EXPECT_LT(hdrf, grid);
  EXPECT_LT(hdrf, random);
  EXPECT_LT(oblivious, grid);
  EXPECT_LT(oblivious, random);
}

TEST_F(ShapeTest, HeavyTailedFavorsGrid) {
  double grid = Rf(*social_, StrategyKind::kGrid);
  EXPECT_LT(grid, Rf(*social_, StrategyKind::kHdrf));
  EXPECT_LT(grid, Rf(*social_, StrategyKind::kOblivious));
  EXPECT_LT(grid, Rf(*social_, StrategyKind::kRandom));
}

TEST_F(ShapeTest, PowerLawFavorsGreedyOverGrid) {
  double hdrf = Rf(*web_, StrategyKind::kHdrf);
  double oblivious = Rf(*web_, StrategyKind::kOblivious);
  double grid = Rf(*web_, StrategyKind::kGrid);
  EXPECT_LT(hdrf, grid);
  EXPECT_LT(oblivious, grid);
}

TEST_F(ShapeTest, RandomHasWorstReplicationEverywhere) {
  for (const graph::EdgeList* g : {road_.get(), social_.get(), web_.get()}) {
    double random = Rf(*g, StrategyKind::kRandom);
    EXPECT_GE(random, Rf(*g, StrategyKind::kGrid) * 0.99);
    EXPECT_GE(random, Rf(*g, StrategyKind::kHdrf) * 0.99);
    EXPECT_GE(random, Rf(*g, StrategyKind::kOblivious) * 0.99);
  }
}

TEST_F(ShapeTest, AsymmetricRandomWorseThanRandom) {
  // §8.2.2, visible on graphs with reciprocal edges.
  EXPECT_GT(Rf(*social_, StrategyKind::kAsymmetricRandom),
            Rf(*social_, StrategyKind::kRandom));
  EXPECT_GT(Rf(*road_, StrategyKind::kAsymmetricRandom),
            Rf(*road_, StrategyKind::kRandom));
}

TEST_F(ShapeTest, ReplicationGrowsWithClusterSize) {
  for (StrategyKind s : {StrategyKind::kRandom, StrategyKind::kGrid,
                         StrategyKind::kHdrf}) {
    EXPECT_LE(Rf(*social_, s, 9), Rf(*social_, s, 25) + 0.01);
  }
}

TEST_F(ShapeTest, HybridGingerOnlySlightlyBetterThanHybridButSlower) {
  // §6.4.4: slightly better RF, much slower ingress.
  double rf_hybrid = Rf(*social_, StrategyKind::kHybrid);
  double rf_ginger = Rf(*social_, StrategyKind::kHybridGinger);
  EXPECT_LT(rf_ginger, rf_hybrid * 1.02);
  EXPECT_GT(IngressSeconds(*social_, StrategyKind::kHybridGinger),
            1.3 * IngressSeconds(*social_, StrategyKind::kHybrid));
}

// ---------------------------------------------------------------------------
// §5.4.3 — partitioning quality vs speed
// ---------------------------------------------------------------------------

TEST_F(ShapeTest, HashIngressFasterOnSkewedGraphs) {
  EXPECT_LT(IngressSeconds(*web_, StrategyKind::kGrid),
            IngressSeconds(*web_, StrategyKind::kHdrf));
  EXPECT_LT(IngressSeconds(*social_, StrategyKind::kGrid),
            IngressSeconds(*social_, StrategyKind::kOblivious));
}

TEST_F(ShapeTest, IngressSimilarOnRoadNetworks) {
  double grid = IngressSeconds(*road_, StrategyKind::kGrid);
  double oblivious = IngressSeconds(*road_, StrategyKind::kOblivious);
  EXPECT_LT(oblivious / grid, 1.5);  // "perform similarly"
}

// ---------------------------------------------------------------------------
// §5.4.1 — linearity of cost metrics in replication factor
// ---------------------------------------------------------------------------

TEST_F(ShapeTest, CostMetricsIncreaseWithReplication) {
  std::vector<double> rfs, nets, mems, times;
  for (StrategyKind s : {StrategyKind::kRandom, StrategyKind::kGrid,
                         StrategyKind::kOblivious, StrategyKind::kHdrf}) {
    ExperimentSpec spec;
    spec.strategy = s;
    spec.num_machines = 9;
    spec.app = AppKind::kPageRankFixed;
    spec.max_iterations = 10;
    ExperimentResult r = harness::RunExperiment(*web_, spec);
    rfs.push_back(r.replication_factor);
    nets.push_back(static_cast<double>(r.compute.network_bytes));
    mems.push_back(r.mean_peak_memory_bytes);
    times.push_back(r.compute.compute_seconds);
  }
  EXPECT_GT(util::FitLine(rfs, nets).slope, 0.0);
  EXPECT_GT(util::FitLine(rfs, mems).slope, 0.0);
  EXPECT_GT(util::FitLine(rfs, times).slope, 0.0);
  EXPECT_GT(util::FitLine(rfs, nets).r2, 0.8);
}

// ---------------------------------------------------------------------------
// §8.2.3 — the hybrid engine favors gather-edge colocation (1D-Target)
// ---------------------------------------------------------------------------

TEST_F(ShapeTest, OneDTargetBeatsOneDOnPowerLyraPageRank) {
  auto net_for = [&](StrategyKind s) {
    ExperimentSpec spec;
    spec.engine = engine::EngineKind::kPowerLyraHybrid;
    spec.strategy = s;
    spec.num_machines = 9;
    spec.app = AppKind::kPageRankFixed;
    spec.max_iterations = 10;
    ExperimentResult r = harness::RunExperiment(*social_, spec);
    // Normalize by replication factor: 1D-Target must be better than its
    // replication alone predicts.
    return static_cast<double>(r.compute.network_bytes) /
           r.replication_factor;
  };
  EXPECT_LT(net_for(StrategyKind::kOneDTarget),
            net_for(StrategyKind::kOneD));
}

// ---------------------------------------------------------------------------
// Decision trees agree with measurements
// ---------------------------------------------------------------------------

TEST_F(ShapeTest, PowerGraphTreePicksBestMeasuredRf) {
  // For each graph class, the tree's recommendation must have RF within 5%
  // of the measured best among PowerGraph's strategies.
  struct Case {
    const graph::EdgeList* edges;
  };
  for (const graph::EdgeList* edges : {road_.get(), social_.get(), web_.get()}) {
    graph::GraphStats stats = graph::ComputeGraphStats(*edges);
    advisor::Workload workload;
    workload.graph_class = stats.classified;
    workload.num_machines = 9;
    workload.compute_ingress_ratio = 10.0;  // long job: quality matters
    advisor::Recommendation rec =
        advisor::Recommend(advisor::System::kPowerGraph, workload);
    std::map<StrategyKind, double> measured;
    for (StrategyKind s : {StrategyKind::kRandom, StrategyKind::kGrid,
                           StrategyKind::kOblivious, StrategyKind::kHdrf}) {
      measured[s] = Rf(*edges, s);
    }
    double best = measured.begin()->second;
    for (auto& [s, rf] : measured) best = std::min(best, rf);
    EXPECT_LE(measured[rec.primary()], best * 1.05)
        << "tree picked " << partition::StrategyName(rec.primary())
        << " for " << graph::GraphClassName(stats.classified);
  }
}

}  // namespace
}  // namespace gdp
