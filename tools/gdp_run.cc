// gdp-run: run a graph application over an edge list on the simulated
// cluster, either partitioning on the fly or reusing a saved placement
// from gdp-partition (the paper's §5.4.3 reuse workflow — note how the
// ingress line vanishes when a placement is supplied).
//
//   gdp-run <edge-list> <app> <engine> <strategy|@placement> <machines>
//
// Apps: pagerank, pagerank-conv, wcc, sssp, kcore, coloring, triangles.
// Engines: powergraph, powerlyra, graphx.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/triangle_count.h"
#include "graph/io.h"
#include "harness/experiment.h"
#include "partition/placement_io.h"

namespace {

using namespace gdp;

bool ParseApp(const std::string& name, harness::AppKind* app) {
  if (name == "pagerank") *app = harness::AppKind::kPageRankFixed;
  else if (name == "pagerank-conv") *app = harness::AppKind::kPageRankConvergent;
  else if (name == "wcc") *app = harness::AppKind::kWcc;
  else if (name == "sssp") *app = harness::AppKind::kSssp;
  else if (name == "kcore") *app = harness::AppKind::kKCore;
  else if (name == "coloring") *app = harness::AppKind::kColoring;
  else return false;
  return true;
}

bool ParseEngine(const std::string& name, engine::EngineKind* kind) {
  if (name == "powergraph") *kind = engine::EngineKind::kPowerGraphSync;
  else if (name == "powerlyra") *kind = engine::EngineKind::kPowerLyraHybrid;
  else if (name == "graphx") *kind = engine::EngineKind::kGraphXPregel;
  else return false;
  return true;
}

int RunFromPlacement(const graph::EdgeList& edges, const std::string& app,
                     engine::EngineKind kind, const std::string& path,
                     uint32_t machines) {
  auto placement = partition::LoadPlacement(path);
  if (!placement.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 placement.status().ToString().c_str());
    return 1;
  }
  auto dg = partition::ApplyPlacement(edges, placement.value());
  if (!dg.ok()) {
    std::fprintf(stderr, "error: %s\n", dg.status().ToString().c_str());
    return 1;
  }
  dg.value().num_machines = machines;
  sim::Cluster cluster(machines, sim::CostModel{});
  engine::RunOptions options;
  options.max_iterations = 1000;

  std::printf("placement reused from %s (no ingress phase)\n",
              path.c_str());
  if (app == "triangles") {
    apps::TriangleCountResult r =
        apps::CountTriangles(kind, dg.value(), cluster, options);
    std::printf("triangles: %llu\ncompute: %.4fs, network %.2f MB\n",
                static_cast<unsigned long long>(r.total_triangles),
                r.stats.compute_seconds, r.stats.network_bytes / 1e6);
    return 0;
  }
  std::fprintf(stderr,
               "error: placement mode supports app 'triangles' here; use "
               "strategy mode for the thesis apps\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 6) {
    std::fprintf(stderr,
                 "usage: %s <edge-list> <app> <engine> "
                 "<strategy|@placement-file> <machines>\n",
                 argv[0]);
    return 2;
  }
  auto loaded = graph::LoadEdgeList(argv[1]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  graph::EdgeList edges = std::move(loaded).value();

  engine::EngineKind kind;
  if (!ParseEngine(argv[3], &kind)) {
    std::fprintf(stderr, "error: unknown engine %s\n", argv[3]);
    return 1;
  }
  uint32_t machines = static_cast<uint32_t>(std::atoi(argv[5]));
  if (machines == 0) {
    std::fprintf(stderr, "error: machines must be > 0\n");
    return 1;
  }

  std::string target = argv[4];
  if (!target.empty() && target[0] == '@') {
    return RunFromPlacement(edges, argv[2], kind, target.substr(1),
                            machines);
  }

  auto strategy = partition::StrategyFromName(target);
  if (!strategy.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 strategy.status().ToString().c_str());
    return 1;
  }
  harness::AppKind app;
  if (!ParseApp(argv[2], &app)) {
    std::fprintf(stderr, "error: unknown app %s\n", argv[2]);
    return 1;
  }

  harness::ExperimentSpec spec;
  spec.engine = kind;
  spec.strategy = strategy.value();
  spec.num_machines = machines;
  spec.app = app;
  spec.max_iterations = 10;
  harness::ExperimentResult r = harness::RunExperiment(edges, spec);

  std::printf("%s / %s / %s on %u machines\n", argv[2], argv[3],
              partition::StrategyName(strategy.value()), machines);
  std::printf("replication factor: %.3f\n", r.replication_factor);
  std::printf("ingress:  %.4fs\n", r.ingress.ingress_seconds);
  std::printf("compute:  %.4fs (%u iterations%s)\n",
              r.compute.compute_seconds, r.compute.iterations,
              r.compute.converged ? ", converged" : "");
  std::printf("total:    %.4fs\n", r.total_seconds);
  std::printf("network:  %.2f MB\n", r.compute.network_bytes / 1e6);
  std::printf("peak mem: %.2f MB/machine (mean)\n",
              r.mean_peak_memory_bytes / 1e6);
  return 0;
}
