// gdp-advise: classify an edge list and print the paper's decision-tree
// recommendation for each system.
//
//   gdp-advise <edge-list> <machines> [compute-ingress-ratio] [natural01]

#include <cstdio>
#include <cstdlib>

#include "advisor/advisor.h"
#include "graph/graph_stats.h"
#include "graph/io.h"

int main(int argc, char** argv) {
  using namespace gdp;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <edge-list> <machines> "
                 "[compute-ingress-ratio=1] [natural01=1]\n",
                 argv[0]);
    return 2;
  }
  auto loaded = graph::LoadEdgeList(argv[1]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  graph::GraphStats stats = graph::ComputeGraphStats(loaded.value());
  advisor::Workload workload;
  workload.graph_class = stats.classified;
  workload.num_machines = static_cast<uint32_t>(std::atoi(argv[2]));
  workload.compute_ingress_ratio = argc > 3 ? std::atof(argv[3]) : 1.0;
  workload.natural_application = argc > 4 ? std::atoi(argv[4]) != 0 : true;

  std::printf("%s: |V|=%u |E|=%llu class=%s (alpha=%.2f, low-degree "
              "residual=%.2f)\n",
              argv[1], stats.num_vertices,
              static_cast<unsigned long long>(stats.num_edges),
              graph::GraphClassName(stats.classified),
              stats.power_law_alpha, stats.low_degree_residual);
  for (auto system : {advisor::System::kPowerGraph,
                      advisor::System::kPowerLyra,
                      advisor::System::kGraphX}) {
    advisor::Recommendation rec = advisor::Recommend(system, workload);
    std::printf("%-10s -> %-10s  [%s]\n", advisor::SystemName(system),
                partition::StrategyName(rec.primary()),
                rec.rationale.c_str());
  }
  return 0;
}
