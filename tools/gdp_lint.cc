// gdp_lint: source-level project linter (line/token based, no libclang).
//
// Usage: gdp_lint <repo-root>
//
// Scans src/, tools/, bench/, tests/, and examples/ for violations of the
// project rules and prints one "path:line: [rule] message" per finding;
// exits non-zero when anything is found. Registered as a ctest test so the
// rules run on every `ctest` invocation (see tools/CMakeLists.txt and
// tools/check.sh).
//
// Rules:
//   no-rand        src/ only: no rand()/srand() — library code must use
//                  util/random.h so experiments stay seed-reproducible.
//   no-cout        src/ only: no std::cout — library code reports through
//                  return values or GDP_LOG, never by printing.
//   no-naked-new   everywhere: `new` must be wrapped in a smart pointer
//                  within the same statement (make_unique/unique_ptr/
//                  shared_ptr) or carry a NOLINT comment.
//   no-include-cc  everywhere: never #include a .cc file.
//   header-guard   every .h must have #pragma once or an #ifndef guard.
//   status-discard everywhere: a call to a function returning Status /
//                  StatusOr must not stand alone as a statement (and must
//                  not be (void)-cast). [[nodiscard]] catches most of this
//                  at compile time; the lint also catches the (void) cast
//                  that silences the compiler.
//   obs-doc        src/obs/*.h only: every public declaration (free
//                  function, type, constant, public member, public field)
//                  must carry a `///` doc comment on the preceding line.
//                  The observability layer is the project's instrumentation
//                  API surface; undocumented knobs there rot fastest.
//                  Defaulted/deleted members and destructors are exempt.
//
// Comment and string contents are stripped before matching, so prose and
// literals never trigger findings.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

struct FileText {
  fs::path path;
  std::string rel;                    // path relative to the repo root
  std::vector<std::string> raw;       // original lines
  std::vector<std::string> stripped;  // comments and string literals blanked
};

/// Blanks comments, string literals, and char literals, preserving line
/// structure so findings carry real line numbers. `in_block` carries the
/// /* ... */ state across lines.
std::string StripLine(const std::string& line, bool& in_block) {
  std::string out;
  out.reserve(line.size());
  for (size_t i = 0; i < line.size(); ++i) {
    if (in_block) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block = false;
        ++i;
      }
      continue;
    }
    char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block = true;
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      out.push_back(quote);
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          i += 2;
          continue;
        }
        if (line[i] == quote) break;
        ++i;
      }
      out.push_back(quote);
      continue;
    }
    out.push_back(c);
  }
  return out;
}

FileText LoadFile(const fs::path& path, const fs::path& root) {
  FileText f;
  f.path = path;
  f.rel = fs::relative(path, root).string();
  std::ifstream in(path);
  std::string line;
  bool in_block = false;
  while (std::getline(in, line)) {
    f.raw.push_back(line);
    f.stripped.push_back(StripLine(line, in_block));
  }
  return f;
}

bool HasNolint(const std::string& raw_line) {
  return raw_line.find("NOLINT") != std::string::npos;
}

bool InDir(const FileText& f, const char* dir) {
  return f.rel.rfind(std::string(dir) + "/", 0) == 0;
}

/// Collects names of functions declared or defined to return Status or
/// StatusOr<...>, for the status-discard rule. Factory members declared in
/// util/status.h itself (Ok, InvalidArgument, ...) are excluded: they
/// produce a Status the caller is about to use, and their call sites are
/// the return statements the other patterns already cover.
std::set<std::string> CollectStatusFunctions(
    const std::vector<FileText>& files) {
  static const std::regex kDecl(
      R"((?:util::)?Status(?:Or<[^;{]*>)?\s+(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\()");
  std::set<std::string> names;
  for (const FileText& f : files) {
    if (f.rel == "src/util/status.h") continue;
    for (const std::string& line : f.stripped) {
      for (std::sregex_iterator it(line.begin(), line.end(), kDecl), end;
           it != end; ++it) {
        names.insert((*it)[1].str());
      }
    }
  }
  return names;
}

void CheckHeaderGuard(const FileText& f, std::vector<Finding>& findings) {
  if (f.path.extension() != ".h") return;
  for (const std::string& line : f.stripped) {
    if (line.find("#pragma once") != std::string::npos) return;
    if (line.find("#ifndef") != std::string::npos) return;
    // Any other preprocessor directive or code before the guard means the
    // guard is missing or too late to protect anything.
    std::string trimmed = line.substr(line.find_first_not_of(" \t") ==
                                              std::string::npos
                                          ? line.size()
                                          : line.find_first_not_of(" \t"));
    if (!trimmed.empty()) break;
  }
  findings.push_back({f.rel, 1, "header-guard",
                      "header has no #pragma once or #ifndef include guard"});
}

/// obs-doc: in src/obs/ headers, every public declaration must carry a `///`
/// doc comment on the line above it. The scan is indentation-based: type,
/// free-function, and constant declarations sit at column 0; public members
/// sit at a 2-space indent inside a `public:` (or struct) section.
/// Continuation lines of multi-line signatures are indented deeper and never
/// match, so only the first line of a declaration is checked.
void CheckObsDocs(const FileText& f, std::vector<Finding>& findings) {
  if (f.path.extension() != ".h" || f.rel.rfind("src/obs/", 0) != 0) return;
  // Namespace-scope declarations.
  static const std::regex kTopType(
      R"(^(?:class|struct|enum(?:\s+class)?)\s+[A-Za-z_])");
  static const std::regex kForwardDecl(R"(^(?:class|struct)\s+\w+\s*;)");
  static const std::regex kTopFn(
      R"(^[A-Za-z_][\w:<>,&*\s]*\s[A-Za-z_]\w*\s*\()");
  static const std::regex kTopConst(R"(^(?:inline\s+)?constexpr\b)");
  // Class-scope members: exactly 2 spaces of indent, then a declaration.
  static const std::regex kMember(
      R"(^\s{2}(?!public\b|private\b|protected\b)[A-Za-z_~].*[({;])");
  static const std::regex kDtor(R"(^\s*~)");

  bool member_scope_public = false;  // inside a class/struct public section
  for (size_t i = 0; i < f.stripped.size(); ++i) {
    const std::string& line = f.stripped[i];
    const size_t lineno = i + 1;

    // Track public/private state for the 2-space-indent member scan.
    if (std::regex_search(line, kTopType) &&
        !std::regex_search(line, kForwardDecl)) {
      member_scope_public = line.rfind("class", 0) != 0;  // struct => public
    }
    if (line.find("public:") != std::string::npos) member_scope_public = true;
    if (line.find("private:") != std::string::npos ||
        line.find("protected:") != std::string::npos) {
      member_scope_public = false;
    }
    if (line.rfind("};", 0) == 0) member_scope_public = false;

    if (HasNolint(f.raw[i])) continue;
    // Defaulted/deleted members, destructors, and friend declarations need
    // no prose; their meaning is their spelling.
    if (line.find("= delete") != std::string::npos ||
        line.find("= default") != std::string::npos ||
        line.find("friend ") != std::string::npos ||
        std::regex_search(line, kDtor)) {
      continue;
    }

    bool is_decl = false;
    if (std::regex_search(line, kTopType) &&
        !std::regex_search(line, kForwardDecl)) {
      is_decl = true;
    } else if (std::regex_search(line, kTopFn) ||
               std::regex_search(line, kTopConst)) {
      is_decl = true;
    } else if (member_scope_public && std::regex_search(line, kMember)) {
      is_decl = true;
    }
    if (!is_decl) continue;

    const bool documented =
        i > 0 && f.raw[i - 1].find("///") != std::string::npos;
    if (!documented) {
      findings.push_back(
          {f.rel, lineno, "obs-doc",
           "public declaration in src/obs/ lacks a /// doc comment on the "
           "preceding line"});
    }
  }
}

void CheckLines(const FileText& f, const std::set<std::string>& status_fns,
                std::vector<Finding>& findings) {
  static const std::regex kRand(R"(\b(?:std::)?s?rand\s*\()");
  static const std::regex kCout(R"(\bstd::cout\b)");
  static const std::regex kNew(R"(\bnew\b\s*[A-Za-z_(<])");
  // Matched against the RAW line: the include path is a string literal,
  // which stripping would blank.
  static const std::regex kIncludeCc(R"(^\s*#\s*include\s*[<"][^">]*\.cc[">])");
  static const std::regex kBareCall(
      R"(^\s*(?:\(\s*void\s*\)\s*)?(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\()");
  const bool in_src = InDir(f, "src");

  // Statement buffer for no-naked-new: text since the last ; { or },
  // so `unique_ptr<T>(\n    new T(...))` split across lines still passes.
  std::string statement;

  for (size_t i = 0; i < f.stripped.size(); ++i) {
    const std::string& line = f.stripped[i];
    const size_t lineno = i + 1;
    const bool nolint = HasNolint(f.raw[i]);

    if (in_src && !nolint && std::regex_search(line, kRand)) {
      findings.push_back({f.rel, lineno, "no-rand",
                          "rand()/srand() in library code; use util/random.h "
                          "so runs stay seed-reproducible"});
    }
    if (in_src && !nolint && std::regex_search(line, kCout)) {
      findings.push_back({f.rel, lineno, "no-cout",
                          "std::cout in library code; return values or use "
                          "GDP_LOG"});
    }
    if (!nolint && std::regex_search(f.raw[i], kIncludeCc)) {
      findings.push_back(
          {f.rel, lineno, "no-include-cc", "#include of a .cc file"});
    }

    if (!nolint && std::regex_search(line, kNew)) {
      std::string context = statement + line;
      if (context.find("unique_ptr") == std::string::npos &&
          context.find("shared_ptr") == std::string::npos &&
          context.find("make_unique") == std::string::npos &&
          context.find("make_shared") == std::string::npos) {
        findings.push_back({f.rel, lineno, "no-naked-new",
                            "naked new; use std::make_unique or wrap in a "
                            "smart pointer in the same statement"});
      }
    }

    const bool starts_statement =
        statement.find_first_not_of(" \t") == std::string::npos;
    if (!nolint && starts_statement && f.path.extension() != ".h") {
      std::smatch m;
      if (std::regex_search(line, m, kBareCall) &&
          status_fns.count(m[1].str()) != 0 &&
          line.find('=') == std::string::npos) {
        // A call statement `Foo(...);` (possibly (void)-cast) whose callee
        // returns Status/StatusOr, with no assignment on the line: the
        // result is discarded.
        findings.push_back(
            {f.rel, lineno, "status-discard",
             "result of Status-returning call '" + m[1].str() +
                 "' is discarded; check it, propagate it with "
                 "GDP_RETURN_IF_ERROR, or assert with GDP_CHECK_OK"});
      }
    }

    // Update the statement buffer.
    size_t cut = line.find_last_of(";{}");
    if (cut == std::string::npos) {
      statement += line + " ";
    } else {
      statement = line.substr(cut + 1) + " ";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <repo-root>\n", argv[0]);
    return 2;
  }
  const fs::path root(argv[1]);
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "gdp_lint: not a directory: %s\n", argv[1]);
    return 2;
  }

  std::vector<FileText> files;
  for (const char* dir : {"src", "tools", "bench", "tests", "examples"}) {
    const fs::path sub = root / dir;
    if (!fs::is_directory(sub)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(sub)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& p = entry.path();
      if (p.extension() == ".h" || p.extension() == ".cc" ||
          p.extension() == ".cpp") {
        files.push_back(LoadFile(p, root));
      }
    }
  }

  const std::set<std::string> status_fns = CollectStatusFunctions(files);

  std::vector<Finding> findings;
  for (const FileText& f : files) {
    CheckHeaderGuard(f, findings);
    CheckObsDocs(f, findings);
    CheckLines(f, status_fns, findings);
  }

  for (const Finding& x : findings) {
    std::printf("%s:%zu: [%s] %s\n", x.file.c_str(), x.line, x.rule.c_str(),
                x.message.c_str());
  }
  if (!findings.empty()) {
    std::printf("gdp_lint: %zu finding(s) in %zu files scanned\n",
                findings.size(), files.size());
    return 1;
  }
  std::printf("gdp_lint: clean (%zu files scanned)\n", files.size());
  return 0;
}
