// gdp_lint: source-level project linter (line/token based, no libclang).
//
// Usage: gdp_lint <repo-root>
//
// Scans src/, tools/, bench/, tests/, and examples/ for violations of the
// project rules and prints one "path:line: [rule] message" per finding;
// exits non-zero when anything is found. Registered as a ctest test so the
// rules run on every `ctest` invocation (see tools/CMakeLists.txt and
// tools/check.sh).
//
// Rules:
//   no-rand        src/ only: no rand()/srand() — library code must use
//                  util/random.h so experiments stay seed-reproducible.
//   no-cout        src/ only: no std::cout — library code reports through
//                  return values or GDP_LOG, never by printing.
//   no-naked-new   everywhere: `new` must be wrapped in a smart pointer
//                  within the same statement (make_unique/unique_ptr/
//                  shared_ptr) or carry a NOLINT comment.
//   no-include-cc  everywhere: never #include a .cc file.
//   header-guard   every .h must have #pragma once or an #ifndef guard.
//   status-discard everywhere: a call to a function returning Status /
//                  StatusOr must not stand alone as a statement (and must
//                  not be (void)-cast). [[nodiscard]] catches most of this
//                  at compile time; the lint also catches the (void) cast
//                  that silences the compiler.
//   obs-doc        src/obs/*.h only: every public declaration (free
//                  function, type, constant, public member, public field)
//                  must carry a `///` doc comment on the preceding line.
//                  The observability layer is the project's instrumentation
//                  API surface; undocumented knobs there rot fastest.
//                  Defaulted/deleted members and destructors are exempt.
//
// Determinism-contract rules (the simulated-cost determinism contract,
// DESIGN.md sections 7-8 and 11):
//   no-wall-clock  src/ except src/obs/: no steady_clock/system_clock/
//                  high_resolution_clock::now(), time(), gettimeofday(), or
//                  clock(). Wall time must never feed simulated results;
//                  the sanctioned wall-clock fields live in the trace layer
//                  (src/obs/) and bench/ timing is out of scope.
//   no-float-accumulate
//                  src/sim/ and the ingress cost-accounting paths
//                  (src/partition/ingest*, src/partition/partitioner*): no
//                  `+=` into a float/double *member* (trailing-underscore
//                  name declared float/double in the file or its companion
//                  header). Cross-phase cost state must accumulate in
//                  integer ticks/bytes; float folds are order-sensitive, so
//                  parallel schedules would produce different bits. Serial
//                  reductions at barrier points carry NOLINT justifications.
//   no-unordered-iteration
//                  src/ only: no range-for over a std::unordered_map/set
//                  declared in the same file. Hash-table iteration order is
//                  implementation-defined; anything it feeds (simulated
//                  costs, generated graphs, exported tables) loses
//                  cross-platform reproducibility. Iterate a sorted or
//                  insertion-ordered mirror instead.
//   mutex-annotated
//                  src/ only: every std::mutex / util::Mutex member must be
//                  referenced by at least one GDP_GUARDED_BY /
//                  GDP_PT_GUARDED_BY in the same file, so Clang thread
//                  safety analysis (util/thread_annotations.h) has a
//                  capability to check. A mutex guarding nothing it can
//                  name (e.g. an external stream) carries a NOLINT.
//   no-per-edge-accounting
//                  src/engine/ only: no AddWorkUnits call indexed by a
//                  per-entry machine array (`..._machine[...]`) — that
//                  shape charges the accumulator once per adjacency entry
//                  in the engines' innermost CSR loops. The plan's
//                  per-vertex (machine, count) run tables charge the same
//                  integer quarter-units with one call per distinct
//                  machine, bit-identically (integer sums are order-free).
//                  The preserved KernelMode::kPerEdge baseline kernels
//                  carry NOLINT justifications.
//
// Comment and string contents — including raw string literals R"(...)" —
// are stripped before matching, so prose and literals never trigger
// findings.

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

struct FileText {
  fs::path path;
  std::string rel;                    // path relative to the repo root
  std::vector<std::string> raw;       // original lines
  std::vector<std::string> stripped;  // comments and string literals blanked
};

/// Cross-line lexer state for StripLine: the /* ... */ block-comment flag
/// and, when inside a raw string literal, the `)delim"` terminator being
/// waited for (raw strings may span lines and may contain quotes).
struct StripState {
  bool in_block = false;
  std::string raw_end;
};

/// Blanks comments, string literals (including raw strings), and char
/// literals, preserving line structure so findings carry real line numbers.
std::string StripLine(const std::string& line, StripState& state) {
  std::string out;
  out.reserve(line.size());
  size_t start = 0;
  if (!state.raw_end.empty()) {
    const size_t end = line.find(state.raw_end);
    if (end == std::string::npos) return out;  // still inside the raw string
    start = end + state.raw_end.size();
    state.raw_end.clear();
    out.push_back('"');  // closes the quote emitted at the opening R"
  }
  for (size_t i = start; i < line.size(); ++i) {
    if (state.in_block) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        state.in_block = false;
        ++i;
      }
      continue;
    }
    char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      state.in_block = true;
      ++i;
      continue;
    }
    // Raw string literal R"delim( ... )delim": no escape processing, may
    // contain quotes, may span lines. The leading R must not be the tail of
    // an identifier.
    if (c == 'R' && i + 1 < line.size() && line[i + 1] == '"' &&
        (i == 0 || (!std::isalnum(static_cast<unsigned char>(line[i - 1])) &&
                    line[i - 1] != '_'))) {
      const size_t open = line.find('(', i + 2);
      if (open != std::string::npos) {
        const std::string closer =
            ")" + line.substr(i + 2, open - (i + 2)) + "\"";
        out.push_back('"');
        const size_t end = line.find(closer, open + 1);
        if (end == std::string::npos) {
          state.raw_end = closer;
          return out;
        }
        out.push_back('"');
        i = end + closer.size() - 1;
        continue;
      }
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      out.push_back(quote);
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          i += 2;
          continue;
        }
        if (line[i] == quote) break;
        ++i;
      }
      out.push_back(quote);
      continue;
    }
    out.push_back(c);
  }
  return out;
}

FileText LoadFile(const fs::path& path, const fs::path& root) {
  FileText f;
  f.path = path;
  f.rel = fs::relative(path, root).string();
  std::ifstream in(path);
  std::string line;
  StripState state;
  while (std::getline(in, line)) {
    f.raw.push_back(line);
    f.stripped.push_back(StripLine(line, state));
  }
  return f;
}

bool HasNolint(const std::string& raw_line) {
  return raw_line.find("NOLINT") != std::string::npos;
}

bool InDir(const FileText& f, const char* dir) {
  return f.rel.rfind(std::string(dir) + "/", 0) == 0;
}

/// Collects names of functions declared or defined to return Status or
/// StatusOr<...>, for the status-discard rule. Factory members declared in
/// util/status.h itself (Ok, InvalidArgument, ...) are excluded: they
/// produce a Status the caller is about to use, and their call sites are
/// the return statements the other patterns already cover.
std::set<std::string> CollectStatusFunctions(
    const std::vector<FileText>& files) {
  static const std::regex kDecl(
      R"((?:util::)?Status(?:Or<[^;{]*>)?\s+(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\()");
  std::set<std::string> names;
  for (const FileText& f : files) {
    if (f.rel == "src/util/status.h") continue;
    for (const std::string& line : f.stripped) {
      for (std::sregex_iterator it(line.begin(), line.end(), kDecl), end;
           it != end; ++it) {
        names.insert((*it)[1].str());
      }
    }
  }
  return names;
}

void CheckHeaderGuard(const FileText& f, std::vector<Finding>& findings) {
  if (f.path.extension() != ".h") return;
  for (const std::string& line : f.stripped) {
    if (line.find("#pragma once") != std::string::npos) return;
    if (line.find("#ifndef") != std::string::npos) return;
    // Any other preprocessor directive or code before the guard means the
    // guard is missing or too late to protect anything.
    std::string trimmed = line.substr(line.find_first_not_of(" \t") ==
                                              std::string::npos
                                          ? line.size()
                                          : line.find_first_not_of(" \t"));
    if (!trimmed.empty()) break;
  }
  findings.push_back({f.rel, 1, "header-guard",
                      "header has no #pragma once or #ifndef include guard"});
}

/// obs-doc: in src/obs/ headers, every public declaration must carry a `///`
/// doc comment on the line above it. The scan is indentation-based: type,
/// free-function, and constant declarations sit at column 0; public members
/// sit at a 2-space indent inside a `public:` (or struct) section.
/// Continuation lines of multi-line signatures are indented deeper and never
/// match, so only the first line of a declaration is checked.
void CheckObsDocs(const FileText& f, std::vector<Finding>& findings) {
  if (f.path.extension() != ".h" || f.rel.rfind("src/obs/", 0) != 0) return;
  // Namespace-scope declarations.
  static const std::regex kTopType(
      R"(^(?:class|struct|enum(?:\s+class)?)\s+[A-Za-z_])");
  static const std::regex kForwardDecl(R"(^(?:class|struct)\s+\w+\s*;)");
  static const std::regex kTopFn(
      R"(^[A-Za-z_][\w:<>,&*\s]*\s[A-Za-z_]\w*\s*\()");
  static const std::regex kTopConst(R"(^(?:inline\s+)?constexpr\b)");
  // Class-scope members: exactly 2 spaces of indent, then a declaration.
  static const std::regex kMember(
      R"(^\s{2}(?!public\b|private\b|protected\b)[A-Za-z_~].*[({;])");
  static const std::regex kDtor(R"(^\s*~)");

  bool member_scope_public = false;  // inside a class/struct public section
  for (size_t i = 0; i < f.stripped.size(); ++i) {
    const std::string& line = f.stripped[i];
    const size_t lineno = i + 1;

    // Track public/private state for the 2-space-indent member scan.
    if (std::regex_search(line, kTopType) &&
        !std::regex_search(line, kForwardDecl)) {
      member_scope_public = line.rfind("class", 0) != 0;  // struct => public
    }
    if (line.find("public:") != std::string::npos) member_scope_public = true;
    if (line.find("private:") != std::string::npos ||
        line.find("protected:") != std::string::npos) {
      member_scope_public = false;
    }
    if (line.rfind("};", 0) == 0) member_scope_public = false;

    if (HasNolint(f.raw[i])) continue;
    // Defaulted/deleted members, destructors, and friend declarations need
    // no prose; their meaning is their spelling.
    if (line.find("= delete") != std::string::npos ||
        line.find("= default") != std::string::npos ||
        line.find("friend ") != std::string::npos ||
        std::regex_search(line, kDtor)) {
      continue;
    }

    bool is_decl = false;
    if (std::regex_search(line, kTopType) &&
        !std::regex_search(line, kForwardDecl)) {
      is_decl = true;
    } else if (std::regex_search(line, kTopFn) ||
               std::regex_search(line, kTopConst)) {
      is_decl = true;
    } else if (member_scope_public && std::regex_search(line, kMember)) {
      is_decl = true;
    }
    if (!is_decl) continue;

    const bool documented =
        i > 0 && f.raw[i - 1].find("///") != std::string::npos;
    if (!documented) {
      findings.push_back(
          {f.rel, lineno, "obs-doc",
           "public declaration in src/obs/ lacks a /// doc comment on the "
           "preceding line"});
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism-contract rules.
// ---------------------------------------------------------------------------

/// no-wall-clock: wall time must never feed simulated results. The trace
/// layer (src/obs/) is the one sanctioned consumer — it stamps wall-clock
/// span fields that are documented as non-simulated — and bench/ timing is
/// outside the rule's scope entirely.
void CheckWallClock(const FileText& f, std::vector<Finding>& findings) {
  if (!InDir(f, "src") || f.rel.rfind("src/obs/", 0) == 0) return;
  static const std::regex kClock(
      R"(\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\()"
      R"(|\btime\s*\(\s*(?:nullptr|NULL|0)?\s*\))"
      R"(|\bgettimeofday\s*\()"
      R"(|\bclock\s*\(\s*\))");
  for (size_t i = 0; i < f.stripped.size(); ++i) {
    if (HasNolint(f.raw[i])) continue;
    if (std::regex_search(f.stripped[i], kClock)) {
      findings.push_back(
          {f.rel, i + 1, "no-wall-clock",
           "wall-clock read in library code; simulated results must be a "
           "pure function of inputs (wall time lives only in src/obs/ span "
           "fields and bench/ harness timing)"});
    }
  }
}

/// Names of float/double members (trailing-underscore identifiers) declared
/// in `f`, for no-float-accumulate. Members are the cross-phase accumulator
/// state the determinism contract cares about; function-local reductions at
/// barrier/query points are serial by construction and stay out of scope.
std::set<std::string> CollectFloatMembers(const FileText& f) {
  static const std::regex kDecl(
      R"(\b(?:float|double|std::vector<\s*(?:float|double)\s*>)\s+(\w*_)\s*[;={])");
  std::set<std::string> names;
  for (const std::string& line : f.stripped) {
    for (std::sregex_iterator it(line.begin(), line.end(), kDecl), end;
         it != end; ++it) {
      names.insert((*it)[1].str());
    }
  }
  return names;
}

bool InIngressAccounting(const FileText& f) {
  return InDir(f, "src/sim") ||
         f.rel.rfind("src/partition/ingest", 0) == 0 ||
         f.rel.rfind("src/partition/partitioner", 0) == 0;
}

/// no-float-accumulate: `+=` into a float/double member inside the
/// simulated-cost accounting paths. Parallel schedules fold partial sums in
/// different orders, and float addition is not associative — integer
/// ticks/bytes (sim::PhaseAccumulator) are the determinism backbone.
/// `float_members` is the union of the file's own declarations and its
/// companion header's (cluster.cc accumulates members declared in
/// cluster.h).
void CheckFloatAccumulate(const FileText& f,
                          const std::set<std::string>& float_members,
                          std::vector<Finding>& findings) {
  if (!InIngressAccounting(f)) return;
  static const std::regex kAccum(R"((\w+_)\s*(?:\[[^\]]*\]\s*)?\+=)");
  for (size_t i = 0; i < f.stripped.size(); ++i) {
    if (HasNolint(f.raw[i])) continue;
    const std::string& line = f.stripped[i];
    for (std::sregex_iterator it(line.begin(), line.end(), kAccum), end;
         it != end; ++it) {
      if (float_members.count((*it)[1].str()) == 0) continue;
      findings.push_back(
          {f.rel, i + 1, "no-float-accumulate",
           "float/double accumulation into member '" + (*it)[1].str() +
               "' in simulated-cost accounting; accumulate integer "
               "ticks/bytes (or NOLINT a serial barrier-point reduction)"});
    }
  }
}

/// no-unordered-iteration: range-for over a hash container declared in the
/// same file. Iteration order is implementation-defined, so anything the
/// loop feeds — simulated costs, generated graphs, exported tables — stops
/// being reproducible across standard libraries.
void CheckUnorderedIteration(const FileText& f,
                             std::vector<Finding>& findings) {
  if (!InDir(f, "src")) return;
  static const std::regex kDecl(
      R"(\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;]*>\s+(\w+)\s*[;({=])");
  std::set<std::string> containers;
  for (const std::string& line : f.stripped) {
    for (std::sregex_iterator it(line.begin(), line.end(), kDecl), end;
         it != end; ++it) {
      containers.insert((*it)[1].str());
    }
  }
  if (containers.empty()) return;
  static const std::regex kRangeFor(R"(\bfor\s*\([^;)]*:\s*(\w+)\s*\))");
  for (size_t i = 0; i < f.stripped.size(); ++i) {
    if (HasNolint(f.raw[i])) continue;
    std::smatch m;
    if (std::regex_search(f.stripped[i], m, kRangeFor) &&
        containers.count(m[1].str()) != 0) {
      findings.push_back(
          {f.rel, i + 1, "no-unordered-iteration",
           "range-for over unordered container '" + m[1].str() +
               "'; hash iteration order is implementation-defined — iterate "
               "a sorted or insertion-ordered mirror instead"});
    }
  }
}

/// mutex-annotated: every mutex member in src/ must back at least one
/// GDP_GUARDED_BY / GDP_PT_GUARDED_BY in the same file, so the Clang
/// thread-safety leg has a capability to check and readers can see what the
/// lock protects. util::MutexLock declarations do not match (the regex
/// requires whitespace after the type).
void CheckMutexAnnotated(const FileText& f, std::vector<Finding>& findings) {
  if (!InDir(f, "src")) return;
  static const std::regex kDecl(R"(\b(?:std::mutex|(?:util::)?Mutex)\s+(\w+)\s*[;={])");
  for (size_t i = 0; i < f.stripped.size(); ++i) {
    if (HasNolint(f.raw[i])) continue;
    std::smatch m;
    if (!std::regex_search(f.stripped[i], m, kDecl)) continue;
    const std::string name = m[1].str();
    bool annotated = false;
    for (const std::string& line : f.stripped) {
      if (line.find("GDP_GUARDED_BY(" + name + ")") != std::string::npos ||
          line.find("GDP_PT_GUARDED_BY(" + name + ")") != std::string::npos) {
        annotated = true;
        break;
      }
    }
    if (!annotated) {
      findings.push_back(
          {f.rel, i + 1, "mutex-annotated",
           "mutex '" + name +
               "' has no GDP_GUARDED_BY/GDP_PT_GUARDED_BY referencing it; "
               "annotate the state it guards (util/thread_annotations.h) or "
               "NOLINT with a justification"});
    }
  }
}

/// no-per-edge-accounting: an AddWorkUnits call whose machine argument
/// indexes a per-entry machine array is a per-adjacency-entry charge — the
/// shape the batched run-table kernels replaced. Advisory: integer charges
/// are order-free, so batching per vertex is bit-identical; deliberate
/// per-edge baselines (KernelMode::kPerEdge) carry NOLINT.
void CheckPerEdgeAccounting(const FileText& f,
                            std::vector<Finding>& findings) {
  if (!InDir(f, "src/engine")) return;
  static const std::regex kPerEdge(
      R"(\bAddWorkUnits\s*\([^;]*_machine\s*\[)");
  for (size_t i = 0; i < f.stripped.size(); ++i) {
    if (HasNolint(f.raw[i])) continue;
    if (std::regex_search(f.stripped[i], kPerEdge)) {
      findings.push_back(
          {f.rel, i + 1, "no-per-edge-accounting",
           "AddWorkUnits charged per adjacency entry (per-entry machine "
           "index); batch through the plan's (machine, count) run tables — "
           "integer charges are order-free, so batching is bit-identical — "
           "or NOLINT a deliberate per-edge baseline"});
    }
  }
}

void CheckLines(const FileText& f, const std::set<std::string>& status_fns,
                std::vector<Finding>& findings) {
  static const std::regex kRand(R"(\b(?:std::)?s?rand\s*\()");
  static const std::regex kCout(R"(\bstd::cout\b)");
  static const std::regex kNew(R"(\bnew\b\s*[A-Za-z_(<])");
  // Matched against the RAW line: the include path is a string literal,
  // which stripping would blank.
  static const std::regex kIncludeCc(R"(^\s*#\s*include\s*[<"][^">]*\.cc[">])");
  static const std::regex kBareCall(
      R"(^\s*(?:\(\s*void\s*\)\s*)?(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\()");
  const bool in_src = InDir(f, "src");

  // Statement buffer for no-naked-new: text since the last ; { or },
  // so `unique_ptr<T>(\n    new T(...))` split across lines still passes.
  std::string statement;

  for (size_t i = 0; i < f.stripped.size(); ++i) {
    const std::string& line = f.stripped[i];
    const size_t lineno = i + 1;
    const bool nolint = HasNolint(f.raw[i]);

    if (in_src && !nolint && std::regex_search(line, kRand)) {
      findings.push_back({f.rel, lineno, "no-rand",
                          "rand()/srand() in library code; use util/random.h "
                          "so runs stay seed-reproducible"});
    }
    if (in_src && !nolint && std::regex_search(line, kCout)) {
      findings.push_back({f.rel, lineno, "no-cout",
                          "std::cout in library code; return values or use "
                          "GDP_LOG"});
    }
    if (!nolint && std::regex_search(f.raw[i], kIncludeCc)) {
      findings.push_back(
          {f.rel, lineno, "no-include-cc", "#include of a .cc file"});
    }

    if (!nolint && std::regex_search(line, kNew)) {
      std::string context = statement + line;
      if (context.find("unique_ptr") == std::string::npos &&
          context.find("shared_ptr") == std::string::npos &&
          context.find("make_unique") == std::string::npos &&
          context.find("make_shared") == std::string::npos) {
        findings.push_back({f.rel, lineno, "no-naked-new",
                            "naked new; use std::make_unique or wrap in a "
                            "smart pointer in the same statement"});
      }
    }

    const bool starts_statement =
        statement.find_first_not_of(" \t") == std::string::npos;
    if (!nolint && starts_statement && f.path.extension() != ".h") {
      std::smatch m;
      if (std::regex_search(line, m, kBareCall) &&
          status_fns.count(m[1].str()) != 0 &&
          line.find('=') == std::string::npos) {
        // A call statement `Foo(...);` (possibly (void)-cast) whose callee
        // returns Status/StatusOr, with no assignment on the line: the
        // result is discarded.
        findings.push_back(
            {f.rel, lineno, "status-discard",
             "result of Status-returning call '" + m[1].str() +
                 "' is discarded; check it, propagate it with "
                 "GDP_RETURN_IF_ERROR, or assert with GDP_CHECK_OK"});
      }
    }

    // Update the statement buffer.
    size_t cut = line.find_last_of(";{}");
    if (cut == std::string::npos) {
      statement += line + " ";
    } else {
      statement = line.substr(cut + 1) + " ";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <repo-root>\n", argv[0]);
    return 2;
  }
  const fs::path root(argv[1]);
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "gdp_lint: not a directory: %s\n", argv[1]);
    return 2;
  }

  std::vector<FileText> files;
  for (const char* dir : {"src", "tools", "bench", "tests", "examples"}) {
    const fs::path sub = root / dir;
    if (!fs::is_directory(sub)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(sub)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& p = entry.path();
      if (p.extension() == ".h" || p.extension() == ".cc" ||
          p.extension() == ".cpp") {
        files.push_back(LoadFile(p, root));
      }
    }
  }

  const std::set<std::string> status_fns = CollectStatusFunctions(files);

  // Per-file float-member sets, unioned with the companion header's for .cc
  // files (cluster.cc accumulates into members declared in cluster.h).
  std::map<std::string, std::set<std::string>> float_members;
  for (const FileText& f : files) float_members[f.rel] = CollectFloatMembers(f);

  std::vector<Finding> findings;
  for (const FileText& f : files) {
    CheckHeaderGuard(f, findings);
    CheckObsDocs(f, findings);
    CheckWallClock(f, findings);
    std::set<std::string> floats = float_members[f.rel];
    if (f.path.extension() != ".h") {
      const std::string header_rel =
          fs::path(f.rel).replace_extension(".h").generic_string();
      auto it = float_members.find(header_rel);
      if (it != float_members.end()) {
        floats.insert(it->second.begin(), it->second.end());
      }
    }
    CheckFloatAccumulate(f, floats, findings);
    CheckUnorderedIteration(f, findings);
    CheckMutexAnnotated(f, findings);
    CheckPerEdgeAccounting(f, findings);
    CheckLines(f, status_fns, findings);
  }

  for (const Finding& x : findings) {
    std::printf("%s:%zu: [%s] %s\n", x.file.c_str(), x.line, x.rule.c_str(),
                x.message.c_str());
  }
  if (!findings.empty()) {
    std::printf("gdp_lint: %zu finding(s) in %zu files scanned\n",
                findings.size(), files.size());
    return 1;
  }
  std::printf("gdp_lint: clean (%zu files scanned)\n", files.size());
  return 0;
}
