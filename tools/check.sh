#!/usr/bin/env bash
# tools/check.sh — the repo's tier-1+ correctness gate.
#
# Runs, in order, failing fast with a non-zero exit on the first problem:
#   1. plain build (RelWithDebInfo, -Wall -Wextra -Werror) + full ctest
#      suite, which includes the gdp_lint source linter;
#   2. ASan+UBSan build (Debug, so GDP_DCHECK and the structural validators
#      in src/partition/validate.h are live) + full ctest suite, failing on
#      any sanitizer report (halt_on_error).
#
# Usage: tools/check.sh [--quick]
#   --quick  plain leg only (the seed tier-1 contract) — no sanitizer leg.
#
# Build trees: build-check/ (plain) and build-asan/ (sanitized), kept apart
# from the developer's build/ so the gate never clobbers a working tree.

set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
JOBS="$(nproc 2>/dev/null || echo 4)"
QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

run_leg() {
  local name="$1" dir="$2"
  shift 2
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S "$ROOT" "$@" >"$dir.configure.log" 2>&1 || {
    cat "$dir.configure.log"
    echo "check.sh: [$name] configure FAILED" >&2
    return 1
  }
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$JOBS" >"$dir.build.log" 2>&1 || {
    tail -50 "$dir.build.log"
    echo "check.sh: [$name] build FAILED" >&2
    return 1
  }
  echo "=== [$name] ctest ==="
  (cd "$dir" && ctest --output-on-failure -j "$JOBS") || {
    echo "check.sh: [$name] tests FAILED" >&2
    return 1
  }
}

# Leg 1: plain build + tests (includes the gdp_lint ctest test). -Werror
# promotes the [[nodiscard]] Status discards to hard errors.
run_leg "plain" "$ROOT/build-check" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS=-Werror

if [[ "$QUICK" == "1" ]]; then
  echo "check.sh: quick gate PASSED (plain build + ctest + lint)"
  exit 0
fi

# Leg 2: ASan + UBSan, Debug so NDEBUG is off and the structural validators
# (GDP_DCHECK_OK(ValidateDistributedGraph) in the harness and GAS engine)
# run on every ingest. halt_on_error turns any report into a test failure.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
run_leg "asan+ubsan" "$ROOT/build-asan" \
  -DCMAKE_BUILD_TYPE=Debug \
  "-DGDP_SANITIZE=address;undefined"

echo "check.sh: full gate PASSED (plain + lint + ASan/UBSan ctest)"
