#!/usr/bin/env bash
# tools/check.sh — the repo's tier-1+ correctness gate.
#
# Runs, in order, failing fast with a non-zero exit on the first problem:
#   1. plain build (RelWithDebInfo, -Wall -Wextra -Werror) + full ctest
#      suite, which includes the gdp_lint source linter;
#   2. ASan+UBSan build (Debug, so GDP_DCHECK and the structural validators
#      in src/partition/validate.h are live) + full ctest suite, failing on
#      any sanitizer report (halt_on_error);
#   3. TSan build (GDP_SANITIZE=thread) running the engine / frontier /
#      thread-pool / parallel-ingress test targets — the data-race gate for
#      the parallel GAS engine and the parallel ingest pipeline.
#      Timing-sensitive claims benches are excluded (TSan's ~10x slowdown
#      makes their wall-clock thresholds meaningless).
#
# Usage: tools/check.sh [--quick]
#   --quick  plain leg only (the seed tier-1 contract) — no sanitizer legs.
#
# Build trees: build-check/ (plain), build-asan/ and build-tsan/
# (sanitized), kept apart from the developer's build/ so the gate never
# clobbers a working tree.

set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
JOBS="$(nproc 2>/dev/null || echo 4)"
QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

run_leg() {
  local name="$1" dir="$2" ctest_filter="$3"
  shift 3
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S "$ROOT" "$@" >"$dir.configure.log" 2>&1 || {
    cat "$dir.configure.log"
    echo "check.sh: [$name] configure FAILED" >&2
    return 1
  }
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$JOBS" >"$dir.build.log" 2>&1 || {
    tail -50 "$dir.build.log"
    echo "check.sh: [$name] build FAILED" >&2
    return 1
  }
  echo "=== [$name] ctest ==="
  local filter_args=()
  [[ -n "$ctest_filter" ]] && filter_args=(-R "$ctest_filter")
  (cd "$dir" && ctest --output-on-failure -j "$JOBS" "${filter_args[@]}") || {
    echo "check.sh: [$name] tests FAILED" >&2
    return 1
  }
}

# Leg 1: plain build + tests (includes the gdp_lint ctest test). -Werror
# promotes the [[nodiscard]] Status discards to hard errors.
run_leg "plain" "$ROOT/build-check" "" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS=-Werror

if [[ "$QUICK" == "1" ]]; then
  echo "check.sh: quick gate PASSED (plain build + ctest + lint)"
  exit 0
fi

# Leg 2: ASan + UBSan, Debug so NDEBUG is off and the structural validators
# (GDP_DCHECK_OK(ValidateDistributedGraph) in the harness and GAS engine)
# run on every ingest. halt_on_error turns any report into a test failure.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
run_leg "asan+ubsan" "$ROOT/build-asan" "" \
  -DCMAKE_BUILD_TYPE=Debug \
  "-DGDP_SANITIZE=address;undefined"

# Leg 3: TSan over the concurrency surface — the parallel GAS engine, the
# parallel ingress pipeline (Ingest* matches the ingest determinism +
# conservation suites), the parallel grid runner and its partition/plan
# caches (GridRunner/PartitionCache/PlanCache), their
# frontier/thread-pool/accumulator utilities, the sim layer they charge,
# and the observability layer (Obs* suites: sharded metrics counters,
# trace recorder, ExecContext determinism matrix). RelWithDebInfo:
# TSan+Debug is too slow for the determinism matrix, and the race coverage
# is identical. The -R filter selects the discovered gtest suites that
# exercise threads; claims_ benches are timing-based and excluded (none of
# them match).
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
run_leg "tsan" "$ROOT/build-tsan" \
  '(EngineDeterminism|EngineCorrectness|EngineAccounting|EngineEdge|ExecutionPlan|KCoreDeterminism|ThreadPool|DenseBitset|PhaseAccumulator|Machine|Cluster|Async|Ingest|GridRunner|PartitionCache|PlanCache|Obs)' \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGDP_SANITIZE=thread

echo "check.sh: full gate PASSED (plain + lint + ASan/UBSan + TSan ctest)"
