#!/usr/bin/env bash
# tools/check.sh — the repo's tier-1+ correctness gate.
#
# Runs, in order, failing fast with a non-zero exit on the first problem,
# and prints a per-leg PASS/FAIL/SKIP summary at the end either way:
#   1. plain build (RelWithDebInfo, -Wall -Wextra -Werror) + full ctest
#      suite, which includes the gdp_lint source linter (and its
#      determinism-contract rules: no-wall-clock, no-float-accumulate,
#      no-unordered-iteration, mutex-annotated, no-per-edge-accounting),
#      then the peak-RSS probe (tools/rss_probe.cc): a budgeted,
#      unmaterialized block-streamed ingest whose host RSS growth must stay
#      within the ingest byte ledger's prediction plus slack;
#   2. native-arch kernel benches: rebuilds the engine-kernel claims
#      benches with -DGDP_NATIVE_ARCH=ON (-march=native on bench/ targets
#      only) and re-runs the kernel/engine scaling claims, so a
#      vectorization-dependent determinism break under the host's full ISA
#      cannot slip through. The plain leg already covers the portable
#      codegen of the same benches;
#   3. thread-safety build (Clang only): -DGDP_THREAD_SAFETY=ON compiles
#      the tree under clang++ with -Wthread-safety -Wthread-safety-beta
#      -Werror, checking the GDP_GUARDED_BY / GDP_REQUIRES annotations
#      (src/util/thread_annotations.h) statically. SKIPPED when clang++ is
#      not on PATH — the mutex-annotated lint rule in leg 1 still enforces
#      that every mutex carries annotations;
#   4. clang-tidy over leg 1's compile_commands.json (config in
#      .clang-tidy). SKIPPED when clang-tidy is not on PATH;
#   5. ASan+UBSan build (Debug, so GDP_DCHECK and the structural validators
#      in src/partition/validate.h are live) + full ctest suite, failing on
#      any sanitizer report (halt_on_error);
#   6. TSan build (GDP_SANITIZE=thread) running the engine / frontier /
#      thread-pool / parallel-ingress test targets — the data-race gate for
#      the parallel GAS engine and the parallel ingest pipeline.
#      Timing-sensitive claims benches are excluded (TSan's ~10x slowdown
#      makes their wall-clock thresholds meaningless).
#
# Usage: tools/check.sh [--quick]
#   --quick  plain leg only (the seed tier-1 contract) — no static-analysis
#            or sanitizer legs.
#
# Build trees: build-check/ (plain), build-native/ (-march=native benches),
# build-tsafe/ (Clang thread safety), build-asan/ and build-tsan/
# (sanitized), kept apart from the developer's build/ so the gate never
# clobbers a working tree.

set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
JOBS="$(nproc 2>/dev/null || echo 4)"
QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

SUMMARY=()

print_summary() {
  echo
  echo "=== check.sh leg summary ==="
  local line
  for line in "${SUMMARY[@]}"; do
    echo "  $line"
  done
}

pass() { SUMMARY+=("$1: PASS"); }
skip() { SUMMARY+=("$1: SKIP ($2)"); echo "=== [$1] SKIPPED: $2 ==="; }
fail() {
  SUMMARY+=("$1: FAIL")
  print_summary
  echo "check.sh: gate FAILED at leg [$1]" >&2
  exit 1
}

# run_leg <name> <build-dir> <ctest-filter> [cmake args...]
# A ctest filter of "@skip" builds without running tests (for
# analysis-only legs).
run_leg() {
  local name="$1" dir="$2" ctest_filter="$3"
  shift 3
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S "$ROOT" "$@" >"$dir.configure.log" 2>&1 || {
    cat "$dir.configure.log"
    echo "check.sh: [$name] configure FAILED" >&2
    return 1
  }
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$JOBS" >"$dir.build.log" 2>&1 || {
    tail -50 "$dir.build.log"
    echo "check.sh: [$name] build FAILED" >&2
    return 1
  }
  [[ "$ctest_filter" == "@skip" ]] && return 0
  echo "=== [$name] ctest ==="
  local filter_args=()
  [[ -n "$ctest_filter" ]] && filter_args=(-R "$ctest_filter")
  (cd "$dir" && ctest --output-on-failure -j "$JOBS" "${filter_args[@]}") || {
    echo "check.sh: [$name] tests FAILED" >&2
    return 1
  }
}

# Leg 1: plain build + tests (includes the gdp_lint ctest test). -Werror
# promotes the [[nodiscard]] Status discards to hard errors.
if run_leg "plain" "$ROOT/build-check" "" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS=-Werror; then
  pass "plain"
else
  fail "plain"
fi

# Leg 1b: peak-RSS probe for the bounded streaming ingress. Runs the
# budgeted, unmaterialized block-streamed ingest and asserts the process's
# RSS growth stays within the byte ledger's prediction plus slack
# (tools/rss_probe.cc). Uses leg 1's build tree.
rss_leg() {
  echo "=== [rss-probe] budgeted streaming ingest vs peak RSS ==="
  "$ROOT/build-check/tools/rss_probe"
}
if rss_leg; then
  pass "rss-probe"
else
  fail "rss-probe"
fi

if [[ "$QUICK" == "1" ]]; then
  skip "native-arch" "--quick"
  skip "thread-safety" "--quick"
  skip "clang-tidy" "--quick"
  skip "asan+ubsan" "--quick"
  skip "tsan" "--quick"
  print_summary
  echo "check.sh: quick gate PASSED (plain build + ctest + lint)"
  exit 0
fi

# Leg 2: the kernel claims benches again, under -march=native. The kernel
# determinism contract (bit-identical simulated costs across layouts,
# kernel modes, and thread counts) must survive the host's widest vector
# ISA, not just portable codegen; only bench/ targets get the flag, so
# everything else in this tree is identical to leg 1's.
native_leg() {
  local dir="$ROOT/build-native"
  echo "=== [native-arch] configure ==="
  cmake -B "$dir" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGDP_NATIVE_ARCH=ON >"$dir.configure.log" 2>&1 || {
    cat "$dir.configure.log"
    echo "check.sh: [native-arch] configure FAILED" >&2
    return 1
  }
  echo "=== [native-arch] build (kernel benches) ==="
  cmake --build "$dir" -j "$JOBS" \
    --target bench_kernel_scaling --target bench_engine_scaling \
    >"$dir.build.log" 2>&1 || {
    tail -50 "$dir.build.log"
    echo "check.sh: [native-arch] build FAILED" >&2
    return 1
  }
  echo "=== [native-arch] kernel claims ==="
  (cd "$dir" &&
   ctest --output-on-failure -R 'claims_bench_(kernel|engine)_scaling')
}
if native_leg; then
  pass "native-arch"
else
  fail "native-arch"
fi

# Leg 3: Clang thread-safety analysis. Build-only: the annotations are
# checked at compile time, and the plain leg already ran the suite.
if command -v clang++ >/dev/null 2>&1; then
  if run_leg "thread-safety" "$ROOT/build-tsafe" "@skip" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DGDP_THREAD_SAFETY=ON \
    -DCMAKE_CXX_FLAGS=-Werror; then
    pass "thread-safety"
  else
    fail "thread-safety"
  fi
else
  skip "thread-safety" "clang++ not on PATH"
fi

# Leg 4: clang-tidy over the plain leg's compile database (.clang-tidy
# holds the check list). Headers are covered through the .cc files that
# include them.
if command -v clang-tidy >/dev/null 2>&1; then
  echo "=== [clang-tidy] src/ + tools/ over build-check/compile_commands.json ==="
  mapfile -t tidy_sources < <(find "$ROOT/src" "$ROOT/tools" -name '*.cc' | sort)
  if clang-tidy -p "$ROOT/build-check" --quiet "${tidy_sources[@]}" \
      >"$ROOT/build-check.clang-tidy.log" 2>&1; then
    pass "clang-tidy"
  else
    tail -50 "$ROOT/build-check.clang-tidy.log"
    echo "check.sh: [clang-tidy] FAILED" >&2
    fail "clang-tidy"
  fi
else
  skip "clang-tidy" "clang-tidy not on PATH"
fi

# Leg 5: ASan + UBSan, Debug so NDEBUG is off and the structural validators
# (GDP_DCHECK_OK(ValidateDistributedGraph) in the harness and GAS engine)
# run on every ingest. halt_on_error turns any report into a test failure.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
if run_leg "asan+ubsan" "$ROOT/build-asan" "" \
  -DCMAKE_BUILD_TYPE=Debug \
  "-DGDP_SANITIZE=address;undefined"; then
  pass "asan+ubsan"
else
  fail "asan+ubsan"
fi

# Leg 6: TSan over the concurrency surface — the parallel GAS engine, the
# parallel ingress pipeline (Ingest* matches the ingest determinism +
# conservation suites), the parallel grid runner and its partition/plan
# caches (GridRunner/PartitionCache/PlanCache), their
# frontier/thread-pool/accumulator utilities, the sim layer they charge,
# the observability layer (Obs* suites: sharded metrics counters, trace
# recorder, ExecContext determinism matrix), and the serving layer
# (Serving* suites: the batched scheduler's parallel phase over the
# byte-budgeted caches), and the neighbor-expansion family (NeFamily*
# suites: NE/SNE/2PS/HEP determinism matrix across threads and
# representations; MinHeap/StrategyRegistry cover the heap and the
# locked registry those strategies dispatch through). RelWithDebInfo:
# TSan+Debug is too slow for the determinism matrix, and the race coverage
# is identical. The -R filter selects the discovered gtest suites that
# exercise threads; claims_ benches are timing-based and excluded (none of
# them match).
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
if run_leg "tsan" "$ROOT/build-tsan" \
  '(EngineDeterminism|EngineCorrectness|EngineAccounting|EngineEdge|ExecutionPlan|KCoreDeterminism|ThreadPool|DenseBitset|PhaseAccumulator|Machine|Cluster|Async|Ingest|GridRunner|PartitionCache|PlanCache|Obs|Serving|EdgeBlockStore|StreamIngest|NeFamily|MinHeap|StrategyRegistry)' \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGDP_SANITIZE=thread; then
  pass "tsan"
else
  fail "tsan"
fi

print_summary
echo "check.sh: full gate PASSED"
