// gdp-partition: partition a plain-text edge list with any strategy and
// write the placement to a file (reusable via gdp-run, per the paper's
// §5.4.3 partition-reuse workflow). Prints the §4.3 ingress metrics.
//
//   gdp-partition <edge-list> <strategy> <machines> [placement-out]
//
// Strategies: Random, Assym-Rand, Grid, PDS, Oblivious, HDRF, Hybrid,
// H-Ginger, 1D, 1D-Target, 2D, Chunked.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "graph/graph_stats.h"
#include "graph/io.h"
#include "partition/ingest.h"
#include "partition/placement_io.h"
#include "sim/cluster.h"

int main(int argc, char** argv) {
  using namespace gdp;
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <edge-list> <strategy> <machines> "
                 "[placement-out]\n",
                 argv[0]);
    return 2;
  }
  util::StatusOr<graph::EdgeList> loaded = graph::LoadEdgeList(argv[1]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  graph::EdgeList edges = std::move(loaded).value();
  util::StatusOr<partition::StrategyKind> strategy =
      partition::StrategyFromName(argv[2]);
  if (!strategy.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 strategy.status().ToString().c_str());
    return 1;
  }
  uint32_t machines = static_cast<uint32_t>(std::atoi(argv[3]));
  if (machines == 0) {
    std::fprintf(stderr, "error: machines must be > 0\n");
    return 1;
  }

  graph::GraphStats stats = graph::ComputeGraphStats(edges);
  std::printf("graph: |V|=%u |E|=%llu class=%s\n", stats.num_vertices,
              static_cast<unsigned long long>(stats.num_edges),
              graph::GraphClassName(stats.classified));

  sim::Cluster cluster(machines, sim::CostModel{});
  partition::PartitionContext context;
  context.num_partitions = machines;
  context.num_vertices = edges.num_vertices();
  context.num_loaders = machines;
  partition::IngestResult result = partition::IngestWithStrategy(
      edges, strategy.value(), context, cluster);

  std::printf("strategy: %s on %u machines\n",
              partition::StrategyName(strategy.value()), machines);
  std::printf("replication factor: %.3f\n",
              result.report.replication_factor);
  std::printf("edge balance (max/mean): %.3f\n",
              result.report.edge_balance_ratio);
  std::printf("simulated ingress: %.4fs (%zu phases, %llu edges moved)\n",
              result.report.ingress_seconds,
              result.report.pass_seconds.size(),
              static_cast<unsigned long long>(result.report.edges_moved));

  if (argc > 4) {
    util::Status saved = partition::SavePlacement(result.graph, argv[4]);
    if (!saved.ok()) {
      std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("placement written to %s\n", argv[4]);
  }
  return 0;
}
