// rss_probe — host-memory gate for the bounded streaming ingress
// (DESIGN.md §14). Builds a compressed EdgeBlockStore, then runs a
// budgeted, unmaterialized block-streamed ingest and checks that the
// process's peak-RSS growth during ingest stays within what the exact byte
// ledger (IngestMemoryStats) predicts, plus an allocator/result slack.
// check.sh runs this as its peak-RSS leg; exits non-zero when the measured
// growth exceeds the ledger's bound, i.e. when the pipeline resident set
// escapes the budget accounting.
//
// This is a host-resource probe, not a simulation artifact: wall-clock and
// RSS here never feed simulated results (which stay bit-identical across
// all of these knobs — the ingest determinism contract).

#include <sys/resource.h>

#include <cstdint>
#include <cstdio>

#include "graph/edge_block_store.h"
#include "graph/generators.h"
#include "partition/ingest.h"
#include "sim/cluster.h"

namespace {

uint64_t PeakRssBytes() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  // ru_maxrss is KiB on Linux.
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

}  // namespace

int main() {
  using namespace gdp;

  constexpr uint32_t kMachines = 9;
  constexpr uint32_t kLoaders = 16;
  constexpr uint64_t kBudgetBytes = 4ull << 20;  // 4 MiB decode ring budget.

  // Build the compressed store in a scope so the flat generator output is
  // freed (and counted into the baseline peak) before ingest begins.
  graph::EdgeBlockStore store = [] {
    graph::EdgeList edges = graph::GenerateHeavyTailed(
        {.num_vertices = 60000, .edges_per_vertex = 12, .seed = 0x55});
    edges.set_name("rss-probe");
    return graph::EdgeBlockStore::FromEdges(edges);
  }();

  const uint64_t baseline_peak = PeakRssBytes();

  partition::PartitionContext context;
  context.num_partitions = kMachines;
  context.num_vertices = store.num_vertices();
  context.num_loaders = kLoaders;
  context.seed = 3;
  auto partitioner =
      partition::MakePartitioner(partition::StrategyKind::kHdrf, context);
  sim::Cluster cluster(kMachines, sim::CostModel{});

  partition::IngestOptions options;
  options.num_loaders = kLoaders;
  options.memory_budget_bytes = kBudgetBytes;
  options.materialize_edges = false;
  partition::IngestMemoryStats stats;
  options.memory_stats = &stats;
  partition::IngestResult result =
      Ingest(store, *partitioner, cluster, options);

  const uint64_t after_peak = PeakRssBytes();
  const uint64_t growth = after_peak - baseline_peak;
  // The ledger's resident prediction: the decode ring plus peak partitioner
  // state. The replica/master tables in the result DistributedGraph and
  // allocator fragmentation ride on top — a 2x factor plus a fixed slack
  // bounds both while still catching a pipeline that decodes the whole
  // stream resident.
  const uint64_t slack = 32ull << 20;
  const uint64_t bound = 2 * stats.peak_ledger_bytes + slack;

  std::printf("graph: %llu edges, %llu vertices\n",
              static_cast<unsigned long long>(store.num_edges()),
              static_cast<unsigned long long>(store.num_vertices()));
  std::printf("store resident:      %10llu bytes\n",
              static_cast<unsigned long long>(store.ResidentBytes()));
  std::printf("decode ring:         %10llu bytes (%llu buffers, budget %llu)\n",
              static_cast<unsigned long long>(stats.ring_bytes),
              static_cast<unsigned long long>(stats.ring_buffers),
              static_cast<unsigned long long>(kBudgetBytes));
  std::printf("peak ledger:         %10llu bytes\n",
              static_cast<unsigned long long>(stats.peak_ledger_bytes));
  std::printf("baseline peak RSS:   %10llu bytes\n",
              static_cast<unsigned long long>(baseline_peak));
  std::printf("post-ingest peak RSS:%10llu bytes\n",
              static_cast<unsigned long long>(after_peak));
  std::printf("ingest RSS growth:   %10llu bytes (bound %llu)\n",
              static_cast<unsigned long long>(growth),
              static_cast<unsigned long long>(bound));
  std::printf("replication factor:  %.3f\n",
              result.report.replication_factor);

  if (stats.ring_bytes > kBudgetBytes &&
      stats.ring_buffers > static_cast<uint64_t>(kLoaders)) {
    std::printf("FAIL: decode ring exceeds the memory budget\n");
    return 1;
  }
  if (growth > bound) {
    std::printf("FAIL: ingest RSS growth exceeds the ledger bound\n");
    return 1;
  }
  std::printf("PASS: budgeted ingest stayed within the ledger bound\n");
  return 0;
}
