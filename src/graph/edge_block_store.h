#ifndef GDP_GRAPH_EDGE_BLOCK_STORE_H_
#define GDP_GRAPH_EDGE_BLOCK_STORE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/edge_list.h"
#include "graph/types.h"
#include "util/status.h"

namespace gdp::graph {

/// The edge stream chunked into fixed-size blocks, each compressed with
/// zigzag-delta bit packing (the idiom the compressed CSR plan layout in
/// engine/plan.cc proved out): within a block, edge i stores
/// ZigZag(src_i - src_{i-1}) and ZigZag(dst_i - dst_{i-1}) back to back at
/// two per-block fixed widths; the block's first edge is kept raw as the
/// delta base. Generated and real edge streams are bursty in src (loaders
/// emit a vertex's out-edges together), so src deltas pack into a couple of
/// bits and dst deltas into ~log2(n) bits — 2-3x smaller resident edge
/// bytes than the flat 8-byte std::vector<Edge> (claims gate:
/// bench_stream_ingest).
///
/// Block boundaries are deterministic (block b covers stream positions
/// [b*B, min((b+1)*B, E)) for block size B), so any consumer — the
/// streaming ingress pipeline, a finalize shard, a fingerprint scan —
/// derives the exact same blocks from the same stream. Each block carries
/// the value of the EdgeList fingerprint hash chain after its last edge, so
/// Fingerprint() is reproducible from the store alone, without ever
/// materializing the flat vector, and equals EdgeList::Fingerprint() of the
/// same stream bit for bit (the ingress artifact-cache key contract).
class EdgeBlockStoreBuilder;

class EdgeBlockStore {
 public:
  /// Default edges per block: 4096 edges decode into a 32 KiB buffer — two
  /// of those per loader stay L2-resident while a block is in flight.
  static constexpr uint32_t kDefaultBlockSizeEdges = 4096;

  struct Options {
    /// Edges per block (the last block may be short). Must be >= 1.
    uint32_t block_size_edges;

    constexpr Options() : block_size_edges(kDefaultBlockSizeEdges) {}
    constexpr explicit Options(uint32_t block_size)
        : block_size_edges(block_size) {}
  };

  EdgeBlockStore() = default;

  /// Incremental encoder: append edges in stream order, then Finish().
  /// Bounded memory: only the current partial block is held decoded.
  using Builder = EdgeBlockStoreBuilder;

  /// Encodes an existing flat edge list (name, num_vertices, and stream
  /// order preserved; Fingerprint() == edges.Fingerprint()).
  static EdgeBlockStore FromEdges(const EdgeList& edges,
                                  Options options = Options());

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  VertexId num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return num_edges_; }
  uint32_t block_size_edges() const { return block_size_edges_; }
  uint64_t num_blocks() const { return blocks_.size(); }

  /// Stream positions covered by block b: [BlockBegin(b), BlockEnd(b)).
  uint64_t BlockBegin(uint64_t b) const {
    return b * static_cast<uint64_t>(block_size_edges_);
  }
  uint64_t BlockEnd(uint64_t b) const {
    const uint64_t end = (b + 1) * static_cast<uint64_t>(block_size_edges_);
    return end < num_edges_ ? end : num_edges_;
  }

  /// Decodes block b into `out` (resized to the block's edge count), in
  /// exact stream order.
  void DecodeBlock(uint64_t b, std::vector<Edge>* out) const;

  /// Bytes this store keeps resident: packed payload words plus per-block
  /// metadata. The claims gate compares this against the flat vector's
  /// num_edges * sizeof(Edge).
  uint64_t ResidentBytes() const;

  /// Content fingerprint of the stream this store replays — bit-identical
  /// to EdgeList::Fingerprint() of the materialized list (same hash chain
  /// over num_vertices, num_edges, and every edge in stream order), but
  /// computed at Finish() without the flat vector. O(1) here.
  uint64_t Fingerprint() const { return fingerprint_; }

  /// Value of the fingerprint hash chain after block b's last edge. The
  /// chain is sequential, so BlockFingerprint(num_blocks()-1) combined with
  /// the header terms is Fingerprint(); mid-chain values let a consumer
  /// verify a prefix of the stream block by block.
  uint64_t BlockFingerprint(uint64_t b) const { return blocks_[b].chain; }

  /// O(1)-state sequential decoder over the whole stream; yields edges in
  /// exact stream order. The cheap way to iterate without a block buffer.
  class Cursor {
   public:
    explicit Cursor(const EdgeBlockStore& store) : store_(&store) {}
    bool Done() const { return index_ >= store_->num_edges_; }
    uint64_t index() const { return index_; }
    Edge Next();

   private:
    const EdgeBlockStore* store_;
    uint64_t index_ = 0;
    uint64_t block_ = 0;
    uint64_t bit_pos_ = 0;
    int64_t prev_src_ = 0;
    int64_t prev_dst_ = 0;
  };

  /// Decodes the full stream back into a flat EdgeList (name, num_vertices,
  /// order preserved).
  EdgeList Materialize() const;

  /// Streaming symmetrization with the EdgeList::Symmetrized() contract
  /// (every (u,v) accompanied by (v,u); self loops and duplicates removed;
  /// result sorted by (src, dst); name suffixed "-sym"): each input block
  /// becomes a locally sorted deduplicated run kept compressed, and the
  /// runs are k-way merged through O(1)-state cursors into the output
  /// builder — the 2x flat intermediate copy plus global sort of the
  /// EdgeList path never materializes.
  EdgeBlockStore StreamingSymmetrized(Options options = Options()) const;

  /// Recomputes the fingerprint chain from the packed payload and checks it
  /// against the stored chain (used by the on-disk dataset cache to reject
  /// torn or stale files). OkStatus iff every block checks out.
  util::Status Validate() const;

  // On-disk format (host-endian, versioned; a cache format, not an
  // interchange format): header, per-block metadata, payload words.
  util::Status SerializeTo(std::ostream& out) const;
  static util::StatusOr<EdgeBlockStore> DeserializeFrom(std::istream& in);
  util::Status SaveTo(const std::string& path) const;
  static util::StatusOr<EdgeBlockStore> LoadFrom(const std::string& path);

 private:
  friend class EdgeBlockStoreBuilder;

  struct BlockMeta {
    uint64_t bit_offset = 0;  ///< payload start in words_
    uint64_t chain = 0;       ///< fingerprint chain value after this block
    Edge first;               ///< raw first edge (delta base)
    uint8_t src_width = 1;    ///< bits per zigzag src delta
    uint8_t dst_width = 1;    ///< bits per zigzag dst delta
  };

  std::string name_;
  VertexId num_vertices_ = 0;
  uint64_t num_edges_ = 0;
  uint32_t block_size_edges_ = kDefaultBlockSizeEdges;
  uint64_t fingerprint_ = 0;
  std::vector<BlockMeta> blocks_;
  std::vector<uint64_t> words_;  ///< packed payload + one padding word
};

/// Incremental EdgeBlockStore encoder (see EdgeBlockStore::Builder): append
/// edges in stream order, then Finish(). Bounded memory: only the current
/// partial block is held decoded.
class EdgeBlockStoreBuilder {
 public:
  explicit EdgeBlockStoreBuilder(
      EdgeBlockStore::Options options = EdgeBlockStore::Options());

  void set_name(std::string name) { store_.name_ = std::move(name); }
  /// Raises the vertex-id space floor (mirrors the EdgeList constructor's
  /// explicit num_vertices). Append still grows it past this to cover every
  /// endpoint.
  void set_num_vertices(VertexId num_vertices);

  /// Appends an edge, growing num_vertices to cover both endpoints.
  void Append(Edge e);

  /// Seals the store: flushes the partial block and computes the per-block
  /// fingerprint chain by decoding each block (one block buffer resident),
  /// so the stored chain fingerprints exactly what the store replays.
  EdgeBlockStore Finish() &&;

 private:
  EdgeBlockStore store_;
  std::vector<Edge> pending_;  ///< current partial block
  void FlushBlock();
};

}  // namespace gdp::graph

#endif  // GDP_GRAPH_EDGE_BLOCK_STORE_H_
