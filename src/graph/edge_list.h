#ifndef GDP_GRAPH_EDGE_LIST_H_
#define GDP_GRAPH_EDGE_LIST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"

namespace gdp::graph {

/// An in-memory directed edge list, the storage format every dataset in the
/// paper used ("all the datasets were stored in plain-text edge-list
/// format"). This is the unit streamed into partitioners.
class EdgeList {
 public:
  EdgeList() = default;
  EdgeList(std::string name, VertexId num_vertices, std::vector<Edge> edges)
      : name_(std::move(name)),
        num_vertices_(num_vertices),
        edges_(std::move(edges)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  VertexId num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }
  std::vector<Edge>& mutable_edges() { return edges_; }

  /// Pre-sizes the edge vector for `num_edges` appends, so AddEdge loops
  /// with a known (or estimable) edge count do one allocation instead of
  /// O(log n) doubling reallocations with full copies.
  void Reserve(uint64_t num_edges) { edges_.reserve(num_edges); }

  /// Appends an edge, growing num_vertices to cover both endpoints.
  void AddEdge(VertexId src, VertexId dst);

  /// Removes self loops and exact duplicate directed edges (sorts edges).
  void Deduplicate();

  /// Returns a copy with every edge (u,v) accompanied by (v,u); used to turn
  /// a directed graph into its undirected (symmetric) version.
  EdgeList Symmetrized() const;

  /// 64-bit content fingerprint over the canonical edge order: a hash chain
  /// of num_vertices(), num_edges(), and every (src, dst) pair in stream
  /// order. Two edge lists fingerprint equal iff they present the same
  /// vertex-id space and the same edge sequence — exactly the inputs a
  /// partitioner sees — so the fingerprint keys ingress artifact caches
  /// (harness/partition_cache.h). The name is deliberately excluded.
  uint64_t Fingerprint() const;

  /// Out-degree / in-degree / total-degree arrays of size num_vertices().
  std::vector<uint64_t> OutDegrees() const;
  std::vector<uint64_t> InDegrees() const;
  std::vector<uint64_t> TotalDegrees() const;

 private:
  std::string name_;
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace gdp::graph

#endif  // GDP_GRAPH_EDGE_LIST_H_
