#ifndef GDP_GRAPH_GENERATORS_H_
#define GDP_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/edge_list.h"

namespace gdp::graph {

/// Synthetic stand-ins for the paper's datasets (Table 4.2). The paper's
/// conclusions depend on the *degree-distribution class* of each input, so
/// each generator is built to land squarely in one class; the Fig 5.8 bench
/// validates this. Scale is a parameter so tests stay fast while benches run
/// at larger (but laptop-feasible) sizes.

/// Road-network analog (road-net-CA / road-net-USA): a width x height grid
/// where each cell connects to its right/down neighbors, with
/// `drop_fraction` of lattice edges removed and `shortcut_fraction` random
/// long-range edges added. Symmetric (both directions emitted), max total
/// degree ~8, enormous diameter.
struct RoadNetworkOptions {
  uint32_t width = 100;
  uint32_t height = 100;
  double drop_fraction = 0.05;
  double shortcut_fraction = 0.001;
  uint64_t seed = 1;
};
EdgeList GenerateRoadNetwork(const RoadNetworkOptions& options);

/// Social-network analog (LiveJournal / Twitter): preferential attachment
/// (Barabási–Albert). Every vertex after the seed clique attaches
/// `edges_per_vertex` out-edges to degree-proportional targets, so *no*
/// vertex has total degree below edges_per_vertex: the graph is skewed but
/// deficient in low-degree vertices — the paper's "heavy-tailed" class.
struct HeavyTailedOptions {
  VertexId num_vertices = 10000;
  uint32_t edges_per_vertex = 8;
  /// Fraction of vertices that are out-degree "super-posters": they attach
  /// a large multiple of edges_per_vertex. Real social graphs are skewed
  /// in BOTH directions; out-hubs are what 1D's source hashing piles onto
  /// one partition, and what 2D's sqrt(N) bound tames (§7.4, §9.2.2).
  double burst_fraction = 0.05;
  uint32_t burst_multiplier = 12;
  /// Probability that an attachment edge is reciprocated (mutual follows);
  /// real social graphs have substantial reciprocity, which is what makes
  /// direction-sensitive hashing (GraphX "Random") strictly worse than
  /// canonical hashing (§8.2.2).
  double reciprocal_fraction = 0.3;
  uint64_t seed = 2;
};
EdgeList GenerateHeavyTailed(const HeavyTailedOptions& options);

/// Web-graph analog (UK-web): out-degrees are Zipf(out_alpha) (many pages
/// with one or two links), and each edge's destination is a Zipf(in_alpha)
/// draw over a random permutation of vertices (a few hubs attract most
/// links). Skewed in-degree distribution *with* a large low-degree
/// population — the paper's "power-law" class.
struct PowerLawWebOptions {
  VertexId num_vertices = 10000;
  double out_alpha = 1.35;
  double in_alpha = 1.6;
  uint32_t max_out_degree = 1000;
  uint64_t seed = 3;
};
EdgeList GeneratePowerLawWeb(const PowerLawWebOptions& options);

/// Recursive-matrix (R-MAT) generator, used by ablation benches. Standard
/// (a, b, c, d) quadrant probabilities; scale = log2(num_vertices).
struct RmatOptions {
  uint32_t scale = 14;
  uint64_t num_edges = 1u << 18;
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  uint64_t seed = 4;
};
EdgeList GenerateRmat(const RmatOptions& options);

/// Bipartite user-item graph (ratings/purchases), the workload class the
/// PowerLyra authors later extended their partitioners for (cited in the
/// paper's §2.2). Edges always go user -> item; item popularity is
/// Zipf(item_alpha) (a few blockbusters absorb most edges) while user
/// activity is uniform in [1, 2*edges_per_user). Items occupy ids
/// [0, num_items), users [num_items, num_items + num_users).
struct BipartiteOptions {
  VertexId num_users = 8000;
  VertexId num_items = 2000;
  uint32_t edges_per_user = 10;
  double item_alpha = 1.2;
  uint64_t seed = 6;
};
EdgeList GenerateBipartite(const BipartiteOptions& options);

/// Erdős–Rényi G(n, m) with exactly num_edges distinct directed non-loop
/// edges; the "no structure" control used in tests.
struct ErdosRenyiOptions {
  VertexId num_vertices = 1000;
  uint64_t num_edges = 5000;
  uint64_t seed = 5;
};
EdgeList GenerateErdosRenyi(const ErdosRenyiOptions& options);

}  // namespace gdp::graph

#endif  // GDP_GRAPH_GENERATORS_H_
