#include "graph/csr.h"

namespace gdp::graph {

Csr Csr::Build(const EdgeList& edges, bool by_source) {
  Csr csr;
  VertexId n = edges.num_vertices();
  csr.offsets_.assign(static_cast<size_t>(n) + 1, 0);
  for (const Edge& e : edges.edges()) {
    VertexId key = by_source ? e.src : e.dst;
    ++csr.offsets_[key + 1];
  }
  for (size_t v = 1; v < csr.offsets_.size(); ++v) {
    csr.offsets_[v] += csr.offsets_[v - 1];
  }
  csr.adjacency_.resize(edges.num_edges());
  std::vector<uint64_t> cursor(csr.offsets_.begin(), csr.offsets_.end() - 1);
  for (const Edge& e : edges.edges()) {
    VertexId key = by_source ? e.src : e.dst;
    VertexId other = by_source ? e.dst : e.src;
    csr.adjacency_[cursor[key]++] = other;
  }
  return csr;
}

}  // namespace gdp::graph
