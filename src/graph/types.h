#ifndef GDP_GRAPH_TYPES_H_
#define GDP_GRAPH_TYPES_H_

#include <cstdint>

namespace gdp::graph {

/// Vertex identifier. 32 bits covers every graph this simulator targets
/// (tens of millions of vertices) at half the edge-list footprint of 64-bit
/// ids. Counters derived from edges are always 64-bit (the paper itself
/// reports an overflow bug in PowerLyra's Hybrid-Ginger when an edge count
/// was kept in a 32-bit integer; we do not repeat it).
using VertexId = uint32_t;

/// Invalid/absent vertex sentinel.
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// A directed edge u -> v.
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

}  // namespace gdp::graph

#endif  // GDP_GRAPH_TYPES_H_
