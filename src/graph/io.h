#ifndef GDP_GRAPH_IO_H_
#define GDP_GRAPH_IO_H_

#include <string>

#include "graph/edge_list.h"
#include "util/status.h"

namespace gdp::graph {

/// Writes an edge list in the plain-text format the paper's datasets use:
/// one "src dst" pair per line; lines starting with '#' are comments.
util::Status SaveEdgeList(const EdgeList& edges, const std::string& path);

/// Loads a plain-text edge list. Vertex ids are dense-renumbered in order of
/// first appearance when `renumber` is true (SNAP files have sparse ids).
util::StatusOr<EdgeList> LoadEdgeList(const std::string& path,
                                      bool renumber = true);

}  // namespace gdp::graph

#endif  // GDP_GRAPH_IO_H_
