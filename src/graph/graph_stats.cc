#include "graph/graph_stats.h"

#include <algorithm>
#include <cmath>

namespace gdp::graph {

const char* GraphClassName(GraphClass cls) {
  switch (cls) {
    case GraphClass::kLowDegree:
      return "low-degree";
    case GraphClass::kHeavyTailed:
      return "heavy-tailed";
    case GraphClass::kPowerLaw:
      return "power-law";
  }
  return "unknown";
}

GraphStats ComputeGraphStats(const EdgeList& edges) {
  GraphStats stats;
  stats.name = edges.name();
  stats.num_vertices = edges.num_vertices();
  stats.num_edges = edges.num_edges();

  std::vector<uint64_t> in = edges.InDegrees();
  std::vector<uint64_t> out = edges.OutDegrees();
  uint64_t low_degree_count = 0;
  uint64_t degree_sum = 0;
  for (VertexId v = 0; v < stats.num_vertices; ++v) {
    uint64_t total = in[v] + out[v];
    stats.max_in_degree = std::max(stats.max_in_degree, in[v]);
    stats.max_out_degree = std::max(stats.max_out_degree, out[v]);
    stats.max_total_degree = std::max(stats.max_total_degree, total);
    degree_sum += total;
    if (total <= 2) ++low_degree_count;
  }
  if (stats.num_vertices > 0) {
    stats.mean_total_degree =
        static_cast<double>(degree_sum) / stats.num_vertices;
    stats.low_degree_fraction =
        static_cast<double>(low_degree_count) / stats.num_vertices;
  }

  stats.in_degree_histogram = util::CountHistogram(in);
  stats.in_degree_histogram.erase(0);
  util::LinearFit fit = util::FitPowerLaw(stats.in_degree_histogram);
  stats.power_law_alpha = -fit.slope;
  stats.power_law_r2 = fit.r2;

  // Observed vs fit-predicted population at the low-degree end (in-degree 1
  // and 2). Fig 5.8's visual cue — points below the regression line at small
  // degree — becomes this ratio.
  double observed = 0;
  double predicted = 0;
  for (uint64_t d = 1; d <= 2; ++d) {
    auto it = stats.in_degree_histogram.find(d);
    if (it != stats.in_degree_histogram.end()) {
      observed += static_cast<double>(it->second);
    }
    predicted +=
        std::exp(fit.intercept + fit.slope * std::log(static_cast<double>(d)));
  }
  stats.low_degree_residual = predicted > 0 ? observed / predicted : 1.0;

  stats.classified = ClassifyGraph(stats);
  return stats;
}

GraphClass ClassifyGraph(const GraphStats& stats) {
  // Road networks: max degree bounded by a small constant (the paper cites
  // max degree 12 for road-net graphs) and not far above the mean.
  bool skewed = stats.max_total_degree > 64 &&
                stats.mean_total_degree > 0 &&
                static_cast<double>(stats.max_total_degree) >
                    16.0 * stats.mean_total_degree;
  if (!skewed) return GraphClass::kLowDegree;
  // Among skewed graphs: deficient low-degree population => heavy-tailed.
  return stats.low_degree_residual < 0.5 ? GraphClass::kHeavyTailed
                                         : GraphClass::kPowerLaw;
}

}  // namespace gdp::graph
