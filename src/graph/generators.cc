#include "graph/generators.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "util/check.h"
#include "util/random.h"

namespace gdp::graph {

using util::SplitMix64;

EdgeList GenerateRoadNetwork(const RoadNetworkOptions& options) {
  SplitMix64 rng(options.seed);
  const uint32_t w = options.width;
  const uint32_t h = options.height;
  GDP_CHECK_GT(w, 1u);
  GDP_CHECK_GT(h, 1u);
  VertexId n = static_cast<VertexId>(w) * h;
  EdgeList out("road-net", n, {});
  // Upper bound: every grid road (two per cell) in both directions, plus
  // both directions of each shortcut.
  out.Reserve(4ull * n +
              2 * static_cast<uint64_t>(options.shortcut_fraction *
                                        static_cast<double>(n)));

  auto id = [w](uint32_t x, uint32_t y) {
    return static_cast<VertexId>(y) * w + x;
  };
  auto add_road = [&](VertexId a, VertexId b) {
    out.AddEdge(a, b);
    out.AddEdge(b, a);
  };

  for (uint32_t y = 0; y < h; ++y) {
    for (uint32_t x = 0; x < w; ++x) {
      if (x + 1 < w && !rng.NextBool(options.drop_fraction)) {
        add_road(id(x, y), id(x + 1, y));
      }
      if (y + 1 < h && !rng.NextBool(options.drop_fraction)) {
        add_road(id(x, y), id(x, y + 1));
      }
    }
  }
  // A sprinkle of long-range shortcuts (highways/bridges) so the graph has
  // one giant component like real road networks.
  uint64_t shortcuts = static_cast<uint64_t>(
      options.shortcut_fraction * static_cast<double>(n));
  for (uint64_t i = 0; i < shortcuts; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(n));
    VertexId b = static_cast<VertexId>(rng.NextBounded(n));
    if (a != b) add_road(a, b);
  }
  out.Deduplicate();
  return out;
}

EdgeList GenerateHeavyTailed(const HeavyTailedOptions& options) {
  SplitMix64 rng(options.seed);
  const VertexId n = options.num_vertices;
  const uint32_t m = options.edges_per_vertex;
  GDP_CHECK_GT(n, m);
  GDP_CHECK_GT(m, 0u);
  EdgeList out("heavy-tailed", n, {});
  // Estimate: m attachment edges per vertex plus reciprocals and burst
  // slack; one reallocation at worst instead of a doubling cascade.
  out.Reserve(static_cast<uint64_t>(n) * m *
              (2 + options.burst_multiplier / 4));

  // Endpoint pool: each element is a vertex, appearing once per incident
  // edge; sampling uniformly from the pool is degree-proportional sampling.
  std::vector<VertexId> pool;
  pool.reserve(static_cast<size_t>(n) * 2 * m);

  // Seed: a small clique over the first m+1 vertices.
  for (VertexId u = 0; u <= m; ++u) {
    for (VertexId v = u + 1; v <= m; ++v) {
      out.AddEdge(u, v);
      pool.push_back(u);
      pool.push_back(v);
    }
  }
  for (VertexId v = m + 1; v < n; ++v) {
    uint32_t out_count = m;
    if (rng.NextBool(options.burst_fraction)) {
      out_count = m * (1 + rng.NextBounded(options.burst_multiplier));
      if (out_count >= v) out_count = m;  // early vertices: too few targets
    }
    // Dedup with the hash set, but emit in insertion order: unordered_set
    // iteration order is implementation-defined, and the emit order decides
    // which targets draw reciprocal-edge coin flips — iterating the set
    // directly would make the generated graph depend on the standard
    // library (the no-unordered-iteration lint rule).
    std::unordered_set<VertexId> chosen;
    std::vector<VertexId> chosen_order;
    chosen_order.reserve(out_count);
    while (chosen_order.size() < out_count) {
      VertexId target = pool[rng.NextBounded(pool.size())];
      if (target != v && chosen.insert(target).second) {
        chosen_order.push_back(target);
      }
    }
    for (VertexId target : chosen_order) {
      out.AddEdge(v, target);
      pool.push_back(v);
      pool.push_back(target);
      if (rng.NextBool(options.reciprocal_fraction)) {
        out.AddEdge(target, v);
      }
    }
  }
  // Crawled social-network snapshots are not ordered by account creation;
  // shuffle away the attachment process' temporal locality so streaming
  // partitioners see the stream order a real dataset would give them.
  util::Shuffle(out.mutable_edges(), rng);
  return out;
}

EdgeList GeneratePowerLawWeb(const PowerLawWebOptions& options) {
  SplitMix64 rng(options.seed);
  const VertexId n = options.num_vertices;
  GDP_CHECK_GT(n, 1u);
  EdgeList out("powerlaw-web", n, {});

  // Random permutation: rank r (Zipf-hot) maps to vertex perm[r]. Without
  // this, vertex 0 would always be the biggest hub and hash-partitioning
  // results would be artificially correlated across seeds.
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  util::Shuffle(perm, rng);

  util::ZipfSampler out_degree_dist(
      std::min<uint64_t>(options.max_out_degree, n - 1), options.out_alpha);
  util::ZipfSampler target_dist(n, options.in_alpha);

  for (VertexId v = 0; v < n; ++v) {
    uint64_t d = out_degree_dist.Sample(rng);
    for (uint64_t i = 0; i < d; ++i) {
      VertexId target = perm[target_dist.Sample(rng) - 1];
      if (target == v) continue;
      out.AddEdge(v, target);
    }
  }
  out.Deduplicate();
  return out;
}

EdgeList GenerateRmat(const RmatOptions& options) {
  SplitMix64 rng(options.seed);
  const uint32_t scale = options.scale;
  GDP_CHECK_LT(scale, 31u);
  const VertexId n = static_cast<VertexId>(1) << scale;
  EdgeList out("rmat", n, {});
  out.Reserve(options.num_edges);
  const double a = options.a;
  const double ab = options.a + options.b;
  const double abc = ab + options.c;
  for (uint64_t i = 0; i < options.num_edges; ++i) {
    VertexId src = 0;
    VertexId dst = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      double r = rng.NextDouble();
      if (r < a) {
        // top-left quadrant: neither bit set
      } else if (r < ab) {
        dst |= (1u << bit);
      } else if (r < abc) {
        src |= (1u << bit);
      } else {
        src |= (1u << bit);
        dst |= (1u << bit);
      }
    }
    if (src != dst) out.AddEdge(src, dst);
  }
  out.Deduplicate();
  out.set_name("rmat");
  return out;
}

EdgeList GenerateBipartite(const BipartiteOptions& options) {
  SplitMix64 rng(options.seed);
  GDP_CHECK_GT(options.num_items, 0u);
  GDP_CHECK_GT(options.num_users, 0u);
  const VertexId n = options.num_items + options.num_users;
  EdgeList out("bipartite", n, {});
  // Purchases per user are uniform on [1, 2*edges_per_user - 1]; reserve
  // the upper bound.
  out.Reserve(static_cast<uint64_t>(options.num_users) *
              (2 * options.edges_per_user - 1));
  util::ZipfSampler item_dist(options.num_items, options.item_alpha);
  // Shuffle item popularity ranks, as in GeneratePowerLawWeb.
  std::vector<VertexId> item_perm(options.num_items);
  std::iota(item_perm.begin(), item_perm.end(), 0);
  util::Shuffle(item_perm, rng);
  for (VertexId u = 0; u < options.num_users; ++u) {
    VertexId user = options.num_items + u;
    uint64_t purchases = 1 + rng.NextBounded(2 * options.edges_per_user - 1);
    for (uint64_t i = 0; i < purchases; ++i) {
      VertexId item = item_perm[item_dist.Sample(rng) - 1];
      out.AddEdge(user, item);
    }
  }
  out.Deduplicate();
  out.set_name("bipartite");
  return out;
}

EdgeList GenerateErdosRenyi(const ErdosRenyiOptions& options) {
  SplitMix64 rng(options.seed);
  const VertexId n = options.num_vertices;
  GDP_CHECK_GT(n, 1u);
  EdgeList out("erdos-renyi", n, {});
  out.Reserve(options.num_edges);
  std::unordered_set<uint64_t> seen;
  while (seen.size() < options.num_edges) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    if (u == v) continue;
    uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    if (seen.insert(key).second) out.AddEdge(u, v);
  }
  return out;
}

}  // namespace gdp::graph
