#include "graph/edge_list.h"

#include <algorithm>

#include "util/hash.h"

namespace gdp::graph {

void EdgeList::AddEdge(VertexId src, VertexId dst) {
  edges_.push_back({src, dst});
  VertexId hi = std::max(src, dst);
  if (hi >= num_vertices_) num_vertices_ = hi + 1;
}

void EdgeList::Deduplicate() {
  auto key = [](const Edge& e) {
    return (static_cast<uint64_t>(e.src) << 32) | e.dst;
  };
  std::sort(edges_.begin(), edges_.end(),
            [&](const Edge& a, const Edge& b) { return key(a) < key(b); });
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [](const Edge& e) { return e.src == e.dst; }),
               edges_.end());
}

EdgeList EdgeList::Symmetrized() const {
  EdgeList out(name_ + "-sym", num_vertices_, {});
  out.edges_.reserve(edges_.size() * 2);
  for (const Edge& e : edges_) {
    // Deduplicate would drop self loops after the sort; skipping them here
    // keeps them out of the doubled intermediate and the sort entirely.
    if (e.src == e.dst) continue;
    out.edges_.push_back(e);
    out.edges_.push_back({e.dst, e.src});
  }
  out.Deduplicate();
  return out;
}

uint64_t EdgeList::Fingerprint() const {
  uint64_t h = util::Mix64(0x6fd92e1d2c154b01ULL);
  h = util::HashCombine(h, num_vertices_);
  h = util::HashCombine(h, edges_.size());
  for (const Edge& e : edges_) {
    h = util::HashCombine(h, util::HashDirectedEdge(e.src, e.dst));
  }
  return h;
}

std::vector<uint64_t> EdgeList::OutDegrees() const {
  std::vector<uint64_t> deg(num_vertices_, 0);
  for (const Edge& e : edges_) ++deg[e.src];
  return deg;
}

std::vector<uint64_t> EdgeList::InDegrees() const {
  std::vector<uint64_t> deg(num_vertices_, 0);
  for (const Edge& e : edges_) ++deg[e.dst];
  return deg;
}

std::vector<uint64_t> EdgeList::TotalDegrees() const {
  std::vector<uint64_t> deg(num_vertices_, 0);
  for (const Edge& e : edges_) {
    ++deg[e.src];
    ++deg[e.dst];
  }
  return deg;
}

}  // namespace gdp::graph
