#include "graph/edge_block_store.h"

#include <algorithm>
#include <bit>
#include <fstream>
#include <istream>
#include <ostream>
#include <queue>
#include <utility>

#include "util/bitpack.h"
#include "util/check.h"
#include "util/hash.h"

namespace gdp::graph {

namespace {

/// Seed of the EdgeList::Fingerprint hash chain — must match
/// graph/edge_list.cc exactly (the fingerprint-equality contract).
constexpr uint64_t kFingerprintSeed = 0x6fd92e1d2c154b01ULL;

/// Chain value before the first edge: header terms folded in.
uint64_t FingerprintHeader(VertexId num_vertices, uint64_t num_edges) {
  uint64_t h = util::Mix64(kFingerprintSeed);
  h = util::HashCombine(h, num_vertices);
  h = util::HashCombine(h, num_edges);
  return h;
}

uint64_t ChainEdge(uint64_t h, Edge e) {
  return util::HashCombine(h, util::HashDirectedEdge(e.src, e.dst));
}

/// Bits needed for the zigzag of `delta` (>= 1 so a width of 0 never
/// occurs; max 33 for 32-bit vertex-id deltas).
uint32_t DeltaWidth(int64_t delta) {
  const uint32_t w =
      static_cast<uint32_t>(std::bit_width(util::ZigZag(delta)));
  return w > 0 ? w : 1;
}

uint64_t SortKey(Edge e) {
  return (static_cast<uint64_t>(e.src) << 32) | e.dst;
}

}  // namespace

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

EdgeBlockStoreBuilder::EdgeBlockStoreBuilder(
    EdgeBlockStore::Options options) {
  GDP_CHECK_GE(options.block_size_edges, 1u);
  store_.block_size_edges_ = options.block_size_edges;
  pending_.reserve(options.block_size_edges);
}

void EdgeBlockStoreBuilder::set_num_vertices(VertexId num_vertices) {
  if (num_vertices > store_.num_vertices_) {
    store_.num_vertices_ = num_vertices;
  }
}

void EdgeBlockStoreBuilder::Append(Edge e) {
  const VertexId hi = e.src > e.dst ? e.src : e.dst;
  if (hi >= store_.num_vertices_) store_.num_vertices_ = hi + 1;
  pending_.push_back(e);
  if (pending_.size() == store_.block_size_edges_) FlushBlock();
}

void EdgeBlockStoreBuilder::FlushBlock() {
  if (pending_.empty()) return;
  EdgeBlockStore::BlockMeta meta;
  meta.first = pending_[0];
  // Fixed per-block widths: the max over each delta stream.
  uint32_t src_width = 1;
  uint32_t dst_width = 1;
  for (size_t i = 1; i < pending_.size(); ++i) {
    src_width = std::max(
        src_width, DeltaWidth(static_cast<int64_t>(pending_[i].src) -
                              static_cast<int64_t>(pending_[i - 1].src)));
    dst_width = std::max(
        dst_width, DeltaWidth(static_cast<int64_t>(pending_[i].dst) -
                              static_cast<int64_t>(pending_[i - 1].dst)));
  }
  meta.src_width = static_cast<uint8_t>(src_width);
  meta.dst_width = static_cast<uint8_t>(dst_width);

  // Payload goes at the current end of the bit stream. Blocks only OR bits
  // into disjoint positions, so growing the (zero-filled) word array keeps
  // earlier blocks intact; one padding word past the end keeps the two-word
  // decode load in bounds.
  const uint64_t bit_offset =
      store_.blocks_.empty()
          ? 0
          : store_.blocks_.back().bit_offset +
                (store_.BlockEnd(store_.blocks_.size() - 1) -
                 store_.BlockBegin(store_.blocks_.size() - 1) - 1) *
                    (store_.blocks_.back().src_width +
                     store_.blocks_.back().dst_width);
  meta.bit_offset = bit_offset;
  const uint64_t payload_bits =
      (pending_.size() - 1) *
      static_cast<uint64_t>(src_width + dst_width);
  store_.words_.resize((bit_offset + payload_bits + 63) / 64 + 1, 0);

  uint64_t pos = bit_offset;
  for (size_t i = 1; i < pending_.size(); ++i) {
    util::WritePackedBits(store_.words_.data(), pos, meta.src_width,
                          util::ZigZag(static_cast<int64_t>(pending_[i].src) -
                                       static_cast<int64_t>(pending_[i - 1].src)));
    pos += meta.src_width;
    util::WritePackedBits(store_.words_.data(), pos, meta.dst_width,
                          util::ZigZag(static_cast<int64_t>(pending_[i].dst) -
                                       static_cast<int64_t>(pending_[i - 1].dst)));
    pos += meta.dst_width;
  }
  store_.num_edges_ += pending_.size();
  store_.blocks_.push_back(meta);
  pending_.clear();
}

EdgeBlockStore EdgeBlockStoreBuilder::Finish() && {
  FlushBlock();
  // Fingerprint chain, computed by decoding each sealed block (one block
  // buffer resident): the chain certifies exactly what the store replays,
  // and must equal EdgeList::Fingerprint() of the same stream.
  uint64_t h = FingerprintHeader(store_.num_vertices_, store_.num_edges_);
  std::vector<Edge> buf;
  for (uint64_t b = 0; b < store_.num_blocks(); ++b) {
    store_.DecodeBlock(b, &buf);
    for (const Edge& e : buf) h = ChainEdge(h, e);
    store_.blocks_[b].chain = h;
  }
  store_.fingerprint_ = h;
  return std::move(store_);
}

EdgeBlockStore EdgeBlockStore::FromEdges(const EdgeList& edges,
                                         Options options) {
  Builder builder(options);
  builder.set_name(edges.name());
  builder.set_num_vertices(edges.num_vertices());
  for (const Edge& e : edges.edges()) builder.Append(e);
  return std::move(builder).Finish();
}

// ---------------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------------

void EdgeBlockStore::DecodeBlock(uint64_t b, std::vector<Edge>* out) const {
  GDP_DCHECK_LT(b, blocks_.size());
  const BlockMeta& meta = blocks_[b];
  const uint64_t count = BlockEnd(b) - BlockBegin(b);
  out->resize(count);
  (*out)[0] = meta.first;
  const uint64_t* words = words_.data();
  uint64_t pos = meta.bit_offset;
  int64_t src = meta.first.src;
  int64_t dst = meta.first.dst;
  for (uint64_t i = 1; i < count; ++i) {
    src += util::UnZigZag(util::ReadPackedBits(words, pos, meta.src_width));
    pos += meta.src_width;
    dst += util::UnZigZag(util::ReadPackedBits(words, pos, meta.dst_width));
    pos += meta.dst_width;
    (*out)[i] = {static_cast<VertexId>(src), static_cast<VertexId>(dst)};
  }
}

Edge EdgeBlockStore::Cursor::Next() {
  GDP_DCHECK_LT(index_, store_->num_edges_);
  Edge e;
  const BlockMeta& meta = store_->blocks_[block_];
  if (index_ == store_->BlockBegin(block_)) {
    bit_pos_ = meta.bit_offset;
    prev_src_ = meta.first.src;
    prev_dst_ = meta.first.dst;
    e = meta.first;
  } else {
    prev_src_ += util::UnZigZag(
        util::ReadPackedBits(store_->words_.data(), bit_pos_, meta.src_width));
    bit_pos_ += meta.src_width;
    prev_dst_ += util::UnZigZag(
        util::ReadPackedBits(store_->words_.data(), bit_pos_, meta.dst_width));
    bit_pos_ += meta.dst_width;
    e = {static_cast<VertexId>(prev_src_), static_cast<VertexId>(prev_dst_)};
  }
  ++index_;
  if (index_ == store_->BlockEnd(block_)) ++block_;
  return e;
}

uint64_t EdgeBlockStore::ResidentBytes() const {
  return words_.size() * sizeof(uint64_t) +
         blocks_.size() * sizeof(BlockMeta) + sizeof(*this);
}

EdgeList EdgeBlockStore::Materialize() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  std::vector<Edge> buf;
  for (uint64_t b = 0; b < num_blocks(); ++b) {
    DecodeBlock(b, &buf);
    edges.insert(edges.end(), buf.begin(), buf.end());
  }
  return EdgeList(name_, num_vertices_, std::move(edges));
}

// ---------------------------------------------------------------------------
// Streaming symmetrize
// ---------------------------------------------------------------------------

EdgeBlockStore EdgeBlockStore::StreamingSymmetrized(Options options) const {
  // Phase 1: one locally sorted, deduplicated, loop-free run per input
  // block, kept compressed. Peak decoded state: one input block plus its
  // doubled run.
  std::vector<EdgeBlockStore> runs;
  runs.reserve(num_blocks());
  std::vector<Edge> buf;
  std::vector<Edge> local;
  for (uint64_t b = 0; b < num_blocks(); ++b) {
    DecodeBlock(b, &buf);
    local.clear();
    local.reserve(buf.size() * 2);
    for (const Edge& e : buf) {
      if (e.src == e.dst) continue;
      local.push_back(e);
      local.push_back({e.dst, e.src});
    }
    std::sort(local.begin(), local.end(), [](const Edge& a, const Edge& b2) {
      return SortKey(a) < SortKey(b2);
    });
    local.erase(std::unique(local.begin(), local.end()), local.end());
    Builder run(options);
    for (const Edge& e : local) run.Append(e);
    runs.push_back(std::move(run).Finish());
  }

  // Phase 2: k-way merge through O(1)-state cursors, deduplicating across
  // runs on the fly. Resident state: the run cursors plus the output
  // builder's partial block.
  Builder out(options);
  out.set_name(name_ + "-sym");
  out.set_num_vertices(num_vertices_);
  struct HeapItem {
    uint64_t key;
    uint32_t run;
    Edge e;
    bool operator>(const HeapItem& other) const {
      return key != other.key ? key > other.key : run > other.run;
    }
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  std::vector<Cursor> cursors;
  cursors.reserve(runs.size());
  for (uint32_t r = 0; r < runs.size(); ++r) {
    cursors.emplace_back(runs[r]);
    if (!cursors[r].Done()) {
      const Edge e = cursors[r].Next();
      heap.push({SortKey(e), r, e});
    }
  }
  bool have_last = false;
  uint64_t last_key = 0;
  while (!heap.empty()) {
    const HeapItem item = heap.top();
    heap.pop();
    if (!have_last || item.key != last_key) {
      out.Append(item.e);
      last_key = item.key;
      have_last = true;
    }
    if (!cursors[item.run].Done()) {
      const Edge e = cursors[item.run].Next();
      heap.push({SortKey(e), item.run, e});
    }
  }
  return std::move(out).Finish();
}

// ---------------------------------------------------------------------------
// Validation + on-disk format
// ---------------------------------------------------------------------------

util::Status EdgeBlockStore::Validate() const {
  uint64_t edges_covered = 0;
  for (uint64_t b = 0; b < num_blocks(); ++b) {
    if (BlockEnd(b) <= BlockBegin(b)) {
      return util::Status::Internal("edge block store: empty block " +
                                    std::to_string(b));
    }
    edges_covered += BlockEnd(b) - BlockBegin(b);
  }
  if (edges_covered != num_edges_) {
    return util::Status::Internal(
        "edge block store: blocks cover " + std::to_string(edges_covered) +
        " edges, header says " + std::to_string(num_edges_));
  }
  uint64_t h = FingerprintHeader(num_vertices_, num_edges_);
  std::vector<Edge> buf;
  for (uint64_t b = 0; b < num_blocks(); ++b) {
    DecodeBlock(b, &buf);
    for (const Edge& e : buf) {
      if (e.src >= num_vertices_ || e.dst >= num_vertices_) {
        return util::Status::Internal(
            "edge block store: decoded endpoint out of range in block " +
            std::to_string(b));
      }
      h = ChainEdge(h, e);
    }
    if (h != blocks_[b].chain) {
      return util::Status::Internal(
          "edge block store: fingerprint chain mismatch at block " +
          std::to_string(b));
    }
  }
  if (h != fingerprint_) {
    return util::Status::Internal("edge block store: fingerprint mismatch");
  }
  return util::Status::Ok();
}

namespace {

constexpr uint64_t kMagic = 0x31534b4c42504447ULL;  // "GDPBLKS1"

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

util::Status EdgeBlockStore::SerializeTo(std::ostream& out) const {
  WritePod(out, kMagic);
  WritePod(out, static_cast<uint64_t>(name_.size()));
  out.write(name_.data(), static_cast<std::streamsize>(name_.size()));
  WritePod(out, num_vertices_);
  WritePod(out, block_size_edges_);
  WritePod(out, num_edges_);
  WritePod(out, fingerprint_);
  WritePod(out, static_cast<uint64_t>(blocks_.size()));
  WritePod(out, static_cast<uint64_t>(words_.size()));
  for (const BlockMeta& m : blocks_) {
    WritePod(out, m.bit_offset);
    WritePod(out, m.chain);
    WritePod(out, m.first.src);
    WritePod(out, m.first.dst);
    WritePod(out, m.src_width);
    WritePod(out, m.dst_width);
  }
  out.write(reinterpret_cast<const char*>(words_.data()),
            static_cast<std::streamsize>(words_.size() * sizeof(uint64_t)));
  if (!out) return util::Status::Internal("edge block store: write failed");
  return util::Status::Ok();
}

util::StatusOr<EdgeBlockStore> EdgeBlockStore::DeserializeFrom(
    std::istream& in) {
  uint64_t magic = 0;
  if (!ReadPod(in, &magic) || magic != kMagic) {
    return util::Status::InvalidArgument(
        "edge block store: bad magic (not a GDPBLKS1 file)");
  }
  EdgeBlockStore store;
  uint64_t name_size = 0;
  uint64_t num_block_entries = 0;
  uint64_t num_words = 0;
  if (!ReadPod(in, &name_size)) {
    return util::Status::InvalidArgument("edge block store: truncated header");
  }
  store.name_.resize(name_size);
  in.read(store.name_.data(), static_cast<std::streamsize>(name_size));
  if (!in || !ReadPod(in, &store.num_vertices_) ||
      !ReadPod(in, &store.block_size_edges_) ||
      !ReadPod(in, &store.num_edges_) || !ReadPod(in, &store.fingerprint_) ||
      !ReadPod(in, &num_block_entries) || !ReadPod(in, &num_words)) {
    return util::Status::InvalidArgument("edge block store: truncated header");
  }
  if (store.block_size_edges_ == 0) {
    return util::Status::InvalidArgument(
        "edge block store: zero block size");
  }
  const uint64_t expect_blocks =
      (store.num_edges_ + store.block_size_edges_ - 1) /
      store.block_size_edges_;
  if (num_block_entries != expect_blocks) {
    return util::Status::InvalidArgument(
        "edge block store: block count " + std::to_string(num_block_entries) +
        " does not cover " + std::to_string(store.num_edges_) + " edges");
  }
  store.blocks_.resize(num_block_entries);
  for (BlockMeta& m : store.blocks_) {
    if (!ReadPod(in, &m.bit_offset) || !ReadPod(in, &m.chain) ||
        !ReadPod(in, &m.first.src) || !ReadPod(in, &m.first.dst) ||
        !ReadPod(in, &m.src_width) || !ReadPod(in, &m.dst_width)) {
      return util::Status::InvalidArgument(
          "edge block store: truncated block table");
    }
  }
  store.words_.resize(num_words);
  in.read(reinterpret_cast<char*>(store.words_.data()),
          static_cast<std::streamsize>(num_words * sizeof(uint64_t)));
  if (!in) {
    return util::Status::InvalidArgument(
        "edge block store: truncated payload");
  }
  // Decode offsets must stay inside the padded word array (the two-word
  // load may touch one word past the last encoded bit).
  for (uint64_t b = 0; b < store.num_blocks(); ++b) {
    const BlockMeta& m = store.blocks_[b];
    const uint64_t count = store.BlockEnd(b) - store.BlockBegin(b);
    if (m.src_width == 0 || m.dst_width == 0 || m.src_width > 33 ||
        m.dst_width > 33) {
      return util::Status::InvalidArgument(
          "edge block store: invalid delta width in block " +
          std::to_string(b));
    }
    const uint64_t end_bit =
        m.bit_offset + (count - 1) * (m.src_width + m.dst_width);
    if (count == 0 || (end_bit + 63) / 64 + 1 > store.words_.size()) {
      return util::Status::InvalidArgument(
          "edge block store: block " + std::to_string(b) +
          " payload exceeds word array");
    }
  }
  return store;
}

util::Status EdgeBlockStore::SaveTo(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return util::Status::NotFound("cannot open for write: " + path);
  }
  GDP_RETURN_IF_ERROR(SerializeTo(out));
  out.close();
  if (!out) return util::Status::Internal("write failed: " + path);
  return util::Status::Ok();
}

util::StatusOr<EdgeBlockStore> EdgeBlockStore::LoadFrom(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::NotFound("cannot open: " + path);
  return DeserializeFrom(in);
}

}  // namespace gdp::graph
