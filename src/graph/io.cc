#include "graph/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace gdp::graph {

util::Status SaveEdgeList(const EdgeList& edges, const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::NotFound("cannot open for write: " + path);
  out << "# " << edges.name() << " vertices=" << edges.num_vertices()
      << " edges=" << edges.num_edges() << "\n";
  for (const Edge& e : edges.edges()) {
    out << e.src << ' ' << e.dst << '\n';
  }
  out.flush();
  if (!out) return util::Status::Internal("write failed: " + path);
  return util::Status::Ok();
}

util::StatusOr<EdgeList> LoadEdgeList(const std::string& path, bool renumber) {
  std::ifstream in(path);
  if (!in) return util::Status::NotFound("cannot open: " + path);
  EdgeList edges(path, 0, {});
  std::unordered_map<uint64_t, VertexId> remap;
  auto map_id = [&](uint64_t raw) -> VertexId {
    if (!renumber) return static_cast<VertexId>(raw);
    auto [it, inserted] =
        remap.try_emplace(raw, static_cast<VertexId>(remap.size()));
    (void)inserted;
    return it->second;
  };
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ss(line);
    uint64_t u = 0, v = 0;
    if (!(ss >> u >> v)) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "parse error at line %llu",
                    static_cast<unsigned long long>(line_no));
      return util::Status::InvalidArgument(std::string(buf) + " in " + path);
    }
    edges.AddEdge(map_id(u), map_id(v));
  }
  return edges;
}

}  // namespace gdp::graph
