#ifndef GDP_GRAPH_CSR_H_
#define GDP_GRAPH_CSR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.h"
#include "graph/types.h"

namespace gdp::graph {

/// Compressed-sparse-row adjacency for one direction (out- or in-edges).
/// Neighbors of v live in adjacency_[offsets_[v] .. offsets_[v+1]).
class Csr {
 public:
  Csr() = default;

  /// Builds out-adjacency when by_source is true; in-adjacency otherwise.
  static Csr Build(const EdgeList& edges, bool by_source);

  VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  uint64_t num_edges() const { return adjacency_.size(); }

  std::span<const VertexId> Neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  uint64_t Degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Raw structure accessors for validators and serializers. offsets() has
  /// num_vertices()+1 entries (or none for a default-constructed Csr) and
  /// must be monotone with offsets().back() == adjacency().size().
  std::span<const uint64_t> offsets() const { return offsets_; }
  std::span<const VertexId> adjacency() const { return adjacency_; }

 private:
  std::vector<uint64_t> offsets_;
  std::vector<VertexId> adjacency_;
};

/// A local (single-machine) graph view with both adjacency directions; used
/// by reference (non-distributed) application implementations in tests to
/// validate the distributed engines' results.
class LocalGraph {
 public:
  explicit LocalGraph(const EdgeList& edges)
      : num_vertices_(edges.num_vertices()),
        num_edges_(edges.num_edges()),
        out_(Csr::Build(edges, /*by_source=*/true)),
        in_(Csr::Build(edges, /*by_source=*/false)) {}

  VertexId num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return num_edges_; }
  const Csr& out() const { return out_; }
  const Csr& in() const { return in_; }

 private:
  VertexId num_vertices_ = 0;
  uint64_t num_edges_ = 0;
  Csr out_;
  Csr in_;
};

}  // namespace gdp::graph

#endif  // GDP_GRAPH_CSR_H_
