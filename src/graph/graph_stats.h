#ifndef GDP_GRAPH_GRAPH_STATS_H_
#define GDP_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <map>
#include <string>

#include "graph/edge_list.h"
#include "util/stats.h"

namespace gdp::graph {

/// Degree-distribution class of a graph, following the taxonomy the paper's
/// Table 4.2 uses for its datasets ("Low-Degree", "Heavy-Tailed",
/// "Power-Law"). The distinction between heavy-tailed and power-law follows
/// §5.4.2 / Fig 5.8: both are skewed, but heavy-tailed graphs (Twitter,
/// LiveJournal) have *fewer low-degree vertices than their power-law
/// regression line predicts*, while power-law graphs (UK-web) do not.
enum class GraphClass {
  kLowDegree,    ///< road networks: small max degree, large diameter
  kHeavyTailed,  ///< social networks: skewed, deficient in low-degree nodes
  kPowerLaw,     ///< web graphs: skewed with a large low-degree population
};

/// Human-readable name for a GraphClass.
const char* GraphClassName(GraphClass cls);

/// Summary statistics of a graph's degree structure, computed in one pass
/// over the edge list. Feeds the advisor's decision trees and the Fig 5.8
/// degree-distribution benchmark.
struct GraphStats {
  std::string name;
  VertexId num_vertices = 0;
  uint64_t num_edges = 0;
  uint64_t max_in_degree = 0;
  uint64_t max_out_degree = 0;
  uint64_t max_total_degree = 0;
  double mean_total_degree = 0;
  /// Fraction of vertices with total degree <= 2.
  double low_degree_fraction = 0;
  /// Estimated power-law exponent alpha from the in-degree histogram
  /// (count ~ degree^-alpha on log-log scale).
  double power_law_alpha = 0;
  /// R^2 of the log-log fit; higher = closer to a pure power law.
  double power_law_r2 = 0;
  /// Ratio of observed degree<=2 vertex count to the count predicted by the
  /// power-law fit. < 1 means the graph is deficient in low-degree vertices
  /// (heavy-tailed, like Twitter); >= 1 means power-law-like (UK-web).
  double low_degree_residual = 0;
  /// In-degree histogram (degree -> vertex count), for Fig 5.8.
  std::map<uint64_t, uint64_t> in_degree_histogram;

  GraphClass classified = GraphClass::kLowDegree;
};

/// Computes GraphStats, including the classification.
GraphStats ComputeGraphStats(const EdgeList& edges);

/// Classification rule only (exposed for tests): a graph is low-degree when
/// its max total degree is small in absolute terms and relative to the mean;
/// otherwise it is heavy-tailed or power-law according to the low-degree
/// residual against the fitted power law.
GraphClass ClassifyGraph(const GraphStats& stats);

}  // namespace gdp::graph

#endif  // GDP_GRAPH_GRAPH_STATS_H_
