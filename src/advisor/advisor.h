#ifndef GDP_ADVISOR_ADVISOR_H_
#define GDP_ADVISOR_ADVISOR_H_

#include <string>
#include <utility>
#include <vector>

#include "graph/graph_stats.h"
#include "partition/partitioner.h"

namespace gdp::advisor {

/// Which system the user is picking a strategy for.
enum class System { kPowerGraph, kPowerLyra, kGraphX };

const char* SystemName(System system);

/// Everything the paper's decision trees condition on.
struct Workload {
  /// Degree-distribution class of the input graph (compute via
  /// graph::ComputeGraphStats, or supply directly).
  graph::GraphClass graph_class = graph::GraphClass::kLowDegree;
  /// Expected compute-time / ingress-time ratio. > 1 means long-running
  /// jobs (k-core, many-iteration PageRank, or partitions reused across
  /// jobs); <= 1 means short jobs dominated by loading.
  double compute_ingress_ratio = 1.0;
  /// Number of machines in the cluster.
  uint32_t num_machines = 0;
  /// Whether the application is "natural" — gathers from one edge
  /// direction and scatters to the other (§6.1). Only PowerLyra's tree
  /// consults this.
  bool natural_application = false;
  /// Ingress memory budget in bytes (0 = unbounded). Only the
  /// expansion-family tree consults this: it decides whether in-memory NE
  /// fits, and which budget-aware fallback to take when it does not.
  uint64_t ingress_memory_budget_bytes = 0;
  /// Edge count of the input (0 = unknown); sizes NE's resident state for
  /// the budget test above.
  uint64_t num_edges = 0;
};

/// A strategy recommendation plus the tree path that produced it.
struct Recommendation {
  /// Acceptable strategies, best first (the paper often recommends
  /// "HDRF/Oblivious" jointly).
  std::vector<partition::StrategyKind> strategies;
  /// Human-readable decision path, e.g. "heavy-tailed -> N^2 machines ->
  /// Grid".
  std::string rationale;

  partition::StrategyKind primary() const { return strategies.front(); }
};

/// True when `n` is a perfect square — the "N^2 machines?" test in the
/// PowerGraph/PowerLyra trees (Grid's native requirement).
bool IsPerfectSquare(uint32_t n);

/// The paper's decision tree for PowerGraph (Fig 5.9).
Recommendation RecommendPowerGraph(const Workload& workload);

/// The paper's decision tree for PowerLyra (Fig 6.6); with
/// `all_strategies` true, returns the Chapter 8 variant (identical shape,
/// "Oblivious" widened to "HDRF/Oblivious", §8.2.1).
Recommendation RecommendPowerLyra(const Workload& workload,
                                  bool all_strategies = false);

/// GraphX: the §7.4 rule (native strategies only: Canonical Random for
/// low-degree, 2D otherwise) or, with `all_strategies`, the Fig 9.3 tree
/// (low-degree graphs additionally split on job length).
Recommendation RecommendGraphX(const Workload& workload,
                               bool all_strategies = false);

/// Dispatches on `system` (native strategy sets).
Recommendation Recommend(System system, const Workload& workload);

/// Picks within the neighbour-expansion family (NE/SNE/2PS/HEP) from the
/// registry's traits rather than a hard-coded tree: when the workload has
/// no budget (or NE's whole-graph state fits it), replication quality wins
/// and NE is recommended; under a binding budget the budget-aware members
/// (from partition::MemoryBudgetAwareStrategies()) take over — HEP when
/// the graph is skewed enough that hub exclusion buys headroom, SNE
/// otherwise — with 2PS as the bounded-state streaming fallback.
Recommendation RecommendExpansionFamily(const Workload& workload);

/// Measurement-based alternative to the decision trees: streams only the
/// first `sample_fraction` of the edge list through each candidate
/// strategy and ranks them by the sampled replication factor. Replication
/// factors grow smoothly with the prefix length, so the sample ordering
/// almost always matches the full ordering at a fraction of the cost —
/// a practical shortcut when the graph's class is unknown or borderline.
struct ProbeResult {
  partition::StrategyKind best;
  /// (strategy, sampled replication factor), best first.
  std::vector<std::pair<partition::StrategyKind, double>> ranking;
};
ProbeResult ProbeStrategies(
    const graph::EdgeList& edges, uint32_t num_machines,
    const std::vector<partition::StrategyKind>& candidates,
    double sample_fraction = 0.1, uint64_t seed = 0);

}  // namespace gdp::advisor

#endif  // GDP_ADVISOR_ADVISOR_H_
