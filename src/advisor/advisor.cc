#include "advisor/advisor.h"

#include <algorithm>
#include <cmath>

#include "partition/ingest.h"
#include "partition/strategy_registry.h"
#include "sim/cluster.h"

namespace gdp::advisor {

using graph::GraphClass;
using partition::StrategyKind;

const char* SystemName(System system) {
  switch (system) {
    case System::kPowerGraph:
      return "PowerGraph";
    case System::kPowerLyra:
      return "PowerLyra";
    case System::kGraphX:
      return "GraphX";
  }
  return "?";
}

bool IsPerfectSquare(uint32_t n) {
  uint32_t root = static_cast<uint32_t>(std::sqrt(static_cast<double>(n)));
  // Guard against floating-point rounding on either side.
  for (uint32_t r = root > 0 ? root - 1 : 0; r <= root + 1; ++r) {
    if (r * r == n) return true;
  }
  return false;
}

Recommendation RecommendPowerGraph(const Workload& workload) {
  // Fig 5.9.
  if (workload.graph_class == GraphClass::kLowDegree) {
    return {{StrategyKind::kHdrf, StrategyKind::kOblivious},
            "low-degree graph -> HDRF/Oblivious"};
  }
  if (workload.graph_class == GraphClass::kHeavyTailed) {
    if (IsPerfectSquare(workload.num_machines)) {
      return {{StrategyKind::kGrid},
              "heavy-tailed graph -> N^2 machines -> Grid"};
    }
    return {{StrategyKind::kHdrf, StrategyKind::kOblivious},
            "heavy-tailed graph -> non-square cluster -> HDRF/Oblivious"};
  }
  // Power-law / other graphs: job duration decides.
  if (workload.compute_ingress_ratio > 1.0) {
    return {{StrategyKind::kHdrf, StrategyKind::kOblivious},
            "power-law graph -> compute/ingress > 1 -> HDRF/Oblivious"};
  }
  if (IsPerfectSquare(workload.num_machines)) {
    return {{StrategyKind::kGrid},
            "power-law graph -> compute/ingress <= 1 -> N^2 machines -> "
            "Grid"};
  }
  return {{StrategyKind::kHdrf, StrategyKind::kOblivious},
          "power-law graph -> compute/ingress <= 1 -> non-square cluster -> "
          "HDRF/Oblivious"};
}

Recommendation RecommendPowerLyra(const Workload& workload,
                                  bool all_strategies) {
  // Fig 6.6, with the Chapter 8 widening of Oblivious to HDRF/Oblivious.
  std::vector<StrategyKind> oblivious_like =
      all_strategies
          ? std::vector<StrategyKind>{StrategyKind::kHdrf,
                                      StrategyKind::kOblivious}
          : std::vector<StrategyKind>{StrategyKind::kOblivious};
  const char* oblivious_name =
      all_strategies ? "HDRF/Oblivious" : "Oblivious";

  if (workload.graph_class == GraphClass::kLowDegree) {
    return {oblivious_like,
            std::string("low-degree graph -> ") + oblivious_name};
  }
  if (workload.natural_application) {
    return {{StrategyKind::kHybrid},
            "skewed graph -> natural application -> Hybrid"};
  }
  if (workload.graph_class == GraphClass::kHeavyTailed) {
    if (IsPerfectSquare(workload.num_machines)) {
      return {{StrategyKind::kGrid},
              "heavy-tailed graph -> non-natural app -> N^2 machines -> "
              "Grid"};
    }
    return {{StrategyKind::kHybrid},
            "heavy-tailed graph -> non-natural app -> non-square cluster "
            "-> Hybrid"};
  }
  if (workload.compute_ingress_ratio > 1.0) {
    return {oblivious_like,
            std::string("power-law graph -> compute/ingress > 1 -> ") +
                oblivious_name};
  }
  if (IsPerfectSquare(workload.num_machines)) {
    return {{StrategyKind::kGrid},
            "power-law graph -> compute/ingress <= 1 -> N^2 machines -> "
            "Grid"};
  }
  return {{StrategyKind::kHybrid},
          "power-law graph -> compute/ingress <= 1 -> non-square cluster "
          "-> Hybrid"};
}

Recommendation RecommendGraphX(const Workload& workload,
                               bool all_strategies) {
  if (workload.graph_class == GraphClass::kLowDegree) {
    if (all_strategies && workload.compute_ingress_ratio > 1.0) {
      // Fig 9.3: long jobs on low-degree graphs favor the greedy imports.
      return {{StrategyKind::kHdrf, StrategyKind::kOblivious},
              "low-degree graph -> long job -> HDRF/Oblivious"};
    }
    return {{StrategyKind::kRandom},
            all_strategies
                ? "low-degree graph -> short job -> Canonical Random"
                : "low-degree graph -> Canonical Random"};
  }
  // Power-law / heavy-tailed: 2D regardless of job length (§7.4, §9.2.2).
  return {{StrategyKind::kTwoD}, "skewed graph -> 2D"};
}

ProbeResult ProbeStrategies(
    const graph::EdgeList& edges, uint32_t num_machines,
    const std::vector<StrategyKind>& candidates, double sample_fraction,
    uint64_t seed) {
  // Prefix sample: the paper's datasets stream in file order, so the
  // candidates see exactly what a real partial ingest would see.
  uint64_t sample_edges = static_cast<uint64_t>(
      static_cast<double>(edges.num_edges()) * sample_fraction);
  if (sample_edges < 1) sample_edges = edges.num_edges();
  graph::EdgeList sample("probe-sample", edges.num_vertices(), {});
  sample.mutable_edges().assign(edges.edges().begin(),
                                edges.edges().begin() + sample_edges);

  ProbeResult result;
  for (StrategyKind strategy : candidates) {
    sim::Cluster cluster(num_machines, sim::CostModel{});
    partition::PartitionContext context;
    context.num_partitions = num_machines;
    context.num_vertices = edges.num_vertices();
    context.num_loaders = num_machines;
    context.seed = seed;
    partition::IngestResult ingest = partition::IngestWithStrategy(
        sample, strategy, context, cluster);
    result.ranking.emplace_back(strategy,
                                ingest.report.replication_factor);
  }
  std::sort(result.ranking.begin(), result.ranking.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  result.best = result.ranking.front().first;
  return result;
}

Recommendation RecommendExpansionFamily(const Workload& workload) {
  // NE's resident state is roughly the buffered edge list plus the chunk
  // CSR: edge + two adjacency entries + plan slot, ~28 bytes per edge.
  constexpr uint64_t kNeBytesPerEdge = 28;
  const uint64_t budget = workload.ingress_memory_budget_bytes;
  const uint64_t ne_bytes = workload.num_edges * kNeBytesPerEdge;
  if (budget == 0 || ne_bytes <= budget) {
    return {{StrategyKind::kNe},
            "expansion family -> whole graph fits the budget -> NE"};
  }
  // The budget binds: choose among the registry's budget-aware members.
  // (Today that set is {SNE, HEP}; a registered budget-aware newcomer
  // automatically becomes eligible here.)
  const std::vector<StrategyKind> budget_aware =
      partition::MemoryBudgetAwareStrategies();
  const bool skewed = workload.graph_class != GraphClass::kLowDegree;
  std::vector<StrategyKind> ranked;
  if (skewed) {
    // Hub exclusion shrinks the in-memory phase dramatically on skewed
    // graphs, so HEP first; SNE as the chunked alternative.
    for (StrategyKind k : budget_aware) {
      if (k == StrategyKind::kHep) ranked.push_back(k);
    }
    for (StrategyKind k : budget_aware) {
      if (k != StrategyKind::kHep) ranked.push_back(k);
    }
  } else {
    // No hubs to exclude: chunked expansion keeps quality, so SNE first.
    for (StrategyKind k : budget_aware) {
      if (k != StrategyKind::kHep) ranked.push_back(k);
    }
    for (StrategyKind k : budget_aware) {
      if (k == StrategyKind::kHep) ranked.push_back(k);
    }
  }
  // Bounded-state streaming fallback for when even chunked expansion is
  // unwelcome (e.g. a strict single-pass-quality requirement).
  ranked.push_back(StrategyKind::kTwoPs);
  return {ranked, skewed
                      ? "expansion family -> budget binds -> skewed graph "
                        "-> HEP, then SNE/2PS"
                      : "expansion family -> budget binds -> low-degree "
                        "graph -> SNE, then HEP/2PS"};
}

Recommendation Recommend(System system, const Workload& workload) {
  switch (system) {
    case System::kPowerGraph:
      return RecommendPowerGraph(workload);
    case System::kPowerLyra:
      return RecommendPowerLyra(workload);
    case System::kGraphX:
      return RecommendGraphX(workload);
  }
  return RecommendPowerGraph(workload);
}

}  // namespace gdp::advisor
