#ifndef GDP_SIM_COST_MODEL_H_
#define GDP_SIM_COST_MODEL_H_

#include <cstdint>

namespace gdp::sim {

/// Converts abstract counters (work units, bytes, messages) into simulated
/// seconds. All conversions are monotone, so orderings and crossover points
/// between partitioning strategies — the paper's actual findings — are
/// preserved regardless of the constants chosen; the defaults are picked to
/// give time scales of the same order as the paper's clusters (Gbit-class
/// links, ~10^8 simple edge operations/second per machine).
struct CostModel {
  /// Seconds per unit of compute work. One "work unit" is one simple
  /// per-edge or per-vertex operation (a gather contribution, an apply, a
  /// hash during ingress).
  double seconds_per_work = 1e-8;

  /// Per-machine network bandwidth (bytes/second, full duplex).
  double bandwidth_bytes_per_second = 125.0e6;  // ~1 Gbit/s

  /// Fixed per-synchronization-round latency (one barrier / round trip).
  double barrier_latency_seconds = 2e-4;

  /// Seconds to transmit `bytes` from one machine.
  double TransferSeconds(uint64_t bytes) const {
    return static_cast<double>(bytes) / bandwidth_bytes_per_second;
  }

  /// Seconds to execute `work` units of computation on one machine.
  double WorkSeconds(double work) const { return work * seconds_per_work; }
};

/// Sizes (bytes) of the simulated runtime objects, used for memory and
/// network accounting. Chosen to match a C++ system storing 8-byte vertex
/// data plus bookkeeping, so absolute memory numbers land in a plausible
/// range; only relative differences matter for the reproduction.
struct ObjectSizes {
  uint64_t vertex_record = 64;    ///< master vertex record incl. program state
  uint64_t mirror_record = 48;    ///< mirror replica record
  uint64_t edge_record = 16;      ///< one stored edge (two ids + data)
  uint64_t gather_message = 24;   ///< partial aggregate mirror -> master
  uint64_t sync_message = 24;     ///< master -> mirror state update
  uint64_t scatter_message = 24;  ///< Pregel-style message along an edge
  uint64_t control_message = 8;   ///< activation signal
};

}  // namespace gdp::sim

#endif  // GDP_SIM_COST_MODEL_H_
