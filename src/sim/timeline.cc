#include "sim/timeline.h"

namespace gdp::sim {

void Timeline::Sample(const Cluster& cluster) {
  TimelineSample s;
  s.time_seconds = cluster.now_seconds();
  uint64_t total = 0;
  uint64_t max_mem = 0;
  for (uint32_t m = 0; m < cluster.num_machines(); ++m) {
    uint64_t mem = cluster.machine(m).memory_bytes();
    total += mem;
    if (mem > max_mem) max_mem = mem;
  }
  s.mean_memory_bytes = cluster.num_machines() > 0
                            ? static_cast<double>(total) /
                                  cluster.num_machines()
                            : 0.0;
  s.max_memory_bytes = max_mem;
  s.total_bytes_sent = cluster.TotalBytesSent();
  samples_.push_back(s);
}

void Timeline::Mark(const Cluster& cluster, std::string label) {
  marks_.emplace_back(cluster.now_seconds(), std::move(label));
}

double Timeline::MarkTime(const std::string& label) const {
  for (const auto& [time, name] : marks_) {
    if (name == label) return time;
  }
  return -1.0;
}

double Timeline::PeakMeanMemory() const {
  double peak = 0;
  for (const TimelineSample& s : samples_) {
    if (s.mean_memory_bytes > peak) peak = s.mean_memory_bytes;
  }
  return peak;
}

double Timeline::PeakMeanMemoryTime() const {
  double peak = 0;
  double at = 0;
  for (const TimelineSample& s : samples_) {
    if (s.mean_memory_bytes > peak) {
      peak = s.mean_memory_bytes;
      at = s.time_seconds;
    }
  }
  return at;
}

}  // namespace gdp::sim
