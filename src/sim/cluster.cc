#include "sim/cluster.h"

#include <algorithm>

#include "util/check.h"

namespace gdp::sim {

Cluster::Cluster(uint32_t num_machines, CostModel cost_model)
    : machines_(num_machines), cost_model_(cost_model) {}

double Cluster::EndPhase() {
  double slowest = 0;
  std::vector<double> phase_times(machines_.size());
  for (size_t m = 0; m < machines_.size(); ++m) {
    double t = cost_model_.WorkSeconds(machines_[m].phase_work()) +
               cost_model_.TransferSeconds(machines_[m].phase_bytes());
    phase_times[m] = t;
    slowest = std::max(slowest, t);
  }
  for (size_t m = 0; m < machines_.size(); ++m) {
    machines_[m].ClosePhase(phase_times[m]);
  }
  double duration = slowest + cost_model_.barrier_latency_seconds;
  // Serial barrier-point advance (EndPhase runs on one thread).
  now_seconds_ += duration;  // NOLINT(no-float-accumulate)
  return duration;
}

double Cluster::EndPhaseAsync() {
  double total = 0;
  std::vector<double> phase_times(machines_.size());
  for (size_t m = 0; m < machines_.size(); ++m) {
    double t = cost_model_.WorkSeconds(machines_[m].phase_work()) +
               cost_model_.TransferSeconds(machines_[m].phase_bytes());
    phase_times[m] = t;
    total += t;
  }
  for (size_t m = 0; m < machines_.size(); ++m) {
    machines_[m].ClosePhase(phase_times[m]);
  }
  double duration = machines_.empty()
                        ? 0.0
                        : total / static_cast<double>(machines_.size());
  // Serial barrier-point advance (EndPhase runs on one thread).
  now_seconds_ += duration;  // NOLINT(no-float-accumulate)
  return duration;
}

uint64_t Cluster::TotalBytesSent() const {
  uint64_t total = 0;
  for (const Machine& m : machines_) total += m.bytes_sent();
  return total;
}

uint64_t Cluster::TotalMemoryBytes() const {
  uint64_t total = 0;
  for (const Machine& m : machines_) total += m.memory_bytes();
  return total;
}

uint64_t Cluster::MaxPeakMemoryBytes() const {
  uint64_t peak = 0;
  for (const Machine& m : machines_) {
    peak = std::max(peak, m.peak_memory_bytes());
  }
  return peak;
}

double Cluster::MeanPeakMemoryBytes() const {
  if (machines_.empty()) return 0;
  double total = 0;
  for (const Machine& m : machines_) {
    total += static_cast<double>(m.peak_memory_bytes());
  }
  return total / static_cast<double>(machines_.size());
}

ClusterSnapshot Cluster::Snapshot() const {
  return ClusterSnapshot{machines_, now_seconds_};
}

void Cluster::Restore(const ClusterSnapshot& snapshot) {
  GDP_DCHECK_EQ(machines_.size(), snapshot.machines.size());
  machines_ = snapshot.machines;
  now_seconds_ = snapshot.now_seconds;
}

std::vector<double> Cluster::CpuUtilizations() const {
  std::vector<double> utils(machines_.size(), 0.0);
  if (now_seconds_ <= 0) return utils;
  for (size_t m = 0; m < machines_.size(); ++m) {
    utils[m] = machines_[m].busy_seconds() / now_seconds_;
  }
  return utils;
}

}  // namespace gdp::sim
