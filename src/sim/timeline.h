#ifndef GDP_SIM_TIMELINE_H_
#define GDP_SIM_TIMELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cluster.h"

namespace gdp::sim {

/// One resource snapshot, analogous to the paper's psutil samples taken at
/// one-second intervals on every machine (§4.3).
struct TimelineSample {
  double time_seconds = 0;
  double mean_memory_bytes = 0;
  uint64_t max_memory_bytes = 0;
  uint64_t total_bytes_sent = 0;
};

/// Records resource samples against the simulated clock, plus named phase
/// marks (e.g., "ingress-end" — the black dots in Fig 6.3). Drivers call
/// Sample() after each phase; because the simulated clock only moves at
/// phase boundaries, this is equivalent to 1 Hz sampling up to
/// interpolation.
class Timeline {
 public:
  void Sample(const Cluster& cluster);
  void Mark(const Cluster& cluster, std::string label);

  const std::vector<TimelineSample>& samples() const { return samples_; }
  const std::vector<std::pair<double, std::string>>& marks() const {
    return marks_;
  }

  /// Time of the first mark with this label, or -1 when absent.
  double MarkTime(const std::string& label) const;

  /// Peak of mean_memory_bytes over all samples.
  double PeakMeanMemory() const;

  /// Time at which the peak of mean memory occurred.
  double PeakMeanMemoryTime() const;

 private:
  std::vector<TimelineSample> samples_;
  std::vector<std::pair<double, std::string>> marks_;
};

}  // namespace gdp::sim

#endif  // GDP_SIM_TIMELINE_H_
