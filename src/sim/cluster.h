#ifndef GDP_SIM_CLUSTER_H_
#define GDP_SIM_CLUSTER_H_

#include <cstdint>
#include <vector>

#include "sim/cost_model.h"

namespace gdp::sim {

/// Identifies a simulated machine (a partition host) within a Cluster.
using MachineId = uint32_t;

/// Per-machine accounting. The simulator never moves real bytes; engines and
/// ingestors *charge* machines, and the cost model turns charges into time.
class Machine {
 public:
  /// Network accounting (cumulative over the run).
  void SendBytes(uint64_t bytes) { bytes_sent_ += bytes; }
  void ReceiveBytes(uint64_t bytes) { bytes_received_ += bytes; }

  /// Charges `work` abstract compute units to this machine's current phase.
  // Single-threaded charge path: parallel engines fold integer
  // PhaseAccumulator lanes first and flush here in canonical machine order.
  void AddWork(double work) { phase_work_ += work; }  // NOLINT(no-float-accumulate)

  /// Memory accounting with peak tracking.
  void Allocate(uint64_t bytes) {
    memory_bytes_ += bytes;
    if (memory_bytes_ > peak_memory_bytes_) {
      peak_memory_bytes_ = memory_bytes_;
    }
  }
  void Free(uint64_t bytes) {
    memory_bytes_ -= bytes <= memory_bytes_ ? bytes : memory_bytes_;
  }

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }
  uint64_t memory_bytes() const { return memory_bytes_; }
  uint64_t peak_memory_bytes() const { return peak_memory_bytes_; }
  double busy_seconds() const { return busy_seconds_; }

  /// Phase protocol (used by Cluster::EndPhase): work charged since the last
  /// barrier and bytes sent since the last barrier.
  double phase_work() const { return phase_work_; }
  uint64_t phase_bytes() const { return phase_bytes_; }
  void ChargePhaseBytes(uint64_t bytes) {
    phase_bytes_ += bytes;
    SendBytes(bytes);
  }
  void ClosePhase(double busy) {
    busy_seconds_ += busy;  // NOLINT(no-float-accumulate): serial barrier
    phase_work_ = 0;
    phase_bytes_ = 0;
  }

 private:
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
  uint64_t memory_bytes_ = 0;
  uint64_t peak_memory_bytes_ = 0;
  double busy_seconds_ = 0;
  double phase_work_ = 0;
  uint64_t phase_bytes_ = 0;
};

/// A verbatim copy of a Cluster's mutable state (per-machine counters plus
/// the simulated clock), taken with Cluster::Snapshot() and reinstated with
/// Cluster::Restore(). Machine is a plain value type of integer counters
/// and double accumulators, so a snapshot/restore round trip is exact: a
/// compute phase started from a restored post-ingress snapshot charges the
/// cluster bit-identically to one continuing on the original cluster. The
/// harness partition cache (harness/partition_cache.h) relies on this to
/// replay one ingress under many compute phases.
struct ClusterSnapshot {
  std::vector<Machine> machines;
  double now_seconds = 0;
};

/// A set of simulated machines plus a simulated clock. Bulk-synchronous
/// phases are modeled with EndPhase(): each machine's phase time is its
/// compute time plus its transfer time; the cluster clock advances by the
/// *maximum* (the barrier), which is how stragglers and load imbalance
/// manifest, exactly as in the real systems.
class Cluster {
 public:
  Cluster(uint32_t num_machines, CostModel cost_model);

  uint32_t num_machines() const {
    return static_cast<uint32_t>(machines_.size());
  }
  Machine& machine(MachineId m) { return machines_[m]; }
  const Machine& machine(MachineId m) const { return machines_[m]; }
  const CostModel& cost_model() const { return cost_model_; }

  /// Simulated wall-clock time elapsed since construction/Reset.
  double now_seconds() const { return now_seconds_; }

  /// Ends a bulk-synchronous phase: converts each machine's phase charges to
  /// seconds, advances the clock by the slowest machine plus one barrier
  /// latency, accumulates busy time, and returns the phase duration.
  double EndPhase();

  /// Ends an asynchronous round: same accounting, but the clock advances by
  /// the *mean* machine time (no global barrier; fast machines keep
  /// working). Used by the asynchronous engine (§5.1.2).
  double EndPhaseAsync();

  /// Advances the clock without a barrier (e.g., purely local phases).
  // Serial barrier-point advance: one add per phase, fixed order.
  void AdvanceSeconds(double seconds) { now_seconds_ += seconds; }  // NOLINT(no-float-accumulate)

  /// Aggregates.
  uint64_t TotalBytesSent() const;
  uint64_t TotalMemoryBytes() const;
  uint64_t MaxPeakMemoryBytes() const;
  double MeanPeakMemoryBytes() const;

  /// Per-machine CPU utilization in [0, 1]: busy seconds / elapsed seconds.
  std::vector<double> CpuUtilizations() const;

  /// Captures the full mutable state (all machine counters + clock).
  ClusterSnapshot Snapshot() const;

  /// Reinstates a snapshot taken from a cluster with the same machine
  /// count; every counter and the clock match the snapshot exactly.
  void Restore(const ClusterSnapshot& snapshot);

 private:
  std::vector<Machine> machines_;
  CostModel cost_model_;
  double now_seconds_ = 0;
};

}  // namespace gdp::sim

#endif  // GDP_SIM_CLUSTER_H_
