#include "sim/phase_accumulator.h"

#include <bit>
#include <cmath>
#include <cstring>

#include "util/check.h"

namespace gdp::sim {

void PhaseAccumulator::Reset(uint32_t num_machines) {
  work_units_.assign(num_machines, 0);
  sent_bytes_.assign(num_machines, 0);
  recv_bytes_.assign(num_machines, 0);
}

void PhaseAccumulator::Merge(const PhaseAccumulator& other) {
  GDP_CHECK_EQ(work_units_.size(), other.work_units_.size());
  for (size_t m = 0; m < work_units_.size(); ++m) {
    work_units_[m] += other.work_units_[m];
    sent_bytes_[m] += other.sent_bytes_[m];
    recv_bytes_[m] += other.recv_bytes_[m];
  }
}

void PhaseAccumulator::FlushTo(Cluster& cluster, double unit_value) const {
  for (size_t m = 0; m < work_units_.size(); ++m) {
    Machine& machine = cluster.machine(static_cast<MachineId>(m));
    if (sent_bytes_[m] != 0) machine.ChargePhaseBytes(sent_bytes_[m]);
    if (recv_bytes_[m] != 0) machine.ReceiveBytes(recv_bytes_[m]);
    if (work_units_[m] != 0) {
      machine.AddWork(static_cast<double>(work_units_[m]) * unit_value);
    }
  }
}

void PhaseAccumulator::FlushToReplay(Cluster& cluster,
                                     double unit_value) const {
  const double whole_unit = 4.0 * unit_value;
  for (size_t m = 0; m < work_units_.size(); ++m) {
    Machine& machine = cluster.machine(static_cast<MachineId>(m));
    if (sent_bytes_[m] != 0) machine.ChargePhaseBytes(sent_bytes_[m]);
    if (recv_bytes_[m] != 0) machine.ReceiveBytes(recv_bytes_[m]);
    GDP_DCHECK_EQ(work_units_[m] % 4, 0u);
    for (uint64_t k = work_units_[m] / 4; k > 0; --k) {
      machine.AddWork(whole_unit);
    }
  }
}

uint64_t PhaseAccumulator::TotalWorkUnits() const {
  uint64_t total = 0;
  for (uint64_t u : work_units_) total += u;
  return total;
}

uint64_t PhaseAccumulator::TotalSentBytes() const {
  uint64_t total = 0;
  for (uint64_t b : sent_bytes_) total += b;
  return total;
}

bool PhaseAccumulator::ClosedFormExact(double unit_value,
                                       uint64_t max_units) {
  if (unit_value == 0.0) return true;
  if (!std::isfinite(unit_value)) return false;
  int exponent = 0;
  double frac = std::frexp(std::fabs(unit_value), &exponent);
  // frac in [0.5, 1): scale to a 53-bit integer mantissa (exact — doubles
  // carry 53 significant bits).
  auto mantissa = static_cast<uint64_t>(std::ldexp(frac, 53));
  uint32_t odd_bits = static_cast<uint32_t>(std::bit_width(mantissa)) -
                      static_cast<uint32_t>(std::countr_zero(mantissa));
  return odd_bits + std::bit_width(max_units) <= 53;
}

}  // namespace gdp::sim
