#ifndef GDP_SIM_PHASE_ACCUMULATOR_H_
#define GDP_SIM_PHASE_ACCUMULATOR_H_

#include <cstdint>
#include <vector>

#include "sim/cluster.h"

namespace gdp::sim {

/// Per-thread accounting scratch for one parallel engine minor-step (also
/// used per-loader by the parallel ingress pipeline, whose unit is one
/// Partitioner work tick = 0.05 units).
///
/// The parallel GAS engine must produce *bit-identical* simulated costs at
/// any thread count, including the costs the original serial engine
/// produced. Floating-point sums are order-sensitive, so threads never call
/// Machine::AddWork directly; instead each lane counts exact integers here
/// and the engine merges + flushes them on one thread at the end of the
/// minor-step:
///
///  - Bytes are integers: any merge order gives the same totals.
///  - Compute work is only ever charged in multiples of 0.25x the run's
///    work multiplier (1x per gather/apply/scatter event, 0.25x per
///    message serialization), so lanes count integer *quarter units*.
///
/// Flushing converts units back to a double charge two ways:
///  - FlushTo: one AddWork(units * unit_value) per machine. When
///    ClosedFormExact(unit_value, max units) holds (unit_value's mantissa is
///    narrow enough that every partial sum is exactly representable — true
///    for the default work_multiplier 1.0 and any power of two), this is
///    bit-identical to the serial engine's charge-by-charge accumulation.
///  - FlushToReplay: `units / 4` repeated AddWork(4 * unit_value) calls per
///    machine, reproducing the serial engine's exact rounding sequence for
///    arbitrary multipliers when every charge was a whole work unit (the
///    gather step). O(events), but only exotic multipliers need it.
class PhaseAccumulator {
 public:
  /// Prepares the accumulator for `num_machines` machines, zeroing it.
  void Reset(uint32_t num_machines);

  /// Charges `quarter_units` x (0.25 * work_multiplier) of compute work.
  void AddWorkUnits(MachineId m, uint64_t quarter_units) {
    work_units_[m] += quarter_units;
  }
  /// Counts bytes the machine sends this phase (Machine::ChargePhaseBytes).
  void ChargeSendBytes(MachineId m, uint64_t bytes) {
    sent_bytes_[m] += bytes;
  }
  /// Counts bytes the machine receives (Machine::ReceiveBytes).
  void ChargeReceiveBytes(MachineId m, uint64_t bytes) {
    recv_bytes_[m] += bytes;
  }

  /// Adds another lane's counts into this one. Integer sums, so merge order
  /// never affects the flushed result.
  void Merge(const PhaseAccumulator& other);

  /// Flushes to the cluster in machine order with one closed-form AddWork
  /// per machine; see class comment for when this is exact.
  void FlushTo(Cluster& cluster, double unit_value) const;

  /// Flushes bytes like FlushTo but replays work as units/4 additions of
  /// `4 * unit_value`, matching the serial engine's rounding for arbitrary
  /// unit values. Requires every machine's units to be a multiple of 4.
  void FlushToReplay(Cluster& cluster, double unit_value) const;

  uint64_t work_units(MachineId m) const { return work_units_[m]; }
  uint64_t sent_bytes(MachineId m) const { return sent_bytes_[m]; }
  uint64_t recv_bytes(MachineId m) const { return recv_bytes_[m]; }

  /// Sum of quarter-units over all machines. An integer sum in machine
  /// order, so it is bit-identical at any thread count — the value the
  /// observability spans attach as their simulated-cost breakdown.
  uint64_t TotalWorkUnits() const;
  /// Sum of sent bytes over all machines (same determinism argument).
  uint64_t TotalSentBytes() const;

  /// True when summing up to `max_units` charges of `unit_value` is exact
  /// under any association — i.e. unit_value = m * 2^e with
  /// bit_width(max_units) + bit_width(m) <= 53 — which makes FlushTo
  /// bit-identical to charge-by-charge serial accumulation.
  static bool ClosedFormExact(double unit_value, uint64_t max_units);

 private:
  std::vector<uint64_t> work_units_;
  std::vector<uint64_t> sent_bytes_;
  std::vector<uint64_t> recv_bytes_;
};

}  // namespace gdp::sim

#endif  // GDP_SIM_PHASE_ACCUMULATOR_H_
