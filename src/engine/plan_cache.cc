#include "engine/plan_cache.h"

namespace gdp::engine {

const ExecutionPlan& PlanCache::Get(EdgeDirection gather_dir,
                                    EdgeDirection scatter_dir,
                                    bool graphx_counts, PlanLayout layout) {
  Slot* slot = nullptr;
  {
    util::MutexLock lock(mu_);
    std::unique_ptr<Slot>& entry =
        slots_[Key{gather_dir, scatter_dir, graphx_counts, layout}];
    if (entry == nullptr) {
      entry = std::make_unique<Slot>();
      misses_->Increment();
    } else {
      hits_->Increment();
    }
    slot = entry.get();
  }
  // Build outside the map lock so unrelated keys construct concurrently;
  // call_once serializes callers racing on the *same* key.
  std::call_once(slot->once, [&] {
    slot->plan = ExecutionPlan::Build(*dg_, gather_dir, scatter_dir,
                                      graphx_counts, layout);
  });
  return slot->plan;
}

size_t PlanCache::num_plans() const {
  util::MutexLock lock(mu_);
  return slots_.size();
}

obs::CacheStats PlanCache::stats() const {
  return obs::CacheStats{hits_->Value(), misses_->Value(), 0};
}

}  // namespace gdp::engine
