#include "engine/plan_cache.h"

#include <algorithm>
#include <utility>

namespace gdp::engine {

std::shared_ptr<const ExecutionPlan> PlanCache::Get(EdgeDirection gather_dir,
                                                    EdgeDirection scatter_dir,
                                                    bool graphx_counts,
                                                    PlanLayout layout) {
  const Key key{gather_dir, scatter_dir, graphx_counts, layout};
  std::shared_ptr<Slot> slot;
  bool inserted = false;
  {
    util::MutexLock lock(mu_);
    std::shared_ptr<Slot>& entry = slots_[key];
    if (entry == nullptr) {
      entry = std::make_shared<Slot>();
      inserted = true;
      misses_->Increment();
    } else {
      hits_->Increment();
    }
    slot = entry;
  }
  // Build outside the map lock so unrelated keys construct concurrently;
  // call_once serializes callers racing on the *same* key.
  std::call_once(slot->once, [&] {
    auto plan = std::make_shared<ExecutionPlan>(ExecutionPlan::Build(
        *dg_, gather_dir, scatter_dir, graphx_counts, layout));
    slot->bytes = plan->AdjacencyBytes();
    slot->plan = std::move(plan);
  });
  if (inserted) {
    // Admit into the byte ledger and evict oldest plans past the budget.
    // Only the slot's creator admits, so each build is accounted once even
    // if the slot was concurrently evicted and a new slot re-admitted.
    util::MutexLock lock(mu_);
    slot->admitted = true;
    resident_bytes_ += slot->bytes;
    admission_order_.push_back(key);
    EvictToBudgetLocked(key);
    resident_gauge_->Set(static_cast<int64_t>(resident_bytes_));
  }
  return slot->plan;
}

void PlanCache::EvictToBudgetLocked(const Key& protect) {
  if (budget_bytes_ == 0) return;
  // Walk oldest-first; stop at the protected newcomer (always last, but a
  // racing admission may have appended behind it).
  size_t scan = 0;
  while (resident_bytes_ > budget_bytes_ && scan < admission_order_.size()) {
    const Key victim = admission_order_[scan];
    if (victim == protect) {
      ++scan;
      continue;
    }
    auto it = slots_.find(victim);
    if (it == slots_.end() || !it->second->admitted) {
      // Already gone, or not yet admitted by its creator — skip; it will
      // account itself (and face the budget) on its own admission.
      ++scan;
      continue;
    }
    const uint64_t bytes = it->second->bytes;
    slots_.erase(it);
    admission_order_.erase(admission_order_.begin() +
                           static_cast<ptrdiff_t>(scan));
    resident_bytes_ -= std::min(resident_bytes_, bytes);
    evictions_->Increment();
    evicted_bytes_->Add(bytes);
  }
}

void PlanCache::set_byte_budget(uint64_t bytes) {
  util::MutexLock lock(mu_);
  budget_bytes_ = bytes;
}

uint64_t PlanCache::byte_budget() const {
  util::MutexLock lock(mu_);
  return budget_bytes_;
}

uint64_t PlanCache::resident_bytes() const {
  util::MutexLock lock(mu_);
  return resident_bytes_;
}

size_t PlanCache::num_plans() const {
  util::MutexLock lock(mu_);
  return slots_.size();
}

obs::CacheStats PlanCache::stats() const {
  return obs::CacheStats{hits_->Value(), misses_->Value(), 0};
}

}  // namespace gdp::engine
