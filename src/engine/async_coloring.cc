#include "engine/async_coloring.h"

#include <algorithm>

#include "engine/gas_engine.h"

namespace gdp::engine {

AsyncColoringResult RunAsyncColoring(const partition::DistributedGraph& dg,
                                     sim::Cluster& cluster,
                                     const RunOptions& options) {
  const graph::VertexId n = dg.num_vertices;
  const sim::ObjectSizes sizes;
  internal::MachineMasks masks = internal::MachineMasks::Build(dg);

  // Symmetric adjacency in CSR form.
  std::vector<uint64_t> offsets(static_cast<size_t>(n) + 1, 0);
  for (const graph::Edge& e : dg.edges) {
    ++offsets[e.src + 1];
    ++offsets[e.dst + 1];
  }
  for (size_t v = 1; v < offsets.size(); ++v) offsets[v] += offsets[v - 1];
  std::vector<graph::VertexId> adjacency(offsets.back());
  {
    std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const graph::Edge& e : dg.edges) {
      adjacency[cursor[e.src]++] = e.dst;
      adjacency[cursor[e.dst]++] = e.src;
    }
  }

  AsyncColoringResult result;
  result.colors.assign(n, 0);
  std::vector<uint32_t>& color = result.colors;
  // Remote readers see the color committed at the end of the previous
  // round; local readers see the live value.
  std::vector<uint32_t> committed(n, 0);

  std::vector<bool> active(n, false);
  for (graph::VertexId v = 0; v < n; ++v) active[v] = dg.present[v];
  std::vector<bool> next_active(n, false);

  const double start = cluster.now_seconds();
  uint64_t bytes_start = cluster.TotalBytesSent();
  std::vector<uint64_t> inbound_start(dg.num_machines);
  for (uint32_t m = 0; m < dg.num_machines; ++m) {
    inbound_start[m] = cluster.machine(m).bytes_received();
  }

  std::vector<uint32_t> used;  // scratch for smallest-free-color
  uint32_t round = 0;
  for (; round < options.max_iterations; ++round) {
    uint64_t active_count = 0;
    for (graph::VertexId v = 0; v < n; ++v) {
      if (active[v]) ++active_count;
    }
    result.stats.active_counts.push_back(active_count);
    if (active_count == 0) {
      result.stats.converged = true;
      break;
    }
    std::fill(next_active.begin(), next_active.end(), false);
    for (graph::VertexId v = 0; v < n; ++v) {
      if (!active[v]) continue;
      sim::MachineId home = masks.master_machine[v];
      used.clear();
      bool conflict = false;
      for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
        graph::VertexId u = adjacency[i];
        bool remote = masks.master_machine[u] != home;
        uint32_t seen = remote ? committed[u] : color[u];
        used.push_back(seen);
        if (seen == color[v] && u < v) conflict = true;
        if (remote) {
          // Pulling a remote neighbor's cached mirror value.
          cluster.machine(home).AddWork(0.25);
        }
      }
      cluster.machine(home).AddWork(
          1.0 + static_cast<double>(offsets[v + 1] - offsets[v]));
      if (!conflict) continue;
      std::sort(used.begin(), used.end());
      uint32_t candidate = 0;
      for (uint32_t c : used) {
        if (c == candidate) {
          ++candidate;
        } else if (c > candidate) {
          break;
        }
      }
      color[v] = candidate;
      // Push the new color to every mirror machine and wake neighbors.
      uint64_t mask = masks.replicas[v] & ~(1ULL << home);
      while (mask != 0) {
        sim::MachineId m =
            static_cast<sim::MachineId>(std::countr_zero(mask));
        mask &= mask - 1;
        cluster.machine(home).ChargePhaseBytes(sizes.sync_message);
        cluster.machine(m).ReceiveBytes(sizes.sync_message);
      }
      for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
        next_active[adjacency[i]] = true;
      }
    }
    committed = color;
    cluster.EndPhaseAsync();
    result.stats.cumulative_seconds.push_back(cluster.now_seconds() - start);
    active.swap(next_active);
  }

  result.stats.iterations = round;
  result.stats.compute_seconds = cluster.now_seconds() - start;
  result.stats.network_bytes = cluster.TotalBytesSent() - bytes_start;
  double inbound_total = 0;
  for (uint32_t m = 0; m < dg.num_machines; ++m) {
    inbound_total += static_cast<double>(
        cluster.machine(m).bytes_received() - inbound_start[m]);
  }
  result.stats.mean_inbound_bytes_per_machine =
      inbound_total / dg.num_machines;
  return result;
}

}  // namespace gdp::engine
