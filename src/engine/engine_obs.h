#ifndef GDP_ENGINE_ENGINE_OBS_H_
#define GDP_ENGINE_ENGINE_OBS_H_

#include <cstdint>
#include <cstdio>

#include "obs/exec_context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/cluster.h"
#include "sim/timeline.h"

namespace gdp::engine {

/// Per-superstep observability totals an engine hands to
/// SuperstepObserver::EndSuperstep. All fields are integer sums of the
/// engine's own quarter-unit/byte accounting, so they are bit-identical
/// across thread counts — they become the span's deterministic args.
struct SuperstepBreakdown {
  /// Active vertices at the start of the superstep.
  uint64_t frontier = 0;
  /// Vertices whose apply signaled (scatter sources).
  uint64_t signaled = 0;
  /// Gather minor-step compute, in quarter-units.
  uint64_t gather_units = 0;
  /// Bytes sent during the gather minor-step.
  uint64_t gather_bytes = 0;
  /// Apply minor-step compute (incl. message serialization), quarter-units.
  uint64_t apply_units = 0;
  /// Bytes sent during the apply minor-step (gather + sync messages).
  uint64_t apply_bytes = 0;
  /// Scatter minor-step compute, in quarter-units.
  uint64_t scatter_units = 0;
  /// Bytes sent during the scatter minor-step (0 for the sync engines —
  /// activations piggyback on sync messages).
  uint64_t scatter_bytes = 0;
  /// GraphX only: shuffle blocks serialized during apply (charged at
  /// 0.8 x work_multiplier each, outside the quarter-unit system).
  uint64_t graphx_blocks = 0;
};

/// The one observability hook shared by all three engines. It owns the
/// per-superstep block the engines used to copy-paste
/// (`if (options.timeline != nullptr) options.timeline->Sample(cluster)`)
/// and extends it with the ExecContext sinks: a run-level trace span, one
/// span per superstep carrying the SuperstepBreakdown as deterministic
/// args, a superstep counter, and a frontier-size histogram.
///
/// Null-context cost: when no observer is attached every method is a
/// branch on a nullptr; enabled() lets engines skip even the breakdown
/// bookkeeping.
class SuperstepObserver {
 public:
  /// Binds to the run's context. Opens the run-level span and registers
  /// the engine metrics when the matching sinks are attached.
  SuperstepObserver(const obs::ExecContext& exec, const sim::Cluster& cluster,
                    const char* engine_name)
      : exec_(exec), cluster_(cluster) {
    if (exec_.trace != nullptr) {
      run_span_id_ = exec_.trace->Begin(exec_.trace_track, engine_name,
                                        "engine", cluster_.now_seconds());
    }
    if (exec_.metrics != nullptr) {
      supersteps_ = exec_.metrics->GetCounter("engine.supersteps");
      frontier_ = exec_.metrics->GetHistogram("engine.frontier");
    }
  }

  SuperstepObserver(const SuperstepObserver&) = delete;
  SuperstepObserver& operator=(const SuperstepObserver&) = delete;

  ~SuperstepObserver() { Finish(); }

  /// True when any sink wants per-superstep data — engines use this to
  /// skip breakdown bookkeeping entirely under a null context.
  bool enabled() const { return exec_.HasObservers(); }

  /// Opens the superstep span at the current simulated clock.
  void BeginSuperstep(uint32_t iteration) {
    if (exec_.trace != nullptr) {
      char name[32];
      std::snprintf(name, sizeof(name), "superstep %u", iteration);
      span_id_ = exec_.trace->Begin(exec_.trace_track, name, "engine",
                                    cluster_.now_seconds());
      span_open_ = true;
    }
  }

  /// Closes the superstep: attaches the breakdown args, bumps the metrics,
  /// samples the timeline (the deduped per-superstep block), and ends the
  /// span at the post-barrier simulated clock.
  void EndSuperstep(const SuperstepBreakdown& b) {
    if (exec_.timeline != nullptr) exec_.timeline->Sample(cluster_);
    if (supersteps_ != nullptr) supersteps_->Increment();
    if (frontier_ != nullptr) frontier_->Observe(b.frontier);
    if (span_open_) {
      obs::TraceRecorder& trace = *exec_.trace;
      trace.Arg(span_id_, "frontier", static_cast<int64_t>(b.frontier));
      trace.Arg(span_id_, "signaled", static_cast<int64_t>(b.signaled));
      trace.Arg(span_id_, "gather_units",
                static_cast<int64_t>(b.gather_units));
      trace.Arg(span_id_, "gather_bytes",
                static_cast<int64_t>(b.gather_bytes));
      trace.Arg(span_id_, "apply_units", static_cast<int64_t>(b.apply_units));
      trace.Arg(span_id_, "apply_bytes", static_cast<int64_t>(b.apply_bytes));
      trace.Arg(span_id_, "scatter_units",
                static_cast<int64_t>(b.scatter_units));
      trace.Arg(span_id_, "scatter_bytes",
                static_cast<int64_t>(b.scatter_bytes));
      if (b.graphx_blocks != 0) {
        trace.Arg(span_id_, "graphx_blocks",
                  static_cast<int64_t>(b.graphx_blocks));
      }
      trace.End(span_id_, cluster_.now_seconds());
      span_open_ = false;
    }
  }

  /// Closes the run-level span at the current simulated clock. Called by
  /// the destructor; engines may call it earlier (idempotent).
  void Finish() {
    if (span_open_) {
      // An engine bailed mid-superstep; close the span where it stands.
      exec_.trace->End(span_id_, cluster_.now_seconds());
      span_open_ = false;
    }
    if (run_span_open()) {
      exec_.trace->End(run_span_id_, cluster_.now_seconds());
      run_done_ = true;
    }
  }

 private:
  bool run_span_open() const { return exec_.trace != nullptr && !run_done_; }

  const obs::ExecContext exec_;
  const sim::Cluster& cluster_;
  obs::TraceRecorder::SpanId run_span_id_ = 0;
  obs::TraceRecorder::SpanId span_id_ = 0;
  bool span_open_ = false;
  bool run_done_ = false;
  obs::Counter* supersteps_ = nullptr;
  obs::Histogram* frontier_ = nullptr;
};

}  // namespace gdp::engine

#endif  // GDP_ENGINE_ENGINE_OBS_H_
