#include "engine/edge_cut.h"

#include <algorithm>
#include <vector>

#include "partition/ingest.h"
#include "util/hash.h"
#include "util/check.h"

namespace gdp::engine {

EdgeCutAnalysis AnalyzeEdgeCut(const graph::EdgeList& edges,
                               uint32_t num_machines, uint64_t seed,
                               bool range_placement) {
  GDP_CHECK_GT(num_machines, 0u);
  EdgeCutAnalysis analysis;
  analysis.num_machines = num_machines;

  const uint64_t n = std::max<graph::VertexId>(edges.num_vertices(), 1);
  auto machine_of = [&](graph::VertexId v) {
    if (range_placement) {
      return static_cast<uint32_t>(static_cast<uint64_t>(v) *
                                   num_machines / n);
    }
    return static_cast<uint32_t>(util::Mix64(v ^ seed) % num_machines);
  };

  std::vector<uint64_t> degree_mass(num_machines, 0);
  for (const graph::Edge& e : edges.edges()) {
    uint32_t ms = machine_of(e.src);
    uint32_t md = machine_of(e.dst);
    ++degree_mass[ms];
    ++degree_mass[md];
    if (ms != md) ++analysis.cut_edges;
  }
  analysis.cut_fraction =
      edges.num_edges() > 0
          ? static_cast<double>(analysis.cut_edges) / edges.num_edges()
          : 0.0;
  // Each cut edge carries traffic in both directions per superstep
  // (neighbor values flow along the edge for gathers on either side).
  analysis.messages_per_superstep = 2 * analysis.cut_edges;

  uint64_t max_mass =
      *std::max_element(degree_mass.begin(), degree_mass.end());
  double mean_mass = static_cast<double>(2 * edges.num_edges()) /
                     num_machines;
  analysis.load_imbalance =
      mean_mass > 0 ? static_cast<double>(max_mass) / mean_mass : 1.0;
  return analysis;
}

VertexCutAnalysis AnalyzeRandomVertexCut(const graph::EdgeList& edges,
                                         uint32_t num_machines,
                                         uint64_t seed) {
  GDP_CHECK_GT(num_machines, 0u);
  sim::Cluster cluster(num_machines, sim::CostModel{});
  partition::PartitionContext context;
  context.num_partitions = num_machines;
  context.num_vertices = edges.num_vertices();
  context.num_loaders = num_machines;
  context.seed = seed;
  partition::IngestResult ingest = partition::IngestWithStrategy(
      edges, partition::StrategyKind::kRandom, context, cluster);

  VertexCutAnalysis analysis;
  analysis.num_machines = num_machines;
  analysis.load_imbalance = ingest.graph.EdgeBalanceRatio();
  analysis.replication_factor = ingest.report.replication_factor;
  uint64_t messages = 0;
  for (graph::VertexId v = 0; v < edges.num_vertices(); ++v) {
    if (!ingest.graph.present[v]) continue;
    // PowerGraph per superstep: (replicas-1) partial aggregates in plus
    // (replicas-1) state syncs out (§5.4.1).
    messages += 2ull * (ingest.graph.replicas.Count(v) - 1);
  }
  analysis.messages_per_superstep = messages;
  return analysis;
}

}  // namespace gdp::engine
