#ifndef GDP_ENGINE_EDGE_CUT_H_
#define GDP_ENGINE_EDGE_CUT_H_

#include <cstdint>

#include "graph/edge_list.h"

namespace gdp::engine {

/// Edge-cut placement analysis (§3.2 background). The paper's systems all
/// use vertex-cuts, but the chapter motivates them by contrast with the
/// edge-cut approach of GraphLab/Pregel/LFGraph: vertices are assigned to
/// machines (here by hash) and edges may span machines. This analyzer
/// computes the two quantities §3.2's argument rests on:
///
/// - communication: one message per cut edge per superstep (both
///   directions for undirected gathers);
/// - load balance: a machine's compute work is the total degree of its
///   vertices, so one high-degree vertex cannot be split — the hub's
///   machine becomes the straggler on power-law graphs.
///
/// See bench_background_cuts for the comparison against vertex-cuts that
/// reproduces the §3.2 claims.
struct EdgeCutAnalysis {
  uint32_t num_machines = 0;
  uint64_t cut_edges = 0;        ///< edges whose endpoints differ in machine
  double cut_fraction = 0;       ///< cut_edges / edges
  /// Max over machines of (degree mass on machine) / (mean degree mass):
  /// the straggler factor of a superstep that touches every edge.
  double load_imbalance = 0;
  /// Messages per full superstep (one per cut edge per direction).
  uint64_t messages_per_superstep = 0;
};

/// Assigns vertices to machines and analyzes the resulting edge-cut.
/// `range_placement` selects contiguous vertex-id ranges instead of
/// hashing — the locality-aware placement real edge-cut systems pair with
/// graphs whose ids carry structure (GraphLab with Metis-style partitions;
/// road networks emitted row-major). Hash placement models the
/// no-preprocessing default.
EdgeCutAnalysis AnalyzeEdgeCut(const graph::EdgeList& edges,
                               uint32_t num_machines, uint64_t seed = 0,
                               bool range_placement = false);

/// The matching quantities for a vertex-cut placement (for the §3.2
/// comparison): load imbalance is the edge-count imbalance across
/// machines, and communication is the per-superstep mirror/master message
/// count 2 * sum_v(replicas(v) - 1) of the PowerGraph discipline.
struct VertexCutAnalysis {
  uint32_t num_machines = 0;
  double load_imbalance = 0;
  uint64_t messages_per_superstep = 0;
  double replication_factor = 0;
};

/// Analyzes a canonical-random vertex-cut of the same graph.
VertexCutAnalysis AnalyzeRandomVertexCut(const graph::EdgeList& edges,
                                         uint32_t num_machines,
                                         uint64_t seed = 0);

}  // namespace gdp::engine

#endif  // GDP_ENGINE_EDGE_CUT_H_
