#ifndef GDP_ENGINE_REFERENCE_ENGINE_H_
#define GDP_ENGINE_REFERENCE_ENGINE_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "engine/engine_obs.h"
#include "engine/gas_app.h"
#include "engine/gas_engine.h"
#include "engine/plan.h"
#include "engine/run_stats.h"
#include "partition/distributed_graph.h"
#include "partition/validate.h"
#include "sim/cluster.h"
#include "util/check.h"

namespace gdp::engine {

/// The original single-threaded GAS engine, preserved verbatim as the
/// accounting oracle. RunGasEngine (gas_engine.h) is the production engine;
/// this one exists so determinism tests and benchmarks can demand
/// bit-identical states AND RunStats against the historical implementation
/// at every thread count. Do not optimize this function: every charge, in
/// its exact order, is the contract.
template <GasApplication App>
GasRunResult<App> RunGasEngineReference(EngineKind kind,
                                        const partition::DistributedGraph& dg,
                                        sim::Cluster& cluster, App app,
                                        const RunOptions& options = {}) {
  using State = typename App::State;
  using Gather = typename App::Gather;

  GDP_CHECK_EQ(cluster.num_machines(), dg.num_machines);
  GDP_CHECK_LE(dg.num_machines, 64u);
  // Debug builds re-verify the placement/replica invariants every run; the
  // engines' message accounting silently miscounts on a corrupt structure.
  GDP_DCHECK_OK(partition::ValidateDistributedGraph(dg));
  const graph::VertexId n = dg.num_vertices;
  const sim::ObjectSizes sizes;
  const double work_mul = options.work_multiplier;

  // Observability only *reads* simulated state — the oracle's charges are
  // untouched. The observer also owns the old per-superstep timeline block.
  const obs::ExecContext& exec = options.exec;
  SuperstepObserver observer(exec, cluster, EngineKindName(kind));
  const bool observed = observer.enabled();

  // Degrees for the application context.
  std::vector<uint64_t> out_degree(n, 0);
  std::vector<uint64_t> in_degree(n, 0);
  for (const graph::Edge& e : dg.edges) {
    ++out_degree[e.src];
    ++in_degree[e.dst];
  }
  AppContext ctx{&out_degree, &in_degree};

  internal::MachineMasks masks = internal::MachineMasks::Build(dg);

  // GraphX-only: per-PARTITION fan-out counts. Spark materializes one
  // shuffle block per (vertex, edge-partition) pair when shipping vertex
  // attributes and returning partial aggregates, so its compute cost
  // tracks the *partition-level* replication factor even when partitions
  // share machines — the §7.4 mechanism behind 2D's advantage on skewed
  // graphs. The C++ engines coalesce per machine and skip this cost.
  std::vector<uint16_t> gather_partition_count;
  std::vector<uint16_t> scatter_partition_count;
  if (kind == EngineKind::kGraphXPregel) {
    gather_partition_count.assign(n, 0);
    scatter_partition_count.assign(n, 0);
    for (graph::VertexId v = 0; v < n; ++v) {
      if (!dg.present[v]) continue;
      uint32_t in = dg.in_edge_partitions.Count(v);
      uint32_t out = dg.out_edge_partitions.Count(v);
      uint32_t gather = 0, scatter = 0;
      if (IncludesIn(App::kGatherDir)) gather += in;
      if (IncludesOut(App::kGatherDir)) gather += out;
      if (IncludesIn(App::kScatterDir)) scatter += in;
      if (IncludesOut(App::kScatterDir)) scatter += out;
      gather_partition_count[v] = static_cast<uint16_t>(
          gather > 65535 ? 65535 : gather);
      scatter_partition_count[v] = static_cast<uint16_t>(
          scatter > 65535 ? 65535 : scatter);
    }
  }

  GasRunResult<App> result;
  RunStats& stats = result.stats;
  std::vector<State>& state = result.states;
  state.reserve(n);
  for (graph::VertexId v = 0; v < n; ++v) {
    state.push_back(app.InitState(v, ctx));
  }

  std::vector<bool> active(n, false);
  for (graph::VertexId v = 0; v < n; ++v) {
    active[v] = dg.present[v] && app.InitiallyActive(v);
  }

  const double compute_start = cluster.now_seconds();
  uint64_t bytes_sent_start = cluster.TotalBytesSent();
  std::vector<uint64_t> inbound_start(dg.num_machines);
  for (uint32_t m = 0; m < dg.num_machines; ++m) {
    inbound_start[m] = cluster.machine(m).bytes_received();
  }

  auto machine_of_edge = [&](uint64_t i) -> sim::MachineId {
    return dg.edge_partition[i] % dg.num_machines;
  };

  // Activation (scatter control) messages: signaled center v notifies the
  // machines holding its scatter-direction edges. `activation_bytes` only
  // feeds the bootstrap span args.
  uint64_t activation_bytes = 0;
  auto charge_activation = [&](graph::VertexId v) {
    uint64_t mask = internal::DirectionMask(masks, App::kScatterDir, v);
    sim::MachineId master = masks.master_machine[v];
    mask &= ~(1ULL << master);
    while (mask != 0) {
      sim::MachineId m =
          static_cast<sim::MachineId>(std::countr_zero(mask));
      mask &= mask - 1;
      cluster.machine(master).ChargePhaseBytes(sizes.control_message);
      cluster.machine(m).ReceiveBytes(sizes.control_message);
      if (observed) activation_bytes += sizes.control_message;
    }
  };

  // Scatter minor-step from the `signaled` set into `next_active`.
  // Activation signals piggyback on the state-sync messages sent for the
  // same vertices (the real engines coalesce them), so scatter itself only
  // charges compute work.
  // Returns the scatter compute total in quarter-units (span args only).
  auto run_scatter = [&](const std::vector<bool>& signaled,
                         std::vector<bool>& next_active) -> uint64_t {
    uint64_t units = 0;
    for (uint64_t i = 0; i < dg.edges.size(); ++i) {
      const graph::Edge& e = dg.edges[i];
      bool src_scatters = IncludesOut(App::kScatterDir) && signaled[e.src];
      bool dst_scatters = IncludesIn(App::kScatterDir) && signaled[e.dst];
      if (!src_scatters && !dst_scatters) continue;
      sim::MachineId m = machine_of_edge(i);
      const int events = (src_scatters ? 1 : 0) + (dst_scatters ? 1 : 0);
      cluster.machine(m).AddWork(work_mul * events);
      units += 4ULL * static_cast<uint64_t>(events);
      if (src_scatters) next_active[e.dst] = true;
      if (dst_scatters) next_active[e.src] = true;
    }
    return units;
  };

  // Optional bootstrap: initially active vertices announce themselves;
  // with no apply/sync step yet, these activations do cross the wire.
  if (App::kBootstrapScatter) {
    obs::ScopedSpan bootstrap_span(exec.trace, exec.trace_track, "bootstrap",
                                   "engine", cluster.now_seconds());
    std::vector<bool> next_active(n, false);
    const uint64_t boot_units = run_scatter(active, next_active);
    uint64_t init_count = 0;
    for (graph::VertexId v = 0; v < n; ++v) {
      if (active[v]) {
        ++init_count;
        charge_activation(v);
      }
    }
    cluster.EndPhase();
    active.swap(next_active);
    bootstrap_span.Arg("frontier", static_cast<int64_t>(init_count));
    bootstrap_span.Arg("scatter_units", static_cast<int64_t>(boot_units));
    bootstrap_span.Arg("scatter_bytes",
                       static_cast<int64_t>(activation_bytes));
    bootstrap_span.End(cluster.now_seconds());
  }

  std::vector<Gather> acc(n, app.GatherInit());
  std::vector<bool> has_gather(n, false);
  std::vector<bool> signaled(n, false);
  std::vector<bool> next_active(n, false);

  const Gather gather_identity = app.GatherInit();
  uint32_t iteration = 0;
  for (; iteration < options.max_iterations; ++iteration) {
    uint64_t active_count = 0;
    for (graph::VertexId v = 0; v < n; ++v) {
      if (active[v]) ++active_count;
    }
    stats.active_counts.push_back(active_count);
    if (active_count == 0) {
      stats.converged = true;
      break;
    }
    observer.BeginSuperstep(iteration);
    SuperstepBreakdown breakdown;
    breakdown.frontier = active_count;

    // ---- Gather minor-step ------------------------------------------------
    for (graph::VertexId v = 0; v < n; ++v) {
      if (active[v]) {
        acc[v] = gather_identity;
        has_gather[v] = false;
      }
    }
    for (uint64_t i = 0; i < dg.edges.size(); ++i) {
      const graph::Edge& e = dg.edges[i];
      bool gather_dst = IncludesIn(App::kGatherDir) && active[e.dst];
      bool gather_src = IncludesOut(App::kGatherDir) && active[e.src];
      if (!gather_dst && !gather_src) continue;
      sim::MachineId m = machine_of_edge(i);
      if (gather_dst) {
        app.GatherEdge(e.dst, e.src, state[e.src], ctx, &acc[e.dst]);
        has_gather[e.dst] = true;
        cluster.machine(m).AddWork(work_mul);
        if (observed) breakdown.gather_units += 4;
      }
      if (gather_src) {
        app.GatherEdge(e.src, e.dst, state[e.dst], ctx, &acc[e.src]);
        has_gather[e.src] = true;
        cluster.machine(m).AddWork(work_mul);
        if (observed) breakdown.gather_units += 4;
      }
    }

    // ---- Apply minor-step + message accounting ----------------------------
    std::fill(signaled.begin(), signaled.end(), false);
    uint64_t signaled_count = 0;
    for (graph::VertexId v = 0; v < n; ++v) {
      if (!active[v]) continue;
      sim::MachineId master = masks.master_machine[v];
      cluster.machine(master).AddWork(work_mul);
      if (observed) breakdown.apply_units += 4;
      bool signal = app.Apply(v, acc[v], has_gather[v], ctx, &state[v]);
      if (signal) {
        signaled[v] = true;
        ++signaled_count;
      }

      uint64_t master_bit = 1ULL << master;
      bool low_degree = (in_degree[v] + out_degree[v]) <=
                        options.high_degree_threshold;

      if (kind == EngineKind::kGraphXPregel) {
        // Shuffle-block serialization per edge-partition touched (see the
        // gather_partition_count comment above).
        double blocks =
            static_cast<double>(gather_partition_count[v]) +
            (signal ? static_cast<double>(scatter_partition_count[v]) : 0);
        cluster.machine(master).AddWork(0.8 * work_mul * blocks);
        if (observed) {
          breakdown.graphx_blocks +=
              static_cast<uint64_t>(gather_partition_count[v]) +
              (signal ? scatter_partition_count[v] : 0);
        }
      }

      // Gather messages: mirrors -> master.
      uint64_t gather_mask;
      if (kind == EngineKind::kPowerGraphSync) {
        gather_mask = masks.replicas[v] & ~master_bit;
      } else {
        gather_mask =
            internal::DirectionMask(masks, App::kGatherDir, v) & ~master_bit;
      }
      uint64_t gm = gather_mask;
      while (gm != 0) {
        sim::MachineId src =
            static_cast<sim::MachineId>(std::countr_zero(gm));
        gm &= gm - 1;
        // Distributed gather is a round trip: the master activates the
        // mirror (control) and the mirror returns its partial aggregate.
        cluster.machine(master).ChargePhaseBytes(sizes.control_message);
        cluster.machine(src).ReceiveBytes(sizes.control_message);
        cluster.machine(src).ChargePhaseBytes(sizes.gather_message);
        cluster.machine(master).ReceiveBytes(sizes.gather_message);
        cluster.machine(src).AddWork(0.25 * work_mul);  // serialize
        if (observed) {
          breakdown.apply_units += 1;
          breakdown.apply_bytes +=
              sizes.control_message + sizes.gather_message;
        }
      }

      // State synchronization: master -> mirrors (only when state changed;
      // for always-signaling apps like PageRank this is every superstep).
      if (signal) {
        uint64_t sync_mask = 0;
        switch (kind) {
          case EngineKind::kPowerGraphSync:
            sync_mask = masks.replicas[v] & ~master_bit;
            break;
          case EngineKind::kPowerLyraHybrid:
            sync_mask = low_degree
                            ? internal::DirectionMask(
                                  masks, App::kScatterDir, v) &
                                  ~master_bit
                            : masks.replicas[v] & ~master_bit;
            break;
          case EngineKind::kGraphXPregel:
            sync_mask = internal::DirectionMask(masks, App::kScatterDir, v) &
                        ~master_bit;
            break;
        }
        uint64_t sm = sync_mask;
        while (sm != 0) {
          sim::MachineId dst =
              static_cast<sim::MachineId>(std::countr_zero(sm));
          sm &= sm - 1;
          cluster.machine(master).ChargePhaseBytes(sizes.sync_message);
          cluster.machine(dst).ReceiveBytes(sizes.sync_message);
          cluster.machine(master).AddWork(0.25 * work_mul);
          if (observed) {
            breakdown.apply_units += 1;
            breakdown.apply_bytes += sizes.sync_message;
          }
        }
      }
    }

    // ---- Scatter minor-step ------------------------------------------------
    std::fill(next_active.begin(), next_active.end(), false);
    if (signaled_count > 0) {
      breakdown.scatter_units = run_scatter(signaled, next_active);
    }

    // Three minor-step barriers per superstep (§5.1.2).
    cluster.EndPhase();
    cluster.AdvanceSeconds(2 *
                           cluster.cost_model().barrier_latency_seconds);
    stats.cumulative_seconds.push_back(cluster.now_seconds() -
                                       compute_start);
    breakdown.signaled = signaled_count;
    observer.EndSuperstep(breakdown);
    active.swap(next_active);
  }

  observer.Finish();
  stats.iterations = iteration;
  if (!stats.converged && iteration == options.max_iterations) {
    // Ran to the iteration cap; report whether anything is still active.
    bool any_active = false;
    for (graph::VertexId v = 0; v < n; ++v) any_active |= active[v];
    stats.converged = !any_active;
  }
  stats.compute_seconds = cluster.now_seconds() - compute_start;
  stats.network_bytes = cluster.TotalBytesSent() - bytes_sent_start;
  double inbound_total = 0;
  for (uint32_t m = 0; m < dg.num_machines; ++m) {
    inbound_total += static_cast<double>(
        cluster.machine(m).bytes_received() - inbound_start[m]);
  }
  stats.mean_inbound_bytes_per_machine = inbound_total / dg.num_machines;
  return result;
}

}  // namespace gdp::engine

#endif  // GDP_ENGINE_REFERENCE_ENGINE_H_
