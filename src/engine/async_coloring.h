#ifndef GDP_ENGINE_ASYNC_COLORING_H_
#define GDP_ENGINE_ASYNC_COLORING_H_

#include <cstdint>
#include <vector>

#include "engine/run_stats.h"
#include "partition/distributed_graph.h"
#include "sim/cluster.h"

namespace gdp::engine {

struct AsyncColoringResult {
  std::vector<uint32_t> colors;
  RunStats stats;
};

/// Simple Coloring on an asynchronous engine (the configuration PowerGraph
/// uses for this application, §5.3). No global barriers: machines process
/// their vertices continuously, reading *fresh* colors for same-machine
/// neighbors but *stale* (previous-round) colors for remote neighbors —
/// the staleness causes repeated remote conflicts and extra convergence
/// rounds, which is why coloring deviates from the replication-factor
/// trend lines in Figs 5.3-5.5. (The real async engine's occasional hangs
/// and failures, noted in §5.4.1, are nondeterministic scheduler artifacts
/// we intentionally do not reproduce; see DESIGN.md.)
AsyncColoringResult RunAsyncColoring(const partition::DistributedGraph& dg,
                                     sim::Cluster& cluster,
                                     const RunOptions& options = {});

}  // namespace gdp::engine

#endif  // GDP_ENGINE_ASYNC_COLORING_H_
