#ifndef GDP_ENGINE_RUN_STATS_H_
#define GDP_ENGINE_RUN_STATS_H_

#include <cstdint>
#include <vector>

#include "obs/exec_context.h"
#include "sim/timeline.h"

namespace gdp::engine {

/// Which accounting kernels the parallel engine's superstep loop runs.
///
///  - kBatched (default): per-vertex machine-bucketed run tables (plan.h)
///    charge a whole adjacency block with one multiply per distinct
///    machine, and dense scatters collect wakeups in lane-local bitsets
///    merged word-parallel. Bit-identical to kPerEdge by construction —
///    the charges are integer quarter-units and integer sums are
///    order-free.
///  - kPerEdge: one accumulator call per adjacency entry (the PR-2
///    kernels), preserved as the in-tree baseline the kernel-scaling
///    claims measure against and as an extra identity oracle. Requires
///    PlanLayout::kUncompressed (it reads the per-entry machine tags).
enum class KernelMode { kBatched, kPerEdge };

/// Display name of a kernel mode ("batched" / "per-edge").
inline const char* KernelModeName(KernelMode mode) {
  switch (mode) {
    case KernelMode::kBatched:
      return "batched";
    case KernelMode::kPerEdge:
      return "per-edge";
  }
  return "?";
}

/// Knobs for one engine run.
struct RunOptions {
  /// Hard iteration cap; convergence may stop the run earlier.
  uint32_t max_iterations = 100;
  /// Accounting/frontier kernel flavor; simulated costs are bit-identical
  /// across modes (see KernelMode).
  KernelMode kernel_mode = KernelMode::kBatched;
  /// PowerLyra degree threshold separating its low-/high-degree handling.
  uint64_t high_degree_threshold = 100;
  /// Extra multiplier on per-edge/vertex compute work (GraphX's JVM and
  /// dataflow-join overheads are modeled as a constant factor).
  double work_multiplier = 1.0;
  /// Execution context: host thread count plus the observability sinks
  /// (timeline, metrics registry, trace recorder). exec.num_threads is the
  /// real execution lane count for the parallel engine (0 = hardware
  /// default); simulated costs are bit-identical at every setting, and 1
  /// reproduces the original serial engine's execution exactly. When
  /// exec.timeline is set, the engine records a resource sample after
  /// every superstep (the paper's 1 Hz psutil monitors, Fig 6.3).
  obs::ExecContext exec;
};

/// What one application run cost — the paper's "computation time" metric
/// (always excludes ingress, §4.3) plus the series the figures need.
struct RunStats {
  uint32_t iterations = 0;
  bool converged = false;
  double compute_seconds = 0;
  /// Bytes sent across machine boundaries during compute only.
  uint64_t network_bytes = 0;
  /// Mean per-machine *incoming* compute-phase network IO (the paper plots
  /// inbound traffic, §4.3).
  double mean_inbound_bytes_per_machine = 0;
  /// Cumulative seconds at the end of each iteration (Figs 9.1/9.2).
  std::vector<double> cumulative_seconds;
  /// Active vertices at the start of each iteration.
  std::vector<uint64_t> active_counts;
};

}  // namespace gdp::engine

#endif  // GDP_ENGINE_RUN_STATS_H_
