#ifndef GDP_ENGINE_RUN_STATS_H_
#define GDP_ENGINE_RUN_STATS_H_

#include <cstdint>
#include <vector>

#include "obs/exec_context.h"
#include "sim/timeline.h"

namespace gdp::engine {

/// Knobs for one engine run.
struct RunOptions {
  /// Hard iteration cap; convergence may stop the run earlier.
  uint32_t max_iterations = 100;
  /// PowerLyra degree threshold separating its low-/high-degree handling.
  uint64_t high_degree_threshold = 100;
  /// Extra multiplier on per-edge/vertex compute work (GraphX's JVM and
  /// dataflow-join overheads are modeled as a constant factor).
  double work_multiplier = 1.0;
  /// Execution context: host thread count plus the observability sinks
  /// (timeline, metrics registry, trace recorder). exec.num_threads is the
  /// real execution lane count for the parallel engine (0 = hardware
  /// default); simulated costs are bit-identical at every setting, and 1
  /// reproduces the original serial engine's execution exactly. When
  /// exec.timeline is set, the engine records a resource sample after
  /// every superstep (the paper's 1 Hz psutil monitors, Fig 6.3).
  obs::ExecContext exec;
};

/// What one application run cost — the paper's "computation time" metric
/// (always excludes ingress, §4.3) plus the series the figures need.
struct RunStats {
  uint32_t iterations = 0;
  bool converged = false;
  double compute_seconds = 0;
  /// Bytes sent across machine boundaries during compute only.
  uint64_t network_bytes = 0;
  /// Mean per-machine *incoming* compute-phase network IO (the paper plots
  /// inbound traffic, §4.3).
  double mean_inbound_bytes_per_machine = 0;
  /// Cumulative seconds at the end of each iteration (Figs 9.1/9.2).
  std::vector<double> cumulative_seconds;
  /// Active vertices at the start of each iteration.
  std::vector<uint64_t> active_counts;
};

}  // namespace gdp::engine

#endif  // GDP_ENGINE_RUN_STATS_H_
