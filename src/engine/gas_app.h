#ifndef GDP_ENGINE_GAS_APP_H_
#define GDP_ENGINE_GAS_APP_H_

#include <concepts>
#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace gdp::engine {

/// Which adjacent edges a minor-step touches, relative to the center vertex.
enum class EdgeDirection { kNone, kIn, kOut, kBoth };

/// True when `direction` includes the in-edges of the center vertex.
constexpr bool IncludesIn(EdgeDirection direction) {
  return direction == EdgeDirection::kIn || direction == EdgeDirection::kBoth;
}
constexpr bool IncludesOut(EdgeDirection direction) {
  return direction == EdgeDirection::kOut ||
         direction == EdgeDirection::kBoth;
}

/// Per-graph context handed to applications (degree lookups for PageRank's
/// normalization etc.).
struct AppContext {
  const std::vector<uint64_t>* out_degree = nullptr;
  const std::vector<uint64_t>* in_degree = nullptr;

  uint64_t OutDegree(graph::VertexId v) const { return (*out_degree)[v]; }
  uint64_t InDegree(graph::VertexId v) const { return (*in_degree)[v]; }
  uint64_t TotalDegree(graph::VertexId v) const {
    return (*out_degree)[v] + (*in_degree)[v];
  }
};

/// GAS vertex-program contract (duck-typed; see concept below). An
/// application provides:
///
///   using State  — per-vertex state;
///   using Gather — the commutative-associative aggregate;
///   static constexpr EdgeDirection kGatherDir / kScatterDir;
///   static constexpr bool kBootstrapScatter — run a scatter-only step from
///       the initially active set before the first gather (message-driven
///       apps like SSSP need their source to announce itself);
///   State InitState(v, ctx)            — initial vertex state;
///   bool InitiallyActive(v)            — initial active set;
///   Gather GatherInit()                — aggregate identity;
///   void GatherEdge(center, nbr, nbr_state, ctx, &acc)
///       — fold one adjacent edge into the accumulator;
///   bool Apply(v, acc, has_gather, ctx, &state)
///       — update state; returns whether to signal scatter-neighbors.
///
/// A *natural* application (the paper's §6.1 term) gathers in exactly one
/// direction and scatters in the other; PowerLyra's hybrid engine exploits
/// this.
template <typename App>
concept GasApplication = requires(App app, graph::VertexId v,
                                  typename App::State state,
                                  typename App::Gather acc, AppContext ctx) {
  { App::kGatherDir } -> std::convertible_to<EdgeDirection>;
  { App::kScatterDir } -> std::convertible_to<EdgeDirection>;
  { App::kBootstrapScatter } -> std::convertible_to<bool>;
  { app.InitState(v, ctx) } -> std::same_as<typename App::State>;
  { app.InitiallyActive(v) } -> std::same_as<bool>;
  { app.GatherInit() } -> std::same_as<typename App::Gather>;
  { app.GatherEdge(v, v, state, ctx, &acc) } -> std::same_as<void>;
  { app.Apply(v, acc, true, ctx, &state) } -> std::same_as<bool>;
};

/// Optional plain-sum fast-path hook. An application may additionally
/// provide
///
///   Gather GatherContribution(nbr, nbr_state, ctx)
///
/// — the value its GatherEdge folds for that neighbor, independent of the
/// center. For such gathers the engine may precompute every vertex's
/// contribution once per superstep (a strided, auto-vectorizable sweep)
/// and fold cached values, hoisting the per-edge arithmetic (PageRank's
/// division) out of the adjacency loop.
///
/// Contract: GatherEdge(center, nbr, s, ctx, &acc) must be observably
/// `*acc += GatherContribution(nbr, s, ctx)`. The engine folds the cached
/// value with the same `+=` in the same adjacency order, and the cached
/// value is produced by the identical IEEE operations on the identical
/// operands, so gather results stay bit-identical to the per-edge path.
template <typename App>
concept HasGatherContribution =
    GasApplication<App> &&
    requires(const App app, graph::VertexId v, typename App::State state,
             AppContext ctx) {
      { app.GatherContribution(v, state, ctx) }
          -> std::same_as<typename App::Gather>;
    };

/// True when the application gathers from one direction and scatters to the
/// other — the condition under which PowerLyra's hybrid engine can do local
/// gathers for low-degree vertices.
template <typename App>
constexpr bool IsNaturalApp() {
  return (App::kGatherDir == EdgeDirection::kIn &&
          App::kScatterDir == EdgeDirection::kOut) ||
         (App::kGatherDir == EdgeDirection::kOut &&
          App::kScatterDir == EdgeDirection::kIn);
}

}  // namespace gdp::engine

#endif  // GDP_ENGINE_GAS_APP_H_
