#include "engine/plan.h"

#include <bit>

#include "util/check.h"

namespace gdp::engine {

namespace internal {

MachineMasks MachineMasks::Build(const partition::DistributedGraph& dg) {
  MachineMasks masks;
  const graph::VertexId n = dg.num_vertices;
  masks.replicas.assign(n, 0);
  masks.in_edges.assign(n, 0);
  masks.out_edges.assign(n, 0);
  masks.master_machine.assign(n, 0);
  for (graph::VertexId v = 0; v < n; ++v) {
    if (!dg.present[v]) continue;
    uint64_t replica_mask = 0;
    dg.replicas.ForEach(v, [&](sim::MachineId p) {
      replica_mask |= 1ULL << (p % dg.num_machines);
    });
    uint64_t in_mask = 0;
    dg.in_edge_partitions.ForEach(v, [&](sim::MachineId p) {
      in_mask |= 1ULL << (p % dg.num_machines);
    });
    uint64_t out_mask = 0;
    dg.out_edge_partitions.ForEach(v, [&](sim::MachineId p) {
      out_mask |= 1ULL << (p % dg.num_machines);
    });
    masks.replicas[v] = replica_mask;
    masks.in_edges[v] = in_mask;
    masks.out_edges[v] = out_mask;
    masks.master_machine[v] = dg.master[v] % dg.num_machines;
  }
  return masks;
}

namespace {

// Encode-side packing primitives shared with the edge-block store.
using util::WritePackedBits;
using util::ZigZag;

/// Folds a CSR's per-entry machine tags into per-vertex (machine, count)
/// runs, ascending by machine. Counts are whole adjacency events (the
/// engine charges 4 quarter-units per event), and integer accounting is
/// order-free, so this regrouping cannot change any flushed cost.
void BuildAccountingRuns(const std::vector<uint64_t>& offsets,
                         const std::vector<uint8_t>& machines,
                         uint32_t num_machines,
                         std::vector<uint64_t>* run_offsets,
                         std::vector<uint32_t>* runs) {
  const size_t n = offsets.size() - 1;
  run_offsets->assign(n + 1, 0);
  runs->clear();
  runs->reserve(n);  // >= 1 run per non-isolated vertex
  std::vector<uint64_t> counts(num_machines == 0 ? 1 : num_machines, 0);
  for (size_t v = 0; v < n; ++v) {
    for (uint64_t s = offsets[v]; s < offsets[v + 1]; ++s) {
      ++counts[machines[s]];
    }
    for (uint32_t m = 0; m < counts.size(); ++m) {
      uint64_t count = counts[m];
      counts[m] = 0;
      while (count > 0) {
        const uint32_t chunk = static_cast<uint32_t>(
            count < ExecutionPlan::kRunCountMask ? count
                                                 : ExecutionPlan::kRunCountMask);
        runs->push_back((m << ExecutionPlan::kRunCountBits) | chunk);
        count -= chunk;
      }
    }
    (*run_offsets)[v + 1] = runs->size();
  }
}

/// Bit-packs a CSR's neighbor ids into per-vertex zigzag-delta blocks at a
/// fixed per-vertex width. Entries keep their CSR order (original edge
/// order — the gather determinism contract); the first delta is taken from
/// the center id so decode needs no side table.
void CompressBlocks(const std::vector<uint64_t>& offsets,
                    const std::vector<graph::VertexId>& nbrs,
                    std::vector<uint64_t>* blob,
                    std::vector<uint64_t>* block_bits,
                    std::vector<uint8_t>* block_width) {
  const size_t n = offsets.size() - 1;
  block_bits->assign(n, 0);
  block_width->assign(n, 1);
  uint64_t total_bits = 0;
  for (size_t v = 0; v < n; ++v) {
    const uint64_t count = offsets[v + 1] - offsets[v];
    uint32_t width = 1;
    int64_t prev = static_cast<int64_t>(v);
    for (uint64_t s = offsets[v]; s < offsets[v + 1]; ++s) {
      const int64_t id = static_cast<int64_t>(nbrs[s]);
      const uint32_t need =
          static_cast<uint32_t>(std::bit_width(ZigZag(id - prev)));
      width = need > width ? need : width;
      prev = id;
    }
    (*block_width)[v] = static_cast<uint8_t>(width);
    (*block_bits)[v] = total_bits;
    total_bits += count * width;
  }
  // One padding word past the last encoded bit: the two-word decode load
  // (ReadPackedBits) may touch words[w + 1] on a straddle.
  blob->assign((total_bits + 63) / 64 + 1, 0);
  for (size_t v = 0; v < n; ++v) {
    uint64_t pos = (*block_bits)[v];
    const uint32_t width = (*block_width)[v];
    int64_t prev = static_cast<int64_t>(v);
    for (uint64_t s = offsets[v]; s < offsets[v + 1]; ++s) {
      const int64_t id = static_cast<int64_t>(nbrs[s]);
      WritePackedBits(blob->data(), pos, width, ZigZag(id - prev));
      pos += width;
      prev = id;
    }
  }
}

}  // namespace

}  // namespace internal

const char* PlanLayoutName(PlanLayout layout) {
  switch (layout) {
    case PlanLayout::kUncompressed:
      return "uncompressed";
    case PlanLayout::kCompressed:
      return "compressed";
  }
  return "?";
}

uint64_t ExecutionPlan::AdjacencyBytes() const {
  uint64_t bytes = 0;
  bytes += gather_nbr.size() * sizeof(graph::VertexId);
  bytes += gather_machine.size() * sizeof(uint8_t);
  bytes += scatter_target.size() * sizeof(graph::VertexId);
  bytes += scatter_machine.size() * sizeof(uint8_t);
  bytes += gather_blob.size() * sizeof(uint64_t);
  bytes += gather_block_bits.size() * sizeof(uint64_t);
  bytes += gather_block_width.size() * sizeof(uint8_t);
  bytes += scatter_blob.size() * sizeof(uint64_t);
  bytes += scatter_block_bits.size() * sizeof(uint64_t);
  bytes += scatter_block_width.size() * sizeof(uint8_t);
  return bytes;
}

ExecutionPlan ExecutionPlan::Build(const partition::DistributedGraph& dg,
                                   EdgeDirection gather_dir,
                                   EdgeDirection scatter_dir,
                                   bool graphx_counts, PlanLayout layout) {
  GDP_CHECK_LE(dg.num_machines, 64u);
  ExecutionPlan plan;
  plan.dg = &dg;
  plan.gather_dir = gather_dir;
  plan.scatter_dir = scatter_dir;
  plan.layout = layout;

  const graph::VertexId n = dg.num_vertices;
  const uint64_t num_edges = dg.edges.size();

  if (!dg.HasDegreeCache()) {
    plan.owned_out_degree_.assign(n, 0);
    plan.owned_in_degree_.assign(n, 0);
    for (const graph::Edge& e : dg.edges) {
      ++plan.owned_out_degree_[e.src];
      ++plan.owned_in_degree_[e.dst];
    }
  }

  plan.masks = internal::MachineMasks::Build(dg);

  plan.edge_machine.resize(num_edges);
  plan.machine_edge_count.assign(dg.num_machines == 0 ? 1 : dg.num_machines,
                                 0);
  for (uint64_t i = 0; i < num_edges; ++i) {
    const uint8_t m =
        static_cast<uint8_t>(dg.edge_partition[i] % dg.num_machines);
    plan.edge_machine[i] = m;
    ++plan.machine_edge_count[m];
  }

  const bool gather_in = IncludesIn(gather_dir);
  const bool gather_out = IncludesOut(gather_dir);
  const bool scatter_in = IncludesIn(scatter_dir);
  const bool scatter_out = IncludesOut(scatter_dir);

  // CSR sizing. A center's gather entry count is gi * in_degree +
  // go * out_degree (and symmetrically for scatter) — the degree caches
  // already hold the per-direction histogram, so the old per-edge counting
  // scan collapses to a branch-free multiply-add sweep over vertices.
  const std::vector<uint64_t>& out_deg = plan.out_degrees();
  const std::vector<uint64_t>& in_deg = plan.in_degrees();
  const uint64_t gi = gather_in ? 1 : 0;
  const uint64_t go = gather_out ? 1 : 0;
  const uint64_t si = scatter_in ? 1 : 0;
  const uint64_t so = scatter_out ? 1 : 0;
  plan.gather_offsets.assign(n + 1, 0);
  plan.scatter_offsets.assign(n + 1, 0);
  for (graph::VertexId v = 0; v < n; ++v) {
    plan.gather_offsets[v + 1] =
        plan.gather_offsets[v] + gi * in_deg[v] + go * out_deg[v];
    plan.scatter_offsets[v + 1] =
        plan.scatter_offsets[v] + si * in_deg[v] + so * out_deg[v];
  }
  plan.gather_nbr.resize(plan.gather_offsets[n]);
  plan.gather_machine.resize(plan.gather_offsets[n]);
  plan.scatter_target.resize(plan.scatter_offsets[n]);
  plan.scatter_machine.resize(plan.scatter_offsets[n]);

  // Fill pass in ORIGINAL edge order, with the in-direction (dst-center)
  // entry of an edge appended before its out-direction (src-center) entry.
  // This matches the serial engine's edge scan, which handles gather_dst
  // before gather_src within each edge — required for bit-identical
  // floating-point gather folds (see the struct comment).
  std::vector<uint64_t> gather_fill(n, 0);
  std::vector<uint64_t> scatter_fill(n, 0);
  for (uint64_t i = 0; i < num_edges; ++i) {
    const graph::Edge& e = dg.edges[i];
    const uint8_t m = plan.edge_machine[i];
    if (gather_in) {
      const uint64_t slot = plan.gather_offsets[e.dst] + gather_fill[e.dst]++;
      plan.gather_nbr[slot] = e.src;
      plan.gather_machine[slot] = m;
    }
    if (gather_out) {
      const uint64_t slot = plan.gather_offsets[e.src] + gather_fill[e.src]++;
      plan.gather_nbr[slot] = e.dst;
      plan.gather_machine[slot] = m;
    }
    if (scatter_out) {
      const uint64_t slot =
          plan.scatter_offsets[e.src] + scatter_fill[e.src]++;
      plan.scatter_target[slot] = e.dst;
      plan.scatter_machine[slot] = m;
    }
    if (scatter_in) {
      const uint64_t slot =
          plan.scatter_offsets[e.dst] + scatter_fill[e.dst]++;
      plan.scatter_target[slot] = e.src;
      plan.scatter_machine[slot] = m;
    }
  }

  // Accounting runs come from the per-entry machine tags; after this the
  // tags themselves are only needed by the uncompressed layout (the legacy
  // per-edge kernels).
  internal::BuildAccountingRuns(plan.gather_offsets, plan.gather_machine,
                                dg.num_machines, &plan.gather_run_offsets,
                                &plan.gather_runs);
  internal::BuildAccountingRuns(plan.scatter_offsets, plan.scatter_machine,
                                dg.num_machines, &plan.scatter_run_offsets,
                                &plan.scatter_runs);

  if (layout == PlanLayout::kCompressed) {
    internal::CompressBlocks(plan.gather_offsets, plan.gather_nbr,
                             &plan.gather_blob, &plan.gather_block_bits,
                             &plan.gather_block_width);
    internal::CompressBlocks(plan.scatter_offsets, plan.scatter_target,
                             &plan.scatter_blob, &plan.scatter_block_bits,
                             &plan.scatter_block_width);
    // Release the CSR arrays: the compressed engine path never touches
    // them, and keeping them would defeat the memory shrink.
    plan.gather_nbr = {};
    plan.gather_machine = {};
    plan.scatter_target = {};
    plan.scatter_machine = {};
  }

  if (graphx_counts) {
    plan.gather_partition_count.assign(n, 0);
    plan.scatter_partition_count.assign(n, 0);
    for (graph::VertexId v = 0; v < n; ++v) {
      if (!dg.present[v]) continue;
      uint32_t in = dg.in_edge_partitions.Count(v);
      uint32_t out = dg.out_edge_partitions.Count(v);
      uint32_t gather = 0, scatter = 0;
      if (gather_in) gather += in;
      if (gather_out) gather += out;
      if (scatter_in) scatter += in;
      if (scatter_out) scatter += out;
      plan.gather_partition_count[v] =
          static_cast<uint16_t>(gather > 65535 ? 65535 : gather);
      plan.scatter_partition_count[v] =
          static_cast<uint16_t>(scatter > 65535 ? 65535 : scatter);
    }
  }

  return plan;
}

}  // namespace gdp::engine
