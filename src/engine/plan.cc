#include "engine/plan.h"

#include "util/check.h"

namespace gdp::engine {

namespace internal {

MachineMasks MachineMasks::Build(const partition::DistributedGraph& dg) {
  MachineMasks masks;
  const graph::VertexId n = dg.num_vertices;
  masks.replicas.assign(n, 0);
  masks.in_edges.assign(n, 0);
  masks.out_edges.assign(n, 0);
  masks.master_machine.assign(n, 0);
  for (graph::VertexId v = 0; v < n; ++v) {
    if (!dg.present[v]) continue;
    uint64_t replica_mask = 0;
    dg.replicas.ForEach(v, [&](sim::MachineId p) {
      replica_mask |= 1ULL << (p % dg.num_machines);
    });
    uint64_t in_mask = 0;
    dg.in_edge_partitions.ForEach(v, [&](sim::MachineId p) {
      in_mask |= 1ULL << (p % dg.num_machines);
    });
    uint64_t out_mask = 0;
    dg.out_edge_partitions.ForEach(v, [&](sim::MachineId p) {
      out_mask |= 1ULL << (p % dg.num_machines);
    });
    masks.replicas[v] = replica_mask;
    masks.in_edges[v] = in_mask;
    masks.out_edges[v] = out_mask;
    masks.master_machine[v] = dg.master[v] % dg.num_machines;
  }
  return masks;
}

}  // namespace internal

ExecutionPlan ExecutionPlan::Build(const partition::DistributedGraph& dg,
                                   EdgeDirection gather_dir,
                                   EdgeDirection scatter_dir,
                                   bool graphx_counts) {
  GDP_CHECK_LE(dg.num_machines, 64u);
  ExecutionPlan plan;
  plan.dg = &dg;
  plan.gather_dir = gather_dir;
  plan.scatter_dir = scatter_dir;

  const graph::VertexId n = dg.num_vertices;
  const uint64_t num_edges = dg.edges.size();

  if (!dg.HasDegreeCache()) {
    plan.owned_out_degree_.assign(n, 0);
    plan.owned_in_degree_.assign(n, 0);
    for (const graph::Edge& e : dg.edges) {
      ++plan.owned_out_degree_[e.src];
      ++plan.owned_in_degree_[e.dst];
    }
  }

  plan.masks = internal::MachineMasks::Build(dg);

  plan.edge_machine.resize(num_edges);
  plan.machine_edge_count.assign(dg.num_machines == 0 ? 1 : dg.num_machines,
                                 0);
  for (uint64_t i = 0; i < num_edges; ++i) {
    const uint8_t m =
        static_cast<uint8_t>(dg.edge_partition[i] % dg.num_machines);
    plan.edge_machine[i] = m;
    ++plan.machine_edge_count[m];
  }

  const bool gather_in = IncludesIn(gather_dir);
  const bool gather_out = IncludesOut(gather_dir);
  const bool scatter_in = IncludesIn(scatter_dir);
  const bool scatter_out = IncludesOut(scatter_dir);

  // Counting pass for both CSRs. Gather: center e.dst folds e.src when the
  // app gathers over in-edges, center e.src folds e.dst for out-edges.
  // Scatter: signaled e.src wakes e.dst over out-edges, signaled e.dst
  // wakes e.src over in-edges.
  std::vector<uint64_t> gather_count(n, 0);
  std::vector<uint64_t> scatter_count(n, 0);
  for (const graph::Edge& e : dg.edges) {
    if (gather_in) ++gather_count[e.dst];
    if (gather_out) ++gather_count[e.src];
    if (scatter_out) ++scatter_count[e.src];
    if (scatter_in) ++scatter_count[e.dst];
  }

  plan.gather_offsets.assign(n + 1, 0);
  plan.scatter_offsets.assign(n + 1, 0);
  for (graph::VertexId v = 0; v < n; ++v) {
    plan.gather_offsets[v + 1] = plan.gather_offsets[v] + gather_count[v];
    plan.scatter_offsets[v + 1] = plan.scatter_offsets[v] + scatter_count[v];
  }
  plan.gather_nbr.resize(plan.gather_offsets[n]);
  plan.gather_machine.resize(plan.gather_offsets[n]);
  plan.scatter_target.resize(plan.scatter_offsets[n]);
  plan.scatter_machine.resize(plan.scatter_offsets[n]);

  // Fill pass in ORIGINAL edge order, with the in-direction (dst-center)
  // entry of an edge appended before its out-direction (src-center) entry.
  // This matches the serial engine's edge scan, which handles gather_dst
  // before gather_src within each edge — required for bit-identical
  // floating-point gather folds (see the struct comment).
  std::vector<uint64_t> gather_fill(n, 0);
  std::vector<uint64_t> scatter_fill(n, 0);
  for (uint64_t i = 0; i < num_edges; ++i) {
    const graph::Edge& e = dg.edges[i];
    const uint8_t m = plan.edge_machine[i];
    if (gather_in) {
      const uint64_t slot = plan.gather_offsets[e.dst] + gather_fill[e.dst]++;
      plan.gather_nbr[slot] = e.src;
      plan.gather_machine[slot] = m;
    }
    if (gather_out) {
      const uint64_t slot = plan.gather_offsets[e.src] + gather_fill[e.src]++;
      plan.gather_nbr[slot] = e.dst;
      plan.gather_machine[slot] = m;
    }
    if (scatter_out) {
      const uint64_t slot =
          plan.scatter_offsets[e.src] + scatter_fill[e.src]++;
      plan.scatter_target[slot] = e.dst;
      plan.scatter_machine[slot] = m;
    }
    if (scatter_in) {
      const uint64_t slot =
          plan.scatter_offsets[e.dst] + scatter_fill[e.dst]++;
      plan.scatter_target[slot] = e.src;
      plan.scatter_machine[slot] = m;
    }
  }

  if (graphx_counts) {
    plan.gather_partition_count.assign(n, 0);
    plan.scatter_partition_count.assign(n, 0);
    for (graph::VertexId v = 0; v < n; ++v) {
      if (!dg.present[v]) continue;
      uint32_t in = dg.in_edge_partitions.Count(v);
      uint32_t out = dg.out_edge_partitions.Count(v);
      uint32_t gather = 0, scatter = 0;
      if (gather_in) gather += in;
      if (gather_out) gather += out;
      if (scatter_in) scatter += in;
      if (scatter_out) scatter += out;
      plan.gather_partition_count[v] =
          static_cast<uint16_t>(gather > 65535 ? 65535 : gather);
      plan.scatter_partition_count[v] =
          static_cast<uint16_t>(scatter > 65535 ? 65535 : scatter);
    }
  }

  return plan;
}

}  // namespace gdp::engine
