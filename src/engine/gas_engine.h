#ifndef GDP_ENGINE_GAS_ENGINE_H_
#define GDP_ENGINE_GAS_ENGINE_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include "engine/engine_obs.h"
#include "engine/gas_app.h"
#include "engine/plan.h"
#include "engine/run_stats.h"
#include "partition/distributed_graph.h"
#include "partition/validate.h"
#include "sim/cluster.h"
#include "sim/phase_accumulator.h"
#include "util/check.h"
#include "util/dense_bitset.h"
#include "util/thread_pool.h"

namespace gdp::engine {

/// Which system's communication discipline to simulate. The engines run the
/// same bulk-synchronous loop and compute identical application results;
/// they differ in *who sends what to whom*, which is exactly the difference
/// the paper measures:
///
/// - kPowerGraphSync (§5.1.2): every mirror sends a partial aggregate to
///   the master each gather step, and the master pushes its updated state
///   to every mirror after apply — 2*(replicas-1) messages per vertex per
///   superstep, the source of the linear RF/IO relation in Fig 5.3.
/// - kPowerLyraHybrid (§6.1): gather messages only from machines actually
///   holding gather-direction edges; state sync to all mirrors for
///   high-degree vertices but only to scatter-direction machines for
///   low-degree ones. With a natural application and a partitioner that
///   colocates gather-edges with the master (Hybrid, 1D-Target), the
///   low-degree traffic vanishes — the below-trend points of Figs 6.1/8.3.
/// - kGraphXPregel (§7.1): vertices live in a hash-partitioned vertex RDD
///   ("home" = master here); homes ship attributes to edge partitions in
///   the scatter direction and edge partitions return partial aggregates
///   from the gather direction. Partitions outnumber machines; traffic
///   between partitions colocated on a machine is free.
enum class EngineKind { kPowerGraphSync, kPowerLyraHybrid, kGraphXPregel };

/// Display name of an engine kind.
inline const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kPowerGraphSync:
      return "PowerGraph";
    case EngineKind::kPowerLyraHybrid:
      return "PowerLyra";
    case EngineKind::kGraphXPregel:
      return "GraphX";
  }
  return "?";
}

template <GasApplication App>
struct GasRunResult {
  std::vector<typename App::State> states;
  RunStats stats;
};

/// Runs `app` over the partitioned graph on the simulated cluster and
/// returns final vertex states plus cost statistics.
///
/// This is the parallel, frontier-aware engine. Real computation runs on
/// `options.exec.num_threads` lanes (0 = hardware default) and gather/scatter
/// traverse precomputed adjacency restricted to the active frontier, so a
/// sparse superstep costs O(frontier edges) instead of O(|E|). Simulated
/// distribution costs charged to `cluster` are *bit-identical* to the
/// original serial engine (reference_engine.h) at every thread count — see
/// sim::PhaseAccumulator for the mechanism. Requires
/// cluster.num_machines() == dg.num_machines and at most 64 machines
/// (partitions may exceed 64).
template <GasApplication App>
GasRunResult<App> RunGasEngine(EngineKind kind,
                               const partition::DistributedGraph& dg,
                               sim::Cluster& cluster, App app,
                               const RunOptions& options = {});

/// Same, over a prebuilt ExecutionPlan (amortizes plan construction across
/// runs — e.g. k-core's per-k sweeps). The plan must have been built from
/// `dg` with this App's gather/scatter directions, and with GraphX fan-out
/// counts when `kind` is kGraphXPregel.
template <GasApplication App>
GasRunResult<App> RunGasEngine(EngineKind kind, const ExecutionPlan& plan,
                               sim::Cluster& cluster, App app,
                               const RunOptions& options = {});

// ---------------------------------------------------------------------------
// Implementation details only below here.
// ---------------------------------------------------------------------------

template <GasApplication App>
GasRunResult<App> RunGasEngine(EngineKind kind, const ExecutionPlan& plan,
                               sim::Cluster& cluster, App app,
                               const RunOptions& options) {
  using State = typename App::State;
  using Gather = typename App::Gather;

  const partition::DistributedGraph& dg = *plan.dg;
  GDP_CHECK_EQ(cluster.num_machines(), dg.num_machines);
  GDP_CHECK_LE(dg.num_machines, 64u);
  GDP_CHECK(plan.gather_dir == App::kGatherDir &&
            plan.scatter_dir == App::kScatterDir);
  // Debug builds re-verify the placement/replica invariants every run; the
  // engines' message accounting silently miscounts on a corrupt structure.
  GDP_DCHECK_OK(partition::ValidateDistributedGraph(dg));
  const graph::VertexId n = dg.num_vertices;
  const uint64_t num_edges = dg.edges.size();
  const sim::ObjectSizes sizes;
  const double work_mul = options.work_multiplier;

  const std::vector<uint64_t>& out_degree = plan.out_degrees();
  const std::vector<uint64_t>& in_degree = plan.in_degrees();
  AppContext ctx{&out_degree, &in_degree};

  const internal::MachineMasks& masks = plan.masks;
  if (kind == EngineKind::kGraphXPregel) {
    GDP_CHECK_EQ(plan.gather_partition_count.size(), n);
  }

  // --- Kernel selection ----------------------------------------------------
  // kBatched charges each center's adjacency through the plan's
  // (machine, count) run tables — one multiply per distinct machine — and
  // collects dense-scatter wakeups in lane-local bitsets merged
  // word-parallel. kPerEdge is the preserved per-entry baseline. Both
  // produce identical integer quarter-unit counts per machine (integer
  // sums are order-free), so every flushed cost is bit-identical across
  // modes, layouts, and thread counts.
  const bool batched = options.kernel_mode == KernelMode::kBatched;
  const bool compressed = plan.layout == PlanLayout::kCompressed;
  // The per-edge kernels read per-entry machine tags, which the compressed
  // layout deliberately does not store.
  GDP_CHECK(batched || !compressed);

  // --- Accounting mode -----------------------------------------------------
  // Every work charge in the serial engine is an integer multiple of one
  // quarter of the work multiplier, so lanes count integer quarter-units
  // (sim::PhaseAccumulator) instead of summing doubles. When the unit is
  // dyadic enough that sums up to max_units are exact in any order (the
  // default multiplier 1.0, any power of two), a closed-form flush is
  // bit-identical to the serial engine. Otherwise — exotic multipliers, or
  // GraphX whose apply charges 0.8 * blocks (not a quarter-unit multiple) —
  // computation still runs parallel but cost accounting is replayed
  // serially in the serial engine's exact order.
  const double unit_value = 0.25 * work_mul;
  const uint64_t max_units = 8 * (2 * num_edges + 130ULL * n + 64);
  const bool fast_accounting =
      kind != EngineKind::kGraphXPregel &&
      sim::PhaseAccumulator::ClosedFormExact(unit_value, max_units);

  // Resolved execution context: thread count + observability sinks. The
  // observer owns the per-superstep timeline sample and span; when no sink
  // is attached (`!observed`) every instrumentation site below is skipped.
  const obs::ExecContext& exec = options.exec;
  SuperstepObserver observer(exec, cluster, EngineKindName(kind));
  const bool observed = observer.enabled();

  const uint32_t num_threads = exec.num_threads != 0
                                   ? exec.num_threads
                                   : util::ThreadPool::DefaultThreadCount();
  util::ThreadPool pool(num_threads);
  std::vector<sim::PhaseAccumulator> accs(pool.num_threads());
  for (sim::PhaseAccumulator& acc : accs) acc.Reset(dg.num_machines);
  // Flushes the lanes' counts to the cluster; returns this minor-step's
  // {quarter-units, sent bytes} totals when observed (integer sums over
  // machines — identical at every lane count).
  auto flush_accs = [&]() -> std::pair<uint64_t, uint64_t> {
    for (size_t i = 1; i < accs.size(); ++i) accs[0].Merge(accs[i]);
    std::pair<uint64_t, uint64_t> totals{0, 0};
    if (observed) {
      totals = {accs[0].TotalWorkUnits(), accs[0].TotalSentBytes()};
    }
    if (fast_accounting) {
      accs[0].FlushTo(cluster, unit_value);
    } else {
      accs[0].FlushToReplay(cluster, unit_value);
    }
    for (sim::PhaseAccumulator& acc : accs) acc.Reset(dg.num_machines);
    return totals;
  };

  // --- Frontier iteration --------------------------------------------------
  // Sparse frontiers (fewer than 1/32 of the vertices) are materialized as a
  // sorted index list and sharded in 1024-entry chunks; dense frontiers are
  // scanned in place in word-aligned 4096-vertex blocks (so block-local
  // non-atomic writes never share a word across lanes). Chunk decomposition
  // depends only on sizes, never on the lane count.
  std::vector<graph::VertexId> frontier_list;
  auto for_each_frontier = [&](const util::DenseBitset& bits, uint64_t count,
                               auto&& per_vertex) {
    if (count == 0) return;
    if (count * 32 < static_cast<uint64_t>(n)) {
      frontier_list.clear();
      bits.AppendSetBits(&frontier_list);
      constexpr uint64_t kChunk = 1024;
      const uint64_t total = frontier_list.size();
      pool.ParallelFor((total + kChunk - 1) / kChunk,
                       [&](uint64_t chunk, uint32_t lane) {
                         const uint64_t begin = chunk * kChunk;
                         const uint64_t end =
                             std::min(begin + kChunk, total);
                         for (uint64_t i = begin; i < end; ++i) {
                           per_vertex(frontier_list[i], lane);
                         }
                       });
    } else {
      constexpr uint64_t kWords = 64;  // 4096 vertices per chunk
      const uint64_t num_words = bits.num_words();
      pool.ParallelFor(
          (num_words + kWords - 1) / kWords,
          [&](uint64_t chunk, uint32_t lane) {
            bits.ForEachSetInWordRange(
                chunk * kWords, std::min(num_words, (chunk + 1) * kWords),
                [&](uint64_t v) {
                  per_vertex(static_cast<graph::VertexId>(v), lane);
                });
          });
    }
  };

  GasRunResult<App> result;
  RunStats& stats = result.stats;
  std::vector<State>& state = result.states;
  state.reserve(n);
  for (graph::VertexId v = 0; v < n; ++v) {
    state.push_back(app.InitState(v, ctx));
  }

  util::DenseBitset active(n);
  for (graph::VertexId v = 0; v < n; ++v) {
    if (dg.present[v] && app.InitiallyActive(v)) active.Set(v);
  }

  const double compute_start = cluster.now_seconds();
  uint64_t bytes_sent_start = cluster.TotalBytesSent();
  std::vector<uint64_t> inbound_start(dg.num_machines);
  for (uint32_t m = 0; m < dg.num_machines; ++m) {
    inbound_start[m] = cluster.machine(m).bytes_received();
  }

  util::DenseBitset signaled(n);
  util::DenseBitset next_active(n);

  // Activation (scatter control) messages: signaled center v notifies the
  // machines holding its scatter-direction edges. Byte counts only —
  // integer sums, safe to accumulate on any lane in any order.
  auto charge_activation = [&](graph::VertexId v, uint32_t lane) {
    uint64_t mask = internal::DirectionMask(masks, App::kScatterDir, v);
    sim::MachineId master = masks.master_machine[v];
    mask &= ~(1ULL << master);
    while (mask != 0) {
      sim::MachineId m = static_cast<sim::MachineId>(std::countr_zero(mask));
      mask &= mask - 1;
      accs[lane].ChargeSendBytes(master, sizes.control_message);
      accs[lane].ChargeReceiveBytes(m, sizes.control_message);
    }
  };

  // Wakes the scatter-direction neighbors of one signaled center through
  // `set_bit` and charges its scatter work. Decode order is the CSR /
  // original-edge order in both layouts; wakeups are idempotent ORs and
  // charges are integer sums, so neither depends on it.
  auto scatter_vertex = [&](graph::VertexId v, uint32_t lane,
                            auto&& set_bit) {
    const uint64_t begin = plan.scatter_offsets[v];
    const uint64_t end = plan.scatter_offsets[v + 1];
    if (batched) {
      if (compressed) {
        internal::CompressedBlockCursor cur(plan.scatter_blob,
                                            plan.scatter_block_bits[v],
                                            plan.scatter_block_width[v], v);
        for (uint64_t s = begin; s < end; ++s) set_bit(cur.Next());
      } else {
        for (uint64_t s = begin; s < end; ++s) {
          set_bit(plan.scatter_target[s]);
        }
      }
      for (uint64_t r = plan.scatter_run_offsets[v];
           r < plan.scatter_run_offsets[v + 1]; ++r) {
        const uint32_t run = plan.scatter_runs[r];
        accs[lane].AddWorkUnits(ExecutionPlan::RunMachine(run),
                                4ULL * ExecutionPlan::RunCount(run));
      }
    } else {
      for (uint64_t s = begin; s < end; ++s) {
        accs[lane].AddWorkUnits(plan.scatter_machine[s], 4);  // NOLINT(no-per-edge-accounting)
        set_bit(plan.scatter_target[s]);
      }
    }
  };

  // Scatter minor-step from `from` into `into`: wake the scatter-direction
  // neighbors of every signaled center. Activation signals piggyback on the
  // state-sync messages sent for the same vertices (the real engines
  // coalesce them), so scatter itself only charges compute work. On dense
  // frontiers the batched kernels collect wakeups in lane-local bitsets
  // (plain single-writer stores) merged afterwards with one word-parallel
  // OrWith per lane, so the hot loop carries no lock-prefixed RMW; sparse
  // frontiers stay on SetAtomic — merging whole-size bitsets would cost
  // O(n/64) per lane to publish a handful of bits.
  std::vector<util::DenseBitset> scatter_local;
  auto scatter_frontier = [&](const util::DenseBitset& from, uint64_t count,
                              util::DenseBitset& into) {
    const bool dense = count * 32 >= static_cast<uint64_t>(n);
    if (batched && dense) {
      if (scatter_local.empty()) {
        for (uint32_t t = 0; t < pool.num_threads(); ++t) {
          scatter_local.emplace_back(n);
        }
      } else {
        for (util::DenseBitset& local : scatter_local) local.ClearAll();
      }
      for_each_frontier(from, count, [&](graph::VertexId v, uint32_t lane) {
        util::DenseBitset& local = scatter_local[lane];
        scatter_vertex(v, lane,
                       [&](graph::VertexId t) { local.Set(t); });
      });
      for (const util::DenseBitset& local : scatter_local) {
        into.OrWith(local);
      }
    } else {
      for_each_frontier(from, count, [&](graph::VertexId v, uint32_t lane) {
        scatter_vertex(v, lane,
                       [&](graph::VertexId t) { into.SetAtomic(t); });
      });
    }
  };

  // Exact-accounting scatter: the serial engine's full edge scan, verbatim,
  // so per-machine charge sequences (including the single combined
  // 2x-work-multiplier charge when both endpoints scatter) replay exactly.
  // Returns the scatter compute total in quarter-units (for the span args).
  auto scatter_serial = [&](const util::DenseBitset& from,
                            util::DenseBitset& into) -> uint64_t {
    uint64_t units = 0;
    for (uint64_t i = 0; i < num_edges; ++i) {
      const graph::Edge& e = dg.edges[i];
      bool src_scatters = IncludesOut(App::kScatterDir) && from.Test(e.src);
      bool dst_scatters = IncludesIn(App::kScatterDir) && from.Test(e.dst);
      if (!src_scatters && !dst_scatters) continue;
      const int events = (src_scatters ? 1 : 0) + (dst_scatters ? 1 : 0);
      cluster.machine(plan.edge_machine[i]).AddWork(work_mul * events);
      units += 4ULL * static_cast<uint64_t>(events);
      if (src_scatters) into.Set(e.dst);
      if (dst_scatters) into.Set(e.src);
    }
    return units;
  };

  // Optional bootstrap: initially active vertices announce themselves;
  // with no apply/sync step yet, these activations do cross the wire.
  if (App::kBootstrapScatter) {
    obs::ScopedSpan bootstrap_span(exec.trace, exec.trace_track, "bootstrap",
                                   "engine", cluster.now_seconds());
    const uint64_t init_count = active.CountSet();
    uint64_t serial_units = 0;
    if (fast_accounting) {
      scatter_frontier(active, init_count, next_active);
    } else {
      serial_units = scatter_serial(active, next_active);
    }
    for_each_frontier(active, init_count, charge_activation);
    const auto [flushed_units, flushed_bytes] = flush_accs();
    cluster.EndPhase();
    std::swap(active, next_active);
    next_active.ClearAll();
    bootstrap_span.Arg("frontier", static_cast<int64_t>(init_count));
    bootstrap_span.Arg("scatter_units",
                       static_cast<int64_t>(serial_units + flushed_units));
    bootstrap_span.Arg("scatter_bytes",
                       static_cast<int64_t>(flushed_bytes));
    bootstrap_span.End(cluster.now_seconds());
  }

  std::vector<Gather> acc(n, app.GatherInit());
  std::vector<uint8_t> has_gather(n, 0);

  const Gather gather_identity = app.GatherInit();
  // Plain-sum contribution cache (HasGatherContribution apps): one value per
  // vertex per superstep, refreshed by a strided sweep before dense gathers.
  constexpr bool kHasContribution = HasGatherContribution<App>;
  std::vector<Gather> contrib;
  uint32_t iteration = 0;
  for (; iteration < options.max_iterations; ++iteration) {
    const uint64_t active_count = active.CountSet();
    stats.active_counts.push_back(active_count);
    if (active_count == 0) {
      stats.converged = true;
      break;
    }
    observer.BeginSuperstep(iteration);
    SuperstepBreakdown breakdown;
    breakdown.frontier = active_count;

    // ---- Gather minor-step ------------------------------------------------
    // Each active center folds its gather-direction neighbors through the
    // plan's CSR. Adjacency order per center equals the serial engine's
    // edge-scan order restricted to that center (plan.h) — the compressed
    // cursor decodes the same sequence — and only the center's lane touches
    // acc[v]/has_gather[v], so gather results are bit-identical to the
    // serial engine at any lane count, layout, and kernel mode.

    // Refresh the contribution cache on dense frontiers: a strided sweep
    // with no adjacency indirection (auto-vectorizable) hoists the per-edge
    // arithmetic out of the gather loop. Sparse frontiers skip it — an O(n)
    // sweep serving few centers costs more than it saves. The gate depends
    // only on active_count, so the decision is identical at every thread
    // count; either path folds identical bits (see HasGatherContribution).
    bool use_contrib = false;
    if constexpr (kHasContribution) {
      use_contrib = batched && active_count * 4 >= static_cast<uint64_t>(n);
      if (use_contrib) {
        if (contrib.empty()) contrib.resize(n, gather_identity);
        constexpr uint64_t kBlock = 4096;
        pool.ParallelFor(
            (static_cast<uint64_t>(n) + kBlock - 1) / kBlock,
            [&](uint64_t chunk, uint32_t) {
              const graph::VertexId first =
                  static_cast<graph::VertexId>(chunk * kBlock);
              const graph::VertexId last = static_cast<graph::VertexId>(
                  std::min<uint64_t>(n, (chunk + 1) * kBlock));
              for (graph::VertexId u = first; u < last; ++u) {
                contrib[u] = app.GatherContribution(u, state[u], ctx);
              }
            });
      }
    }

    for_each_frontier(
        active, active_count, [&](graph::VertexId v, uint32_t lane) {
          const uint64_t begin = plan.gather_offsets[v];
          const uint64_t end = plan.gather_offsets[v + 1];
          const uint64_t degree = end - begin;
          Gather folded = gather_identity;
          // Folds `degree` neighbors produced by the stateful generator
          // `next_nbr`, via the cached contributions when active.
          auto fold_entries = [&](auto&& next_nbr) {
            if constexpr (kHasContribution) {
              if (use_contrib) {
                for (uint64_t k = 0; k < degree; ++k) {
                  folded += contrib[next_nbr()];
                }
                return;
              }
            }
            for (uint64_t k = 0; k < degree; ++k) {
              const graph::VertexId nbr = next_nbr();
              app.GatherEdge(v, nbr, state[nbr], ctx, &folded);
            }
          };
          if (batched) {
            if (compressed) {
              internal::CompressedBlockCursor cur(
                  plan.gather_blob, plan.gather_block_bits[v],
                  plan.gather_block_width[v], v);
              fold_entries([&] { return cur.Next(); });
            } else {
              uint64_t s = begin;
              fold_entries([&] { return plan.gather_nbr[s++]; });
            }
            for (uint64_t r = plan.gather_run_offsets[v];
                 r < plan.gather_run_offsets[v + 1]; ++r) {
              const uint32_t run = plan.gather_runs[r];
              accs[lane].AddWorkUnits(ExecutionPlan::RunMachine(run),
                                      4ULL * ExecutionPlan::RunCount(run));
            }
          } else {
            for (uint64_t s = begin; s < end; ++s) {
              const graph::VertexId nbr = plan.gather_nbr[s];
              app.GatherEdge(v, nbr, state[nbr], ctx, &folded);
              accs[lane].AddWorkUnits(plan.gather_machine[s], 4);  // NOLINT(no-per-edge-accounting)
            }
          }
          acc[v] = std::move(folded);
          has_gather[v] = begin != end;
        });
    std::tie(breakdown.gather_units, breakdown.gather_bytes) = flush_accs();

    // ---- Apply minor-step + message accounting ----------------------------
    signaled.ClearAll();
    if (fast_accounting) {
      for_each_frontier(
          active, active_count, [&](graph::VertexId v, uint32_t lane) {
            sim::PhaseAccumulator& a = accs[lane];
            const sim::MachineId master = masks.master_machine[v];
            a.AddWorkUnits(master, 4);
            const bool signal =
                app.Apply(v, acc[v], has_gather[v] != 0, ctx, &state[v]);
            if (signal) signaled.SetAtomic(v);

            const uint64_t master_bit = 1ULL << master;

            // Gather messages: mirrors -> master, a round trip each (the
            // master activates the mirror, the mirror returns its partial
            // aggregate and pays serialization work).
            uint64_t gm =
                kind == EngineKind::kPowerGraphSync
                    ? masks.replicas[v] & ~master_bit
                    : internal::DirectionMask(masks, App::kGatherDir, v) &
                          ~master_bit;
            while (gm != 0) {
              sim::MachineId src =
                  static_cast<sim::MachineId>(std::countr_zero(gm));
              gm &= gm - 1;
              a.ChargeSendBytes(master, sizes.control_message);
              a.ChargeReceiveBytes(src, sizes.control_message);
              a.ChargeSendBytes(src, sizes.gather_message);
              a.ChargeReceiveBytes(master, sizes.gather_message);
              a.AddWorkUnits(src, 1);
            }

            // State synchronization: master -> mirrors (only when state
            // changed; always for always-signaling apps like PageRank).
            if (signal) {
              const bool low_degree = (in_degree[v] + out_degree[v]) <=
                                      options.high_degree_threshold;
              uint64_t sm =
                  kind == EngineKind::kPowerGraphSync
                      ? masks.replicas[v] & ~master_bit
                      : (low_degree ? internal::DirectionMask(
                                          masks, App::kScatterDir, v) &
                                          ~master_bit
                                    : masks.replicas[v] & ~master_bit);
              while (sm != 0) {
                sim::MachineId dst =
                    static_cast<sim::MachineId>(std::countr_zero(sm));
                sm &= sm - 1;
                a.ChargeSendBytes(master, sizes.sync_message);
                a.ChargeReceiveBytes(dst, sizes.sync_message);
                a.AddWorkUnits(master, 1);
              }
            }
          });
      std::tie(breakdown.apply_units, breakdown.apply_bytes) = flush_accs();
    } else {
      // Parallel computation (per-vertex state updates are independent and
      // order-free), then a serial replay of the serial engine's apply
      // accounting in ascending vertex order — required because GraphX's
      // shuffle-block charge and exotic multipliers are order-sensitive.
      for_each_frontier(active, active_count,
                        [&](graph::VertexId v, uint32_t) {
                          if (app.Apply(v, acc[v], has_gather[v] != 0, ctx,
                                        &state[v])) {
                            signaled.SetAtomic(v);
                          }
                        });
      for (graph::VertexId v = 0; v < n; ++v) {
        if (!active.Test(v)) continue;
        const sim::MachineId master = masks.master_machine[v];
        cluster.machine(master).AddWork(work_mul);
        const bool signal = signaled.Test(v);
        if (observed) breakdown.apply_units += 4;

        const uint64_t master_bit = 1ULL << master;
        const bool low_degree = (in_degree[v] + out_degree[v]) <=
                                options.high_degree_threshold;

        if (kind == EngineKind::kGraphXPregel) {
          // Shuffle-block serialization per edge-partition touched (see
          // the ExecutionPlan fan-out comment).
          double blocks =
              static_cast<double>(plan.gather_partition_count[v]) +
              (signal ? static_cast<double>(plan.scatter_partition_count[v])
                      : 0);
          cluster.machine(master).AddWork(0.8 * work_mul * blocks);
          if (observed) {
            breakdown.graphx_blocks +=
                plan.gather_partition_count[v] +
                (signal ? plan.scatter_partition_count[v] : 0);
          }
        }

        uint64_t gm =
            kind == EngineKind::kPowerGraphSync
                ? masks.replicas[v] & ~master_bit
                : internal::DirectionMask(masks, App::kGatherDir, v) &
                      ~master_bit;
        while (gm != 0) {
          sim::MachineId src =
              static_cast<sim::MachineId>(std::countr_zero(gm));
          gm &= gm - 1;
          cluster.machine(master).ChargePhaseBytes(sizes.control_message);
          cluster.machine(src).ReceiveBytes(sizes.control_message);
          cluster.machine(src).ChargePhaseBytes(sizes.gather_message);
          cluster.machine(master).ReceiveBytes(sizes.gather_message);
          cluster.machine(src).AddWork(0.25 * work_mul);  // serialize
          if (observed) {
            breakdown.apply_units += 1;
            breakdown.apply_bytes +=
                sizes.control_message + sizes.gather_message;
          }
        }

        if (signal) {
          uint64_t sm = 0;
          switch (kind) {
            case EngineKind::kPowerGraphSync:
              sm = masks.replicas[v] & ~master_bit;
              break;
            case EngineKind::kPowerLyraHybrid:
              sm = low_degree
                       ? internal::DirectionMask(masks, App::kScatterDir,
                                                 v) &
                             ~master_bit
                       : masks.replicas[v] & ~master_bit;
              break;
            case EngineKind::kGraphXPregel:
              sm = internal::DirectionMask(masks, App::kScatterDir, v) &
                   ~master_bit;
              break;
          }
          while (sm != 0) {
            sim::MachineId dst =
                static_cast<sim::MachineId>(std::countr_zero(sm));
            sm &= sm - 1;
            cluster.machine(master).ChargePhaseBytes(sizes.sync_message);
            cluster.machine(dst).ReceiveBytes(sizes.sync_message);
            cluster.machine(master).AddWork(0.25 * work_mul);
            if (observed) {
              breakdown.apply_units += 1;
              breakdown.apply_bytes += sizes.sync_message;
            }
          }
        }
      }
    }
    const uint64_t signaled_count = signaled.CountSet();

    // ---- Scatter minor-step ----------------------------------------------
    next_active.ClearAll();
    if (signaled_count > 0) {
      if (fast_accounting) {
        scatter_frontier(signaled, signaled_count, next_active);
        std::tie(breakdown.scatter_units, breakdown.scatter_bytes) =
            flush_accs();
      } else {
        breakdown.scatter_units = scatter_serial(signaled, next_active);
      }
    }

    // Three minor-step barriers per superstep (§5.1.2).
    cluster.EndPhase();
    cluster.AdvanceSeconds(2 * cluster.cost_model().barrier_latency_seconds);
    stats.cumulative_seconds.push_back(cluster.now_seconds() -
                                       compute_start);
    breakdown.signaled = signaled_count;
    observer.EndSuperstep(breakdown);
    std::swap(active, next_active);
  }

  observer.Finish();
  stats.iterations = iteration;
  if (!stats.converged && iteration == options.max_iterations) {
    // Ran to the iteration cap; report whether anything is still active.
    stats.converged = !active.AnySet();
  }
  stats.compute_seconds = cluster.now_seconds() - compute_start;
  stats.network_bytes = cluster.TotalBytesSent() - bytes_sent_start;
  double inbound_total = 0;
  for (uint32_t m = 0; m < dg.num_machines; ++m) {
    inbound_total += static_cast<double>(
        cluster.machine(m).bytes_received() - inbound_start[m]);
  }
  stats.mean_inbound_bytes_per_machine = inbound_total / dg.num_machines;
  return result;
}

template <GasApplication App>
GasRunResult<App> RunGasEngine(EngineKind kind,
                               const partition::DistributedGraph& dg,
                               sim::Cluster& cluster, App app,
                               const RunOptions& options) {
  const ExecutionPlan plan =
      ExecutionPlan::Build(dg, App::kGatherDir, App::kScatterDir,
                           kind == EngineKind::kGraphXPregel);
  return RunGasEngine(kind, plan, cluster, std::move(app), options);
}

}  // namespace gdp::engine

#endif  // GDP_ENGINE_GAS_ENGINE_H_
