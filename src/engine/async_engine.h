#ifndef GDP_ENGINE_ASYNC_ENGINE_H_
#define GDP_ENGINE_ASYNC_ENGINE_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "engine/engine_obs.h"
#include "engine/gas_app.h"
#include "engine/gas_engine.h"
#include "engine/run_stats.h"
#include "partition/distributed_graph.h"
#include "sim/cluster.h"
#include "util/check.h"

namespace gdp::engine {

/// Generic asynchronous GAS engine (PowerGraph's async mode, §5.1.2:
/// "When run asynchronously, these barriers are absent"). Differences from
/// RunGasEngine's bulk-synchronous loop:
///
///  - no barriers: the cluster clock advances by the *mean* machine time
///    per round instead of the max, so stragglers do not stall the others;
///  - stale remote reads: a gather sees the freshest value for
///    same-machine neighbors but the previous round's committed value for
///    remote ones (mirror caches), so information propagates more slowly
///    across machine boundaries and runs typically need more rounds;
///  - processing order: within a round, vertices apply in id order, and
///    later vertices on the same machine see earlier ones' fresh values
///    (chaotic relaxation).
///
/// For monotone applications (SSSP, WCC, K-Core stages) the fixpoint is
/// unique, so results equal the synchronous engine's exactly; PageRank
/// converges to the same fixpoint within its tolerance. The paper's
/// observed async pathologies (hangs/failures on Coloring) are
/// nondeterministic scheduler artifacts we do not reproduce (DESIGN.md).
template <GasApplication App>
GasRunResult<App> RunAsyncGasEngine(const partition::DistributedGraph& dg,
                                    sim::Cluster& cluster, App app,
                                    const RunOptions& options = {}) {
  using State = typename App::State;
  using Gather = typename App::Gather;

  GDP_CHECK_EQ(cluster.num_machines(), dg.num_machines);
  GDP_CHECK_LE(dg.num_machines, 64u);
  const graph::VertexId n = dg.num_vertices;
  const sim::ObjectSizes sizes;
  const double work_mul = options.work_multiplier;

  // Observability sinks; the observer owns the old per-round timeline
  // sample. One span per async round (the engine has no minor-step
  // barriers, so gather/apply/scatter totals are per-round sums).
  const obs::ExecContext& exec = options.exec;
  SuperstepObserver observer(exec, cluster, "AsyncGAS");
  const bool observed = observer.enabled();

  // Degrees: use the graph's ingest-time cache when present, otherwise
  // compute a local fallback (hand-assembled graphs).
  std::vector<uint64_t> fallback_out_degree;
  std::vector<uint64_t> fallback_in_degree;
  if (!dg.HasDegreeCache()) {
    fallback_out_degree.assign(n, 0);
    fallback_in_degree.assign(n, 0);
    for (const graph::Edge& e : dg.edges) {
      ++fallback_out_degree[e.src];
      ++fallback_in_degree[e.dst];
    }
  }
  const std::vector<uint64_t>& out_degree =
      dg.HasDegreeCache() ? dg.out_degree : fallback_out_degree;
  const std::vector<uint64_t>& in_degree =
      dg.HasDegreeCache() ? dg.in_degree : fallback_in_degree;
  AppContext ctx{&out_degree, &in_degree};
  internal::MachineMasks masks = internal::MachineMasks::Build(dg);

  // Direction-specific adjacency in CSR form (gather needs neighbor
  // lookups by center, which the edge list alone cannot give us cheaply
  // in id order).
  auto build_csr = [&](bool incoming, std::vector<uint64_t>& offsets,
                       std::vector<graph::VertexId>& adjacency) {
    offsets.assign(static_cast<size_t>(n) + 1, 0);
    for (const graph::Edge& e : dg.edges) {
      ++offsets[(incoming ? e.dst : e.src) + 1];
    }
    for (size_t v = 1; v < offsets.size(); ++v) offsets[v] += offsets[v - 1];
    adjacency.resize(dg.edges.size());
    std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const graph::Edge& e : dg.edges) {
      graph::VertexId key = incoming ? e.dst : e.src;
      adjacency[cursor[key]++] = incoming ? e.src : e.dst;
    }
  };
  std::vector<uint64_t> in_offsets, out_offsets;
  std::vector<graph::VertexId> in_adjacency, out_adjacency;
  if (IncludesIn(App::kGatherDir) || IncludesIn(App::kScatterDir)) {
    build_csr(true, in_offsets, in_adjacency);
  }
  if (IncludesOut(App::kGatherDir) || IncludesOut(App::kScatterDir)) {
    build_csr(false, out_offsets, out_adjacency);
  }

  GasRunResult<App> result;
  RunStats& stats = result.stats;
  std::vector<State>& state = result.states;
  state.reserve(n);
  for (graph::VertexId v = 0; v < n; ++v) {
    state.push_back(app.InitState(v, ctx));
  }
  std::vector<State> committed = state;  // remote-visible snapshot

  std::vector<bool> active(n, false);
  for (graph::VertexId v = 0; v < n; ++v) {
    active[v] = dg.present[v] && app.InitiallyActive(v);
  }
  std::vector<bool> next_active(n, false);

  // Bootstrap: initially active vertices wake their scatter neighbors
  // (message-driven apps like SSSP need the source to announce itself).
  if (App::kBootstrapScatter) {
    for (graph::VertexId v = 0; v < n; ++v) {
      if (!active[v]) continue;
      next_active[v] = true;  // async: the source itself retries too
      if (IncludesOut(App::kScatterDir)) {
        for (uint64_t i = out_offsets[v]; i < out_offsets[v + 1]; ++i) {
          next_active[out_adjacency[i]] = true;
        }
      }
      if (IncludesIn(App::kScatterDir)) {
        for (uint64_t i = in_offsets[v]; i < in_offsets[v + 1]; ++i) {
          next_active[in_adjacency[i]] = true;
        }
      }
    }
    active.swap(next_active);
    std::fill(next_active.begin(), next_active.end(), false);
  }

  const double start = cluster.now_seconds();
  uint64_t bytes_start = cluster.TotalBytesSent();
  std::vector<uint64_t> inbound_start(dg.num_machines);
  for (uint32_t m = 0; m < dg.num_machines; ++m) {
    inbound_start[m] = cluster.machine(m).bytes_received();
  }

  uint32_t round = 0;
  for (; round < options.max_iterations; ++round) {
    uint64_t active_count = 0;
    for (graph::VertexId v = 0; v < n; ++v) {
      if (active[v]) ++active_count;
    }
    stats.active_counts.push_back(active_count);
    if (active_count == 0) {
      stats.converged = true;
      break;
    }
    observer.BeginSuperstep(round);
    SuperstepBreakdown breakdown;
    breakdown.frontier = active_count;

    for (graph::VertexId v = 0; v < n; ++v) {
      if (!active[v]) continue;
      sim::MachineId home = masks.master_machine[v];
      Gather acc = app.GatherInit();
      bool has_gather = false;
      auto gather_from = [&](graph::VertexId u) {
        bool remote = masks.master_machine[u] != home;
        const State& seen = remote ? committed[u] : state[u];
        app.GatherEdge(v, u, seen, ctx, &acc);
        has_gather = true;
        cluster.machine(home).AddWork(work_mul);
        if (remote) cluster.machine(home).AddWork(0.25 * work_mul);
        if (observed) breakdown.gather_units += remote ? 5 : 4;
      };
      if (IncludesIn(App::kGatherDir)) {
        for (uint64_t i = in_offsets[v]; i < in_offsets[v + 1]; ++i) {
          gather_from(in_adjacency[i]);
        }
      }
      if (IncludesOut(App::kGatherDir)) {
        for (uint64_t i = out_offsets[v]; i < out_offsets[v + 1]; ++i) {
          gather_from(out_adjacency[i]);
        }
      }
      cluster.machine(home).AddWork(work_mul);  // apply
      if (observed) breakdown.apply_units += 4;
      bool signal = app.Apply(v, acc, has_gather, ctx, &state[v]);
      if (!signal) continue;
      if (observed) ++breakdown.signaled;

      // Push the fresh value to the vertex's mirror machines.
      uint64_t mask = masks.replicas[v] & ~(1ULL << home);
      while (mask != 0) {
        sim::MachineId m =
            static_cast<sim::MachineId>(std::countr_zero(mask));
        mask &= mask - 1;
        cluster.machine(home).ChargePhaseBytes(sizes.sync_message);
        cluster.machine(m).ReceiveBytes(sizes.sync_message);
        if (observed) breakdown.apply_bytes += sizes.sync_message;
      }
      // Wake the scatter neighborhood. Chaotic relaxation: a SAME-MACHINE
      // neighbor the sweep has not reached yet (higher id) is processed in
      // THIS round and sees the fresh value. Remote neighbors must wait
      // for the next round — their mirror caches only refresh at round
      // boundaries, so waking them now would have them read the stale
      // committed value and lose the update.
      auto wake = [&](graph::VertexId w) {
        if (w > v && masks.master_machine[w] == home) {
          active[w] = true;
        } else {
          next_active[w] = true;
        }
        cluster.machine(home).AddWork(work_mul);
        if (observed) breakdown.scatter_units += 4;
      };
      if (IncludesOut(App::kScatterDir)) {
        for (uint64_t i = out_offsets[v]; i < out_offsets[v + 1]; ++i) {
          wake(out_adjacency[i]);
        }
      }
      if (IncludesIn(App::kScatterDir)) {
        for (uint64_t i = in_offsets[v]; i < in_offsets[v + 1]; ++i) {
          wake(in_adjacency[i]);
        }
      }
    }

    committed = state;
    cluster.EndPhaseAsync();
    stats.cumulative_seconds.push_back(cluster.now_seconds() - start);
    observer.EndSuperstep(breakdown);
    std::fill(active.begin(), active.end(), false);
    active.swap(next_active);
  }

  observer.Finish();
  stats.iterations = round;
  stats.compute_seconds = cluster.now_seconds() - start;
  stats.network_bytes = cluster.TotalBytesSent() - bytes_start;
  double inbound_total = 0;
  for (uint32_t m = 0; m < dg.num_machines; ++m) {
    inbound_total += static_cast<double>(
        cluster.machine(m).bytes_received() - inbound_start[m]);
  }
  stats.mean_inbound_bytes_per_machine = inbound_total / dg.num_machines;
  return result;
}

}  // namespace gdp::engine

#endif  // GDP_ENGINE_ASYNC_ENGINE_H_
