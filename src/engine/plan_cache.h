#ifndef GDP_ENGINE_PLAN_CACHE_H_
#define GDP_ENGINE_PLAN_CACHE_H_

#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "engine/plan.h"
#include "obs/metrics.h"
#include "partition/distributed_graph.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace gdp::engine {

/// Memoizes ExecutionPlan::Build for one shared DistributedGraph.
///
/// plan.cc rebuilds both per-direction CSRs for every run of every
/// application on the same partition; across a grid of N applications that
/// is N rebuilds of identical structures. A PlanCache builds each distinct
/// (gather_dir, scatter_dir, graphx_counts, layout) plan once and hands out
/// const references; plans are immutable after Build (plan.h), so one
/// cached plan can back any number of concurrent engine runs.
///
/// Thread-safety: Get() may be called concurrently; the first caller for a
/// key builds the plan, others block until it is ready. Entries are never
/// evicted, and references stay valid for the cache's lifetime. The graph
/// must outlive the cache (plans borrow it).
class PlanCache {
 public:
  explicit PlanCache(const partition::DistributedGraph& dg) : dg_(&dg) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The plan for the given directions and adjacency layout, building it
  /// on first use.
  const ExecutionPlan& Get(EdgeDirection gather_dir,
                           EdgeDirection scatter_dir, bool graphx_counts,
                           PlanLayout layout = PlanLayout::kUncompressed)
      GDP_EXCLUDES(mu_);

  const partition::DistributedGraph& dg() const { return *dg_; }

  /// Plans built so far (for tests and cache-hit accounting).
  size_t num_plans() const GDP_EXCLUDES(mu_);

  /// Lookup accounting: hits (plan already built) vs misses (this call
  /// created the slot and built the plan). Backed by the cache's own
  /// metrics registry; bypasses is always 0 for plan lookups.
  obs::CacheStats stats() const;

 private:
  struct Slot {
    std::once_flag once;
    ExecutionPlan plan;
  };
  using Key = std::tuple<EdgeDirection, EdgeDirection, bool, PlanLayout>;

  const partition::DistributedGraph* dg_;
  /// Guards the slot map only; plan construction runs outside the lock,
  /// serialized per key by the slot's std::once_flag.
  mutable util::Mutex mu_;
  std::map<Key, std::unique_ptr<Slot>> slots_ GDP_GUARDED_BY(mu_);
  // Registry-backed lookup counters (see stats()).
  obs::MetricsRegistry registry_;
  obs::Counter* hits_ = registry_.GetCounter("plan_cache.hits");
  obs::Counter* misses_ = registry_.GetCounter("plan_cache.misses");
};

}  // namespace gdp::engine

#endif  // GDP_ENGINE_PLAN_CACHE_H_
