#ifndef GDP_ENGINE_PLAN_CACHE_H_
#define GDP_ENGINE_PLAN_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "engine/plan.h"
#include "obs/metrics.h"
#include "partition/distributed_graph.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace gdp::engine {

/// Memoizes ExecutionPlan::Build for one shared DistributedGraph.
///
/// plan.cc rebuilds both per-direction CSRs for every run of every
/// application on the same partition; across a grid of N applications that
/// is N rebuilds of identical structures. A PlanCache builds each distinct
/// (gather_dir, scatter_dir, graphx_counts, layout) plan once and hands out
/// shared pointers; plans are immutable after Build (plan.h), so one
/// cached plan can back any number of concurrent engine runs.
///
/// Byte budget: by default the budget is 0 = unbounded and entries are
/// never evicted (the pre-serving contract). set_byte_budget(n) caps the
/// resident plan bytes (ExecutionPlan::AdjacencyBytes ledger): whenever
/// admitting a newly built plan pushes the ledger over the budget, the
/// oldest admitted plans are evicted (deterministic FIFO by admission
/// order) until the ledger fits or only the newcomer remains — a single
/// plan larger than the budget is still served, it just evicts everything
/// else. Evicted plans stay alive for as long as callers hold the returned
/// shared_ptr; re-requesting an evicted key rebuilds (a fresh miss).
/// Eviction order is deterministic when admissions are serial (the serving
/// scheduler admits serially); concurrent same-window admissions may
/// interleave admission order by scheduling.
///
/// Thread-safety: Get() may be called concurrently; the first caller for a
/// key builds the plan, others block until it is ready. The graph must
/// outlive the cache (plans borrow it).
class PlanCache {
 public:
  explicit PlanCache(const partition::DistributedGraph& dg) : dg_(&dg) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The plan for the given directions and adjacency layout, building it
  /// on first use. The shared_ptr keeps the plan alive across eviction.
  std::shared_ptr<const ExecutionPlan> Get(
      EdgeDirection gather_dir, EdgeDirection scatter_dir, bool graphx_counts,
      PlanLayout layout = PlanLayout::kUncompressed) GDP_EXCLUDES(mu_);

  const partition::DistributedGraph& dg() const { return *dg_; }

  /// Resident-byte cap for cached plans; 0 (default) = unbounded.
  /// Takes effect on the next admission — it does not evict retroactively.
  void set_byte_budget(uint64_t bytes) GDP_EXCLUDES(mu_);
  uint64_t byte_budget() const GDP_EXCLUDES(mu_);

  /// Bytes currently held by resident (non-evicted) plans.
  uint64_t resident_bytes() const GDP_EXCLUDES(mu_);

  /// Plans resident right now (for tests and cache-hit accounting).
  size_t num_plans() const GDP_EXCLUDES(mu_);

  /// Lookup accounting: hits (plan already built) vs misses (this call
  /// created the slot and built the plan). Backed by the cache's own
  /// metrics registry; bypasses is always 0 for plan lookups.
  obs::CacheStats stats() const;

  /// The cache's own metrics registry (plan_cache.hits/misses/evictions/
  /// evicted_bytes counters + plan_cache.resident_bytes gauge), for
  /// MergeFrom into an exported registry.
  const obs::MetricsRegistry& registry() const { return registry_; }

 private:
  using Key = std::tuple<EdgeDirection, EdgeDirection, bool, PlanLayout>;

  struct Slot {
    std::once_flag once;
    /// Set exactly once inside `once`; readable without mu_ afterwards
    /// (call_once is the synchronization point). Eviction drops the map's
    /// reference, never this field.
    std::shared_ptr<const ExecutionPlan> plan;
    uint64_t bytes = 0;  ///< set by the builder before admission
    /// True once the slot's creator accounted it in the byte ledger.
    /// Written and read under mu_ only; eviction skips unadmitted slots,
    /// so it never touches fields the builder is still writing.
    bool admitted = false;
  };

  /// Evicts oldest admitted plans until the ledger fits the budget; never
  /// evicts `protect` (the just-admitted key), so admission always makes
  /// progress even when one plan exceeds the whole budget.
  void EvictToBudgetLocked(const Key& protect) GDP_REQUIRES(mu_);

  const partition::DistributedGraph* dg_;
  /// Guards the slot map and the admission ledger only; plan construction
  /// runs outside the lock, serialized per key by the slot's
  /// std::once_flag.
  mutable util::Mutex mu_;
  std::map<Key, std::shared_ptr<Slot>> slots_ GDP_GUARDED_BY(mu_);
  /// Resident keys, oldest admission first (the eviction order).
  std::vector<Key> admission_order_ GDP_GUARDED_BY(mu_);
  uint64_t budget_bytes_ GDP_GUARDED_BY(mu_) = 0;
  uint64_t resident_bytes_ GDP_GUARDED_BY(mu_) = 0;
  // Registry-backed lookup/eviction counters (see stats()/registry()).
  obs::MetricsRegistry registry_;
  obs::Counter* hits_ = registry_.GetCounter("plan_cache.hits");
  obs::Counter* misses_ = registry_.GetCounter("plan_cache.misses");
  obs::Counter* evictions_ = registry_.GetCounter("plan_cache.evictions");
  obs::Counter* evicted_bytes_ =
      registry_.GetCounter("plan_cache.evicted_bytes");
  obs::Gauge* resident_gauge_ =
      registry_.GetGauge("plan_cache.resident_bytes");
};

}  // namespace gdp::engine

#endif  // GDP_ENGINE_PLAN_CACHE_H_
