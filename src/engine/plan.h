#ifndef GDP_ENGINE_PLAN_H_
#define GDP_ENGINE_PLAN_H_

#include <cstdint>
#include <vector>

#include "engine/gas_app.h"
#include "partition/distributed_graph.h"
#include "sim/cluster.h"

namespace gdp::engine {

namespace internal {

/// Per-vertex placement data folded down to machine bitmasks (<= 64
/// machines), precomputed once per plan: message counting then reduces to
/// popcounts.
struct MachineMasks {
  std::vector<uint64_t> replicas;
  std::vector<uint64_t> in_edges;
  std::vector<uint64_t> out_edges;
  std::vector<sim::MachineId> master_machine;

  static MachineMasks Build(const partition::DistributedGraph& dg);
};

/// Gather/scatter-direction machine mask for vertex v.
inline uint64_t DirectionMask(const MachineMasks& masks, EdgeDirection dir,
                              graph::VertexId v) {
  uint64_t m = 0;
  if (IncludesIn(dir)) m |= masks.in_edges[v];
  if (IncludesOut(dir)) m |= masks.out_edges[v];
  return m;
}

}  // namespace internal

/// Everything the superstep loop needs that is a pure function of the
/// partitioned graph and the application's edge directions, precomputed
/// once instead of per-run/per-superstep:
///
///  - per-direction CSR adjacency over the partitioned edges, each entry
///    tagged with the simulated machine hosting the edge (its bucket), so
///    gather/scatter traverse only the frontier's adjacency instead of
///    scanning the whole edge vector;
///  - cached degrees (reusing partition::DistributedGraph's cache when the
///    builder filled it);
///  - the placement bitmasks (MachineMasks) message counting runs on;
///  - GraphX's per-partition fan-out counts (shuffle-block accounting).
///
/// A plan borrows the DistributedGraph: the graph must outlive it. Plans
/// are immutable after Build, so one plan can back any number of engine
/// runs (and is read concurrently by engine worker threads).
///
/// Determinism note (load-bearing): gather adjacency entries for one center
/// are stored in *original edge order*, with the in-direction entry of an
/// edge preceding its out-direction entry. The restriction of the serial
/// engine's global edge scan to one center's edges is exactly this order,
/// so folding a center's neighbors through the CSR reproduces the serial
/// engine's floating-point gather results bit-for-bit.
struct ExecutionPlan {
  const partition::DistributedGraph* dg = nullptr;
  EdgeDirection gather_dir = EdgeDirection::kNone;
  EdgeDirection scatter_dir = EdgeDirection::kNone;

  internal::MachineMasks masks;

  /// Machine hosting edge i (dg->edge_partition[i] % num_machines).
  std::vector<uint8_t> edge_machine;
  /// Edges hosted per machine (bucket sizes).
  std::vector<uint64_t> machine_edge_count;

  /// Gather CSR: for center v, entries [gather_offsets[v],
  /// gather_offsets[v+1]) name the neighbor whose state v folds and the
  /// machine charged for the fold.
  std::vector<uint64_t> gather_offsets;
  std::vector<graph::VertexId> gather_nbr;
  std::vector<uint8_t> gather_machine;

  /// Scatter CSR: for signaled center v, entries name the neighbor woken
  /// into the next frontier and the machine charged for the scatter.
  std::vector<uint64_t> scatter_offsets;
  std::vector<graph::VertexId> scatter_target;
  std::vector<uint8_t> scatter_machine;

  /// GraphX-only per-PARTITION fan-out counts (empty otherwise): Spark
  /// materializes one shuffle block per (vertex, edge-partition) pair, so
  /// its compute cost tracks partition-level replication even when
  /// partitions share machines (§7.4).
  std::vector<uint16_t> gather_partition_count;
  std::vector<uint16_t> scatter_partition_count;

  /// Degrees for the application context: dg's ingest-time cache when it
  /// was built, otherwise the plan's own fallback copy.
  const std::vector<uint64_t>& out_degrees() const {
    return owned_out_degree_.empty() && dg->HasDegreeCache()
               ? dg->out_degree
               : owned_out_degree_;
  }
  const std::vector<uint64_t>& in_degrees() const {
    return owned_in_degree_.empty() && dg->HasDegreeCache()
               ? dg->in_degree
               : owned_in_degree_;
  }

  /// Builds a plan for the given directions. `graphx_counts` additionally
  /// builds the per-partition fan-out tables (EngineKind::kGraphXPregel).
  static ExecutionPlan Build(const partition::DistributedGraph& dg,
                             EdgeDirection gather_dir,
                             EdgeDirection scatter_dir, bool graphx_counts);

 private:
  // Fallback degree storage when dg lacks the cache (hand-built graphs).
  std::vector<uint64_t> owned_out_degree_;
  std::vector<uint64_t> owned_in_degree_;
};

}  // namespace gdp::engine

#endif  // GDP_ENGINE_PLAN_H_
