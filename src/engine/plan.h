#ifndef GDP_ENGINE_PLAN_H_
#define GDP_ENGINE_PLAN_H_

#include <cstdint>
#include <vector>

#include "engine/gas_app.h"
#include "partition/distributed_graph.h"
#include "sim/cluster.h"
#include "util/bitpack.h"
#include "util/check.h"

namespace gdp::engine {

namespace internal {

/// Per-vertex placement data folded down to machine bitmasks (<= 64
/// machines), precomputed once per plan: message counting then reduces to
/// popcounts.
struct MachineMasks {
  std::vector<uint64_t> replicas;
  std::vector<uint64_t> in_edges;
  std::vector<uint64_t> out_edges;
  std::vector<sim::MachineId> master_machine;

  static MachineMasks Build(const partition::DistributedGraph& dg);
};

/// Gather/scatter-direction machine mask for vertex v.
inline uint64_t DirectionMask(const MachineMasks& masks, EdgeDirection dir,
                              graph::VertexId v) {
  uint64_t m = 0;
  if (IncludesIn(dir)) m |= masks.in_edges[v];
  if (IncludesOut(dir)) m |= masks.out_edges[v];
  return m;
}

/// Reads `width` bits starting at absolute bit `bit_pos` of a packed word
/// array. Forwarded to the shared codec in util/bitpack.h (also used by the
/// compressed edge-block store); kept under this name so plan internals
/// read uniformly. The array must carry one padding word past the last
/// encoded bit so words[w + 1] is always dereferenceable.
using util::ReadPackedBits;

}  // namespace internal

/// Physical layout of a plan's adjacency arrays.
///
///  - kUncompressed: plain CSR — one 4-byte neighbor id plus one 1-byte
///    machine tag per entry (the PR-2 representation).
///  - kCompressed: per-vertex zigzag-delta blocks bit-packed at a fixed
///    per-vertex width, decoded with word-aligned loads in ORIGINAL edge
///    order (so float gather folds stay bit-identical to the serial
///    oracle); per-entry machine tags are dropped entirely — the batched
///    accounting run tables carry the per-machine counts instead.
enum class PlanLayout { kUncompressed, kCompressed };

/// Display name of a plan layout ("uncompressed" / "compressed").
const char* PlanLayoutName(PlanLayout layout);

/// Everything the superstep loop needs that is a pure function of the
/// partitioned graph and the application's edge directions, precomputed
/// once instead of per-run/per-superstep:
///
///  - per-direction adjacency over the partitioned edges (CSR or
///    delta-compressed blocks, see PlanLayout), so gather/scatter traverse
///    only the frontier's adjacency instead of scanning the whole edge
///    vector;
///  - per-vertex (machine, count) accounting runs, so charging a center's
///    simulated work is one multiply per distinct machine instead of one
///    accumulator call per edge (integer sums are order-free, which is why
///    regrouping by machine cannot change any flushed cost);
///  - cached degrees (reusing partition::DistributedGraph's cache when the
///    builder filled it);
///  - the placement bitmasks (MachineMasks) message counting runs on;
///  - GraphX's per-partition fan-out counts (shuffle-block accounting).
///
/// A plan borrows the DistributedGraph: the graph must outlive it. Plans
/// are immutable after Build, so one plan can back any number of engine
/// runs (and is read concurrently by engine worker threads).
///
/// Determinism note (load-bearing): gather adjacency entries for one center
/// are stored in *original edge order*, with the in-direction entry of an
/// edge preceding its out-direction entry — in both layouts. The
/// restriction of the serial engine's global edge scan to one center's
/// edges is exactly this order, so folding a center's neighbors through
/// either representation reproduces the serial engine's floating-point
/// gather results bit-for-bit.
struct ExecutionPlan {
  const partition::DistributedGraph* dg = nullptr;
  EdgeDirection gather_dir = EdgeDirection::kNone;
  EdgeDirection scatter_dir = EdgeDirection::kNone;
  PlanLayout layout = PlanLayout::kUncompressed;

  internal::MachineMasks masks;

  /// Machine hosting edge i (dg->edge_partition[i] % num_machines).
  std::vector<uint8_t> edge_machine;
  /// Edges hosted per machine (bucket sizes).
  std::vector<uint64_t> machine_edge_count;

  /// Gather adjacency offsets: center v owns entries [gather_offsets[v],
  /// gather_offsets[v+1]) of whichever representation the layout stores.
  std::vector<uint64_t> gather_offsets;
  /// kUncompressed only: neighbor whose state v folds, per entry.
  std::vector<graph::VertexId> gather_nbr;
  /// kUncompressed only: machine charged for the fold, per entry.
  std::vector<uint8_t> gather_machine;

  /// Scatter adjacency offsets (same contract as gather_offsets).
  std::vector<uint64_t> scatter_offsets;
  /// kUncompressed only: neighbor woken into the next frontier, per entry.
  std::vector<graph::VertexId> scatter_target;
  /// kUncompressed only: machine charged for the scatter, per entry.
  std::vector<uint8_t> scatter_machine;

  // --- Batch-accounting run tables (both layouts) --------------------------
  // For center v, entries [gather_run_offsets[v], gather_run_offsets[v+1])
  // of gather_runs are packed (machine, count) pairs in ascending machine
  // order: v's adjacency charges `count` whole work units to `machine`.
  // Work charges are integer quarter-units (sim::PhaseAccumulator), and
  // integer sums are order-free, so folding a vertex's per-edge charges
  // into per-machine counts is bit-identical to charging them one edge at
  // a time. At most num_machines runs per vertex.
  std::vector<uint64_t> gather_run_offsets;
  std::vector<uint32_t> gather_runs;
  std::vector<uint64_t> scatter_run_offsets;
  std::vector<uint32_t> scatter_runs;

  /// Packed-run format: machine in the high 6 bits, count in the low 26.
  static constexpr uint32_t kRunCountBits = 26;
  static constexpr uint32_t kRunCountMask = (1u << kRunCountBits) - 1;
  static constexpr uint8_t RunMachine(uint32_t run) {
    return static_cast<uint8_t>(run >> kRunCountBits);
  }
  static constexpr uint32_t RunCount(uint32_t run) {
    return run & kRunCountMask;
  }

  // --- Compressed blocks (kCompressed only) --------------------------------
  // Neighbor ids are stored per vertex as zigzag deltas (first entry
  // relative to the center id, each later entry relative to its
  // predecessor), bit-packed at the per-vertex width gather_block_width[v]
  // starting at absolute bit gather_block_bits[v] of gather_blob. Entry
  // counts come from gather_offsets. The blob carries one padding word so
  // the two-word decode load never runs past the end.
  std::vector<uint64_t> gather_blob;
  std::vector<uint64_t> gather_block_bits;
  std::vector<uint8_t> gather_block_width;
  std::vector<uint64_t> scatter_blob;
  std::vector<uint64_t> scatter_block_bits;
  std::vector<uint8_t> scatter_block_width;

  /// GraphX-only per-PARTITION fan-out counts (empty otherwise): Spark
  /// materializes one shuffle block per (vertex, edge-partition) pair, so
  /// its compute cost tracks partition-level replication even when
  /// partitions share machines (§7.4).
  std::vector<uint16_t> gather_partition_count;
  std::vector<uint16_t> scatter_partition_count;

  /// Bytes held by the layout-dependent adjacency representation (CSR
  /// neighbor/machine arrays for kUncompressed; blobs plus per-vertex
  /// block metadata for kCompressed). The memory-shrink claims compare
  /// this across layouts; shared structures (offsets, runs, masks) are
  /// identical in both and excluded.
  uint64_t AdjacencyBytes() const;

  /// Degrees for the application context: dg's ingest-time cache when it
  /// was built, otherwise the plan's own fallback copy.
  const std::vector<uint64_t>& out_degrees() const {
    return owned_out_degree_.empty() && dg->HasDegreeCache()
               ? dg->out_degree
               : owned_out_degree_;
  }
  const std::vector<uint64_t>& in_degrees() const {
    return owned_in_degree_.empty() && dg->HasDegreeCache()
               ? dg->in_degree
               : owned_in_degree_;
  }

  /// Builds a plan for the given directions. `graphx_counts` additionally
  /// builds the per-partition fan-out tables (EngineKind::kGraphXPregel).
  static ExecutionPlan Build(const partition::DistributedGraph& dg,
                             EdgeDirection gather_dir,
                             EdgeDirection scatter_dir, bool graphx_counts,
                             PlanLayout layout = PlanLayout::kUncompressed);

 private:
  // Fallback degree storage when dg lacks the cache (hand-built graphs).
  std::vector<uint64_t> owned_out_degree_;
  std::vector<uint64_t> owned_in_degree_;
};

namespace internal {

/// Streaming decoder over one vertex's compressed adjacency block,
/// yielding neighbor ids in the exact order the uncompressed CSR stores
/// them (original edge order — the gather determinism contract).
class CompressedBlockCursor {
 public:
  CompressedBlockCursor(const std::vector<uint64_t>& blob, uint64_t bit_pos,
                        uint8_t width, graph::VertexId center)
      : words_(blob.data()),
        bit_pos_(bit_pos),
        width_(width),
        prev_(static_cast<int64_t>(center)) {}

  /// Decodes and returns the next neighbor id.
  graph::VertexId Next() {
    const uint64_t zig = ReadPackedBits(words_, bit_pos_, width_);
    bit_pos_ += width_;
    const int64_t delta =
        static_cast<int64_t>(zig >> 1) ^ -static_cast<int64_t>(zig & 1);
    prev_ += delta;
    return static_cast<graph::VertexId>(prev_);
  }

 private:
  const uint64_t* words_;
  uint64_t bit_pos_;
  uint32_t width_;
  int64_t prev_;
};

}  // namespace internal

}  // namespace gdp::engine

#endif  // GDP_ENGINE_PLAN_H_
