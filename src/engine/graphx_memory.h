#ifndef GDP_ENGINE_GRAPHX_MEMORY_H_
#define GDP_ENGINE_GRAPHX_MEMORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "partition/distributed_graph.h"

namespace gdp::engine {

/// Outcome regimes of GraphX under executor-memory pressure (§9.2.4 /
/// Fig 9.4):
///  - kFailed: the graph cannot fit on the whole cluster; Spark retries
///    redistribution several times and then fails the job (the 500 MB point
///    in Fig 9.4).
///  - kRedistributed: the graph fits on the cluster but not in the few
///    executors Spark packs first; after a hard-to-predict number of
///    out-of-memory retries the evenly-spread attempt succeeds
///    (600-1200 MB).
///  - kFastFit: the first, locality-greedy placement succeeds; execution is
///    fast and gets faster with extra headroom as GC overhead shrinks
///    (1300 MB onward).
enum class MemoryOutcome { kFailed, kRedistributed, kFastFit };

const char* MemoryOutcomeName(MemoryOutcome outcome);

struct MemoryPressureOptions {
  /// Per-executor memory (the swept "executor-memory" Spark parameter).
  uint64_t executor_memory_bytes = 1u << 30;
  uint32_t num_executors = 9;
  /// Executors Spark initially packs partitions onto for locality.
  uint32_t initial_executors = 2;
  /// Fraction of executor memory usable for cached graph data (Spark's
  /// storage fraction).
  double usable_fraction = 0.6;
  /// Baseline (pressure-free) execution seconds of the job being modeled.
  double base_execution_seconds = 100.0;
  /// Wall-clock cost of one failed placement attempt.
  double retry_seconds = 30.0;
  uint32_t max_attempts = 4;
  uint64_t seed = 11;
};

struct MemoryPressureResult {
  MemoryOutcome outcome = MemoryOutcome::kFastFit;
  /// Total execution seconds (includes retries); failure still reports the
  /// time burned before Spark gave up.
  double execution_seconds = 0;
  uint32_t placement_attempts = 1;
  double gc_overhead_fraction = 0;
  uint64_t graph_bytes = 0;
};

/// Deterministically simulates GraphX's partition-placement behaviour for a
/// given per-executor memory budget, reproducing the three regimes of
/// Fig 9.4. The graph's cached footprint is derived from `dg` (edges +
/// replicas, same object sizes as the engines use).
MemoryPressureResult SimulateExecutorMemory(
    const partition::DistributedGraph& dg,
    const MemoryPressureOptions& options);

}  // namespace gdp::engine

#endif  // GDP_ENGINE_GRAPHX_MEMORY_H_
