#include "engine/gas_engine.h"

namespace gdp::engine::internal {

MachineMasks MachineMasks::Build(const partition::DistributedGraph& dg) {
  MachineMasks masks;
  const graph::VertexId n = dg.num_vertices;
  masks.replicas.assign(n, 0);
  masks.in_edges.assign(n, 0);
  masks.out_edges.assign(n, 0);
  masks.master_machine.assign(n, 0);
  for (graph::VertexId v = 0; v < n; ++v) {
    if (!dg.present[v]) continue;
    uint64_t replica_mask = 0;
    dg.replicas.ForEach(v, [&](sim::MachineId p) {
      replica_mask |= 1ULL << (p % dg.num_machines);
    });
    uint64_t in_mask = 0;
    dg.in_edge_partitions.ForEach(v, [&](sim::MachineId p) {
      in_mask |= 1ULL << (p % dg.num_machines);
    });
    uint64_t out_mask = 0;
    dg.out_edge_partitions.ForEach(v, [&](sim::MachineId p) {
      out_mask |= 1ULL << (p % dg.num_machines);
    });
    masks.replicas[v] = replica_mask;
    masks.in_edges[v] = in_mask;
    masks.out_edges[v] = out_mask;
    masks.master_machine[v] = dg.master[v] % dg.num_machines;
  }
  return masks;
}

}  // namespace gdp::engine::internal
