#include "engine/graphx_memory.h"

#include <algorithm>
#include <cmath>

#include "sim/cost_model.h"
#include "util/hash.h"
#include "util/check.h"

namespace gdp::engine {

const char* MemoryOutcomeName(MemoryOutcome outcome) {
  switch (outcome) {
    case MemoryOutcome::kFailed:
      return "failed";
    case MemoryOutcome::kRedistributed:
      return "redistributed";
    case MemoryOutcome::kFastFit:
      return "fast-fit";
  }
  return "?";
}

MemoryPressureResult SimulateExecutorMemory(
    const partition::DistributedGraph& dg,
    const MemoryPressureOptions& options) {
  GDP_CHECK_GT(options.num_executors, 0u);
  GDP_CHECK_GT(options.initial_executors, 0u);
  const sim::ObjectSizes sizes;

  MemoryPressureResult result;
  // Cached footprint: edge partitions plus the vertex RDD with replicas.
  // Each present vertex costs vertex_record + (replicas - 1) * mirror_record;
  // summing present counts and replica counts separately keeps the loop
  // branch-free (multiply by the presence flag instead of skipping), so it
  // auto-vectorizes. Every present vertex has >= 1 replica, so
  // replica_sum >= present_count and the subtraction cannot underflow.
  uint64_t present_count = 0;
  uint64_t replica_sum = 0;
  for (graph::VertexId v = 0; v < dg.num_vertices; ++v) {
    const uint64_t present = dg.present[v] ? 1 : 0;
    present_count += present;
    replica_sum += present * dg.replicas.Count(v);
  }
  const uint64_t bytes = dg.edges.size() * sizes.edge_record +
                         present_count * sizes.vertex_record +
                         (replica_sum - present_count) * sizes.mirror_record;
  result.graph_bytes = bytes;

  const double usable_per_executor =
      static_cast<double>(options.executor_memory_bytes) *
      options.usable_fraction;
  const double initial_capacity =
      usable_per_executor * options.initial_executors;
  const double total_capacity = usable_per_executor * options.num_executors;
  const double demand = static_cast<double>(bytes);

  if (demand <= initial_capacity) {
    // Case 3: the locality-greedy first placement fits. Execution speeds up
    // further as headroom grows because GC overhead shrinks.
    result.outcome = MemoryOutcome::kFastFit;
    result.placement_attempts = 1;
    double occupancy = demand / initial_capacity;  // in (0, 1]
    result.gc_overhead_fraction = 0.6 * occupancy * occupancy;
    result.execution_seconds =
        options.base_execution_seconds * (1.0 + result.gc_overhead_fraction);
    return result;
  }

  if (demand <= total_capacity) {
    // Case 2: needs the whole cluster. Spark first OOMs on the packed
    // placement, then takes an unpredictable number of redistribution
    // attempts; we draw that count deterministically from how tight the
    // fit is.
    result.outcome = MemoryOutcome::kRedistributed;
    double tightness = demand / total_capacity;  // in (0, 1]
    uint32_t extra = static_cast<uint32_t>(
        util::Mix64(options.seed ^ options.executor_memory_bytes) %
        (1 + static_cast<uint32_t>(tightness * (options.max_attempts - 1))));
    result.placement_attempts = 2 + extra;
    double occupancy = tightness;
    result.gc_overhead_fraction = 0.6 * occupancy * occupancy;
    result.execution_seconds =
        static_cast<double>(result.placement_attempts - 1) *
            options.retry_seconds +
        options.base_execution_seconds * (1.0 + result.gc_overhead_fraction);
    return result;
  }

  // Case 1: cannot fit anywhere; Spark retries then fails the job.
  result.outcome = MemoryOutcome::kFailed;
  result.placement_attempts = options.max_attempts;
  result.gc_overhead_fraction = 1.0;
  result.execution_seconds =
      static_cast<double>(options.max_attempts) * options.retry_seconds;
  return result;
}

}  // namespace gdp::engine
