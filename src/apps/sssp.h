#ifndef GDP_APPS_SSSP_H_
#define GDP_APPS_SSSP_H_

#include <algorithm>
#include <cstdint>
#include <limits>

#include "engine/gas_app.h"

namespace gdp::apps {

/// Infinity sentinel for unreachable vertices.
inline constexpr uint32_t kInfiniteDistance =
    std::numeric_limits<uint32_t>::max();

/// Single-Source Shortest Paths with unit weights (§3.3.4). Message-driven:
/// only the source is active initially, and the frontier expands outward,
/// which is why SSSP has the fewest active vertices per iteration of the
/// evaluated applications (the paper uses this to explain the crossover
/// ordering in Fig 9.1).
///
/// Directed == false gives the undirected variant the paper ran on
/// PowerGraph/PowerLyra (not natural); Directed == true is the natural
/// variant (gather in, scatter out).
template <bool Directed>
struct SsspAppT {
  using State = uint32_t;
  using Gather = uint32_t;
  static constexpr engine::EdgeDirection kGatherDir =
      Directed ? engine::EdgeDirection::kIn : engine::EdgeDirection::kBoth;
  static constexpr engine::EdgeDirection kScatterDir =
      Directed ? engine::EdgeDirection::kOut : engine::EdgeDirection::kBoth;
  static constexpr bool kBootstrapScatter = true;

  graph::VertexId source = 0;

  State InitState(graph::VertexId v, const engine::AppContext&) const {
    return v == source ? 0 : kInfiniteDistance;
  }
  bool InitiallyActive(graph::VertexId v) const { return v == source; }
  Gather GatherInit() const { return kInfiniteDistance; }

  void GatherEdge(graph::VertexId, graph::VertexId,
                  const State& nbr_state, const engine::AppContext&,
                  Gather* acc) const {
    *acc = std::min(*acc, nbr_state);
  }

  bool Apply(graph::VertexId, const Gather& acc, bool has_gather,
             const engine::AppContext&, State* state) const {
    if (!has_gather || acc == kInfiniteDistance) return false;
    uint32_t candidate = acc + 1;
    if (candidate < *state) {
      *state = candidate;
      return true;
    }
    return false;
  }
};

using SsspApp = SsspAppT<false>;
using DirectedSsspApp = SsspAppT<true>;

}  // namespace gdp::apps

#endif  // GDP_APPS_SSSP_H_
