#ifndef GDP_APPS_WCC_H_
#define GDP_APPS_WCC_H_

#include <algorithm>
#include <limits>

#include "engine/gas_app.h"

namespace gdp::apps {

/// Weakly Connected Components via label propagation (§3.3.2): every vertex
/// starts with its own id and repeatedly adopts the minimum label among its
/// neighbors (both edge directions — weak connectivity), until quiescence.
/// Not a natural application: gathers and scatters in both directions.
struct WccApp {
  using State = graph::VertexId;
  using Gather = graph::VertexId;
  static constexpr engine::EdgeDirection kGatherDir =
      engine::EdgeDirection::kBoth;
  static constexpr engine::EdgeDirection kScatterDir =
      engine::EdgeDirection::kBoth;
  static constexpr bool kBootstrapScatter = false;

  State InitState(graph::VertexId v, const engine::AppContext&) const {
    return v;
  }
  bool InitiallyActive(graph::VertexId) const { return true; }
  Gather GatherInit() const {
    return std::numeric_limits<graph::VertexId>::max();
  }

  void GatherEdge(graph::VertexId, graph::VertexId,
                  const State& nbr_state, const engine::AppContext&,
                  Gather* acc) const {
    *acc = std::min(*acc, nbr_state);
  }

  bool Apply(graph::VertexId, const Gather& acc, bool has_gather,
             const engine::AppContext&, State* state) const {
    if (has_gather && acc < *state) {
      *state = acc;
      return true;
    }
    return false;
  }
};

}  // namespace gdp::apps

#endif  // GDP_APPS_WCC_H_
