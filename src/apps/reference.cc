#include "apps/reference.h"

#include <deque>
#include <limits>
#include <numeric>

namespace gdp::apps {

std::vector<double> ReferencePageRank(const graph::EdgeList& edges,
                                      double damping, uint32_t iterations) {
  const graph::VertexId n = edges.num_vertices();
  std::vector<uint64_t> out_degree = edges.OutDegrees();
  std::vector<double> rank(n, 1.0);
  std::vector<double> next(n, 0.0);
  for (uint32_t iter = 0; iter < iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (const graph::Edge& e : edges.edges()) {
      next[e.dst] += rank[e.src] /
                     static_cast<double>(out_degree[e.src] > 0
                                             ? out_degree[e.src]
                                             : 1);
    }
    for (graph::VertexId v = 0; v < n; ++v) {
      next[v] = (1.0 - damping) + damping * next[v];
    }
    rank.swap(next);
  }
  return rank;
}

std::vector<graph::VertexId> ReferenceWcc(const graph::EdgeList& edges) {
  const graph::VertexId n = edges.num_vertices();
  // Union-find with path halving; roots then remapped to the component min.
  std::vector<graph::VertexId> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](graph::VertexId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const graph::Edge& e : edges.edges()) {
    graph::VertexId a = find(e.src);
    graph::VertexId b = find(e.dst);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
  std::vector<graph::VertexId> label(n);
  for (graph::VertexId v = 0; v < n; ++v) label[v] = find(v);
  return label;
}

std::vector<uint32_t> ReferenceSssp(const graph::EdgeList& edges,
                                    graph::VertexId source, bool directed) {
  const graph::VertexId n = edges.num_vertices();
  // Adjacency (directed or symmetric) in CSR form, then plain BFS.
  std::vector<uint64_t> offsets(static_cast<size_t>(n) + 1, 0);
  for (const graph::Edge& e : edges.edges()) {
    ++offsets[e.src + 1];
    if (!directed) ++offsets[e.dst + 1];
  }
  for (size_t v = 1; v < offsets.size(); ++v) offsets[v] += offsets[v - 1];
  std::vector<graph::VertexId> adjacency(offsets.back());
  std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const graph::Edge& e : edges.edges()) {
    adjacency[cursor[e.src]++] = e.dst;
    if (!directed) adjacency[cursor[e.dst]++] = e.src;
  }
  std::vector<uint32_t> dist(n, std::numeric_limits<uint32_t>::max());
  if (source >= n) return dist;
  std::deque<graph::VertexId> queue{source};
  dist[source] = 0;
  while (!queue.empty()) {
    graph::VertexId v = queue.front();
    queue.pop_front();
    for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      graph::VertexId u = adjacency[i];
      if (dist[u] == std::numeric_limits<uint32_t>::max()) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

std::vector<bool> ReferenceKCore(const graph::EdgeList& edges, uint32_t k,
                                 const std::vector<bool>& initial_alive) {
  const graph::VertexId n = edges.num_vertices();
  std::vector<bool> alive(n, true);
  if (!initial_alive.empty()) alive = initial_alive;
  // Iterative pruning until fixpoint (degree counts restricted to alive
  // endpoints).
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<uint64_t> degree(n, 0);
    for (const graph::Edge& e : edges.edges()) {
      if (alive[e.src] && alive[e.dst]) {
        ++degree[e.src];
        ++degree[e.dst];
      }
    }
    for (graph::VertexId v = 0; v < n; ++v) {
      if (alive[v] && degree[v] < k) {
        alive[v] = false;
        changed = true;
      }
    }
  }
  return alive;
}

bool IsProperColoring(const graph::EdgeList& edges,
                      const std::vector<uint32_t>& colors) {
  for (const graph::Edge& e : edges.edges()) {
    if (e.src != e.dst && colors[e.src] == colors[e.dst]) return false;
  }
  return true;
}

}  // namespace gdp::apps
