#include "apps/kcore.h"

#include "engine/gas_engine.h"

namespace gdp::apps {

KCoreResult KCoreDecompose(engine::EngineKind engine_kind,
                           const partition::DistributedGraph& dg,
                           sim::Cluster& cluster, uint32_t kmin,
                           uint32_t kmax, const engine::RunOptions& options) {
  // One plan serves every k-stage: the plan is a pure function of the
  // partitioned graph and KCoreApp's directions.
  const engine::ExecutionPlan plan = engine::ExecutionPlan::Build(
      dg, KCoreApp::kGatherDir, KCoreApp::kScatterDir,
      engine_kind == engine::EngineKind::kGraphXPregel);
  return KCoreDecompose(engine_kind, plan, cluster, kmin, kmax, options);
}

KCoreResult KCoreDecompose(engine::EngineKind engine_kind,
                           const engine::ExecutionPlan& plan,
                           sim::Cluster& cluster, uint32_t kmin,
                           uint32_t kmax, const engine::RunOptions& options) {
  const partition::DistributedGraph& dg = *plan.dg;
  KCoreResult result;
  result.core_number.assign(dg.num_vertices, kmin > 0 ? kmin - 1 : 0);
  std::vector<bool> alive(dg.num_vertices, true);
  for (uint32_t k = kmin; k <= kmax; ++k) {
    KCoreApp app;
    app.k = k;
    app.initial_alive = &alive;
    engine::GasRunResult<KCoreApp> run =
        engine::RunGasEngine(engine_kind, plan, cluster, app, options);
    uint64_t survivors = 0;
    for (graph::VertexId v = 0; v < dg.num_vertices; ++v) {
      alive[v] = dg.present[v] && run.states[v] != 0;
      if (alive[v]) {
        result.core_number[v] = k;
        ++survivors;
      }
    }
    result.core_sizes.push_back(survivors);
    result.stats.iterations += run.stats.iterations;
    result.stats.compute_seconds += run.stats.compute_seconds;
    result.stats.network_bytes += run.stats.network_bytes;
    result.stats.mean_inbound_bytes_per_machine +=
        run.stats.mean_inbound_bytes_per_machine;
    double base = result.stats.cumulative_seconds.empty()
                      ? 0.0
                      : result.stats.cumulative_seconds.back();
    for (double t : run.stats.cumulative_seconds) {
      result.stats.cumulative_seconds.push_back(base + t);
    }
    for (uint64_t a : run.stats.active_counts) {
      result.stats.active_counts.push_back(a);
    }
    result.stats.converged = run.stats.converged;
    if (survivors == 0) break;  // higher k-cores are empty too
  }
  return result;
}

}  // namespace gdp::apps
