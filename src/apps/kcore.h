#ifndef GDP_APPS_KCORE_H_
#define GDP_APPS_KCORE_H_

#include <cstdint>
#include <vector>

#include "engine/gas_app.h"
#include "engine/gas_engine.h"
#include "engine/run_stats.h"
#include "partition/distributed_graph.h"
#include "sim/cluster.h"

namespace gdp::apps {

/// One pruning stage of k-core decomposition (§3.3.3): repeatedly remove
/// vertices whose count of surviving neighbors is below k. The full
/// decomposition (KCoreDecompose below) runs this for k = kmin..kmax,
/// seeding each stage with the survivors of the previous one — matching the
/// PowerGraph application's kmin/kmax interface. Long-running and
/// compute-dominated, the paper's example of a high compute/ingress-ratio
/// job (Table 5.1).
struct KCoreApp {
  using State = uint8_t;  // 1 = alive in the current k-core
  using Gather = uint32_t;
  static constexpr engine::EdgeDirection kGatherDir =
      engine::EdgeDirection::kBoth;
  static constexpr engine::EdgeDirection kScatterDir =
      engine::EdgeDirection::kBoth;
  static constexpr bool kBootstrapScatter = false;

  uint32_t k = 1;
  /// Survivors of the previous stage; empty means "all alive".
  const std::vector<bool>* initial_alive = nullptr;

  State InitState(graph::VertexId v, const engine::AppContext&) const {
    return initial_alive == nullptr || (*initial_alive)[v];
  }
  bool InitiallyActive(graph::VertexId v) const {
    return initial_alive == nullptr || (*initial_alive)[v];
  }
  Gather GatherInit() const { return 0; }

  void GatherEdge(graph::VertexId, graph::VertexId,
                  const State& nbr_state, const engine::AppContext&,
                  Gather* acc) const {
    if (nbr_state != 0) ++(*acc);
  }

  bool Apply(graph::VertexId, const Gather& acc, bool,
             const engine::AppContext&, State* state) const {
    if (*state == 0) return false;
    if (acc < k) {
      *state = 0;  // pruned: signal neighbors to recount
      return true;
    }
    return false;
  }
};

/// Result of a full k-core decomposition sweep.
struct KCoreResult {
  /// core_number[v]: largest k in [kmin, kmax] whose k-core contains v
  /// (kmin - 1 when v is not even in the kmin-core).
  std::vector<uint32_t> core_number;
  /// Survivor count per k.
  std::vector<uint64_t> core_sizes;
  engine::RunStats stats;  ///< aggregated over all stages
};

/// Runs k-core decomposition for all k in [kmin, kmax] on `engine_kind`,
/// charging `cluster`. Matches the paper's configuration kmin=10, kmax=20
/// (§5.3) by default at call sites.
KCoreResult KCoreDecompose(engine::EngineKind engine_kind,
                           const partition::DistributedGraph& dg,
                           sim::Cluster& cluster, uint32_t kmin,
                           uint32_t kmax,
                           const engine::RunOptions& options = {});

/// Same, over a prebuilt ExecutionPlan (shared across the per-k stages and,
/// via engine::PlanCache, across grid cells). The plan must match
/// KCoreApp's directions (kBoth/kBoth), with GraphX fan-out counts when
/// `engine_kind` is kGraphXPregel. Results are identical to the
/// DistributedGraph overload, which builds this plan itself.
KCoreResult KCoreDecompose(engine::EngineKind engine_kind,
                           const engine::ExecutionPlan& plan,
                           sim::Cluster& cluster, uint32_t kmin,
                           uint32_t kmax,
                           const engine::RunOptions& options = {});

}  // namespace gdp::apps

#endif  // GDP_APPS_KCORE_H_
