#ifndef GDP_APPS_REFERENCE_H_
#define GDP_APPS_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "graph/edge_list.h"

namespace gdp::apps {

/// Sequential, single-machine reference implementations used to validate
/// the distributed engines: for any partitioning strategy and engine kind,
/// the engine's results must equal these (partitioning must never change
/// answers, only costs).

/// Unnormalized PageRank per the paper's update rule, `iterations` rounds
/// of synchronous updates starting from 1.0.
std::vector<double> ReferencePageRank(const graph::EdgeList& edges,
                                      double damping, uint32_t iterations);

/// Weakly connected components: label[v] = smallest vertex id in v's
/// component (isolated vertices keep their own id).
std::vector<graph::VertexId> ReferenceWcc(const graph::EdgeList& edges);

/// Unit-weight shortest-path distances from `source`; UINT32_MAX when
/// unreachable. Treats edges as undirected when `directed` is false.
std::vector<uint32_t> ReferenceSssp(const graph::EdgeList& edges,
                                    graph::VertexId source, bool directed);

/// k-core membership: alive[v] is true iff v survives pruning at `k`
/// (undirected degree), starting from `initial_alive` (empty = all).
std::vector<bool> ReferenceKCore(const graph::EdgeList& edges, uint32_t k,
                                 const std::vector<bool>& initial_alive = {});

/// True iff no edge connects two identically-colored distinct vertices.
bool IsProperColoring(const graph::EdgeList& edges,
                      const std::vector<uint32_t>& colors);

}  // namespace gdp::apps

#endif  // GDP_APPS_REFERENCE_H_
