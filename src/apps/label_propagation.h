#ifndef GDP_APPS_LABEL_PROPAGATION_H_
#define GDP_APPS_LABEL_PROPAGATION_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "engine/gas_app.h"

namespace gdp::apps {

/// Label Propagation community detection (Raghavan et al.) — an extension
/// workload beyond the thesis' five applications. Every vertex starts in
/// its own community and repeatedly adopts the most frequent label among
/// its neighbors (ties broken toward the smallest label). Synchronous LPA
/// can oscillate on bipartite-like structures, so runs are capped by
/// RunOptions::max_iterations; communities are only ever merged within a
/// weakly connected component, which is what the tests verify.
///
/// Workload shape: like WCC it gathers and scatters in both directions
/// (not natural), but its gather payload is a label multiset rather than a
/// single minimum — a heavier aggregator, closer to the K-Core end of the
/// compute/ingress spectrum.
struct LabelPropagationApp {
  using State = uint32_t;  // current community label
  using Gather = std::vector<uint32_t>;  // neighbor labels (concatenated)
  static constexpr engine::EdgeDirection kGatherDir =
      engine::EdgeDirection::kBoth;
  static constexpr engine::EdgeDirection kScatterDir =
      engine::EdgeDirection::kBoth;
  static constexpr bool kBootstrapScatter = false;

  State InitState(graph::VertexId v, const engine::AppContext&) const {
    return v;
  }
  bool InitiallyActive(graph::VertexId) const { return true; }
  Gather GatherInit() const { return {}; }

  void GatherEdge(graph::VertexId, graph::VertexId,
                  const State& nbr_state, const engine::AppContext&,
                  Gather* acc) const {
    acc->push_back(nbr_state);
  }

  bool Apply(graph::VertexId, const Gather& acc, bool has_gather,
             const engine::AppContext&, State* state) const {
    if (!has_gather || acc.empty()) return false;
    uint32_t mode = ModeLabel(acc);
    if (mode != *state) {
      *state = mode;
      return true;
    }
    return false;
  }

  /// Most frequent label; ties go to the smallest label value.
  static uint32_t ModeLabel(const Gather& labels) {
    Gather sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    uint32_t best_label = sorted.front();
    size_t best_count = 0;
    size_t i = 0;
    while (i < sorted.size()) {
      size_t j = i;
      while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
      if (j - i > best_count) {
        best_count = j - i;
        best_label = sorted[i];
      }
      i = j;
    }
    return best_label;
  }
};

}  // namespace gdp::apps

#endif  // GDP_APPS_LABEL_PROPAGATION_H_
