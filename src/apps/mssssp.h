#ifndef GDP_APPS_MSSSSP_H_
#define GDP_APPS_MSSSSP_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "apps/sssp.h"
#include "engine/gas_app.h"

namespace gdp::apps {

/// Multi-source SSSP — the serving layer's batching kernel for distance
/// queries, the MS-BFS trick applied to unit-weight shortest paths. Up to
/// kLanes source vertices relax simultaneously: each vertex's state is a
/// lane-array of tentative distances and one gather takes the lane-wise
/// minimum over neighbors. Unit-weight relaxation is monotone per lane, so
/// lane i's fixed point equals a standalone SsspApp run from sources[i]
/// bit-for-bit — which is what lets the serving scheduler coalesce B
/// distance queries into one engine run without changing any answer
/// (asserted by ServingTest and the bench_serving_throughput claims).
///
/// Lanes beyond sources.size() stay at kInfiniteDistance and never
/// activate anything. Undirected, like SsspApp (kBoth/kBoth).
template <size_t kLanes>
struct MsSsspAppT {
  using State = std::array<uint32_t, kLanes>;
  using Gather = std::array<uint32_t, kLanes>;
  static constexpr engine::EdgeDirection kGatherDir =
      engine::EdgeDirection::kBoth;
  static constexpr engine::EdgeDirection kScatterDir =
      engine::EdgeDirection::kBoth;
  static constexpr bool kBootstrapScatter = true;

  /// At most kLanes source vertices, one query lane each.
  std::vector<graph::VertexId> sources;

  State InitState(graph::VertexId v, const engine::AppContext&) const {
    State state;
    state.fill(kInfiniteDistance);
    for (size_t i = 0; i < sources.size() && i < kLanes; ++i) {
      if (sources[i] == v) state[i] = 0;
    }
    return state;
  }
  bool InitiallyActive(graph::VertexId v) const {
    for (size_t i = 0; i < sources.size() && i < kLanes; ++i) {
      if (sources[i] == v) return true;
    }
    return false;
  }
  Gather GatherInit() const {
    Gather acc;
    acc.fill(kInfiniteDistance);
    return acc;
  }

  void GatherEdge(graph::VertexId, graph::VertexId,
                  const State& nbr_state, const engine::AppContext&,
                  Gather* acc) const {
    for (size_t i = 0; i < kLanes; ++i) {
      (*acc)[i] = std::min((*acc)[i], nbr_state[i]);
    }
  }

  bool Apply(graph::VertexId, const Gather& acc, bool has_gather,
             const engine::AppContext&, State* state) const {
    if (!has_gather) return false;
    bool improved = false;
    for (size_t i = 0; i < kLanes; ++i) {
      if (acc[i] == kInfiniteDistance) continue;
      const uint32_t candidate = acc[i] + 1;
      if (candidate < (*state)[i]) {
        (*state)[i] = candidate;
        improved = true;
      }
    }
    return improved;
  }
};

/// The serving layer's lane width: wide enough to coalesce a dispatch
/// window's worth of distance queries, narrow enough that per-vertex state
/// (64 bytes) stays cache-resident.
inline constexpr size_t kMsSsspLanes = 16;
using MsSsspApp = MsSsspAppT<kMsSsspLanes>;

}  // namespace gdp::apps

#endif  // GDP_APPS_MSSSSP_H_
