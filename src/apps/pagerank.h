#ifndef GDP_APPS_PAGERANK_H_
#define GDP_APPS_PAGERANK_H_

#include <cmath>
#include <cstdint>

#include "engine/gas_app.h"

namespace gdp::apps {

/// PageRank (§3.3.1): p(v) = (1 - d) + d * sum_{u in Ni(v)} p(u)/|No(u)|,
/// starting from p(v) = 1. A *natural* application: gathers from
/// in-neighbors, scatters to out-neighbors.
///
/// tolerance == 0 reproduces the paper's PageRank(10)/PageRank(25) fixed-
/// iteration runs (every vertex re-signals each superstep; the engine's
/// max_iterations caps the run). tolerance > 0 reproduces PageRank(C),
/// run-to-convergence.
struct PageRankApp {
  using State = double;
  using Gather = double;
  static constexpr engine::EdgeDirection kGatherDir =
      engine::EdgeDirection::kIn;
  static constexpr engine::EdgeDirection kScatterDir =
      engine::EdgeDirection::kOut;
  static constexpr bool kBootstrapScatter = false;

  double damping = 0.85;
  double tolerance = 0.0;

  State InitState(graph::VertexId, const engine::AppContext&) const {
    return 1.0;
  }
  bool InitiallyActive(graph::VertexId) const { return true; }
  Gather GatherInit() const { return 0.0; }

  /// What every in-neighbor contributes regardless of the center: its rank
  /// split over its out-degree. Exposing this (engine::HasGatherContribution)
  /// lets the engine hoist the division out of the adjacency loop — the
  /// cached value comes from the same IEEE division of the same operands,
  /// so folds stay bit-identical to the per-edge path.
  Gather GatherContribution(graph::VertexId nbr, const State& nbr_state,
                            const engine::AppContext& ctx) const {
    uint64_t out = ctx.OutDegree(nbr);
    return nbr_state / static_cast<double>(out > 0 ? out : 1);
  }

  void GatherEdge(graph::VertexId center, graph::VertexId nbr,
                  const State& nbr_state, const engine::AppContext& ctx,
                  Gather* acc) const {
    (void)center;
    *acc += GatherContribution(nbr, nbr_state, ctx);
  }

  bool Apply(graph::VertexId, const Gather& acc, bool has_gather,
             const engine::AppContext&, State* state) const {
    double next = (1.0 - damping) + damping * (has_gather ? acc : 0.0);
    double delta = std::abs(next - *state);
    *state = next;
    return delta > tolerance;
  }
};

/// Factory helpers matching the paper's two PageRank configurations.
inline PageRankApp PageRankFixed() { return PageRankApp{0.85, 0.0}; }
inline PageRankApp PageRankConvergent(double tolerance = 1e-3) {
  return PageRankApp{0.85, tolerance};
}

}  // namespace gdp::apps

#endif  // GDP_APPS_PAGERANK_H_
