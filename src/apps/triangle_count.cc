#include "apps/triangle_count.h"

#include "engine/gas_engine.h"

namespace gdp::apps {

namespace {

/// Phase 2: per-edge intersection of the phase-1 neighbor lists. The app
/// carries a pointer to the phase-1 states so the gather can intersect the
/// center's list (by id) with the neighbor's.
struct IntersectApp {
  using State = uint64_t;  // 2x triangles through the vertex
  using Gather = uint64_t;
  static constexpr engine::EdgeDirection kGatherDir =
      engine::EdgeDirection::kBoth;
  static constexpr engine::EdgeDirection kScatterDir =
      engine::EdgeDirection::kNone;
  static constexpr bool kBootstrapScatter = false;

  const std::vector<NeighborListApp::VertexState>* lists = nullptr;

  State InitState(graph::VertexId, const engine::AppContext&) const {
    return 0;
  }
  bool InitiallyActive(graph::VertexId) const { return true; }
  Gather GatherInit() const { return 0; }

  /// The per-edge gather only carries cost accounting (list exchange); the
  /// intersection itself runs once per vertex in Apply, over the phase-1
  /// lists, so the count is independent of whether the input stores an
  /// undirected pair once or in both directions.
  void GatherEdge(graph::VertexId, graph::VertexId, const State&,
                  const engine::AppContext&, Gather* acc) const {
    *acc += 0;
  }

  bool Apply(graph::VertexId v, const Gather&, bool,
             const engine::AppContext&, State* state) const {
    const auto& mine = (*lists)[v].neighbors;
    uint64_t total = 0;
    for (graph::VertexId u : mine) {
      const auto& theirs = (*lists)[u].neighbors;
      size_t i = 0, j = 0;
      while (i < mine.size() && j < theirs.size()) {
        if (mine[i] < theirs[j]) {
          ++i;
        } else if (mine[i] > theirs[j]) {
          ++j;
        } else {
          if (mine[i] != v && mine[i] != u) ++total;
          ++i;
          ++j;
        }
      }
    }
    *state = total;
    return false;
  }
};

}  // namespace

TriangleCountResult CountTriangles(engine::EngineKind kind,
                                   const partition::DistributedGraph& dg,
                                   sim::Cluster& cluster,
                                   const engine::RunOptions& options) {
  const engine::ExecutionPlan plan = engine::ExecutionPlan::Build(
      dg, NeighborListApp::kGatherDir, NeighborListApp::kScatterDir,
      kind == engine::EngineKind::kGraphXPregel);
  return CountTriangles(kind, plan, cluster, options);
}

TriangleCountResult CountTriangles(engine::EngineKind kind,
                                   const engine::ExecutionPlan& plan,
                                   sim::Cluster& cluster,
                                   const engine::RunOptions& options) {
  const partition::DistributedGraph& dg = *plan.dg;
  engine::RunOptions phase_options = options;
  phase_options.max_iterations = 1;

  auto phase1 = engine::RunGasEngine(kind, plan, cluster, NeighborListApp{},
                                     phase_options);
  IntersectApp phase2_app;
  phase2_app.lists = &phase1.states;
  auto phase2 =
      engine::RunGasEngine(kind, plan, cluster, phase2_app, phase_options);

  TriangleCountResult result;
  result.per_vertex.assign(dg.num_vertices, 0);
  uint64_t endpoint_sum = 0;
  for (graph::VertexId v = 0; v < dg.num_vertices; ++v) {
    // Each triangle through v is found once per incident triangle edge
    // (2 edges) per direction scanned; the undirected dedup in phase 1
    // leaves each common neighbor counted twice per vertex.
    result.per_vertex[v] = phase2.states[v] / 2;
    endpoint_sum += result.per_vertex[v];
  }
  result.total_triangles = endpoint_sum / 3;
  result.stats = phase1.stats;
  result.stats.iterations += phase2.stats.iterations;
  result.stats.compute_seconds += phase2.stats.compute_seconds;
  result.stats.network_bytes += phase2.stats.network_bytes;
  result.stats.mean_inbound_bytes_per_machine +=
      phase2.stats.mean_inbound_bytes_per_machine;
  return result;
}

uint64_t ReferenceTriangleCount(const graph::EdgeList& edges) {
  const graph::VertexId n = edges.num_vertices();
  // Sorted, deduplicated undirected adjacency.
  std::vector<std::vector<graph::VertexId>> adj(n);
  for (const graph::Edge& e : edges.edges()) {
    if (e.src == e.dst) continue;
    adj[e.src].push_back(e.dst);
    adj[e.dst].push_back(e.src);
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  // Count each triangle at its lowest vertex: for u < v adjacent, count
  // common neighbors w > v.
  uint64_t triangles = 0;
  for (graph::VertexId u = 0; u < n; ++u) {
    for (graph::VertexId v : adj[u]) {
      if (v <= u) continue;
      size_t i = 0, j = 0;
      const auto& a = adj[u];
      const auto& b = adj[v];
      while (i < a.size() && j < b.size()) {
        if (a[i] < b[j]) {
          ++i;
        } else if (a[i] > b[j]) {
          ++j;
        } else {
          if (a[i] > v) ++triangles;
          ++i;
          ++j;
        }
      }
    }
  }
  return triangles;
}

}  // namespace gdp::apps
