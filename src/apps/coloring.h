#ifndef GDP_APPS_COLORING_H_
#define GDP_APPS_COLORING_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "engine/gas_app.h"

namespace gdp::apps {

/// Simple (greedy, non-minimal) graph coloring (§3.3.5): every vertex
/// starts with color 0; a vertex that conflicts with a *higher-priority*
/// (lower-id) neighbor recolors itself to the smallest color unused among
/// its neighbors. The priority rule prevents the two-neighbor oscillation a
/// naive synchronous rule suffers. PowerGraph runs this application on the
/// asynchronous engine (see engine/async_coloring.h); this GAS formulation
/// is used for the synchronous baseline and validation.
struct ColoringApp {
  using State = uint32_t;
  /// (neighbor id, neighbor color) pairs; "aggregation" is concatenation.
  using Gather = std::vector<std::pair<graph::VertexId, uint32_t>>;
  static constexpr engine::EdgeDirection kGatherDir =
      engine::EdgeDirection::kBoth;
  static constexpr engine::EdgeDirection kScatterDir =
      engine::EdgeDirection::kBoth;
  static constexpr bool kBootstrapScatter = false;

  State InitState(graph::VertexId, const engine::AppContext&) const {
    return 0;
  }
  bool InitiallyActive(graph::VertexId) const { return true; }
  Gather GatherInit() const { return {}; }

  void GatherEdge(graph::VertexId, graph::VertexId nbr,
                  const State& nbr_state, const engine::AppContext&,
                  Gather* acc) const {
    acc->emplace_back(nbr, nbr_state);
  }

  bool Apply(graph::VertexId v, const Gather& acc, bool has_gather,
             const engine::AppContext&, State* state) const {
    if (!has_gather) return false;
    bool conflict = false;
    for (const auto& [nbr, color] : acc) {
      if (color == *state && nbr < v) {
        conflict = true;
        break;
      }
    }
    if (!conflict) return false;
    *state = SmallestFreeColor(acc);
    return true;
  }

  /// Smallest non-negative integer not used by any pair in `acc`.
  static uint32_t SmallestFreeColor(const Gather& acc) {
    std::vector<uint32_t> used;
    used.reserve(acc.size());
    for (const auto& [nbr, color] : acc) used.push_back(color);
    std::sort(used.begin(), used.end());
    uint32_t candidate = 0;
    for (uint32_t color : used) {
      if (color == candidate) {
        ++candidate;
      } else if (color > candidate) {
        break;
      }
    }
    return candidate;
  }
};

}  // namespace gdp::apps

#endif  // GDP_APPS_COLORING_H_
