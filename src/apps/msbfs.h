#ifndef GDP_APPS_MSBFS_H_
#define GDP_APPS_MSBFS_H_

#include <cstdint>
#include <vector>

#include "engine/gas_app.h"

namespace gdp::apps {

/// Multi-source BFS — an extension workload beyond the thesis' five. Up to
/// 64 source vertices explore the graph simultaneously: each vertex's
/// state is a bitmask of the sources that have reached it, and one
/// superstep ORs neighbor masks together. The number of supersteps until
/// quiescence is the largest eccentricity among the sources, giving a
/// cheap lower bound on the graph's diameter (the classic MS-BFS
/// application).
///
/// Natural-direction variant is possible, but the undirected form is used
/// for diameter estimation, like SSSP in the thesis' setup.
struct MsBfsApp {
  using State = uint64_t;  // bit i set <=> sources[i] reached this vertex
  using Gather = uint64_t;
  static constexpr engine::EdgeDirection kGatherDir =
      engine::EdgeDirection::kBoth;
  static constexpr engine::EdgeDirection kScatterDir =
      engine::EdgeDirection::kBoth;
  static constexpr bool kBootstrapScatter = true;

  /// At most 64 distinct source vertices.
  std::vector<graph::VertexId> sources;

  State InitState(graph::VertexId v, const engine::AppContext&) const {
    uint64_t mask = 0;
    for (size_t i = 0; i < sources.size() && i < 64; ++i) {
      if (sources[i] == v) mask |= 1ULL << i;
    }
    return mask;
  }
  bool InitiallyActive(graph::VertexId v) const {
    for (size_t i = 0; i < sources.size() && i < 64; ++i) {
      if (sources[i] == v) return true;
    }
    return false;
  }
  Gather GatherInit() const { return 0; }

  void GatherEdge(graph::VertexId, graph::VertexId,
                  const State& nbr_state, const engine::AppContext&,
                  Gather* acc) const {
    *acc |= nbr_state;
  }

  bool Apply(graph::VertexId, const Gather& acc, bool has_gather,
             const engine::AppContext&, State* state) const {
    if (!has_gather) return false;
    uint64_t next = *state | acc;
    if (next != *state) {
      *state = next;
      return true;
    }
    return false;
  }
};

}  // namespace gdp::apps

#endif  // GDP_APPS_MSBFS_H_
