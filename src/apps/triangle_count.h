#ifndef GDP_APPS_TRIANGLE_COUNT_H_
#define GDP_APPS_TRIANGLE_COUNT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "engine/gas_engine.h"
#include "engine/run_stats.h"
#include "partition/distributed_graph.h"
#include "sim/cluster.h"

namespace gdp::apps {

/// Triangle counting — PowerGraph's flagship heavy application (its paper's
/// headline benchmark), included here as an extension workload beyond the
/// thesis' five. Classic two-superstep GAS formulation:
///
///   superstep 1: every vertex gathers its neighbor ids into a sorted list
///   (its state);
///   superstep 2: every vertex gathers, per adjacent edge, the size of the
///   intersection between its list and the neighbor's list.
///
/// Each triangle {a,b,c} is then counted once per edge per endpoint: the
/// final per-vertex count divided by 2 is the number of triangles through
/// that vertex, and the global sum divided by 6 is the triangle count.
/// Heavy gather payloads make this the most network-hungry app in the
/// suite — the regime where low replication factors matter most.
///
/// Run via CountTriangles() below, which drives the two phases.
struct NeighborListApp {
  struct VertexState {
    std::vector<graph::VertexId> neighbors;  // sorted, deduplicated
    uint64_t triangle_endpoints = 0;  // 2x triangles through this vertex

    bool operator==(const VertexState&) const = default;
  };
  using State = VertexState;
  using Gather = std::vector<graph::VertexId>;
  static constexpr engine::EdgeDirection kGatherDir =
      engine::EdgeDirection::kBoth;
  static constexpr engine::EdgeDirection kScatterDir =
      engine::EdgeDirection::kNone;
  static constexpr bool kBootstrapScatter = false;

  State InitState(graph::VertexId, const engine::AppContext&) const {
    return {};
  }
  bool InitiallyActive(graph::VertexId) const { return true; }
  Gather GatherInit() const { return {}; }

  void GatherEdge(graph::VertexId, graph::VertexId nbr, const State&,
                  const engine::AppContext&, Gather* acc) const {
    acc->push_back(nbr);
  }

  bool Apply(graph::VertexId, const Gather& acc, bool,
             const engine::AppContext&, State* state) const {
    state->neighbors = acc;
    std::sort(state->neighbors.begin(), state->neighbors.end());
    state->neighbors.erase(
        std::unique(state->neighbors.begin(), state->neighbors.end()),
        state->neighbors.end());
    return false;  // one superstep, no reactivation
  }
};

/// Result of a triangle count run.
struct TriangleCountResult {
  uint64_t total_triangles = 0;
  /// Triangles through each vertex.
  std::vector<uint64_t> per_vertex;
  engine::RunStats stats;
};

/// Runs the two-phase triangle count on the simulated cluster.
TriangleCountResult CountTriangles(engine::EngineKind kind,
                                   const partition::DistributedGraph& dg,
                                   sim::Cluster& cluster,
                                   const engine::RunOptions& options = {});

/// Same, over a prebuilt ExecutionPlan. Both phases gather from kBoth and
/// scatter to kNone, so one plan drives the whole count; results are
/// identical to the DistributedGraph overload, which builds this plan
/// itself. GraphX fan-out counts must be present when `kind` is
/// kGraphXPregel.
TriangleCountResult CountTriangles(engine::EngineKind kind,
                                   const engine::ExecutionPlan& plan,
                                   sim::Cluster& cluster,
                                   const engine::RunOptions& options = {});

/// Sequential reference: exact triangle count via sorted-adjacency
/// intersection.
uint64_t ReferenceTriangleCount(const graph::EdgeList& edges);

}  // namespace gdp::apps

#endif  // GDP_APPS_TRIANGLE_COUNT_H_
