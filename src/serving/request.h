#ifndef GDP_SERVING_REQUEST_H_
#define GDP_SERVING_REQUEST_H_

#include <cstdint>
#include <vector>

#include "apps/sssp.h"
#include "graph/types.h"

namespace gdp::serving {

/// The app queries the serving layer answers against a pre-partitioned
/// graph (ROADMAP: "millions of users issuing app queries"). Distance and
/// reachability queries are the batchable ones — a dispatch window's worth
/// coalesces into one multi-source engine run (apps/mssssp.h, apps/msbfs.h).
enum class QueryKind : uint8_t {
  kSsspDistance,   ///< unit-weight distance source -> target
  kBfsReachable,   ///< is target reachable from source?
  kPageRankTopN,   ///< the top_n highest-ranked vertices
  kKCoreMember,    ///< is `source` in the k-core?
};

const char* QueryKindName(QueryKind kind);

/// One tenant query from the arrival trace. All times are *simulated*
/// microseconds — the serving layer's clocks never read the host's, so
/// every latency and throughput figure is bit-identical across host
/// thread counts (the repo's determinism contract).
struct Request {
  uint32_t id = 0;      ///< index into the trace (and the response array)
  uint32_t tenant = 0;  ///< tenant issuing the query, [0, num_tenants)
  uint32_t graph = 0;   ///< index into the server's graph fleet
  QueryKind kind = QueryKind::kSsspDistance;
  graph::VertexId source = 0;  ///< SSSP/BFS source; k-core member vertex
  graph::VertexId target = 0;  ///< SSSP/BFS target
  uint32_t k = 0;              ///< k-core k
  uint32_t top_n = 0;          ///< PageRank result size
  uint64_t arrival_us = 0;     ///< simulated arrival time
};

/// The server's answer. `latency_us` is scheduling-dependent (queueing +
/// simulated execution); everything else is a pure function of (graph,
/// query), which is what SameAnswer compares when asserting the batched
/// and unbatched paths agree.
struct Response {
  bool rejected = false;   ///< dropped by admission control
  bool reachable = false;  ///< kBfsReachable
  bool in_core = false;    ///< kKCoreMember
  uint32_t distance = apps::kInfiniteDistance;        ///< kSsspDistance
  std::vector<graph::VertexId> top_vertices;          ///< kPageRankTopN
  uint64_t latency_us = 0;  ///< completion - arrival; 0 when rejected

  friend bool operator==(const Response&, const Response&) = default;
};

/// True when the two responses carry the same query answer (admission
/// verdict included), ignoring the scheduling-dependent latency.
bool SameAnswer(const Response& a, const Response& b);

/// Knobs of the deterministic-by-seed arrival-trace generator.
struct TraceOptions {
  uint32_t num_requests = 256;
  uint32_t num_tenants = 4;
  uint64_t seed = 42;
  /// Mean simulated inter-arrival gap; arrivals step by a uniform integer
  /// in [1, 2*mean] so the trace needs no float accumulation.
  uint64_t mean_interarrival_us = 20000;
  /// Query-kind mix, in per-mille of (distance, reachable, top-N); the
  /// remainder is k-core membership.
  uint32_t sssp_permille = 500;
  uint32_t bfs_permille = 250;
  uint32_t pagerank_permille = 125;
  uint32_t kcore_kmin = 2;  ///< k drawn uniformly in [kcore_kmin, kcore_kmax]
  uint32_t kcore_kmax = 4;
  uint32_t max_top_n = 8;
};

/// Generates `options.num_requests` queries with non-decreasing simulated
/// arrival times, spread over `graph_num_vertices.size()` fleet graphs
/// (sources/targets drawn within each graph's vertex range). Same seed,
/// same trace — bit-for-bit.
std::vector<Request> GenerateArrivalTrace(
    const TraceOptions& options,
    const std::vector<uint32_t>& graph_num_vertices);

}  // namespace gdp::serving

#endif  // GDP_SERVING_REQUEST_H_
