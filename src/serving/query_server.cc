#include "serving/query_server.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <memory>
#include <utility>

#include "apps/kcore.h"
#include "apps/msbfs.h"
#include "apps/mssssp.h"
#include "apps/pagerank.h"
#include "engine/gas_engine.h"
#include "engine/plan.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace gdp::serving {

namespace {

/// One coalesced engine dispatch: same window, same graph, same kind.
struct Batch {
  uint32_t window = 0;
  uint32_t graph = 0;
  QueryKind kind = QueryKind::kSsspDistance;
  std::vector<uint32_t> request_ids;  ///< arrival order within the window
  /// Pinned in phase A (serial cache traffic => deterministic eviction);
  /// the shared_ptrs keep evicted artifacts alive through phase B.
  std::shared_ptr<const harness::PartitionCache::Entry> entry;
  std::shared_ptr<const engine::ExecutionPlan> plan;  ///< null on cold path
  uint64_t cost_us = 0;  ///< simulated execution cost, filled in phase B
};

/// The plan shape a query kind runs on. Distance/reachability/k-core all
/// gather and scatter both directions; PageRank is the natural kIn/kOut.
void PlanShapeFor(QueryKind kind, engine::EdgeDirection* gather,
                  engine::EdgeDirection* scatter) {
  if (kind == QueryKind::kPageRankTopN) {
    *gather = apps::PageRankApp::kGatherDir;
    *scatter = apps::PageRankApp::kScatterDir;
  } else {
    *gather = engine::EdgeDirection::kBoth;
    *scatter = engine::EdgeDirection::kBoth;
  }
}

engine::RunOptions BatchRunOptions(const harness::ExperimentSpec& spec,
                                   QueryKind kind) {
  engine::RunOptions options;
  // Frontier apps run to quiescence; fixed-iteration PageRank runs exactly
  // the spec's count (it never "converges" at tolerance 0).
  options.max_iterations = kind == QueryKind::kPageRankTopN
                               ? spec.max_iterations
                               : std::max(spec.max_iterations, 2000u);
  // Batches parallelize across the pool, not within a run; a sink-free
  // serial context keeps per-batch costs pure functions of their inputs.
  options.exec.num_threads = 1;
  if (spec.engine == engine::EngineKind::kGraphXPregel) {
    options.work_multiplier = 4.0;  // matches harness::RunOptionsFor
  }
  return options;
}

/// The `top_n` highest-ranked vertices, rank descending with vertex id
/// ascending on exact rank ties — a total order, so the list is unique.
std::vector<graph::VertexId> TopNVertices(const std::vector<double>& ranks,
                                          uint32_t top_n) {
  std::vector<graph::VertexId> order(ranks.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<graph::VertexId>(i);
  }
  const size_t n = std::min<size_t>(top_n, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<ptrdiff_t>(n),
                    order.end(),
                    [&ranks](graph::VertexId a, graph::VertexId b) {
                      if (ranks[a] != ranks[b]) return ranks[a] > ranks[b];
                      return a < b;
                    });
  order.resize(n);
  return order;
}

}  // namespace

QueryServer::QueryServer(std::vector<GraphConfig> fleet,
                         ServerOptions options)
    : fleet_(std::move(fleet)), options_(options) {
  GDP_CHECK(!fleet_.empty());
  GDP_CHECK_GT(options_.window_us, 0u);
  GDP_CHECK_GT(options_.queue_capacity, 0u);
  GDP_CHECK_GT(options_.max_batch, 0u);
  GDP_CHECK_GT(options_.num_executors, 0u);
  for (const GraphConfig& config : fleet_) {
    GDP_CHECK(config.edges != nullptr);
  }
  cache_.set_byte_budget(options_.partition_cache_budget_bytes);
  cache_.set_plan_byte_budget(options_.plan_cache_budget_bytes);
}

ServeResult QueryServer::Serve(const std::vector<Request>& trace) {
  ServeResult result;
  result.responses.resize(trace.size());

  // --- Phase A (serial): admission, batching, cache warm-up. -------------
  std::vector<Batch> batches;
  {
    // Per-window admission state; windows arrive in order because the
    // trace's arrival times are non-decreasing.
    uint32_t current_window = 0;
    uint32_t window_admitted = 0;
    std::map<uint32_t, uint32_t> tenant_admitted;
    // Open batch per (graph, kind) in the current window.
    std::map<std::pair<uint32_t, QueryKind>, size_t> open;

    uint64_t last_arrival = 0;
    for (const Request& request : trace) {
      GDP_CHECK_EQ(request.id, static_cast<uint32_t>(&request - &trace[0]));
      GDP_CHECK_GE(request.arrival_us, last_arrival);
      last_arrival = request.arrival_us;
      GDP_CHECK_LT(request.graph, fleet_.size());

      const uint32_t window =
          static_cast<uint32_t>(request.arrival_us / options_.window_us);
      if (window != current_window) {
        current_window = window;
        window_admitted = 0;
        tenant_admitted.clear();
        open.clear();
      }

      // Bounded queue + per-tenant quota; the queue drains at window
      // close, so both caps are per window.
      uint32_t& tenant_count = tenant_admitted[request.tenant];
      if (window_admitted >= options_.queue_capacity ||
          (options_.tenant_quota != 0 &&
           tenant_count >= options_.tenant_quota)) {
        result.responses[request.id].rejected = true;
        ++result.rejected;
        rejected_->Increment();
        continue;
      }
      ++window_admitted;
      ++tenant_count;
      ++result.admitted;
      admitted_->Increment();

      // Batch caps: the kernel lane width bounds coalescing (16 SSSP
      // lanes, 64 BFS lanes); unbatched mode pins every batch at 1.
      uint32_t cap = 1;
      if (options_.batching) {
        switch (request.kind) {
          case QueryKind::kSsspDistance:
            cap = std::min<uint32_t>(options_.max_batch, apps::kMsSsspLanes);
            break;
          case QueryKind::kBfsReachable:
            cap = std::min<uint32_t>(options_.max_batch, 64);
            break;
          case QueryKind::kPageRankTopN:
          case QueryKind::kKCoreMember:
            cap = options_.max_batch;
            break;
        }
      }

      const std::pair<uint32_t, QueryKind> slot{request.graph, request.kind};
      auto it = open.find(slot);
      if (it == open.end() || batches[it->second].request_ids.size() >= cap) {
        Batch batch;
        batch.window = window;
        batch.graph = request.graph;
        batch.kind = request.kind;
        it = open.insert_or_assign(slot, batches.size()).first;
        batches.push_back(std::move(batch));
      }
      batches[it->second].request_ids.push_back(request.id);
    }
  }

  // Warm-up: all cache traffic happens here, serially in batch order, so
  // byte-budget eviction is deterministic; each batch pins what it needs.
  for (Batch& batch : batches) {
    const GraphConfig& config = fleet_[batch.graph];
    batch.entry = cache_.Get(*config.edges, config.spec);
    if (options_.use_plan_cache) {
      engine::EdgeDirection gather{};
      engine::EdgeDirection scatter{};
      PlanShapeFor(batch.kind, &gather, &scatter);
      batch.plan = batch.entry->plans->Get(
          gather, scatter,
          config.spec.engine == engine::EngineKind::kGraphXPregel,
          config.spec.plan_layout);
    }
    batches_->Increment();
    if (batch.request_ids.size() > 1) {
      batched_queries_->Add(batch.request_ids.size());
    }
  }
  result.batches = batches.size();

  // --- Phase B (parallel): execute batches, write answers + costs. -------
  util::ThreadPool pool(options_.num_threads);
  pool.ParallelFor(batches.size(), [&](uint64_t index, uint32_t /*lane*/) {
    Batch& batch = batches[index];
    const GraphConfig& config = fleet_[batch.graph];
    const harness::PartitionCache::Entry& entry = *batch.entry;

    // Cold path: rebuild the plan for this batch from the shared graph.
    std::shared_ptr<const engine::ExecutionPlan> plan = batch.plan;
    if (plan == nullptr) {
      engine::EdgeDirection gather{};
      engine::EdgeDirection scatter{};
      PlanShapeFor(batch.kind, &gather, &scatter);
      plan = std::make_shared<engine::ExecutionPlan>(
          engine::ExecutionPlan::Build(
              entry.ingest.graph, gather, scatter,
              config.spec.engine == engine::EngineKind::kGraphXPregel,
              config.spec.plan_layout));
    }

    sim::Cluster cluster(config.spec.num_machines, sim::CostModel{});
    cluster.Restore(entry.post_ingress);
    const engine::RunOptions run_options =
        BatchRunOptions(config.spec, batch.kind);
    const engine::EngineKind kind = config.spec.engine;

    switch (batch.kind) {
      case QueryKind::kSsspDistance: {
        if (options_.batching) {
          apps::MsSsspApp app;
          for (uint32_t id : batch.request_ids) {
            app.sources.push_back(trace[id].source);
          }
          auto run = engine::RunGasEngine(kind, *plan, cluster, app,
                                          run_options);
          for (size_t lane = 0; lane < batch.request_ids.size(); ++lane) {
            const Request& request = trace[batch.request_ids[lane]];
            result.responses[request.id].distance =
                run.states[request.target][lane];
          }
        } else {
          const Request& request = trace[batch.request_ids[0]];
          apps::SsspApp app;
          app.source = request.source;
          auto run = engine::RunGasEngine(kind, *plan, cluster, app,
                                          run_options);
          result.responses[request.id].distance = run.states[request.target];
        }
        break;
      }
      case QueryKind::kBfsReachable: {
        apps::MsBfsApp app;
        for (uint32_t id : batch.request_ids) {
          app.sources.push_back(trace[id].source);
        }
        auto run =
            engine::RunGasEngine(kind, *plan, cluster, app, run_options);
        for (size_t lane = 0; lane < batch.request_ids.size(); ++lane) {
          const Request& request = trace[batch.request_ids[lane]];
          result.responses[request.id].reachable =
              (run.states[request.target] >> lane) & 1;
        }
        break;
      }
      case QueryKind::kPageRankTopN: {
        auto run = engine::RunGasEngine(kind, *plan, cluster,
                                        apps::PageRankFixed(), run_options);
        for (uint32_t id : batch.request_ids) {
          result.responses[id].top_vertices =
              TopNVertices(run.states, trace[id].top_n);
        }
        break;
      }
      case QueryKind::kKCoreMember: {
        // One decomposition sweep over the batch's k range answers every
        // membership query: the k-core is unique, so sweeping from a
        // smaller kmin yields the same k-core at each k.
        uint32_t kmin = trace[batch.request_ids[0]].k;
        uint32_t kmax = kmin;
        for (uint32_t id : batch.request_ids) {
          kmin = std::min(kmin, trace[id].k);
          kmax = std::max(kmax, trace[id].k);
        }
        apps::KCoreResult r = apps::KCoreDecompose(kind, *plan, cluster,
                                                   kmin, kmax, run_options);
        for (uint32_t id : batch.request_ids) {
          result.responses[id].in_core =
              r.core_number[trace[id].source] >= trace[id].k;
        }
        break;
      }
    }

    const double cost_seconds =
        cluster.now_seconds() - entry.post_ingress.now_seconds;
    batch.cost_us = static_cast<uint64_t>(std::llround(cost_seconds * 1e6));
  });

  // --- Phase C (serial): simulated executors, latencies. -----------------
  std::vector<uint64_t> executor_free_us(options_.num_executors, 0);
  for (const Batch& batch : batches) {
    const uint64_t dispatch_us =
        static_cast<uint64_t>(batch.window + 1) * options_.window_us;
    size_t executor = 0;
    for (size_t i = 1; i < executor_free_us.size(); ++i) {
      if (executor_free_us[i] < executor_free_us[executor]) executor = i;
    }
    const uint64_t start_us = std::max(dispatch_us, executor_free_us[executor]);
    const uint64_t completion_us = start_us + batch.cost_us;
    executor_free_us[executor] = completion_us;
    result.makespan_us = std::max(result.makespan_us, completion_us);
    for (uint32_t id : batch.request_ids) {
      const uint64_t latency_us = completion_us - trace[id].arrival_us;
      result.responses[id].latency_us = latency_us;
      latency_us_->Observe(latency_us);
    }
  }
  return result;
}

}  // namespace gdp::serving
