#include "serving/request.h"

#include "util/check.h"
#include "util/random.h"

namespace gdp::serving {

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kSsspDistance:
      return "sssp";
    case QueryKind::kBfsReachable:
      return "bfs";
    case QueryKind::kPageRankTopN:
      return "pagerank";
    case QueryKind::kKCoreMember:
      return "kcore";
  }
  return "?";
}

bool SameAnswer(const Response& a, const Response& b) {
  return a.rejected == b.rejected && a.reachable == b.reachable &&
         a.in_core == b.in_core && a.distance == b.distance &&
         a.top_vertices == b.top_vertices;
}

std::vector<Request> GenerateArrivalTrace(
    const TraceOptions& options,
    const std::vector<uint32_t>& graph_num_vertices) {
  GDP_CHECK_GT(options.num_tenants, 0u);
  GDP_CHECK_GT(options.mean_interarrival_us, 0u);
  GDP_CHECK_LE(options.sssp_permille + options.bfs_permille +
                   options.pagerank_permille,
               1000u);
  GDP_CHECK(!graph_num_vertices.empty());
  GDP_CHECK_LE(options.kcore_kmin, options.kcore_kmax);
  GDP_CHECK_GT(options.kcore_kmin, 0u);

  util::SplitMix64 rng(options.seed);
  std::vector<Request> trace;
  trace.reserve(options.num_requests);
  uint64_t now_us = 0;
  for (uint32_t i = 0; i < options.num_requests; ++i) {
    now_us += 1 + rng.NextBounded(2 * options.mean_interarrival_us);
    Request request;
    request.id = i;
    request.tenant = static_cast<uint32_t>(
        rng.NextBounded(options.num_tenants));
    request.graph = static_cast<uint32_t>(
        rng.NextBounded(graph_num_vertices.size()));
    const uint32_t n = graph_num_vertices[request.graph];
    GDP_CHECK_GT(n, 0u);
    const uint64_t roll = rng.NextBounded(1000);
    if (roll < options.sssp_permille) {
      request.kind = QueryKind::kSsspDistance;
    } else if (roll < options.sssp_permille + options.bfs_permille) {
      request.kind = QueryKind::kBfsReachable;
    } else if (roll < options.sssp_permille + options.bfs_permille +
                          options.pagerank_permille) {
      request.kind = QueryKind::kPageRankTopN;
    } else {
      request.kind = QueryKind::kKCoreMember;
    }
    request.source = static_cast<graph::VertexId>(rng.NextBounded(n));
    request.target = static_cast<graph::VertexId>(rng.NextBounded(n));
    request.k = options.kcore_kmin +
                static_cast<uint32_t>(rng.NextBounded(
                    options.kcore_kmax - options.kcore_kmin + 1));
    request.top_n =
        1 + static_cast<uint32_t>(rng.NextBounded(options.max_top_n));
    request.arrival_us = now_us;
    trace.push_back(request);
  }
  return trace;
}

}  // namespace gdp::serving
