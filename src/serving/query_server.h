#ifndef GDP_SERVING_QUERY_SERVER_H_
#define GDP_SERVING_QUERY_SERVER_H_

#include <cstdint>
#include <vector>

#include "graph/edge_list.h"
#include "harness/experiment.h"
#include "harness/partition_cache.h"
#include "obs/metrics.h"
#include "serving/request.h"

namespace gdp::serving {

/// One graph in the served fleet: the edge list plus the ingress-affecting
/// spec (strategy, machines, seed, engine kind) that keys it into the
/// server's PartitionCache. The edge list must outlive the server.
struct GraphConfig {
  const graph::EdgeList* edges = nullptr;
  harness::ExperimentSpec spec;
};

/// Scheduler and execution knobs. All times are simulated microseconds.
struct ServerOptions {
  /// Dispatch window width: arrivals inside one window are admitted,
  /// batched, and dispatched together at window close.
  uint64_t window_us = 100000;
  /// Bounded request queue: at most this many admissions per window;
  /// excess requests are rejected (the queue fully drains each window).
  uint32_t queue_capacity = 64;
  /// Per-tenant fairness: at most this many queued requests per tenant per
  /// window (0 = no per-tenant cap).
  uint32_t tenant_quota = 0;
  /// Coalesce same-(graph, kind) requests of a window into one engine run:
  /// distance queries share a multi-source SSSP (up to kMsSsspLanes lanes),
  /// reachability an MS-BFS (up to 64), PageRank/k-core one shared
  /// run/sweep. false = one engine run per request (the baseline path).
  bool batching = true;
  /// Cap on requests per batch (clamped to the kernel lane width).
  uint32_t max_batch = 16;
  /// Serve plans from each entry's PlanCache. false = rebuild the
  /// execution plan for every batch (the cold path the claims bench
  /// baselines against).
  bool use_plan_cache = true;
  /// Simulated executor slots draining dispatched batches (earliest-free
  /// assignment, ties to the lowest slot).
  uint32_t num_executors = 4;
  /// Host worker threads executing batches (0 = hardware default). Purely
  /// a wall-clock knob: every simulated figure is identical at any value.
  uint32_t num_threads = 1;
  /// Byte budgets forwarded to the caches (0 = unbounded).
  uint64_t partition_cache_budget_bytes = 0;
  uint64_t plan_cache_budget_bytes = 0;
};

/// What one Serve() call did, in simulated time.
struct ServeResult {
  /// responses[i] answers trace[i] (trace ids must equal positions).
  std::vector<Response> responses;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t batches = 0;      ///< engine dispatches (== engine runs)
  uint64_t makespan_us = 0;  ///< completion time of the last batch
  /// Requests served per simulated second (admitted / makespan).
  double RequestsPerSecond() const {
    return makespan_us == 0
               ? 0.0
               : static_cast<double>(admitted) * 1e6 /
                     static_cast<double>(makespan_us);
  }
};

/// Multi-tenant query server over a fleet of pre-partitioned graphs.
///
/// Serve() runs the trace through three deterministic phases:
///   A (serial)   — windowed admission control (bounded queue + per-tenant
///                  quota), batch formation in arrival order, and cache
///                  warm-up: every PartitionCache/PlanCache lookup happens
///                  here, serially in batch order, so eviction order under
///                  a byte budget is deterministic; each batch pins its
///                  entry/plan via shared_ptr.
///   B (parallel) — batches execute on a util::ThreadPool, each against
///                  its own sim::Cluster restored from the entry's
///                  post-ingress snapshot; a batch's simulated cost is a
///                  pure function of (entry, queries), so host thread
///                  count never changes it.
///   C (serial)   — batches are assigned to simulated executors
///                  (earliest-free, lowest index on ties) starting at
///                  their window close; per-request latency = completion -
///                  arrival, recorded into the "serving.latency_us"
///                  histogram (p50/p99 via obs::MetricsTable).
///
/// Answers are bit-identical between the batched and unbatched paths (the
/// multi-source kernels relax each lane to the same fixed point as a
/// standalone run) and across host thread counts.
class QueryServer {
 public:
  QueryServer(std::vector<GraphConfig> fleet, ServerOptions options);

  /// Serves `trace` (non-decreasing arrival_us, ids == positions).
  ServeResult Serve(const std::vector<Request>& trace);

  /// The server's ingress-artifact cache (budgeted per ServerOptions).
  harness::PartitionCache& partition_cache() { return cache_; }

  /// Serving metrics: admitted/rejected/batches/batched_queries counters
  /// and the serving.latency_us histogram. Merge with
  /// partition_cache().registry() for a full export.
  const obs::MetricsRegistry& registry() const { return registry_; }

 private:
  std::vector<GraphConfig> fleet_;
  ServerOptions options_;
  harness::PartitionCache cache_;
  obs::MetricsRegistry registry_;
  obs::Counter* admitted_ = registry_.GetCounter("serving.admitted");
  obs::Counter* rejected_ = registry_.GetCounter("serving.rejected");
  obs::Counter* batches_ = registry_.GetCounter("serving.batches");
  obs::Counter* batched_queries_ =
      registry_.GetCounter("serving.batched_queries");
  obs::Histogram* latency_us_ =
      registry_.GetHistogram("serving.latency_us");
};

}  // namespace gdp::serving

#endif  // GDP_SERVING_QUERY_SERVER_H_
