#ifndef GDP_UTIL_STATUS_H_
#define GDP_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace gdp::util {

/// Error codes for Status. Modeled after absl::StatusCode's common subset.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
};

/// Lightweight error-or-success value; this project does not throw across
/// library boundaries (per the style guides), so fallible operations return
/// Status or StatusOr<T>. [[nodiscard]] so a dropped error is a compile
/// warning (and an error under tools/check.sh, which builds -Werror).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value or an error. Minimal StatusOr: access via value() only after
/// checking ok().
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}     // NOLINT

  [[nodiscard]] bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

}  // namespace gdp::util

/// Propagates an error Status out of the enclosing function:
///   GDP_RETURN_IF_ERROR(SaveEdgeList(edges, path));
#define GDP_RETURN_IF_ERROR(expr)                       \
  do {                                                  \
    ::gdp::util::Status gdp_status_ = (expr);           \
    if (!gdp_status_.ok()) return gdp_status_;          \
  } while (false)

#define GDP_STATUS_CONCAT_INNER_(a, b) a##b
#define GDP_STATUS_CONCAT_(a, b) GDP_STATUS_CONCAT_INNER_(a, b)

/// Unwraps a StatusOr<T> into `lhs`, propagating the error on failure:
///   GDP_ASSIGN_OR_RETURN(EdgeList edges, LoadEdgeList(path));
#define GDP_ASSIGN_OR_RETURN(lhs, expr)                              \
  GDP_ASSIGN_OR_RETURN_IMPL_(                                        \
      GDP_STATUS_CONCAT_(gdp_status_or_, __LINE__), lhs, expr)

#define GDP_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, expr) \
  auto statusor = (expr);                               \
  if (!statusor.ok()) return std::move(statusor).status(); \
  lhs = std::move(statusor).value()

#endif  // GDP_UTIL_STATUS_H_
