#ifndef GDP_UTIL_HASH_H_
#define GDP_UTIL_HASH_H_

#include <cstdint>

namespace gdp::util {

/// Finalizer from SplitMix64 (Sebastiano Vigna). Bijective 64-bit mix with
/// strong avalanche behaviour; suitable for hash partitioning of vertex ids.
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines two hashes order-dependently (boost::hash_combine flavour, 64-bit).
constexpr uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 12) +
                 (seed >> 4));
}

/// Hash of a directed edge (u, v): (u, v) and (v, u) hash differently.
constexpr uint64_t HashDirectedEdge(uint64_t u, uint64_t v) {
  return HashCombine(Mix64(u), v);
}

/// Hash of an undirected edge: (u, v) and (v, u) hash identically. This is
/// what PowerGraph "Random" and GraphX "Canonical Random" rely on.
constexpr uint64_t HashCanonicalEdge(uint64_t u, uint64_t v) {
  return u <= v ? HashDirectedEdge(u, v) : HashDirectedEdge(v, u);
}

}  // namespace gdp::util

#endif  // GDP_UTIL_HASH_H_
