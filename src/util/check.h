#ifndef GDP_UTIL_CHECK_H_
#define GDP_UTIL_CHECK_H_

#include <ostream>

#include "util/logging.h"
#include "util/status.h"

namespace gdp::util::internal {

/// Turns the streaming arm of a check ternary into void so both arms have
/// the same type. `&` binds looser than `<<`, so the whole message chain is
/// built before being voidified (the LAZY_STREAM idiom).
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace gdp::util::internal

/// Invariant check: aborts with file:line, the failed condition, and any
/// streamed message when `cond` is false. Always on — the simulator's
/// correctness guarantees lean on these.
///
///   GDP_CHECK(offsets[v] <= offsets[v + 1]) << "v=" << v;
#define GDP_CHECK(cond)                                                 \
  (cond) ? (void)0                                                      \
         : ::gdp::util::internal::Voidify() &                           \
               ::gdp::util::internal::FatalLogMessage(__FILE__,         \
                                                      __LINE__, #cond)  \
                   .stream()

#define GDP_CHECK_EQ(a, b) GDP_CHECK((a) == (b))
#define GDP_CHECK_NE(a, b) GDP_CHECK((a) != (b))
#define GDP_CHECK_LT(a, b) GDP_CHECK((a) < (b))
#define GDP_CHECK_LE(a, b) GDP_CHECK((a) <= (b))
#define GDP_CHECK_GT(a, b) GDP_CHECK((a) > (b))
#define GDP_CHECK_GE(a, b) GDP_CHECK((a) >= (b))

/// Aborts with the status message when `expr` is a non-ok Status.
#define GDP_CHECK_OK(expr)                                             \
  do {                                                                 \
    const ::gdp::util::Status gdp_check_ok_status_ = (expr);           \
    GDP_CHECK(gdp_check_ok_status_.ok())                               \
        << gdp_check_ok_status_.ToString();                            \
  } while (false)

/// Debug-only checks: identical to GDP_CHECK in debug builds; in NDEBUG
/// builds the condition is type-checked but never evaluated (no unused
/// warnings, no runtime cost). Use for per-edge/per-vertex assertions in
/// hot loops and for the structural validators (partition/validate.h).
#ifndef NDEBUG
#define GDP_DCHECK(cond) GDP_CHECK(cond)
#define GDP_DCHECK_OK(expr) GDP_CHECK_OK(expr)
#else
#define GDP_DCHECK(cond)                                                \
  (true || (cond)) ? (void)0                                            \
                   : ::gdp::util::internal::Voidify() &                 \
                         ::gdp::util::internal::FatalLogMessage(        \
                             __FILE__, __LINE__, #cond)                 \
                             .stream()
#define GDP_DCHECK_OK(expr) \
  do {                      \
    if (false) {            \
      GDP_CHECK_OK(expr);   \
    }                       \
  } while (false)
#endif

#define GDP_DCHECK_EQ(a, b) GDP_DCHECK((a) == (b))
#define GDP_DCHECK_NE(a, b) GDP_DCHECK((a) != (b))
#define GDP_DCHECK_LT(a, b) GDP_DCHECK((a) < (b))
#define GDP_DCHECK_LE(a, b) GDP_DCHECK((a) <= (b))
#define GDP_DCHECK_GT(a, b) GDP_DCHECK((a) > (b))
#define GDP_DCHECK_GE(a, b) GDP_DCHECK((a) >= (b))

#endif  // GDP_UTIL_CHECK_H_
