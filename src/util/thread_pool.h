#ifndef GDP_UTIL_THREAD_POOL_H_
#define GDP_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace gdp::util {

/// A small fork-join pool for the engines' per-superstep parallel sections.
///
/// `num_threads` counts execution lanes including the calling thread, so a
/// pool of N spawns N-1 workers and ParallelFor(…) runs chunks on all N.
/// Lanes are the index space for per-thread accounting scratch
/// (sim::PhaseAccumulator): the lane an individual chunk lands on is
/// scheduling-dependent, so anything keyed by lane must be merged
/// order-independently (integer counters) before touching shared state.
///
/// A pool of 1 never spawns threads and runs every chunk inline — the
/// num_threads=1 configuration is byte-for-byte the serial engine.
///
/// Locking: `mu_` guards the job hand-off state (generation counter, job
/// pointer/extent, worker count, stop flag); chunk claiming is lock-free on
/// `job_next_`. The annotations below are verified by Clang Thread Safety
/// Analysis under tools/check.sh's `-Wthread-safety` leg.
class ThreadPool {
 public:
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes (workers + the calling thread).
  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size()) + 1;
  }

  /// Runs fn(chunk, lane) for every chunk in [0, num_chunks). Chunks are
  /// claimed dynamically (fetch-add); lane < num_threads() identifies the
  /// executing lane. Blocks until every chunk has finished. Not reentrant.
  void ParallelFor(uint64_t num_chunks,
                   const std::function<void(uint64_t, uint32_t)>& fn)
      GDP_EXCLUDES(mu_);

  /// Default lane count for RunOptions::num_threads == 0: the hardware
  /// concurrency, clamped to [1, 16] so small simulated clusters on huge
  /// hosts do not drown in idle lanes.
  static uint32_t DefaultThreadCount();

 private:
  void WorkerLoop(uint32_t lane) GDP_EXCLUDES(mu_);
  /// Claims and runs chunks until the job is exhausted. Called with `mu_`
  /// released: the chunk counter is the only shared state it touches.
  void RunChunks(const std::function<void(uint64_t, uint32_t)>& fn,
                 uint64_t end, uint32_t lane) GDP_EXCLUDES(mu_);

  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar cv_start_;
  CondVar cv_done_;
  uint64_t generation_ GDP_GUARDED_BY(mu_) = 0;  // bumped per ParallelFor
  uint32_t workers_active_ GDP_GUARDED_BY(mu_) = 0;  // inside current job
  bool stop_ GDP_GUARDED_BY(mu_) = false;

  // Current job (valid while generation_ is live).
  const std::function<void(uint64_t, uint32_t)>* job_fn_
      GDP_GUARDED_BY(mu_) = nullptr;
  uint64_t job_end_ GDP_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> job_next_{0};
};

}  // namespace gdp::util

#endif  // GDP_UTIL_THREAD_POOL_H_
