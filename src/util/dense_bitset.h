#ifndef GDP_UTIL_DENSE_BITSET_H_
#define GDP_UTIL_DENSE_BITSET_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/check.h"

namespace gdp::util {

/// Fixed-size bitset for engine frontiers (active / signaled / next-active
/// vertex sets). Unlike std::vector<bool> it exposes the word array, so
/// iteration over set bits skips empty regions 64 vertices at a time and a
/// popcount costs one instruction per word — the standard representation in
/// graph engines (PowerGraph's dense_bitset). Concurrent writers from a
/// parallel scatter use SetAtomic, which is safe on overlapping words;
/// everything else is single-writer.
class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(uint64_t size) { Resize(size); }

  /// Resizes to `size` bits, all zero (previous contents discarded).
  void Resize(uint64_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, 0);
  }

  uint64_t size() const { return size_; }
  uint64_t num_words() const { return words_.size(); }

  bool Test(uint64_t i) const {
    GDP_DCHECK_LT(i, size_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Single-writer set/reset (no other thread may touch bit i's word).
  void Set(uint64_t i) {
    GDP_DCHECK_LT(i, size_);
    words_[i >> 6] |= 1ULL << (i & 63);
  }
  void Reset(uint64_t i) {
    GDP_DCHECK_LT(i, size_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  /// Concurrent-safe set (relaxed fetch_or): idempotent and commutative, so
  /// the final bitset is independent of thread interleaving.
  void SetAtomic(uint64_t i) {
    GDP_DCHECK_LT(i, size_);
    std::atomic_ref<uint64_t> word(words_[i >> 6]);
    word.fetch_or(1ULL << (i & 63), std::memory_order_relaxed);
  }

  void ClearAll() {
    if (!words_.empty()) {
      std::memset(words_.data(), 0, words_.size() * sizeof(uint64_t));
    }
  }

  uint64_t CountSet() const {
    uint64_t count = 0;
    for (uint64_t w : words_) count += std::popcount(w);
    return count;
  }

  bool AnySet() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// Calls fn(index) for every set bit, ascending.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    ForEachSetInWordRange(0, words_.size(), fn);
  }

  /// Calls fn(index) for every set bit whose word lies in
  /// [word_begin, word_end), ascending. Lets callers shard iteration into
  /// word-aligned blocks whose bit sets never overlap.
  template <typename Fn>
  void ForEachSetInWordRange(uint64_t word_begin, uint64_t word_end,
                             Fn&& fn) const {
    GDP_DCHECK_LE(word_end, words_.size());
    for (uint64_t w = word_begin; w < word_end; ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        uint64_t i = (w << 6) + static_cast<uint64_t>(std::countr_zero(bits));
        bits &= bits - 1;
        fn(i);
      }
    }
  }

  /// Appends every set index to `out`, ascending (the sparse-frontier list).
  template <typename Int>
  void AppendSetBits(std::vector<Int>* out) const {
    ForEachSet([out](uint64_t i) { out->push_back(static_cast<Int>(i)); });
  }

 private:
  uint64_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace gdp::util

#endif  // GDP_UTIL_DENSE_BITSET_H_
