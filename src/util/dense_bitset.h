#ifndef GDP_UTIL_DENSE_BITSET_H_
#define GDP_UTIL_DENSE_BITSET_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/check.h"

namespace gdp::util {

/// Fixed-size bitset for engine frontiers (active / signaled / next-active
/// vertex sets). Unlike std::vector<bool> it exposes the word array, so
/// iteration over set bits skips empty regions 64 vertices at a time and a
/// popcount costs one instruction per word — the standard representation in
/// graph engines (PowerGraph's dense_bitset). Concurrent writers from a
/// parallel scatter use SetAtomic, which is safe on overlapping words;
/// everything else is single-writer.
class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(uint64_t size) { Resize(size); }

  /// Resizes to `size` bits, all zero (previous contents discarded).
  void Resize(uint64_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, 0);
  }

  uint64_t size() const { return size_; }
  uint64_t num_words() const { return words_.size(); }

  bool Test(uint64_t i) const {
    GDP_DCHECK_LT(i, size_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Single-writer set/reset (no other thread may touch bit i's word).
  void Set(uint64_t i) {
    GDP_DCHECK_LT(i, size_);
    words_[i >> 6] |= 1ULL << (i & 63);
  }
  void Reset(uint64_t i) {
    GDP_DCHECK_LT(i, size_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  /// Concurrent-safe set (relaxed fetch_or): idempotent and commutative, so
  /// the final bitset is independent of thread interleaving.
  void SetAtomic(uint64_t i) {
    GDP_DCHECK_LT(i, size_);
    std::atomic_ref<uint64_t> word(words_[i >> 6]);
    word.fetch_or(1ULL << (i & 63), std::memory_order_relaxed);
  }

  /// Concurrent-safe bulk set: ORs a whole word of bits into word `w` with
  /// one relaxed fetch_or instead of 64 single-bit RMWs. Bits beyond size()
  /// in the final word are masked off, so the class invariant (tail bits
  /// stay zero) holds for any input.
  void SetAtomicWord(uint64_t w, uint64_t bits) {
    GDP_DCHECK_LT(w, words_.size());
    bits &= TailMask(w);
    if (bits == 0) return;
    std::atomic_ref<uint64_t> word(words_[w]);
    word.fetch_or(bits, std::memory_order_relaxed);
  }

  /// Word w of the backing array (bit i lives in word i >> 6).
  uint64_t Word(uint64_t w) const {
    GDP_DCHECK_LT(w, words_.size());
    return words_[w];
  }

  /// Single-writer word-parallel union: this |= other. Sizes must match.
  /// 64 bits per iteration with no data dependence between words, so the
  /// loop auto-vectorizes — the dense-frontier merge primitive.
  void OrWith(const DenseBitset& other) {
    GDP_DCHECK_EQ(size_, other.size_);
    const uint64_t* __restrict src = other.words_.data();
    uint64_t* __restrict dst = words_.data();
    const uint64_t nw = words_.size();
    for (uint64_t w = 0; w < nw; ++w) dst[w] |= src[w];
  }

  /// Single-writer word-parallel intersection: this &= other. Sizes must
  /// match. Used to mask a frontier against a filter set (e.g. still-alive
  /// vertices) without touching one bit at a time.
  void AndWith(const DenseBitset& other) {
    GDP_DCHECK_EQ(size_, other.size_);
    const uint64_t* __restrict src = other.words_.data();
    uint64_t* __restrict dst = words_.data();
    const uint64_t nw = words_.size();
    for (uint64_t w = 0; w < nw; ++w) dst[w] &= src[w];
  }

  void ClearAll() {
    if (!words_.empty()) {
      std::memset(words_.data(), 0, words_.size() * sizeof(uint64_t));
    }
  }

  uint64_t CountSet() const {
    uint64_t count = 0;
    for (uint64_t w : words_) count += std::popcount(w);
    return count;
  }

  /// Set bits whose word lies in [word_begin, word_end): one popcount per
  /// word, so block-sharded callers can size work without visiting bits.
  uint64_t CountSetInWordRange(uint64_t word_begin, uint64_t word_end) const {
    GDP_DCHECK_LE(word_end, words_.size());
    uint64_t count = 0;
    for (uint64_t w = word_begin; w < word_end; ++w) {
      count += std::popcount(words_[w]);
    }
    return count;
  }

  bool AnySet() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// Calls fn(index) for every set bit, ascending.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    ForEachSetInWordRange(0, words_.size(), fn);
  }

  /// Calls fn(index) for every set bit whose word lies in
  /// [word_begin, word_end), ascending. Lets callers shard iteration into
  /// word-aligned blocks whose bit sets never overlap.
  template <typename Fn>
  void ForEachSetInWordRange(uint64_t word_begin, uint64_t word_end,
                             Fn&& fn) const {
    GDP_DCHECK_LE(word_end, words_.size());
    for (uint64_t w = word_begin; w < word_end; ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        uint64_t i = (w << 6) + static_cast<uint64_t>(std::countr_zero(bits));
        bits &= bits - 1;
        fn(i);
      }
    }
  }

  /// Appends every set index to `out`, ascending (the sparse-frontier list).
  template <typename Int>
  void AppendSetBits(std::vector<Int>* out) const {
    ForEachSet([out](uint64_t i) { out->push_back(static_cast<Int>(i)); });
  }

 private:
  /// Valid-bit mask for word w: all-ones except in the last word of a size
  /// not divisible by 64, where only the low size%64 bits are real.
  uint64_t TailMask(uint64_t w) const {
    const uint64_t tail = size_ & 63;
    if (tail == 0 || w + 1 != words_.size()) return ~0ULL;
    return (1ULL << tail) - 1;
  }

  uint64_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace gdp::util

#endif  // GDP_UTIL_DENSE_BITSET_H_
