#ifndef GDP_UTIL_TABLE_H_
#define GDP_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace gdp::util {

/// Accumulates rows and renders them as an aligned ASCII table, a Markdown
/// table, or CSV. Used by the benchmark harnesses to print the paper's
/// tables/figure series in a uniform way.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; the row is padded/truncated to the header width.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double value, int precision = 2);

  /// Escapes one field for CSV output (RFC 4180): fields containing a
  /// comma, double quote, or newline are wrapped in double quotes with
  /// embedded quotes doubled; anything else passes through unchanged.
  /// ToCsv() runs every cell through this, so free-text cells (claim
  /// rationales, strategy notes) survive a round trip through a CSV
  /// reader.
  static std::string CsvEscape(const std::string& field);

  std::string ToAscii() const;
  std::string ToMarkdown() const;
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<size_t> ColumnWidths() const;

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gdp::util

#endif  // GDP_UTIL_TABLE_H_
