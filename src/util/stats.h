#ifndef GDP_UTIL_STATS_H_
#define GDP_UTIL_STATS_H_

#include <cstdint>
#include <map>
#include <vector>

namespace gdp::util {

/// Arithmetic mean; 0 for an empty range.
double Mean(const std::vector<double>& xs);

/// Population standard deviation; 0 for fewer than two samples.
double StdDev(const std::vector<double>& xs);

/// Linear-interpolated percentile, p in [0, 100]. Copies and sorts.
double Percentile(std::vector<double> xs, double p);

double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);

/// Five-number summary used by the Fig 8.4-style box plots.
struct BoxStats {
  double min = 0;
  double p25 = 0;
  double median = 0;
  double p75 = 0;
  double max = 0;
};
BoxStats ComputeBoxStats(const std::vector<double>& xs);

/// Ordinary least squares y = slope * x + intercept.
struct LinearFit {
  double slope = 0;
  double intercept = 0;
  double r2 = 0;  ///< coefficient of determination
};
LinearFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys);

/// Histogram over integer values (e.g., vertex degrees): value -> count.
std::map<uint64_t, uint64_t> CountHistogram(const std::vector<uint64_t>& xs);

/// Fits count ~ C * degree^(-alpha) on a log-log scale over a degree
/// histogram (degrees >= 1). Returns the fit of log(count) vs log(degree);
/// -slope estimates the power-law exponent alpha.
LinearFit FitPowerLaw(const std::map<uint64_t, uint64_t>& degree_histogram);

}  // namespace gdp::util

#endif  // GDP_UTIL_STATS_H_
