#ifndef GDP_UTIL_LOGGING_H_
#define GDP_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace gdp::util {

/// Log severities, in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level below which messages are dropped. Defaults to kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and emits it (with a severity tag) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process after emitting (for CHECK failures).
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Swallows a stream expression when a log statement is compiled out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace gdp::util

#define GDP_LOG(level)                                                \
  ::gdp::util::internal::LogMessage(::gdp::util::LogLevel::k##level, \
                                    __FILE__, __LINE__)               \
      .stream()

// GDP_CHECK / GDP_DCHECK and friends live in util/check.h.

#endif  // GDP_UTIL_LOGGING_H_
