#include "util/logging.h"

#include <atomic>

namespace gdp::util {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel()) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[F " << file << ":" << line << "] Check failed: " << condition
          << " ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::abort();
}

}  // namespace internal
}  // namespace gdp::util
