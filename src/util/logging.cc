#include "util/logging.h"

#include <atomic>
#include <string>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace gdp::util {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

/// Serializes whole formatted lines onto stderr so concurrent GDP_LOG /
/// check-failure emissions never interleave characters. Each message is
/// formatted lock-free into its own ostringstream first; only the final
/// write takes the lock.
// Guards std::cerr — an external stream GDP_GUARDED_BY cannot name.
Mutex g_stderr_mu;  // NOLINT(mutex-annotated)

void EmitLine(const std::string& line) GDP_EXCLUDES(g_stderr_mu) {
  MutexLock lock(g_stderr_mu);
  std::cerr << line;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel()) {
    stream_ << "\n";
    EmitLine(stream_.str());
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[F " << file << ":" << line << "] Check failed: " << condition
          << " ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  EmitLine(stream_.str());
  std::abort();
}

}  // namespace internal
}  // namespace gdp::util
