#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace gdp::util {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0;
  double m = Mean(xs);
  double ss = 0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size()));
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0) return xs.front();
  if (p >= 100) return xs.back();
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double Min(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  return *std::max_element(xs.begin(), xs.end());
}

BoxStats ComputeBoxStats(const std::vector<double>& xs) {
  BoxStats b;
  b.min = Min(xs);
  b.p25 = Percentile(xs, 25);
  b.median = Percentile(xs, 50);
  b.p75 = Percentile(xs, 75);
  b.max = Max(xs);
  return b;
}

LinearFit FitLine(const std::vector<double>& xs,
                  const std::vector<double>& ys) {
  LinearFit fit;
  size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return fit;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  double nd = static_cast<double>(n);
  double denom = nd * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return fit;
  fit.slope = (nd * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / nd;
  double mean_y = sy / nd;
  double ss_tot = 0, ss_res = 0;
  for (size_t i = 0; i < n; ++i) {
    double pred = fit.slope * xs[i] + fit.intercept;
    ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
    ss_res += (ys[i] - pred) * (ys[i] - pred);
  }
  fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

std::map<uint64_t, uint64_t> CountHistogram(const std::vector<uint64_t>& xs) {
  std::map<uint64_t, uint64_t> hist;
  for (uint64_t x : xs) ++hist[x];
  return hist;
}

LinearFit FitPowerLaw(const std::map<uint64_t, uint64_t>& degree_histogram) {
  std::vector<double> log_deg;
  std::vector<double> log_count;
  for (const auto& [degree, count] : degree_histogram) {
    if (degree == 0 || count == 0) continue;
    log_deg.push_back(std::log(static_cast<double>(degree)));
    log_count.push_back(std::log(static_cast<double>(count)));
  }
  return FitLine(log_deg, log_count);
}

}  // namespace gdp::util
