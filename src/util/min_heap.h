#ifndef GDP_UTIL_MIN_HEAP_H_
#define GDP_UTIL_MIN_HEAP_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"

namespace gdp::util {

/// Addressable 4-ary min-heap over integer ids in [0, capacity) with
/// decrease-key — the boundary queue of neighbourhood-expansion
/// partitioners (NE pops the boundary vertex with the fewest unassigned
/// incident edges every step, and decreases neighbour keys as edges get
/// assigned). A 4-ary layout halves the tree depth of a binary heap and
/// keeps the four children of a node in one cache line of keys, which is
/// the standard choice for heaps whose keys are small integers (d-ary
/// heap; see also the min_heap in the HEP/NE reference partitioners).
///
/// Ordering is lexicographic on (key, id): equal keys pop in ascending id
/// order, so iteration order — and every partitioner built on it — is a
/// pure function of the inserted set, never of insertion history. That is
/// what makes the expansion strategies bit-identical across thread counts.
///
/// Single-writer; not thread-safe. All operations are O(log4 n) except
/// Contains/Min (O(1)).
template <typename Key, typename Id = uint32_t>
class MinHeap {
 public:
  MinHeap() = default;
  explicit MinHeap(Id capacity) { Reset(capacity); }

  /// Empties the heap and sizes the id universe to [0, capacity).
  void Reset(Id capacity) {
    nodes_.clear();
    pos_.assign(capacity, kNotInHeap);
  }

  uint64_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  Id capacity() const { return static_cast<Id>(pos_.size()); }

  bool Contains(Id id) const {
    GDP_DCHECK_LT(static_cast<uint64_t>(id), pos_.size());
    return pos_[id] != kNotInHeap;
  }

  /// Key of a contained id.
  Key KeyOf(Id id) const {
    GDP_DCHECK(Contains(id));
    return nodes_[pos_[id]].key;
  }

  /// Inserts `id` (must not be contained) with `key`.
  void Insert(Id id, Key key) {
    GDP_DCHECK(!Contains(id));
    pos_[id] = static_cast<uint32_t>(nodes_.size());
    nodes_.push_back(Node{key, id});
    SiftUp(nodes_.size() - 1);
  }

  /// Lowers `id`'s key to `key` (no-op unless strictly smaller).
  void DecreaseKey(Id id, Key key) {
    GDP_DCHECK(Contains(id));
    const uint64_t i = pos_[id];
    if (!(key < nodes_[i].key)) return;
    nodes_[i].key = key;
    SiftUp(i);
  }

  /// Inserts or decrease-keys, whichever applies.
  void InsertOrDecrease(Id id, Key key) {
    if (Contains(id)) {
      DecreaseKey(id, key);
    } else {
      Insert(id, key);
    }
  }

  /// The minimum (key, id) pair without removing it.
  std::pair<Key, Id> Min() const {
    GDP_DCHECK(!empty());
    return {nodes_[0].key, nodes_[0].id};
  }

  /// Removes and returns the minimum (key, id) pair.
  std::pair<Key, Id> PopMin() {
    std::pair<Key, Id> min = Min();
    RemoveAt(0);
    return min;
  }

  /// Removes `id` if contained; returns whether it was.
  bool Remove(Id id) {
    GDP_DCHECK_LT(static_cast<uint64_t>(id), pos_.size());
    if (!Contains(id)) return false;
    RemoveAt(pos_[id]);
    return true;
  }

  /// Empties the heap, keeping the id universe (O(contained)).
  void Clear() {
    for (const Node& n : nodes_) pos_[n.id] = kNotInHeap;
    nodes_.clear();
  }

  /// Approximate footprint: the node array plus the position index.
  uint64_t ApproxBytes() const {
    return nodes_.capacity() * sizeof(Node) + pos_.capacity() * sizeof(uint32_t);
  }

 private:
  struct Node {
    Key key;
    Id id;
    /// Lexicographic (key, id): ties break toward the smaller id.
    bool operator<(const Node& o) const {
      return key < o.key || (!(o.key < key) && id < o.id);
    }
  };

  static constexpr uint32_t kNotInHeap = static_cast<uint32_t>(-1);

  void Place(uint64_t i, Node n) {
    nodes_[i] = n;
    pos_[n.id] = static_cast<uint32_t>(i);
  }

  void SiftUp(uint64_t i) {
    Node moving = nodes_[i];
    while (i > 0) {
      const uint64_t parent = (i - 1) / 4;
      if (!(moving < nodes_[parent])) break;
      Place(i, nodes_[parent]);
      i = parent;
    }
    Place(i, moving);
  }

  void SiftDown(uint64_t i) {
    Node moving = nodes_[i];
    const uint64_t n = nodes_.size();
    for (;;) {
      const uint64_t first_child = 4 * i + 1;
      if (first_child >= n) break;
      uint64_t best = first_child;
      const uint64_t last_child = std::min(first_child + 4, n);
      for (uint64_t c = first_child + 1; c < last_child; ++c) {
        if (nodes_[c] < nodes_[best]) best = c;
      }
      if (!(nodes_[best] < moving)) break;
      Place(i, nodes_[best]);
      i = best;
    }
    Place(i, moving);
  }

  void RemoveAt(uint64_t i) {
    pos_[nodes_[i].id] = kNotInHeap;
    const Node last = nodes_.back();
    nodes_.pop_back();
    if (i == nodes_.size()) return;
    Place(i, last);
    // The hole's replacement may need to move either direction.
    SiftDown(i);
    SiftUp(pos_[last.id]);
  }

  std::vector<Node> nodes_;
  /// pos_[id] = index into nodes_, or kNotInHeap.
  std::vector<uint32_t> pos_;
};

}  // namespace gdp::util

#endif  // GDP_UTIL_MIN_HEAP_H_
