#ifndef GDP_UTIL_RANDOM_H_
#define GDP_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gdp::util {

/// Deterministic 64-bit PRNG (SplitMix64). Small state, fast, and good enough
/// statistically for workload generation. All randomness in this project is
/// seeded explicitly so runs are reproducible bit-for-bit.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's multiply-shift rejection method would be overkill here; the
    // modulo bias for bound << 2^64 is negligible for simulation purposes,
    // but we still debias with one-round rejection for exactness.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

/// Samples from a Zipf(alpha) distribution over ranks {1, ..., n} using the
/// rejection-inversion method of Hörmann & Derflinger. O(1) per sample after
/// O(1) setup; exact for alpha > 0, alpha != 1 handled via limits.
class ZipfSampler {
 public:
  /// @param n      number of ranks.
  /// @param alpha  skew exponent (> 0). Larger alpha = more skew.
  ZipfSampler(uint64_t n, double alpha);

  /// Draws one rank in [1, n].
  uint64_t Sample(SplitMix64& rng) const;

  uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double alpha_;
  double h_x1_;
  double h_n_;
  double s_;
};

/// Fisher-Yates shuffle of a vector with an explicit RNG.
template <typename T>
void Shuffle(std::vector<T>& v, SplitMix64& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::size_t j = rng.NextBounded(i);
    std::swap(v[i - 1], v[j]);
  }
}

}  // namespace gdp::util

#endif  // GDP_UTIL_RANDOM_H_
