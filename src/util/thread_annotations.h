#ifndef GDP_UTIL_THREAD_ANNOTATIONS_H_
#define GDP_UTIL_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis attribute macros (GDP_ spellings of the
// annotate-and-`-Wthread-safety` discipline). On Clang, every macro expands
// to the corresponding `__attribute__` and the analysis proves, at compile
// time, that each GDP_GUARDED_BY field is only touched with its mutex held
// and that each GDP_REQUIRES function is only called under its locks. On
// every other compiler the macros expand to nothing, so annotated code
// builds everywhere while the contracts stay machine-checked wherever Clang
// is available (tools/check.sh runs the `-Wthread-safety -Werror` leg when
// it finds clang++; the gdp_lint `mutex-annotated` rule enforces that every
// mutex member carries at least one annotation regardless of compiler).
//
// Annotation conventions for this repo are documented in DESIGN.md
// section 11; the annotated mutex types these attach to live in
// util/mutex.h.

#if defined(__clang__) && defined(__has_attribute)
#define GDP_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define GDP_THREAD_ANNOTATION_(x)  // no-op on non-Clang compilers
#endif

/// Declares a type to be a lockable capability ("mutex" by convention).
#define GDP_CAPABILITY(x) GDP_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type that acquires a capability at construction and
/// releases it at destruction (util::MutexLock).
#define GDP_SCOPED_CAPABILITY GDP_THREAD_ANNOTATION_(scoped_lockable)

/// Field annotation: the field may only be read or written with `x` held.
#define GDP_GUARDED_BY(x) GDP_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer-field annotation: the *pointee* is guarded by `x` (the pointer
/// itself may be read freely).
#define GDP_PT_GUARDED_BY(x) GDP_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function annotation: callers must hold the listed capabilities.
#define GDP_REQUIRES(...) \
  GDP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function annotation: callers must NOT hold the listed capabilities
/// (deadlock guard for functions that acquire them internally).
#define GDP_EXCLUDES(...) GDP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function annotation: acquires the listed capabilities and holds them on
/// return (Mutex::Lock, MutexLock's constructor).
#define GDP_ACQUIRE(...) \
  GDP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function annotation: releases the listed capabilities (Mutex::Unlock,
/// MutexLock's destructor).
#define GDP_RELEASE(...) \
  GDP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function annotation: acquires the capability iff the return value equals
/// the first argument (Mutex::TryLock).
#define GDP_TRY_ACQUIRE(...) \
  GDP_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Declares lock acquisition order between capabilities (held-while-taking).
#define GDP_ACQUIRED_AFTER(...) \
  GDP_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define GDP_ACQUIRED_BEFORE(...) \
  GDP_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

/// Function annotation: returns a reference to the capability guarding its
/// result (accessors that expose a mutex for external locking).
#define GDP_RETURN_CAPABILITY(x) GDP_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only where the
/// locking pattern is correct but inexpressible, and say why in a comment.
#define GDP_NO_THREAD_SAFETY_ANALYSIS \
  GDP_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // GDP_UTIL_THREAD_ANNOTATIONS_H_
