#include "util/thread_pool.h"

#include <algorithm>

namespace gdp::util {

ThreadPool::ThreadPool(uint32_t num_threads) {
  uint32_t lanes = std::max(1u, num_threads);
  workers_.reserve(lanes - 1);
  for (uint32_t lane = 1; lane < lanes; ++lane) {
    workers_.emplace_back([this, lane] { WorkerLoop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_start_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

uint32_t ThreadPool::DefaultThreadCount() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return static_cast<uint32_t>(std::min(hw, 16u));
}

void ThreadPool::RunChunks(const std::function<void(uint64_t, uint32_t)>& fn,
                           uint64_t end, uint32_t lane) {
  for (;;) {
    uint64_t chunk = job_next_.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= end) return;
    fn(chunk, lane);
  }
}

void ThreadPool::ParallelFor(
    uint64_t num_chunks, const std::function<void(uint64_t, uint32_t)>& fn) {
  if (num_chunks == 0) return;
  if (workers_.empty() || num_chunks == 1) {
    for (uint64_t chunk = 0; chunk < num_chunks; ++chunk) fn(chunk, 0);
    return;
  }
  {
    MutexLock lock(mu_);
    job_fn_ = &fn;
    job_end_ = num_chunks;
    job_next_.store(0, std::memory_order_relaxed);
    workers_active_ = static_cast<uint32_t>(workers_.size());
    ++generation_;
  }
  cv_start_.NotifyAll();
  RunChunks(fn, num_chunks, /*lane=*/0);
  MutexLock lock(mu_);
  while (workers_active_ != 0) cv_done_.Wait(mu_);
  job_fn_ = nullptr;
}

void ThreadPool::WorkerLoop(uint32_t lane) {
  uint64_t seen_generation = 0;
  mu_.Lock();
  for (;;) {
    while (!stop_ && generation_ == seen_generation) cv_start_.Wait(mu_);
    if (stop_) {
      mu_.Unlock();
      return;
    }
    seen_generation = generation_;
    const std::function<void(uint64_t, uint32_t)>* fn = job_fn_;
    uint64_t end = job_end_;
    mu_.Unlock();
    RunChunks(*fn, end, lane);
    mu_.Lock();
    if (--workers_active_ == 0) cv_done_.NotifyAll();
  }
}

}  // namespace gdp::util
