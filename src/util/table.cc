#include "util/table.h"

#include <cstdio>
#include <sstream>

namespace gdp::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::vector<size_t> Table::ColumnWidths() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  return widths;
}

std::string Table::ToAscii() const {
  std::vector<size_t> widths = ColumnWidths();
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << cell;
      for (size_t pad = cell.size(); pad < widths[c] + 2; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::ToMarkdown() const {
  std::ostringstream out;
  out << '|';
  for (const auto& h : header_) out << ' ' << h << " |";
  out << "\n|";
  for (size_t c = 0; c < header_.size(); ++c) out << "---|";
  out << '\n';
  for (const auto& row : rows_) {
    out << '|';
    for (const auto& cell : row) out << ' ' << cell << " |";
    out << '\n';
  }
  return out.str();
}

std::string Table::CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::string Table::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << CsvEscape(row[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace gdp::util
