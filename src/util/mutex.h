#ifndef GDP_UTIL_MUTEX_H_
#define GDP_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace gdp::util {

/// An annotated wrapper over std::mutex: the capability type Clang Thread
/// Safety Analysis reasons about. Every mutex in src/ must be a util::Mutex
/// (or carry its own justification) so that GDP_GUARDED_BY fields are
/// machine-checkable; the gdp_lint `mutex-annotated` rule enforces that each
/// one is referenced by at least one annotation.
///
/// Prefer util::MutexLock for scoped sections; call Lock()/Unlock() directly
/// only where the critical section spans a scope boundary (e.g. the thread
/// pool's worker loop, which unlocks around the chunk run).
class GDP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GDP_ACQUIRE() { mu_.lock(); }
  void Unlock() GDP_RELEASE() { mu_.unlock(); }
  bool TryLock() GDP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  // The wrapped lock is the capability itself, not state it guards.
  std::mutex mu_;  // NOLINT(mutex-annotated)
};

/// RAII lock for util::Mutex — the annotated std::lock_guard. Holds the
/// mutex from construction to the end of the scope.
class GDP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GDP_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() GDP_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with util::Mutex. Wait() is annotated
/// GDP_REQUIRES(mu): the analysis treats the capability as held across the
/// wait (it is released and reacquired inside, invisible to the caller),
/// which is exactly the contract guarded predicates need.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, and reacquires `mu`
  /// before returning. Spurious wakeups are possible: callers loop on their
  /// guarded predicate (`while (!ready_) cv_.Wait(mu_);`), which keeps the
  /// predicate reads inside the caller's analyzed critical section.
  void Wait(Mutex& mu) GDP_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's Lock()
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gdp::util

#endif  // GDP_UTIL_MUTEX_H_
