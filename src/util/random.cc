#include "util/random.h"

#include <cmath>

namespace gdp::util {

namespace {
// Generalized harmonic helper: integral form used by rejection-inversion.
double HIntegral(double x, double alpha) {
  double log_x = std::log(x);
  if (std::abs(alpha - 1.0) < 1e-12) return log_x;
  return std::expm1((1.0 - alpha) * log_x) / (1.0 - alpha);
}

double HIntegralInverse(double x, double alpha) {
  if (std::abs(alpha - 1.0) < 1e-12) return std::exp(x);
  double t = x * (1.0 - alpha);
  if (t < -1.0) t = -1.0;  // Guard against numeric drift below the pole.
  return std::exp(std::log1p(t) / (1.0 - alpha));
}
}  // namespace

ZipfSampler::ZipfSampler(uint64_t n, double alpha) : n_(n), alpha_(alpha) {
  h_x1_ = HIntegral(1.5, alpha) - 1.0;
  h_n_ = HIntegral(static_cast<double>(n) + 0.5, alpha);
  s_ = 2.0 - HIntegralInverse(HIntegral(2.5, alpha) - std::pow(2.0, -alpha),
                              alpha);
}

double ZipfSampler::H(double x) const { return HIntegral(x, alpha_); }

double ZipfSampler::HInverse(double x) const {
  return HIntegralInverse(x, alpha_);
}

uint64_t ZipfSampler::Sample(SplitMix64& rng) const {
  if (n_ == 1) return 1;
  for (;;) {
    double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= H(kd + 0.5) - std::exp(-alpha_ * std::log(kd))) {
      return k;
    }
  }
}

}  // namespace gdp::util
