#ifndef GDP_UTIL_BITPACK_H_
#define GDP_UTIL_BITPACK_H_

#include <cstdint>

namespace gdp::util {

// Word-aligned bit packing shared by the compressed adjacency layout
// (engine/plan.h) and the compressed edge-block store
// (graph/edge_block_store.h). Values are packed back to back at a fixed
// width; unaligned straddles are handled with two word loads/stores and a
// shift-merge — no per-bit loop, no byte addressing.

/// Reads `width` bits (1..57) starting at absolute bit `bit_pos` of a
/// packed word array. The array must carry one padding word past the last
/// encoded bit so words[w + 1] is always dereferenceable.
inline uint64_t ReadPackedBits(const uint64_t* words, uint64_t bit_pos,
                               uint32_t width) {
  const uint64_t w = bit_pos >> 6;
  const uint32_t off = static_cast<uint32_t>(bit_pos & 63);
  uint64_t bits = words[w] >> off;
  if (off + width > 64) bits |= words[w + 1] << (64 - off);
  return bits & ((1ULL << width) - 1);
}

/// Writes the low `width` bits of `bits` at absolute bit `bit_pos` of a
/// zero-initialized word array (the encode mirror of ReadPackedBits).
inline void WritePackedBits(uint64_t* words, uint64_t bit_pos, uint32_t width,
                            uint64_t bits) {
  const uint64_t w = bit_pos >> 6;
  const uint32_t off = static_cast<uint32_t>(bit_pos & 63);
  words[w] |= bits << off;
  if (off + width > 64) words[w + 1] |= bits >> (64 - off);
}

/// Zigzag-maps a signed delta onto a non-negative integer so small
/// magnitudes of either sign pack into few bits.
inline uint64_t ZigZag(int64_t delta) {
  return (static_cast<uint64_t>(delta) << 1) ^
         static_cast<uint64_t>(delta >> 63);
}

/// Inverse of ZigZag.
inline int64_t UnZigZag(uint64_t zig) {
  return static_cast<int64_t>(zig >> 1) ^ -static_cast<int64_t>(zig & 1);
}

}  // namespace gdp::util

#endif  // GDP_UTIL_BITPACK_H_
