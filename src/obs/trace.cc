#include "obs/trace.h"

#include <algorithm>

#include "util/check.h"

namespace gdp::obs {

TraceRecorder::SpanId TraceRecorder::Begin(uint64_t track,
                                           std::string_view name,
                                           std::string_view category,
                                           double sim_begin_seconds) {
  const double wall = WallNowMicros();
  util::MutexLock lock(mu_);
  TraceSpan span;
  span.name = std::string(name);
  span.category = std::string(category);
  span.track = track;
  span.depth = open_depth_[track]++;
  span.wall_begin_us = wall;
  span.sim_begin_seconds = sim_begin_seconds;
  span.sim_end_seconds = sim_begin_seconds;
  spans_.push_back(std::move(span));
  return spans_.size() - 1;
}

void TraceRecorder::Arg(SpanId id, std::string_view key, int64_t value) {
  util::MutexLock lock(mu_);
  GDP_CHECK_LT(id, spans_.size()) << "Arg on unknown span";
  spans_[id].args.emplace_back(std::string(key), value);
}

void TraceRecorder::End(SpanId id, double sim_end_seconds) {
  const double wall = WallNowMicros();
  util::MutexLock lock(mu_);
  GDP_CHECK_LT(id, spans_.size()) << "End on unknown span";
  TraceSpan& span = spans_[id];
  span.wall_dur_us = wall - span.wall_begin_us;
  span.sim_end_seconds = sim_end_seconds;
  auto it = open_depth_.find(span.track);
  GDP_CHECK(it != open_depth_.end() && it->second > 0)
      << "End without matching Begin on track " << span.track;
  --it->second;
}

std::vector<TraceSpan> TraceRecorder::Snapshot() const {
  util::MutexLock lock(mu_);
  return spans_;
}

std::vector<TraceSpan> TraceRecorder::SpansByTrack() const {
  std::vector<TraceSpan> out = Snapshot();
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     return a.track < b.track;
                   });
  return out;
}

size_t TraceRecorder::size() const {
  util::MutexLock lock(mu_);
  return spans_.size();
}

}  // namespace gdp::obs
