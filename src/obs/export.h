#ifndef GDP_OBS_EXPORT_H_
#define GDP_OBS_EXPORT_H_

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/table.h"

namespace gdp::obs {

/// Renders a registry snapshot as a util::Table (name / kind / value /
/// sum / max), one row per metric in registration order. The table's
/// ToCsv() is the CSV export path.
util::Table MetricsTable(const MetricsRegistry& registry);

/// Renders the recorder's spans as a util::Table, one row per span in
/// canonical (track, begin) order: track / depth / category / name /
/// simulated begin+end seconds / wall microseconds / flattened args
/// ("k=v; ..."). Wall columns are host-dependent; every other column is
/// covered by the determinism contracts.
util::Table SpansTable(const TraceRecorder& recorder);

}  // namespace gdp::obs

#endif  // GDP_OBS_EXPORT_H_
