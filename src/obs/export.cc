#include "obs/export.h"

#include <string>

namespace gdp::obs {

util::Table MetricsTable(const MetricsRegistry& registry) {
  // New columns go at the end: downstream consumers index the first five.
  util::Table table({"metric", "kind", "value", "sum", "max", "p50", "p99"});
  for (const MetricsRegistry::Sample& s : registry.Snapshot()) {
    const bool hist = s.kind == MetricKind::kHistogram;
    table.AddRow({s.name, MetricKindName(s.kind), std::to_string(s.value),
                  hist ? std::to_string(s.sum) : std::string("-"),
                  hist ? std::to_string(s.max) : std::string("-"),
                  hist ? std::to_string(s.p50) : std::string("-"),
                  hist ? std::to_string(s.p99) : std::string("-")});
  }
  return table;
}

util::Table SpansTable(const TraceRecorder& recorder) {
  util::Table table({"track", "depth", "category", "name", "sim_begin_s",
                     "sim_end_s", "wall_us", "args"});
  for (const TraceSpan& span : recorder.SpansByTrack()) {
    std::string args;
    for (const auto& [key, value] : span.args) {
      if (!args.empty()) args.append("; ");
      args.append(key);
      args.push_back('=');
      args.append(std::to_string(value));
    }
    table.AddRow({std::to_string(span.track), std::to_string(span.depth),
                  span.category, span.name,
                  util::Table::Num(span.sim_begin_seconds, 6),
                  util::Table::Num(span.sim_end_seconds, 6),
                  util::Table::Num(span.wall_dur_us, 1), args});
  }
  return table;
}

}  // namespace gdp::obs
