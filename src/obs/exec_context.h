#ifndef GDP_OBS_EXEC_CONTEXT_H_
#define GDP_OBS_EXEC_CONTEXT_H_

#include <cstdint>

namespace gdp::sim {
class Timeline;
}  // namespace gdp::sim

namespace gdp::obs {

class MetricsRegistry;
class TraceRecorder;

/// The shared execution context threaded through every subsystem that runs
/// work (ingress pipeline, GAS engines, experiment harness, grid runner).
/// It replaces the `num_threads` + `timeline` field pairs that used to be
/// copy-pasted across IngestOptions, RunOptions, and ExperimentSpec, and
/// carries the observability sinks introduced with it.
///
/// Cost contract: a default-constructed ExecContext ("null context") makes
/// every instrumentation site a branch on a nullptr — no allocation, no
/// lock, no string formatting. Determinism contract: nothing reachable from
/// this struct may influence simulated results; observers only *read*
/// simulated state, so attaching or detaching them leaves every simulated
/// cost bit-identical (asserted by bench_obs_overhead and tests/obs_test).
struct ExecContext {
  /// Host threads driving the parallel internals (0 = hardware default).
  /// Simulated results are bit-identical at every setting — the engine and
  /// ingest determinism contracts (DESIGN.md sections 7-8).
  uint32_t num_threads = 0;
  /// Optional resource timeline sampled at phase barriers (Fig 6.3). Not
  /// owned; may be null.
  sim::Timeline* timeline = nullptr;
  /// Optional metrics sink (counters/gauges/histograms). Not owned.
  MetricsRegistry* metrics = nullptr;
  /// Optional trace-span sink (phase-scoped spans, two clocks). Not owned.
  TraceRecorder* trace = nullptr;
  /// Trace track ("tid" in the Chrome trace) spans opened through this
  /// context land on. The grid runner gives each concurrent cell its own
  /// track so nesting depths stay per-cell consistent.
  uint64_t trace_track = 0;

  /// True when any observer (timeline, metrics, trace) is attached.
  bool HasObservers() const {
    return timeline != nullptr || metrics != nullptr || trace != nullptr;
  }
};

}  // namespace gdp::obs

#endif  // GDP_OBS_EXEC_CONTEXT_H_
