#ifndef GDP_OBS_TRACE_H_
#define GDP_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace gdp::obs {

/// One completed phase-scoped span. Spans carry *two* clocks:
///  - wall time (`wall_begin_us` / `wall_dur_us`), host-dependent and
///    excluded from every determinism comparison;
///  - the simulated cluster clock (`sim_begin_seconds` / `sim_end_seconds`),
///    which the determinism contracts require to be bit-identical across
///    thread counts {1,2,8} and cached-vs-fresh grid paths.
/// `args` holds deterministic integer attachments (frontier sizes,
/// gather/apply/scatter unit totals, pass tick counts).
struct TraceSpan {
  /// Span name, e.g. "superstep 3" or "pass greedy".
  std::string name;
  /// Coarse grouping: "engine", "ingress", "grid".
  std::string category;
  /// Track the span lives on (Chrome "tid"); one per concurrent grid cell.
  uint64_t track = 0;
  /// Nesting depth on its track at begin time (0 = top level).
  uint32_t depth = 0;
  /// Wall-clock begin, microseconds since the recorder was constructed.
  double wall_begin_us = 0.0;
  /// Wall-clock duration in microseconds.
  double wall_dur_us = 0.0;
  /// Simulated cluster clock at span begin, in simulated seconds.
  double sim_begin_seconds = 0.0;
  /// Simulated cluster clock at span end, in simulated seconds.
  double sim_end_seconds = 0.0;
  /// Deterministic integer attachments, in insertion order.
  std::vector<std::pair<std::string, int64_t>> args;
};

/// Collects phase-scoped TraceSpans from any thread.
///
/// Begin() appends the span immediately, so spans on one track appear in
/// begin order — deterministic whenever a track is driven serially (each
/// subsystem opens its spans from its serial barrier points). Concurrent
/// tracks interleave in the flat list; consumers needing a canonical order
/// sort by (track, begin order), which SpansByTrack() does.
class TraceRecorder {
 public:
  /// A fresh recorder; wall-clock offsets are measured from construction.
  TraceRecorder() : wall_origin_(std::chrono::steady_clock::now()) {}
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Opaque handle for an open span.
  using SpanId = size_t;

  /// Opens a span on `track` at simulated time `sim_begin_seconds`. The
  /// span's depth is the number of currently-open spans on that track.
  SpanId Begin(uint64_t track, std::string_view name,
               std::string_view category, double sim_begin_seconds)
      GDP_EXCLUDES(mu_);

  /// Attaches a deterministic integer arg to an open (or ended) span.
  void Arg(SpanId id, std::string_view key, int64_t value) GDP_EXCLUDES(mu_);

  /// Closes the span: stamps wall duration and the simulated end clock.
  void End(SpanId id, double sim_end_seconds) GDP_EXCLUDES(mu_);

  /// A copy of all spans recorded so far, in begin order.
  std::vector<TraceSpan> Snapshot() const GDP_EXCLUDES(mu_);

  /// All spans grouped per track (ascending track id), begin order within
  /// each track — the canonical deterministic ordering even when tracks
  /// were driven concurrently.
  std::vector<TraceSpan> SpansByTrack() const GDP_EXCLUDES(mu_);

  /// Number of spans recorded (open + closed).
  size_t size() const GDP_EXCLUDES(mu_);

 private:
  double WallNowMicros() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - wall_origin_)
        .count();
  }

  const std::chrono::steady_clock::time_point wall_origin_;
  /// Guards the span list and the per-track open-span depth counters.
  mutable util::Mutex mu_;
  std::vector<TraceSpan> spans_ GDP_GUARDED_BY(mu_);
  std::map<uint64_t, uint32_t> open_depth_
      GDP_GUARDED_BY(mu_);  // track -> currently open spans
};

/// RAII wrapper around one TraceRecorder span. Null-safe: constructed with
/// a null recorder (the "null context" case) every method is a no-op and
/// nothing is allocated. End() must be given the simulated clock *after*
/// the phase's EndPhase barrier; if never called, the destructor closes the
/// span at its begin clock (zero simulated duration).
class ScopedSpan {
 public:
  /// Inert span (no recorder attached).
  ScopedSpan() = default;

  /// Opens a span on `recorder` (no-op when `recorder` is null).
  ScopedSpan(TraceRecorder* recorder, uint64_t track, std::string_view name,
             std::string_view category, double sim_begin_seconds)
      : recorder_(recorder), sim_begin_seconds_(sim_begin_seconds) {
    if (recorder_ != nullptr) {
      id_ = recorder_->Begin(track, name, category, sim_begin_seconds);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (!ended_) End(sim_begin_seconds_);
  }

  /// Attaches a deterministic integer arg.
  void Arg(std::string_view key, int64_t value) {
    if (recorder_ != nullptr) recorder_->Arg(id_, key, value);
  }

  /// Closes the span at simulated time `sim_end_seconds`.
  void End(double sim_end_seconds) {
    if (recorder_ != nullptr && !ended_) {
      recorder_->End(id_, sim_end_seconds);
    }
    ended_ = true;
  }

 private:
  TraceRecorder* recorder_ = nullptr;
  TraceRecorder::SpanId id_ = 0;
  double sim_begin_seconds_ = 0.0;
  bool ended_ = false;
};

}  // namespace gdp::obs

#endif  // GDP_OBS_TRACE_H_
