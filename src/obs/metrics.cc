#include "obs/metrics.h"

#include "util/check.h"

namespace gdp::obs {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

size_t Counter::ShardIndex() {
  static std::atomic<size_t> next_thread{0};
  thread_local const size_t slot =
      next_thread.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

MetricsRegistry::Entry* MetricsRegistry::GetEntry(std::string_view name,
                                                  MetricKind kind) {
  util::MutexLock lock(mu_);
  if (auto it = index_.find(name); it != index_.end()) {
    GDP_CHECK(it->second->kind == kind)
        << "metric '" << it->second->name << "' already registered as "
        << MetricKindName(it->second->kind) << ", requested as "
        << MetricKindName(kind);
    return it->second;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
  }
  Entry* raw = entry.get();
  entries_.push_back(std::move(entry));
  index_.emplace(raw->name, raw);
  return raw;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  return GetEntry(name, MetricKind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  return GetEntry(name, MetricKind::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  return GetEntry(name, MetricKind::kHistogram)->histogram.get();
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  util::MutexLock lock(mu_);
  std::vector<Sample> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    Sample s;
    s.name = entry->name;
    s.kind = entry->kind;
    switch (entry->kind) {
      case MetricKind::kCounter:
        s.value = static_cast<int64_t>(entry->counter->Value());
        break;
      case MetricKind::kGauge:
        s.value = entry->gauge->Value();
        break;
      case MetricKind::kHistogram:
        s.value = static_cast<int64_t>(entry->histogram->Count());
        s.sum = entry->histogram->Sum();
        s.max = entry->histogram->Max();
        s.p50 = entry->histogram->ValueAtQuantile(0.5);
        s.p99 = entry->histogram->ValueAtQuantile(0.99);
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  GDP_CHECK(&other != this) << "MergeFrom(self)";
  // Take a consistent view of `other` first; GetEntry below locks `mu_`, so
  // holding other.mu_ across both would order the two locks — copying the
  // sample list avoids holding them simultaneously.
  std::vector<const Entry*> src;
  {
    util::MutexLock lock(other.mu_);
    src.reserve(other.entries_.size());
    for (const auto& e : other.entries_) src.push_back(e.get());
  }
  for (const Entry* e : src) {
    switch (e->kind) {
      case MetricKind::kCounter:
        GetCounter(e->name)->Add(e->counter->Value());
        break;
      case MetricKind::kGauge:
        GetGauge(e->name)->SetMax(e->gauge->Value());
        break;
      case MetricKind::kHistogram: {
        Histogram* dst = GetHistogram(e->name);
        for (size_t b = 0; b < Histogram::kBuckets; ++b) {
          uint64_t n = e->histogram->BucketCount(b);
          if (n == 0) continue;
          dst->buckets_[b].fetch_add(n, std::memory_order_relaxed);
        }
        dst->count_.fetch_add(e->histogram->Count(),
                              std::memory_order_relaxed);
        dst->sum_.fetch_add(e->histogram->Sum(), std::memory_order_relaxed);
        uint64_t m = e->histogram->Max();
        uint64_t seen = dst->max_.load(std::memory_order_relaxed);
        while (m > seen && !dst->max_.compare_exchange_weak(
                               seen, m, std::memory_order_relaxed)) {
        }
        break;
      }
    }
  }
}

size_t MetricsRegistry::size() const {
  util::MutexLock lock(mu_);
  return entries_.size();
}

}  // namespace gdp::obs
