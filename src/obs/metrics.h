#ifndef GDP_OBS_METRICS_H_
#define GDP_OBS_METRICS_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace gdp::obs {

/// Shards per metric: concurrent writers land on (mostly) distinct cache
/// lines and the read side sums all shards. 16 covers the thread counts the
/// determinism contracts exercise without bloating idle registries.
inline constexpr size_t kMetricShards = 16;

/// The metric families a registry can hold.
enum class MetricKind { kCounter, kGauge, kHistogram };

/// Display name of a metric kind ("counter", "gauge", "histogram").
const char* MetricKindName(MetricKind kind);

/// Monotonic sum, sharded per thread. Increments are integers, so the
/// merged value is independent of which thread wrote into which shard and
/// of the merge order — the basis of the cross-thread-count determinism
/// contract on every simulated-cost counter.
class Counter {
 public:
  /// Adds `delta` to the calling thread's shard.
  void Add(uint64_t delta) {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Adds 1 to the calling thread's shard.
  void Increment() { Add(1); }

  /// The merged value: the sum over all shards.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  friend class MetricsRegistry;
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  /// Stable per-thread shard slot (threads are striped over kMetricShards).
  static size_t ShardIndex();
  std::array<Shard, kMetricShards> shards_;
};

/// A point-in-time signed value. Set() is last-write-wins (use it only from
/// serial sections); SetMax() is commutative and therefore safe — and
/// deterministic — under concurrent writers.
class Gauge {
 public:
  /// Overwrites the gauge. Only deterministic from serial code.
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }

  /// Raises the gauge to `value` if larger. Max commutes, so concurrent
  /// SetMax() calls converge to the same result in any interleaving.
  void SetMax(int64_t value) {
    int64_t seen = value_.load(std::memory_order_relaxed);
    while (value > seen &&
           !value_.compare_exchange_weak(seen, value,
                                         std::memory_order_relaxed)) {
    }
  }

  /// The current value.
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<int64_t> value_{0};
};

/// Power-of-two-bucketed distribution of non-negative integer samples
/// (bucket b holds values with bit_width b, i.e. [2^(b-1), 2^b)). All
/// internals are integer counts, so merged contents are independent of
/// observation interleaving.
class Histogram {
 public:
  /// Buckets: one per possible bit_width of a uint64_t (0..64).
  static constexpr size_t kBuckets = 65;

  /// Records one sample.
  void Observe(uint64_t value) {
    buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Number of samples observed.
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  /// Sum of all observed samples.
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Largest observed sample (0 when empty).
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }

  /// Samples in bucket `b` (values with bit_width b).
  uint64_t BucketCount(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Upper bound of the bucket holding the q-quantile sample (q in [0, 1]):
  /// the smallest power-of-two bucket boundary such that at least
  /// ceil(q * count) samples fall at or below it. Resolution is the bucket
  /// width (one bit of the value); 0 when the histogram is empty. Walks a
  /// relaxed snapshot of the buckets, so a concurrent Observe may or may
  /// not be included — fine for the reporting paths this serves.
  uint64_t ValueAtQuantile(double q) const {
    const uint64_t total = Count();
    if (total == 0) return 0;
    q = std::min(1.0, std::max(0.0, q));
    const uint64_t rank = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
    uint64_t seen = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      seen += BucketCount(b);
      if (seen >= rank) {
        // Bucket b holds values with bit_width b: [2^(b-1), 2^b).
        return b == 0 ? 0 : (b >= 64 ? ~0ULL : (1ULL << b) - 1);
      }
    }
    return Max();
  }

 private:
  friend class MetricsRegistry;
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Typed snapshot of a cache's registry-backed counters (PartitionCache,
/// engine::PlanCache). Replaces the raw hit/miss fields those caches used
/// to expose.
struct CacheStats {
  /// Lookups served from an existing entry.
  uint64_t hits = 0;
  /// Lookups that had to build the entry.
  uint64_t misses = 0;
  /// Lookups that skipped the cache entirely (e.g. timeline-recording
  /// cells, which must watch the ingress happen).
  uint64_t bypasses = 0;
};

/// A named collection of counters, gauges, and histograms.
///
/// Handles (Counter*/Gauge*/Histogram*) are registered on first use, have
/// stable addresses for the registry's lifetime, and are safe to write from
/// any thread (each metric is sharded per thread; see Counter). Snapshot()
/// merges the shards deterministically and reports metrics in registration
/// order. Lookup takes a lock — call Get*() once per site and keep the
/// handle, never per increment.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The counter named `name`, registered on first use. Dies if the name
  /// is already registered as a different kind.
  Counter* GetCounter(std::string_view name) GDP_EXCLUDES(mu_);

  /// The gauge named `name`, registered on first use.
  Gauge* GetGauge(std::string_view name) GDP_EXCLUDES(mu_);

  /// The histogram named `name`, registered on first use.
  Histogram* GetHistogram(std::string_view name) GDP_EXCLUDES(mu_);

  /// One merged metric in a Snapshot().
  struct Sample {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    /// Counter value / gauge value / histogram sample count.
    int64_t value = 0;
    /// Histogram only: sum and max of observed samples.
    uint64_t sum = 0;
    uint64_t max = 0;
    /// Histogram only: bucket-resolution quantiles
    /// (Histogram::ValueAtQuantile at 0.5 / 0.99).
    uint64_t p50 = 0;
    uint64_t p99 = 0;

    friend bool operator==(const Sample&, const Sample&) = default;
  };

  /// Merged values of every metric, in registration order. Shard merge is
  /// integer summation, so the result is independent of which threads wrote
  /// and in what order.
  std::vector<Sample> Snapshot() const GDP_EXCLUDES(mu_);

  /// Adds `other`'s metrics into this registry by name, registering names
  /// this registry has not seen in `other`'s registration order. Counters
  /// and histogram contents add; gauges take the maximum (the only
  /// commutative choice, so merging N per-worker registries is
  /// order-independent).
  void MergeFrom(const MetricsRegistry& other) GDP_EXCLUDES(mu_);

  /// Metrics registered so far.
  size_t size() const GDP_EXCLUDES(mu_);

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    // Exactly one of these is non-null, matching `kind`.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Finds or registers the entry for `name`; takes the lock itself. The
  /// returned pointer is stable (entries are never removed) and the metric
  /// handles it exposes are internally thread-safe, so callers hold no lock.
  Entry* GetEntry(std::string_view name, MetricKind kind) GDP_EXCLUDES(mu_);

  /// Guards registration: the entry list and the name index. The metric
  /// *values* are not guarded — Counter shards, Gauge, and Histogram are
  /// lock-free atomics written through stable handles.
  mutable util::Mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_
      GDP_GUARDED_BY(mu_);  // registration order
  std::map<std::string, Entry*, std::less<>> index_ GDP_GUARDED_BY(mu_);
};

}  // namespace gdp::obs

#endif  // GDP_OBS_METRICS_H_
