#ifndef GDP_OBS_CHROME_TRACE_H_
#define GDP_OBS_CHROME_TRACE_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "util/status.h"

namespace gdp::obs {

/// Renders every span in `recorder` as Chrome `trace_event` JSON (the
/// format chrome://tracing and Perfetto load): one complete event
/// (`"ph":"X"`) per span, wall clock in `ts`/`dur` (microseconds), the
/// span's track as `tid`, and the simulated clock plus all deterministic
/// integer args under `args`. Events are emitted grouped by track in begin
/// order — the canonical deterministic ordering.
std::string ToChromeTraceJson(const TraceRecorder& recorder);

/// A parsed JSON value — the minimal DOM ValidateChromeTraceJson and the
/// round-trip tests need. Numbers are held as doubles; object members keep
/// source order.
struct JsonValue {
  /// JSON value kinds.
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Kind of this value.
  Type type = Type::kNull;
  /// Payload for kBool.
  bool boolean = false;
  /// Payload for kNumber.
  double number = 0.0;
  /// Payload for kString (unescaped).
  std::string string;
  /// Payload for kArray.
  std::vector<JsonValue> array;
  /// Payload for kObject, in source order.
  std::vector<std::pair<std::string, JsonValue>> object;

  /// The member named `key`, or null when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses `text` as a single JSON document (strict: no trailing garbage,
/// no comments, strings must be valid escapes). Returns InvalidArgument
/// with a byte offset on malformed input.
util::StatusOr<JsonValue> ParseJson(std::string_view text);

/// Checks that `json` is a valid Chrome `trace_event` document: parses it,
/// requires a top-level object with a `traceEvents` array, and requires
/// every event to be an object carrying `name` (string), `ph` (string),
/// numeric `ts`/`dur`/`pid`/`tid`, and an `args` object. This is the
/// parser-check leg of the trace round-trip tests.
util::Status ValidateChromeTraceJson(std::string_view json);

}  // namespace gdp::obs

#endif  // GDP_OBS_CHROME_TRACE_H_
