#include "obs/chrome_trace.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

namespace gdp::obs {
namespace {

void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonDouble(double v, std::string* out) {
  // max_digits10 round-trips the double exactly; trace consumers reparse
  // the same bits the span carried.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
  // Bare exponent-less integers ("3") are still valid JSON numbers.
}

}  // namespace

std::string ToChromeTraceJson(const TraceRecorder& recorder) {
  const std::vector<TraceSpan> spans = recorder.SpansByTrack();
  std::string out;
  out.reserve(256 + spans.size() * 160);
  out.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  bool first = true;
  for (const TraceSpan& span : spans) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":");
    AppendJsonString(span.name, &out);
    out.append(",\"cat\":");
    AppendJsonString(span.category, &out);
    out.append(",\"ph\":\"X\",\"pid\":1,\"tid\":");
    out.append(std::to_string(span.track));
    out.append(",\"ts\":");
    AppendJsonDouble(span.wall_begin_us, &out);
    out.append(",\"dur\":");
    AppendJsonDouble(span.wall_dur_us, &out);
    out.append(",\"args\":{\"sim_begin_s\":");
    AppendJsonDouble(span.sim_begin_seconds, &out);
    out.append(",\"sim_end_s\":");
    AppendJsonDouble(span.sim_end_seconds, &out);
    out.append(",\"depth\":");
    out.append(std::to_string(span.depth));
    for (const auto& [key, value] : span.args) {
      out.push_back(',');
      AppendJsonString(key, &out);
      out.push_back(':');
      out.append(std::to_string(value));
    }
    out.append("}}");
  }
  out.append("]}");
  return out;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Strict recursive-descent JSON parser over a string_view.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  util::StatusOr<JsonValue> Parse() {
    JsonValue root;
    GDP_RETURN_IF_ERROR(ParseValue(&root, /*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  util::Status Error(std::string_view what) const {
    return util::Status::InvalidArgument("JSON parse error at byte " +
                                         std::to_string(pos_) + ": " +
                                         std::string(what));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  util::Status ParseLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("bad literal");
    }
    pos_ += word.size();
    return util::Status::Ok();
  }

  util::Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return util::Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("truncated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned int>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned int>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned int>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // Encode as UTF-8 (surrogate pairs are passed through unpaired —
          // the exporter only emits \u for C0 controls).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  util::Status ParseNumber(double* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    if (!ConsumeDigits()) return Error("expected digits");
    if (Consume('.')) {
      if (!ConsumeDigits()) return Error("expected fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!ConsumeDigits()) return Error("expected exponent digits");
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), *out);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return Error("unparseable number");
    }
    return util::Status::Ok();
  }

  bool ConsumeDigits() {
    const size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    return pos_ > start;
  }

  util::Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->type = JsonValue::Type::kObject;
      SkipWhitespace();
      if (Consume('}')) return util::Status::Ok();
      while (true) {
        SkipWhitespace();
        std::string key;
        GDP_RETURN_IF_ERROR(ParseString(&key));
        SkipWhitespace();
        if (!Consume(':')) return Error("expected ':'");
        JsonValue value;
        GDP_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
        out->object.emplace_back(std::move(key), std::move(value));
        SkipWhitespace();
        if (Consume('}')) return util::Status::Ok();
        if (!Consume(',')) return Error("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      out->type = JsonValue::Type::kArray;
      SkipWhitespace();
      if (Consume(']')) return util::Status::Ok();
      while (true) {
        JsonValue value;
        GDP_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
        out->array.push_back(std::move(value));
        SkipWhitespace();
        if (Consume(']')) return util::Status::Ok();
        if (!Consume(',')) return Error("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string);
    }
    if (c == 't') {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return ParseLiteral("true");
    }
    if (c == 'f') {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return ParseLiteral("false");
    }
    if (c == 'n') {
      out->type = JsonValue::Type::kNull;
      return ParseLiteral("null");
    }
    out->type = JsonValue::Type::kNumber;
    return ParseNumber(&out->number);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

util::Status RequireNumber(const JsonValue& event, std::string_view key,
                           size_t index) {
  const JsonValue* v = event.Find(key);
  if (v == nullptr || v->type != JsonValue::Type::kNumber) {
    return util::Status::InvalidArgument(
        "traceEvents[" + std::to_string(index) + "] missing numeric '" +
        std::string(key) + "'");
  }
  return util::Status::Ok();
}

}  // namespace

util::StatusOr<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

util::Status ValidateChromeTraceJson(std::string_view json) {
  GDP_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  if (root.type != JsonValue::Type::kObject) {
    return util::Status::InvalidArgument("trace root is not an object");
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    return util::Status::InvalidArgument("missing 'traceEvents' array");
  }
  for (size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& event = events->array[i];
    if (event.type != JsonValue::Type::kObject) {
      return util::Status::InvalidArgument(
          "traceEvents[" + std::to_string(i) + "] is not an object");
    }
    const JsonValue* name = event.Find("name");
    if (name == nullptr || name->type != JsonValue::Type::kString) {
      return util::Status::InvalidArgument(
          "traceEvents[" + std::to_string(i) + "] missing string 'name'");
    }
    const JsonValue* ph = event.Find("ph");
    if (ph == nullptr || ph->type != JsonValue::Type::kString ||
        ph->string.empty()) {
      return util::Status::InvalidArgument(
          "traceEvents[" + std::to_string(i) + "] missing string 'ph'");
    }
    GDP_RETURN_IF_ERROR(RequireNumber(event, "ts", i));
    GDP_RETURN_IF_ERROR(RequireNumber(event, "pid", i));
    GDP_RETURN_IF_ERROR(RequireNumber(event, "tid", i));
    if (ph->string == "X") {
      GDP_RETURN_IF_ERROR(RequireNumber(event, "dur", i));
    }
    const JsonValue* args = event.Find("args");
    if (args != nullptr && args->type != JsonValue::Type::kObject) {
      return util::Status::InvalidArgument(
          "traceEvents[" + std::to_string(i) + "] 'args' is not an object");
    }
  }
  return util::Status::Ok();
}

}  // namespace gdp::obs
