#ifndef GDP_PARTITION_STRATEGY_REGISTRATION_H_
#define GDP_PARTITION_STRATEGY_REGISTRATION_H_

/// The built-in strategy manifest. Each strategy translation unit defines
/// its Register*Strategies() hook, and EnsureBuiltinStrategiesRegistered()
/// (strategy_registry.cc) invokes them once, in the fixed order below.
///
/// An explicit manifest instead of static-initializer self-registration is
/// deliberate: static registrars in a static archive are dead-stripped
/// unless something references their TU, and their run order is
/// unspecified — both would break the registry's deterministic iteration
/// order, which tests and CSV output rely on. The cost is one line here
/// per strategy TU; external strategies (outside this library) still
/// register at runtime via StrategyRegistry::Register().

namespace gdp::partition {

void RegisterHashStrategies();        // hash_partitioners.cc
void RegisterConstrainedStrategies(); // constrained.cc
void RegisterGreedyStrategies();      // greedy.cc
void RegisterHybridStrategies();      // hybrid.cc
void RegisterChunkedStrategies();     // chunked.cc
void RegisterExpansionStrategies();   // expansion.cc (NE, SNE)
void RegisterTwoPhaseStrategies();    // two_phase.cc (2PS)
void RegisterHepStrategies();         // hep.cc

/// Idempotent; every registry query path calls this first.
void EnsureBuiltinStrategiesRegistered();

}  // namespace gdp::partition

#endif  // GDP_PARTITION_STRATEGY_REGISTRATION_H_
