#include "partition/hybrid.h"

#include <memory>
#include <utility>

#include "partition/strategy_registration.h"
#include "partition/strategy_registry.h"

#include <limits>

#include "util/hash.h"
#include "util/check.h"

namespace gdp::partition {

using util::Mix64;

HybridPartitioner::HybridPartitioner(const PartitionContext& context)
    : Partitioner(context),
      num_partitions_(context.num_partitions),
      seed_(context.seed),
      threshold_(context.hybrid_threshold),
      in_degree_(context.num_vertices, 0) {
  GDP_CHECK_GT(context.num_vertices, 0u);
}

MachineId HybridPartitioner::HashVertex(graph::VertexId v) const {
  return static_cast<MachineId>(Mix64(v ^ seed_) % num_partitions_);
}

void HybridPartitioner::PrepareForIngest(uint32_t num_loaders) {
  Partitioner::PrepareForIngest(num_loaders);
  while (in_degree_shards_.size() + 1 < num_loaders) {
    in_degree_shards_.emplace_back(in_degree_.size(), 0);
  }
}

void HybridPartitioner::EndPass(uint32_t pass) {
  if (pass != 0) return;
  // Integer addition commutes, so the merged degrees are independent of the
  // shard order (and of how edges were split across loaders).
  for (const std::vector<uint32_t>& shard : in_degree_shards_) {
    for (size_t v = 0; v < in_degree_.size(); ++v) {
      in_degree_[v] += shard[v];
    }
  }
  in_degree_shards_.clear();
}

MachineId HybridPartitioner::Assign(const graph::Edge& e, uint32_t pass,
                                    uint32_t loader) {
  if (pass == 0) {
    // Counting + provisional low-degree placement: every edge goes with its
    // destination, and we learn exact in-degrees along the way.
    AddWorkTicks(loader, 24);  // 1.2 units
    ++DegreeCell(loader, e.dst);
    return HashVertex(e.dst);
  }
  // Reassignment pass: edges whose destination turned out to be high-degree
  // move to the source hash (vertex-cut for the heavy vertices).
  AddWorkTicks(loader, 12);  // 0.6 units
  if (IsHighDegree(e.dst)) return HashVertex(e.src);
  return kKeepPlacement;
}

uint64_t HybridPartitioner::ApproxStateBytes() const {
  return in_degree_.size() * sizeof(uint32_t);
}

MachineId HybridPartitioner::PreferredMaster(graph::VertexId v) const {
  return HashVertex(v);
}

// ---------------------------------------------------------------------------
// Hybrid-Ginger
// ---------------------------------------------------------------------------

HybridGingerPartitioner::HybridGingerPartitioner(
    const PartitionContext& context)
    : HybridPartitioner(context),
      num_vertices_(context.num_vertices),
      nbr_partition_count_(
          static_cast<size_t>(context.num_vertices) * num_partitions_, 0),
      vertex_partition_(context.num_vertices, 0),
      ginger_target_(context.num_vertices, kKeepPlacement),
      partition_vertices_(num_partitions_, 0),
      partition_edges_(num_partitions_, 0) {
  for (graph::VertexId v = 0; v < num_vertices_; ++v) {
    vertex_partition_[v] = HashVertex(v);
  }
}

void HybridGingerPartitioner::PrepareForIngest(uint32_t num_loaders) {
  HybridPartitioner::PrepareForIngest(num_loaders);
  while (edge_shards_.size() + 1 < num_loaders) {
    edge_shards_.emplace_back();
    edge_shards_.back().partition_edges.assign(num_partitions_, 0);
  }
}

void HybridGingerPartitioner::EndPass(uint32_t pass) {
  if (pass == 0) {
    for (const EdgeCountShard& shard : edge_shards_) {
      total_edges_ += shard.total_edges;
      for (MachineId p = 0; p < num_partitions_; ++p) {
        partition_edges_[p] += shard.partition_edges[p];
      }
    }
    edge_shards_.clear();
  }
  HybridPartitioner::EndPass(pass);
}

void HybridGingerPartitioner::BeginPass(uint32_t pass) {
  if (pass == 2) {
    // Initialize balance state from the post-Hybrid placement: vertices are
    // homed at their hash, edges counted by where Hybrid put them.
    std::fill(partition_vertices_.begin(), partition_vertices_.end(), 0);
    for (graph::VertexId v = 0; v < num_vertices_; ++v) {
      ++partition_vertices_[vertex_partition_[v]];
    }
  }
}

MachineId HybridGingerPartitioner::Assign(const graph::Edge& e, uint32_t pass,
                                          uint32_t loader) {
  if (pass == 0) {
    ++TotalEdgesCell(loader);
    MachineId m = HybridPartitioner::Assign(e, 0, loader);
    ++PartitionEdgesCell(loader, m);
    return m;
  }
  if (pass == 1) {
    MachineId moved = HybridPartitioner::Assign(e, 1, loader);
    // Record where each in-neighbour of a low-degree destination is homed;
    // this is the |N_in(v) ∩ V_p| table the Ginger heuristic maximizes.
    if (!IsHighDegree(e.dst)) {
      size_t slot = static_cast<size_t>(e.dst) * num_partitions_ +
                    vertex_partition_[e.src];
      if (nbr_partition_count_[slot] !=
          std::numeric_limits<uint16_t>::max()) {
        ++nbr_partition_count_[slot];
      }
    }
    if (moved != kKeepPlacement) {
      // Keep |E_p| in sync with the Hybrid reassignment.
      MachineId old_m = HashVertex(e.dst);
      --partition_edges_[old_m];
      ++partition_edges_[moved];
    }
    AddWorkTicks(loader, 8);  // 0.4 units
    return moved;
  }
  GDP_CHECK_EQ(pass, 2u);
  AddWorkTicks(loader, 20);  // 1.0 units
  if (IsHighDegree(e.dst)) return kKeepPlacement;
  MachineId target = GingerTarget(e.dst, loader);
  MachineId old_m = HashVertex(e.dst);
  if (target == old_m) return kKeepPlacement;
  --partition_edges_[old_m];
  ++partition_edges_[target];
  return target;
}

MachineId HybridGingerPartitioner::GingerTarget(graph::VertexId v,
                                                uint32_t loader) {
  if (ginger_target_[v] != kKeepPlacement) return ginger_target_[v];
  AddWorkTicks(loader, kTicksPerWorkUnit * num_partitions_);

  // Remove v from its current partition while scoring (it is being moved).
  MachineId current = vertex_partition_[v];
  GDP_CHECK_GT(partition_vertices_[current], 0u);
  --partition_vertices_[current];

  double edge_weight = total_edges_ > 0
                           ? static_cast<double>(num_vertices_) /
                                 static_cast<double>(total_edges_)
                           : 0.0;
  double best_score = -std::numeric_limits<double>::infinity();
  MachineId best = current;
  size_t base = static_cast<size_t>(v) * num_partitions_;
  for (MachineId p = 0; p < num_partitions_; ++p) {
    double locality = static_cast<double>(nbr_partition_count_[base + p]);
    double balance =
        0.5 * (static_cast<double>(partition_vertices_[p]) +
               edge_weight * static_cast<double>(partition_edges_[p]));
    double score = locality - balance;
    if (score > best_score) {
      best_score = score;
      best = p;
    }
  }
  ++partition_vertices_[best];
  vertex_partition_[v] = best;
  ginger_target_[v] = best;
  return best;
}

uint64_t HybridGingerPartitioner::ApproxStateBytes() const {
  return HybridPartitioner::ApproxStateBytes() +
         nbr_partition_count_.size() * sizeof(uint16_t) +
         vertex_partition_.size() * sizeof(MachineId) +
         ginger_target_.size() * sizeof(MachineId) +
         (partition_vertices_.size() + partition_edges_.size()) *
             sizeof(uint64_t);
}

MachineId HybridGingerPartitioner::PreferredMaster(graph::VertexId v) const {
  // Low-degree vertices follow their Ginger move; high-degree vertices stay
  // at the hash location like Hybrid.
  if (!IsHighDegree(v) && ginger_target_[v] != kKeepPlacement) {
    return ginger_target_[v];
  }
  return vertex_partition_.empty() ? HashVertex(v) : vertex_partition_[v];
}


void RegisterHybridStrategies() {
  StrategyRegistry& registry = StrategyRegistry::Instance();
  registry.Register(StrategyInfo{
      .kind = StrategyKind::kHybrid,
      .name = "Hybrid",
      .traits = {.passes_required = 2,
                 .needs_degree_precompute = true,
                 .system_families = kFamilyPowerLyra,
                 .power_lyra_rank = 3,
                 .in_paper_roster = true,
                 .paper_roster_rank = 7},
      .factory = [](const PartitionContext& context)
          -> std::unique_ptr<Partitioner> {
        return std::make_unique<HybridPartitioner>(context);
      }});
  registry.Register(StrategyInfo{
      .kind = StrategyKind::kHybridGinger,
      .name = "H-Ginger",
      .aliases = {"Hybrid-Ginger"},
      .traits = {.passes_required = 3,
                 .parallel_safe = false,
                 .needs_degree_precompute = true,
                 .system_families = kFamilyPowerLyra,
                 .power_lyra_rank = 4,
                 .in_paper_roster = true,
                 .paper_roster_rank = 8},
      .factory = [](const PartitionContext& context)
          -> std::unique_ptr<Partitioner> {
        return std::make_unique<HybridGingerPartitioner>(context);
      }});
}

}  // namespace gdp::partition
