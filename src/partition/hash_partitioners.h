#ifndef GDP_PARTITION_HASH_PARTITIONERS_H_
#define GDP_PARTITION_HASH_PARTITIONERS_H_

#include <vector>

#include "partition/partitioner.h"

namespace gdp::partition {

/// PowerGraph/PowerLyra "Random" and GraphX "Canonical Random": the hash
/// ignores edge direction, so (u, v) and (v, u) land together (§5.2.1,
/// §7.2.1). Stateless, single pass, maximally parallel — and the highest
/// replication factor of the evaluated strategies.
class RandomPartitioner final : public Partitioner {
 public:
  explicit RandomPartitioner(const PartitionContext& context)
      : Partitioner(context),
        num_partitions_(context.num_partitions),
        seed_(context.seed) {}

  StrategyKind kind() const override { return StrategyKind::kRandom; }
  MachineId Assign(const graph::Edge& e, uint32_t pass,
                   uint32_t loader) override;

 private:
  uint32_t num_partitions_;
  uint64_t seed_;
};

/// GraphX "Random": hashes the *directed* pair, so (u, v) and (v, u) may
/// land apart (§7.2.1, §8.2.2). The thesis shows this is strictly worse
/// than canonical Random; we keep it to reproduce that finding.
class AsymmetricRandomPartitioner final : public Partitioner {
 public:
  explicit AsymmetricRandomPartitioner(const PartitionContext& context)
      : Partitioner(context),
        num_partitions_(context.num_partitions),
        seed_(context.seed) {}

  StrategyKind kind() const override {
    return StrategyKind::kAsymmetricRandom;
  }
  MachineId Assign(const graph::Edge& e, uint32_t pass,
                   uint32_t loader) override;

 private:
  uint32_t num_partitions_;
  uint64_t seed_;
};

/// GraphX 1D: hash by source vertex, colocating each vertex's out-edges
/// (§7.2.2). Equivalent to how Hybrid treats low-degree vertices, but for
/// *scatter* edges of natural applications.
class OneDPartitioner final : public Partitioner {
 public:
  explicit OneDPartitioner(const PartitionContext& context, bool by_target)
      : Partitioner(context),
        num_partitions_(context.num_partitions),
        seed_(context.seed),
        by_target_(by_target) {}

  StrategyKind kind() const override {
    return by_target_ ? StrategyKind::kOneDTarget : StrategyKind::kOneD;
  }
  MachineId Assign(const graph::Edge& e, uint32_t pass,
                   uint32_t loader) override;
  MachineId PreferredMaster(graph::VertexId v) const override;

 private:
  uint32_t num_partitions_;
  uint64_t seed_;
  bool by_target_;
};

/// GraphX 2D: machines form an s x s matrix with s = ceil(sqrt(N)); the
/// column comes from the source hash, the row from the destination hash,
/// and the cell is folded back onto N partitions (§7.2.3). Bounds the
/// replication factor by 2*sqrt(N) - 1 and — key for the PowerLyra hybrid
/// engine result in §8.2.3 — bounds the number of machines holding any
/// vertex's in-edges (and out-edges) by sqrt(N).
class TwoDPartitioner final : public Partitioner {
 public:
  explicit TwoDPartitioner(const PartitionContext& context);

  StrategyKind kind() const override { return StrategyKind::kTwoD; }
  MachineId Assign(const graph::Edge& e, uint32_t pass,
                   uint32_t loader) override;

  uint32_t side() const { return side_; }

 private:
  uint32_t num_partitions_;
  uint32_t side_;
  uint64_t seed_;
};

/// Degree-Based Hashing (Xie et al., NeurIPS 2014) — an extension beyond
/// the paper's evaluated set. One-pass and stateless apart from partial
/// degree counters: each edge is hashed by its *lower-degree* endpoint, so
/// low-degree vertices keep their edges together while hubs absorb the
/// replication — HDRF's goal at Random's ingress price. Sits between
/// Random and HDRF on both quality and cost; see bench_ablation_dbh.
class DbhPartitioner final : public Partitioner {
 public:
  explicit DbhPartitioner(const PartitionContext& context)
      : Partitioner(context),
        num_partitions_(context.num_partitions),
        seed_(context.seed),
        partial_degree_(context.num_vertices, 0) {}

  StrategyKind kind() const override { return StrategyKind::kDbh; }
  MachineId Assign(const graph::Edge& e, uint32_t pass,
                   uint32_t loader) override;
  /// DBH's degree counters are a single stream-order view shared by every
  /// loader (that is the published algorithm), so its one pass runs
  /// serially.
  bool PassIsParallelSafe(uint32_t pass) const override {
    (void)pass;
    return false;
  }
  uint64_t ApproxStateBytes() const override {
    return partial_degree_.size() * sizeof(uint32_t);
  }

 private:
  uint32_t num_partitions_;
  uint64_t seed_;
  std::vector<uint32_t> partial_degree_;
};

}  // namespace gdp::partition

#endif  // GDP_PARTITION_HASH_PARTITIONERS_H_
