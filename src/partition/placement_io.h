#ifndef GDP_PARTITION_PLACEMENT_IO_H_
#define GDP_PARTITION_PLACEMENT_IO_H_

#include <string>

#include "graph/edge_list.h"
#include "partition/distributed_graph.h"
#include "util/status.h"

namespace gdp::partition {

/// Persistence for partitionings. The paper (§5.4.3) points out that when a
/// graph is partitioned once, saved, and reused across jobs, the effective
/// compute/ingress ratio rises and low replication factor becomes the
/// priority. These helpers implement that workflow: save the placement
/// produced by one ingest, then rebuild the DistributedGraph later without
/// re-running the partitioner.
///
/// Format (plain text, versioned):
///   gdp-placement v1
///   <num_partitions> <num_machines> <num_vertices> <num_edges>
///   one "<edge_partition>" line per edge, in edge-list order
///   one "<master|-1>" line per vertex
struct PlacementFile {
  uint32_t num_partitions = 0;
  uint32_t num_machines = 0;
  graph::VertexId num_vertices = 0;
  uint64_t num_edges = 0;
  std::vector<sim::MachineId> edge_partition;
  std::vector<sim::MachineId> master;
};

/// Writes a DistributedGraph's placement (edge partitions + masters).
util::Status SavePlacement(const DistributedGraph& dg,
                           const std::string& path);

/// Reads a placement file; validates the header and element counts.
util::StatusOr<PlacementFile> LoadPlacement(const std::string& path);

/// Rebuilds a DistributedGraph from `edges` plus a saved placement.
/// Fails when the placement does not match the edge list's shape. The
/// replica tables, per-partition counts, and replication factor are
/// recomputed; the result is byte-for-byte equivalent to the ingest that
/// produced the placement.
util::StatusOr<DistributedGraph> ApplyPlacement(const graph::EdgeList& edges,
                                                const PlacementFile& file);

}  // namespace gdp::partition

#endif  // GDP_PARTITION_PLACEMENT_IO_H_
