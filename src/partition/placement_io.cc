#include "partition/placement_io.h"

#include <fstream>
#include <sstream>

namespace gdp::partition {

namespace {
constexpr char kMagic[] = "gdp-placement v1";
}  // namespace

util::Status SavePlacement(const DistributedGraph& dg,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::NotFound("cannot open for write: " + path);
  out << kMagic << "\n";
  out << dg.num_partitions << ' ' << dg.num_machines << ' '
      << dg.num_vertices << ' ' << dg.edges.size() << "\n";
  for (sim::MachineId p : dg.edge_partition) out << p << "\n";
  for (graph::VertexId v = 0; v < dg.num_vertices; ++v) {
    if (dg.master[v] == ReplicaTable::kInvalid) {
      out << "-1\n";
    } else {
      out << dg.master[v] << "\n";
    }
  }
  out.flush();
  if (!out) return util::Status::Internal("write failed: " + path);
  return util::Status::Ok();
}

util::StatusOr<PlacementFile> LoadPlacement(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::NotFound("cannot open: " + path);
  std::string magic;
  std::getline(in, magic);
  if (magic != kMagic) {
    return util::Status::InvalidArgument("bad placement header in " + path);
  }
  PlacementFile file;
  in >> file.num_partitions >> file.num_machines >> file.num_vertices >>
      file.num_edges;
  if (!in) return util::Status::InvalidArgument("bad counts in " + path);
  file.edge_partition.resize(file.num_edges);
  for (uint64_t i = 0; i < file.num_edges; ++i) {
    int64_t p = -1;
    in >> p;
    if (!in || p < 0 || p >= static_cast<int64_t>(file.num_partitions)) {
      return util::Status::InvalidArgument("bad edge partition in " + path);
    }
    file.edge_partition[i] = static_cast<sim::MachineId>(p);
  }
  file.master.resize(file.num_vertices);
  for (graph::VertexId v = 0; v < file.num_vertices; ++v) {
    int64_t m = -1;
    in >> m;
    if (!in || m >= static_cast<int64_t>(file.num_partitions)) {
      return util::Status::InvalidArgument("bad master in " + path);
    }
    file.master[v] = m < 0 ? ReplicaTable::kInvalid
                           : static_cast<sim::MachineId>(m);
  }
  return file;
}

util::StatusOr<DistributedGraph> ApplyPlacement(const graph::EdgeList& edges,
                                                const PlacementFile& file) {
  if (edges.num_edges() != file.num_edges) {
    return util::Status::FailedPrecondition(
        "placement edge count does not match the edge list");
  }
  if (edges.num_vertices() != file.num_vertices) {
    return util::Status::FailedPrecondition(
        "placement vertex count does not match the edge list");
  }
  DistributedGraph dg;
  dg.num_partitions = file.num_partitions;
  dg.num_machines = file.num_machines;
  dg.num_vertices = file.num_vertices;
  dg.edges = edges.edges();
  dg.edge_partition = file.edge_partition;
  dg.master = file.master;

  dg.replicas = ReplicaTable(dg.num_vertices, dg.num_partitions);
  dg.in_edge_partitions = ReplicaTable(dg.num_vertices, dg.num_partitions);
  dg.out_edge_partitions = ReplicaTable(dg.num_vertices, dg.num_partitions);
  dg.present.assign(dg.num_vertices, false);
  dg.partition_edge_count.assign(dg.num_partitions, 0);
  for (uint64_t i = 0; i < dg.edges.size(); ++i) {
    const graph::Edge& e = dg.edges[i];
    sim::MachineId p = dg.edge_partition[i];
    dg.replicas.Add(e.src, p);
    dg.replicas.Add(e.dst, p);
    dg.out_edge_partitions.Add(e.src, p);
    dg.in_edge_partitions.Add(e.dst, p);
    dg.present[e.src] = true;
    dg.present[e.dst] = true;
    ++dg.partition_edge_count[p];
  }
  uint64_t replica_total = 0;
  uint64_t present_count = 0;
  for (graph::VertexId v = 0; v < dg.num_vertices; ++v) {
    if (!dg.present[v]) continue;
    if (dg.master[v] == ReplicaTable::kInvalid) {
      return util::Status::FailedPrecondition(
          "present vertex has no master in placement");
    }
    ++present_count;
    dg.replicas.Add(v, dg.master[v]);
    replica_total += dg.replicas.Count(v);
  }
  dg.num_present_vertices = present_count;
  dg.replication_factor =
      present_count > 0 ? static_cast<double>(replica_total) / present_count
                        : 0.0;
  return dg;
}

}  // namespace gdp::partition
