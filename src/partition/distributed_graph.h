#ifndef GDP_PARTITION_DISTRIBUTED_GRAPH_H_
#define GDP_PARTITION_DISTRIBUTED_GRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/edge_list.h"
#include "partition/replica_table.h"

namespace gdp::partition {

/// A partitioned graph: every edge has a partition, every vertex a master
/// and a replica set. This is what the engines execute over; all of the
/// paper's metrics (replication factor, per-machine load, gather/scatter
/// locality) are functions of this structure.
struct DistributedGraph {
  uint32_t num_partitions = 0;
  /// Machines hosting the partitions. Partition p lives on machine
  /// p % num_machines (PowerGraph/PowerLyra: one partition per machine;
  /// GraphX: many partitions per machine, one per core).
  uint32_t num_machines = 0;

  graph::VertexId num_vertices = 0;
  std::vector<graph::Edge> edges;
  /// Partition of edges[i].
  std::vector<sim::MachineId> edge_partition;

  /// Partitions holding any replica of v (edge endpoint or master).
  ReplicaTable replicas;
  /// Partitions holding at least one in-edge (respectively out-edge) of v;
  /// used by the engines to count gather/scatter messages.
  ReplicaTable in_edge_partitions;
  ReplicaTable out_edge_partitions;

  /// Master partition per vertex (kInvalid for absent vertices).
  std::vector<sim::MachineId> master;
  /// Vertex appears in at least one edge.
  std::vector<bool> present;
  /// Number of present vertices.
  uint64_t num_present_vertices = 0;

  std::vector<uint64_t> partition_edge_count;

  /// Cached per-vertex degrees over `edges`, filled by BuildDegreeCache()
  /// at ingest time so the engines stop recomputing them per run. Empty on
  /// hand-assembled graphs; callers needing degrees must handle both.
  std::vector<uint64_t> out_degree;
  std::vector<uint64_t> in_degree;

  /// (Re)computes the degree caches from `edges`. Call after the edge
  /// vector is final.
  void BuildDegreeCache();

  /// True once BuildDegreeCache() has run against the current vertex count.
  bool HasDegreeCache() const {
    return out_degree.size() == num_vertices && in_degree.size() == num_vertices;
  }

  /// Average replicas per present vertex — the paper's headline
  /// partitioning-quality metric.
  double replication_factor = 0;

  /// Machine hosting partition p.
  sim::MachineId MachineOfPartition(sim::MachineId partition) const {
    return partition % num_machines;
  }

  /// Largest / mean partition size ratio (load balance).
  double EdgeBalanceRatio() const;
};

}  // namespace gdp::partition

#endif  // GDP_PARTITION_DISTRIBUTED_GRAPH_H_
