#include "partition/ingest.h"

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "graph/edge_block_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/phase_accumulator.h"
#include "util/hash.h"
#include "util/check.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace gdp::partition {

namespace {

/// Accounting scratch one loader fills during one pass. Indexed by loader
/// (not by pool lane): which lane runs a loader is scheduling-dependent,
/// the loader index is not. All counters are integers, so the pass-barrier
/// merge (in loader order) is independent of execution interleaving —
/// the basis of the bit-identical-at-any-thread-count contract.
struct LoaderScratch {
  sim::PhaseAccumulator acc;                 ///< work ticks + send/recv bytes
  std::vector<uint64_t> alloc_bytes;         ///< edge-record allocations
  std::vector<uint64_t> deferred_free_bytes; ///< moved edges' old copies
  uint64_t edges_moved = 0;

  void Reset(uint32_t num_machines) {
    acc.Reset(num_machines);
    alloc_bytes.assign(num_machines, 0);
    deferred_free_bytes.assign(num_machines, 0);
    edges_moved = 0;
  }
};

/// Finalize scratch for one contiguous edge-range shard. Bitset OR and
/// integer addition commute, so the merged tables/counters are independent
/// of the shard count and merge order.
struct TableShard {
  ReplicaTable replicas;
  ReplicaTable in_parts;
  ReplicaTable out_parts;
  std::vector<uint64_t> edge_count;
};

/// Vertices per master-selection stripe. Stripes write disjoint vertex
/// ranges (dg.master entries and ReplicaTable words are per-vertex), so
/// they run concurrently without synchronization.
constexpr uint64_t kMasterStripe = 4096;

/// DistributedGraph::EdgeBalanceRatio with the edge count supplied
/// explicitly — the same arithmetic in the same order, for graphs whose
/// flat edge vector was never materialized.
double EdgeBalanceFromCounts(const std::vector<uint64_t>& partition_edge_count,
                             uint64_t num_edges) {
  if (partition_edge_count.empty() || num_edges == 0) return 1.0;
  uint64_t max_count = *std::max_element(partition_edge_count.begin(),
                                         partition_edge_count.end());
  double mean = static_cast<double>(num_edges) /
                static_cast<double>(partition_edge_count.size());
  return mean > 0 ? static_cast<double>(max_count) / mean : 1.0;
}

/// Loader count: explicit option first, then the partitioner's configured
/// loaders (greedy strategies size their per-loader state from it), then
/// one loader per machine (the paper's setup).
uint32_t ResolveNumLoaders(const IngestOptions& options,
                           const Partitioner& partitioner,
                           uint32_t num_machines) {
  uint32_t num_loaders = options.num_loaders;
  if (num_loaders == 0) num_loaders = partitioner.context().num_loaders;
  if (num_loaders == 0) num_loaders = num_machines;
  return num_loaders;
}

uint32_t ResolveNumThreads(const IngestOptions& options,
                           uint32_t num_loaders) {
  uint32_t num_threads = options.exec.num_threads;
  if (num_threads == 0) num_threads = util::ThreadPool::DefaultThreadCount();
  return std::min(num_threads, num_loaders);
}

// ---------------------------------------------------------------------------
// Edge sources
// ---------------------------------------------------------------------------
// The pass loop and finalize are written against a Source: something that
// streams global edge positions [begin, end) in order, calling
// fn(i, edge_i). FlatSource is the original single-span path over the
// materialized vector; BlockSource feeds the same positions from the
// compressed EdgeBlockStore through a bounded ring of decoded blocks. The
// per-edge costs charged downstream are identical by construction, which is
// what makes the two paths bit-identical.

/// The flat path: edges live in one contiguous vector (copied into
/// dg.edges up front, exactly the pre-streaming behavior).
class FlatSource {
 public:
  explicit FlatSource(const graph::EdgeList& edges) : edges_(edges) {}

  uint64_t num_edges() const { return edges_.num_edges(); }
  graph::VertexId num_vertices() const { return edges_.num_vertices(); }
  bool Materialized() const { return true; }

  void InitEdges(std::vector<graph::Edge>* out) { *out = edges_.edges(); }
  void BeginStreamPass(uint32_t /*pass*/) {}
  void EndStreamPass() {}

  template <typename Fn>
  void StreamRange(uint32_t /*pass*/, uint32_t /*loader*/, uint64_t begin,
                   uint64_t end, Fn&& fn) const {
    const std::vector<graph::Edge>& edges = edges_.edges();
    for (uint64_t i = begin; i < end; ++i) fn(i, edges[i]);
  }

  template <typename Fn>
  void StreamShard(uint64_t begin, uint64_t end, Fn&& fn) const {
    StreamRange(0, 0, begin, end, fn);
  }

 private:
  const graph::EdgeList& edges_;
};

/// The streaming path: loaders consume their contiguous edge range block by
/// block from the compressed store. Each loader owns a small ring of
/// decoded-block buffers (slot for block sequence s = s mod depth). With
/// decode overlap, a crew of decoder threads fills ring slots ahead of the
/// consumers — double-buffering block decode against the partition kernels,
/// and running ahead of the single live consumer during serialized passes;
/// without it, each consumer decodes its next block inline into its own
/// scratch (same buffers, no overlap — the bench baseline).
///
/// Ownership protocol for a slot's buffer (why `buf` itself needs no
/// GDP_GUARDED_BY): after claiming sequence s under the mutex, exactly one
/// decoder writes slot s%depth until it marks it full; the consumer reads
/// it only after observing full under the mutex, and no decoder may reclaim
/// the slot until the consumer releases it (claims require
/// next_decode < consumed + depth). The mutex hand-offs order the accesses.
///
/// Determinism: the ring changes only *when* a block is decoded, never what
/// a consumer sees — loader l still visits positions [begin_l, end_l) in
/// exact stream order, so everything downstream is bit-identical to the
/// flat path.
class BlockSource {
 public:
  BlockSource(const graph::EdgeBlockStore& store, const IngestOptions& options,
              uint32_t num_loaders, uint32_t num_threads)
      : store_(store), num_loaders_(num_loaders) {
    block_bytes_ = static_cast<uint64_t>(store.block_size_edges()) *
                   sizeof(graph::Edge);
    overlap_ = options.overlap_decode && num_threads > 1;
    // Ring depth: the budget (covering all loaders' decoded buffers) sized
    // down, floored at one buffer per loader — the streaming minimum — and
    // capped where deeper look-ahead stops paying. Without a budget,
    // classic double buffering.
    uint64_t depth = 2;
    if (options.memory_budget_bytes != 0) {
      depth = options.memory_budget_bytes /
              (static_cast<uint64_t>(num_loaders) * block_bytes_);
      depth = std::clamp<uint64_t>(depth, 1, 8);
    }
    if (!overlap_) depth = 1;  // inline decode: one scratch per loader
    depth_ = static_cast<uint32_t>(depth);
    crew_size_ = overlap_ ? std::min(num_threads, 4u) : 0;
    rings_.resize(num_loaders);
    const uint64_t num_edges = store.num_edges();
    for (uint32_t l = 0; l < num_loaders; ++l) {
      const uint64_t begin = num_edges * l / num_loaders;
      const uint64_t end = num_edges * (l + 1) / num_loaders;
      Ring& r = rings_[l];
      if (begin < end) {
        r.first_block = begin / store.block_size_edges();
        r.num_blocks = (end - 1) / store.block_size_edges() - r.first_block + 1;
      }
      r.slots.resize(depth_);
    }
  }

  uint64_t num_edges() const { return store_.num_edges(); }
  graph::VertexId num_vertices() const { return store_.num_vertices(); }
  bool Materialized() const { return materialize_target_ != nullptr; }

  void set_materialize(bool materialize) { materialize_ = materialize; }

  void InitEdges(std::vector<graph::Edge>* out) {
    if (!materialize_) return;
    out->assign(store_.num_edges(), graph::Edge{});
    materialize_target_ = out;
  }

  /// Ring buffers the ledger accounts for: depth per loader with overlap,
  /// one inline scratch per loader without.
  uint64_t RingBuffers() const {
    return static_cast<uint64_t>(num_loaders_) * depth_;
  }
  uint64_t BlockBytes() const { return block_bytes_; }

  void BeginStreamPass(uint32_t /*pass*/) {
    if (!overlap_) return;
    {
      util::MutexLock lock(mu_);
      for (Ring& r : rings_) {
        r.next_decode = 0;
        r.consumed = 0;
        for (Slot& s : r.slots) {
          s.full = false;
          s.seq = 0;
        }
      }
    }
    crew_.reserve(crew_size_);
    for (uint32_t t = 0; t < crew_size_; ++t) {
      crew_.emplace_back([this, t] { DecodeLoop(t); });
    }
  }

  void EndStreamPass() {
    if (!overlap_) return;
    for (std::thread& t : crew_) t.join();
    crew_.clear();
    // Ledger conservation: every decoded buffer was handed back — the ring
    // drained, no slot still charged to a consumer.
    util::MutexLock lock(mu_);
    for (const Ring& r : rings_) {
      GDP_DCHECK_EQ(r.next_decode, r.num_blocks);
      GDP_DCHECK_EQ(r.consumed, r.num_blocks);
      for (const Slot& s : r.slots) {
        GDP_DCHECK(!s.full);
        GDP_DCHECK_LE(s.buf.size(), store_.block_size_edges());
      }
    }
  }

  template <typename Fn>
  void StreamRange(uint32_t pass, uint32_t l, uint64_t begin, uint64_t end,
                   Fn&& fn) {
    if (begin >= end) return;
    const uint64_t first = begin / store_.block_size_edges();
    const uint64_t last = (end - 1) / store_.block_size_edges();
    for (uint64_t b = first; b <= last; ++b) {
      const uint64_t seq = b - first;
      const std::vector<graph::Edge>& buf =
          overlap_ ? AcquireSlot(l, seq) : DecodeInline(l, b);
      const uint64_t block_begin = store_.BlockBegin(b);
      const uint64_t lo = std::max(begin, block_begin);
      const uint64_t hi = std::min(end, store_.BlockEnd(b));
      if (pass == 0 && materialize_target_ != nullptr) {
        // Loaders own disjoint position ranges, so these writes never
        // overlap; boundary blocks are decoded by both neighbors but each
        // copies only its own clip.
        std::copy(buf.begin() + static_cast<ptrdiff_t>(lo - block_begin),
                  buf.begin() + static_cast<ptrdiff_t>(hi - block_begin),
                  materialize_target_->begin() + static_cast<ptrdiff_t>(lo));
      }
      for (uint64_t i = lo; i < hi; ++i) fn(i, buf[i - block_begin]);
      if (overlap_) ReleaseSlot(l, seq);
    }
  }

  /// Finalize-shard streaming (no ring, no crew): decodes the blocks
  /// overlapping [begin, end) into a local buffer. Safe to call from
  /// concurrent shards — DecodeBlock is const and the buffer is local.
  template <typename Fn>
  void StreamShard(uint64_t begin, uint64_t end, Fn&& fn) const {
    if (begin >= end) return;
    std::vector<graph::Edge> buf;
    const uint64_t first = begin / store_.block_size_edges();
    const uint64_t last = (end - 1) / store_.block_size_edges();
    for (uint64_t b = first; b <= last; ++b) {
      store_.DecodeBlock(b, &buf);
      const uint64_t block_begin = store_.BlockBegin(b);
      const uint64_t lo = std::max(begin, block_begin);
      const uint64_t hi = std::min(end, store_.BlockEnd(b));
      for (uint64_t i = lo; i < hi; ++i) fn(i, buf[i - block_begin]);
    }
  }

 private:
  struct Slot {
    /// Decoded block contents. Unguarded by design: see the ownership
    /// protocol in the class comment.
    std::vector<graph::Edge> buf;
    uint64_t seq GDP_GUARDED_BY(mu_) = 0;  ///< which sequence fills the slot
    bool full GDP_GUARDED_BY(mu_) = false;
  };

  /// One loader's view of the store: its block range and decoded-slot ring.
  struct Ring {
    uint64_t first_block = 0;
    uint64_t num_blocks = 0;
    std::vector<Slot> slots;  ///< fixed layout; per-slot state guarded
    uint64_t next_decode GDP_GUARDED_BY(mu_) = 0;  ///< sequences claimed
    uint64_t consumed GDP_GUARDED_BY(mu_) = 0;     ///< sequences released
  };

  const std::vector<graph::Edge>& AcquireSlot(uint32_t l, uint64_t seq) {
    Ring& r = rings_[l];
    Slot& slot = r.slots[seq % depth_];
    util::MutexLock lock(mu_);
    while (!(slot.full && slot.seq == seq)) consume_cv_.Wait(mu_);
    return slot.buf;
  }

  void ReleaseSlot(uint32_t l, uint64_t seq) {
    Ring& r = rings_[l];
    util::MutexLock lock(mu_);
    r.slots[seq % depth_].full = false;
    ++r.consumed;
    decode_cv_.NotifyAll();
  }

  const std::vector<graph::Edge>& DecodeInline(uint32_t l, uint64_t block) {
    Slot& slot = rings_[l].slots[0];
    store_.DecodeBlock(block, &slot.buf);
    return slot.buf;
  }

  /// Picks the next decodable (loader, sequence): lowest unclaimed sequence
  /// of some loader whose ring has a free slot for it. Scans loaders
  /// round-robin from a caller-supplied start so crew threads spread across
  /// loaders instead of piling onto loader 0.
  bool FindDecodable(uint32_t start, uint32_t* l_out, uint64_t* seq_out)
      GDP_REQUIRES(mu_) {
    for (uint32_t k = 0; k < num_loaders_; ++k) {
      const uint32_t l = (start + k) % num_loaders_;
      Ring& r = rings_[l];
      if (r.next_decode < r.num_blocks && r.next_decode < r.consumed + depth_) {
        *l_out = l;
        *seq_out = r.next_decode;
        return true;
      }
    }
    return false;
  }

  bool AllClaimed() GDP_REQUIRES(mu_) {
    for (const Ring& r : rings_) {
      if (r.next_decode < r.num_blocks) return false;
    }
    return true;
  }

  void DecodeLoop(uint32_t thread_index) {
    for (;;) {
      uint32_t l = 0;
      uint64_t seq = 0;
      {
        util::MutexLock lock(mu_);
        for (;;) {
          if (FindDecodable(thread_index, &l, &seq)) break;
          if (AllClaimed()) return;
          // Nothing decodable: every incomplete ring is depth slots ahead
          // of its consumer. A consumer release reopens work.
          decode_cv_.Wait(mu_);
        }
        ++rings_[l].next_decode;  // claim (l, seq) exclusively
      }
      Ring& r = rings_[l];
      Slot& slot = r.slots[seq % depth_];
      store_.DecodeBlock(r.first_block + seq, &slot.buf);
      {
        util::MutexLock lock(mu_);
        slot.seq = seq;
        slot.full = true;
        consume_cv_.NotifyAll();
      }
    }
  }

  const graph::EdgeBlockStore& store_;
  uint32_t num_loaders_;
  uint64_t block_bytes_ = 0;
  bool overlap_ = false;
  uint32_t depth_ = 1;
  uint32_t crew_size_ = 0;
  bool materialize_ = true;
  std::vector<graph::Edge>* materialize_target_ = nullptr;
  std::vector<Ring> rings_;
  std::vector<std::thread> crew_;
  util::Mutex mu_;
  util::CondVar decode_cv_;   ///< consumers freed a slot
  util::CondVar consume_cv_;  ///< decoders filled a slot
};

// ---------------------------------------------------------------------------
// The pipeline, parameterized over the edge source
// ---------------------------------------------------------------------------

template <typename Source>
IngestResult IngestImpl(Source& source, Partitioner& partitioner,
                        sim::Cluster& cluster, const IngestOptions& options) {
  const uint64_t num_edges = source.num_edges();
  const uint32_t num_machines = cluster.num_machines();
  GDP_CHECK_GT(num_machines, 0u);
  const uint32_t num_loaders =
      ResolveNumLoaders(options, partitioner, num_machines);
  const uint32_t num_threads = ResolveNumThreads(options, num_loaders);

  // Resolved execution context (thread count + observability sinks). The
  // sinks only read simulated state, so attaching them cannot perturb the
  // bit-identical determinism contract.
  const obs::ExecContext& exec = options.exec;
  sim::Timeline* const timeline = exec.timeline;

  util::ThreadPool pool(num_threads);

  // Per-loader tick counters, registered upfront in loader order so the
  // registry's registration order is deterministic; fed at each pass
  // barrier from the loaders' integer accumulator totals.
  std::vector<obs::Counter*> loader_ticks;
  obs::Counter* edges_moved_counter = nullptr;
  obs::Counter* passes_counter = nullptr;
  if (exec.metrics != nullptr) {
    loader_ticks.reserve(num_loaders);
    for (uint32_t l = 0; l < num_loaders; ++l) {
      loader_ticks.push_back(exec.metrics->GetCounter(
          "ingress.loader" + std::to_string(l) + ".ticks"));
    }
    edges_moved_counter = exec.metrics->GetCounter("ingress.edges_moved");
    passes_counter = exec.metrics->GetCounter("ingress.passes");
  }
  obs::ScopedSpan ingress_span(exec.trace, exec.trace_track, "ingress",
                               "ingress", cluster.now_seconds());

  IngestResult result;
  DistributedGraph& dg = result.graph;
  dg.num_machines = num_machines;
  dg.num_vertices = source.num_vertices();
  source.InitEdges(&dg.edges);
  dg.edge_partition.assign(num_edges, 0);
  // The partition count is authoritative from the partitioner's context —
  // not rediscovered from assignments, which under-counts whenever a hash
  // strategy never emits the last partition id on a tiny input.
  const uint32_t num_partitions = partitioner.num_partitions();
  GDP_CHECK_GE(num_partitions, 1u);
  dg.num_partitions = num_partitions;

  const sim::ObjectSizes sizes;
  IngressReport& report = result.report;
  const double start_time = cluster.now_seconds();

  partitioner.PrepareForIngest(num_loaders);

  // Loader l handles the contiguous block [block_start(l), block_start(l+1)).
  auto block_start = [&](uint32_t l) -> uint64_t {
    return num_edges * l / num_loaders;
  };

  // Partitioner bookkeeping bytes currently charged to each machine. The
  // state is spread across loader machines (that is where degree counters
  // and replica views physically live during ingress) with the remainder
  // going to the lowest-indexed machines, so the charges conserve the total
  // exactly — num_machines need not divide the state size.
  std::vector<uint64_t> state_held(num_machines, 0);
  auto charge_state_delta = [&]() {
    const uint64_t state = partitioner.ApproxStateBytes();
    report.peak_state_bytes = std::max(report.peak_state_bytes, state);
    const uint64_t base = state / num_machines;
    const uint64_t remainder = state % num_machines;
    uint64_t distributed = 0;
    for (uint32_t m = 0; m < num_machines; ++m) {
      const uint64_t target = base + (m < remainder ? 1 : 0);
      if (target > state_held[m]) {
        cluster.machine(m).Allocate(target - state_held[m]);
      } else if (target < state_held[m]) {
        cluster.machine(m).Free(state_held[m] - target);
      }
      state_held[m] = target;
      distributed += target;
    }
    GDP_DCHECK_EQ(distributed, state);
  };

  std::vector<LoaderScratch> scratch(num_loaders);

  const uint32_t passes = partitioner.num_passes();
  for (uint32_t pass = 0; pass < passes; ++pass) {
    obs::ScopedSpan pass_span(exec.trace, exec.trace_track,
                              "pass " + std::to_string(pass), "ingress",
                              cluster.now_seconds());
    partitioner.BeginPass(pass);
    for (LoaderScratch& s : scratch) s.Reset(num_machines);
    source.BeginStreamPass(pass);

    auto run_loader = [&](uint32_t l) {
      LoaderScratch& s = scratch[l];
      const sim::MachineId loader_machine = l % num_machines;
      source.StreamRange(
          pass, l, block_start(l), block_start(l + 1),
          [&](uint64_t i, graph::Edge e) {
            MachineId assigned = partitioner.Assign(e, pass, l);
            s.acc.AddWorkUnits(
                loader_machine,
                kParseTicksPerEdge + partitioner.TakeAssignWorkTicks(l));
            if (pass == 0) {
              GDP_CHECK_NE(assigned, kKeepPlacement);
              GDP_DCHECK_LT(assigned, num_partitions);
              dg.edge_partition[i] = assigned;
              const sim::MachineId target = assigned % num_machines;
              s.alloc_bytes[target] += sizes.edge_record;
              if (target != loader_machine) {
                s.acc.ChargeSendBytes(loader_machine, sizes.edge_record);
                s.acc.ChargeReceiveBytes(target, sizes.edge_record);
              }
            } else if (assigned != kKeepPlacement &&
                       assigned != dg.edge_partition[i]) {
              // Reassignment: the edge moves between partitions. The copy at
              // the old machine (and the in-flight transfer buffer) is only
              // released when the pass completes, so multi-pass strategies
              // pay a transient memory overhead proportional to the edges
              // they move — the §6.4.2 effect.
              GDP_DCHECK_LT(assigned, num_partitions);
              const sim::MachineId old_machine =
                  dg.edge_partition[i] % num_machines;
              const sim::MachineId new_machine = assigned % num_machines;
              dg.edge_partition[i] = assigned;
              ++s.edges_moved;
              if (old_machine != new_machine) {
                s.acc.ChargeSendBytes(old_machine, sizes.edge_record);
                s.acc.ChargeReceiveBytes(new_machine, sizes.edge_record);
                s.alloc_bytes[new_machine] += sizes.edge_record;
                s.deferred_free_bytes[old_machine] += sizes.edge_record;
              }
            }
          });
    };

    if (num_threads > 1 && partitioner.PassIsParallelSafe(pass)) {
      pool.ParallelFor(num_loaders, [&](uint64_t chunk, uint32_t lane) {
        (void)lane;
        run_loader(static_cast<uint32_t>(chunk));
      });
    } else {
      for (uint32_t l = 0; l < num_loaders; ++l) run_loader(l);
    }
    source.EndStreamPass();
    partitioner.EndPass(pass);

    // Pass barrier: merge the loader scratches (loader order — integer
    // counters, so any order gives the same totals) and apply them in the
    // canonical order: allocations, then bytes + one closed-form work
    // charge per machine, then partitioner-state deltas, then the phase
    // barrier, then the deferred frees. Memory only grows within a pass
    // (frees are deferred), so the bulk allocations reproduce the same
    // per-machine peaks as per-edge allocation would.
    sim::PhaseAccumulator merged;
    merged.Reset(num_machines);
    std::vector<uint64_t> alloc(num_machines, 0);
    std::vector<uint64_t> frees(num_machines, 0);
    uint64_t pass_moved = 0;
    for (const LoaderScratch& s : scratch) {
      merged.Merge(s.acc);
      for (uint32_t m = 0; m < num_machines; ++m) {
        alloc[m] += s.alloc_bytes[m];
        frees[m] += s.deferred_free_bytes[m];
      }
      pass_moved += s.edges_moved;
    }
    report.edges_moved += pass_moved;
    if (exec.metrics != nullptr) {
      // Per-loader tick totals are integer sums inside one loader's lane —
      // identical at any thread count.
      for (uint32_t l = 0; l < num_loaders; ++l) {
        loader_ticks[l]->Add(scratch[l].acc.TotalWorkUnits());
      }
      edges_moved_counter->Add(pass_moved);
      passes_counter->Increment();
    }
    for (uint32_t m = 0; m < num_machines; ++m) {
      if (alloc[m] != 0) cluster.machine(m).Allocate(alloc[m]);
    }
    merged.FlushTo(cluster, Partitioner::kWorkPerTick);
    charge_state_delta();
    report.pass_seconds.push_back(cluster.EndPhase());
    if (timeline != nullptr) timeline->Sample(cluster);
    // Pass complete: release the moved edges' old copies.
    for (uint32_t m = 0; m < num_machines; ++m) {
      if (frees[m] != 0) cluster.machine(m).Free(frees[m]);
    }
    pass_span.Arg("ticks", static_cast<int64_t>(merged.TotalWorkUnits()));
    pass_span.Arg("sent_bytes",
                  static_cast<int64_t>(merged.TotalSentBytes()));
    pass_span.Arg("edges_moved", static_cast<int64_t>(pass_moved));
    pass_span.End(cluster.now_seconds());
  }

  // ---- Finalize: replica tables, masters, per-partition counts. ----------
  obs::ScopedSpan finalize_span(exec.trace, exec.trace_track, "finalize",
                                "ingress", cluster.now_seconds());
  dg.replicas = ReplicaTable(dg.num_vertices, num_partitions);
  dg.in_edge_partitions = ReplicaTable(dg.num_vertices, num_partitions);
  dg.out_edge_partitions = ReplicaTable(dg.num_vertices, num_partitions);
  dg.present.assign(dg.num_vertices, false);
  dg.partition_edge_count.assign(num_partitions, 0);

  // One table-building visit per edge. Reads the materialized vector when
  // it exists (the common case); otherwise streams the shard's range back
  // out of the compressed store.
  auto visit_shard = [&](TableShard& s, uint64_t begin, uint64_t end) {
    auto add = [&](uint64_t i, graph::Edge e) {
      const MachineId p = dg.edge_partition[i];
      s.replicas.Add(e.src, p);
      s.replicas.Add(e.dst, p);
      s.out_parts.Add(e.src, p);
      s.in_parts.Add(e.dst, p);
      ++s.edge_count[p];
    };
    if (source.Materialized()) {
      for (uint64_t i = begin; i < end; ++i) add(i, dg.edges[i]);
    } else {
      source.StreamShard(begin, end, add);
    }
  };

  if (num_threads > 1 && num_edges > 0) {
    // Edge-range shards build private tables, OR-merged word-wise.
    const uint32_t num_shards = num_threads;
    std::vector<TableShard> shards(num_shards);
    for (TableShard& s : shards) {
      s.replicas = ReplicaTable(dg.num_vertices, num_partitions);
      s.in_parts = ReplicaTable(dg.num_vertices, num_partitions);
      s.out_parts = ReplicaTable(dg.num_vertices, num_partitions);
      s.edge_count.assign(num_partitions, 0);
    }
    pool.ParallelFor(num_shards, [&](uint64_t shard, uint32_t lane) {
      (void)lane;
      visit_shard(shards[shard], num_edges * shard / num_shards,
                  num_edges * (shard + 1) / num_shards);
    });
    for (const TableShard& s : shards) {
      dg.replicas.MergeFrom(s.replicas);
      dg.in_edge_partitions.MergeFrom(s.in_parts);
      dg.out_edge_partitions.MergeFrom(s.out_parts);
      for (uint32_t p = 0; p < num_partitions; ++p) {
        dg.partition_edge_count[p] += s.edge_count[p];
      }
    }
  } else if (num_edges > 0) {
    TableShard whole;
    whole.replicas = ReplicaTable(dg.num_vertices, num_partitions);
    whole.in_parts = ReplicaTable(dg.num_vertices, num_partitions);
    whole.out_parts = ReplicaTable(dg.num_vertices, num_partitions);
    whole.edge_count.assign(num_partitions, 0);
    visit_shard(whole, 0, num_edges);
    dg.replicas.MergeFrom(whole.replicas);
    dg.in_edge_partitions.MergeFrom(whole.in_parts);
    dg.out_edge_partitions.MergeFrom(whole.out_parts);
    for (uint32_t p = 0; p < num_partitions; ++p) {
      dg.partition_edge_count[p] += whole.edge_count[p];
    }
  }
  // A vertex is present exactly when some partition got one of its edges.
  for (graph::VertexId v = 0; v < dg.num_vertices; ++v) {
    dg.present[v] = dg.replicas.First(v) != ReplicaTable::kInvalid;
  }

  // Master selection + replica-memory accounting, striped over vertices.
  // Each stripe owns a disjoint vertex range: the master array entries and
  // the replica-bitset words it touches belong to its own vertices, and the
  // cross-stripe aggregates (replica/present counts, per-machine replica
  // bytes) are integers summed at the join.
  dg.master.assign(dg.num_vertices, ReplicaTable::kInvalid);
  const uint64_t num_stripes =
      (static_cast<uint64_t>(dg.num_vertices) + kMasterStripe - 1) /
      kMasterStripe;
  std::vector<uint64_t> stripe_replica_total(num_stripes, 0);
  std::vector<uint64_t> stripe_present_count(num_stripes, 0);
  std::vector<std::vector<uint64_t>> stripe_replica_bytes(
      num_stripes, std::vector<uint64_t>(num_machines, 0));
  auto run_stripe = [&](uint64_t stripe) {
    uint64_t replica_total = 0;
    uint64_t present_count = 0;
    std::vector<uint64_t>& replica_bytes = stripe_replica_bytes[stripe];
    const graph::VertexId begin =
        static_cast<graph::VertexId>(stripe * kMasterStripe);
    const graph::VertexId end = static_cast<graph::VertexId>(
        std::min<uint64_t>(dg.num_vertices, (stripe + 1) * kMasterStripe));
    for (graph::VertexId v = begin; v < end; ++v) {
      if (!dg.present[v]) continue;
      ++present_count;
      MachineId m = ReplicaTable::kInvalid;
      if (options.use_partitioner_master_preference) {
        MachineId pref = partitioner.PreferredMaster(v);
        if (pref != kKeepPlacement) m = pref % num_partitions;
      }
      if (m == ReplicaTable::kInvalid) {
        if (options.master_policy == MasterPolicy::kVertexHash) {
          m = static_cast<MachineId>(util::Mix64(v ^ options.seed) %
                                     num_partitions);
        } else {
          uint32_t count = dg.replicas.Count(v);
          m = dg.replicas.Select(
              v,
              static_cast<uint32_t>(util::Mix64(v ^ options.seed) % count));
        }
      }
      dg.master[v] = m;
      dg.replicas.Add(v, m);  // ensure the master location holds a replica
      replica_total += dg.replicas.Count(v);
      // Replica memory: one vertex record per master, one mirror record per
      // additional replica, charged to the hosting machines.
      dg.replicas.ForEach(v, [&](MachineId p) {
        const uint64_t bytes =
            p == m ? sizes.vertex_record : sizes.mirror_record;
        replica_bytes[dg.MachineOfPartition(p)] += bytes;
      });
    }
    stripe_replica_total[stripe] = replica_total;
    stripe_present_count[stripe] = present_count;
  };
  if (num_threads > 1) {
    pool.ParallelFor(num_stripes, [&](uint64_t stripe, uint32_t lane) {
      (void)lane;
      run_stripe(stripe);
    });
  } else {
    for (uint64_t stripe = 0; stripe < num_stripes; ++stripe) {
      run_stripe(stripe);
    }
  }

  uint64_t replica_total = 0;
  uint64_t present_count = 0;
  std::vector<uint64_t> replica_bytes(num_machines, 0);
  for (uint64_t stripe = 0; stripe < num_stripes; ++stripe) {
    replica_total += stripe_replica_total[stripe];
    present_count += stripe_present_count[stripe];
    for (uint32_t m = 0; m < num_machines; ++m) {
      replica_bytes[m] += stripe_replica_bytes[stripe][m];
    }
  }
  dg.num_present_vertices = present_count;
  if (source.Materialized()) {
    dg.BuildDegreeCache();
  } else {
    // Same integer counts, streamed from the store instead of dg.edges.
    dg.out_degree.assign(dg.num_vertices, 0);
    dg.in_degree.assign(dg.num_vertices, 0);
    source.StreamShard(0, num_edges, [&](uint64_t, graph::Edge e) {
      ++dg.out_degree[e.src];
      ++dg.in_degree[e.dst];
    });
  }
  dg.replication_factor =
      present_count > 0
          ? static_cast<double>(replica_total) / present_count
          : 0.0;

  for (uint32_t m = 0; m < num_machines; ++m) {
    if (replica_bytes[m] != 0) cluster.machine(m).Allocate(replica_bytes[m]);
  }
  // Per-vertex finalize work (building routing tables) on the masters.
  for (uint32_t m = 0; m < num_machines; ++m) {
    cluster.machine(m).AddWork(
        static_cast<double>(present_count) / num_machines);
  }
  report.pass_seconds.push_back(cluster.EndPhase());
  if (timeline != nullptr) timeline->Sample(cluster);
  finalize_span.Arg("present_vertices",
                    static_cast<int64_t>(present_count));
  finalize_span.Arg("replica_total", static_cast<int64_t>(replica_total));
  finalize_span.End(cluster.now_seconds());

  // Ingress done: the partitioner's transient state is released — exactly
  // the bytes each machine holds, so nothing leaks into steady state.
  for (uint32_t m = 0; m < num_machines; ++m) {
    if (state_held[m] != 0) cluster.machine(m).Free(state_held[m]);
    state_held[m] = 0;
  }
  if (timeline != nullptr) {
    timeline->Sample(cluster);
    timeline->Mark(cluster, "ingress-end");
  }

  report.ingress_seconds = cluster.now_seconds() - start_time;
  report.replication_factor = dg.replication_factor;
  report.edge_balance_ratio =
      source.Materialized()
          ? dg.EdgeBalanceRatio()
          : EdgeBalanceFromCounts(dg.partition_edge_count, num_edges);
  ingress_span.Arg("edges", static_cast<int64_t>(num_edges));
  ingress_span.Arg("edges_moved", static_cast<int64_t>(report.edges_moved));
  ingress_span.End(cluster.now_seconds());
  return result;
}

}  // namespace

IngestResult Ingest(const graph::EdgeList& edges, Partitioner& partitioner,
                    sim::Cluster& cluster, const IngestOptions& options) {
  FlatSource source(edges);
  return IngestImpl(source, partitioner, cluster, options);
}

IngestResult Ingest(const graph::EdgeBlockStore& store,
                    Partitioner& partitioner, sim::Cluster& cluster,
                    const IngestOptions& options) {
  const uint32_t num_machines = cluster.num_machines();
  GDP_CHECK_GT(num_machines, 0u);
  const uint32_t num_loaders =
      ResolveNumLoaders(options, partitioner, num_machines);
  const uint32_t num_threads = ResolveNumThreads(options, num_loaders);
  BlockSource source(store, options, num_loaders, num_threads);
  source.set_materialize(options.materialize_edges);
  IngestResult result = IngestImpl(source, partitioner, cluster, options);
  if (options.memory_stats != nullptr) {
    IngestMemoryStats& stats = *options.memory_stats;
    stats.block_bytes = source.BlockBytes();
    stats.ring_buffers = source.RingBuffers();
    stats.ring_bytes = stats.ring_buffers * stats.block_bytes;
    stats.peak_state_bytes = result.report.peak_state_bytes;
    stats.peak_ledger_bytes = stats.ring_bytes + stats.peak_state_bytes;
    stats.store_resident_bytes = store.ResidentBytes();
  }
  return result;
}

IngestResult IngestWithStrategy(const graph::EdgeList& edges,
                                StrategyKind kind,
                                const PartitionContext& context,
                                sim::Cluster& cluster,
                                const IngestOptions& options) {
  PartitionContext ctx = context;
  if (ctx.num_vertices == 0) ctx.num_vertices = edges.num_vertices();
  // Budget-aware strategies read the same knob the streaming pipeline
  // honors; a context that already carries a budget wins.
  if (ctx.memory_budget_bytes == 0) {
    ctx.memory_budget_bytes = options.memory_budget_bytes;
  }
  std::unique_ptr<Partitioner> partitioner = MakePartitioner(kind, ctx);
  if (options.use_block_store) {
    graph::EdgeBlockStore::Options store_options;
    if (options.block_size_edges != 0) {
      store_options.block_size_edges = options.block_size_edges;
    }
    const graph::EdgeBlockStore store =
        graph::EdgeBlockStore::FromEdges(edges, store_options);
    return Ingest(store, *partitioner, cluster, options);
  }
  return Ingest(edges, *partitioner, cluster, options);
}

}  // namespace gdp::partition
