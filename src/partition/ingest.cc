#include "partition/ingest.h"

#include <algorithm>

#include "util/hash.h"
#include "util/check.h"

namespace gdp::partition {

namespace {

/// Per-pass ingress CPU cost of reading/deserializing one edge from the
/// input block, independent of strategy. Text edge lists cost tens of
/// simple operations per edge to scan and parse — far more than one hash —
/// which is why hash and greedy strategies have comparable ingress on
/// low-degree graphs (Fig 5.7): parsing dominates until replica sets get
/// large, and why ingress rivals or exceeds compute for short jobs
/// (Table 5.1, and the LFGraph observation cited in Chapter 1).
constexpr double kParseWorkPerEdge = 50.0;

}  // namespace

IngestResult Ingest(const graph::EdgeList& edges, Partitioner& partitioner,
                    sim::Cluster& cluster, const IngestOptions& options) {
  const uint64_t num_edges = edges.num_edges();
  const uint32_t num_machines = cluster.num_machines();
  GDP_CHECK_GT(num_machines, 0u);
  // Loader count: explicit option first, then the partitioner's configured
  // loaders (greedy strategies size their per-loader state from it), then
  // one loader per machine (the paper's setup).
  uint32_t num_loaders = options.num_loaders;
  if (num_loaders == 0) num_loaders = partitioner.context().num_loaders;
  if (num_loaders == 0) num_loaders = num_machines;

  IngestResult result;
  DistributedGraph& dg = result.graph;
  // The partitioner was built from a PartitionContext whose num_partitions
  // we cannot see here; recover it lazily from assignments. To keep the
  // structure simple we require callers to use IngestWithStrategy or pass a
  // cluster whose machine count equals the partition count; the partition
  // count is discovered below as max assigned + 1 is fragile, so we instead
  // thread it through the replica tables sized at finalize time.
  dg.num_machines = num_machines;
  dg.num_vertices = edges.num_vertices();
  dg.edges = edges.edges();
  dg.edge_partition.assign(num_edges, 0);

  const sim::ObjectSizes sizes;
  IngressReport& report = result.report;
  const double start_time = cluster.now_seconds();

  // Loader l handles the contiguous block [block_start(l), block_start(l+1)).
  auto block_start = [&](uint32_t l) -> uint64_t {
    return num_edges * l / num_loaders;
  };

  uint64_t prev_state_bytes = 0;
  auto charge_state_delta = [&]() {
    uint64_t state = partitioner.ApproxStateBytes();
    report.peak_state_bytes = std::max(report.peak_state_bytes, state);
    // Spread bookkeeping across loader machines (that is where degree
    // counters and replica views physically live during ingress).
    if (state > prev_state_bytes) {
      uint64_t delta = (state - prev_state_bytes) / num_machines;
      for (uint32_t m = 0; m < num_machines; ++m) {
        cluster.machine(m).Allocate(delta);
      }
    } else if (state < prev_state_bytes) {
      uint64_t delta = (prev_state_bytes - state) / num_machines;
      for (uint32_t m = 0; m < num_machines; ++m) {
        cluster.machine(m).Free(delta);
      }
    }
    prev_state_bytes = state;
  };

  const uint32_t passes = partitioner.num_passes();
  uint32_t max_partition_seen = 0;
  std::vector<uint64_t> deferred_frees(num_machines, 0);
  for (uint32_t pass = 0; pass < passes; ++pass) {
    partitioner.BeginPass(pass);
    std::fill(deferred_frees.begin(), deferred_frees.end(), 0);
    for (uint32_t l = 0; l < num_loaders; ++l) {
      sim::Machine& loader_machine = cluster.machine(l % num_machines);
      const uint64_t begin = block_start(l);
      const uint64_t end = block_start(l + 1);
      for (uint64_t i = begin; i < end; ++i) {
        const graph::Edge& e = dg.edges[i];
        MachineId assigned = partitioner.Assign(e, pass, l);
        loader_machine.AddWork(kParseWorkPerEdge +
                               partitioner.TakeAssignWork());
        if (pass == 0) {
          GDP_CHECK_NE(assigned, kKeepPlacement);
          max_partition_seen = std::max(max_partition_seen, assigned);
          dg.edge_partition[i] = assigned;
          sim::MachineId target = assigned % num_machines;
          cluster.machine(target).Allocate(sizes.edge_record);
          if (target != l % num_machines) {
            loader_machine.ChargePhaseBytes(sizes.edge_record);
            cluster.machine(target).ReceiveBytes(sizes.edge_record);
          }
        } else if (assigned != kKeepPlacement &&
                   assigned != dg.edge_partition[i]) {
          // Reassignment: the edge moves between partitions. The copy at
          // the old machine (and the in-flight transfer buffer) is only
          // released when the pass completes, so multi-pass strategies pay
          // a transient memory overhead proportional to the edges they
          // move — the §6.4.2 effect.
          max_partition_seen = std::max(max_partition_seen, assigned);
          sim::MachineId old_machine =
              dg.edge_partition[i] % num_machines;
          sim::MachineId new_machine = assigned % num_machines;
          dg.edge_partition[i] = assigned;
          ++report.edges_moved;
          if (old_machine != new_machine) {
            cluster.machine(old_machine).ChargePhaseBytes(sizes.edge_record);
            cluster.machine(new_machine).ReceiveBytes(sizes.edge_record);
            cluster.machine(new_machine).Allocate(sizes.edge_record);
            deferred_frees[old_machine] += sizes.edge_record;
          }
        }
      }
    }
    charge_state_delta();
    report.pass_seconds.push_back(cluster.EndPhase());
    if (options.timeline != nullptr) options.timeline->Sample(cluster);
    // Pass complete: release the moved edges' old copies.
    for (uint32_t m = 0; m < num_machines; ++m) {
      cluster.machine(m).Free(deferred_frees[m]);
    }
  }

  dg.num_partitions = max_partition_seen + 1;
  // Hash strategies may never emit the last partition id on tiny inputs;
  // prefer the loader hint: partitions >= machines always.
  dg.num_partitions = std::max(dg.num_partitions, num_machines);

  // ---- Finalize: replica tables, masters, per-partition counts. ----------
  dg.replicas = ReplicaTable(dg.num_vertices, dg.num_partitions);
  dg.in_edge_partitions = ReplicaTable(dg.num_vertices, dg.num_partitions);
  dg.out_edge_partitions = ReplicaTable(dg.num_vertices, dg.num_partitions);
  dg.present.assign(dg.num_vertices, false);
  dg.partition_edge_count.assign(dg.num_partitions, 0);
  for (uint64_t i = 0; i < num_edges; ++i) {
    const graph::Edge& e = dg.edges[i];
    MachineId p = dg.edge_partition[i];
    dg.replicas.Add(e.src, p);
    dg.replicas.Add(e.dst, p);
    dg.out_edge_partitions.Add(e.src, p);
    dg.in_edge_partitions.Add(e.dst, p);
    dg.present[e.src] = true;
    dg.present[e.dst] = true;
    ++dg.partition_edge_count[p];
  }

  dg.master.assign(dg.num_vertices, ReplicaTable::kInvalid);
  uint64_t replica_total = 0;
  uint64_t present_count = 0;
  for (graph::VertexId v = 0; v < dg.num_vertices; ++v) {
    if (!dg.present[v]) continue;
    ++present_count;
    MachineId m = ReplicaTable::kInvalid;
    if (options.use_partitioner_master_preference) {
      MachineId pref = partitioner.PreferredMaster(v);
      if (pref != kKeepPlacement) m = pref % dg.num_partitions;
    }
    if (m == ReplicaTable::kInvalid) {
      if (options.master_policy == MasterPolicy::kVertexHash) {
        m = static_cast<MachineId>(util::Mix64(v ^ options.seed) %
                                   dg.num_partitions);
      } else {
        uint32_t count = dg.replicas.Count(v);
        m = dg.replicas.Select(
            v, static_cast<uint32_t>(util::Mix64(v ^ options.seed) % count));
      }
    }
    dg.master[v] = m;
    dg.replicas.Add(v, m);  // ensure the master location holds a replica
    replica_total += dg.replicas.Count(v);
  }
  dg.num_present_vertices = present_count;
  dg.BuildDegreeCache();
  dg.replication_factor =
      present_count > 0
          ? static_cast<double>(replica_total) / present_count
          : 0.0;

  // Replica memory: one vertex record per master, one mirror record per
  // additional replica, charged to the hosting machines.
  for (graph::VertexId v = 0; v < dg.num_vertices; ++v) {
    if (!dg.present[v]) continue;
    for (MachineId p : dg.replicas.Machines(v)) {
      uint64_t bytes = p == dg.master[v] ? sizes.vertex_record
                                         : sizes.mirror_record;
      cluster.machine(dg.MachineOfPartition(p)).Allocate(bytes);
    }
  }
  // Per-vertex finalize work (building routing tables) on the masters.
  for (uint32_t m = 0; m < num_machines; ++m) {
    cluster.machine(m).AddWork(
        static_cast<double>(present_count) / num_machines);
  }
  report.pass_seconds.push_back(cluster.EndPhase());
  if (options.timeline != nullptr) options.timeline->Sample(cluster);

  // Ingress done: the partitioner's transient state is released.
  if (prev_state_bytes > 0) {
    uint64_t delta = prev_state_bytes / num_machines;
    for (uint32_t m = 0; m < num_machines; ++m) {
      cluster.machine(m).Free(delta);
    }
  }
  if (options.timeline != nullptr) {
    options.timeline->Sample(cluster);
    options.timeline->Mark(cluster, "ingress-end");
  }

  report.ingress_seconds = cluster.now_seconds() - start_time;
  report.replication_factor = dg.replication_factor;
  report.edge_balance_ratio = dg.EdgeBalanceRatio();
  return result;
}

IngestResult IngestWithStrategy(const graph::EdgeList& edges,
                                StrategyKind kind,
                                const PartitionContext& context,
                                sim::Cluster& cluster,
                                const IngestOptions& options) {
  PartitionContext ctx = context;
  if (ctx.num_vertices == 0) ctx.num_vertices = edges.num_vertices();
  std::unique_ptr<Partitioner> partitioner = MakePartitioner(kind, ctx);
  return Ingest(edges, *partitioner, cluster, options);
}

}  // namespace gdp::partition
