#include "partition/ingest.h"

#include <algorithm>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/phase_accumulator.h"
#include "util/hash.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace gdp::partition {

namespace {

/// Accounting scratch one loader fills during one pass. Indexed by loader
/// (not by pool lane): which lane runs a loader is scheduling-dependent,
/// the loader index is not. All counters are integers, so the pass-barrier
/// merge (in loader order) is independent of execution interleaving —
/// the basis of the bit-identical-at-any-thread-count contract.
struct LoaderScratch {
  sim::PhaseAccumulator acc;                 ///< work ticks + send/recv bytes
  std::vector<uint64_t> alloc_bytes;         ///< edge-record allocations
  std::vector<uint64_t> deferred_free_bytes; ///< moved edges' old copies
  uint64_t edges_moved = 0;

  void Reset(uint32_t num_machines) {
    acc.Reset(num_machines);
    alloc_bytes.assign(num_machines, 0);
    deferred_free_bytes.assign(num_machines, 0);
    edges_moved = 0;
  }
};

/// Finalize scratch for one contiguous edge-range shard. Bitset OR and
/// integer addition commute, so the merged tables/counters are independent
/// of the shard count and merge order.
struct TableShard {
  ReplicaTable replicas;
  ReplicaTable in_parts;
  ReplicaTable out_parts;
  std::vector<uint64_t> edge_count;
};

/// Vertices per master-selection stripe. Stripes write disjoint vertex
/// ranges (dg.master entries and ReplicaTable words are per-vertex), so
/// they run concurrently without synchronization.
constexpr uint64_t kMasterStripe = 4096;

}  // namespace

IngestResult Ingest(const graph::EdgeList& edges, Partitioner& partitioner,
                    sim::Cluster& cluster, const IngestOptions& options) {
  const uint64_t num_edges = edges.num_edges();
  const uint32_t num_machines = cluster.num_machines();
  GDP_CHECK_GT(num_machines, 0u);
  // Loader count: explicit option first, then the partitioner's configured
  // loaders (greedy strategies size their per-loader state from it), then
  // one loader per machine (the paper's setup).
  uint32_t num_loaders = options.num_loaders;
  if (num_loaders == 0) num_loaders = partitioner.context().num_loaders;
  if (num_loaders == 0) num_loaders = num_machines;

  // Resolved execution context (thread count + observability sinks). The
  // sinks only read simulated state, so attaching them cannot perturb the
  // bit-identical determinism contract.
  const obs::ExecContext& exec = options.exec;
  sim::Timeline* const timeline = exec.timeline;

  uint32_t num_threads = exec.num_threads;
  if (num_threads == 0) num_threads = util::ThreadPool::DefaultThreadCount();
  num_threads = std::min(num_threads, num_loaders);
  util::ThreadPool pool(num_threads);

  // Per-loader tick counters, registered upfront in loader order so the
  // registry's registration order is deterministic; fed at each pass
  // barrier from the loaders' integer accumulator totals.
  std::vector<obs::Counter*> loader_ticks;
  obs::Counter* edges_moved_counter = nullptr;
  obs::Counter* passes_counter = nullptr;
  if (exec.metrics != nullptr) {
    loader_ticks.reserve(num_loaders);
    for (uint32_t l = 0; l < num_loaders; ++l) {
      loader_ticks.push_back(exec.metrics->GetCounter(
          "ingress.loader" + std::to_string(l) + ".ticks"));
    }
    edges_moved_counter = exec.metrics->GetCounter("ingress.edges_moved");
    passes_counter = exec.metrics->GetCounter("ingress.passes");
  }
  obs::ScopedSpan ingress_span(exec.trace, exec.trace_track, "ingress",
                               "ingress", cluster.now_seconds());

  IngestResult result;
  DistributedGraph& dg = result.graph;
  dg.num_machines = num_machines;
  dg.num_vertices = edges.num_vertices();
  dg.edges = edges.edges();
  dg.edge_partition.assign(num_edges, 0);
  // The partition count is authoritative from the partitioner's context —
  // not rediscovered from assignments, which under-counts whenever a hash
  // strategy never emits the last partition id on a tiny input.
  const uint32_t num_partitions = partitioner.num_partitions();
  GDP_CHECK_GE(num_partitions, 1u);
  dg.num_partitions = num_partitions;

  const sim::ObjectSizes sizes;
  IngressReport& report = result.report;
  const double start_time = cluster.now_seconds();

  partitioner.PrepareForIngest(num_loaders);

  // Loader l handles the contiguous block [block_start(l), block_start(l+1)).
  auto block_start = [&](uint32_t l) -> uint64_t {
    return num_edges * l / num_loaders;
  };

  // Partitioner bookkeeping bytes currently charged to each machine. The
  // state is spread across loader machines (that is where degree counters
  // and replica views physically live during ingress) with the remainder
  // going to the lowest-indexed machines, so the charges conserve the total
  // exactly — num_machines need not divide the state size.
  std::vector<uint64_t> state_held(num_machines, 0);
  auto charge_state_delta = [&]() {
    const uint64_t state = partitioner.ApproxStateBytes();
    report.peak_state_bytes = std::max(report.peak_state_bytes, state);
    const uint64_t base = state / num_machines;
    const uint64_t remainder = state % num_machines;
    uint64_t distributed = 0;
    for (uint32_t m = 0; m < num_machines; ++m) {
      const uint64_t target = base + (m < remainder ? 1 : 0);
      if (target > state_held[m]) {
        cluster.machine(m).Allocate(target - state_held[m]);
      } else if (target < state_held[m]) {
        cluster.machine(m).Free(state_held[m] - target);
      }
      state_held[m] = target;
      distributed += target;
    }
    GDP_DCHECK_EQ(distributed, state);
  };

  std::vector<LoaderScratch> scratch(num_loaders);

  const uint32_t passes = partitioner.num_passes();
  for (uint32_t pass = 0; pass < passes; ++pass) {
    obs::ScopedSpan pass_span(exec.trace, exec.trace_track,
                              "pass " + std::to_string(pass), "ingress",
                              cluster.now_seconds());
    partitioner.BeginPass(pass);
    for (LoaderScratch& s : scratch) s.Reset(num_machines);

    auto run_loader = [&](uint32_t l) {
      LoaderScratch& s = scratch[l];
      const sim::MachineId loader_machine = l % num_machines;
      const uint64_t begin = block_start(l);
      const uint64_t end = block_start(l + 1);
      for (uint64_t i = begin; i < end; ++i) {
        const graph::Edge& e = dg.edges[i];
        MachineId assigned = partitioner.Assign(e, pass, l);
        s.acc.AddWorkUnits(
            loader_machine,
            kParseTicksPerEdge + partitioner.TakeAssignWorkTicks(l));
        if (pass == 0) {
          GDP_CHECK_NE(assigned, kKeepPlacement);
          GDP_DCHECK_LT(assigned, num_partitions);
          dg.edge_partition[i] = assigned;
          const sim::MachineId target = assigned % num_machines;
          s.alloc_bytes[target] += sizes.edge_record;
          if (target != loader_machine) {
            s.acc.ChargeSendBytes(loader_machine, sizes.edge_record);
            s.acc.ChargeReceiveBytes(target, sizes.edge_record);
          }
        } else if (assigned != kKeepPlacement &&
                   assigned != dg.edge_partition[i]) {
          // Reassignment: the edge moves between partitions. The copy at
          // the old machine (and the in-flight transfer buffer) is only
          // released when the pass completes, so multi-pass strategies pay
          // a transient memory overhead proportional to the edges they
          // move — the §6.4.2 effect.
          GDP_DCHECK_LT(assigned, num_partitions);
          const sim::MachineId old_machine =
              dg.edge_partition[i] % num_machines;
          const sim::MachineId new_machine = assigned % num_machines;
          dg.edge_partition[i] = assigned;
          ++s.edges_moved;
          if (old_machine != new_machine) {
            s.acc.ChargeSendBytes(old_machine, sizes.edge_record);
            s.acc.ChargeReceiveBytes(new_machine, sizes.edge_record);
            s.alloc_bytes[new_machine] += sizes.edge_record;
            s.deferred_free_bytes[old_machine] += sizes.edge_record;
          }
        }
      }
    };

    if (num_threads > 1 && partitioner.PassIsParallelSafe(pass)) {
      pool.ParallelFor(num_loaders, [&](uint64_t chunk, uint32_t lane) {
        (void)lane;
        run_loader(static_cast<uint32_t>(chunk));
      });
    } else {
      for (uint32_t l = 0; l < num_loaders; ++l) run_loader(l);
    }
    partitioner.EndPass(pass);

    // Pass barrier: merge the loader scratches (loader order — integer
    // counters, so any order gives the same totals) and apply them in the
    // canonical order: allocations, then bytes + one closed-form work
    // charge per machine, then partitioner-state deltas, then the phase
    // barrier, then the deferred frees. Memory only grows within a pass
    // (frees are deferred), so the bulk allocations reproduce the same
    // per-machine peaks as per-edge allocation would.
    sim::PhaseAccumulator merged;
    merged.Reset(num_machines);
    std::vector<uint64_t> alloc(num_machines, 0);
    std::vector<uint64_t> frees(num_machines, 0);
    uint64_t pass_moved = 0;
    for (const LoaderScratch& s : scratch) {
      merged.Merge(s.acc);
      for (uint32_t m = 0; m < num_machines; ++m) {
        alloc[m] += s.alloc_bytes[m];
        frees[m] += s.deferred_free_bytes[m];
      }
      pass_moved += s.edges_moved;
    }
    report.edges_moved += pass_moved;
    if (exec.metrics != nullptr) {
      // Per-loader tick totals are integer sums inside one loader's lane —
      // identical at any thread count.
      for (uint32_t l = 0; l < num_loaders; ++l) {
        loader_ticks[l]->Add(scratch[l].acc.TotalWorkUnits());
      }
      edges_moved_counter->Add(pass_moved);
      passes_counter->Increment();
    }
    for (uint32_t m = 0; m < num_machines; ++m) {
      if (alloc[m] != 0) cluster.machine(m).Allocate(alloc[m]);
    }
    merged.FlushTo(cluster, Partitioner::kWorkPerTick);
    charge_state_delta();
    report.pass_seconds.push_back(cluster.EndPhase());
    if (timeline != nullptr) timeline->Sample(cluster);
    // Pass complete: release the moved edges' old copies.
    for (uint32_t m = 0; m < num_machines; ++m) {
      if (frees[m] != 0) cluster.machine(m).Free(frees[m]);
    }
    pass_span.Arg("ticks", static_cast<int64_t>(merged.TotalWorkUnits()));
    pass_span.Arg("sent_bytes",
                  static_cast<int64_t>(merged.TotalSentBytes()));
    pass_span.Arg("edges_moved", static_cast<int64_t>(pass_moved));
    pass_span.End(cluster.now_seconds());
  }

  // ---- Finalize: replica tables, masters, per-partition counts. ----------
  obs::ScopedSpan finalize_span(exec.trace, exec.trace_track, "finalize",
                                "ingress", cluster.now_seconds());
  dg.replicas = ReplicaTable(dg.num_vertices, num_partitions);
  dg.in_edge_partitions = ReplicaTable(dg.num_vertices, num_partitions);
  dg.out_edge_partitions = ReplicaTable(dg.num_vertices, num_partitions);
  dg.present.assign(dg.num_vertices, false);
  dg.partition_edge_count.assign(num_partitions, 0);

  if (num_threads > 1 && num_edges > 0) {
    // Edge-range shards build private tables, OR-merged word-wise.
    const uint32_t num_shards = num_threads;
    std::vector<TableShard> shards(num_shards);
    for (TableShard& s : shards) {
      s.replicas = ReplicaTable(dg.num_vertices, num_partitions);
      s.in_parts = ReplicaTable(dg.num_vertices, num_partitions);
      s.out_parts = ReplicaTable(dg.num_vertices, num_partitions);
      s.edge_count.assign(num_partitions, 0);
    }
    pool.ParallelFor(num_shards, [&](uint64_t shard, uint32_t lane) {
      (void)lane;
      TableShard& s = shards[shard];
      const uint64_t begin = num_edges * shard / num_shards;
      const uint64_t end = num_edges * (shard + 1) / num_shards;
      for (uint64_t i = begin; i < end; ++i) {
        const graph::Edge& e = dg.edges[i];
        const MachineId p = dg.edge_partition[i];
        s.replicas.Add(e.src, p);
        s.replicas.Add(e.dst, p);
        s.out_parts.Add(e.src, p);
        s.in_parts.Add(e.dst, p);
        ++s.edge_count[p];
      }
    });
    for (const TableShard& s : shards) {
      dg.replicas.MergeFrom(s.replicas);
      dg.in_edge_partitions.MergeFrom(s.in_parts);
      dg.out_edge_partitions.MergeFrom(s.out_parts);
      for (uint32_t p = 0; p < num_partitions; ++p) {
        dg.partition_edge_count[p] += s.edge_count[p];
      }
    }
  } else {
    for (uint64_t i = 0; i < num_edges; ++i) {
      const graph::Edge& e = dg.edges[i];
      const MachineId p = dg.edge_partition[i];
      dg.replicas.Add(e.src, p);
      dg.replicas.Add(e.dst, p);
      dg.out_edge_partitions.Add(e.src, p);
      dg.in_edge_partitions.Add(e.dst, p);
      ++dg.partition_edge_count[p];
    }
  }
  // A vertex is present exactly when some partition got one of its edges.
  for (graph::VertexId v = 0; v < dg.num_vertices; ++v) {
    dg.present[v] = dg.replicas.First(v) != ReplicaTable::kInvalid;
  }

  // Master selection + replica-memory accounting, striped over vertices.
  // Each stripe owns a disjoint vertex range: the master array entries and
  // the replica-bitset words it touches belong to its own vertices, and the
  // cross-stripe aggregates (replica/present counts, per-machine replica
  // bytes) are integers summed at the join.
  dg.master.assign(dg.num_vertices, ReplicaTable::kInvalid);
  const uint64_t num_stripes =
      (static_cast<uint64_t>(dg.num_vertices) + kMasterStripe - 1) /
      kMasterStripe;
  std::vector<uint64_t> stripe_replica_total(num_stripes, 0);
  std::vector<uint64_t> stripe_present_count(num_stripes, 0);
  std::vector<std::vector<uint64_t>> stripe_replica_bytes(
      num_stripes, std::vector<uint64_t>(num_machines, 0));
  auto run_stripe = [&](uint64_t stripe) {
    uint64_t replica_total = 0;
    uint64_t present_count = 0;
    std::vector<uint64_t>& replica_bytes = stripe_replica_bytes[stripe];
    const graph::VertexId begin =
        static_cast<graph::VertexId>(stripe * kMasterStripe);
    const graph::VertexId end = static_cast<graph::VertexId>(
        std::min<uint64_t>(dg.num_vertices, (stripe + 1) * kMasterStripe));
    for (graph::VertexId v = begin; v < end; ++v) {
      if (!dg.present[v]) continue;
      ++present_count;
      MachineId m = ReplicaTable::kInvalid;
      if (options.use_partitioner_master_preference) {
        MachineId pref = partitioner.PreferredMaster(v);
        if (pref != kKeepPlacement) m = pref % num_partitions;
      }
      if (m == ReplicaTable::kInvalid) {
        if (options.master_policy == MasterPolicy::kVertexHash) {
          m = static_cast<MachineId>(util::Mix64(v ^ options.seed) %
                                     num_partitions);
        } else {
          uint32_t count = dg.replicas.Count(v);
          m = dg.replicas.Select(
              v,
              static_cast<uint32_t>(util::Mix64(v ^ options.seed) % count));
        }
      }
      dg.master[v] = m;
      dg.replicas.Add(v, m);  // ensure the master location holds a replica
      replica_total += dg.replicas.Count(v);
      // Replica memory: one vertex record per master, one mirror record per
      // additional replica, charged to the hosting machines.
      dg.replicas.ForEach(v, [&](MachineId p) {
        const uint64_t bytes =
            p == m ? sizes.vertex_record : sizes.mirror_record;
        replica_bytes[dg.MachineOfPartition(p)] += bytes;
      });
    }
    stripe_replica_total[stripe] = replica_total;
    stripe_present_count[stripe] = present_count;
  };
  if (num_threads > 1) {
    pool.ParallelFor(num_stripes, [&](uint64_t stripe, uint32_t lane) {
      (void)lane;
      run_stripe(stripe);
    });
  } else {
    for (uint64_t stripe = 0; stripe < num_stripes; ++stripe) {
      run_stripe(stripe);
    }
  }

  uint64_t replica_total = 0;
  uint64_t present_count = 0;
  std::vector<uint64_t> replica_bytes(num_machines, 0);
  for (uint64_t stripe = 0; stripe < num_stripes; ++stripe) {
    replica_total += stripe_replica_total[stripe];
    present_count += stripe_present_count[stripe];
    for (uint32_t m = 0; m < num_machines; ++m) {
      replica_bytes[m] += stripe_replica_bytes[stripe][m];
    }
  }
  dg.num_present_vertices = present_count;
  dg.BuildDegreeCache();
  dg.replication_factor =
      present_count > 0
          ? static_cast<double>(replica_total) / present_count
          : 0.0;

  for (uint32_t m = 0; m < num_machines; ++m) {
    if (replica_bytes[m] != 0) cluster.machine(m).Allocate(replica_bytes[m]);
  }
  // Per-vertex finalize work (building routing tables) on the masters.
  for (uint32_t m = 0; m < num_machines; ++m) {
    cluster.machine(m).AddWork(
        static_cast<double>(present_count) / num_machines);
  }
  report.pass_seconds.push_back(cluster.EndPhase());
  if (timeline != nullptr) timeline->Sample(cluster);
  finalize_span.Arg("present_vertices",
                    static_cast<int64_t>(present_count));
  finalize_span.Arg("replica_total", static_cast<int64_t>(replica_total));
  finalize_span.End(cluster.now_seconds());

  // Ingress done: the partitioner's transient state is released — exactly
  // the bytes each machine holds, so nothing leaks into steady state.
  for (uint32_t m = 0; m < num_machines; ++m) {
    if (state_held[m] != 0) cluster.machine(m).Free(state_held[m]);
    state_held[m] = 0;
  }
  if (timeline != nullptr) {
    timeline->Sample(cluster);
    timeline->Mark(cluster, "ingress-end");
  }

  report.ingress_seconds = cluster.now_seconds() - start_time;
  report.replication_factor = dg.replication_factor;
  report.edge_balance_ratio = dg.EdgeBalanceRatio();
  ingress_span.Arg("edges", static_cast<int64_t>(num_edges));
  ingress_span.Arg("edges_moved", static_cast<int64_t>(report.edges_moved));
  ingress_span.End(cluster.now_seconds());
  return result;
}

IngestResult IngestWithStrategy(const graph::EdgeList& edges,
                                StrategyKind kind,
                                const PartitionContext& context,
                                sim::Cluster& cluster,
                                const IngestOptions& options) {
  PartitionContext ctx = context;
  if (ctx.num_vertices == 0) ctx.num_vertices = edges.num_vertices();
  std::unique_ptr<Partitioner> partitioner = MakePartitioner(kind, ctx);
  return Ingest(edges, *partitioner, cluster, options);
}

}  // namespace gdp::partition
