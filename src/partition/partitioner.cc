#include "partition/partitioner.h"

#include <algorithm>

#include "partition/strategy_registration.h"
#include "partition/strategy_registry.h"
#include "util/check.h"

namespace gdp::partition {
namespace {

/// Registered strategies with the family bit set, ordered by that family's
/// rank — the paper's Table 1.1 roster orders, reconstructed from traits.
std::vector<StrategyKind> FamilyRoster(uint32_t family_bit,
                                       int StrategyTraits::* rank) {
  EnsureBuiltinStrategiesRegistered();
  std::vector<const StrategyInfo*> members;
  for (const StrategyInfo* info : StrategyRegistry::Instance().All()) {
    if (info->traits.system_families & family_bit) members.push_back(info);
  }
  std::sort(members.begin(), members.end(),
            [rank](const StrategyInfo* a, const StrategyInfo* b) {
              return a->traits.*rank < b->traits.*rank;
            });
  std::vector<StrategyKind> kinds;
  kinds.reserve(members.size());
  for (const StrategyInfo* info : members) kinds.push_back(info->kind);
  return kinds;
}

}  // namespace

const std::vector<StrategyKind>& AllStrategies() {
  static const std::vector<StrategyKind> kAll = [] {
    EnsureBuiltinStrategiesRegistered();
    std::vector<const StrategyInfo*> members;
    for (const StrategyInfo* info : StrategyRegistry::Instance().All()) {
      if (info->traits.in_paper_roster) members.push_back(info);
    }
    std::sort(members.begin(), members.end(),
              [](const StrategyInfo* a, const StrategyInfo* b) {
                return a->traits.paper_roster_rank <
                       b->traits.paper_roster_rank;
              });
    std::vector<StrategyKind> all;
    all.reserve(members.size());
    for (const StrategyInfo* info : members) all.push_back(info->kind);
    return all;
  }();
  return kAll;
}

const char* StrategyName(StrategyKind kind) {
  EnsureBuiltinStrategiesRegistered();
  const StrategyInfo* info = StrategyRegistry::Instance().Find(kind);
  return info != nullptr ? info->name.c_str() : "Unknown";
}

util::StatusOr<StrategyKind> StrategyFromName(const std::string& name) {
  EnsureBuiltinStrategiesRegistered();
  const StrategyInfo* info = StrategyRegistry::Instance().FindByName(name);
  if (info != nullptr) return info->kind;
  return util::Status::NotFound("unknown strategy: " + name);
}

std::vector<StrategyKind> PowerGraphStrategies() {
  return FamilyRoster(kFamilyPowerGraph, &StrategyTraits::power_graph_rank);
}

std::vector<StrategyKind> PowerLyraStrategies() {
  return FamilyRoster(kFamilyPowerLyra, &StrategyTraits::power_lyra_rank);
}

std::vector<StrategyKind> GraphXStrategies() {
  return FamilyRoster(kFamilyGraphX, &StrategyTraits::graphx_rank);
}

std::unique_ptr<Partitioner> MakePartitioner(
    StrategyKind kind, const PartitionContext& context) {
  EnsureBuiltinStrategiesRegistered();
  const StrategyInfo* info = StrategyRegistry::Instance().Find(kind);
  GDP_CHECK(info != nullptr);
  return info->factory(context);
}

}  // namespace gdp::partition
