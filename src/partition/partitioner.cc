#include "partition/partitioner.h"

#include "partition/constrained.h"
#include "partition/greedy.h"
#include "partition/hash_partitioners.h"
#include "partition/chunked.h"
#include "partition/hybrid.h"
#include "util/check.h"

namespace gdp::partition {

const std::vector<StrategyKind>& AllStrategies() {
  static const std::vector<StrategyKind> kAll{
      StrategyKind::kOneD,      StrategyKind::kOneDTarget,
      StrategyKind::kTwoD,      StrategyKind::kAsymmetricRandom,
      StrategyKind::kGrid,      StrategyKind::kPds,
      StrategyKind::kHdrf,      StrategyKind::kHybrid,
      StrategyKind::kHybridGinger, StrategyKind::kOblivious,
      StrategyKind::kRandom,
  };
  return kAll;
}

const char* StrategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kRandom:
      return "Random";
    case StrategyKind::kAsymmetricRandom:
      return "Assym-Rand";
    case StrategyKind::kGrid:
      return "Grid";
    case StrategyKind::kPds:
      return "PDS";
    case StrategyKind::kOblivious:
      return "Oblivious";
    case StrategyKind::kHdrf:
      return "HDRF";
    case StrategyKind::kHybrid:
      return "Hybrid";
    case StrategyKind::kHybridGinger:
      return "H-Ginger";
    case StrategyKind::kOneD:
      return "1D";
    case StrategyKind::kOneDTarget:
      return "1D-Target";
    case StrategyKind::kTwoD:
      return "2D";
    case StrategyKind::kChunked:
      return "Chunked";
    case StrategyKind::kDbh:
      return "DBH";
  }
  return "Unknown";
}

util::StatusOr<StrategyKind> StrategyFromName(const std::string& name) {
  for (StrategyKind kind : AllStrategies()) {
    if (name == StrategyName(kind)) return kind;
  }
  // Extensions beyond the paper's set (not in AllStrategies).
  for (StrategyKind kind : {StrategyKind::kChunked, StrategyKind::kDbh}) {
    if (name == StrategyName(kind)) return kind;
  }
  // Aliases used in the paper's text.
  if (name == "Canonical Random" || name == "CanonicalRandom") {
    return StrategyKind::kRandom;
  }
  if (name == "Hybrid-Ginger") return StrategyKind::kHybridGinger;
  return util::Status::NotFound("unknown strategy: " + name);
}

std::vector<StrategyKind> PowerGraphStrategies() {
  return {StrategyKind::kRandom, StrategyKind::kGrid,
          StrategyKind::kOblivious, StrategyKind::kHdrf, StrategyKind::kPds};
}

std::vector<StrategyKind> PowerLyraStrategies() {
  return {StrategyKind::kRandom,  StrategyKind::kGrid,
          StrategyKind::kOblivious, StrategyKind::kHybrid,
          StrategyKind::kHybridGinger, StrategyKind::kPds};
}

std::vector<StrategyKind> GraphXStrategies() {
  return {StrategyKind::kAsymmetricRandom, StrategyKind::kRandom,
          StrategyKind::kOneD, StrategyKind::kTwoD};
}

std::unique_ptr<Partitioner> MakePartitioner(
    StrategyKind kind, const PartitionContext& context) {
  switch (kind) {
    case StrategyKind::kRandom:
      return std::make_unique<RandomPartitioner>(context);
    case StrategyKind::kAsymmetricRandom:
      return std::make_unique<AsymmetricRandomPartitioner>(context);
    case StrategyKind::kGrid:
      return std::make_unique<GridPartitioner>(context);
    case StrategyKind::kPds: {
      auto result = PdsPartitioner::Create(context);
      GDP_CHECK(result.ok());
      return std::move(result).value();
    }
    case StrategyKind::kOblivious:
      return std::make_unique<ObliviousPartitioner>(context);
    case StrategyKind::kHdrf:
      return std::make_unique<HdrfPartitioner>(context);
    case StrategyKind::kHybrid:
      return std::make_unique<HybridPartitioner>(context);
    case StrategyKind::kHybridGinger:
      return std::make_unique<HybridGingerPartitioner>(context);
    case StrategyKind::kOneD:
      return std::make_unique<OneDPartitioner>(context, /*by_target=*/false);
    case StrategyKind::kOneDTarget:
      return std::make_unique<OneDPartitioner>(context, /*by_target=*/true);
    case StrategyKind::kTwoD:
      return std::make_unique<TwoDPartitioner>(context);
    case StrategyKind::kChunked:
      return std::make_unique<ChunkedPartitioner>(context);
    case StrategyKind::kDbh:
      return std::make_unique<DbhPartitioner>(context);
  }
  GDP_CHECK(false);
  return nullptr;
}

}  // namespace gdp::partition
