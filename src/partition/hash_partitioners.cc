#include "partition/hash_partitioners.h"

#include <cmath>
#include <memory>

#include "partition/strategy_registration.h"
#include "partition/strategy_registry.h"
#include "util/hash.h"

namespace gdp::partition {

using util::HashCanonicalEdge;
using util::HashDirectedEdge;
using util::Mix64;

MachineId RandomPartitioner::Assign(const graph::Edge& e, uint32_t pass,
                                    uint32_t loader) {
  (void)pass;
  AddWorkTicks(loader, kTicksPerWorkUnit);
  return static_cast<MachineId>(
      (HashCanonicalEdge(e.src, e.dst) ^ Mix64(seed_)) % num_partitions_);
}

MachineId AsymmetricRandomPartitioner::Assign(const graph::Edge& e,
                                              uint32_t pass,
                                              uint32_t loader) {
  (void)pass;
  AddWorkTicks(loader, kTicksPerWorkUnit);
  return static_cast<MachineId>(
      (HashDirectedEdge(e.src, e.dst) ^ Mix64(seed_)) % num_partitions_);
}

MachineId OneDPartitioner::Assign(const graph::Edge& e, uint32_t pass,
                                  uint32_t loader) {
  (void)pass;
  AddWorkTicks(loader, kTicksPerWorkUnit);
  graph::VertexId key = by_target_ ? e.dst : e.src;
  return static_cast<MachineId>((Mix64(key ^ seed_)) % num_partitions_);
}

MachineId OneDPartitioner::PreferredMaster(graph::VertexId v) const {
  // Colocate the master with the colocated edge direction; this is the
  // "tight engine integration" the thesis' 1D-Target experiment probes.
  return static_cast<MachineId>((Mix64(v ^ seed_)) % num_partitions_);
}

TwoDPartitioner::TwoDPartitioner(const PartitionContext& context)
    : Partitioner(context),
      num_partitions_(context.num_partitions),
      seed_(context.seed) {
  side_ = static_cast<uint32_t>(
      std::ceil(std::sqrt(static_cast<double>(num_partitions_))));
  if (side_ == 0) side_ = 1;
}

MachineId TwoDPartitioner::Assign(const graph::Edge& e, uint32_t pass,
                                  uint32_t loader) {
  (void)pass;
  AddWorkTicks(loader, kTicksPerWorkUnit);
  uint64_t col = Mix64(e.src ^ seed_) % side_;
  uint64_t row = Mix64(e.dst ^ seed_) % side_;
  return static_cast<MachineId>((col * side_ + row) % num_partitions_);
}

MachineId DbhPartitioner::Assign(const graph::Edge& e, uint32_t pass,
                                 uint32_t loader) {
  (void)pass;
  AddWorkTicks(loader, 30);  // 1.5 units: hash plus two degree-counter updates
  uint32_t deg_src = ++partial_degree_[e.src];
  uint32_t deg_dst = ++partial_degree_[e.dst];
  // Hash by the lower-degree endpoint (ties by id for determinism).
  graph::VertexId key =
      deg_src < deg_dst || (deg_src == deg_dst && e.src < e.dst) ? e.src
                                                                 : e.dst;
  return static_cast<MachineId>(Mix64(key ^ seed_) % num_partitions_);
}

void RegisterHashStrategies() {
  StrategyRegistry& registry = StrategyRegistry::Instance();
  registry.Register(StrategyInfo{
      .kind = StrategyKind::kRandom,
      .name = "Random",
      .aliases = {"Canonical Random", "CanonicalRandom"},
      .traits = {.system_families =
                     kFamilyPowerGraph | kFamilyPowerLyra | kFamilyGraphX,
                 .power_graph_rank = 0,
                 .power_lyra_rank = 0,
                 .graphx_rank = 1,
                 .in_paper_roster = true,
                 .paper_roster_rank = 10},
      .factory = [](const PartitionContext& context)
          -> std::unique_ptr<Partitioner> {
        return std::make_unique<RandomPartitioner>(context);
      }});
  registry.Register(StrategyInfo{
      .kind = StrategyKind::kAsymmetricRandom,
      .name = "Assym-Rand",
      .traits = {.system_families = kFamilyGraphX,
                 .graphx_rank = 0,
                 .in_paper_roster = true,
                 .paper_roster_rank = 3},
      .factory = [](const PartitionContext& context)
          -> std::unique_ptr<Partitioner> {
        return std::make_unique<AsymmetricRandomPartitioner>(context);
      }});
  registry.Register(StrategyInfo{
      .kind = StrategyKind::kOneD,
      .name = "1D",
      .traits = {.system_families = kFamilyGraphX,
                 .graphx_rank = 2,
                 .in_paper_roster = true,
                 .paper_roster_rank = 0},
      .factory = [](const PartitionContext& context)
          -> std::unique_ptr<Partitioner> {
        return std::make_unique<OneDPartitioner>(context, /*by_target=*/false);
      }});
  registry.Register(StrategyInfo{
      .kind = StrategyKind::kOneDTarget,
      .name = "1D-Target",
      .traits = {.in_paper_roster = true, .paper_roster_rank = 1},
      .factory = [](const PartitionContext& context)
          -> std::unique_ptr<Partitioner> {
        return std::make_unique<OneDPartitioner>(context, /*by_target=*/true);
      }});
  registry.Register(StrategyInfo{
      .kind = StrategyKind::kTwoD,
      .name = "2D",
      .traits = {.system_families = kFamilyGraphX,
                 .graphx_rank = 3,
                 .in_paper_roster = true,
                 .paper_roster_rank = 2},
      .factory = [](const PartitionContext& context)
          -> std::unique_ptr<Partitioner> {
        return std::make_unique<TwoDPartitioner>(context);
      }});
  registry.Register(StrategyInfo{
      .kind = StrategyKind::kDbh,
      .name = "DBH",
      .traits = {.parallel_safe = false},
      .factory = [](const PartitionContext& context)
          -> std::unique_ptr<Partitioner> {
        return std::make_unique<DbhPartitioner>(context);
      }});
}

}  // namespace gdp::partition
