#ifndef GDP_PARTITION_HYBRID_H_
#define GDP_PARTITION_HYBRID_H_

#include <vector>

#include "partition/partitioner.h"

namespace gdp::partition {

/// PowerLyra Hybrid (§6.2.1): edge-cut for low-degree destination vertices
/// (edge placed by hashing the destination, colocating each low-degree
/// vertex with all its in-edges), vertex-cut for high-degree destinations
/// (edge placed by hashing the source). Uses *exact* in-degrees, which
/// requires a counting pass followed by a reassignment pass — the extra
/// ingress phase responsible for Hybrid's above-trend peak memory
/// (Figs 6.2, 6.3).
class HybridPartitioner : public Partitioner {
 public:
  explicit HybridPartitioner(const PartitionContext& context);

  StrategyKind kind() const override { return StrategyKind::kHybrid; }
  uint32_t num_passes() const override { return 2; }
  MachineId Assign(const graph::Edge& e, uint32_t pass,
                   uint32_t loader) override;
  /// Both passes are parallel-safe: pass 0 counts in-degrees into
  /// per-loader shards (loader 0 writes the merged array directly, so
  /// single-loader use needs no merge), pass 1 only reads the merged
  /// degrees.
  void PrepareForIngest(uint32_t num_loaders) override;
  /// Merges the pass-0 degree shards (single-threaded, at the pass
  /// barrier). The real system's loaders all-reduce their block-local
  /// counts the same way.
  void EndPass(uint32_t pass) override;
  uint64_t ApproxStateBytes() const override;

  /// Masters live at the vertex hash location — for a low-degree vertex
  /// that is exactly where its in-edges are, enabling PowerLyra's local
  /// gather for natural applications.
  MachineId PreferredMaster(graph::VertexId v) const override;

  /// True once pass 0 determined v's in-degree exceeds the threshold.
  bool IsHighDegree(graph::VertexId v) const {
    return in_degree_[v] > threshold_;
  }

 protected:
  MachineId HashVertex(graph::VertexId v) const;

  /// Pass-0 in-degree counter cell for `loader`: loader 0 increments the
  /// merged array in place, loaders >= 1 their own shard (merged by
  /// EndPass(0)).
  uint32_t& DegreeCell(uint32_t loader, graph::VertexId v) {
    return loader == 0 ? in_degree_[v] : in_degree_shards_[loader - 1][v];
  }

  uint32_t num_partitions_;
  uint64_t seed_;
  uint64_t threshold_;
  std::vector<uint32_t> in_degree_;
  /// Shards for loaders 1..L-1 (implementation scratch of the parallel
  /// pipeline — not modeled state; ApproxStateBytes charges the merged
  /// array only, like the seed).
  std::vector<std::vector<uint32_t>> in_degree_shards_;
};

/// PowerLyra Hybrid-Ginger (§6.2.2): Hybrid plus a third, Fennel-inspired
/// phase that re-homes each low-degree vertex v (and its colocated
/// in-edges) to the partition p maximizing
///   |N_in(v) ∩ V_p| - b(p),   b(p) = (|V_p| + |V|/|E| * |E_p|) / 2.
/// The neighbour-count matrix and extra phase make it the most
/// memory-hungry and slowest-ingress strategy — which is the paper's
/// argument for avoiding it (§6.4.4).
class HybridGingerPartitioner final : public HybridPartitioner {
 public:
  explicit HybridGingerPartitioner(const PartitionContext& context);

  StrategyKind kind() const override { return StrategyKind::kHybridGinger; }
  uint32_t num_passes() const override { return 3; }
  void BeginPass(uint32_t pass) override;
  MachineId Assign(const graph::Edge& e, uint32_t pass,
                   uint32_t loader) override;
  /// Pass 0 is parallel-safe (degree + |E_p| counters are loader-sharded);
  /// pass 1 mutates the shared neighbour-count matrix and pass 2's Fennel
  /// moves depend on the evolving balance state in stream order, so both
  /// run serially.
  bool PassIsParallelSafe(uint32_t pass) const override { return pass == 0; }
  void PrepareForIngest(uint32_t num_loaders) override;
  void EndPass(uint32_t pass) override;
  uint64_t ApproxStateBytes() const override;
  MachineId PreferredMaster(graph::VertexId v) const override;

 private:
  MachineId GingerTarget(graph::VertexId v, uint32_t loader);

  /// Pass-0 edge-count cells for `loader` (loader 0 = the merged arrays).
  uint64_t& TotalEdgesCell(uint32_t loader) {
    return loader == 0 ? total_edges_ : edge_shards_[loader - 1].total_edges;
  }
  uint64_t& PartitionEdgesCell(uint32_t loader, MachineId p) {
    return loader == 0 ? partition_edges_[p]
                       : edge_shards_[loader - 1].partition_edges[p];
  }

  struct EdgeCountShard {
    uint64_t total_edges = 0;
    std::vector<uint64_t> partition_edges;
  };

  graph::VertexId num_vertices_;
  uint64_t total_edges_ = 0;
  std::vector<EdgeCountShard> edge_shards_;  ///< loaders 1..L-1, pass 0
  /// nbr_partition_count_[v * P + p]: v's in-neighbours homed at p
  /// (saturating 16-bit counters; low-degree vertices have <= threshold
  /// in-neighbours so saturation is unreachable for the vertices that use
  /// this).
  std::vector<uint16_t> nbr_partition_count_;
  /// Current vertex->partition assignment (Ginger moves these).
  std::vector<MachineId> vertex_partition_;
  /// Memoized Ginger decision per vertex (kKeepPlacement = not yet made).
  std::vector<MachineId> ginger_target_;
  std::vector<uint64_t> partition_vertices_;  ///< |V_p|
  std::vector<uint64_t> partition_edges_;     ///< |E_p|
};

}  // namespace gdp::partition

#endif  // GDP_PARTITION_HYBRID_H_
