#include "partition/distributed_graph.h"

#include <algorithm>

namespace gdp::partition {

void DistributedGraph::BuildDegreeCache() {
  out_degree.assign(num_vertices, 0);
  in_degree.assign(num_vertices, 0);
  for (const graph::Edge& e : edges) {
    ++out_degree[e.src];
    ++in_degree[e.dst];
  }
}

double DistributedGraph::EdgeBalanceRatio() const {
  if (partition_edge_count.empty() || edges.empty()) return 1.0;
  uint64_t max_count = *std::max_element(partition_edge_count.begin(),
                                         partition_edge_count.end());
  double mean = static_cast<double>(edges.size()) /
                static_cast<double>(partition_edge_count.size());
  return mean > 0 ? static_cast<double>(max_count) / mean : 1.0;
}

}  // namespace gdp::partition
