#include "partition/greedy.h"

#include <algorithm>
#include <limits>

#include "util/hash.h"
#include "util/check.h"

namespace gdp::partition {

LoaderState::LoaderState(graph::VertexId num_vertices,
                         uint32_t num_partitions, uint64_t seed,
                         bool track_degrees)
    : replicas(num_vertices, num_partitions),
      machine_load(num_partitions, 0),
      rng(seed) {
  if (track_degrees) partial_degree.assign(num_vertices, 0);
}

uint64_t LoaderState::ApproxBytes() const {
  // The loader's replica view becomes the machine-local graph structure
  // after finalization (it is charged there, proportional to replicas);
  // the *extra* strategy state is just per-touched-vertex bookkeeping:
  // a mask word, plus a partial-degree counter for HDRF.
  uint64_t per_vertex = 8 + (partial_degree.empty() ? 0 : 4);
  return touched_vertices * per_vertex +
         machine_load.size() * sizeof(uint64_t);
}

GreedyPartitionerBase::GreedyPartitionerBase(const PartitionContext& context,
                                             bool track_degrees)
    : Partitioner(context),
      num_partitions_(context.num_partitions),
      num_vertices_(context.num_vertices),
      seed_(context.seed),
      track_degrees_(track_degrees) {
  GDP_CHECK_GE(context.num_loaders, 1u);
  loaders_.reserve(context.num_loaders);
  for (uint32_t l = 0; l < context.num_loaders; ++l) {
    loaders_.emplace_back(num_vertices_, num_partitions_,
                          util::Mix64(seed_ ^ (l + 1)), track_degrees_);
  }
}

uint64_t GreedyPartitionerBase::ApproxStateBytes() const {
  uint64_t total = 0;
  for (const LoaderState& s : loaders_) total += s.ApproxBytes();
  return total;
}

LoaderState& GreedyPartitionerBase::loader_state(uint32_t loader) {
  GDP_CHECK_LT(loader, loaders_.size());
  return loaders_[loader];
}

void GreedyPartitionerBase::ChargeGreedyWork(LoaderState& state,
                                             const graph::Edge& e) {
  uint32_t count_src = state.replicas.Count(e.src);
  uint32_t count_dst = state.replicas.Count(e.dst);
  if (count_src == 0) ++state.touched_vertices;
  if (count_dst == 0 && e.src != e.dst) ++state.touched_vertices;
  AddWork(2.0 + 1.0 * (count_src + count_dst));
}

namespace {

/// Least-loaded machine among `candidates`; random tie-break.
MachineId LeastLoaded(const std::vector<MachineId>& candidates,
                      const std::vector<uint64_t>& load,
                      util::SplitMix64& rng) {
  uint64_t best = std::numeric_limits<uint64_t>::max();
  uint32_t ties = 0;
  MachineId chosen = 0;
  for (MachineId m : candidates) {
    if (load[m] < best) {
      best = load[m];
      chosen = m;
      ties = 1;
    } else if (load[m] == best) {
      // Reservoir-style random tie break.
      ++ties;
      if (rng.NextBounded(ties) == 0) chosen = m;
    }
  }
  return chosen;
}

MachineId LeastLoadedAll(uint32_t num_partitions,
                         const std::vector<uint64_t>& load,
                         util::SplitMix64& rng) {
  uint64_t best = std::numeric_limits<uint64_t>::max();
  uint32_t ties = 0;
  MachineId chosen = 0;
  for (MachineId m = 0; m < num_partitions; ++m) {
    if (load[m] < best) {
      best = load[m];
      chosen = m;
      ties = 1;
    } else if (load[m] == best) {
      ++ties;
      if (rng.NextBounded(ties) == 0) chosen = m;
    }
  }
  return chosen;
}

}  // namespace

MachineId ObliviousPartitioner::Assign(const graph::Edge& e, uint32_t pass,
                                       uint32_t loader) {
  GDP_CHECK_EQ(pass, 0u);
  LoaderState& state = loader_state(loader);
  ChargeGreedyWork(state, e);

  std::vector<MachineId> a_u = state.replicas.Machines(e.src);
  std::vector<MachineId> a_v = state.replicas.Machines(e.dst);
  std::vector<MachineId> intersection;
  std::set_intersection(a_u.begin(), a_u.end(), a_v.begin(), a_v.end(),
                        std::back_inserter(intersection));

  MachineId target;
  if (!intersection.empty()) {
    // Case 1: some machine already hosts both endpoints.
    target = LeastLoaded(intersection, state.machine_load, state.rng);
  } else if (a_u.empty() && a_v.empty()) {
    // Case 3: neither endpoint placed yet — least loaded overall.
    target = LeastLoadedAll(num_partitions(), state.machine_load, state.rng);
  } else if (a_v.empty()) {
    // Case 2: only u placed.
    target = LeastLoaded(a_u, state.machine_load, state.rng);
  } else if (a_u.empty()) {
    // Case 2 (symmetric): only v placed.
    target = LeastLoaded(a_v, state.machine_load, state.rng);
  } else {
    // Case 4: both placed, on disjoint machines — least loaded in the union.
    std::vector<MachineId> machine_union;
    std::set_union(a_u.begin(), a_u.end(), a_v.begin(), a_v.end(),
                   std::back_inserter(machine_union));
    target = LeastLoaded(machine_union, state.machine_load, state.rng);
  }

  state.replicas.Add(e.src, target);
  state.replicas.Add(e.dst, target);
  ++state.machine_load[target];
  return target;
}

MachineId HdrfPartitioner::Assign(const graph::Edge& e, uint32_t pass,
                                  uint32_t loader) {
  GDP_CHECK_EQ(pass, 0u);
  LoaderState& state = loader_state(loader);
  ChargeGreedyWork(state, e);
  // HDRF scores every machine per edge (Appendix B), unlike Oblivious
  // whose candidate set is usually just the endpoint replica sets.
  AddWork(0.05 * num_partitions());

  double deg_u, deg_v;
  if (use_partial_degrees_ || exact_degrees_.empty()) {
    deg_u = static_cast<double>(++state.partial_degree[e.src]);
    deg_v = static_cast<double>(++state.partial_degree[e.dst]);
  } else {
    deg_u = static_cast<double>(exact_degrees_[e.src]);
    deg_v = static_cast<double>(exact_degrees_[e.dst]);
  }
  double theta_u = deg_u / (deg_u + deg_v);
  double theta_v = 1.0 - theta_u;

  uint64_t max_load = 0;
  uint64_t min_load = std::numeric_limits<uint64_t>::max();
  for (MachineId m = 0; m < num_partitions(); ++m) {
    max_load = std::max(max_load, state.machine_load[m]);
    min_load = std::min(min_load, state.machine_load[m]);
  }
  constexpr double kEpsilon = 1.0;

  double best_score = -std::numeric_limits<double>::infinity();
  uint32_t ties = 0;
  MachineId chosen = 0;
  for (MachineId m = 0; m < num_partitions(); ++m) {
    // C_REP: reward machines already holding an endpoint, weighted toward
    // keeping the *low-degree* endpoint unreplicated (Appendix B).
    double g_u =
        state.replicas.Contains(e.src, m) ? 1.0 + (1.0 - theta_u) : 0.0;
    double g_v =
        state.replicas.Contains(e.dst, m) ? 1.0 + (1.0 - theta_v) : 0.0;
    double c_rep = g_u + g_v;
    double c_bal = static_cast<double>(max_load - state.machine_load[m]) /
                   (kEpsilon + static_cast<double>(max_load - min_load));
    double score = c_rep + lambda_ * c_bal;
    if (score > best_score + 1e-12) {
      best_score = score;
      chosen = m;
      ties = 1;
    } else if (score > best_score - 1e-12) {
      ++ties;
      if (state.rng.NextBounded(ties) == 0) chosen = m;
    }
  }

  state.replicas.Add(e.src, chosen);
  state.replicas.Add(e.dst, chosen);
  ++state.machine_load[chosen];
  return chosen;
}

}  // namespace gdp::partition
