#include "partition/greedy.h"

#include <memory>
#include <utility>

#include "partition/strategy_registration.h"
#include "partition/strategy_registry.h"

#include <algorithm>
#include <limits>

#include "util/hash.h"
#include "util/check.h"

namespace gdp::partition {

LoaderState::LoaderState(graph::VertexId num_vertices,
                         uint32_t num_partitions, uint64_t seed,
                         bool track_degrees)
    : replicas(num_vertices, num_partitions),
      machine_load(num_partitions, 0),
      rng(seed),
      min_count(num_partitions) {
  if (track_degrees) partial_degree.assign(num_vertices, 0);
}

uint64_t LoaderState::ApproxBytes() const {
  // The loader's replica view becomes the machine-local graph structure
  // after finalization (it is charged there, proportional to replicas);
  // the *extra* strategy state is just per-touched-vertex bookkeeping:
  // a mask word, plus a partial-degree counter for HDRF.
  uint64_t per_vertex = 8 + (partial_degree.empty() ? 0 : 4);
  return touched_vertices * per_vertex +
         machine_load.size() * sizeof(uint64_t);
}

GreedyPartitionerBase::GreedyPartitionerBase(const PartitionContext& context,
                                             bool track_degrees)
    : Partitioner(context),
      num_partitions_(context.num_partitions),
      num_vertices_(context.num_vertices),
      seed_(context.seed),
      track_degrees_(track_degrees) {
  GDP_CHECK_GE(context.num_loaders, 1u);
  loaders_.reserve(context.num_loaders);
  for (uint32_t l = 0; l < context.num_loaders; ++l) {
    loaders_.emplace_back(num_vertices_, num_partitions_,
                          util::Mix64(seed_ ^ (l + 1)), track_degrees_);
  }
}

void GreedyPartitionerBase::PrepareForIngest(uint32_t num_loaders) {
  Partitioner::PrepareForIngest(num_loaders);
  while (loaders_.size() < num_loaders) {
    uint32_t l = static_cast<uint32_t>(loaders_.size());
    loaders_.emplace_back(num_vertices_, num_partitions_,
                          util::Mix64(seed_ ^ (l + 1)), track_degrees_);
  }
}

uint64_t GreedyPartitionerBase::ApproxStateBytes() const {
  uint64_t total = 0;
  for (const LoaderState& s : loaders_) total += s.ApproxBytes();
  return total;
}

LoaderState& GreedyPartitionerBase::loader_state(uint32_t loader) {
  GDP_CHECK_LT(loader, loaders_.size());
  return loaders_[loader];
}

void GreedyPartitionerBase::ChargeGreedyWork(uint32_t loader,
                                             LoaderState& state,
                                             const graph::Edge& e,
                                             uint32_t count_src,
                                             uint32_t count_dst) {
  if (count_src == 0) ++state.touched_vertices;
  if (count_dst == 0 && e.src != e.dst) ++state.touched_vertices;
  // 2 units base + 1 unit per probed replica-set entry.
  AddWorkTicks(loader, 2 * kTicksPerWorkUnit +
                           kTicksPerWorkUnit * (count_src + count_dst));
}

namespace {

/// Least-loaded machine over the set bits of the `num_words` bitset words
/// produced by `word_at` (AND/OR of two replica rows, or one row directly);
/// reservoir-style random tie-break. Bits are visited ascending, so the
/// comparison and rng-draw sequence is identical to iterating a sorted
/// machine vector — but with zero allocation. Returns false (rng untouched)
/// when no bit is set.
template <typename WordFn>
bool LeastLoadedOverWords(uint32_t num_words, WordFn&& word_at,
                          const std::vector<uint64_t>& load,
                          util::SplitMix64& rng, MachineId* out) {
  uint64_t best = std::numeric_limits<uint64_t>::max();
  uint32_t ties = 0;
  MachineId chosen = 0;
  bool any = false;
  for (uint32_t w = 0; w < num_words; ++w) {
    uint64_t word = word_at(w);
    while (word != 0) {
      MachineId m = w * 64 + static_cast<uint32_t>(std::countr_zero(word));
      word &= word - 1;
      any = true;
      if (load[m] < best) {
        best = load[m];
        chosen = m;
        ties = 1;
      } else if (load[m] == best) {
        ++ties;
        if (rng.NextBounded(ties) == 0) chosen = m;
      }
    }
  }
  *out = chosen;
  return any;
}

MachineId LeastLoadedAll(uint32_t num_partitions,
                         const std::vector<uint64_t>& load,
                         util::SplitMix64& rng) {
  uint64_t best = std::numeric_limits<uint64_t>::max();
  uint32_t ties = 0;
  MachineId chosen = 0;
  for (MachineId m = 0; m < num_partitions; ++m) {
    if (load[m] < best) {
      best = load[m];
      chosen = m;
      ties = 1;
    } else if (load[m] == best) {
      ++ties;
      if (rng.NextBounded(ties) == 0) chosen = m;
    }
  }
  return chosen;
}

}  // namespace

MachineId ObliviousPartitioner::Assign(const graph::Edge& e, uint32_t pass,
                                       uint32_t loader) {
  GDP_CHECK_EQ(pass, 0u);
  LoaderState& state = loader_state(loader);
  const uint32_t count_src = state.replicas.Count(e.src);
  const uint32_t count_dst = state.replicas.Count(e.dst);
  ChargeGreedyWork(loader, state, e, count_src, count_dst);

  const uint64_t* a_u = state.replicas.WordsOf(e.src);
  const uint64_t* a_v = state.replicas.WordsOf(e.dst);
  const uint32_t words = state.replicas.words_per_vertex();

  MachineId target = 0;
  // Case 1: some machine already hosts both endpoints (A(u) ∩ A(v)).
  bool placed =
      count_src != 0 && count_dst != 0 &&
      LeastLoadedOverWords(
          words, [&](uint32_t w) { return a_u[w] & a_v[w]; },
          state.machine_load, state.rng, &target);
  if (!placed) {
    if (count_src == 0 && count_dst == 0) {
      // Case 3: neither endpoint placed yet — least loaded overall.
      target = LeastLoadedAll(num_partitions(), state.machine_load,
                              state.rng);
    } else if (count_dst == 0) {
      // Case 2: only u placed.
      LeastLoadedOverWords(
          words, [&](uint32_t w) { return a_u[w]; }, state.machine_load,
          state.rng, &target);
    } else if (count_src == 0) {
      // Case 2 (symmetric): only v placed.
      LeastLoadedOverWords(
          words, [&](uint32_t w) { return a_v[w]; }, state.machine_load,
          state.rng, &target);
    } else {
      // Case 4: both placed, on disjoint machines — least loaded in the
      // union A(u) ∪ A(v).
      LeastLoadedOverWords(
          words, [&](uint32_t w) { return a_u[w] | a_v[w]; },
          state.machine_load, state.rng, &target);
    }
  }

  state.replicas.Add(e.src, target);
  state.replicas.Add(e.dst, target);
  state.AddEdgeTo(target);
  return target;
}

MachineId HdrfPartitioner::Assign(const graph::Edge& e, uint32_t pass,
                                  uint32_t loader) {
  GDP_CHECK_EQ(pass, 0u);
  LoaderState& state = loader_state(loader);
  const uint32_t count_src = state.replicas.Count(e.src);
  const uint32_t count_dst = state.replicas.Count(e.dst);
  ChargeGreedyWork(loader, state, e, count_src, count_dst);
  // HDRF scores every machine per edge (Appendix B), unlike Oblivious
  // whose candidate set is usually just the endpoint replica sets:
  // 0.05 units per machine scored.
  AddWorkTicks(loader, num_partitions());

  double deg_u, deg_v;
  if (use_partial_degrees_ || exact_degrees_.empty()) {
    deg_u = static_cast<double>(++state.partial_degree[e.src]);
    deg_v = static_cast<double>(++state.partial_degree[e.dst]);
  } else {
    deg_u = static_cast<double>(exact_degrees_[e.src]);
    deg_v = static_cast<double>(exact_degrees_[e.dst]);
  }
  double theta_u = deg_u / (deg_u + deg_v);
  double theta_v = 1.0 - theta_u;

  // Incrementally maintained by LoaderState::AddEdgeTo — the seed scanned
  // all P loads here on every edge.
  const uint64_t max_load = state.max_load;
  const uint64_t min_load = state.min_load;
  constexpr double kEpsilon = 1.0;

  double best_score = -std::numeric_limits<double>::infinity();
  uint32_t ties = 0;
  MachineId chosen = 0;
  for (MachineId m = 0; m < num_partitions(); ++m) {
    // C_REP: reward machines already holding an endpoint, weighted toward
    // keeping the *low-degree* endpoint unreplicated (Appendix B).
    double g_u =
        state.replicas.Contains(e.src, m) ? 1.0 + (1.0 - theta_u) : 0.0;
    double g_v =
        state.replicas.Contains(e.dst, m) ? 1.0 + (1.0 - theta_v) : 0.0;
    double c_rep = g_u + g_v;
    double c_bal = static_cast<double>(max_load - state.machine_load[m]) /
                   (kEpsilon + static_cast<double>(max_load - min_load));
    double score = c_rep + lambda_ * c_bal;
    if (score > best_score + 1e-12) {
      best_score = score;
      chosen = m;
      ties = 1;
    } else if (score > best_score - 1e-12) {
      ++ties;
      if (state.rng.NextBounded(ties) == 0) chosen = m;
    }
  }

  state.replicas.Add(e.src, chosen);
  state.replicas.Add(e.dst, chosen);
  state.AddEdgeTo(chosen);
  return chosen;
}


void RegisterGreedyStrategies() {
  StrategyRegistry& registry = StrategyRegistry::Instance();
  registry.Register(StrategyInfo{
      .kind = StrategyKind::kOblivious,
      .name = "Oblivious",
      .traits = {.system_families = kFamilyPowerGraph | kFamilyPowerLyra,
                 .power_graph_rank = 2,
                 .power_lyra_rank = 2,
                 .in_paper_roster = true,
                 .paper_roster_rank = 9},
      .factory = [](const PartitionContext& context)
          -> std::unique_ptr<Partitioner> {
        return std::make_unique<ObliviousPartitioner>(context);
      }});
  registry.Register(StrategyInfo{
      .kind = StrategyKind::kHdrf,
      .name = "HDRF",
      .traits = {.system_families = kFamilyPowerGraph,
                 .power_graph_rank = 3,
                 .in_paper_roster = true,
                 .paper_roster_rank = 6},
      .factory = [](const PartitionContext& context)
          -> std::unique_ptr<Partitioner> {
        return std::make_unique<HdrfPartitioner>(context);
      }});
}

}  // namespace gdp::partition
