#include "partition/hep.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <utility>

#include "partition/strategy_registration.h"
#include "partition/strategy_registry.h"
#include "util/check.h"
#include "util/hash.h"

namespace gdp::partition {

using util::Mix64;

namespace {
/// Modeled resident cost of one low-degree adjacency endpoint during the
/// in-memory expansion phase: buffered edge share + CSR entry + heap/bitmap
/// amortization. The threshold search divides the budget by this.
constexpr uint64_t kHepBytesPerAdjacencyEntry = 24;
}  // namespace

HepPartitioner::HepPartitioner(const PartitionContext& context)
    : Partitioner(context),
      num_partitions_(context.num_partitions),
      seed_(context.seed),
      memory_budget_bytes_(context.memory_budget_bytes),
      degree_(context.num_vertices, 0),
      expander_(context.num_vertices, context.num_partitions) {
  GDP_CHECK_GT(context.num_vertices, 0u);
}

void HepPartitioner::PrepareForIngest(uint32_t num_loaders) {
  Partitioner::PrepareForIngest(num_loaders);
  while (degree_shards_.size() + 1 < num_loaders) {
    degree_shards_.emplace_back(degree_.size(), 0);
  }
  if (low_buffers_.size() < num_loaders) {
    low_buffers_.resize(num_loaders);
    edge_counts_.resize(num_loaders, 0);
    low_counts_.resize(num_loaders, 0);
    low_cursors_.resize(num_loaders, 0);
    all_cursors_.resize(num_loaders, 0);
  }
}

MachineId HepPartitioner::DegreeHash(const graph::Edge& e) const {
  // Hash by the lower-degree endpoint (ties by id): the hub end replicates
  // anyway, so spreading by the light end keeps its copies together.
  const uint32_t ds = degree_[e.src];
  const uint32_t dd = degree_[e.dst];
  const graph::VertexId key =
      ds < dd || (ds == dd && e.src < e.dst) ? e.src : e.dst;
  return static_cast<MachineId>(Mix64(key ^ seed_) % num_partitions_);
}

MachineId HepPartitioner::Assign(const graph::Edge& e, uint32_t pass,
                                 uint32_t loader) {
  if (pass == 0) {
    ++edge_counts_[loader];
    ++DegreeCell(loader, e.src);
    ++DegreeCell(loader, e.dst);
    AddWorkTicks(loader, 24);  // 1.2 units: two counter updates + hash
    return ProvisionalPlacement(e, seed_, num_partitions_);
  }
  if (pass == 1) {
    if (IsLowEdge(e)) {
      low_buffers_[loader].push_back(e);
      ++low_counts_[loader];
      AddWorkTicks(loader, kTicksPerWorkUnit);
      return kKeepPlacement;  // expanded at the barrier, replayed in pass 2
    }
    AddWorkTicks(loader, 30);  // 1.5 units: degree lookups + hash + move
    return DegreeHash(e);
  }
  GDP_CHECK_EQ(pass, 2u);
  const uint64_t global_index = all_cursors_[loader]++;
  AddWorkTicks(loader, 10 + amort_.ForIndex(global_index));
  if (!IsLowEdge(e)) return kKeepPlacement;
  return plan_[low_cursors_[loader]++];
}

void HepPartitioner::EndPass(uint32_t pass) {
  if (pass == 0) {
    for (const std::vector<uint32_t>& shard : degree_shards_) {
      for (size_t v = 0; v < degree_.size(); ++v) degree_[v] += shard[v];
    }
    degree_shards_.clear();
    num_edges_ = std::accumulate(edge_counts_.begin(), edge_counts_.end(),
                                 uint64_t{0});
    if (memory_budget_bytes_ == 0) {
      // Unconstrained: HEP's default tau = 4 * average degree.
      const uint64_t avg = 2 * num_edges_ / degree_.size();
      threshold_ = 4 * avg + 1;
      return;
    }
    // Largest tau whose low-degree adjacency (sum of degrees <= tau) fits
    // the budget. Walk the sorted degree multiset and stop before the
    // first degree class that would overflow — whole classes only, so tau
    // is a clean degree boundary and monotone in the budget.
    std::vector<uint32_t> sorted(degree_);
    std::sort(sorted.begin(), sorted.end());
    const uint64_t budget_entries =
        memory_budget_bytes_ / kHepBytesPerAdjacencyEntry;
    uint64_t resident = 0;
    uint64_t tau = 0;
    size_t i = 0;
    while (i < sorted.size()) {
      const uint32_t d = sorted[i];
      size_t j = i;
      uint64_t class_entries = 0;
      while (j < sorted.size() && sorted[j] == d) {
        class_entries += d;
        ++j;
      }
      if (resident + class_entries > budget_entries) break;
      resident += class_entries;
      tau = d;
      i = j;
    }
    threshold_ = tau;
    return;
  }
  if (pass == 1) {
    // Loader order = global stream order (loader blocks are contiguous and
    // ascending), so concatenation reproduces the low-edge subsequence.
    uint64_t num_low = 0;
    for (uint32_t l = 0; l < low_buffers_.size(); ++l) {
      low_cursors_[l] = num_low;
      num_low += low_counts_[l];
    }
    uint64_t pos = 0;
    for (uint32_t l = 0; l < edge_counts_.size(); ++l) {
      all_cursors_[l] = pos;
      pos += edge_counts_[l];
    }
    std::vector<graph::Edge> low_edges;
    low_edges.reserve(num_low);
    for (std::vector<graph::Edge>& buffer : low_buffers_) {
      low_edges.insert(low_edges.end(), buffer.begin(), buffer.end());
      buffer = {};
    }
    plan_.assign(num_low, 0);
    if (num_low > 0) {
      std::vector<uint64_t> identity(num_low);
      std::iota(identity.begin(), identity.end(), uint64_t{0});
      expander_.ExpandChunk(low_edges, identity,
                            num_low / num_partitions_ + 1, &plan_);
    }
    amort_ = AmortizedTicks::Of(expander_.TakeTicks(), num_edges_);
    expander_.ReleaseScratch();
    return;
  }
  plan_ = {};
}

uint64_t HepPartitioner::ApproxStateBytes() const {
  uint64_t buffered = 0;
  for (const std::vector<graph::Edge>& buffer : low_buffers_) {
    buffered += buffer.size() * sizeof(graph::Edge);
  }
  return degree_.size() * sizeof(uint32_t) + buffered +
         plan_.size() * sizeof(MachineId) + expander_.ApproxBytes() +
         (edge_counts_.size() + low_counts_.size() + low_cursors_.size() +
          all_cursors_.size()) *
             sizeof(uint64_t);
}

MachineId HepPartitioner::PreferredMaster(graph::VertexId v) const {
  if (degree_[v] <= threshold_) {
    const MachineId core = expander_.CoreOf(v);
    if (core != kKeepPlacement) return core;
  }
  return static_cast<MachineId>(Mix64(v ^ seed_) % num_partitions_);
}

void RegisterHepStrategies() {
  StrategyRegistry::Instance().Register(StrategyInfo{
      .kind = StrategyKind::kHep,
      .name = "HEP",
      .traits = {.passes_required = 3,
                 .needs_degree_precompute = true,
                 .memory_budget_aware = true},
      .factory = [](const PartitionContext& context)
          -> std::unique_ptr<Partitioner> {
        return std::make_unique<HepPartitioner>(context);
      }});
}

}  // namespace gdp::partition
