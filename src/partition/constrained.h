#ifndef GDP_PARTITION_CONSTRAINED_H_
#define GDP_PARTITION_CONSTRAINED_H_

#include <optional>
#include <vector>

#include "partition/partitioner.h"

namespace gdp::partition {

/// Grid partitioning (Graphbuilder, §5.2.3): machines form a square matrix;
/// a vertex's constraint set is the row plus column of the cell it hashes
/// to, and an edge goes to a cell in the intersection of its endpoints'
/// constraint sets. Replication factor is bounded by 2*sqrt(N) - 1.
///
/// PowerGraph's Grid demands a perfect-square machine count; this class also
/// implements the thesis' resilient extension (§9.1): build the grid over
/// the next largest square and fold cells back onto N partitions.
class GridPartitioner final : public Partitioner {
 public:
  explicit GridPartitioner(const PartitionContext& context);

  StrategyKind kind() const override { return StrategyKind::kGrid; }
  MachineId Assign(const graph::Edge& e, uint32_t pass,
                   uint32_t loader) override;

  /// True when num_partitions is a perfect square (the only configuration
  /// PowerGraph's native Grid accepts).
  bool exact_square() const { return exact_square_; }
  uint32_t side() const { return side_; }

  /// Constraint set of a vertex (grid cells folded onto partitions),
  /// exposed for the property tests on the 2*sqrt(N) - 1 bound.
  std::vector<MachineId> ConstraintSet(graph::VertexId v) const;

 private:
  uint64_t CellOf(graph::VertexId v) const;

  uint32_t num_partitions_;
  uint32_t side_;
  bool exact_square_;
  uint64_t seed_;
};

/// PDS partitioning (§5.2.3): constraint sets are translates of a perfect
/// difference set modulo N = p^2 + p + 1 (p prime). Any two constraint sets
/// intersect in exactly one machine, giving a replication-factor bound of
/// p + 1 ~ sqrt(N) — tighter than Grid's 2*sqrt(N) - 1. The paper describes
/// PDS but could not evaluate it (no machine count satisfied both PDS and
/// Grid); the simulator has no such constraint, so we include it.
class PdsPartitioner final : public Partitioner {
 public:
  /// Fails unless context.num_partitions == p^2 + p + 1 for a prime p for
  /// which a difference-set search succeeds.
  static util::StatusOr<std::unique_ptr<Partitioner>> Create(
      const PartitionContext& context);

  StrategyKind kind() const override { return StrategyKind::kPds; }
  MachineId Assign(const graph::Edge& e, uint32_t pass,
                   uint32_t loader) override;

  const std::vector<uint32_t>& difference_set() const {
    return difference_set_;
  }

  /// Constraint set of a vertex, for property tests.
  std::vector<MachineId> ConstraintSet(graph::VertexId v) const;

  /// Searches for a perfect difference set of size p + 1 modulo
  /// p^2 + p + 1. Exposed for tests; returns nullopt if the backtracking
  /// search fails (p not a prime power).
  static std::optional<std::vector<uint32_t>> FindDifferenceSet(uint32_t p);

  /// True when n == p^2 + p + 1 for some prime p; sets *p_out.
  static bool IsPdsMachineCount(uint32_t n, uint32_t* p_out);

 private:
  PdsPartitioner(const PartitionContext& context,
                 std::vector<uint32_t> difference_set);

  uint32_t num_partitions_;
  uint64_t seed_;
  std::vector<uint32_t> difference_set_;
  /// constraint_sets_[b] = sorted machines of hash-bucket b's translate.
  std::vector<std::vector<MachineId>> constraint_sets_;
};

}  // namespace gdp::partition

#endif  // GDP_PARTITION_CONSTRAINED_H_
