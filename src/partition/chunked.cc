#include "partition/chunked.h"

#include <memory>
#include <utility>

#include "partition/strategy_registration.h"
#include "partition/strategy_registry.h"

#include <algorithm>

#include "util/check.h"

namespace gdp::partition {

ChunkedPartitioner::ChunkedPartitioner(const PartitionContext& context)
    : Partitioner(context),
      num_partitions_(context.num_partitions),
      num_vertices_(context.num_vertices),
      out_degree_(context.num_vertices, 0) {
  GDP_CHECK_GT(num_vertices_, 0u);
  // Uniform vertex ranges until pass 0 has counted degrees.
  boundaries_.resize(num_partitions_);
  for (uint32_t p = 0; p < num_partitions_; ++p) {
    boundaries_[p] = static_cast<graph::VertexId>(
        static_cast<uint64_t>(num_vertices_) * (p + 1) / num_partitions_);
  }
}

void ChunkedPartitioner::PrepareForIngest(uint32_t num_loaders) {
  Partitioner::PrepareForIngest(num_loaders);
  while (out_degree_shards_.size() + 1 < num_loaders) {
    out_degree_shards_.emplace_back(out_degree_.size(), 0);
  }
}

void ChunkedPartitioner::EndPass(uint32_t pass) {
  if (pass != 0) return;
  for (const std::vector<uint32_t>& shard : out_degree_shards_) {
    for (size_t v = 0; v < out_degree_.size(); ++v) {
      out_degree_[v] += shard[v];
    }
  }
  out_degree_shards_.clear();
}

MachineId ChunkedPartitioner::ChunkOf(graph::VertexId v) const {
  auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), v);
  return static_cast<MachineId>(it - boundaries_.begin());
}

void ChunkedPartitioner::BeginPass(uint32_t pass) {
  if (pass != 1) return;
  // Re-cut the ranges so each chunk carries ~1/P of the edge mass (Gemini
  // balances on a combined vertex+edge weight; edge mass is the dominant
  // term and is what we balance here).
  uint64_t total = 0;
  for (uint32_t d : out_degree_) total += d;
  uint64_t per_chunk = total / num_partitions_ + 1;
  uint64_t acc = 0;
  uint32_t chunk = 0;
  for (graph::VertexId v = 0; v < num_vertices_ && chunk + 1 < num_partitions_;
       ++v) {
    acc += out_degree_[v];
    if (acc >= per_chunk * (chunk + 1)) {
      boundaries_[chunk] = v + 1;
      ++chunk;
    }
  }
  for (; chunk + 1 < num_partitions_; ++chunk) {
    boundaries_[chunk] = num_vertices_;
  }
  boundaries_[num_partitions_ - 1] = num_vertices_;
}

MachineId ChunkedPartitioner::Assign(const graph::Edge& e, uint32_t pass,
                                     uint32_t loader) {
  if (pass == 0) {
    AddWorkTicks(loader, 24);  // 1.2 units
    ++DegreeCell(loader, e.src);
    return ChunkOf(e.src);
  }
  AddWorkTicks(loader, 12);  // 0.6 units
  return ChunkOf(e.src);  // ingest keeps it if unchanged
}

uint64_t ChunkedPartitioner::ApproxStateBytes() const {
  return out_degree_.size() * sizeof(uint32_t) +
         boundaries_.size() * sizeof(graph::VertexId);
}

MachineId ChunkedPartitioner::PreferredMaster(graph::VertexId v) const {
  return ChunkOf(v);
}


void RegisterChunkedStrategies() {
  StrategyRegistry::Instance().Register(StrategyInfo{
      .kind = StrategyKind::kChunked,
      .name = "Chunked",
      .traits = {.passes_required = 2, .needs_degree_precompute = true},
      .factory = [](const PartitionContext& context)
          -> std::unique_ptr<Partitioner> {
        return std::make_unique<ChunkedPartitioner>(context);
      }});
}

}  // namespace gdp::partition
