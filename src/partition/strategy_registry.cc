#include "partition/strategy_registry.h"

#include <mutex>
#include <utility>

#include "partition/strategy_registration.h"
#include "util/check.h"

namespace gdp::partition {

StrategyRegistry& StrategyRegistry::Instance() {
  // Intentionally leaked: StrategyInfo pointers handed out by Find() must
  // outlive every static-destruction-order consumer.
  static StrategyRegistry* registry =
      new StrategyRegistry();  // NOLINT(no-naked-new)
  return *registry;
}

void StrategyRegistry::Register(StrategyInfo info) {
  GDP_CHECK(info.factory != nullptr);
  GDP_CHECK(!info.name.empty());
  util::MutexLock lock(mu_);
  for (const auto& entry : entries_) {
    GDP_CHECK(entry->kind != info.kind);
    GDP_CHECK(entry->name != info.name);
    for (const std::string& alias : info.aliases) {
      GDP_CHECK(entry->name != alias);
      for (const std::string& existing : entry->aliases) {
        GDP_CHECK(existing != alias && existing != info.name);
      }
    }
  }
  entries_.push_back(std::make_unique<StrategyInfo>(std::move(info)));
}

const StrategyInfo* StrategyRegistry::Find(StrategyKind kind) const {
  util::MutexLock lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->kind == kind) return entry.get();
  }
  return nullptr;
}

const StrategyInfo* StrategyRegistry::FindByName(
    const std::string& name) const {
  util::MutexLock lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->name == name) return entry.get();
    for (const std::string& alias : entry->aliases) {
      if (alias == name) return entry.get();
    }
  }
  return nullptr;
}

std::vector<const StrategyInfo*> StrategyRegistry::All() const {
  util::MutexLock lock(mu_);
  std::vector<const StrategyInfo*> all;
  all.reserve(entries_.size());
  for (const auto& entry : entries_) all.push_back(entry.get());
  return all;
}

void EnsureBuiltinStrategiesRegistered() {
  // The manifest runs once, in this fixed order, so registration order —
  // and with it AllStrategies()/roster iteration order — is deterministic
  // no matter which query path hits the registry first.
  static std::once_flag once;
  std::call_once(once, [] {
    RegisterHashStrategies();
    RegisterConstrainedStrategies();
    RegisterGreedyStrategies();
    RegisterHybridStrategies();
    RegisterChunkedStrategies();
    RegisterExpansionStrategies();
    RegisterTwoPhaseStrategies();
    RegisterHepStrategies();
  });
}

std::vector<StrategyKind> ExpansionFamilyStrategies() {
  return {StrategyKind::kNe, StrategyKind::kSne, StrategyKind::kTwoPs,
          StrategyKind::kHep};
}

std::vector<StrategyKind> MemoryBudgetAwareStrategies() {
  EnsureBuiltinStrategiesRegistered();
  return StrategyRegistry::Instance().KindsWhere(
      [](const StrategyTraits& t) { return t.memory_budget_aware; });
}

}  // namespace gdp::partition
