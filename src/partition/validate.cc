#include "partition/validate.h"

#include <cmath>
#include <string>

namespace gdp::partition {

namespace {

std::string VertexStr(graph::VertexId v) {
  return "vertex " + std::to_string(v);
}

/// First machine in `a`'s set for `v` that is missing from `b`'s, or
/// ReplicaTable::kInvalid when `a`'s set is a subset of `b`'s.
sim::MachineId FirstMissing(const ReplicaTable& a, const ReplicaTable& b,
                            graph::VertexId v) {
  sim::MachineId missing = ReplicaTable::kInvalid;
  a.ForEach(v, [&](sim::MachineId m) {
    if (missing == ReplicaTable::kInvalid && !b.Contains(v, m)) missing = m;
  });
  return missing;
}

util::Status CompareTables(const ReplicaTable& expected,
                           const ReplicaTable& actual, graph::VertexId v,
                           const char* table_name) {
  sim::MachineId stale = FirstMissing(actual, expected, v);
  if (stale != ReplicaTable::kInvalid) {
    return util::Status::FailedPrecondition(
        std::string(table_name) + ": " + VertexStr(v) +
        " lists partition " + std::to_string(stale) +
        " which no incident edge (or master) justifies (stale mirror)");
  }
  sim::MachineId lost = FirstMissing(expected, actual, v);
  if (lost != ReplicaTable::kInvalid) {
    return util::Status::FailedPrecondition(
        std::string(table_name) + ": " + VertexStr(v) +
        " is missing partition " + std::to_string(lost) +
        " required by an incident edge (or master)");
  }
  return util::Status::Ok();
}

}  // namespace

util::Status ValidateCsr(std::span<const uint64_t> offsets,
                         std::span<const graph::VertexId> adjacency) {
  if (offsets.empty()) {
    if (!adjacency.empty()) {
      return util::Status::FailedPrecondition(
          "csr: no offsets but " + std::to_string(adjacency.size()) +
          " adjacency entries");
    }
    return util::Status::Ok();
  }
  if (offsets.front() != 0) {
    return util::Status::FailedPrecondition(
        "csr: offsets[0] = " + std::to_string(offsets.front()) +
        ", expected 0");
  }
  const graph::VertexId n = static_cast<graph::VertexId>(offsets.size() - 1);
  for (graph::VertexId v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return util::Status::FailedPrecondition(
          "csr: offsets not monotone at " + VertexStr(v) + ": " +
          std::to_string(offsets[v]) + " > " + std::to_string(offsets[v + 1]));
    }
  }
  if (offsets.back() != adjacency.size()) {
    return util::Status::FailedPrecondition(
        "csr: offsets.back() = " + std::to_string(offsets.back()) +
        " but adjacency has " + std::to_string(adjacency.size()) + " entries");
  }
  for (size_t i = 0; i < adjacency.size(); ++i) {
    if (adjacency[i] >= n) {
      return util::Status::FailedPrecondition(
          "csr: adjacency[" + std::to_string(i) + "] = " +
          std::to_string(adjacency[i]) + " out of range [0, " +
          std::to_string(n) + ")");
    }
  }
  return util::Status::Ok();
}

util::Status ValidateCsr(const graph::Csr& csr) {
  return ValidateCsr(csr.offsets(), csr.adjacency());
}

util::Status ValidatePlacement(const DistributedGraph& dg) {
  if (dg.edge_partition.size() != dg.edges.size()) {
    return util::Status::FailedPrecondition(
        "placement: " + std::to_string(dg.edges.size()) + " edges but " +
        std::to_string(dg.edge_partition.size()) + " partition assignments");
  }
  if (!dg.edges.empty() && dg.num_partitions == 0) {
    return util::Status::FailedPrecondition(
        "placement: edges present but num_partitions == 0");
  }
  for (size_t i = 0; i < dg.edge_partition.size(); ++i) {
    if (dg.edge_partition[i] >= dg.num_partitions) {
      return util::Status::FailedPrecondition(
          "placement: edge " + std::to_string(i) + " (" +
          std::to_string(dg.edges[i].src) + "->" +
          std::to_string(dg.edges[i].dst) + ") assigned partition " +
          std::to_string(dg.edge_partition[i]) + ", valid range [0, " +
          std::to_string(dg.num_partitions) + ")");
    }
  }
  if (dg.partition_edge_count.size() != dg.num_partitions) {
    return util::Status::FailedPrecondition(
        "placement: partition_edge_count has " +
        std::to_string(dg.partition_edge_count.size()) + " entries for " +
        std::to_string(dg.num_partitions) + " partitions");
  }
  std::vector<uint64_t> recount(dg.num_partitions, 0);
  for (sim::MachineId p : dg.edge_partition) ++recount[p];
  for (uint32_t p = 0; p < dg.num_partitions; ++p) {
    if (recount[p] != dg.partition_edge_count[p]) {
      return util::Status::FailedPrecondition(
          "placement: partition " + std::to_string(p) + " reports " +
          std::to_string(dg.partition_edge_count[p]) + " edges, recount is " +
          std::to_string(recount[p]));
    }
  }

  // Degree caches are optional, but when present they must agree with the
  // edge vector (a stale cache silently skews engine message accounting).
  if (!dg.out_degree.empty() || !dg.in_degree.empty()) {
    if (!dg.HasDegreeCache()) {
      return util::Status::FailedPrecondition(
          "placement: degree cache sized " +
          std::to_string(dg.out_degree.size()) + "/" +
          std::to_string(dg.in_degree.size()) + " for " +
          std::to_string(dg.num_vertices) + " vertices");
    }
    std::vector<uint64_t> out_recount(dg.num_vertices, 0);
    std::vector<uint64_t> in_recount(dg.num_vertices, 0);
    for (const graph::Edge& e : dg.edges) {
      ++out_recount[e.src];
      ++in_recount[e.dst];
    }
    for (graph::VertexId v = 0; v < dg.num_vertices; ++v) {
      if (out_recount[v] != dg.out_degree[v] ||
          in_recount[v] != dg.in_degree[v]) {
        return util::Status::FailedPrecondition(
            "placement: " + VertexStr(v) + " cached degrees " +
            std::to_string(dg.out_degree[v]) + "/" +
            std::to_string(dg.in_degree[v]) + " but edges give " +
            std::to_string(out_recount[v]) + "/" +
            std::to_string(in_recount[v]));
      }
    }
  }
  return util::Status::Ok();
}

util::Status ValidateReplicaTable(const DistributedGraph& dg) {
  const graph::VertexId n = dg.num_vertices;
  if (dg.master.size() != n || dg.present.size() != n) {
    return util::Status::FailedPrecondition(
        "replica table: master/present sized " +
        std::to_string(dg.master.size()) + "/" +
        std::to_string(dg.present.size()) + " for " + std::to_string(n) +
        " vertices");
  }
  if (dg.replicas.num_vertices() != n ||
      dg.in_edge_partitions.num_vertices() != n ||
      dg.out_edge_partitions.num_vertices() != n) {
    return util::Status::FailedPrecondition(
        "replica table: bitsets not sized for " + std::to_string(n) +
        " vertices");
  }
  if (dg.edge_partition.size() != dg.edges.size()) {
    return util::Status::FailedPrecondition(
        "replica table: " + std::to_string(dg.edges.size()) + " edges but " +
        std::to_string(dg.edge_partition.size()) + " partition assignments");
  }

  // Recompute the three tables and the present set from the edges, exactly
  // as ingest finalization does, then demand equality.
  ReplicaTable expected_replicas(n, dg.num_partitions);
  ReplicaTable expected_in(n, dg.num_partitions);
  ReplicaTable expected_out(n, dg.num_partitions);
  std::vector<bool> expected_present(n, false);
  for (size_t i = 0; i < dg.edges.size(); ++i) {
    const graph::Edge& e = dg.edges[i];
    if (e.src >= n || e.dst >= n) {
      return util::Status::FailedPrecondition(
          "replica table: edge " + std::to_string(i) + " endpoint out of " +
          "range [0, " + std::to_string(n) + ")");
    }
    const sim::MachineId p = dg.edge_partition[i];
    expected_replicas.Add(e.src, p);
    expected_replicas.Add(e.dst, p);
    expected_out.Add(e.src, p);
    expected_in.Add(e.dst, p);
    expected_present[e.src] = true;
    expected_present[e.dst] = true;
  }

  uint64_t present_count = 0;
  uint64_t replica_total = 0;
  for (graph::VertexId v = 0; v < n; ++v) {
    if (expected_present[v] != static_cast<bool>(dg.present[v])) {
      return util::Status::FailedPrecondition(
          "replica table: " + VertexStr(v) + " marked " +
          (dg.present[v] ? "present" : "absent") + " but its edge set says " +
          (expected_present[v] ? "present" : "absent"));
    }
    const sim::MachineId master = dg.master[v];
    if (!expected_present[v]) {
      if (master != ReplicaTable::kInvalid) {
        return util::Status::FailedPrecondition(
            "replica table: absent " + VertexStr(v) + " has master " +
            std::to_string(master));
      }
      if (dg.replicas.Count(v) != 0) {
        return util::Status::FailedPrecondition(
            "replica table: absent " + VertexStr(v) + " has " +
            std::to_string(dg.replicas.Count(v)) + " replicas");
      }
      continue;
    }
    ++present_count;
    if (master == ReplicaTable::kInvalid) {
      return util::Status::FailedPrecondition(
          "replica table: present " + VertexStr(v) + " has no master");
    }
    if (master >= dg.num_partitions) {
      return util::Status::FailedPrecondition(
          "replica table: " + VertexStr(v) + " master partition " +
          std::to_string(master) + " out of range [0, " +
          std::to_string(dg.num_partitions) + ")");
    }
    if (!dg.replicas.Contains(v, master)) {
      return util::Status::FailedPrecondition(
          "replica table: " + VertexStr(v) + " master partition " +
          std::to_string(master) + " not in its replica set");
    }
    // The replica set is exactly (incident-edge partitions) + the master.
    expected_replicas.Add(v, master);
    GDP_RETURN_IF_ERROR(
        CompareTables(expected_replicas, dg.replicas, v, "replica table"));
    GDP_RETURN_IF_ERROR(CompareTables(expected_in, dg.in_edge_partitions, v,
                                      "in-edge table"));
    GDP_RETURN_IF_ERROR(CompareTables(expected_out, dg.out_edge_partitions, v,
                                      "out-edge table"));
    replica_total += dg.replicas.Count(v);
  }

  if (present_count != dg.num_present_vertices) {
    return util::Status::FailedPrecondition(
        "replica table: num_present_vertices = " +
        std::to_string(dg.num_present_vertices) + ", recount is " +
        std::to_string(present_count));
  }
  const double expected_rf =
      present_count > 0
          ? static_cast<double>(replica_total) / static_cast<double>(present_count)
          : 0.0;
  if (std::fabs(expected_rf - dg.replication_factor) > 1e-9) {
    return util::Status::FailedPrecondition(
        "replica table: reported replication factor " +
        std::to_string(dg.replication_factor) + " but recomputed " +
        std::to_string(expected_rf));
  }
  return util::Status::Ok();
}

util::Status ValidateDistributedGraph(const DistributedGraph& dg) {
  GDP_RETURN_IF_ERROR(ValidatePlacement(dg));
  GDP_RETURN_IF_ERROR(ValidateReplicaTable(dg));
  return util::Status::Ok();
}

}  // namespace gdp::partition
