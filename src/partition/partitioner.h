#ifndef GDP_PARTITION_PARTITIONER_H_
#define GDP_PARTITION_PARTITIONER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/types.h"
#include "sim/cluster.h"
#include "util/status.h"

namespace gdp::partition {

using sim::MachineId;

/// Sentinel returned from reassignment passes meaning "keep the placement
/// from the previous pass".
inline constexpr MachineId kKeepPlacement = static_cast<MachineId>(-1);

/// Every partitioning strategy evaluated in the paper (Table 1.1 plus the
/// thesis' own 1D-Target variant and PDS, which the paper describes but
/// could not run for cluster-size reasons).
enum class StrategyKind {
  kRandom,            ///< PowerGraph/PowerLyra Random == GraphX Canonical Random
  kAsymmetricRandom,  ///< GraphX "Random": direction-sensitive hash
  kGrid,              ///< constrained: row+column of a machine matrix
  kPds,               ///< constrained: perfect difference sets (p^2+p+1)
  kOblivious,         ///< greedy, loader-local state
  kHdrf,              ///< greedy, degree-aware (High-Degree Replicated First)
  kHybrid,            ///< PowerLyra: edge-cut low-degree, vertex-cut high-degree
  kHybridGinger,      ///< Hybrid + Fennel-style low-degree refinement
  kOneD,              ///< GraphX 1D: hash by source
  kOneDTarget,        ///< thesis variant: hash by target
  kTwoD,              ///< GraphX 2D: source column x destination row
  /// Extension beyond the paper: Gemini-style contiguous vertex ranges
  /// balanced by edge mass (§2.2 related work). Not part of AllStrategies
  /// — the paper's experiment grids exclude it; see
  /// bench_ablation_chunked.
  kChunked,
  /// Extension beyond the paper: Degree-Based Hashing (Xie et al. 2014),
  /// a one-pass degree-aware hash. Not part of AllStrategies; see
  /// bench_ablation_dbh.
  kDbh,
};

/// All strategies, in a stable display order.
const std::vector<StrategyKind>& AllStrategies();

/// Short display name ("Grid", "HDRF", "H-Ginger", ...).
const char* StrategyName(StrategyKind kind);

/// Parses a display name back to a kind.
util::StatusOr<StrategyKind> StrategyFromName(const std::string& name);

/// Strategy sets shipped by each system (paper Table 1.1, minus PDS where
/// the paper also excluded it — we keep it since the simulator has no
/// cluster-size constraint).
std::vector<StrategyKind> PowerGraphStrategies();
std::vector<StrategyKind> PowerLyraStrategies();
std::vector<StrategyKind> GraphXStrategies();

/// Configuration handed to every partitioner.
struct PartitionContext {
  uint32_t num_partitions = 1;
  /// Upper bound on vertex ids; needed by degree-tracking strategies.
  graph::VertexId num_vertices = 0;
  /// Number of parallel loaders (the paper splits each dataset into one
  /// block per machine); greedy strategies keep *per-loader* state.
  uint32_t num_loaders = 1;
  uint64_t seed = 0;
  /// Hybrid / Hybrid-Ginger in-degree threshold (PowerLyra default 100).
  uint64_t hybrid_threshold = 100;
  /// HDRF balance weight (PowerGraph hardcodes lambda = 1).
  double hdrf_lambda = 1.0;
  /// HDRF uses partial degrees when true (the shipped behaviour); exact
  /// degrees when false (the ablation the HDRF authors discuss).
  bool hdrf_partial_degrees = true;
};

/// Streaming edge-partitioner interface. The Ingestor drives one or more
/// passes over the edge stream; pass 0 must return a machine for every
/// edge, later (reassignment) passes may return kKeepPlacement.
///
/// Contract: Assign is called for every edge of the stream, in stream
/// order, once per pass; `loader` identifies which parallel loader is
/// processing the edge (constant for a given edge across passes).
class Partitioner {
 public:
  explicit Partitioner(const PartitionContext& context) : context_(context) {}
  virtual ~Partitioner() = default;

  const PartitionContext& context() const { return context_; }
  uint32_t num_partitions() const { return context_.num_partitions; }

  virtual StrategyKind kind() const = 0;

  /// Number of passes over the edge stream (1 for streaming strategies,
  /// 2 for Hybrid, 3 for Hybrid-Ginger).
  virtual uint32_t num_passes() const { return 1; }

  /// Notifies the start of a pass.
  virtual void BeginPass(uint32_t pass) { (void)pass; }

  /// Assigns edge `e` on `pass`; see class contract. Implementations must
  /// record their per-edge CPU cost with AddWork(); hash strategies charge
  /// ~1 unit, greedy heuristics charge more (they score each candidate
  /// machine and probe replica sets), which is what makes their ingress
  /// slower on skewed graphs (Fig 5.7).
  virtual MachineId Assign(const graph::Edge& e, uint32_t pass,
                           uint32_t loader) = 0;

  /// Returns work units accumulated by Assign() calls since the last call,
  /// and resets the accumulator. Consumed by the Ingestor after each edge
  /// (or batch) to charge the loading machine.
  double TakeAssignWork() {
    double w = work_accumulator_;
    work_accumulator_ = 0;
    return w;
  }

  /// Approximate bytes of partitioner state currently held (degree
  /// counters, replica bitsets, Ginger's neighbour-count matrix). Charged
  /// to the cluster as ingress memory; this is what makes Hybrid/H-Ginger
  /// peak memory land above the replication-factor trend line (Fig 6.2).
  virtual uint64_t ApproxStateBytes() const { return 0; }

  /// Master placement preference: the machine a vertex's master replica
  /// should live on, or kKeepPlacement for "engine default" (hash-random
  /// among replicas). PowerLyra-style strategies use this to colocate
  /// low-degree masters with their in-edges.
  virtual MachineId PreferredMaster(graph::VertexId v) const {
    (void)v;
    return kKeepPlacement;
  }

 protected:
  /// Charges `work` CPU units to the current Assign call.
  void AddWork(double work) { work_accumulator_ += work; }

 private:
  PartitionContext context_;
  double work_accumulator_ = 0;
};

/// Factory for any strategy.
std::unique_ptr<Partitioner> MakePartitioner(StrategyKind kind,
                                             const PartitionContext& context);

}  // namespace gdp::partition

#endif  // GDP_PARTITION_PARTITIONER_H_
