#ifndef GDP_PARTITION_PARTITIONER_H_
#define GDP_PARTITION_PARTITIONER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/types.h"
#include "sim/cluster.h"
#include "util/status.h"

namespace gdp::partition {

using sim::MachineId;

/// Sentinel returned from reassignment passes meaning "keep the placement
/// from the previous pass".
inline constexpr MachineId kKeepPlacement = static_cast<MachineId>(-1);

/// Every partitioning strategy evaluated in the paper (Table 1.1 plus the
/// thesis' own 1D-Target variant and PDS, which the paper describes but
/// could not run for cluster-size reasons).
enum class StrategyKind {
  kRandom,            ///< PowerGraph/PowerLyra Random == GraphX Canonical Random
  kAsymmetricRandom,  ///< GraphX "Random": direction-sensitive hash
  kGrid,              ///< constrained: row+column of a machine matrix
  kPds,               ///< constrained: perfect difference sets (p^2+p+1)
  kOblivious,         ///< greedy, loader-local state
  kHdrf,              ///< greedy, degree-aware (High-Degree Replicated First)
  kHybrid,            ///< PowerLyra: edge-cut low-degree, vertex-cut high-degree
  kHybridGinger,      ///< Hybrid + Fennel-style low-degree refinement
  kOneD,              ///< GraphX 1D: hash by source
  kOneDTarget,        ///< thesis variant: hash by target
  kTwoD,              ///< GraphX 2D: source column x destination row
  /// Extension beyond the paper: Gemini-style contiguous vertex ranges
  /// balanced by edge mass (§2.2 related work). Not part of AllStrategies
  /// — the paper's experiment grids exclude it; see
  /// bench_ablation_chunked.
  kChunked,
  /// Extension beyond the paper: Degree-Based Hashing (Xie et al. 2014),
  /// a one-pass degree-aware hash. Not part of AllStrategies; see
  /// bench_ablation_dbh.
  kDbh,
  /// Post-paper neighbourhood-expansion family (not in AllStrategies —
  /// the paper's grids exclude them; see bench_ne_family):
  /// NE: in-memory core-set expansion (Zhang et al., KDD'17).
  kNe,
  /// SNE: streaming NE over bounded-memory chunks.
  kSne,
  /// 2PS: two-phase streaming — clustering pass + cluster-aware greedy.
  kTwoPs,
  /// HEP-style hybrid: in-memory NE for low-degree vertices' edges,
  /// degree-based hashing for the high-degree remainder, split threshold
  /// derived from the memory budget (Mayer & Jacobsen, 2021).
  kHep,
};

/// All strategies, in a stable display order.
const std::vector<StrategyKind>& AllStrategies();

/// Short display name ("Grid", "HDRF", "H-Ginger", ...).
const char* StrategyName(StrategyKind kind);

/// Parses a display name back to a kind.
util::StatusOr<StrategyKind> StrategyFromName(const std::string& name);

/// Strategy sets shipped by each system (paper Table 1.1, minus PDS where
/// the paper also excluded it — we keep it since the simulator has no
/// cluster-size constraint).
std::vector<StrategyKind> PowerGraphStrategies();
std::vector<StrategyKind> PowerLyraStrategies();
std::vector<StrategyKind> GraphXStrategies();

/// Configuration handed to every partitioner.
struct PartitionContext {
  uint32_t num_partitions = 1;
  /// Upper bound on vertex ids; needed by degree-tracking strategies.
  graph::VertexId num_vertices = 0;
  /// Number of parallel loaders (the paper splits each dataset into one
  /// block per machine); greedy strategies keep *per-loader* state.
  uint32_t num_loaders = 1;
  uint64_t seed = 0;
  /// Hybrid / Hybrid-Ginger in-degree threshold (PowerLyra default 100).
  uint64_t hybrid_threshold = 100;
  /// HDRF balance weight (PowerGraph hardcodes lambda = 1).
  double hdrf_lambda = 1.0;
  /// HDRF uses partial degrees when true (the shipped behaviour); exact
  /// degrees when false (the ablation the HDRF authors discuss).
  bool hdrf_partial_degrees = true;
  /// Ingress memory budget in bytes (0 = unbounded). Strategies whose
  /// StrategyTraits declare memory_budget_aware condition their *results*
  /// on it: SNE sizes its resident expansion chunk from it, HEP derives
  /// its low/high-degree split threshold from it. Mirrors
  /// IngestOptions::memory_budget_bytes (which bounds only the decode
  /// ring and never changes results); IngestWithStrategy copies the
  /// option in when the context leaves this 0.
  uint64_t memory_budget_bytes = 0;
};

/// Streaming edge-partitioner interface. The Ingestor drives one or more
/// passes over the edge stream; pass 0 must return a machine for every
/// edge, later (reassignment) passes may return kKeepPlacement.
///
/// Contract: Assign is called for every edge of the stream, in stream
/// order, once per pass; `loader` identifies which parallel loader is
/// processing the edge (constant for a given edge across passes).
///
/// Thread-safety contract (the parallel ingress pipeline relies on this):
///  - Before the first pass the ingestor calls PrepareForIngest(L) with the
///    loader count it will drive, on one thread.
///  - During a pass for which PassIsParallelSafe(pass) is true, Assign may
///    be called concurrently from different threads for *different* loader
///    indices. Calls for the same loader are always serial and in stream
///    order. Implementations must therefore shard every mutable member by
///    loader (GreedyPartitionerBase's LoaderState, Hybrid's degree-counter
///    shards) or be read-only during that pass; work accounting is already
///    per-loader (AddWorkTicks). Passes that mutate shared state in stream
///    order (Hybrid-Ginger's refinement, DBH's global degree counters)
///    return false and are run serially by the ingestor.
///  - EndPass(pass) is called on one thread after every loader finished the
///    pass; shard merges belong there.
///  - After the last pass, ApproxStateBytes() and PreferredMaster() must be
///    safe to call concurrently with each other (const, no caching).
class Partitioner {
 public:
  explicit Partitioner(const PartitionContext& context)
      : context_(context),
        work_ticks_(context.num_loaders > 0 ? context.num_loaders : 1, 0) {}
  virtual ~Partitioner() = default;

  const PartitionContext& context() const { return context_; }
  uint32_t num_partitions() const { return context_.num_partitions; }

  virtual StrategyKind kind() const = 0;

  /// Number of passes over the edge stream (1 for streaming strategies,
  /// 2 for Hybrid, 3 for Hybrid-Ginger).
  virtual uint32_t num_passes() const { return 1; }

  /// Notifies the start of a pass.
  virtual void BeginPass(uint32_t pass) { (void)pass; }

  /// Notifies that every loader finished `pass` (single-threaded). Sharded
  /// strategies merge their per-loader counters here; see the thread-safety
  /// contract above.
  virtual void EndPass(uint32_t pass) { (void)pass; }

  /// True when Assign may be called concurrently for different loaders on
  /// `pass`. The default suits stateless (hash/constrained) and
  /// loader-sharded (greedy) strategies; strategies with stream-order
  /// shared state override per pass.
  virtual bool PassIsParallelSafe(uint32_t pass) const {
    (void)pass;
    return true;
  }

  /// Sizes per-loader scratch (work-tick lanes, degree-counter shards) for
  /// the `num_loaders` the ingestor will drive. Called once, before the
  /// first BeginPass, on one thread. Overrides must call the base.
  virtual void PrepareForIngest(uint32_t num_loaders) {
    if (work_ticks_.size() < num_loaders) work_ticks_.resize(num_loaders, 0);
  }

  /// Assigns edge `e` on `pass`; see class contract. Implementations must
  /// record their per-edge CPU cost with AddWorkTicks(); hash strategies
  /// charge ~1 work unit (20 ticks), greedy heuristics charge more (they
  /// score each candidate machine and probe replica sets), which is what
  /// makes their ingress slower on skewed graphs (Fig 5.7).
  virtual MachineId Assign(const graph::Edge& e, uint32_t pass,
                           uint32_t loader) = 0;

  /// Granularity of work accounting: one tick = 0.05 simulated work units.
  /// Every modeled Assign cost is an integer tick count, so per-loader
  /// accounting lanes sum exactly (uint64) and the ingestor can flush one
  /// closed-form AddWork per machine — the basis of the parallel pipeline's
  /// bit-identical cost contract.
  static constexpr double kWorkPerTick = 0.05;
  /// Ticks equivalent of one legacy AddWork(1.0) unit.
  static constexpr uint64_t kTicksPerWorkUnit = 20;

  /// Returns the work ticks accumulated by `loader`'s Assign() calls since
  /// the last call, and resets that lane. Consumed by the Ingestor after
  /// each edge to charge the loading machine.
  uint64_t TakeAssignWorkTicks(uint32_t loader) {
    uint64_t t = work_ticks_[loader];
    work_ticks_[loader] = 0;
    return t;
  }

  /// Approximate bytes of partitioner state currently held (degree
  /// counters, replica bitsets, Ginger's neighbour-count matrix). Charged
  /// to the cluster as ingress memory; this is what makes Hybrid/H-Ginger
  /// peak memory land above the replication-factor trend line (Fig 6.2).
  virtual uint64_t ApproxStateBytes() const { return 0; }

  /// Master placement preference: the machine a vertex's master replica
  /// should live on, or kKeepPlacement for "engine default" (hash-random
  /// among replicas). PowerLyra-style strategies use this to colocate
  /// low-degree masters with their in-edges.
  virtual MachineId PreferredMaster(graph::VertexId v) const {
    (void)v;
    return kKeepPlacement;
  }

 protected:
  /// Charges `ticks` x kWorkPerTick CPU units to `loader`'s accounting
  /// lane. Safe to call concurrently for different loaders.
  void AddWorkTicks(uint32_t loader, uint64_t ticks) {
    work_ticks_[loader] += ticks;
  }

 private:
  PartitionContext context_;
  /// Per-loader work-tick lanes; sized by the context's loader count and
  /// grown by PrepareForIngest.
  std::vector<uint64_t> work_ticks_;
};

/// Factory for any strategy. A thin wrapper over
/// StrategyRegistry::Instance().Find(kind)->factory (strategy_registry.h);
/// dies on an unregistered kind.
std::unique_ptr<Partitioner> MakePartitioner(StrategyKind kind,
                                             const PartitionContext& context);

}  // namespace gdp::partition

#endif  // GDP_PARTITION_PARTITIONER_H_
