#include "partition/constrained.h"

#include <memory>
#include <utility>

#include "partition/strategy_registration.h"
#include "partition/strategy_registry.h"

#include <algorithm>
#include <cmath>

#include "util/hash.h"
#include "util/check.h"

namespace gdp::partition {

using util::HashCanonicalEdge;
using util::Mix64;

// ---------------------------------------------------------------------------
// Grid
// ---------------------------------------------------------------------------

GridPartitioner::GridPartitioner(const PartitionContext& context)
    : Partitioner(context),
      num_partitions_(context.num_partitions),
      seed_(context.seed) {
  GDP_CHECK_GE(num_partitions_, 1u);
  side_ = static_cast<uint32_t>(
      std::ceil(std::sqrt(static_cast<double>(num_partitions_))));
  if (side_ == 0) side_ = 1;
  exact_square_ = side_ * side_ == num_partitions_;
}

uint64_t GridPartitioner::CellOf(graph::VertexId v) const {
  return Mix64(v ^ seed_) % (static_cast<uint64_t>(side_) * side_);
}

MachineId GridPartitioner::Assign(const graph::Edge& e, uint32_t pass,
                                  uint32_t loader) {
  (void)pass;
  AddWorkTicks(loader, kTicksPerWorkUnit);
  uint64_t cell_u = CellOf(e.src);
  uint64_t cell_v = CellOf(e.dst);
  uint64_t r1 = cell_u / side_, c1 = cell_u % side_;
  uint64_t r2 = cell_v / side_, c2 = cell_v % side_;
  // The two canonical intersection cells of (row r1 + col c1) and
  // (row r2 + col c2); the edge hash breaks the tie so load spreads evenly.
  // Order the two candidate cells before hashing the pick so that (u, v)
  // and (v, u) land on the same machine, matching PowerGraph's Random
  // (whose canonical hashing Grid inherits).
  uint64_t candidate_a = r1 * side_ + c2;
  uint64_t candidate_b = r2 * side_ + c1;
  uint64_t lo = std::min(candidate_a, candidate_b);
  uint64_t hi = std::max(candidate_a, candidate_b);
  uint64_t pick = HashCanonicalEdge(e.src, e.dst) & 1;
  uint64_t cell = pick == 0 ? lo : hi;
  return static_cast<MachineId>(cell % num_partitions_);
}

std::vector<MachineId> GridPartitioner::ConstraintSet(
    graph::VertexId v) const {
  uint64_t cell = CellOf(v);
  uint64_t r = cell / side_, c = cell % side_;
  std::vector<MachineId> machines;
  for (uint32_t i = 0; i < side_; ++i) {
    machines.push_back(static_cast<MachineId>((r * side_ + i) %
                                              num_partitions_));
    machines.push_back(static_cast<MachineId>((i * side_ + c) %
                                              num_partitions_));
  }
  std::sort(machines.begin(), machines.end());
  machines.erase(std::unique(machines.begin(), machines.end()),
                 machines.end());
  return machines;
}

// ---------------------------------------------------------------------------
// PDS
// ---------------------------------------------------------------------------

namespace {
bool IsPrime(uint32_t n) {
  if (n < 2) return false;
  for (uint32_t d = 2; d * d <= n; ++d) {
    if (n % d == 0) return false;
  }
  return true;
}
}  // namespace

bool PdsPartitioner::IsPdsMachineCount(uint32_t n, uint32_t* p_out) {
  for (uint32_t p = 2; p * p + p + 1 <= n; ++p) {
    if (p * p + p + 1 == n && IsPrime(p)) {
      if (p_out != nullptr) *p_out = p;
      return true;
    }
  }
  return false;
}

std::optional<std::vector<uint32_t>> PdsPartitioner::FindDifferenceSet(
    uint32_t p) {
  const uint32_t n = p * p + p + 1;
  const uint32_t k = p + 1;
  // Backtracking search for {d_0 < d_1 < ... < d_k-1} with all pairwise
  // differences distinct mod n. Normalized to start 0, 1 (every planar
  // difference set has a translate/scale in this form).
  std::vector<uint32_t> set = {0, 1};
  std::vector<bool> used(n, false);
  used[1] = true;          // 1 - 0
  used[n - 1] = true;      // 0 - 1
  auto try_extend = [&](auto&& self) -> bool {
    if (set.size() == k) return true;
    for (uint32_t cand = set.back() + 1; cand < n; ++cand) {
      // Mark the candidate's new differences one at a time so collisions
      // *among* them (e.g., cand - d1 == (d2 - cand) mod n) are caught,
      // not just collisions with previously marked differences.
      std::vector<uint32_t> marked;
      bool ok = true;
      for (uint32_t d : set) {
        uint32_t fwd = (cand - d) % n;
        uint32_t bwd = (n + d - cand) % n;
        if (used[fwd] || used[bwd] || fwd == bwd) {
          ok = false;
          break;
        }
        used[fwd] = true;
        used[bwd] = true;
        marked.push_back(fwd);
        marked.push_back(bwd);
      }
      if (ok) {
        set.push_back(cand);
        if (self(self)) return true;
        set.pop_back();
      }
      for (uint32_t r : marked) used[r] = false;
    }
    return false;
  };
  if (!try_extend(try_extend)) return std::nullopt;
  return set;
}

util::StatusOr<std::unique_ptr<Partitioner>> PdsPartitioner::Create(
    const PartitionContext& context) {
  uint32_t p = 0;
  if (!IsPdsMachineCount(context.num_partitions, &p)) {
    return util::Status::InvalidArgument(
        "PDS requires p^2 + p + 1 machines for a prime p; got " +
        std::to_string(context.num_partitions));
  }
  std::optional<std::vector<uint32_t>> set = FindDifferenceSet(p);
  if (!set.has_value()) {
    return util::Status::Internal("difference-set search failed for p=" +
                                  std::to_string(p));
  }
  return std::unique_ptr<Partitioner>(
      new PdsPartitioner(context, std::move(*set)));
}

PdsPartitioner::PdsPartitioner(const PartitionContext& context,
                               std::vector<uint32_t> difference_set)
    : Partitioner(context),
      num_partitions_(context.num_partitions),
      seed_(context.seed),
      difference_set_(std::move(difference_set)) {
  constraint_sets_.resize(num_partitions_);
  for (uint32_t b = 0; b < num_partitions_; ++b) {
    for (uint32_t d : difference_set_) {
      constraint_sets_[b].push_back(
          static_cast<MachineId>((b + d) % num_partitions_));
    }
    std::sort(constraint_sets_[b].begin(), constraint_sets_[b].end());
  }
}

std::vector<MachineId> PdsPartitioner::ConstraintSet(graph::VertexId v) const {
  return constraint_sets_[Mix64(v ^ seed_) % num_partitions_];
}

MachineId PdsPartitioner::Assign(const graph::Edge& e, uint32_t pass,
                                 uint32_t loader) {
  (void)pass;
  AddWorkTicks(loader, 30);  // 1.5 units: two constraint-set lookups + merge
  const std::vector<MachineId>& su =
      constraint_sets_[Mix64(e.src ^ seed_) % num_partitions_];
  const std::vector<MachineId>& sv =
      constraint_sets_[Mix64(e.dst ^ seed_) % num_partitions_];
  // Sorted-set intersection; for distinct buckets this has exactly one
  // element (the defining property of a planar difference set).
  std::vector<MachineId> common;
  std::set_intersection(su.begin(), su.end(), sv.begin(), sv.end(),
                        std::back_inserter(common));
  GDP_CHECK(!common.empty());
  uint64_t pick = HashCanonicalEdge(e.src, e.dst) % common.size();
  return common[pick];
}


void RegisterConstrainedStrategies() {
  StrategyRegistry& registry = StrategyRegistry::Instance();
  registry.Register(StrategyInfo{
      .kind = StrategyKind::kGrid,
      .name = "Grid",
      .traits = {.system_families = kFamilyPowerGraph | kFamilyPowerLyra,
                 .power_graph_rank = 1,
                 .power_lyra_rank = 1,
                 .in_paper_roster = true,
                 .paper_roster_rank = 4},
      .factory = [](const PartitionContext& context)
          -> std::unique_ptr<Partitioner> {
        return std::make_unique<GridPartitioner>(context);
      }});
  registry.Register(StrategyInfo{
      .kind = StrategyKind::kPds,
      .name = "PDS",
      .traits = {.system_families = kFamilyPowerGraph | kFamilyPowerLyra,
                 .power_graph_rank = 4,
                 .power_lyra_rank = 5,
                 .in_paper_roster = true,
                 .paper_roster_rank = 5},
      .factory = [](const PartitionContext& context)
          -> std::unique_ptr<Partitioner> {
        auto result = PdsPartitioner::Create(context);
        GDP_CHECK(result.ok());
        return std::move(result).value();
      }});
}

}  // namespace gdp::partition
