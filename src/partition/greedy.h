#ifndef GDP_PARTITION_GREEDY_H_
#define GDP_PARTITION_GREEDY_H_

#include <vector>

#include "partition/partitioner.h"
#include "partition/replica_table.h"
#include "util/random.h"

namespace gdp::partition {

/// State one parallel loader keeps for the greedy strategies. PowerGraph's
/// Oblivious deliberately does *not* share assignment state between loading
/// machines ("each machine is oblivious to the assignments made by the
/// other machines", §5.2.2), so each loader has its own replica view, load
/// counters, and — for HDRF — partial-degree counters.
struct LoaderState {
  LoaderState(graph::VertexId num_vertices, uint32_t num_partitions,
              uint64_t seed, bool track_degrees);

  ReplicaTable replicas;
  std::vector<uint64_t> machine_load;  ///< edges this loader sent per machine
  std::vector<uint32_t> partial_degree;
  util::SplitMix64 rng;
  /// Distinct vertices this loader has placed so far; the real systems keep
  /// their loader-local replica views in hash tables, so modeled state
  /// memory scales with touched vertices, not with |V|.
  uint64_t touched_vertices = 0;

  /// Incrementally maintained min/max of machine_load, so HDRF's balance
  /// term needs no per-edge O(P) scan. min_count tracks how many machines
  /// sit at min_load; when the last one is incremented the minimum bumps by
  /// exactly one (loads grow by single edges) and only then is an O(P)
  /// recount paid — amortized O(1) per edge.
  uint64_t min_load = 0;
  uint64_t max_load = 0;
  uint32_t min_count = 0;

  /// Records one edge placed on `m`, keeping min/max in sync.
  void AddEdgeTo(sim::MachineId m) {
    uint64_t now = ++machine_load[m];
    if (now > max_load) max_load = now;
    if (now - 1 == min_load && --min_count == 0) {
      ++min_load;  // every machine is >= old min + 1, and m sits exactly there
      for (uint64_t load : machine_load) min_count += load == min_load;
    }
  }

  uint64_t ApproxBytes() const;
};

/// Base for Oblivious and HDRF: owns per-loader state and the shared
/// tie-breaking helpers.
class GreedyPartitionerBase : public Partitioner {
 public:
  GreedyPartitionerBase(const PartitionContext& context, bool track_degrees);

  uint64_t ApproxStateBytes() const override;

  /// Grows the per-loader state array when the ingestor drives more loaders
  /// than the context anticipated (deterministic: loader l is always seeded
  /// from Mix64(seed ^ (l + 1)) regardless of when it is created).
  void PrepareForIngest(uint32_t num_loaders) override;

 protected:
  uint32_t num_partitions() const { return num_partitions_; }
  LoaderState& loader_state(uint32_t loader);

  /// Charges the modelled greedy cost for one edge: a constant scoring term
  /// plus a term proportional to the endpoint replica-set sizes (probing
  /// A(u) and A(v)), which the caller has already counted. On skewed graphs
  /// replica sets are large, which slows greedy ingress relative to hashing
  /// — the Fig 5.7 effect.
  void ChargeGreedyWork(uint32_t loader, LoaderState& state,
                        const graph::Edge& e, uint32_t count_src,
                        uint32_t count_dst);

 private:
  uint32_t num_partitions_;
  graph::VertexId num_vertices_;
  uint64_t seed_;
  bool track_degrees_;
  std::vector<LoaderState> loaders_;
};

/// Oblivious greedy vertex-cut (PowerGraph §5.2.2, Appendix A): place each
/// edge to minimize new replicas, tie-breaking by least-loaded machine and
/// then randomly.
class ObliviousPartitioner final : public GreedyPartitionerBase {
 public:
  explicit ObliviousPartitioner(const PartitionContext& context)
      : GreedyPartitionerBase(context, /*track_degrees=*/false) {}

  StrategyKind kind() const override { return StrategyKind::kOblivious; }
  MachineId Assign(const graph::Edge& e, uint32_t pass,
                   uint32_t loader) override;
};

/// HDRF — High-Degree Replicated First (Petroni et al., §5.2.4,
/// Appendix B): like Oblivious, but scores machines with a degree-aware
/// replication term so the *lower*-degree endpoint avoids new replicas and
/// high-degree vertices absorb the replication.
class HdrfPartitioner final : public GreedyPartitionerBase {
 public:
  explicit HdrfPartitioner(const PartitionContext& context)
      : GreedyPartitionerBase(context, /*track_degrees=*/true),
        lambda_(context.hdrf_lambda),
        use_partial_degrees_(context.hdrf_partial_degrees) {}

  StrategyKind kind() const override { return StrategyKind::kHdrf; }
  MachineId Assign(const graph::Edge& e, uint32_t pass,
                   uint32_t loader) override;

  /// Supplies exact degrees for the ablation with
  /// PartitionContext::hdrf_partial_degrees == false (HDRF normally uses
  /// streaming partial degrees to stay single-pass).
  void SetExactDegrees(std::vector<uint32_t> degrees) {
    exact_degrees_ = std::move(degrees);
  }

 private:
  double lambda_;
  bool use_partial_degrees_;
  std::vector<uint32_t> exact_degrees_;
};

}  // namespace gdp::partition

#endif  // GDP_PARTITION_GREEDY_H_
