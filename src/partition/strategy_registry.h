#ifndef GDP_PARTITION_STRATEGY_REGISTRY_H_
#define GDP_PARTITION_STRATEGY_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "partition/partitioner.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace gdp::partition {

/// Which system shipped (or would naturally host) a strategy — the paper's
/// Table 1.1 roster structure, kept as a bitmask so one strategy can belong
/// to several systems (Random ships in all three).
enum SystemFamily : uint32_t {
  kFamilyPowerGraph = 1u << 0,
  kFamilyPowerLyra = 1u << 1,
  kFamilyGraphX = 1u << 2,
};

/// Capability descriptor a strategy registers alongside its factory. The
/// harness and advisor consult these instead of switch-ing on StrategyKind:
/// the cache key only folds the ingress memory budget in for
/// memory_budget_aware strategies, the advisor's budget rule enumerates the
/// expansion family by trait, and docs/tests iterate the registry for the
/// roster tables.
struct StrategyTraits {
  /// Passes over the edge stream the strategy drives (1 for pure
  /// streaming, 2 for count+reassign, 3 for Hybrid-Ginger/HEP).
  uint32_t passes_required = 1;
  /// True when *every* pass is parallel-safe (Assign may run concurrently
  /// for different loaders); false when at least one pass needs the serial
  /// stream (DBH's global degree counters, H-Ginger's refinement, the
  /// chunk expansion of SNE/2PS).
  bool parallel_safe = true;
  /// True when the strategy needs a full degree (or clustering) pass
  /// before it can place edges finally.
  bool needs_degree_precompute = false;
  /// True when PartitionContext::memory_budget_bytes changes the *result*
  /// (SNE's chunk size, HEP's split threshold) — such strategies get the
  /// budget folded into ingress cache keys.
  bool memory_budget_aware = false;
  /// SystemFamily bitmask: which systems' rosters include the strategy.
  uint32_t system_families = 0;
  /// Order within each family roster (ignored unless the family bit is
  /// set). Preserves the paper's table ordering exactly.
  int power_graph_rank = 0;
  int power_lyra_rank = 0;
  int graphx_rank = 0;
  /// Membership + order in AllStrategies(), the paper's display roster.
  /// Extensions beyond the paper (Chunked, DBH, the expansion family) stay
  /// out so the paper's experiment grids are unchanged by registration.
  bool in_paper_roster = false;
  int paper_roster_rank = 0;
};

/// One registered strategy: identity, traits, and how to build one.
struct StrategyInfo {
  StrategyKind kind = StrategyKind::kRandom;
  /// Canonical display name ("Grid", "HDRF", "NE", ...).
  std::string name;
  /// Extra names StrategyFromName accepts ("Canonical Random", ...).
  std::vector<std::string> aliases;
  StrategyTraits traits;
  std::unique_ptr<Partitioner> (*factory)(const PartitionContext&) = nullptr;
};

/// The open strategy catalogue. Every built-in registers itself through the
/// manifest in strategy_registration.h (called once, in a fixed order, so
/// registration order is deterministic and no static-initializer tricks are
/// needed to survive archive linking); external code may Register() more at
/// runtime before first use. AllStrategies(), StrategyFromName(), the
/// system roster helpers, and MakePartitioner() are all thin queries over
/// this registry — adding a strategy touches no core header.
class StrategyRegistry {
 public:
  /// The process-wide registry, with built-ins already registered.
  static StrategyRegistry& Instance();

  /// Registers a strategy. Dies on a duplicate kind, name, or alias —
  /// names are parse keys, so collisions would be silent misroutes.
  void Register(StrategyInfo info);

  /// Looks up by kind; nullptr when unregistered. The pointer stays valid
  /// for the registry's lifetime (entries are never removed).
  const StrategyInfo* Find(StrategyKind kind) const;

  /// Looks up by canonical name or alias; nullptr when unknown.
  const StrategyInfo* FindByName(const std::string& name) const;

  /// Every registered strategy, in registration order (deterministic:
  /// manifest order, then runtime Register() order).
  std::vector<const StrategyInfo*> All() const;

  /// Registered strategies whose traits pass `pred`, in registration
  /// order.
  template <typename Pred>
  std::vector<StrategyKind> KindsWhere(Pred pred) const {
    std::vector<StrategyKind> kinds;
    for (const StrategyInfo* info : All()) {
      if (pred(info->traits)) kinds.push_back(info->kind);
    }
    return kinds;
  }

 private:
  StrategyRegistry() = default;

  mutable util::Mutex mu_;
  /// unique_ptr gives every StrategyInfo a stable address across growth,
  /// so Find() results stay valid without holding the lock.
  std::vector<std::unique_ptr<StrategyInfo>> entries_ GDP_GUARDED_BY(mu_);
};

/// Roster of the neighbourhood-expansion family (NE, SNE, 2PS, HEP), in
/// registration order — the candidate set for the memory-budget bench grid
/// and the advisor's budget rule.
std::vector<StrategyKind> ExpansionFamilyStrategies();

/// Strategies whose results depend on PartitionContext::memory_budget_bytes
/// (trait query; SNE and HEP today).
std::vector<StrategyKind> MemoryBudgetAwareStrategies();

}  // namespace gdp::partition

#endif  // GDP_PARTITION_STRATEGY_REGISTRY_H_
