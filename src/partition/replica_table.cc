#include "partition/replica_table.h"

#include <bit>

#include "util/check.h"

namespace gdp::partition {

ReplicaTable::ReplicaTable(graph::VertexId num_vertices,
                           uint32_t num_machines)
    : num_vertices_(num_vertices),
      num_machines_(num_machines),
      words_per_vertex_((num_machines + 63) / 64),
      words_(static_cast<size_t>(num_vertices) * words_per_vertex_, 0) {}

void ReplicaTable::Reset() { std::fill(words_.begin(), words_.end(), 0); }

void ReplicaTable::MergeFrom(const ReplicaTable& other) {
  GDP_CHECK_EQ(num_vertices_, other.num_vertices_);
  GDP_CHECK_EQ(num_machines_, other.num_machines_);
  for (size_t w = 0; w < words_.size(); ++w) {
    words_[w] |= other.words_[w];
  }
}

bool ReplicaTable::Add(graph::VertexId v, sim::MachineId m) {
  GDP_CHECK_LT(v, num_vertices_);
  GDP_CHECK_LT(m, num_machines_);
  uint64_t& word = words_[static_cast<size_t>(v) * words_per_vertex_ + m / 64];
  uint64_t bit = 1ULL << (m % 64);
  if (word & bit) return false;
  word |= bit;
  return true;
}

bool ReplicaTable::Contains(graph::VertexId v, sim::MachineId m) const {
  const uint64_t word =
      words_[static_cast<size_t>(v) * words_per_vertex_ + m / 64];
  return (word >> (m % 64)) & 1;
}

uint32_t ReplicaTable::Count(graph::VertexId v) const {
  uint32_t count = 0;
  size_t base = static_cast<size_t>(v) * words_per_vertex_;
  for (uint32_t w = 0; w < words_per_vertex_; ++w) {
    count += std::popcount(words_[base + w]);
  }
  return count;
}

sim::MachineId ReplicaTable::First(graph::VertexId v) const {
  size_t base = static_cast<size_t>(v) * words_per_vertex_;
  for (uint32_t w = 0; w < words_per_vertex_; ++w) {
    if (words_[base + w] != 0) {
      return w * 64 +
             static_cast<uint32_t>(std::countr_zero(words_[base + w]));
    }
  }
  return kInvalid;
}

std::vector<sim::MachineId> ReplicaTable::Machines(graph::VertexId v) const {
  std::vector<sim::MachineId> machines;
  size_t base = static_cast<size_t>(v) * words_per_vertex_;
  for (uint32_t w = 0; w < words_per_vertex_; ++w) {
    uint64_t word = words_[base + w];
    while (word != 0) {
      uint32_t bit = static_cast<uint32_t>(std::countr_zero(word));
      machines.push_back(w * 64 + bit);
      word &= word - 1;
    }
  }
  return machines;
}

sim::MachineId ReplicaTable::Select(graph::VertexId v, uint32_t k) const {
  size_t base = static_cast<size_t>(v) * words_per_vertex_;
  for (uint32_t w = 0; w < words_per_vertex_; ++w) {
    uint64_t word = words_[base + w];
    uint32_t bits = static_cast<uint32_t>(std::popcount(word));
    if (k < bits) {
      while (k > 0) {
        word &= word - 1;
        --k;
      }
      return w * 64 + static_cast<uint32_t>(std::countr_zero(word));
    }
    k -= bits;
  }
  GDP_CHECK(false);
  return kInvalid;
}

double ReplicaTable::AverageCount(const std::vector<bool>& counted) const {
  uint64_t total = 0;
  uint64_t vertices = 0;
  for (graph::VertexId v = 0; v < num_vertices_; ++v) {
    if (v < counted.size() && counted[v]) {
      total += Count(v);
      ++vertices;
    }
  }
  return vertices > 0 ? static_cast<double>(total) / vertices : 0.0;
}

double ReplicaTable::AverageCountNonEmpty() const {
  uint64_t total = 0;
  uint64_t vertices = 0;
  for (graph::VertexId v = 0; v < num_vertices_; ++v) {
    uint32_t c = Count(v);
    if (c > 0) {
      total += c;
      ++vertices;
    }
  }
  return vertices > 0 ? static_cast<double>(total) / vertices : 0.0;
}

}  // namespace gdp::partition
